//go:build scldebug

package scl

// debugChecks gates expensive (and deliberately fatal) internal invariant
// assertions in the lock hot paths. The scldebug build tag turns them on;
// `make check` runs the race suite with the tag so an interleaving that
// violates an invariant fails CI, while release builds — without the tag —
// can never crash a process on one (the assertions compile away).
const debugChecks = true

// debugFail reports a violated internal invariant. Only reachable under
// the scldebug build tag.
func debugFail(msg string) {
	panic("scl: internal invariant violated (scldebug): " + msg)
}
