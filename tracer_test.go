package scl

import (
	"sync"
	"testing"
	"time"

	"scl/trace"
)

func kindCounts(evs []trace.Event) map[trace.Kind]int {
	c := make(map[trace.Kind]int)
	for _, ev := range evs {
		c[ev.Kind]++
	}
	return c
}

// The full event lifecycle on a k-SCL (zero slice): a hog's long hold
// ends its slice, draws a ban, and hands off to the queued peer.
func TestMutexTracerLifecycle(t *testing.T) {
	ring := trace.NewRing(1 << 10)
	m := NewMutex(Options{Slice: -1, Name: "db", Tracer: ring})
	hog := m.Register().SetName("hog")
	peer := m.Register().SetName("peer")

	hog.Lock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		peer.Lock()
		peer.Unlock()
	}()
	time.Sleep(10 * time.Millisecond) // peer queues behind the hog
	hog.Unlock()
	wg.Wait()

	evs := ring.Events()
	counts := kindCounts(evs)
	if counts[trace.KindAcquire] != 2 || counts[trace.KindRelease] != 2 {
		t.Fatalf("acquire/release = %d/%d, want 2/2\n%s",
			counts[trace.KindAcquire], counts[trace.KindRelease], trace.Format(evs))
	}
	if counts[trace.KindSliceEnd] == 0 {
		t.Fatalf("no slice-end events\n%s", trace.Format(evs))
	}
	if counts[trace.KindBan] == 0 {
		t.Fatalf("no ban for the hog\n%s", trace.Format(evs))
	}
	if counts[trace.KindHandoff] == 0 {
		t.Fatalf("no handoff to the peer\n%s", trace.Format(evs))
	}
	for _, ev := range evs {
		if ev.Lock != "db" {
			t.Fatalf("event lock = %q, want db", ev.Lock)
		}
		switch {
		case ev.Kind == trace.KindBan && ev.Name == "hog":
			if ev.Detail < 2*time.Millisecond {
				t.Fatalf("hog ban %v, want several ms", ev.Detail)
			}
		case ev.Kind == trace.KindAcquire && ev.Name == "peer":
			if ev.Detail < 2*time.Millisecond {
				t.Fatalf("peer acquire wait %v, want the queueing time", ev.Detail)
			}
		case ev.Kind == trace.KindRelease && ev.Name == "hog":
			if ev.Detail < 5*time.Millisecond {
				t.Fatalf("hog release hold %v, want ~10ms", ev.Detail)
			}
		}
	}

	// The same lifecycle shows up in the stats counters.
	s := m.Stats()
	if s.Bans[hog.ID()] == 0 || s.BanTime[hog.ID()] == 0 {
		t.Fatalf("stats bans = %d / %v", s.Bans[hog.ID()], s.BanTime[hog.ID()])
	}
	if s.Handoffs[peer.ID()] == 0 {
		t.Fatalf("stats handoffs = %d", s.Handoffs[peer.ID()])
	}
	if s.WaitDist[peer.ID()].Max < 2*time.Millisecond {
		t.Fatalf("peer wait dist = %+v", s.WaitDist[peer.ID()])
	}
	if s.Names[hog.ID()] != "hog" {
		t.Fatalf("names = %v", s.Names)
	}
}

// A tracer can be attached to (and detached from) a live lock.
func TestMutexSetTracerAtRuntime(t *testing.T) {
	m := NewMutex(Options{Name: "late"})
	h := m.Register()
	h.Lock()
	h.Unlock() // untraced
	ring := trace.NewRing(64)
	m.SetTracer(ring)
	h.Lock()
	h.Unlock()
	m.SetTracer(nil)
	h.Lock()
	h.Unlock() // untraced again
	evs := ring.Events()
	if c := kindCounts(evs); c[trace.KindAcquire] != 1 || c[trace.KindRelease] != 1 {
		t.Fatalf("traced window captured %v, want 1 acquire + 1 release", c)
	}
	if m.Name() != "late" {
		t.Fatalf("name = %q", m.Name())
	}
}

// RW-SCL tracing: class pseudo-entities, phase-switch slice ends, writer
// handoff with queueing wait, and reader union-hold on last release.
func TestRWLockTracer(t *testing.T) {
	ring := trace.NewRing(1 << 10)
	l := NewRWLock(1, 1, 2*time.Millisecond).SetName("rw")
	l.SetTracer(ring)
	if l.Name() != "rw" {
		t.Fatalf("name = %q", l.Name())
	}

	l.RLock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.WLock() // queues until the write slice begins and readers drain
		time.Sleep(time.Millisecond)
		l.WUnlock()
	}()
	time.Sleep(5 * time.Millisecond)
	l.RUnlock()
	wg.Wait()

	evs := ring.Events()
	counts := kindCounts(evs)
	if counts[trace.KindAcquire] < 2 || counts[trace.KindRelease] < 2 {
		t.Fatalf("acquire/release = %d/%d\n%s",
			counts[trace.KindAcquire], counts[trace.KindRelease], trace.Format(evs))
	}
	if counts[trace.KindSliceEnd] == 0 {
		t.Fatalf("no phase-switch slice-end\n%s", trace.Format(evs))
	}
	if counts[trace.KindHandoff] == 0 {
		t.Fatalf("no writer handoff\n%s", trace.Format(evs))
	}
	var sawReaderRelease, sawWriterRelease, sawWriterWait bool
	for _, ev := range evs {
		switch {
		case ev.Kind == trace.KindRelease && ev.Entity == trace.EntityReaders:
			if ev.Detail >= 4*time.Millisecond { // the ~5ms union interval
				sawReaderRelease = true
			}
		case ev.Kind == trace.KindRelease && ev.Entity == trace.EntityWriters:
			if ev.Detail >= 500*time.Microsecond {
				sawWriterRelease = true
			}
		case ev.Kind == trace.KindAcquire && ev.Entity == trace.EntityWriters:
			if ev.Detail > 0 {
				sawWriterWait = true
			}
		}
	}
	if !sawReaderRelease || !sawWriterRelease || !sawWriterWait {
		t.Fatalf("reader-release=%v writer-release=%v writer-wait=%v\n%s",
			sawReaderRelease, sawWriterRelease, sawWriterWait, trace.Format(evs))
	}
}

// With no tracer installed the locks must not emit (nil-check guard).
func TestNoTracerNoEvents(t *testing.T) {
	m := NewMutex(Options{})
	h := m.Register()
	h.Lock()
	h.Unlock()
	// Nothing to assert beyond "does not panic": the nil path is the
	// default exercised by every other test in the package.
}
