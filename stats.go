package scl

import (
	"time"

	"scl/internal/metrics"
)

// lockStats mirrors the simulator's lock accounting for the real-time
// locks: per-entity hold time, acquisition counts, and lock idle time.
// Callers must serialize access (the enclosing lock's mutex).
type lockStats struct {
	holders      int
	idleStart    time.Duration
	idle         time.Duration
	hold         map[int64]time.Duration
	inFlight     map[int64]time.Duration
	acquisitions map[int64]int64
	started      time.Duration
}

func (s *lockStats) init() {
	s.hold = make(map[int64]time.Duration)
	s.inFlight = make(map[int64]time.Duration)
	s.acquisitions = make(map[int64]int64)
	s.idleStart = monotime()
	s.started = s.idleStart
}

func (s *lockStats) onAcquire(id int64, now time.Duration) {
	if s.holders == 0 {
		s.idle += now - s.idleStart
	}
	s.holders++
	s.acquisitions[id]++
	s.inFlight[id] = now
}

func (s *lockStats) onRelease(id int64, now time.Duration) {
	s.holders--
	if s.holders == 0 {
		s.idleStart = now
	}
	if at, ok := s.inFlight[id]; ok {
		s.hold[id] += now - at
		delete(s.inFlight, id)
	}
}

func (s *lockStats) snapshot(now time.Duration) StatsSnapshot {
	snap := StatsSnapshot{
		Hold:         make(map[int64]time.Duration, len(s.hold)),
		Acquisitions: make(map[int64]int64, len(s.acquisitions)),
		Idle:         s.idle,
		Elapsed:      now - s.started,
	}
	for id, h := range s.hold {
		snap.Hold[id] = h
	}
	for id, at := range s.inFlight {
		snap.Hold[id] += now - at
	}
	for id, n := range s.acquisitions {
		snap.Acquisitions[id] = n
	}
	if s.holders == 0 && now > s.idleStart {
		snap.Idle += now - s.idleStart
	}
	return snap
}

// StatsSnapshot is a point-in-time view of a lock's usage accounting.
type StatsSnapshot struct {
	// Hold maps entity ID to cumulative lock hold time.
	Hold map[int64]time.Duration
	// Acquisitions maps entity ID to acquisition count.
	Acquisitions map[int64]int64
	// Idle is the total time the lock was unheld.
	Idle time.Duration
	// Elapsed is the time since the lock was created.
	Elapsed time.Duration
}

// LOT returns the entity's lock opportunity time (paper eq. 1): its own
// hold time plus the lock's idle time.
func (s StatsSnapshot) LOT(id int64) time.Duration { return s.Hold[id] + s.Idle }

// JainHold computes Jain's fairness index over the entities' hold times.
func (s StatsSnapshot) JainHold(ids ...int64) float64 {
	xs := make([]float64, len(ids))
	for i, id := range ids {
		xs[i] = float64(s.Hold[id])
	}
	return metrics.Jain(xs)
}

// JainLOT computes Jain's fairness index over lock opportunity times.
func (s StatsSnapshot) JainLOT(ids ...int64) float64 {
	xs := make([]float64, len(ids))
	for i, id := range ids {
		xs[i] = float64(s.LOT(id))
	}
	return metrics.Jain(xs)
}

// ID returns the handle's entity identifier, usable with StatsSnapshot.
func (h *Handle) ID() int64 { return int64(h.id) }
