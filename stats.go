package scl

import (
	"time"

	"scl/internal/metrics"
)

// distCap bounds the per-entity hold/wait reservoirs (Vitter's algorithm
// R): distributions stay accurate in expectation with fixed memory,
// however long the lock lives.
const distCap = 512

// lockStats mirrors the simulator's lock accounting for the real-time
// locks: per-entity hold time, acquisition counts, wait and hold
// distributions, ban totals, and lock idle time. Callers must serialize
// access (the enclosing lock's mutex).
//
// Hold time is accounted as a holder-count integral per entity
// (Σ individual holds = ∫ holders_i(t) dt), so entities whose holds
// overlap themselves — several readers of one class, or siblings of one
// group — are credited every concurrent hold, not just the last one to
// acquire (the bug the map-of-start-times version had).
type lockStats struct {
	holders    int
	idleStart  time.Duration
	idle       time.Duration
	started    time.Duration
	entities   map[int64]*entityStats
	reaped     int64         // entities removed by the inactive-entity GC
	reapedHold time.Duration // hold time they had accumulated
}

type entityStats struct {
	name         string
	acquisitions int64
	active       int           // outstanding holds; >1 only for shared/overlapping use
	settledAt    time.Duration // last hold-integral settlement
	opStart      time.Duration // when active went 0 -> 1 (per-op union sample)
	hold         time.Duration
	bans         int64
	banTime      time.Duration
	handoffs     int64
	cancels      int64
	combines     int64 // closures this entity executed for others as the combiner
	combined     int64 // closures of this entity executed by a combiner
	holds        *metrics.Reservoir
	waits        *metrics.Reservoir
}

func (s *lockStats) init() {
	s.entities = make(map[int64]*entityStats)
	s.idleStart = monotime()
	s.started = s.idleStart
}

func (s *lockStats) entity(id int64) *entityStats {
	e, ok := s.entities[id]
	if !ok {
		e = &entityStats{
			holds: metrics.NewReservoir(distCap, id),
			waits: metrics.NewReservoir(distCap, id+1),
		}
		s.entities[id] = e
	}
	return e
}

// settle advances the entity's hold integral to now.
func (e *entityStats) settle(now time.Duration) {
	if e.active > 0 && now > e.settledAt {
		e.hold += time.Duration(e.active) * (now - e.settledAt)
	}
	e.settledAt = now
}

func (s *lockStats) onAcquire(id int64, name string, now time.Duration, wait time.Duration) {
	if s.holders == 0 && now > s.idleStart {
		// The clamp matters with the atomic fast path: a fold may have
		// advanced idleStart past the (earlier) start of an in-flight
		// fast-path hold being back-filled here.
		s.idle += now - s.idleStart
	}
	s.holders++
	e := s.entity(id)
	if name != "" {
		e.name = name
	}
	e.settle(now)
	if e.active == 0 {
		e.opStart = now
	}
	e.active++
	e.acquisitions++
	e.waits.Add(wait)
}

func (s *lockStats) onRelease(id int64, now time.Duration) {
	s.holders--
	if s.holders == 0 {
		s.idleStart = now
	}
	e := s.entity(id)
	e.settle(now)
	if e.active > 0 {
		e.active--
		if e.active == 0 {
			// One per-op sample per busy interval: for exclusive locks this
			// is exactly the critical-section length; for overlapping holds
			// of one entity it is the union interval.
			e.holds.Add(now - e.opStart)
		}
	}
}

// fold lands a batch of fast-path operations for one entity: ops
// acquisitions whose holds sum (as a wall-clock window) to window, all
// completed since the last fold while the lock-level holder count was
// zero. Totals (hold, acquisitions, idle) are exact; the hold/wait
// distributions receive the batch as uniform samples (mean hold, zero
// wait), since the fast path records no per-operation timestamps.
func (s *lockStats) fold(id int64, window time.Duration, ops int64, now time.Duration) {
	if window <= 0 && ops == 0 {
		return
	}
	e := s.entity(id)
	e.settle(now)
	e.acquisitions += ops
	e.hold += window
	if ops > 0 {
		e.holds.AddN(window/time.Duration(ops), ops)
		e.waits.AddN(0, ops)
	}
	if s.holders == 0 {
		idle := now - s.idleStart - window
		if idle < 0 {
			idle = 0
		}
		s.idle += idle
		s.idleStart = now
	}
}

func (s *lockStats) onBan(id int64, penalty time.Duration) {
	e := s.entity(id)
	e.bans++
	e.banTime += penalty
}

func (s *lockStats) onHandoff(id int64) {
	s.entity(id).handoffs++
}

// onCombine records that id, while releasing, drained a batch of n
// combined critical sections (Handle.Do) and executed them itself.
func (s *lockStats) onCombine(id int64, n int64) {
	s.entity(id).combines += n
}

// onCombinedOp books one combiner-executed critical section on behalf of
// entity id: the exact equivalent of onAcquire(start)/onRelease(end) at
// the closure's measured timestamps — hold integral, acquisition count,
// wait and hold samples, idle accounting — in a single entity lookup,
// plus the delegation count. The lock-level holder count is untouched
// (the batch runs between the combiner's release and the next acquire,
// while holders is zero; the held state word, not this counter, is the
// mutual exclusion).
func (s *lockStats) onCombinedOp(id int64, name string, start, end, wait time.Duration) {
	if s.holders == 0 {
		if start > s.idleStart {
			s.idle += start - s.idleStart
		}
		s.idleStart = end
	}
	e := s.entity(id)
	if name != "" {
		e.name = name
	}
	e.settle(start)
	if e.active == 0 {
		e.opStart = start
	}
	e.active++
	e.acquisitions++
	e.waits.Add(wait)
	e.settle(end)
	e.active--
	if e.active == 0 {
		e.holds.Add(end - e.opStart)
	}
	e.combined++
}

// onAbandon records a cancelled acquisition (a LockContext that gave up
// mid-ban or mid-queue). No hold or wait lands in the distributions: an
// abandoned attempt leaves the usage books exactly as if it never queued.
func (s *lockStats) onAbandon(id int64, name string) {
	e := s.entity(id)
	if name != "" {
		e.name = name
	}
	e.cancels++
}

// onReap removes an entity's stats entry (the inactive-entity GC reaped
// it, or its residual entry after Close aged out). The entity's hold time
// folds into the reaped aggregate so lock-level totals stay meaningful;
// per-entity history (distributions, bans) is dropped with the entry —
// that is the point of the GC. Returns the entity's label for the reap
// event. A missing entry (reaped before its first op landed) is counted
// but contributes nothing.
func (s *lockStats) onReap(id int64, now time.Duration) string {
	s.reaped++
	e, ok := s.entities[id]
	if !ok {
		return ""
	}
	e.settle(now)
	s.reapedHold += e.hold
	delete(s.entities, id)
	return e.name
}

func (s *lockStats) snapshot(now time.Duration) StatsSnapshot {
	n := len(s.entities)
	snap := StatsSnapshot{
		Hold:         make(map[int64]time.Duration, n),
		Acquisitions: make(map[int64]int64, n),
		Names:        make(map[int64]string, n),
		Bans:         make(map[int64]int64, n),
		BanTime:      make(map[int64]time.Duration, n),
		Handoffs:     make(map[int64]int64, n),
		Cancels:      make(map[int64]int64, n),
		Combines:     make(map[int64]int64, n),
		Combined:     make(map[int64]int64, n),
		HoldDist:     make(map[int64]metrics.Summary, n),
		WaitDist:     make(map[int64]metrics.Summary, n),
		Idle:         s.idle,
		Elapsed:      now - s.started,
		Reaped:       s.reaped,
		ReapedHold:   s.reapedHold,
	}
	for id, e := range s.entities {
		hold := e.hold
		if e.active > 0 && now > e.settledAt {
			hold += time.Duration(e.active) * (now - e.settledAt)
		}
		snap.Hold[id] = hold
		snap.Acquisitions[id] = e.acquisitions
		if e.name != "" {
			snap.Names[id] = e.name
		}
		snap.Bans[id] = e.bans
		snap.BanTime[id] = e.banTime
		snap.Handoffs[id] = e.handoffs
		snap.Cancels[id] = e.cancels
		snap.Combines[id] = e.combines
		snap.Combined[id] = e.combined
		snap.HoldDist[id] = e.holds.Summary()
		snap.WaitDist[id] = e.waits.Summary()
	}
	if s.holders == 0 && now > s.idleStart {
		snap.Idle += now - s.idleStart
	}
	return snap
}

// StatsSnapshot is a point-in-time view of a lock's usage accounting.
type StatsSnapshot struct {
	// Hold maps entity ID to cumulative lock hold time.
	Hold map[int64]time.Duration
	// Acquisitions maps entity ID to acquisition count.
	Acquisitions map[int64]int64
	// Names maps entity ID to the label set via Handle.SetName (entries
	// exist only for named entities).
	Names map[int64]string
	// Bans counts penalties imposed per entity; BanTime is their total
	// length (paper §4.2 penalties).
	Bans    map[int64]int64
	BanTime map[int64]time.Duration
	// Handoffs counts ownership grants received per entity (slice
	// transfers and intra-entity sibling handoffs).
	Handoffs map[int64]int64
	// Cancels counts acquisitions abandoned per entity: LockContext calls
	// that returned ctx.Err() from the ban sleep or the waiter queue. An
	// abandoned attempt charges no usage and keeps no queue position.
	Cancels map[int64]int64
	// Combines counts, per entity, combined critical sections the entity
	// executed for others while releasing (Handle.Do batches it drained);
	// Combined counts the entity's own critical sections that a combiner
	// executed on its behalf. Combined sections still appear in Hold,
	// Acquisitions and the distributions under the publishing entity.
	Combines map[int64]int64
	Combined map[int64]int64
	// HoldDist and WaitDist summarize per-operation hold and wait (queue
	// plus ban) distributions from bounded reservoir samples.
	HoldDist map[int64]metrics.Summary
	WaitDist map[int64]metrics.Summary
	// Idle is the total time the lock was unheld.
	Idle time.Duration
	// Elapsed is the time since the lock was created.
	Elapsed time.Duration
	// Registered is the number of entities currently registered in the
	// lock's accounting. With WithInactiveGC this tracks the active set;
	// the per-entity maps above may hold fewer entries than entities ever
	// seen (reaped entities are dropped from them).
	Registered int
	// Reaped counts entities removed by the inactive-entity GC
	// (WithInactiveGC) since the lock was created; ReapedHold is the hold
	// time they had accumulated, kept so lock-level hold totals remain
	// meaningful after their per-entity entries are gone.
	Reaped     int64
	ReapedHold time.Duration
}

// LOT returns the entity's lock opportunity time (paper eq. 1): its own
// hold time plus the lock's idle time.
func (s StatsSnapshot) LOT(id int64) time.Duration { return s.Hold[id] + s.Idle }

// JainHold computes Jain's fairness index over the entities' hold times.
func (s StatsSnapshot) JainHold(ids ...int64) float64 {
	xs := make([]float64, len(ids))
	for i, id := range ids {
		xs[i] = float64(s.Hold[id])
	}
	return metrics.Jain(xs)
}

// JainLOT computes Jain's fairness index over lock opportunity times.
func (s StatsSnapshot) JainLOT(ids ...int64) float64 {
	xs := make([]float64, len(ids))
	for i, id := range ids {
		xs[i] = float64(s.LOT(id))
	}
	return metrics.Jain(xs)
}

// IDs returns the entity IDs present in the snapshot, unordered.
func (s StatsSnapshot) IDs() []int64 {
	ids := make([]int64, 0, len(s.Hold))
	for id := range s.Hold {
		ids = append(ids, id)
	}
	return ids
}

// ID returns the handle's entity identifier, usable with StatsSnapshot.
func (h *Handle) ID() int64 { return int64(h.id) }
