package sim

import "time"

// CostModel holds the micro-architectural costs the simulator charges for
// synchronization operations. The defaults are calibrated to commodity
// x86 server numbers (tens of ns for atomics, ~µs for futex transitions);
// the reproduced figures depend on the *relative* magnitudes, which is
// what these defaults preserve.
type CostModel struct {
	// AtomicOp is an uncontended atomic RMW on an owned cacheline.
	AtomicOp time.Duration
	// CachelineXfer is the cost of pulling a contended cacheline from a
	// remote core.
	CachelineXfer time.Duration
	// SpinNotice is the delay between a lock release and an on-CPU spinner
	// completing its acquiring atomic.
	SpinNotice time.Duration
	// FutexWake is the syscall cost the releaser pays to wake one waiter.
	FutexWake time.Duration
	// WakeLatency is how long after a wake a sleeping task becomes runnable.
	WakeLatency time.Duration
	// WakeCPU is the CPU a woken task consumes before returning to user
	// code (futex return path / scheduler tail).
	WakeCPU time.Duration
	// ParkCPU is the CPU consumed by the futex-wait entry path.
	ParkCPU time.Duration
	// CrossNodeFactor scales coherence costs when a lock's waiters span
	// NUMA nodes (the paper attributes u-SCL's 16/32-thread dip to
	// cross-node accounting traffic, §5.3).
	CrossNodeFactor float64
	// NUMANode is the number of CPUs per simulated socket.
	NUMANode int
	// StealProb is the probability that a releasing thread immediately
	// re-acquiring a TAS spinlock beats an already-spinning waiter to the
	// cacheline (barging). Drawn from the engine's seeded RNG.
	StealProb float64
	// CombinePublish is what a USCL.Do caller pays to push its critical
	// section onto the contended combining stack (a CAS on a remote line).
	CombinePublish time.Duration
	// CombineDispatch is the combiner's per-section drain overhead (claim
	// plus timing bookkeeping) before the section itself runs.
	CombineDispatch time.Duration
}

// DefaultCostModel returns the calibrated defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		AtomicOp:        25 * time.Nanosecond,
		CachelineXfer:   80 * time.Nanosecond,
		SpinNotice:      120 * time.Nanosecond,
		FutexWake:       600 * time.Nanosecond,
		WakeLatency:     1500 * time.Nanosecond,
		WakeCPU:         1000 * time.Nanosecond,
		ParkCPU:         600 * time.Nanosecond,
		CrossNodeFactor: 2.5,
		NUMANode:        8,
		StealProb:       0.5,
		CombinePublish:  105 * time.Nanosecond, // CachelineXfer + AtomicOp
		CombineDispatch: 50 * time.Nanosecond,  // two owned-line atomics
	}
}

func (c CostModel) withDefaults() CostModel {
	d := DefaultCostModel()
	if c.AtomicOp == 0 {
		c.AtomicOp = d.AtomicOp
	}
	if c.CachelineXfer == 0 {
		c.CachelineXfer = d.CachelineXfer
	}
	if c.SpinNotice == 0 {
		c.SpinNotice = d.SpinNotice
	}
	if c.FutexWake == 0 {
		c.FutexWake = d.FutexWake
	}
	if c.WakeLatency == 0 {
		c.WakeLatency = d.WakeLatency
	}
	if c.WakeCPU == 0 {
		c.WakeCPU = d.WakeCPU
	}
	if c.ParkCPU == 0 {
		c.ParkCPU = d.ParkCPU
	}
	if c.CrossNodeFactor == 0 {
		c.CrossNodeFactor = d.CrossNodeFactor
	}
	if c.NUMANode == 0 {
		c.NUMANode = d.NUMANode
	}
	if c.StealProb == 0 {
		c.StealProb = d.StealProb
	}
	if c.CombinePublish == 0 {
		c.CombinePublish = d.CombinePublish
	}
	if c.CombineDispatch == 0 {
		c.CombineDispatch = d.CombineDispatch
	}
	return c
}

// handoff returns the release-to-acquire latency for a spin-based lock
// with n waiters spanning the given number of CPUs: coherence traffic
// grows with the spinner population, and crossing a socket multiplies it.
func (c CostModel) handoff(nspinners, cpus int) time.Duration {
	if nspinners < 1 {
		nspinners = 1
	}
	d := c.SpinNotice + time.Duration(nspinners-1)*c.CachelineXfer
	if cpus > c.NUMANode {
		d = time.Duration(float64(d) * c.CrossNodeFactor)
	}
	return d
}
