package sim

import (
	"testing"
	"time"
)

// toyExample reproduces the paper's §3 toy workload: two threads on two
// CPUs, critical sections of 10s (T0) and 1s (T1), negligible non-critical
// sections, run for 20 seconds.
func toyExample(t *testing.T, mk func(e *Engine) Locker) (lot0, lot1 time.Duration, jain float64) {
	t.Helper()
	e := New(Config{CPUs: 2, Horizon: 20 * time.Second, Seed: 1})
	lk := mk(e)
	worker := func(cs time.Duration) func(*Task) {
		return func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.Lock(tk)
				tk.Compute(cs)
				lk.Unlock(tk)
			}
		}
	}
	e.Spawn("T0", TaskConfig{CPU: 0}, worker(10*time.Second))
	e.Spawn("T1", TaskConfig{CPU: 1}, worker(time.Second))
	e.Run()
	s := lk.Stats()
	return s.LOT(0), s.LOT(1), s.JainLOT(0, 1)
}

func TestToyMutexStarvation(t *testing.T) {
	lot0, lot1, jain := toyExample(t, func(e *Engine) Locker { return NewMutex(e) })
	// Paper Table 2: mutex LOT ~(20, 1), fairness ~0.54. The long-CS thread
	// must dominate; T1 gets at most a couple of critical sections.
	if lot0 < 15*time.Second {
		t.Fatalf("T0 LOT = %v, want >= 15s (domination)", lot0)
	}
	if lot1 > 4*time.Second {
		t.Fatalf("T1 LOT = %v, want starved (<= 4s)", lot1)
	}
	if jain > 0.75 {
		t.Fatalf("Jain = %.3f, want < 0.75 (unfair)", jain)
	}
}

func TestToySpinlockDomination(t *testing.T) {
	lot0, lot1, jain := toyExample(t, func(e *Engine) Locker { return NewSpinLock(e) })
	if lot0 < 12*time.Second {
		t.Fatalf("T0 LOT = %v, want domination", lot0)
	}
	if lot1 >= lot0 {
		t.Fatalf("T1 LOT %v >= T0 LOT %v", lot1, lot0)
	}
	if jain > 0.85 {
		t.Fatalf("Jain = %.3f, want clearly unfair", jain)
	}
}

func TestToyTicketAlternation(t *testing.T) {
	lot0, lot1, jain := toyExample(t, func(e *Engine) Locker { return NewTicketLock(e) })
	// Ticket: strict alternation 10,1,10,... -> T1 holds one or two 1s CSs
	// in 20s depending on who wins the first acquisition (paper Table 2:
	// LOT (20, 2), fairness .59).
	if lot1 < 900*time.Millisecond || lot1 > 3*time.Second {
		t.Fatalf("T1 LOT = %v, want ~1-2s", lot1)
	}
	if lot0 < 15*time.Second {
		t.Fatalf("T0 LOT = %v, want ~18-20s", lot0)
	}
	if jain > 0.75 {
		t.Fatalf("Jain = %.3f, want < 0.75", jain)
	}
}

func TestToyUSCLDesired(t *testing.T) {
	lot0, lot1, jain := toyExample(t, func(e *Engine) Locker { return NewUSCL(e, 0) })
	// Paper Figure 2d / Table 2 "Desired": both threads end with ~10s of
	// lock opportunity and fairness ~1.
	if lot0 < 9*time.Second || lot0 > 11500*time.Millisecond {
		t.Fatalf("T0 LOT = %v, want ~10s", lot0)
	}
	if lot1 < 9*time.Second || lot1 > 11500*time.Millisecond {
		t.Fatalf("T1 LOT = %v, want ~10s", lot1)
	}
	if jain < 0.98 {
		t.Fatalf("Jain = %.3f, want ~1.0", jain)
	}
}

// microWorkload runs n tasks with the given per-task CS sizes on the given
// CPUs for the horizon; returns the lock.
func microWorkload(e *Engine, lk Locker, cs []time.Duration, ncs time.Duration, cpus int) {
	for i := range cs {
		csi := cs[i]
		e.Spawn("w", TaskConfig{CPU: i % cpus}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.Lock(tk)
				tk.Compute(csi)
				lk.Unlock(tk)
				tk.Compute(ncs)
			}
		})
	}
}

func TestUSCLEqualizesMicrosecondCS(t *testing.T) {
	// Figure 5a: CS 1µs vs 3µs on 2 CPUs; u-SCL must equalize hold times.
	e := New(Config{CPUs: 2, Horizon: time.Second, Seed: 1})
	lk := NewUSCL(e, 0)
	microWorkload(e, lk, []time.Duration{time.Microsecond, 3 * time.Microsecond}, 0, 2)
	e.Run()
	s := lk.Stats()
	h0, h1 := s.Hold(0), s.Hold(1)
	ratio := float64(h0) / float64(h1)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("u-SCL hold split %v vs %v (ratio %.3f), want ~1", h0, h1, ratio)
	}
	if jain := s.JainHold(0, 1); jain < 0.99 {
		t.Fatalf("hold fairness %.4f, want ~1", jain)
	}
}

func TestTicketProportionalToCS(t *testing.T) {
	e := New(Config{CPUs: 2, Horizon: time.Second, Seed: 1})
	lk := NewTicketLock(e)
	microWorkload(e, lk, []time.Duration{time.Microsecond, 3 * time.Microsecond}, 0, 2)
	e.Run()
	s := lk.Stats()
	ratio := float64(s.Hold(1)) / float64(s.Hold(0))
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("ticket hold ratio %.3f, want ~3 (CS-proportional)", ratio)
	}
}

func TestUSCLProportionalWeights(t *testing.T) {
	// Figure 6: lock opportunity must follow scheduler weights. Give task 0
	// twice the weight; expect ~2:1 hold despite equal CS.
	e := New(Config{CPUs: 2, Horizon: 2 * time.Second, Seed: 1})
	lk := NewUSCL(e, 0)
	e.Spawn("heavy", TaskConfig{CPU: 0, Weight: 2048}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			lk.Lock(tk)
			tk.Compute(2 * time.Microsecond)
			lk.Unlock(tk)
		}
	})
	e.Spawn("light", TaskConfig{CPU: 1, Weight: 1024}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			lk.Lock(tk)
			tk.Compute(2 * time.Microsecond)
			lk.Unlock(tk)
		}
	})
	e.Run()
	s := lk.Stats()
	ratio := float64(s.Hold(0)) / float64(s.Hold(1))
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("weighted hold ratio %.3f, want ~2", ratio)
	}
}

func TestUSCLFastPathWithinSlice(t *testing.T) {
	// A lone thread must acquire many times per slice with minimal
	// overhead: ~1s of 1µs CSs -> several hundred thousand acquisitions.
	e := New(Config{CPUs: 1, Horizon: time.Second, Seed: 1})
	lk := NewUSCL(e, 0)
	var n int64
	e.Spawn("solo", TaskConfig{}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			lk.Lock(tk)
			tk.Compute(time.Microsecond)
			lk.Unlock(tk)
			n++
		}
	})
	e.Run()
	if n < 700_000 {
		t.Fatalf("lone-thread throughput %d ops/s, want >= 700k (fast path)", n)
	}
}

func TestKSCLRenamePattern(t *testing.T) {
	// k-SCL (zero slice) with a bully (10ms CS) and a victim (2µs CS, 4µs
	// NCS): the victim must get through at high rate (paper Figure 14:
	// ~49.7K renames vs 503 with mutex).
	run := func(mk func(e *Engine) Locker) (victimOps int64, s *LockStats) {
		e := New(Config{CPUs: 2, Horizon: 2 * time.Second, Seed: 1})
		lk := mk(e)
		e.Spawn("bully", TaskConfig{CPU: 0}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.Lock(tk)
				tk.Compute(10 * time.Millisecond)
				lk.Unlock(tk)
			}
		})
		var ops int64
		e.Spawn("victim", TaskConfig{CPU: 1}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.Lock(tk)
				tk.Compute(2 * time.Microsecond)
				lk.Unlock(tk)
				tk.Compute(4 * time.Microsecond)
				ops++
			}
		})
		e.Run()
		return ops, lk.Stats()
	}
	mutexOps, _ := run(func(e *Engine) Locker { return NewMutex(e) })
	ksclOps, ks := run(func(e *Engine) Locker { return NewKSCL(e) })
	if ksclOps < 20*mutexOps {
		t.Fatalf("k-SCL victim ops %d vs mutex %d: want >= 20x improvement", ksclOps, mutexOps)
	}
	if jain := ks.JainLOT(0, 1); jain < 0.9 {
		t.Fatalf("k-SCL LOT fairness %.3f, want ~1", jain)
	}
}

func TestUSCLBanIsImposed(t *testing.T) {
	// After a slice-expiring over-use, the owner must be banned: its next
	// acquire comes only after the other thread has run.
	e := New(Config{CPUs: 2, Horizon: time.Second, Seed: 1})
	lk := NewUSCL(e, 2*time.Millisecond)
	var t0FirstReacquire time.Duration
	e.Spawn("hog", TaskConfig{CPU: 0}, func(tk *Task) {
		lk.Lock(tk)
		tk.Compute(100 * time.Millisecond)
		lk.Unlock(tk)
		lk.Lock(tk)
		t0FirstReacquire = tk.Now()
		lk.Unlock(tk)
	})
	e.Spawn("peer", TaskConfig{CPU: 1}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			lk.Lock(tk)
			tk.Compute(time.Millisecond)
			lk.Unlock(tk)
		}
	})
	e.Run()
	// hog used 100ms with share 1/2 -> banned ~100ms: reacquire near 200ms.
	if t0FirstReacquire < 180*time.Millisecond {
		t.Fatalf("hog reacquired at %v, want >= ~180ms (banned)", t0FirstReacquire)
	}
}

func TestMutexMutualExclusionInvariant(t *testing.T) {
	// Structural check across all lock types: never two concurrent holders.
	locks := map[string]func(e *Engine) Locker{
		"mutex":  func(e *Engine) Locker { return NewMutex(e) },
		"spin":   func(e *Engine) Locker { return NewSpinLock(e) },
		"ticket": func(e *Engine) Locker { return NewTicketLock(e) },
		"uscl":   func(e *Engine) Locker { return NewUSCL(e, 0) },
		"kscl":   func(e *Engine) Locker { return NewKSCL(e) },
	}
	for name, mk := range locks {
		e := New(Config{CPUs: 4, Horizon: 20 * time.Millisecond, Seed: 3})
		lk := mk(e)
		var inCS, maxInCS int
		for i := 0; i < 8; i++ {
			e.Spawn("w", TaskConfig{CPU: i % 4}, func(tk *Task) {
				for tk.Now() < e.Horizon() {
					lk.Lock(tk)
					inCS++
					if inCS > maxInCS {
						maxInCS = inCS
					}
					tk.Compute(3 * time.Microsecond)
					inCS--
					lk.Unlock(tk)
					tk.Compute(time.Microsecond)
				}
			})
		}
		e.Run()
		if maxInCS != 1 {
			t.Errorf("%s: %d concurrent holders", name, maxInCS)
		}
	}
}

func TestRWSCLRatioNineToOne(t *testing.T) {
	// Figure 11: 7 readers + 1 writer with a 9:1 ratio. Writer hold time
	// must be ~10% of total hold.
	e := New(Config{CPUs: 8, Horizon: time.Second, Seed: 1})
	lk := NewRWSCL(e, 0, 9, 1)
	for i := 0; i < 7; i++ {
		e.Spawn("reader", TaskConfig{CPU: i}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.RLock(tk)
				tk.Compute(2 * time.Microsecond)
				lk.RUnlock(tk)
			}
		})
	}
	e.Spawn("writer", TaskConfig{CPU: 7}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			lk.WLock(tk)
			tk.Compute(3 * time.Microsecond)
			lk.WUnlock(tk)
		}
	})
	e.Run()
	s := lk.Stats()
	writerHold := s.Hold(7)
	// Writer opportunity is 10% of the period; with one writer and 3µs CS
	// it can use a decent portion of its slice.
	if writerHold < 20*time.Millisecond {
		t.Fatalf("writer hold %v, want substantial (not starved)", writerHold)
	}
	if writerHold > 150*time.Millisecond {
		t.Fatalf("writer hold %v, want ~<=10%% of 1s", writerHold)
	}
	if got := s.Acquisitions(7); got < 1000 {
		t.Fatalf("writer acquisitions %d, want >= 1000", got)
	}
}

func TestRWMutexStarvesWriter(t *testing.T) {
	// Figure 11 vanilla: reader preference starves the writer.
	e := New(Config{CPUs: 8, Horizon: time.Second, Seed: 1})
	lk := NewRWMutex(e)
	for i := 0; i < 7; i++ {
		e.Spawn("reader", TaskConfig{CPU: i}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.RLock(tk)
				tk.Compute(2 * time.Microsecond)
				lk.RUnlock(tk)
			}
		})
	}
	var writerOps int64
	e.Spawn("writer", TaskConfig{CPU: 7}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			lk.WLock(tk)
			tk.Compute(3 * time.Microsecond)
			lk.WUnlock(tk)
		}
	})
	e.Run()
	writerOps = lk.Stats().Acquisitions(7)
	readerOps := lk.Stats().Acquisitions(0)
	if writerOps*100 > readerOps {
		t.Fatalf("writer not starved: %d writer vs %d reader ops", writerOps, readerOps)
	}
}

func TestRWSCLReadersShareSlice(t *testing.T) {
	// Multiple readers overlap within a read slice: total reader hold can
	// exceed the read-slice wall share.
	e := New(Config{CPUs: 4, Horizon: 500 * time.Millisecond, Seed: 1})
	lk := NewRWSCL(e, 0, 1, 1)
	for i := 0; i < 4; i++ {
		e.Spawn("reader", TaskConfig{CPU: i}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.RLock(tk)
				tk.Compute(10 * time.Microsecond)
				lk.RUnlock(tk)
			}
		})
	}
	e.Run()
	total := lk.Stats().TotalHold()
	if total < 1200*time.Millisecond { // 4 readers × ~400ms+ each
		t.Fatalf("readers did not overlap: total hold %v", total)
	}
}

func TestRWSCLWriterExclusion(t *testing.T) {
	e := New(Config{CPUs: 4, Horizon: 100 * time.Millisecond, Seed: 1})
	lk := NewRWSCL(e, 0, 1, 1)
	var readersIn, writersIn, violations int
	for i := 0; i < 2; i++ {
		e.Spawn("r", TaskConfig{CPU: i}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.RLock(tk)
				readersIn++
				if writersIn > 0 {
					violations++
				}
				tk.Compute(2 * time.Microsecond)
				readersIn--
				lk.RUnlock(tk)
			}
		})
	}
	for i := 0; i < 2; i++ {
		e.Spawn("w", TaskConfig{CPU: 2 + i}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.WLock(tk)
				writersIn++
				if writersIn > 1 || readersIn > 0 {
					violations++
				}
				tk.Compute(3 * time.Microsecond)
				writersIn--
				lk.WUnlock(tk)
			}
		})
	}
	e.Run()
	if violations > 0 {
		t.Fatalf("%d rw exclusion violations", violations)
	}
}

func TestLockIdleTimeAccounting(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: time.Second, Seed: 1})
	lk := NewMutex(e)
	e.Spawn("brief", TaskConfig{}, func(tk *Task) {
		lk.Lock(tk)
		tk.Compute(100 * time.Millisecond)
		lk.Unlock(tk)
	})
	e.Run()
	idle := lk.Stats().Idle()
	if idle < 890*time.Millisecond || idle > 910*time.Millisecond {
		t.Fatalf("idle = %v, want ~900ms", idle)
	}
}
