package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Config configures an Engine.
type Config struct {
	// CPUs is the number of simulated processors. Must be >= 1.
	CPUs int
	// Horizon is the length of the simulation in virtual time.
	Horizon time.Duration
	// Seed seeds the simulation's only random source (used for arbitration
	// races such as spinlock barging). Runs with equal seeds are identical.
	Seed int64
	// Cost is the micro-architectural cost model; zero value means
	// DefaultCostModel().
	Cost CostModel
	// Sched configures the CPU scheduler; zero value means default CFS-like
	// parameters.
	Sched SchedParams
}

// Engine is a discrete-event simulation instance. Create with New, add
// tasks with Spawn, then call Run once.
type Engine struct {
	cfg    Config
	now    time.Duration
	seq    uint64
	events eventHeap
	cpus   []*cpu
	tasks  []*Task
	rng    *rand.Rand

	yield    chan struct{} // task -> engine handoff
	stopping bool
	ran      bool
	fifoSeq  uint64    // ULE round-robin sequencer
	trace    *traceBuf // lock-event trace (nil = off)
}

// New creates an Engine.
func New(cfg Config) *Engine {
	if cfg.CPUs < 1 {
		panic("sim: Config.CPUs must be >= 1")
	}
	if cfg.Horizon <= 0 {
		panic("sim: Config.Horizon must be positive")
	}
	cfg.Cost = cfg.Cost.withDefaults()
	cfg.Sched = cfg.Sched.withDefaults()
	e := &Engine{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		yield: make(chan struct{}),
	}
	for i := 0; i < cfg.CPUs; i++ {
		e.cpus = append(e.cpus, &cpu{id: i})
	}
	return e
}

// Now returns the current virtual time (nanoseconds since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Horizon returns the configured simulation length.
func (e *Engine) Horizon() time.Duration { return e.cfg.Horizon }

// Cost returns the effective cost model.
func (e *Engine) Cost() CostModel { return e.cfg.Cost }

// Rand returns the engine's deterministic random source. Only meaningful
// while the simulation runs (engine or task context).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// event is a scheduled callback. Events at equal times fire in scheduling
// order (seq), which makes the simulation deterministic.
type event struct {
	at   time.Duration
	seq  uint64
	fire func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// schedule registers fire to run at time at (clamped to now). Safe from
// both engine and task context.
func (e *Engine) schedule(at time.Duration, fire func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fire: fire})
}

// Spawn adds a simulated thread. Its function starts executing at virtual
// time cfg.Start (default 0). Spawn must be called before Run.
func (e *Engine) Spawn(name string, cfg TaskConfig, fn func(*Task)) *Task {
	if e.ran {
		panic("sim: Spawn after Run")
	}
	if cfg.Weight == 0 {
		cfg.Weight = niceToWeight(cfg.Nice)
	}
	if cfg.CPU < 0 || cfg.CPU >= len(e.cpus) {
		panic(fmt.Sprintf("sim: task %q pinned to invalid CPU %d", name, cfg.CPU))
	}
	if cfg.Class > 0 {
		panic(fmt.Sprintf("sim: task %q class %d must be negative (positive IDs are per-task entities)", name, cfg.Class))
	}
	t := &Task{
		e:      e,
		id:     len(e.tasks),
		name:   name,
		weight: cfg.Weight,
		cpu:    e.cpus[cfg.CPU],
		class:  cfg.Class,
		fn:     fn,
		resume: make(chan struct{}),
	}
	e.tasks = append(e.tasks, t)
	start := cfg.Start
	e.schedule(start, func() { e.resumeTask(t) })
	go e.taskMain(t)
	return t
}

// taskMain is the goroutine wrapper around a task's function.
func (e *Engine) taskMain(t *Task) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stopSim); !ok {
				panic(r)
			}
		}
		t.done = true
		if t.oncpu != nil {
			// Task ended while occupying a CPU: free it. (The engine
			// dispatches a successor after control returns to it.)
			t.oncpu.cur = nil
			t.oncpu = nil
		}
		e.yield <- struct{}{}
	}()
	<-t.resume // first dispatch
	if e.stopping {
		panic(stopSim{})
	}
	t.fn(t)
}

// stopSim is the panic sentinel used to unwind task goroutines at shutdown.
type stopSim struct{}

// resumeTask hands control to a task goroutine and waits until it blocks
// again (in an op) or finishes. Engine context only.
func (e *Engine) resumeTask(t *Task) {
	if t.done {
		return
	}
	t.resume <- struct{}{}
	<-e.yield
	// The task has blocked in an op or exited. If it exited or blocked
	// while still occupying a CPU slot that it no longer uses, let the CPU
	// pick a successor.
	for _, c := range e.cpus {
		if c.cur == nil {
			e.dispatch(c)
		}
	}
}

// Run executes the simulation until the horizon, then tears down all task
// goroutines. It may be called once.
func (e *Engine) Run() {
	if e.ran {
		panic("sim: Run called twice")
	}
	e.ran = true
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.at > e.cfg.Horizon {
			break
		}
		heap.Pop(&e.events)
		e.now = ev.at
		ev.fire()
	}
	// Charge partially-executed work up to the horizon so CPU-time totals
	// are exact.
	e.now = e.cfg.Horizon
	for _, c := range e.cpus {
		c.sync(e.now)
	}
	// Tear down: every live task goroutine is blocked in an op; resuming it
	// with stopping set unwinds it via the stopSim sentinel.
	e.stopping = true
	for _, t := range e.tasks {
		if !t.done {
			t.resume <- struct{}{}
			<-e.yield
		}
	}
}

// nextFifo returns the next ULE round-robin sequence number.
func (e *Engine) nextFifo() uint64 {
	e.fifoSeq++
	return e.fifoSeq
}

// TaskByID returns the i-th spawned task.
func (e *Engine) TaskByID(i int) *Task { return e.tasks[i] }

// Tasks returns all spawned tasks in spawn order.
func (e *Engine) Tasks() []*Task { return e.tasks }

// CPUCount returns the number of simulated processors.
func (e *Engine) CPUCount() int { return len(e.cpus) }

// CPUBusy returns the cumulative busy time of CPU i.
func (e *Engine) CPUBusy(i int) time.Duration { return e.cpus[i].busy }

// Utilization returns total CPU busy time divided by CPUs × horizon.
func (e *Engine) Utilization() float64 {
	var busy time.Duration
	for _, c := range e.cpus {
		busy += c.busy
	}
	return float64(busy) / (float64(len(e.cpus)) * float64(e.cfg.Horizon))
}
