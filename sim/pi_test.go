package sim

import (
	"testing"
	"time"
)

// runPriorityInversion builds the classic inversion scenario: a
// low-priority holder (nice 5) shares its CPU with an unrelated
// high-priority CPU hog (nice -5), while a high-priority waiter (nice -5)
// on another CPU wants the lock. Without inheritance the holder crawls
// through its critical section at ~1/10 CPU share and the waiter inherits
// the delay.
func runPriorityInversion(pi bool) (waiterWait time.Duration) {
	e := New(Config{CPUs: 2, Horizon: 2 * time.Second, Seed: 1})
	lk := NewSCL(e, USCLParams{Slice: 2 * time.Millisecond, Prefetch: true, PriorityInheritance: pi})
	// Low-priority holder on CPU 0: one long critical section.
	e.Spawn("holder", TaskConfig{CPU: 0, Nice: 5}, func(tk *Task) {
		lk.Lock(tk)
		tk.Compute(10 * time.Millisecond)
		lk.Unlock(tk)
	})
	// Unrelated high-priority hog competing for CPU 0.
	e.Spawn("hog", TaskConfig{CPU: 0, Nice: -5}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			tk.Compute(time.Millisecond)
		}
	})
	// High-priority waiter on CPU 1 arrives just after the holder acquires.
	var acquired time.Duration
	e.Spawn("waiter", TaskConfig{CPU: 1, Nice: -5, Start: 100 * time.Microsecond}, func(tk *Task) {
		start := tk.Now()
		lk.Lock(tk)
		acquired = tk.Now() - start
		lk.Unlock(tk)
	})
	e.Run()
	return acquired
}

func TestPriorityInheritanceShortensInversion(t *testing.T) {
	without := runPriorityInversion(false)
	with := runPriorityInversion(true)
	if without < 50*time.Millisecond {
		t.Fatalf("no inversion without PI: waiter waited only %v", without)
	}
	if with >= without/2 {
		t.Fatalf("PI did not help: %v with vs %v without", with, without)
	}
	// With the boost the holder runs at roughly half of CPU 0, so the 10ms
	// CS takes ~20ms and the waiter gets the lock soon after.
	if with > 40*time.Millisecond {
		t.Fatalf("PI wait %v, want within a few CS lengths", with)
	}
}

func TestPriorityInheritanceRestoresWeight(t *testing.T) {
	e := New(Config{CPUs: 2, Horizon: 500 * time.Millisecond, Seed: 1})
	lk := NewSCL(e, USCLParams{Slice: time.Millisecond, Prefetch: true, PriorityInheritance: true})
	var weightDuring, weightAfter int64
	holder := e.Spawn("holder", TaskConfig{CPU: 0, Nice: 5}, func(tk *Task) {
		lk.Lock(tk)
		tk.Compute(5 * time.Millisecond)
		weightDuring = tk.Weight()
		tk.Compute(5 * time.Millisecond)
		lk.Unlock(tk)
		weightAfter = tk.Weight()
	})
	e.Spawn("waiter", TaskConfig{CPU: 1, Nice: -5, Start: time.Millisecond}, func(tk *Task) {
		lk.Lock(tk)
		lk.Unlock(tk)
	})
	e.Run()
	if weightDuring != TaskWeight(-5) {
		t.Fatalf("holder weight during hold = %d, want boosted %d", weightDuring, TaskWeight(-5))
	}
	if weightAfter != TaskWeight(5) {
		t.Fatalf("holder weight after release = %d, want original %d", weightAfter, TaskWeight(5))
	}
	_ = holder
}

func TestPriorityInheritanceNoBoostFromLighterWaiter(t *testing.T) {
	e := New(Config{CPUs: 2, Horizon: 200 * time.Millisecond, Seed: 1})
	lk := NewSCL(e, USCLParams{Slice: time.Millisecond, Prefetch: true, PriorityInheritance: true})
	var weightDuring int64
	e.Spawn("holder", TaskConfig{CPU: 0, Nice: -5}, func(tk *Task) {
		lk.Lock(tk)
		tk.Compute(5 * time.Millisecond)
		weightDuring = tk.Weight()
		lk.Unlock(tk)
	})
	e.Spawn("waiter", TaskConfig{CPU: 1, Nice: 5, Start: time.Millisecond}, func(tk *Task) {
		lk.Lock(tk)
		lk.Unlock(tk)
	})
	e.Run()
	if weightDuring != TaskWeight(-5) {
		t.Fatalf("heavier holder was re-weighted to %d", weightDuring)
	}
}
