package sim

import (
	"time"

	"scl/internal/core"
)

// TaskConfig configures a simulated thread.
type TaskConfig struct {
	// Nice is the CFS nice value (-20..19); it determines the task's CPU
	// and lock-opportunity weight unless Weight is set explicitly.
	Nice int
	// Weight overrides the nice-derived scheduler weight when non-zero.
	Weight int64
	// CPU pins the task to a simulated processor (all the paper's
	// experiments pin threads).
	CPU int
	// Start delays the first instruction of the task.
	Start time.Duration
	// Class assigns the task to a lock-accounting class (the paper's §6
	// "schedulable entity" generalization): tasks sharing a class share
	// lock usage, slices and bans, so one member can use the lock while
	// another runs non-critical code — a work-conserving group. Zero
	// means the task is its own class (per-thread accounting, the paper's
	// default). Class values must be negative to avoid colliding with
	// task IDs.
	Class int64
}

func niceToWeight(nice int) int64 { return core.NiceToWeight(nice) }

// TaskWeight returns the scheduler weight a task with the given nice value
// receives (the CFS nice-to-weight table).
func TaskWeight(nice int) int64 { return core.NiceToWeight(nice) }

// Task is a simulated thread. The function passed to Spawn receives the
// Task and uses its methods (Compute, Sleep, lock operations) to consume
// virtual time. Task methods must only be called from that function.
type Task struct {
	e      *Engine
	id     int
	name   string
	weight int64
	cpu    *cpu
	fn     func(*Task)

	class  int64
	resume chan struct{}
	done   bool

	// scheduler state
	vruntime    time.Duration
	serviceNeed time.Duration // remaining CPU demand of current op
	oncpu       *cpu          // non-nil while running
	spinning    bool
	// pendingDispatch runs when the task is next placed on a CPU (used by
	// locks to start grant timers for spinners that were preempted).
	pendingDispatch func()

	// lock state
	holding int // number of locks currently held

	// accounting
	cpuTime time.Duration // total on-CPU time
	cpuHold time.Duration // on-CPU time while holding >= 1 lock
	cpuSpin time.Duration // on-CPU time spent spin-waiting

	// ULE policy state: interactivity scoring from the voluntary-sleep vs
	// run balance, cached priority class and FIFO position (see sched.go).
	uleRun     time.Duration
	uleSleep   time.Duration
	blockStart time.Duration // when the task last left a CPU voluntarily
	ulePrio    int           // 0 = interactive, 1 = timeshare (cached at enqueue)
	fifoSeq    uint64        // round-robin position within the class
}

// ID returns the task's spawn index.
func (t *Task) ID() int { return t.id }

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// Weight returns the task's scheduler weight.
func (t *Task) Weight() int64 { return t.weight }

// Entity returns the lock-accounting entity this task belongs to: its
// class when one was configured, otherwise the task itself.
func (t *Task) Entity() core.ID {
	if t.class != 0 {
		return core.ID(t.class)
	}
	return core.ID(t.id)
}

// Engine returns the owning engine.
func (t *Task) Engine() *Engine { return t.e }

// Now returns the current virtual time.
func (t *Task) Now() time.Duration { return t.e.now }

// CPUTime returns the task's cumulative on-CPU time.
func (t *Task) CPUTime() time.Duration { return t.cpuTime }

// CPUHoldTime returns on-CPU time accrued while holding at least one lock.
func (t *Task) CPUHoldTime() time.Duration { return t.cpuHold }

// CPUSpinTime returns on-CPU time accrued while spin-waiting.
func (t *Task) CPUSpinTime() time.Duration { return t.cpuSpin }

// block yields control to the engine and waits to be resumed. It unwinds
// the goroutine when the simulation is shutting down.
func (t *Task) block() {
	t.e.yield <- struct{}{}
	<-t.resume
	if t.e.stopping {
		panic(stopSim{})
	}
}

// Compute consumes d of CPU service. Under CPU contention the elapsed
// virtual time exceeds d, exactly as a busy thread sharing a processor.
func (t *Task) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	if t.oncpu != nil {
		// Continue on the current CPU without a scheduling round-trip.
		// Sync first so pending charges do not eat into the new demand.
		t.oncpu.sync(t.e.now)
		t.serviceNeed = d
		t.e.retick(t.oncpu)
	} else {
		t.serviceNeed = d
		t.e.enqueue(t, true)
	}
	t.block()
}

// Sleep blocks the task for d of virtual wall time without consuming CPU,
// then pays the wake-up cost (getting back on the CPU) before returning.
func (t *Task) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.e.releaseCPU(t)
	t.e.schedule(t.e.now+d, func() {
		t.serviceNeed = t.e.cfg.Cost.WakeCPU
		t.e.enqueue(t, true)
	})
	t.block()
}

// SleepUntil blocks until the virtual clock reaches at.
func (t *Task) SleepUntil(at time.Duration) {
	if at <= t.e.now {
		return
	}
	t.Sleep(at - t.e.now)
}

// park blocks the task indefinitely; a later unpark (plus wake latency and
// wake CPU cost) resumes it. Used by sleeping locks.
func (t *Task) park() {
	t.e.releaseCPU(t)
	t.block()
}

// unpark makes a parked task runnable after the configured wake latency.
// Callable from any context (schedules events only).
func (e *Engine) unpark(t *Task) {
	e.schedule(e.now+e.cfg.Cost.WakeLatency, func() {
		if t.done {
			return
		}
		t.serviceNeed = e.cfg.Cost.WakeCPU
		e.enqueue(t, true)
	})
}

// spin turns the task into a CPU-consuming waiter. It returns when some
// lock grants to the task by calling grantSpin. The task keeps (or
// competes for) its CPU the whole time, like a hardware spin-wait.
func (t *Task) spin() {
	t.spinning = true
	if t.oncpu != nil {
		t.oncpu.sync(t.e.now)
		t.serviceNeed = serviceInf
		if t.oncpu.quantumEnd <= t.e.now {
			t.oncpu.quantumEnd = t.e.now + t.oncpu.quantum(t.e.cfg.Sched)
		}
		t.e.retick(t.oncpu)
	} else {
		t.serviceNeed = serviceInf
		t.e.enqueue(t, true)
	}
	t.block()
	t.spinning = false
}

// grantSpin ends a task's spin after it has executed notice worth of
// CPU time (the release-to-acquire latency). If the spinner is currently
// preempted, the countdown starts when it next gets on a CPU. Engine or
// task context; the spinner's spin() returns when the countdown completes.
func (e *Engine) grantSpin(t *Task, notice time.Duration) {
	if notice <= 0 {
		notice = 1
	}
	apply := func() {
		// Charge any outstanding spin time first: the notice countdown
		// starts now, not at the task's last accounting point.
		if t.oncpu != nil {
			t.oncpu.sync(e.now)
		}
		t.serviceNeed = notice
		if t.oncpu != nil {
			e.retick(t.oncpu)
		}
	}
	if t.oncpu != nil {
		apply()
		return
	}
	// Runnable but not running: arm the countdown at next dispatch.
	t.pendingDispatch = apply
}

// cancelSpinGrant undoes a pending grant (barging stole the lock): the
// task resumes indefinite spinning.
func (e *Engine) cancelSpinGrant(t *Task) {
	t.pendingDispatch = nil
	if t.oncpu != nil {
		t.oncpu.sync(e.now)
	}
	t.serviceNeed = serviceInf
	if t.oncpu != nil {
		e.retick(t.oncpu)
	}
}
