package sim

// SpinLock simulates a test-and-set spinlock with busy-waiting. Waiters
// consume CPU the whole time they wait; the next owner is decided by a
// modeled cacheline race, so a releasing thread with a short non-critical
// section can barge ahead of long-suffering spinners (paper §3.1).
type SpinLock struct {
	e        *Engine
	heldBy   *Task
	reserved *Task // spinner with a grant in flight
	spinners []*Task
	holds    holdTimes
	stats    *LockStats
}

// NewSpinLock creates a spinlock in engine e.
func NewSpinLock(e *Engine) *SpinLock {
	return &SpinLock{e: e, holds: holdTimes{}, stats: newLockStats(e)}
}

// Stats returns the lock's statistics.
func (l *SpinLock) Stats() *LockStats { return l.stats }

// Lock acquires the lock, spinning until available.
func (l *SpinLock) Lock(t *Task) {
	start := t.e.now
	t.Compute(l.e.cfg.Cost.AtomicOp) // the TAS attempt
	for {
		if l.heldBy == nil && l.reserved == nil {
			break // free: our TAS wins
		}
		if l.heldBy == nil && l.reserved != nil && l.tryBarge() {
			break // won the cacheline race against the reserved spinner
		}
		l.spinners = append(l.spinners, t)
		t.spin() // returns when granted via grantNext
		l.reserved = nil
		break
	}
	l.heldBy = t
	t.holding++
	l.holds.start(t)
	l.stats.onAcquire(t)
	l.stats.onWait(t, t.e.now-start)
}

// tryBarge models the race between a fresh TAS and a spinner that was
// already granted the lock. A preempted (off-CPU) spinner always loses;
// an on-CPU spinner loses with probability StealProb.
func (l *SpinLock) tryBarge() bool {
	loser := l.reserved
	if loser.oncpu != nil && l.e.rng.Float64() >= l.e.cfg.Cost.StealProb {
		return false
	}
	l.e.cancelSpinGrant(loser)
	// The loser resumes spinning at the head of the line.
	l.spinners = append([]*Task{loser}, l.spinners...)
	l.reserved = nil
	return true
}

// Unlock releases the lock and lets the spinners race for it.
func (l *SpinLock) Unlock(t *Task) {
	if l.heldBy != t {
		panic("sim: SpinLock.Unlock by non-owner")
	}
	t.Compute(l.e.cfg.Cost.AtomicOp) // the releasing store
	l.heldBy = nil
	t.holding--
	l.stats.onRelease(t, l.holds.end(t))
	l.grantNext()
}

// grantNext picks the winning spinner — an on-CPU one if any (a preempted
// spinner cannot observe the release) — and starts its acquire countdown.
func (l *SpinLock) grantNext() {
	if len(l.spinners) == 0 || l.reserved != nil {
		return
	}
	idx := 0
	for i, s := range l.spinners {
		if s.oncpu != nil {
			idx = i
			break
		}
	}
	winner := l.spinners[idx]
	l.spinners = append(l.spinners[:idx], l.spinners[idx+1:]...)
	l.reserved = winner
	l.e.grantSpin(winner, l.e.cfg.Cost.handoff(len(l.spinners)+1, len(l.e.cpus)))
}

var _ Locker = (*SpinLock)(nil)

// TicketLock simulates a fetch-and-add ticket lock: strict FIFO
// acquisition order, busy-waiting waiters. Acquisition fairness does not
// imply usage fairness — a thread with a longer critical section still
// dominates the lock (paper §3.1, Figure 2c).
type TicketLock struct {
	e        *Engine
	heldBy   *Task
	reserved *Task
	queue    []*Task
	holds    holdTimes
	stats    *LockStats
}

// NewTicketLock creates a ticket lock in engine e.
func NewTicketLock(e *Engine) *TicketLock {
	return &TicketLock{e: e, holds: holdTimes{}, stats: newLockStats(e)}
}

// Stats returns the lock's statistics.
func (l *TicketLock) Stats() *LockStats { return l.stats }

// Lock takes a ticket and spins until it is served.
func (l *TicketLock) Lock(t *Task) {
	start := t.e.now
	t.Compute(l.e.cfg.Cost.AtomicOp) // fetch-and-add
	if l.heldBy != nil || l.reserved != nil || len(l.queue) > 0 {
		l.queue = append(l.queue, t)
		t.spin()
		l.reserved = nil
	}
	l.heldBy = t
	t.holding++
	l.holds.start(t)
	l.stats.onAcquire(t)
	l.stats.onWait(t, t.e.now-start)
}

// Unlock bumps now-serving; the head ticket holder acquires after the
// coherence handoff (which grows with the spinner population — every
// spinner polls the same counter).
func (l *TicketLock) Unlock(t *Task) {
	if l.heldBy != t {
		panic("sim: TicketLock.Unlock by non-owner")
	}
	t.Compute(l.e.cfg.Cost.AtomicOp)
	l.heldBy = nil
	t.holding--
	l.stats.onRelease(t, l.holds.end(t))
	if len(l.queue) > 0 {
		head := l.queue[0]
		l.queue = l.queue[1:]
		l.reserved = head
		l.e.grantSpin(head, l.e.cfg.Cost.handoff(len(l.queue)+1, len(l.e.cpus)))
	}
}

var _ Locker = (*TicketLock)(nil)
