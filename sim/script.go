package sim

import (
	"fmt"
	"time"
)

// This file defines the differential oracle's shared workload format: a
// Script is a fully deterministic, timing-explicit description of a
// lock workload that can be executed both by this simulator (RunScript)
// and by the real scl library under the deterministic checker
// (internal/check/oracle). The two executions are then compared
// grant-by-grant. Scripts should keep their timings on the millisecond
// scale and well separated: the simulator charges nanosecond-scale
// micro-architectural costs (CAS, wake latency) that the real library's
// virtual clock does not, so decisions separated by less than ~10µs may
// legitimately resolve differently on the two sides.

// ScriptOpKind enumerates the operations of a Script.
type ScriptOpKind int

// Script operations.
const (
	// OpThink spends off-lock time (Think).
	OpThink ScriptOpKind = iota
	// OpAcquire takes the lock, holds it for Hold, and releases it.
	OpAcquire
	// OpAcquireTimeout is OpAcquire with a give-up deadline (Timeout):
	// if the lock is not granted in time the op abandons the wait.
	OpAcquireTimeout
	// OpClose deregisters the entity mid-script (scl.Handle.Close); a
	// later acquire re-registers it with fresh usage.
	OpClose
	// OpDo runs the critical section through the combining API (USCL.Do,
	// scl.Handle.Do): a contended call may be executed by the current
	// holder on the caller's behalf, with usage charged to the caller
	// either way. The grant is recorded when the call returns, so two
	// substrates may legitimately order concurrent OpDo grants
	// differently (scenario files allow grant-order for that).
	OpDo
)

// ScriptOp is one scripted operation.
type ScriptOp struct {
	Kind    ScriptOpKind
	Hold    time.Duration // critical-section length (acquire kinds)
	Think   time.Duration // off-lock time (OpThink)
	Timeout time.Duration // give-up deadline (OpAcquireTimeout)
}

// ScriptEntity is one entity's deterministic operation sequence.
type ScriptEntity struct {
	Name  string
	Start time.Duration // delay before the first op
	Ops   []ScriptOp
}

// Script is a deterministic lock workload, executable both by the
// simulator and by the real scl library.
type Script struct {
	// Slice is the lock slice (0 = the paper's 2ms default).
	Slice time.Duration
	// Horizon bounds the virtual run time (0 = 1s).
	Horizon time.Duration
	// Entities are the concurrent actors, each on its own CPU.
	Entities []ScriptEntity
}

// ScriptResult is what a script execution observed; the oracle compares
// two of these field by field.
type ScriptResult struct {
	// Grants is the global grant order: one entity index per successful
	// acquisition, in acquisition order.
	Grants []int
	// Timeouts counts abandoned OpAcquireTimeout ops per entity index.
	Timeouts []int
	// Bans counts imposed penalties per entity index.
	Bans []int
	// Hold is the measured in-critical-section time per entity index.
	Hold []time.Duration
}

// HoldShare returns entity e's fraction of the total measured hold time
// (0 when nothing was held).
func (r ScriptResult) HoldShare(e int) float64 {
	var total time.Duration
	for _, h := range r.Hold {
		total += h
	}
	if total == 0 {
		return 0
	}
	return float64(r.Hold[e]) / float64(total)
}

// String renders the result compactly for divergence reports.
func (r ScriptResult) String() string {
	return fmt.Sprintf("grants=%v timeouts=%v bans=%v holds=%v", r.Grants, r.Timeouts, r.Bans, r.Hold)
}

// RunScript executes the script on a fresh simulated SCL, one task per
// entity pinned to its own CPU (so waits measure lock behaviour, not
// CPU contention), and returns what it observed. The lock runs in the
// parked (no-prefetch) configuration: a spinning head waiter could
// never abandon on timeout, while the real library's LockContext can
// abandon any queued waiter until the grant lands.
func RunScript(s Script) ScriptResult {
	slice := s.Slice
	if slice == 0 {
		slice = 2 * time.Millisecond
	}
	horizon := s.Horizon
	if horizon == 0 {
		horizon = time.Second
	}
	e := New(Config{CPUs: len(s.Entities), Horizon: horizon, Seed: 1})
	e.EnableTrace(1 << 16)
	l := NewSCL(e, USCLParams{Slice: slice})
	res := ScriptResult{
		Timeouts: make([]int, len(s.Entities)),
		Bans:     make([]int, len(s.Entities)),
		Hold:     make([]time.Duration, len(s.Entities)),
	}
	for i, ent := range s.Entities {
		i, ent := i, ent
		e.Spawn(ent.Name, TaskConfig{CPU: i, Start: ent.Start}, func(t *Task) {
			for _, op := range ent.Ops {
				switch op.Kind {
				case OpThink:
					t.Sleep(op.Think)
				case OpAcquire, OpAcquireTimeout:
					if op.Kind == OpAcquireTimeout {
						if !l.LockTimeout(t, op.Timeout) {
							res.Timeouts[i]++
							continue
						}
					} else {
						l.Lock(t)
					}
					res.Grants = append(res.Grants, i)
					at := t.Now()
					t.Compute(op.Hold)
					res.Hold[i] += t.Now() - at
					l.Unlock(t)
				case OpClose:
					l.CloseEntity(t)
				case OpDo:
					l.Do(t, op.Hold)
					res.Grants = append(res.Grants, i)
					res.Hold[i] += op.Hold
				}
			}
			// End-of-script close, mirroring a real entity's deferred
			// Handle.Close: the entity leaves the books so the survivors'
			// fair shares are computed over live entities only.
			l.CloseEntity(t)
		})
	}
	e.Run()
	byName := make(map[string]int, len(s.Entities))
	for i, ent := range s.Entities {
		byName[ent.Name] = i
	}
	for _, ev := range e.TraceEvents() {
		if ev.Kind == TraceBan {
			if i, ok := byName[ev.Task]; ok {
				res.Bans[i]++
			}
		}
	}
	return res
}
