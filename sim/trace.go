package sim

import (
	"fmt"
	"strings"
	"time"
)

// TraceKind classifies a traced lock event.
type TraceKind string

// Trace event kinds.
const (
	TraceAcquire  TraceKind = "acquire"
	TraceRelease  TraceKind = "release"
	TraceBan      TraceKind = "ban"
	TraceTransfer TraceKind = "transfer"
)

// TraceEvent is one recorded lock event.
type TraceEvent struct {
	At   time.Duration
	Kind TraceKind
	Task string
	// Detail carries kind-specific context (hold length for release, ban
	// duration for ban).
	Detail time.Duration
}

// String renders one event.
func (ev TraceEvent) String() string {
	if ev.Detail > 0 {
		return fmt.Sprintf("%12v %-8s %-12s %v", ev.At, ev.Kind, ev.Task, ev.Detail)
	}
	return fmt.Sprintf("%12v %-8s %-12s", ev.At, ev.Kind, ev.Task)
}

// EnableTrace starts recording lock events (acquisitions, releases,
// slice transfers, bans) across all locks created on this engine, keeping
// at most cap events (older events are dropped, newest kept). Call before
// Run; read with TraceEvents afterwards.
func (e *Engine) EnableTrace(cap int) {
	if cap <= 0 {
		cap = 1 << 16
	}
	e.trace = &traceBuf{cap: cap}
}

// TraceEvents returns the recorded events in chronological order.
func (e *Engine) TraceEvents() []TraceEvent {
	if e.trace == nil {
		return nil
	}
	return e.trace.events()
}

// FormatTrace renders events as a text log.
func FormatTrace(evs []TraceEvent) string {
	var b strings.Builder
	for _, ev := range evs {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// traceBuf is a bounded ring of trace events.
type traceBuf struct {
	cap   int
	buf   []TraceEvent
	start int
	full  bool
}

func (t *traceBuf) add(ev TraceEvent) {
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.start] = ev
	t.start = (t.start + 1) % t.cap
	t.full = true
}

func (t *traceBuf) events() []TraceEvent {
	if !t.full {
		out := make([]TraceEvent, len(t.buf))
		copy(out, t.buf)
		return out
	}
	out := make([]TraceEvent, 0, t.cap)
	out = append(out, t.buf[t.start:]...)
	out = append(out, t.buf[:t.start]...)
	return out
}

// traceEvent records one event if tracing is enabled.
func (e *Engine) traceEvent(kind TraceKind, t *Task, detail time.Duration) {
	if e.trace == nil {
		return
	}
	e.trace.add(TraceEvent{At: e.now, Kind: kind, Task: t.name, Detail: detail})
}
