package sim

import (
	"time"

	"scl/internal/core"
)

// RWSCL simulates the Reader-Writer Scheduler-Cooperative Lock: threads are
// classified by the work they do (readers vs writers), and the two classes
// receive alternating lock slices whose lengths are proportional to the
// configured class weights (paper §4.5). Within a class's slice its members
// acquire freely (readers share; writers exclude each other); the other
// class spins until its slice starts and the current class drains.
type RWSCL struct {
	e    *Engine
	ctrl *core.RWController

	readers int   // active readers
	writer  *Task // active writer

	waitR []*Task
	waitW []*Task

	phaseEvtGen uint64
	phaseFresh  bool // no grant has landed yet in the current slice

	holds holdTimes
	stats *LockStats
}

// NewRWSCL creates an RW-SCL with the given class weights (e.g. 9 and 1)
// and slice period (0 = the 2ms default).
func NewRWSCL(e *Engine, period time.Duration, readWeight, writeWeight int64) *RWSCL {
	return &RWSCL{
		e: e,
		ctrl: core.NewRWController(core.RWParams{
			Period:      period,
			ReadWeight:  readWeight,
			WriteWeight: writeWeight,
		}),
		holds: holdTimes{},
		stats: newLockStats(e),
	}
}

// Stats returns the lock's statistics.
func (l *RWSCL) Stats() *LockStats { return l.stats }

// Controller exposes the slice controller (tests, ablations).
func (l *RWSCL) Controller() *core.RWController { return l.ctrl }

// RLock acquires the lock shared. Readers enter freely during a read
// slice; during a write slice they spin until the read slice starts.
func (l *RWSCL) RLock(t *Task) {
	start := t.e.now
	t.Compute(l.e.cfg.Cost.AtomicOp) // counter increment
	l.advance()
	if !(l.ctrl.Phase() == core.PhaseRead && l.writer == nil) {
		l.waitR = append(l.waitR, t)
		l.armPhaseEnd()
		t.spin() // granted in grantEligible; reader count already bumped
	} else {
		l.classEntered()
		l.readers++
	}
	t.holding++
	l.holds.start(t)
	l.stats.onAcquire(t)
	l.stats.onWait(t, t.e.now-start)
}

// RUnlock releases a shared hold.
func (l *RWSCL) RUnlock(t *Task) {
	t.Compute(l.e.cfg.Cost.AtomicOp)
	l.readers--
	t.holding--
	l.stats.onRelease(t, l.holds.end(t))
	l.advance()
}

// WLock acquires the lock exclusive. Writers contend with each other
// within the write slice (so a second writer can use the slice while the
// first executes non-critical code, paper Figure 12b).
func (l *RWSCL) WLock(t *Task) {
	start := t.e.now
	t.Compute(l.e.cfg.Cost.AtomicOp) // CAS on the writer bit
	l.advance()
	if !(l.ctrl.Phase() == core.PhaseWrite && l.writer == nil && l.readers == 0) {
		l.waitW = append(l.waitW, t)
		l.armPhaseEnd()
		t.spin() // granted in grantEligible; writer slot already taken
	} else {
		l.classEntered()
		l.writer = t
	}
	t.holding++
	l.holds.start(t)
	l.stats.onAcquire(t)
	l.stats.onWait(t, t.e.now-start)
}

// WUnlock releases the exclusive hold.
func (l *RWSCL) WUnlock(t *Task) {
	if l.writer != t {
		panic("sim: RWSCL.WUnlock by non-writer")
	}
	t.Compute(l.e.cfg.Cost.AtomicOp)
	l.writer = nil
	t.holding--
	l.stats.onRelease(t, l.holds.end(t))
	l.advance()
}

// advance updates the slice phase and grants eligible waiters. Called
// after every state change and at slice boundaries.
func (l *RWSCL) advance() {
	now := l.e.now
	var curWants, otherWants bool
	if l.ctrl.Phase() == core.PhaseRead {
		curWants = l.readers > 0 || len(l.waitR) > 0
		otherWants = len(l.waitW) > 0 || l.writer != nil
	} else {
		curWants = l.writer != nil || len(l.waitW) > 0
		otherWants = len(l.waitR) > 0 || l.readers > 0
	}
	// Never switch away while the other class still drains; the controller
	// handles expiry, we gate on the drain.
	if l.ctrl.Phase() == core.PhaseRead && l.writer != nil {
		return
	}
	before := l.ctrl.Phase()
	if l.ctrl.MaybeSwitch(now, curWants, otherWants) != before {
		l.phaseFresh = true
	}
	l.grantEligible()
	l.armPhaseEnd()
}

// classEntered restarts the slice clock on the first acquisition of a
// fresh slice, so drain time is not charged to the incoming class.
func (l *RWSCL) classEntered() {
	if l.phaseFresh {
		l.ctrl.RestartPhase(l.e.now)
		l.phaseFresh = false
	}
}

// grantEligible hands the lock to waiters allowed by the current phase:
// all waiting readers during a read slice (once the writer drains), or one
// waiting writer during a write slice (once readers drain).
func (l *RWSCL) grantEligible() {
	handoff := l.e.cfg.Cost.handoff(len(l.waitR)+len(l.waitW), len(l.e.cpus))
	if l.ctrl.Phase() == core.PhaseRead {
		if l.writer != nil {
			return // drain the writer first
		}
		if len(l.waitR) > 0 {
			l.classEntered()
		}
		for _, r := range l.waitR {
			l.readers++
			l.e.grantSpin(r, handoff)
		}
		l.waitR = l.waitR[:0]
		return
	}
	if l.readers > 0 || l.writer != nil {
		return // drain readers / current writer first
	}
	if len(l.waitW) > 0 {
		l.classEntered()
		w := l.waitW[0]
		l.waitW = l.waitW[1:]
		l.writer = w
		l.e.grantSpin(w, handoff)
	}
}

// armPhaseEnd schedules a phase re-evaluation at the current slice's end
// when the opposite class waits; without it a slice with no releases would
// never hand over.
func (l *RWSCL) armPhaseEnd() {
	var otherWaits bool
	if l.ctrl.Phase() == core.PhaseRead {
		otherWaits = len(l.waitW) > 0
	} else {
		otherWaits = len(l.waitR) > 0
	}
	if !otherWaits {
		return
	}
	l.phaseEvtGen++
	gen := l.phaseEvtGen
	at := l.ctrl.PhaseEnd()
	l.e.schedule(at, func() {
		if gen != l.phaseEvtGen {
			return
		}
		l.advance()
	})
}

var _ RWLocker = (*RWSCL)(nil)

// RWMutex simulates a pthread-style reader-preference reader-writer lock:
// readers always enter when no writer is active — even past waiting
// writers — so a steady reader stream starves writers (paper §5.5.2,
// Figure 11 "vanilla").
type RWMutex struct {
	e       *Engine
	readers int
	writer  *Task
	waitR   []*mutexWaiter
	waitW   []*mutexWaiter
	holds   holdTimes
	stats   *LockStats
}

// NewRWMutex creates the baseline reader-preference rwlock.
func NewRWMutex(e *Engine) *RWMutex {
	return &RWMutex{e: e, holds: holdTimes{}, stats: newLockStats(e)}
}

// Stats returns the lock's statistics.
func (l *RWMutex) Stats() *LockStats { return l.stats }

// RLock acquires shared; it only waits while a writer is active.
func (l *RWMutex) RLock(t *Task) {
	start := t.e.now
	for {
		t.Compute(l.e.cfg.Cost.AtomicOp)
		if l.writer == nil {
			break
		}
		w := &mutexWaiter{t: t}
		l.waitR = append(l.waitR, w)
		t.Compute(l.e.cfg.Cost.ParkCPU)
		if w.permit {
			continue
		}
		if l.writer == nil {
			l.removeR(w)
			continue
		}
		w.parked = true
		t.park()
	}
	l.readers++
	t.holding++
	l.holds.start(t)
	l.stats.onAcquire(t)
	l.stats.onWait(t, t.e.now-start)
}

// RUnlock releases shared; the last reader gives a waiting writer a chance
// (which incoming readers will usually beat — reader preference).
func (l *RWMutex) RUnlock(t *Task) {
	t.Compute(l.e.cfg.Cost.AtomicOp)
	l.readers--
	t.holding--
	l.stats.onRelease(t, l.holds.end(t))
	if l.readers == 0 && len(l.waitW) > 0 {
		l.wakeOneWriter(t)
	}
}

// WLock acquires exclusive, waiting for all readers and writers to leave.
func (l *RWMutex) WLock(t *Task) {
	start := t.e.now
	for {
		t.Compute(l.e.cfg.Cost.AtomicOp)
		if l.writer == nil && l.readers == 0 {
			break
		}
		w := &mutexWaiter{t: t}
		l.waitW = append(l.waitW, w)
		t.Compute(l.e.cfg.Cost.ParkCPU)
		if w.permit {
			continue
		}
		if l.writer == nil && l.readers == 0 {
			l.removeW(w)
			continue
		}
		w.parked = true
		t.park()
	}
	l.writer = t
	t.holding++
	l.holds.start(t)
	l.stats.onAcquire(t)
	l.stats.onWait(t, t.e.now-start)
}

// WUnlock releases exclusive and wakes all waiting readers (preference)
// plus one writer.
func (l *RWMutex) WUnlock(t *Task) {
	if l.writer != t {
		panic("sim: RWMutex.WUnlock by non-writer")
	}
	l.writer = nil
	t.holding--
	l.stats.onRelease(t, l.holds.end(t))
	woke := false
	for _, w := range l.waitR {
		w.permit = true
		if w.parked {
			l.e.unparkJitter(w.t)
		}
		woke = true
	}
	l.waitR = l.waitR[:0]
	if !woke && len(l.waitW) > 0 {
		l.wakeOneWriter(t)
		return
	}
	if woke {
		t.Compute(l.e.cfg.Cost.FutexWake)
	} else {
		t.Compute(l.e.cfg.Cost.AtomicOp)
	}
}

func (l *RWMutex) wakeOneWriter(waker *Task) {
	w := l.waitW[0]
	l.waitW = l.waitW[1:]
	w.permit = true
	if w.parked {
		l.e.unparkJitter(w.t)
	}
	waker.Compute(l.e.cfg.Cost.FutexWake)
}

func (l *RWMutex) removeR(w *mutexWaiter) {
	for i, x := range l.waitR {
		if x == w {
			l.waitR = append(l.waitR[:i], l.waitR[i+1:]...)
			return
		}
	}
}

func (l *RWMutex) removeW(w *mutexWaiter) {
	for i, x := range l.waitW {
		if x == w {
			l.waitW = append(l.waitW[:i], l.waitW[i+1:]...)
			return
		}
	}
}

var _ RWLocker = (*RWMutex)(nil)
