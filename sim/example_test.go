package sim_test

import (
	"fmt"
	"time"

	"scl/sim"
)

// Example reproduces the paper's §3 toy example in a few lines: two
// simulated threads with 10s and 1s critical sections compete for 20
// seconds of virtual time. Under a scheduler-cooperative lock both end up
// with equal lock opportunity. Simulations are deterministic, so the
// output is exact.
func Example() {
	e := sim.New(sim.Config{CPUs: 2, Horizon: 20 * time.Second, Seed: 1})
	lk := sim.NewUSCL(e, 0) // default 2ms lock slice

	worker := func(cs time.Duration) func(*sim.Task) {
		return func(t *sim.Task) {
			for t.Now() < e.Horizon() {
				lk.Lock(t)
				t.Compute(cs) // the critical section
				lk.Unlock(t)
			}
		}
	}
	e.Spawn("T0", sim.TaskConfig{CPU: 0}, worker(10*time.Second))
	e.Spawn("T1", sim.TaskConfig{CPU: 1}, worker(time.Second))
	e.Run()

	s := lk.Stats()
	fmt.Printf("T0 held %.0fs, T1 held %.0fs, Jain fairness %.2f\n",
		s.Hold(0).Seconds(), s.Hold(1).Seconds(), s.JainLOT(0, 1))
	// Output: T0 held 10s, T1 held 10s, Jain fairness 1.00
}
