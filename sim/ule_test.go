package sim

import (
	"testing"
	"time"
)

func uleConfig(cpus int, horizon time.Duration) Config {
	return Config{CPUs: cpus, Horizon: horizon, Seed: 1,
		Sched: SchedParams{Policy: "ule"}}
}

func TestULETimeshareRoundRobin(t *testing.T) {
	// Two CPU-bound tasks on one CPU split it roughly equally under ULE's
	// round robin.
	e := New(uleConfig(1, time.Second))
	work := func(tk *Task) {
		for tk.Now() < e.Horizon() {
			tk.Compute(time.Millisecond)
		}
	}
	e.Spawn("a", TaskConfig{}, work)
	e.Spawn("b", TaskConfig{}, work)
	e.Run()
	a, b := e.TaskByID(0).CPUTime(), e.TaskByID(1).CPUTime()
	ratio := float64(a) / float64(b)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("ULE split %v vs %v (ratio %.2f)", a, b, ratio)
	}
}

func TestULEInteractivePreemptsBatch(t *testing.T) {
	// An interactive task (mostly sleeping) sharing a CPU with a CPU-bound
	// batch task must get on the CPU promptly at each wake: its iteration
	// count should be near the sleep-limited maximum.
	e := New(uleConfig(1, time.Second))
	e.Spawn("batch", TaskConfig{}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			tk.Compute(10 * time.Millisecond)
		}
	})
	var iters int
	e.Spawn("interactive", TaskConfig{}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			tk.Compute(50 * time.Microsecond)
			iters++
			tk.Sleep(time.Millisecond)
		}
	})
	e.Run()
	// Sleep-limited max is ~950 iterations; demand ~2/3 of it (under CFS
	// with 6ms latency it also does well; the point is ULE must not
	// regress it).
	if iters < 600 {
		t.Fatalf("interactive managed only %d iterations under ULE", iters)
	}
	if batchCPU := e.TaskByID(0).CPUTime(); batchCPU < 800*time.Millisecond {
		t.Fatalf("batch got %v CPU, want the bulk of the second", batchCPU)
	}
}

func TestULEBatchDoesNotStarve(t *testing.T) {
	// Several interactive tasks must not starve a batch task completely.
	e := New(uleConfig(1, time.Second))
	e.Spawn("batch", TaskConfig{}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			tk.Compute(5 * time.Millisecond)
		}
	})
	for i := 0; i < 3; i++ {
		e.Spawn("int", TaskConfig{}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				tk.Compute(100 * time.Microsecond)
				tk.Sleep(500 * time.Microsecond)
			}
		})
	}
	e.Run()
	if batchCPU := e.TaskByID(0).CPUTime(); batchCPU < 200*time.Millisecond {
		t.Fatalf("batch starved: %v CPU", batchCPU)
	}
}

func TestULEDeterministic(t *testing.T) {
	run := func() [2]time.Duration {
		e := New(uleConfig(2, 50*time.Millisecond))
		lk := NewUSCL(e, 0)
		for i := 0; i < 4; i++ {
			e.Spawn("w", TaskConfig{CPU: i % 2}, func(tk *Task) {
				for tk.Now() < e.Horizon() {
					lk.Lock(tk)
					tk.Compute(2 * time.Microsecond)
					lk.Unlock(tk)
					tk.Compute(time.Microsecond)
				}
			})
		}
		e.Run()
		return [2]time.Duration{lk.Stats().Hold(0), lk.Stats().Hold(3)}
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("ULE nondeterministic: %v vs %v", a, b)
	}
}

func TestULEUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{CPUs: 1, Horizon: time.Millisecond, Sched: SchedParams{Policy: "bogus"}})
}

// TestUSCLFairUnderULE is the §5.4 claim: u-SCL's usage fairness holds
// under a ULE-style scheduler just as under CFS.
func TestUSCLFairUnderULE(t *testing.T) {
	e := New(uleConfig(2, time.Second))
	lk := NewUSCL(e, 0)
	specs := []struct{ cs time.Duration }{{time.Microsecond}, {3 * time.Microsecond}}
	for i, s := range specs {
		cs := s.cs
		e.Spawn("w", TaskConfig{CPU: i}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.Lock(tk)
				tk.Compute(cs)
				lk.Unlock(tk)
			}
		})
	}
	e.Run()
	if jain := lk.Stats().JainHold(0, 1); jain < 0.99 {
		t.Fatalf("u-SCL hold fairness under ULE = %.3f, want ~1", jain)
	}
}
