package sim

import (
	"testing"
	"time"
)

func TestDefaultCostModelComplete(t *testing.T) {
	c := DefaultCostModel()
	if c.AtomicOp <= 0 || c.CachelineXfer <= 0 || c.SpinNotice <= 0 ||
		c.FutexWake <= 0 || c.WakeLatency <= 0 || c.WakeCPU <= 0 ||
		c.ParkCPU <= 0 || c.CrossNodeFactor <= 1 || c.NUMANode <= 0 ||
		c.StealProb <= 0 || c.StealProb >= 1 {
		t.Fatalf("default cost model has degenerate fields: %+v", c)
	}
}

func TestCostModelWithDefaultsFillsZeros(t *testing.T) {
	c := CostModel{AtomicOp: 42 * time.Nanosecond}.withDefaults()
	if c.AtomicOp != 42*time.Nanosecond {
		t.Fatalf("explicit field overwritten: %v", c.AtomicOp)
	}
	d := DefaultCostModel()
	if c.FutexWake != d.FutexWake || c.NUMANode != d.NUMANode {
		t.Fatalf("zero fields not defaulted: %+v", c)
	}
}

func TestHandoffScalesWithSpinners(t *testing.T) {
	c := DefaultCostModel()
	h1 := c.handoff(1, 2)
	h8 := c.handoff(8, 2)
	if h8 <= h1 {
		t.Fatalf("handoff(8)=%v not > handoff(1)=%v", h8, h1)
	}
	if got := c.handoff(0, 2); got != h1 {
		t.Fatalf("handoff clamps spinners at 1: %v vs %v", got, h1)
	}
}

func TestHandoffCrossNodePenalty(t *testing.T) {
	c := DefaultCostModel()
	within := c.handoff(4, c.NUMANode)
	across := c.handoff(4, c.NUMANode+1)
	want := time.Duration(float64(within) * c.CrossNodeFactor)
	if across != want {
		t.Fatalf("cross-node handoff %v, want %v", across, want)
	}
}

func TestSchedParamsDefaults(t *testing.T) {
	p := SchedParams{}.withDefaults()
	if p.Policy != "cfs" {
		t.Fatalf("default policy %q", p.Policy)
	}
	if p.TargetLatency != 6*time.Millisecond || p.MinGranularity != 750*time.Microsecond {
		t.Fatalf("CFS defaults wrong: %+v", p)
	}
}

func TestULEInteractivityScore(t *testing.T) {
	mk := func(run, sleep time.Duration) *Task {
		return &Task{uleRun: run, uleSleep: sleep}
	}
	// Fresh tasks start interactive.
	if !uleInteractive(mk(0, 0)) {
		t.Error("fresh task not interactive")
	}
	// Mostly sleeping: interactive (score 50*run/sleep <= 30 -> run/sleep <= 0.6).
	if !uleInteractive(mk(10*time.Millisecond, 100*time.Millisecond)) {
		t.Error("sleeper not interactive")
	}
	// CPU-bound: not interactive.
	if uleInteractive(mk(100*time.Millisecond, time.Millisecond)) {
		t.Error("CPU hog classified interactive")
	}
	// Pure runner, zero sleep: not interactive.
	if uleInteractive(mk(time.Millisecond, 0)) {
		t.Error("pure runner classified interactive")
	}
	// Boundary: run/sleep = 0.6 -> score 30 -> interactive (<=).
	if !uleInteractive(mk(6*time.Millisecond, 10*time.Millisecond)) {
		t.Error("boundary score 30 not interactive")
	}
}

func TestEngineAccessors(t *testing.T) {
	e := New(Config{CPUs: 3, Horizon: time.Second, Seed: 5})
	if e.CPUCount() != 3 {
		t.Fatalf("CPUCount = %d", e.CPUCount())
	}
	if e.Horizon() != time.Second {
		t.Fatalf("Horizon = %v", e.Horizon())
	}
	if e.Cost().AtomicOp == 0 {
		t.Fatal("Cost not defaulted")
	}
	tk := e.Spawn("x", TaskConfig{Nice: -3, CPU: 1}, func(t *Task) {})
	if tk.Weight() != 1991 {
		t.Fatalf("nice -3 weight = %d", tk.Weight())
	}
	if tk.Name() != "x" || tk.ID() != 0 || tk.Engine() != e {
		t.Fatal("task accessors wrong")
	}
	e.Run()
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{CPUs: 0, Horizon: time.Second},
		{CPUs: 1, Horizon: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestInvalidPinPanics(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: time.Second})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.Spawn("bad", TaskConfig{CPU: 5}, func(*Task) {})
}
