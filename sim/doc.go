// Package sim is a deterministic discrete-event simulator of CPUs, a
// proportional-share (CFS-like) scheduler, and locks. It is the substrate
// on which this repository reproduces the evaluation of "Avoiding Scheduler
// Subversion using Scheduler-Cooperative Locks" (EuroSys 2020): simulated
// threads are ordinary Go functions, time is virtual nanoseconds, and every
// run with the same seed produces identical results.
//
// Concurrency model: each simulated thread (Task) runs on its own goroutine,
// but exactly one goroutine — the engine or a single task — executes at any
// moment. Control is handed back and forth over unbuffered channels, so all
// engine and lock state is accessed without data races and the simulation is
// fully sequential and deterministic.
//
// # Paper-to-code map
//
// The simulated locks mirror the paper's lock taxonomy (§2, §4, §5):
//
//   - uscl.go — the u-SCL, driven by the same core.Accountant as the real
//     scl.Mutex (usage accounting, slices, penalties of §4).
//   - rwscl.go — the RW-SCL with weighted, alternating class slices (§5),
//     driven by core.RWController.
//   - mutex.go, spinlock.go, lock.go — the baselines: barging mutex,
//     spinlock (with randomized barging arbitration), ticket lock.
//   - sched.go — the CFS-like proportional-share scheduler the locks
//     subvert (or cooperate with); a ULE-like variant is exercised by
//     ule_test.go.
//   - cost.go — the micro-architectural cost model (acquisition cost,
//     context-switch cost, wakeup latency).
//   - trace.go — the simulator's own event trace (EnableTrace,
//     TraceEvents); cmd/scltrace -json converts it to the scl/trace JSONL
//     schema so cmd/scltop can replay simulated and real runs identically.
//
// Every table and figure of the paper's evaluation is regenerated on this
// engine by internal/experiments, via cmd/sclbench. Use the simulator when
// you need the paper's full CPU-allocation claims (goroutines cannot be
// pinned to CPUs); use the real locks in package scl when you need actual
// mutual exclusion in a running program.
package sim
