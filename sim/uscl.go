package sim

import (
	"time"

	"scl/internal/core"
)

// USCLParams configures a simulated Scheduler-Cooperative Lock.
type USCLParams struct {
	// Slice is the lock slice length (paper default 2ms). Zero with
	// ZeroSlice false means the default; set ZeroSlice for k-SCL behaviour
	// where every release is a slice boundary.
	Slice     time.Duration
	ZeroSlice bool
	// Prefetch enables the next-thread prefetch optimization: the head
	// waiter spins so ownership transfers without a wake round-trip
	// (paper §4.3). u-SCL sets it; the simplified k-SCL does not.
	Prefetch bool
	// InactiveTimeout enables k-SCL's GC of entities that have not used
	// the lock recently (paper uses 1s).
	InactiveTimeout time.Duration
	// BanCap bounds one penalty (0 = core default).
	BanCap time.Duration
	// PriorityInheritance makes the lock holder inherit the scheduler
	// weight of the heaviest waiter for the duration of its hold, so a
	// low-priority holder preempted on a contended CPU cannot invert a
	// high-priority waiter's latency (the paper's §7 suggestion to combine
	// priority inheritance with SCLs, after Sha et al.).
	PriorityInheritance bool
}

// USCL simulates the user-space Scheduler-Cooperative Lock: a K42/MCS-style
// queue lock with per-thread usage accounting, lock slices, penalties for
// over-users, and next-thread prefetch (paper §4.3).
type USCL struct {
	e    *Engine
	p    USCLParams
	acct *core.Accountant

	heldBy *Task
	// baseWeight is the holder's own weight while PriorityInheritance has
	// it boosted (0 = no boost active).
	baseWeight int64
	// next is the head waiter (spinning when Prefetch, parked otherwise);
	// parked holds the rest of the queue in arrival order.
	next     *usclWaiter
	parked   []*usclWaiter
	transfer bool // ownership grant in flight to next

	// combine holds published critical sections (Do) awaiting the
	// holder's release-time drain, in publish order; the drain takes the
	// newest first, matching the real lock's Treiber-stack pop.
	combine []*usclCombine

	sliceEvtGen uint64 // validity of the scheduled slice-end transfer

	holds holdTimes
	stats *LockStats
}

type usclWaiter struct {
	t           *Task
	promoted    bool // moved from parked to next
	parkedAt    bool // actually asleep (vs still entering the kernel)
	granted     bool // ownership handed to this waiter
	intra       bool // intra-class handoff: the slice continues
	wakePending bool // an unpark is already in flight
}

// wake unparks a sleeping waiter exactly once per sleep.
func (l *USCL) wake(w *usclWaiter) {
	if w.parkedAt && !w.wakePending {
		w.wakePending = true
		l.e.unpark(w.t)
	}
}

// usclCombine is one published critical section (Do) awaiting the
// holder's drain.
type usclCombine struct {
	t        *Task
	hold     time.Duration
	since    time.Duration // publish time, for the wait sample
	done     bool          // executed by the combiner
	rejected bool          // self-serve through the classic path
	parkedAt bool
}

// usclCombineBatch mirrors the real lock's per-release drain bound
// (scl's combineBatch).
const usclCombineBatch = 16

// Do acquires the lock, runs a critical section of length hold, and
// releases — semantically Lock; Compute(hold); Unlock — but when another
// task holds the lock the section is published for the holder to execute
// on its way out, mirroring scl.Handle.Do. Usage lands on t's entity
// either way (Accountant.FoldBatch), so bans and slice rotation are
// exactly as if t had acquired itself; only the queueing dance is elided.
func (l *USCL) Do(t *Task, hold time.Duration) {
	id := t.Entity()
	if !l.acct.Registered(id) {
		l.acct.Register(id, t.weight, t.e.now)
	}
	if l.acct.BannedUntil(id) > t.e.now || (l.heldBy == nil && !l.transfer) {
		// Banned entities sleep out their penalty in the classic path (a
		// real combiner rejects them at drain time); a free lock is
		// cheaper to take than to combine over.
		l.doClassic(t, hold)
		return
	}
	t.Compute(l.e.cfg.Cost.CombinePublish) // push CAS on the contended stack
	if l.heldBy == nil && !l.transfer {
		// The holder left while we were publishing; self-serve.
		l.doClassic(t, hold)
		return
	}
	r := &usclCombine{t: t, hold: hold, since: t.e.now}
	l.combine = append(l.combine, r)
	t.Compute(l.e.cfg.Cost.ParkCPU)
	for !r.done && !r.rejected {
		r.parkedAt = true
		t.park()
		r.parkedAt = false
	}
	if r.rejected {
		l.doClassic(t, hold)
	}
}

// doClassic is Do through the ordinary acquire path.
func (l *USCL) doClassic(t *Task, hold time.Duration) {
	l.Lock(t)
	t.Compute(hold)
	l.Unlock(t)
}

// wakeCombine resumes a publisher whose request resolved; the releaser
// pays the wake syscall for a parked one. A publisher still on the park
// entry path observes the resolution before sleeping.
func (l *USCL) wakeCombine(r *usclCombine, t *Task) {
	if r.parkedAt {
		t.Compute(l.e.cfg.Cost.FutexWake)
		l.e.unpark(r.t)
	}
}

// drainCombine executes published critical sections on the releasing
// holder's CPU: up to usclCombineBatch sections, newest first, with
// banned publishers rejected to the classic path (where they sleep out
// the penalty), exactly as the real lock's drain does. Usage lands
// through Accountant.FoldBatch after the batch runs, so each publisher
// is charged — and banned — as if it had acquired itself. Runs between
// the holder's release bookkeeping and the lock going free: the lock
// still reads as held, so nobody acquires over the batch.
func (l *USCL) drainCombine(t *Task) {
	var batch []*usclCombine
	for len(l.combine) > 0 && len(batch) < usclCombineBatch {
		r := l.combine[len(l.combine)-1]
		l.combine = l.combine[:len(l.combine)-1]
		if l.acct.BannedUntil(r.t.Entity()) > t.e.now {
			r.rejected = true
			l.wakeCombine(r, t)
			continue
		}
		batch = append(batch, r)
	}
	if len(batch) == 0 {
		return
	}
	charges := make([]core.Charge, len(batch))
	for i, r := range batch {
		t.Compute(l.e.cfg.Cost.CombineDispatch)
		l.stats.onWait(r.t, t.e.now-r.since)
		l.stats.onAcquire(r.t)
		cs := t.e.now
		t.Compute(r.hold)
		charges[i] = core.Charge{ID: r.t.Entity(), Usage: t.e.now - cs}
		l.stats.onRelease(r.t, charges[i].Usage)
	}
	pens := l.acct.FoldBatch(charges, t.e.now)
	for i, r := range batch {
		if pens[i] > 0 {
			l.e.traceEvent(TraceBan, r.t, pens[i])
		}
		r.done = true
		l.wakeCombine(r, t)
	}
}

// rejectStrandedCombines self-serves publishers left queued when the
// lock goes idle: with no holder left to drain them, the real lock's
// release-time wake-walk makes publishers withdraw and acquire
// classically, and the simulation mirrors that.
func (l *USCL) rejectStrandedCombines(t *Task) {
	if l.heldBy != nil || l.transfer || len(l.combine) == 0 {
		return
	}
	for _, r := range l.combine {
		r.rejected = true
		l.wakeCombine(r, t)
	}
	l.combine = l.combine[:0]
}

// NewUSCL creates a u-SCL: 2ms slices (unless overridden) and next-thread
// prefetch.
func NewUSCL(e *Engine, slice time.Duration) *USCL {
	if slice == 0 {
		slice = core.DefaultSlice
	}
	return newSCL(e, USCLParams{Slice: slice, Prefetch: true})
}

// NewKSCL creates a k-SCL: zero-length slices (every release is a slice
// boundary), no prefetch, and 1s inactive-entity GC (paper §4.4).
func NewKSCL(e *Engine) *USCL {
	return newSCL(e, USCLParams{ZeroSlice: true, InactiveTimeout: time.Second})
}

// NewSCL creates a Scheduler-Cooperative Lock with explicit parameters.
func NewSCL(e *Engine, p USCLParams) *USCL { return newSCL(e, p) }

func newSCL(e *Engine, p USCLParams) *USCL {
	slice := p.Slice
	if slice == 0 && !p.ZeroSlice {
		slice = core.DefaultSlice
	}
	return &USCL{
		e: e,
		p: p,
		acct: core.NewAccountant(core.Params{
			Slice:           slice,
			InactiveTimeout: p.InactiveTimeout,
			BanCap:          p.BanCap,
		}),
		holds: holdTimes{},
		stats: newLockStats(e),
	}
}

// Stats returns the lock's statistics.
func (l *USCL) Stats() *LockStats { return l.stats }

// Accountant exposes the usage accounting (for tests and ablations).
func (l *USCL) Accountant() *core.Accountant { return l.acct }

// Lock acquires the lock. A banned caller first sleeps out its penalty;
// then it either fast-paths (it owns the live slice, or the lock is wholly
// free) or queues: the head waiter spins (u-SCL) or parks (k-SCL), the
// rest park.
func (l *USCL) Lock(t *Task) {
	start := t.e.now
	id := t.Entity()
	if !l.acct.Registered(id) {
		l.acct.Register(id, t.weight, t.e.now)
	}
	if until := l.acct.BannedUntil(id); until > t.e.now {
		t.SleepUntil(until)
	}
	t.Compute(l.e.cfg.Cost.AtomicOp) // fast-path CAS
	if l.tryFast(t) {
		l.acquire(t)
	} else {
		l.enqueue(t) // acquisition completes inside finishGrant
	}
	l.stats.onWait(t, t.e.now-start)
}

// LockTimeout is Lock with a give-up deadline: if the lock has not been
// granted within timeout of the call, the waiter abandons the queue and
// LockTimeout returns false. A waiter that has started spinning (the
// promoted head under Prefetch) is committed — a timeout landing after
// that is too late, mirroring the real lock's grant/cancel race where a
// grant that lands first wins. Parked waiters, including a promoted
// head in the no-prefetch configuration, can abandon until granted,
// matching scl.Handle.LockContext (the differential oracle therefore
// scripts cancellation against the no-prefetch variant).
func (l *USCL) LockTimeout(t *Task, timeout time.Duration) bool {
	start := t.e.now
	deadline := start + timeout
	id := t.Entity()
	if !l.acct.Registered(id) {
		l.acct.Register(id, t.weight, t.e.now)
	}
	if until := l.acct.BannedUntil(id); until > t.e.now {
		if until >= deadline {
			// The ban outlasts the deadline; the real lock's context fires
			// during the ban sleep and the acquire never starts.
			t.SleepUntil(deadline)
			return false
		}
		t.SleepUntil(until)
	}
	t.Compute(l.e.cfg.Cost.AtomicOp) // fast-path CAS
	if l.tryFast(t) {
		l.acquire(t)
		l.stats.onWait(t, t.e.now-start)
		return true
	}
	if !l.enqueueTimeout(t, deadline) {
		return false
	}
	l.stats.onWait(t, t.e.now-start)
	return true
}

// enqueueTimeout is enqueue with an abandon deadline. It reports whether
// the lock was acquired.
func (l *USCL) enqueueTimeout(t *Task, deadline time.Duration) bool {
	l.inheritPriority(t)
	w := &usclWaiter{t: t}
	if l.next == nil {
		w.promoted = true
		l.next = w
	} else {
		l.parked = append(l.parked, w)
	}
	abandoned := false
	if !w.promoted || !l.p.Prefetch {
		// The event fires in engine context (the waiter is blocked), so the
		// flags are stable. A spinning waiter is committed; a parked one —
		// promoted head included — abandons its queue slot.
		l.e.schedule(deadline, func() {
			if w.granted || abandoned || w.t.spinning {
				return
			}
			if w.promoted && l.p.Prefetch {
				return // about to spin: committed
			}
			abandoned = true
			if l.next == w {
				l.next = nil
				l.promoteHead(nil)
			} else {
				l.removeParked(w)
			}
			l.wake(w)
		})
	}
	if w.promoted && l.p.Prefetch {
		l.armSliceEnd()
		t.spin() // granted via grantNext
		l.finishGrant(w, t)
		return true
	}
	t.Compute(l.e.cfg.Cost.ParkCPU)
	for {
		if w.granted {
			break
		}
		if abandoned {
			return false
		}
		if w.promoted && l.p.Prefetch {
			l.armSliceEnd()
			t.spin()
			break
		}
		if w.promoted {
			l.armSliceEnd()
		}
		w.parkedAt = true
		t.park()
		w.parkedAt = false
		w.wakePending = false
	}
	l.finishGrant(w, t)
	return true
}

// removeParked detaches an abandoning waiter from the parked queue.
func (l *USCL) removeParked(w *usclWaiter) {
	for i, x := range l.parked {
		if x == w {
			l.parked = append(l.parked[:i], l.parked[i+1:]...)
			return
		}
	}
}

// CloseEntity deregisters t's accounting entity, mirroring
// scl.Handle.Close: its usage history leaves the books, and — because
// deregistering the slice owner frees a reserved lock whose armed
// slice-end event no longer matches — a stranded head waiter is handed
// the lock immediately. The caller must not hold the lock. A later
// Lock/LockTimeout by the same task re-registers the entity afresh.
func (l *USCL) CloseEntity(t *Task) {
	if l.heldBy == t {
		panic("sim: USCL.CloseEntity while holding the lock")
	}
	l.acct.Unregister(t.Entity())
	if l.heldBy == nil && !l.transfer {
		if _, ok := l.acct.SliceOwner(); !ok && l.next != nil {
			l.transferOwnership()
		}
	}
}

// inheritPriority boosts the current holder to the waiter's weight when
// priority inheritance is enabled and the waiter outranks it.
func (l *USCL) inheritPriority(waiter *Task) {
	if !l.p.PriorityInheritance {
		return
	}
	h := l.heldBy
	if h == nil || waiter.weight <= h.weight {
		return
	}
	if l.baseWeight == 0 {
		l.baseWeight = h.weight
	}
	l.e.setWeight(h, waiter.weight)
}

// restorePriority undoes an active inheritance boost at release.
func (l *USCL) restorePriority(t *Task) {
	if l.baseWeight == 0 {
		return
	}
	l.e.setWeight(t, l.baseWeight)
	l.baseWeight = 0
}

// acquire marks t as holder. Must run without an intervening yield after
// the eligibility decision.
func (l *USCL) acquire(t *Task) {
	l.heldBy = t
	t.holding++
	l.acct.OnAcquire(t.Entity(), t.e.now)
	l.holds.start(t)
	l.stats.onAcquire(t)
}

// tryFast reports whether t may take the free lock immediately: it is the
// live slice owner, or nobody owns a slice and nobody waits.
func (l *USCL) tryFast(t *Task) bool {
	if l.heldBy != nil || l.transfer {
		return false
	}
	owner, ok := l.acct.SliceOwner()
	switch {
	case ok && owner == t.Entity() && !l.acct.SliceExpired(t.e.now):
		// The live slice belongs to this task's entity: any member of the
		// class may take the free lock (work-conserving groups, paper §6).
		return true
	case !ok && l.next == nil:
		l.acct.StartSlice(t.Entity(), t.e.now)
		return true
	}
	return false
}

// enqueue blocks t until it is granted slice ownership.
func (l *USCL) enqueue(t *Task) {
	l.inheritPriority(t)
	w := &usclWaiter{t: t}
	if l.next == nil {
		w.promoted = true
		l.next = w
	} else {
		l.parked = append(l.parked, w)
	}
	if w.promoted && l.p.Prefetch {
		l.armSliceEnd()
		t.spin() // granted via grantNext
		l.finishGrant(w, t)
		return
	}
	// Parked path: sleep until promoted+granted (k-SCL grants directly to
	// the parked head, u-SCL promotes parked waiters to spinning next).
	t.Compute(l.e.cfg.Cost.ParkCPU)
	for {
		if w.granted {
			break
		}
		if w.promoted && l.p.Prefetch {
			l.armSliceEnd()
			t.spin()
			break
		}
		if w.promoted {
			l.armSliceEnd()
		}
		w.parkedAt = true
		t.park()
		w.parkedAt = false
		w.wakePending = false
	}
	l.finishGrant(w, t)
}

// finishGrant completes an ownership transfer in the grantee's context.
// The acquisition itself must land before promoteHead's wake cost yields
// control: with a slice shorter than the handoff, a slice-end event firing
// in that window would otherwise see a free lock and grant it a second
// time.
func (l *USCL) finishGrant(w *usclWaiter, t *Task) {
	l.transfer = false
	if l.next == w {
		l.next = nil
	}
	if !w.intra {
		// A slice transfer; an intra-class handoff keeps the running slice.
		l.acct.StartSlice(t.Entity(), t.e.now)
	}
	l.acquire(t)
	l.promoteHead(t)
}

// promoteHead moves the head of the parked queue into next, waking it if
// prefetch is on so it starts spinning (paper Figure 3, step 8). The wake
// cost is paid by the new owner.
func (l *USCL) promoteHead(owner *Task) {
	if l.next != nil || len(l.parked) == 0 {
		return
	}
	w := l.parked[0]
	l.parked = l.parked[1:]
	w.promoted = true
	l.next = w
	if l.p.Prefetch {
		l.wake(w)
		if owner != nil {
			owner.Compute(l.e.cfg.Cost.FutexWake)
		}
	}
}

// Unlock releases the lock; if the slice expired, ownership transfers to
// the head waiter and the accountant may ban the releaser.
func (l *USCL) Unlock(t *Task) {
	if l.heldBy != t {
		panic("sim: USCL.Unlock by non-owner")
	}
	l.restorePriority(t)
	t.Compute(l.accountingCost())
	rel := l.acct.OnRelease(t.Entity(), t.e.now)
	t.holding--
	l.stats.onRelease(t, l.holds.end(t))
	if len(l.combine) > 0 {
		// Drain published sections (Do) while still the nominal holder:
		// heldBy stays set, so nobody acquires over the batch, exactly as
		// the real lock keeps its held bit through the drain.
		l.drainCombine(t)
	}
	l.heldBy = nil
	if l.p.InactiveTimeout > 0 {
		l.acct.Expire(t.e.now)
	}
	if rel.Penalty > 0 {
		l.e.traceEvent(TraceBan, t, rel.Penalty)
	}
	if !rel.SliceExpired {
		// Work-conserving classes (paper §6): a queued waiter from the
		// slice-owning class may take the free lock for the rest of the
		// slice — jumping the queue, since the slice is its class's to
		// use — instead of letting the lock idle through the releaser's
		// non-critical section.
		if owner, ok := l.acct.SliceOwner(); ok && !l.transfer {
			if w := l.takeClassWaiter(owner); w != nil {
				l.grantTo(w, true)
				return
			}
		}
		l.armSliceEnd()
		l.rejectStrandedCombines(t)
		return
	}
	l.transferOwnership()
	l.rejectStrandedCombines(t)
}

// takeClassWaiter finds a queued waiter belonging to the given entity and
// detaches it from the parked queue (the next slot is left in place; its
// grant clears it in finishGrant).
func (l *USCL) takeClassWaiter(owner core.ID) *usclWaiter {
	if l.next != nil && l.next.t.Entity() == owner {
		return l.next
	}
	for i, w := range l.parked {
		if w.t.Entity() == owner {
			l.parked = append(l.parked[:i], l.parked[i+1:]...)
			return w
		}
	}
	return nil
}

// accountingCost is the per-release bookkeeping cost; it crosses sockets
// on machines larger than one NUMA node (the paper's §5.3 dip at 16+
// threads).
func (l *USCL) accountingCost() time.Duration {
	c := l.e.cfg.Cost.AtomicOp
	if len(l.e.cpus) > l.e.cfg.Cost.NUMANode {
		c = time.Duration(float64(c) * l.e.cfg.Cost.CrossNodeFactor)
	}
	return c
}

// transferOwnership hands the (free, slice-expired) lock to the head
// waiter, or clears the slice if nobody waits.
func (l *USCL) transferOwnership() {
	if l.transfer {
		return
	}
	w := l.next
	if w == nil {
		l.acct.ClearSlice()
		return
	}
	l.grantTo(w, false)
}

// grantTo hands the free lock to waiter w; intra marks a handoff within
// the owning class's live slice.
func (l *USCL) grantTo(w *usclWaiter, intra bool) {
	if !intra {
		l.e.traceEvent(TraceTransfer, w.t, 0)
	}
	l.transfer = true
	w.intra = intra
	w.granted = true
	switch {
	case w.t.spinning:
		l.e.grantSpin(w.t, l.e.cfg.Cost.handoff(1, len(l.e.cpus)))
	case w.parkedAt:
		l.wake(w)
	default:
		// Still on the park entry path; it will observe granted before
		// sleeping.
	}
}

// armSliceEnd schedules a transfer for the case where the slice expires
// while the owner is outside the critical section (the lock is free but
// reserved for the slice owner). Without it, waiters could stall forever
// behind an owner that stopped acquiring.
func (l *USCL) armSliceEnd() {
	owner, ok := l.acct.SliceOwner()
	if !ok || l.next == nil {
		return
	}
	end := l.acct.SliceEnd()
	l.sliceEvtGen++
	gen := l.sliceEvtGen
	e := l.e
	e.schedule(end, func() {
		if gen != l.sliceEvtGen {
			return
		}
		cur, ok2 := l.acct.SliceOwner()
		if !ok2 || cur != owner || l.heldBy != nil || l.transfer {
			return
		}
		if !l.acct.SliceExpired(e.now) {
			return
		}
		l.transferOwnership()
	})
}

var _ Locker = (*USCL)(nil)
