package sim

import "time"

// Locker is a simulated mutual-exclusion lock. Lock and Unlock must be
// called from task context (inside a Spawned function) with the calling
// task.
type Locker interface {
	Lock(t *Task)
	Unlock(t *Task)
	Stats() *LockStats
}

// RWLocker is a simulated reader-writer lock.
type RWLocker interface {
	RLock(t *Task)
	RUnlock(t *Task)
	WLock(t *Task)
	WUnlock(t *Task)
	Stats() *LockStats
}

// holdTimes tracks per-task acquisition timestamps for hold accounting.
type holdTimes map[int]time.Duration

func (h holdTimes) start(t *Task) { h[t.id] = t.e.now }

func (h holdTimes) end(t *Task) time.Duration {
	d := t.e.now - h[t.id]
	delete(h, t.id)
	return d
}
