package sim

import (
	"math"
	"time"
)

// SchedParams configures the simulated CPU scheduler. The defaults mirror
// Linux CFS: proportional-share via virtual runtime, a scheduling-latency
// target divided among runnable tasks, wakeup preemption, and bounded
// sleeper credit. Policy "ule" selects a FreeBSD-ULE-like policy instead:
// interactivity scoring from the voluntary-sleep/run ratio, interactive
// tasks preempting timeshare tasks, round-robin within each class (the
// paper reports "initial results with the ULE scheduler are similar",
// §5.4; the ule experiment checks that claim).
type SchedParams struct {
	// Policy selects the scheduling algorithm: "cfs" (default) or "ule".
	Policy string
	// TargetLatency is the period within which every runnable task on a CPU
	// should run once (CFS sched_latency, default 6ms).
	TargetLatency time.Duration
	// MinGranularity is the minimum timeslice (CFS min_granularity, 750µs).
	MinGranularity time.Duration
	// WakeupGranularity limits wakeup preemption: a waking task preempts
	// only if its vruntime is at least this far behind the current task's
	// (CFS wakeup_granularity, 1ms).
	WakeupGranularity time.Duration
	// SleeperCredit caps how far behind the CPU's min vruntime a waking
	// task may be placed (CFS places sleepers at min_vruntime - latency/2).
	SleeperCredit time.Duration
}

func (p SchedParams) withDefaults() SchedParams {
	if p.Policy == "" {
		p.Policy = "cfs"
	}
	if p.Policy != "cfs" && p.Policy != "ule" {
		panic("sim: unknown scheduler policy " + p.Policy)
	}
	if p.TargetLatency == 0 {
		p.TargetLatency = 6 * time.Millisecond
	}
	if p.MinGranularity == 0 {
		p.MinGranularity = 750 * time.Microsecond
	}
	if p.WakeupGranularity == 0 {
		p.WakeupGranularity = time.Millisecond
	}
	if p.SleeperCredit == 0 {
		p.SleeperCredit = 3 * time.Millisecond
	}
	return p
}

// serviceInf marks a task that consumes CPU indefinitely (spinning).
const serviceInf = time.Duration(math.MaxInt64)

// cpu is one simulated processor with a CFS-like runqueue.
type cpu struct {
	id         int
	rq         taskHeap // runnable, not running
	cur        *Task
	tickGen    uint64        // invalidates stale tick events
	quantumEnd time.Duration // end of cur's current timeslice
	lastSync   time.Duration // last time cur was charged
	minvr      time.Duration // monotone floor for wakeup placement
	busy       time.Duration // cumulative busy time
}

// taskHeap orders runnable tasks: under CFS by (vruntime, id); under ULE
// by (priority class, FIFO order). Ordering keys are cached at enqueue so
// the heap invariant cannot be violated by state changes while queued;
// id/sequence tie-breaks keep the simulation deterministic.
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.e.cfg.Sched.Policy == "ule" {
		if a.ulePrio != b.ulePrio {
			return a.ulePrio < b.ulePrio
		}
		return a.fifoSeq < b.fifoSeq
	}
	if a.vruntime != b.vruntime {
		return a.vruntime < b.vruntime
	}
	return a.id < b.id
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *taskHeap) push(t *Task) {
	*h = append(*h, t)
	h.up(len(*h) - 1)
}

func (h *taskHeap) popMin() *Task {
	old := *h
	t := old[0]
	n := len(old)
	old[0] = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	return t
}

func (h taskHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.Less(i, p) {
			break
		}
		h.Swap(i, p)
		i = p
	}
}

func (h taskHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.Less(l, small) {
			small = l
		}
		if r < n && h.Less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.Swap(i, small)
		i = small
	}
}

// sync charges the currently running task for CPU consumed since lastSync.
// It must be called before any mutation that depends on up-to-date
// accounting. Idempotent at a given time.
func (c *cpu) sync(now time.Duration) {
	if c.cur == nil {
		c.lastSync = now
		return
	}
	ran := now - c.lastSync
	c.lastSync = now
	if ran <= 0 {
		return
	}
	t := c.cur
	c.busy += ran
	t.cpuTime += ran
	if t.holding > 0 {
		t.cpuHold += ran
	}
	if t.spinning {
		t.cpuSpin += ran
	}
	t.vruntime += time.Duration(int64(ran) * refWeight / t.weight)
	if t.vruntime > c.minvr {
		c.minvr = t.vruntime
	}
	// ULE interactivity history: on-CPU time, decayed so the score tracks
	// recent behaviour.
	t.uleRun += ran
	if t.uleRun+t.uleSleep > uleDecayWindow {
		t.uleRun /= 2
		t.uleSleep /= 2
	}
	if t.serviceNeed != serviceInf {
		t.serviceNeed -= ran
		if t.serviceNeed < 0 {
			t.serviceNeed = 0
		}
	}
}

const refWeight = 1024

// uleDecayWindow bounds the ULE interactivity history (FreeBSD uses ~5s;
// scaled down to our shorter simulations).
const uleDecayWindow = 500 * time.Millisecond

// uleInteractive classifies a task from its voluntary-sleep/run balance
// (FreeBSD ULE: score 0..100, interactive at <= 30).
func uleInteractive(t *Task) bool {
	run, sleep := t.uleRun, t.uleSleep
	if run == 0 && sleep == 0 {
		return true // fresh tasks start interactive, as in ULE
	}
	var score float64
	if sleep >= run {
		if sleep == 0 {
			return false
		}
		score = 50 * float64(run) / float64(sleep)
	} else {
		score = 100 - 50*float64(sleep)/float64(run)
	}
	return score <= 30
}

// totalWeight sums the weights of cur and all queued tasks.
func (c *cpu) totalWeight() int64 {
	var w int64
	if c.cur != nil {
		w = c.cur.weight
	}
	for _, t := range c.rq {
		w += t.weight
	}
	return w
}

// quantum computes cur's timeslice: CFS divides the latency target by
// weight share; ULE uses an equal slice per runnable task.
func (c *cpu) quantum(p SchedParams) time.Duration {
	if c.cur == nil {
		return p.TargetLatency
	}
	var q time.Duration
	if p.Policy == "ule" {
		q = p.TargetLatency / time.Duration(len(c.rq)+1)
	} else {
		q = time.Duration(int64(p.TargetLatency) * c.cur.weight / c.totalWeight())
	}
	if q < p.MinGranularity {
		q = p.MinGranularity
	}
	return q
}

// dispatch picks the next task for an idle CPU. Engine or task context.
func (e *Engine) dispatch(c *cpu) {
	c.sync(e.now)
	if c.cur != nil || len(c.rq) == 0 {
		return
	}
	t := c.rq.popMin()
	c.cur = t
	t.oncpu = c
	if t.vruntime > c.minvr {
		c.minvr = t.vruntime
	}
	c.lastSync = e.now
	c.quantumEnd = e.now + c.quantum(e.cfg.Sched)
	e.retick(c)
	if t.pendingDispatch != nil {
		fn := t.pendingDispatch
		t.pendingDispatch = nil
		fn()
	}
}

// retick (re)schedules the CPU's next scheduling event: the earlier of
// cur's op completion and its quantum expiry. A generation counter voids
// superseded events.
func (e *Engine) retick(c *cpu) {
	c.tickGen++
	if c.cur == nil {
		return
	}
	at := c.quantumEnd
	if c.cur.serviceNeed != serviceInf {
		if end := e.now + c.cur.serviceNeed; end < at {
			at = end
		}
	} else if len(c.rq) == 0 {
		// A lone spinner: no event needed; charging is lazy.
		return
	}
	gen := c.tickGen
	e.schedule(at, func() { e.tick(c, gen) })
}

// tick handles op completion and quantum expiry for c.cur.
func (e *Engine) tick(c *cpu, gen uint64) {
	if gen != c.tickGen {
		return
	}
	c.sync(e.now)
	t := c.cur
	if t == nil {
		e.dispatch(c)
		return
	}
	if t.serviceNeed == 0 {
		// Op complete: hand control to the task goroutine; it will either
		// continue on this CPU (next op adjusts service and reticks) or
		// release it (blocking op clears cur).
		e.resumeTask(t)
		if c.cur == t && t.serviceNeed == 0 && !t.done {
			// Defensive: the task issued no new op but kept the CPU; treat
			// as released.
			c.cur = nil
			t.oncpu = nil
			e.dispatch(c)
		}
		return
	}
	// Quantum expiry.
	if len(c.rq) == 0 {
		c.quantumEnd = e.now + c.quantum(e.cfg.Sched)
		e.retick(c)
		return
	}
	e.preemptCur(c)
	e.dispatch(c)
}

// preemptCur moves the running task back to the runqueue (ULE: to the
// tail of its class — round robin).
func (e *Engine) preemptCur(c *cpu) {
	c.sync(e.now)
	t := c.cur
	if t == nil {
		return
	}
	c.cur = nil
	t.oncpu = nil
	if e.cfg.Sched.Policy == "ule" {
		t.ulePrio = ulePrioOf(t)
		t.fifoSeq = e.nextFifo()
	}
	c.rq.push(t)
	c.tickGen++
}

// ulePrioOf maps interactivity to the two ULE priority classes.
func ulePrioOf(t *Task) int {
	if uleInteractive(t) {
		return 0
	}
	return 1
}

// enqueue makes t runnable on its pinned CPU. fresh marks a transition
// from blocked (or newly spawned) rather than a preemption, enabling
// sleeper-credit placement and wakeup preemption.
func (e *Engine) enqueue(t *Task, fresh bool) {
	c := t.cpu
	c.sync(e.now)
	ule := e.cfg.Sched.Policy == "ule"
	if fresh {
		if ule {
			// Voluntary off-CPU time counts as sleep for the
			// interactivity score.
			if t.blockStart > 0 {
				t.uleSleep += e.now - t.blockStart
				t.blockStart = 0
				if t.uleRun+t.uleSleep > uleDecayWindow {
					t.uleRun /= 2
					t.uleSleep /= 2
				}
			}
		} else {
			floor := c.minvr - time.Duration(int64(e.cfg.Sched.SleeperCredit)*refWeight/t.weight)
			if t.vruntime < floor {
				t.vruntime = floor
			}
		}
	}
	if ule {
		t.ulePrio = ulePrioOf(t)
		t.fifoSeq = e.nextFifo()
	}
	if c.cur == nil {
		c.rq.push(t)
		e.dispatch(c)
		return
	}
	// Wakeup preemption check: CFS compares virtual runtimes; ULE lets an
	// interactive task preempt a timeshare one.
	preempt := false
	if fresh {
		if ule {
			preempt = t.ulePrio < ulePrioOf(c.cur)
		} else {
			preempt = t.vruntime+e.cfg.Sched.WakeupGranularity < c.cur.vruntime
		}
	}
	if preempt {
		e.preemptCur(c)
		c.rq.push(t)
		e.dispatch(c)
		return
	}
	c.rq.push(t)
	// cur may have had no tick scheduled (lone spinner); now that it has
	// competition, give it a quantum.
	if c.cur.serviceNeed == serviceInf {
		if c.quantumEnd <= e.now {
			c.quantumEnd = e.now + c.quantum(e.cfg.Sched)
		}
		e.retick(c)
	}
}

// setWeight changes a task's scheduler weight mid-run (priority
// inheritance). Pending CPU time is charged at the old weight first; the
// new weight applies to future vruntime accrual and quanta.
func (e *Engine) setWeight(t *Task, w int64) {
	if w <= 0 || w == t.weight {
		return
	}
	if t.oncpu != nil {
		t.oncpu.sync(e.now)
	}
	t.weight = w
}

// releaseCPU detaches t from its CPU (blocking op). Task context.
func (e *Engine) releaseCPU(t *Task) {
	c := t.oncpu
	if c == nil {
		return
	}
	c.sync(e.now)
	c.cur = nil
	t.oncpu = nil
	t.blockStart = e.now // voluntary: starts the ULE sleep clock
	c.tickGen++
	// Successor dispatch happens when control returns to the engine
	// (resumeTask's dispatch sweep), keeping this callable from task context.
}
