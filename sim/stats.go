package sim

import (
	"time"

	"scl/internal/metrics"
)

// LockStats accumulates per-lock measurements: per-task hold time and
// acquisition counts, lock idle time (the shared component of lock
// opportunity, paper eq. 1), and per-task wait-time samples.
type LockStats struct {
	e            *Engine
	holders      int
	idleStart    time.Duration
	idle         time.Duration
	acquisitions map[int]int64
	hold         map[int]time.Duration
	inFlight     map[int]time.Duration // acquire timestamps of current holders
	waits        map[int]*metrics.Reservoir
	waitCap      int
}

func newLockStats(e *Engine) *LockStats {
	return &LockStats{
		e:            e,
		acquisitions: make(map[int]int64),
		hold:         make(map[int]time.Duration),
		inFlight:     make(map[int]time.Duration),
		waits:        make(map[int]*metrics.Reservoir),
		waitCap:      1 << 16,
	}
}

// onAcquire records that t acquired (or, for readers, joined) the lock.
func (s *LockStats) onAcquire(t *Task) {
	if s.holders == 0 {
		s.idle += s.e.now - s.idleStart
	}
	s.holders++
	s.acquisitions[t.id]++
	s.inFlight[t.id] = s.e.now
	s.e.traceEvent(TraceAcquire, t, 0)
}

// onRelease records a release and the hold duration.
func (s *LockStats) onRelease(t *Task, hold time.Duration) {
	s.holders--
	if s.holders == 0 {
		s.idleStart = s.e.now
	}
	s.hold[t.id] += hold
	delete(s.inFlight, t.id)
	s.e.traceEvent(TraceRelease, t, hold)
}

// onWait records how long t waited between requesting and acquiring.
func (s *LockStats) onWait(t *Task, wait time.Duration) {
	r := s.waits[t.id]
	if r == nil {
		r = metrics.NewReservoir(s.waitCap, int64(t.id)*7919+s.e.cfg.Seed)
		s.waits[t.id] = r
	}
	r.Add(wait)
}

// Idle returns the total time the lock spent unheld, clipped to the
// simulation horizon.
func (s *LockStats) Idle() time.Duration {
	idle := s.idle
	if s.holders == 0 && s.e.now > s.idleStart {
		idle += s.e.now - s.idleStart
	}
	return idle
}

// Hold returns task t's cumulative hold time, including a still-in-flight
// critical section (a hold cut off by the simulation horizon still counts,
// as it would in the paper's wall-clock measurements).
func (s *LockStats) Hold(taskID int) time.Duration {
	h := s.hold[taskID]
	if at, ok := s.inFlight[taskID]; ok && s.e.now > at {
		h += s.e.now - at
	}
	return h
}

// Acquisitions returns task t's acquisition count.
func (s *LockStats) Acquisitions(taskID int) int64 { return s.acquisitions[taskID] }

// WaitSamples returns a (possibly reservoir-sampled) sample of task t's
// wait times.
func (s *LockStats) WaitSamples(taskID int) []time.Duration {
	if r := s.waits[taskID]; r != nil {
		return r.Samples()
	}
	return nil
}

// LOT returns the lock opportunity time of the given task per the paper's
// equation (1): its own critical-section time plus the lock's idle time.
func (s *LockStats) LOT(taskID int) time.Duration {
	return s.Hold(taskID) + s.Idle()
}

// JainLOT computes Jain's fairness index over the lock opportunity times
// of the given tasks (paper Table 2).
func (s *LockStats) JainLOT(taskIDs ...int) float64 {
	xs := make([]float64, len(taskIDs))
	for i, id := range taskIDs {
		xs[i] = float64(s.LOT(id))
	}
	return metrics.Jain(xs)
}

// JainHold computes Jain's fairness index over per-task lock hold times
// (paper Figure 5b).
func (s *LockStats) JainHold(taskIDs ...int) float64 {
	xs := make([]float64, len(taskIDs))
	for i, id := range taskIDs {
		xs[i] = float64(s.Hold(id))
	}
	return metrics.Jain(xs)
}

// TotalHold sums hold time over all tasks (including in-flight holds).
func (s *LockStats) TotalHold() time.Duration {
	var sum time.Duration
	for id := range s.hold {
		sum += s.Hold(id)
	}
	for id := range s.inFlight {
		if _, seen := s.hold[id]; !seen {
			sum += s.Hold(id)
		}
	}
	return sum
}
