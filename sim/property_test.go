package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestRandomWorkloadInvariants drives random lock workloads over every
// lock type and checks structural invariants:
//
//   - mutual exclusion (never two holders);
//   - accounting sanity: Σ per-task hold + idle ≈ horizon for an
//     exclusive lock (within the final in-flight hold);
//   - per-task CPU time never exceeds the horizon, and total CPU time
//     never exceeds CPUs × horizon;
//   - the simulation is deterministic (same seed, same result digest).
func TestRandomWorkloadInvariants(t *testing.T) {
	horizon := 30 * time.Millisecond
	run := func(seed int64) (digest string, ok bool, why string) {
		rng := rand.New(rand.NewSource(seed))
		cpus := 1 + rng.Intn(4)
		threads := 1 + rng.Intn(6)
		kinds := []string{"mutex", "spin", "ticket", "uscl", "kscl"}
		kind := kinds[rng.Intn(len(kinds))]

		e := New(Config{CPUs: cpus, Horizon: horizon, Seed: seed})
		var lk Locker
		switch kind {
		case "mutex":
			lk = NewMutex(e)
		case "spin":
			lk = NewSpinLock(e)
		case "ticket":
			lk = NewTicketLock(e)
		case "uscl":
			lk = NewUSCL(e, time.Duration(1+rng.Intn(2000))*time.Microsecond)
		case "kscl":
			lk = NewKSCL(e)
		}
		inCS, maxCS := 0, 0
		for i := 0; i < threads; i++ {
			cs := time.Duration(rng.Intn(20_000)) * time.Nanosecond
			ncs := time.Duration(rng.Intn(5_000)) * time.Nanosecond
			sleep := time.Duration(0)
			if rng.Intn(3) == 0 {
				sleep = time.Duration(rng.Intn(100)) * time.Microsecond
			}
			e.Spawn(fmt.Sprintf("w%d", i), TaskConfig{CPU: i % cpus, Nice: rng.Intn(7) - 3}, func(tk *Task) {
				for tk.Now() < e.Horizon() {
					lk.Lock(tk)
					inCS++
					if inCS > maxCS {
						maxCS = inCS
					}
					tk.Compute(cs)
					inCS--
					lk.Unlock(tk)
					tk.Compute(ncs)
					if sleep > 0 {
						tk.Sleep(sleep)
					}
				}
			})
		}
		e.Run()

		if maxCS > 1 {
			return "", false, fmt.Sprintf("%s: %d concurrent holders", kind, maxCS)
		}
		var totalHold, totalCPU time.Duration
		for i := 0; i < threads; i++ {
			totalHold += lk.Stats().Hold(i)
			ct := e.TaskByID(i).CPUTime()
			if ct > horizon+time.Microsecond {
				return "", false, fmt.Sprintf("task %d CPU %v > horizon", i, ct)
			}
			totalCPU += ct
		}
		if limit := time.Duration(cpus) * horizon; totalCPU > limit+time.Microsecond {
			return "", false, fmt.Sprintf("total CPU %v > %v", totalCPU, limit)
		}
		covered := totalHold + lk.Stats().Idle()
		if covered > horizon+time.Microsecond {
			return "", false, fmt.Sprintf("hold+idle %v > horizon %v", covered, horizon)
		}
		digest = fmt.Sprintf("%s|%v|%v|%v", kind, totalHold, totalCPU, lk.Stats().Idle())
		return digest, true, ""
	}

	check := func(seed int64) bool {
		d1, ok, why := run(seed)
		if !ok {
			t.Log(why)
			return false
		}
		d2, _, _ := run(seed)
		if d1 != d2 {
			t.Logf("nondeterministic: %q vs %q", d1, d2)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRWRandomWorkloadInvariants does the same for the reader-writer locks:
// no writer overlaps anyone; hold integrals are sane; deterministic.
func TestRWRandomWorkloadInvariants(t *testing.T) {
	horizon := 20 * time.Millisecond
	run := func(seed int64) (string, bool, string) {
		rng := rand.New(rand.NewSource(seed))
		cpus := 1 + rng.Intn(4)
		readers := 1 + rng.Intn(4)
		writers := 1 + rng.Intn(2)
		e := New(Config{CPUs: cpus, Horizon: horizon, Seed: seed})
		var lk RWLocker
		if rng.Intn(2) == 0 {
			lk = NewRWMutex(e)
		} else {
			lk = NewRWSCL(e, time.Duration(100+rng.Intn(2000))*time.Microsecond, int64(1+rng.Intn(9)), 1)
		}
		var rIn, wIn, bad int
		for i := 0; i < readers; i++ {
			cs := time.Duration(rng.Intn(5_000)) * time.Nanosecond
			e.Spawn(fmt.Sprintf("r%d", i), TaskConfig{CPU: i % cpus}, func(tk *Task) {
				for tk.Now() < e.Horizon() {
					lk.RLock(tk)
					rIn++
					if wIn > 0 {
						bad++
					}
					tk.Compute(cs)
					rIn--
					lk.RUnlock(tk)
				}
			})
		}
		for i := 0; i < writers; i++ {
			cs := time.Duration(rng.Intn(10_000)) * time.Nanosecond
			e.Spawn(fmt.Sprintf("w%d", i), TaskConfig{CPU: (readers + i) % cpus}, func(tk *Task) {
				for tk.Now() < e.Horizon() {
					lk.WLock(tk)
					wIn++
					if wIn > 1 || rIn > 0 {
						bad++
					}
					tk.Compute(cs)
					wIn--
					lk.WUnlock(tk)
				}
			})
		}
		e.Run()
		if bad > 0 {
			return "", false, fmt.Sprintf("%d rw violations", bad)
		}
		var total time.Duration
		for i := 0; i < readers+writers; i++ {
			total += lk.Stats().Hold(i)
		}
		return fmt.Sprintf("%v|%v", total, lk.Stats().Idle()), true, ""
	}
	check := func(seed int64) bool {
		d1, ok, why := run(seed)
		if !ok {
			t.Log(why)
			return false
		}
		d2, _, _ := run(seed)
		return d1 == d2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
