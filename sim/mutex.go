package sim

import "time"

// Mutex simulates a pthread-style sleeping mutex: an unfair (barging)
// futex lock. Waiters park; Unlock wakes the head waiter, which must get
// back on a CPU before retrying — by which time the releaser (or anyone
// else) may have barged in and re-acquired. This reproduces the mutex
// starvation of the paper's Figure 2a.
type Mutex struct {
	e       *Engine
	heldBy  *Task
	waiters []*mutexWaiter
	holds   holdTimes
	stats   *LockStats
}

type mutexWaiter struct {
	t      *Task
	permit bool // woken before it managed to park (futex EAGAIN path)
	parked bool
}

// NewMutex creates a mutex in engine e.
func NewMutex(e *Engine) *Mutex {
	return &Mutex{e: e, holds: holdTimes{}, stats: newLockStats(e)}
}

// Stats returns the lock's statistics.
func (l *Mutex) Stats() *LockStats { return l.stats }

// Lock acquires the mutex, parking until it wins a retry race.
func (l *Mutex) Lock(t *Task) {
	start := t.e.now
	for {
		t.Compute(l.e.cfg.Cost.AtomicOp) // CAS attempt
		if l.heldBy == nil {
			break
		}
		w := &mutexWaiter{t: t}
		l.waiters = append(l.waiters, w)
		t.Compute(l.e.cfg.Cost.ParkCPU) // futex_wait entry
		if w.permit {
			continue // value changed before we slept: retry immediately
		}
		if l.heldBy == nil {
			// Freed while we were entering the kernel: futex_wait returns
			// EAGAIN. Remove ourselves and retry.
			l.remove(w)
			continue
		}
		w.parked = true
		t.park() // resumed by a wake (plus wake latency and wake CPU cost)
	}
	l.heldBy = t
	t.holding++
	l.holds.start(t)
	l.stats.onAcquire(t)
	l.stats.onWait(t, t.e.now-start)
}

func (l *Mutex) remove(w *mutexWaiter) {
	for i, x := range l.waiters {
		if x == w {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			return
		}
	}
}

// Unlock releases the mutex and wakes the head waiter, paying the futex
// wake syscall. The lock is free during the wake path, so another running
// thread can barge in first.
func (l *Mutex) Unlock(t *Task) {
	if l.heldBy != t {
		panic("sim: Mutex.Unlock by non-owner")
	}
	t.Compute(l.e.cfg.Cost.AtomicOp) // the release store, paid while holding
	l.heldBy = nil
	t.holding--
	l.stats.onRelease(t, l.holds.end(t))
	if len(l.waiters) == 0 {
		return
	}
	head := l.waiters[0]
	l.waiters = l.waiters[1:]
	head.permit = true
	if head.parked {
		l.e.unparkJitter(head.t)
	}
	t.Compute(l.e.cfg.Cost.FutexWake) // syscall cost paid by the releaser
}

// unparkJitter wakes a parked task with jittered latency: usually
// 0.8x-3x the base wake latency, with a 5% heavy tail up to 200x (timer
// interrupts, softirq work, run-queue delays). Futex wake-to-run latency
// really is heavy-tailed, and the tail matters twice over: the common-case
// jitter breaks the phase-locking a deterministic delay would cause
// between a barging releaser and a retrying waiter, and the tail lets a
// waiter's retry occasionally land anywhere in a long holder cycle —
// without it, a releaser whose cycle exceeds the jitter spread starves
// waiters completely, where real systems starve them merely brutally
// (paper Figure 9's 10ms-1s mutex waits).
func (e *Engine) unparkJitter(t *Task) {
	base := float64(e.cfg.Cost.WakeLatency)
	var lat time.Duration
	if e.rng.Float64() < 0.05 {
		lat = time.Duration(base * (1 + 199*e.rng.Float64()))
	} else {
		lat = time.Duration(base * (0.8 + 2.2*e.rng.Float64()))
	}
	e.schedule(e.now+lat, func() {
		if t.done {
			return
		}
		t.serviceNeed = e.cfg.Cost.WakeCPU
		e.enqueue(t, true)
	})
}

var _ Locker = (*Mutex)(nil)
