package sim

import "time"

// RWScriptEntity is one reader or writer in an RW script.
type RWScriptEntity struct {
	Name string
	// Writer selects the write class; false means reader.
	Writer bool
	// Start delays the first op.
	Start time.Duration
	// Ops may use OpThink and OpAcquire only (the RW locks have no
	// per-entity close, and the oracle scripts RW cancellation paths
	// through the mutex scripts instead).
	Ops []ScriptOp
}

// RWScript is the RW-SCL counterpart of Script: a deterministic
// reader/writer workload executable by both the simulator (RunRWScript)
// and the real scl.RWLock (internal/check/oracle). The same timing
// discipline applies: keep decisions millisecond-separated.
type RWScript struct {
	// Period is the phase-alternation period (0 = 2ms).
	Period time.Duration
	// ReadWeight/WriteWeight set the class weights (0 = 1).
	ReadWeight, WriteWeight int64
	// Horizon bounds the virtual run (0 = 1s).
	Horizon time.Duration
	// Entities are the actors, each on its own CPU.
	Entities []RWScriptEntity
}

// RunRWScript executes the script on a fresh simulated RW-SCL and
// returns the observations in ScriptResult form (Timeouts and Bans stay
// zero: the RW classes alternate phases instead of banning, and RW
// scripts carry no cancellable acquires).
func RunRWScript(s RWScript) ScriptResult {
	period := s.Period
	if period == 0 {
		period = 2 * time.Millisecond
	}
	rw, ww := s.ReadWeight, s.WriteWeight
	if rw == 0 {
		rw = 1
	}
	if ww == 0 {
		ww = 1
	}
	horizon := s.Horizon
	if horizon == 0 {
		horizon = time.Second
	}
	e := New(Config{CPUs: len(s.Entities), Horizon: horizon, Seed: 1})
	l := NewRWSCL(e, period, rw, ww)
	res := ScriptResult{
		Timeouts: make([]int, len(s.Entities)),
		Bans:     make([]int, len(s.Entities)),
		Hold:     make([]time.Duration, len(s.Entities)),
	}
	for i, ent := range s.Entities {
		i, ent := i, ent
		e.Spawn(ent.Name, TaskConfig{CPU: i, Start: ent.Start}, func(t *Task) {
			for _, op := range ent.Ops {
				switch op.Kind {
				case OpThink:
					t.Sleep(op.Think)
				case OpAcquire:
					if ent.Writer {
						l.WLock(t)
					} else {
						l.RLock(t)
					}
					res.Grants = append(res.Grants, i)
					at := t.Now()
					t.Compute(op.Hold)
					res.Hold[i] += t.Now() - at
					if ent.Writer {
						l.WUnlock(t)
					} else {
						l.RUnlock(t)
					}
				}
			}
		})
	}
	e.Run()
	return res
}
