package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestUSCLLivenessUnderRandomWorkloads is the starvation-freedom property:
// under a u-SCL, every continuously contending thread completes at least
// one critical section per run, whatever the mix of critical sections,
// weights and CPU contention — the property the traditional locks fail
// (the toy example's mutex starves T1 outright).
func TestUSCLLivenessUnderRandomWorkloads(t *testing.T) {
	horizon := 200 * time.Millisecond
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cpus := 1 + rng.Intn(3)
		threads := 2 + rng.Intn(5)
		e := New(Config{CPUs: cpus, Horizon: horizon, Seed: seed})
		var lk Locker
		if rng.Intn(2) == 0 {
			lk = NewUSCL(e, time.Duration(1+rng.Intn(2000))*time.Microsecond)
		} else {
			lk = NewKSCL(e)
		}
		ops := make([]int64, threads)
		for i := 0; i < threads; i++ {
			i := i
			cs := time.Duration(1+rng.Intn(3000)) * time.Microsecond
			ncs := time.Duration(rng.Intn(500)) * time.Microsecond
			e.Spawn(fmt.Sprintf("w%d", i), TaskConfig{CPU: i % cpus, Nice: rng.Intn(11) - 5}, func(tk *Task) {
				for tk.Now() < e.Horizon() {
					lk.Lock(tk)
					tk.Compute(cs)
					lk.Unlock(tk)
					tk.Compute(ncs)
					ops[i]++
				}
			})
		}
		e.Run()
		for i, n := range ops {
			if n == 0 {
				t.Logf("seed %d: thread %d starved (0 ops)", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestMutexCanStarveButUSCLCannot contrasts the same extreme workload on
// both locks: a 20ms-CS hog against a 100µs-CS thread with no non-critical
// section. The barging mutex may effectively starve the small thread; the
// u-SCL must give it about half the hold time.
func TestMutexCanStarveButUSCLCannot(t *testing.T) {
	run := func(mk func(e *Engine) Locker) (smallHold, hogHold time.Duration) {
		e := New(Config{CPUs: 2, Horizon: time.Second, Seed: 3})
		lk := mk(e)
		e.Spawn("hog", TaskConfig{CPU: 0}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.Lock(tk)
				tk.Compute(20 * time.Millisecond)
				lk.Unlock(tk)
			}
		})
		e.Spawn("small", TaskConfig{CPU: 1}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.Lock(tk)
				tk.Compute(100 * time.Microsecond)
				lk.Unlock(tk)
			}
		})
		e.Run()
		return lk.Stats().Hold(1), lk.Stats().Hold(0)
	}
	mutexSmall, mutexHog := run(func(e *Engine) Locker { return NewMutex(e) })
	usclSmall, usclHog := run(func(e *Engine) Locker { return NewUSCL(e, 0) })
	if float64(mutexSmall) > 0.2*float64(mutexHog) {
		t.Fatalf("mutex did not skew: small %v vs hog %v", mutexSmall, mutexHog)
	}
	ratio := float64(usclSmall) / float64(usclHog)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("u-SCL split %v vs %v (ratio %.2f), want ~1", usclSmall, usclHog, ratio)
	}
}
