package sim

import (
	"testing"
	"time"
)

func TestSingleTaskCompute(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: time.Second})
	var finished time.Duration
	e.Spawn("t0", TaskConfig{}, func(tk *Task) {
		tk.Compute(100 * time.Millisecond)
		finished = tk.Now()
	})
	e.Run()
	if finished != 100*time.Millisecond {
		t.Fatalf("compute finished at %v, want 100ms", finished)
	}
	if got := e.TaskByID(0).CPUTime(); got != 100*time.Millisecond {
		t.Fatalf("cpu time %v, want 100ms", got)
	}
	if got := e.CPUBusy(0); got != 100*time.Millisecond {
		t.Fatalf("cpu busy %v, want 100ms", got)
	}
}

func TestComputeZeroIsNoop(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: time.Second})
	var at time.Duration
	e.Spawn("t0", TaskConfig{}, func(tk *Task) {
		tk.Compute(0)
		tk.Compute(-5)
		at = tk.Now()
	})
	e.Run()
	if at != 0 {
		t.Fatalf("zero compute advanced time to %v", at)
	}
}

func TestTwoTasksShareCPUEqually(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: time.Second})
	work := func(tk *Task) {
		for tk.Now() < e.Horizon() {
			tk.Compute(time.Millisecond)
		}
	}
	e.Spawn("a", TaskConfig{}, work)
	e.Spawn("b", TaskConfig{}, work)
	e.Run()
	a := e.TaskByID(0).CPUTime()
	b := e.TaskByID(1).CPUTime()
	ratio := float64(a) / float64(b)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("equal-weight CPU split %v vs %v (ratio %.3f)", a, b, ratio)
	}
	if total := a + b; total < 990*time.Millisecond {
		t.Fatalf("CPU undersubscribed: %v of 1s", total)
	}
}

func TestNiceProportionalCPU(t *testing.T) {
	// nice 0 vs nice -3 should split CPU roughly 1:2 (paper §4.3 example:
	// weights 1024 vs 1991).
	e := New(Config{CPUs: 1, Horizon: 2 * time.Second})
	work := func(tk *Task) {
		for tk.Now() < e.Horizon() {
			tk.Compute(time.Millisecond)
		}
	}
	e.Spawn("slow", TaskConfig{Nice: 0}, work)
	e.Spawn("fast", TaskConfig{Nice: -3}, work)
	e.Run()
	ratio := float64(e.TaskByID(1).CPUTime()) / float64(e.TaskByID(0).CPUTime())
	want := 1991.0 / 1024.0
	if ratio < want*0.9 || ratio > want*1.1 {
		t.Fatalf("CPU ratio %.3f, want ~%.3f", ratio, want)
	}
}

func TestPinnedTasksDoNotShare(t *testing.T) {
	e := New(Config{CPUs: 2, Horizon: time.Second})
	work := func(tk *Task) {
		for tk.Now() < e.Horizon() {
			tk.Compute(time.Millisecond)
		}
	}
	e.Spawn("a", TaskConfig{CPU: 0}, work)
	e.Spawn("b", TaskConfig{CPU: 1}, work)
	e.Run()
	for i := 0; i < 2; i++ {
		if got := e.TaskByID(i).CPUTime(); got < 990*time.Millisecond {
			t.Fatalf("pinned task %d got %v, want ~1s", i, got)
		}
	}
	if u := e.Utilization(); u < 0.99 {
		t.Fatalf("utilization %.3f, want ~1", u)
	}
}

func TestSleepDoesNotConsumeCPU(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: time.Second})
	var woke time.Duration
	e.Spawn("sleeper", TaskConfig{}, func(tk *Task) {
		tk.Sleep(500 * time.Millisecond)
		woke = tk.Now()
	})
	e.Run()
	if woke < 500*time.Millisecond || woke > 501*time.Millisecond {
		t.Fatalf("woke at %v, want ~500ms", woke)
	}
	if cpu := e.TaskByID(0).CPUTime(); cpu > time.Millisecond {
		t.Fatalf("sleeper consumed %v CPU", cpu)
	}
}

func TestSleeperSharesWithBusyTask(t *testing.T) {
	// An interactive task that sleeps a lot must still get CPU promptly
	// (CFS sleeper fairness).
	e := New(Config{CPUs: 1, Horizon: time.Second})
	var iterations int
	e.Spawn("batch", TaskConfig{}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			tk.Compute(10 * time.Millisecond)
		}
	})
	e.Spawn("interactive", TaskConfig{}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			tk.Compute(100 * time.Microsecond)
			iterations++
			tk.Sleep(time.Millisecond)
		}
	})
	e.Run()
	// ~1ms sleep + small run per loop: expect several hundred iterations.
	if iterations < 300 {
		t.Fatalf("interactive starved: %d iterations", iterations)
	}
}

func TestHorizonCutsWork(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: 100 * time.Millisecond})
	reached := false
	e.Spawn("t", TaskConfig{}, func(tk *Task) {
		tk.Compute(time.Hour)
		reached = true
	})
	e.Run()
	if reached {
		t.Fatalf("task ran past horizon")
	}
	if got := e.TaskByID(0).CPUTime(); got != 100*time.Millisecond {
		t.Fatalf("charged %v, want exactly horizon 100ms", got)
	}
}

func TestStartDelay(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: time.Second})
	var started time.Duration
	e.Spawn("late", TaskConfig{Start: 250 * time.Millisecond}, func(tk *Task) {
		started = tk.Now()
	})
	e.Run()
	if started != 250*time.Millisecond {
		t.Fatalf("started at %v, want 250ms", started)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) [2]time.Duration {
		e := New(Config{CPUs: 2, Horizon: 50 * time.Millisecond, Seed: seed})
		lk := NewSpinLock(e)
		for i := 0; i < 4; i++ {
			cpu := i % 2
			e.Spawn("w", TaskConfig{CPU: cpu}, func(tk *Task) {
				for tk.Now() < e.Horizon() {
					lk.Lock(tk)
					tk.Compute(2 * time.Microsecond)
					lk.Unlock(tk)
					tk.Compute(time.Microsecond)
				}
			})
		}
		e.Run()
		return [2]time.Duration{lk.Stats().Hold(0), lk.Stats().Hold(3)}
	}
	a1, a2 := run(7), run(7)
	if a1 != a2 {
		t.Fatalf("same seed diverged: %v vs %v", a1, a2)
	}
	b := run(8)
	if a1 == b {
		t.Logf("note: different seeds coincided (possible but unlikely): %v", b)
	}
}

func TestManyTasksOverfewCPUs(t *testing.T) {
	// 32 CPU-bound tasks on 2 CPUs: total CPU time equals 2 CPU-seconds,
	// split roughly equally.
	e := New(Config{CPUs: 2, Horizon: time.Second})
	for i := 0; i < 32; i++ {
		e.Spawn("w", TaskConfig{CPU: i % 2}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				tk.Compute(500 * time.Microsecond)
			}
		})
	}
	e.Run()
	var total time.Duration
	var min, max time.Duration = time.Hour, 0
	for _, tk := range e.Tasks() {
		ct := tk.CPUTime()
		total += ct
		if ct < min {
			min = ct
		}
		if ct > max {
			max = ct
		}
	}
	if total < 1980*time.Millisecond || total > 2*time.Second {
		t.Fatalf("total CPU %v, want ~2s", total)
	}
	if float64(max)/float64(min) > 1.5 {
		t.Fatalf("unfair split: min %v max %v", min, max)
	}
}

func TestUnparkAfterHorizonIsDropped(t *testing.T) {
	// A task sleeping past the horizon must be torn down cleanly.
	e := New(Config{CPUs: 1, Horizon: 10 * time.Millisecond})
	e.Spawn("s", TaskConfig{}, func(tk *Task) {
		tk.Sleep(time.Hour)
		t.Errorf("sleeper resumed past horizon")
	})
	e.Run()
}

func TestSpawnAfterRunPanics(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: time.Millisecond})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.Spawn("late", TaskConfig{}, func(*Task) {})
}
