package sim

import (
	"testing"
	"time"
)

// Tests for entity classes (paper §6: grouping threads into one
// schedulable entity makes a lock slice work-conserving: one member runs
// the critical section while another runs non-critical code).

func TestClassSharesSliceWorkConserving(t *testing.T) {
	// Two threads with 50% non-critical time. As separate entities, the
	// lock idles during each owner's NCS within its slice. As one class,
	// the sibling fills those gaps. Compare lock idle time.
	run := func(class int64) (idle time.Duration, ops int64) {
		e := New(Config{CPUs: 2, Horizon: 500 * time.Millisecond, Seed: 1})
		lk := NewUSCL(e, 2*time.Millisecond)
		var n int64
		for i := 0; i < 2; i++ {
			e.Spawn("w", TaskConfig{CPU: i, Class: class}, func(tk *Task) {
				for tk.Now() < e.Horizon() {
					lk.Lock(tk)
					tk.Compute(10 * time.Microsecond)
					lk.Unlock(tk)
					tk.Compute(10 * time.Microsecond)
					n++
				}
			})
		}
		e.Run()
		return lk.Stats().Idle(), n
	}
	idleSeparate, opsSeparate := run(0)  // each task its own entity
	idleGrouped, opsGrouped := run(-100) // one shared class
	if idleGrouped >= idleSeparate/2 {
		t.Errorf("grouped idle %v not much lower than separate %v", idleGrouped, idleSeparate)
	}
	if opsGrouped <= opsSeparate {
		t.Errorf("grouping did not raise throughput: %d vs %d", opsGrouped, opsSeparate)
	}
}

func TestClassFairnessBetweenGroups(t *testing.T) {
	// Class A has two members, class B one. Lock opportunity splits
	// ~50:50 between the classes, not 2:1 by thread count.
	e := New(Config{CPUs: 3, Horizon: 500 * time.Millisecond, Seed: 1})
	lk := NewUSCL(e, time.Millisecond)
	worker := func(class int64, cpu int) {
		e.Spawn("w", TaskConfig{CPU: cpu, Class: class}, func(tk *Task) {
			for tk.Now() < e.Horizon() {
				lk.Lock(tk)
				tk.Compute(5 * time.Microsecond)
				lk.Unlock(tk)
			}
		})
	}
	worker(-1, 0) // class A
	worker(-1, 1) // class A
	worker(-2, 2) // class B
	e.Run()
	s := lk.Stats()
	classA := s.Hold(0) + s.Hold(1)
	classB := s.Hold(2)
	ratio := float64(classA) / float64(classB)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("class hold ratio %.2f (A %v, B %v), want ~1 (50:50 between classes)", ratio, classA, classB)
	}
}

func TestClassSharedBan(t *testing.T) {
	// When one member of a class over-uses the lock, the whole class is
	// banned — a second member cannot launder the over-use.
	e := New(Config{CPUs: 3, Horizon: 400 * time.Millisecond, Seed: 1})
	lk := NewUSCL(e, time.Millisecond)
	var m2AcquiredAt time.Duration
	// Member 1 hogs for 50ms.
	e.Spawn("m1", TaskConfig{CPU: 0, Class: -7}, func(tk *Task) {
		lk.Lock(tk)
		tk.Compute(50 * time.Millisecond)
		lk.Unlock(tk)
	})
	// Member 2 tries right after; it must wait out the class ban.
	e.Spawn("m2", TaskConfig{CPU: 1, Class: -7, Start: 60 * time.Millisecond}, func(tk *Task) {
		lk.Lock(tk)
		m2AcquiredAt = tk.Now()
		lk.Unlock(tk)
	})
	// A competitor keeps the accounting live.
	e.Spawn("peer", TaskConfig{CPU: 2}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			lk.Lock(tk)
			tk.Compute(time.Millisecond)
			lk.Unlock(tk)
		}
	})
	e.Run()
	// Class -7 used 50ms with share 1/2: banned until ~100ms.
	if m2AcquiredAt < 90*time.Millisecond {
		t.Errorf("class member 2 acquired at %v, want >= ~90ms (shared ban)", m2AcquiredAt)
	}
}

func TestPositiveClassPanics(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: time.Millisecond})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for positive class")
		}
	}()
	e.Spawn("bad", TaskConfig{Class: 3}, func(*Task) {})
}
