package sim

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRecordsLockEvents(t *testing.T) {
	e := New(Config{CPUs: 2, Horizon: 100 * time.Millisecond, Seed: 1})
	e.EnableTrace(0)
	lk := NewUSCL(e, time.Millisecond)
	e.Spawn("hog", TaskConfig{CPU: 0}, func(tk *Task) {
		lk.Lock(tk)
		tk.Compute(20 * time.Millisecond)
		lk.Unlock(tk)
	})
	e.Spawn("peer", TaskConfig{CPU: 1}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			lk.Lock(tk)
			tk.Compute(time.Millisecond)
			lk.Unlock(tk)
		}
	})
	e.Run()
	evs := e.TraceEvents()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	var sawAcquire, sawRelease, sawBan, sawTransfer bool
	var prev time.Duration
	for _, ev := range evs {
		if ev.At < prev {
			t.Fatalf("trace out of order at %v", ev.At)
		}
		prev = ev.At
		switch ev.Kind {
		case TraceAcquire:
			sawAcquire = true
		case TraceRelease:
			sawRelease = true
			if ev.Task == "hog" && ev.Detail >= 20*time.Millisecond {
				// the hog's long hold is visible in Detail
			}
		case TraceBan:
			if !sawBan && ev.Task != "hog" {
				// The first ban must hit the hog; later ones can hit the
				// peer once it overtakes its share of cumulative usage.
				t.Fatalf("first ban recorded for %q, want hog", ev.Task)
			}
			sawBan = true
		case TraceTransfer:
			sawTransfer = true
		}
	}
	if !sawAcquire || !sawRelease || !sawBan || !sawTransfer {
		t.Fatalf("missing kinds: acq=%v rel=%v ban=%v xfer=%v",
			sawAcquire, sawRelease, sawBan, sawTransfer)
	}
	out := FormatTrace(evs[:3])
	if !strings.Contains(out, "acquire") {
		t.Fatalf("formatted trace:\n%s", out)
	}
}

func TestTraceRingDropsOldest(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: 10 * time.Millisecond, Seed: 1})
	e.EnableTrace(8)
	lk := NewMutex(e)
	e.Spawn("w", TaskConfig{}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			lk.Lock(tk)
			tk.Compute(100 * time.Microsecond)
			lk.Unlock(tk)
		}
	})
	e.Run()
	evs := e.TraceEvents()
	if len(evs) != 8 {
		t.Fatalf("ring kept %d events, want 8", len(evs))
	}
	// The retained events are the newest ones.
	if evs[0].At < 8*time.Millisecond {
		t.Fatalf("oldest retained event at %v, expected near the end of the run", evs[0].At)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	e := New(Config{CPUs: 1, Horizon: time.Millisecond, Seed: 1})
	lk := NewMutex(e)
	e.Spawn("w", TaskConfig{}, func(tk *Task) {
		lk.Lock(tk)
		lk.Unlock(tk)
	})
	e.Run()
	if evs := e.TraceEvents(); evs != nil {
		t.Fatalf("trace events without EnableTrace: %d", len(evs))
	}
}
