package sim

// These tests encode the operational semantics of the paper's Figure 3
// (u-SCL) and Figure 4 (RW-SCL) as step-by-step scenarios.

import (
	"testing"
	"time"

	"scl/internal/core"
)

// TestUSCLFigure3Steps walks the paper's Figure 3: A acquires and owns the
// slice; B queues as the spinning next-in-line; C queues parked; within
// its slice A releases and re-acquires freely; at slice expiry ownership
// transfers to B and C is promoted to the spinning next; a penalized A is
// banned before it can queue again.
func TestUSCLFigure3Steps(t *testing.T) {
	e := New(Config{CPUs: 4, Horizon: 200 * time.Millisecond, Seed: 1})
	lk := NewUSCL(e, 2*time.Millisecond)

	type probe struct {
		aReacquiredInSlice bool
		aSecondLockAt      time.Duration
		bAcquiredAt        time.Duration
		cAcquiredAt        time.Duration
		aThirdLockAt       time.Duration
	}
	var p probe

	// A: two quick acquisitions inside one slice (steps 2, 4, 6, 7), then a
	// long hold to expire the slice, then a re-acquisition that must be
	// banned (step 9).
	e.Spawn("A", TaskConfig{CPU: 0}, func(tk *Task) {
		lk.Lock(tk) // step 2: A owns lock and slice
		tk.Compute(100 * time.Microsecond)
		lk.Unlock(tk) // step 4: released, slice still A's
		lk.Lock(tk)   // step 6: fast-path reacquire inside the slice
		p.aReacquiredInSlice = tk.Now() < 2*time.Millisecond
		p.aSecondLockAt = tk.Now()
		tk.Compute(5 * time.Millisecond) // runs past slice end
		lk.Unlock(tk)                    // step 7/8: slice expired, transfer to B
		lk.Lock(tk)                      // step 9: must wait out the penalty
		p.aThirdLockAt = tk.Now()
		lk.Unlock(tk)
	})
	// B arrives while A holds: becomes the spinning next-in-line (step 3).
	e.Spawn("B", TaskConfig{CPU: 1, Start: 50 * time.Microsecond}, func(tk *Task) {
		lk.Lock(tk)
		p.bAcquiredAt = tk.Now()
		tk.Compute(time.Millisecond)
		lk.Unlock(tk)
	})
	// C arrives later: parks behind B (step 5).
	e.Spawn("C", TaskConfig{CPU: 2, Start: 100 * time.Microsecond}, func(tk *Task) {
		lk.Lock(tk)
		p.cAcquiredAt = tk.Now()
		tk.Compute(time.Millisecond)
		lk.Unlock(tk)
	})
	e.Run()

	if !p.aReacquiredInSlice {
		t.Errorf("A's in-slice reacquire at %v was not within the slice", p.aSecondLockAt)
	}
	// B acquires right after A's slice-expiring release (~5.1ms), not before.
	if p.bAcquiredAt < 5*time.Millisecond || p.bAcquiredAt > 6*time.Millisecond {
		t.Errorf("B acquired at %v, want just after A's 5ms hold", p.bAcquiredAt)
	}
	if p.cAcquiredAt <= p.bAcquiredAt {
		t.Errorf("C acquired at %v, before B at %v", p.cAcquiredAt, p.bAcquiredAt)
	}
	// A used ~5.1ms with share 1/3 -> banned for roughly 2x its usage;
	// it must not reacquire before B and C are done.
	if p.aThirdLockAt < p.cAcquiredAt {
		t.Errorf("A reacquired at %v before C at %v (no ban?)", p.aThirdLockAt, p.cAcquiredAt)
	}
	if p.aThirdLockAt < 8*time.Millisecond {
		t.Errorf("A reacquired at %v, want a multi-ms ban", p.aThirdLockAt)
	}
}

// TestRWSCLFigure4Steps walks the paper's Figure 4: the lock starts in a
// read slice; readers share it; a writer waits for the write slice and for
// readers to drain; at the write slice readers queue; phases alternate.
func TestRWSCLFigure4Steps(t *testing.T) {
	e := New(Config{CPUs: 4, Horizon: 50 * time.Millisecond, Seed: 1})
	lk := NewRWSCL(e, 2*time.Millisecond, 1, 1) // 1ms read + 1ms write slices

	var r1First, w1First, r1Second time.Duration
	// R1 reads immediately (step 2), then again after the writer's slice
	// (step 9).
	e.Spawn("R1", TaskConfig{CPU: 0}, func(tk *Task) {
		lk.RLock(tk)
		r1First = tk.Now()
		tk.Compute(200 * time.Microsecond)
		lk.RUnlock(tk)
		tk.Sleep(1500 * time.Microsecond) // wait into the write slice
		lk.RLock(tk)                      // step 8: must wait for the read slice
		r1Second = tk.Now()
		lk.RUnlock(tk)
	})
	// W1 arrives during the read slice (step 5) and acquires only when the
	// write slice starts and readers drained (steps 6-7).
	e.Spawn("W1", TaskConfig{CPU: 1, Start: 100 * time.Microsecond}, func(tk *Task) {
		lk.WLock(tk)
		w1First = tk.Now()
		tk.Compute(800 * time.Microsecond)
		lk.WUnlock(tk)
	})
	e.Run()

	if r1First > 100*time.Microsecond {
		t.Errorf("R1's first read at %v, want immediate (lock starts in a read slice)", r1First)
	}
	// The write slice starts at the 1ms mark of the controller period.
	if w1First < 900*time.Microsecond || w1First > 2*time.Millisecond {
		t.Errorf("W1 acquired at %v, want at the write slice (~1ms)", w1First)
	}
	if r1Second < w1First+800*time.Microsecond {
		t.Errorf("R1's second read at %v overlapped W1's hold ending at %v",
			r1Second, w1First+800*time.Microsecond)
	}
}

// TestUSCLPenaltyMatchesAccountantFormula cross-checks the sim lock
// against the core engine: after a lone over-use among two entities, the
// ban equals usage/share - usage.
func TestUSCLPenaltyMatchesAccountantFormula(t *testing.T) {
	e := New(Config{CPUs: 2, Horizon: time.Second, Seed: 1})
	lk := NewUSCL(e, time.Millisecond)
	var reacquire, released time.Duration
	e.Spawn("hog", TaskConfig{CPU: 0}, func(tk *Task) {
		lk.Lock(tk)
		tk.Compute(50 * time.Millisecond)
		lk.Unlock(tk)
		released = tk.Now()
		lk.Lock(tk)
		reacquire = tk.Now()
		lk.Unlock(tk)
	})
	e.Spawn("peer", TaskConfig{CPU: 1}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			lk.Lock(tk)
			tk.Compute(100 * time.Microsecond)
			lk.Unlock(tk)
		}
	})
	e.Run()
	// usage ~50ms, share 1/2 -> ban ~50ms from release.
	ban := reacquire - released
	if ban < 40*time.Millisecond || ban > 70*time.Millisecond {
		t.Errorf("ban = %v, want ~50ms (usage/share - usage)", ban)
	}
	if got := lk.Accountant().Share(core.ID(0)); got != 0.5 {
		t.Errorf("share = %v, want 0.5", got)
	}
}

// TestKSCLInactiveGC: an entity that stops using a k-SCL is expired from
// the accounting after the inactive timeout, restoring the survivor's
// full share.
func TestKSCLInactiveGC(t *testing.T) {
	e := New(Config{CPUs: 2, Horizon: 3 * time.Second, Seed: 1})
	lk := NewKSCL(e)
	e.Spawn("transient", TaskConfig{CPU: 0}, func(tk *Task) {
		lk.Lock(tk)
		tk.Compute(time.Millisecond)
		lk.Unlock(tk)
		// Never touches the lock again.
		tk.Sleep(time.Hour)
	})
	e.Spawn("steady", TaskConfig{CPU: 1}, func(tk *Task) {
		for tk.Now() < e.Horizon() {
			lk.Lock(tk)
			tk.Compute(time.Millisecond)
			lk.Unlock(tk)
			tk.Compute(100 * time.Microsecond)
		}
	})
	e.Run()
	if lk.Accountant().Registered(core.ID(0)) {
		t.Error("transient entity still registered after inactive timeout")
	}
	if got := lk.Accountant().Share(core.ID(1)); got != 1 {
		t.Errorf("steady entity's share = %v, want 1 after GC", got)
	}
}
