package scl

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// combineStackLen counts the requests currently published on the
// combining stack (test-only; racy reads are fine for polling).
func combineStackLen(m *Mutex) int {
	n := 0
	for r := m.combine.Load(); r != nil; r = r.next.Load() {
		n++
	}
	return n
}

// TestCombineScriptedEventStream runs a fixed combining schedule and
// compares the tracer event stream against a golden transcript — the
// mutex-combining mirror of TestRWScriptedEventStream. The combine
// event must identify the combiner, and each combined section must
// still produce its own per-entity acquire/release pair, so stream
// consumers (scltop, the trace aggregator) see per-entity accounting
// unchanged whether or not the section ran on the publisher's own
// goroutine.
func TestCombineScriptedEventStream(t *testing.T) {
	rec := &recTracer{}
	m := NewMutex(Options{Slice: 40 * time.Millisecond, Name: "combine", Tracer: rec})
	a := m.Register().SetName("A")
	b := m.Register().SetName("B")
	c := m.Register().SetName("C")
	defer a.Close()
	defer b.Close()
	defer c.Close()

	// Script: A holds the lock while B, then C, publish their critical
	// sections. Publishing order is pinned by polling the stack between
	// the two Do calls, so A's release drains the LIFO stack in the
	// deterministic order C, B.
	a.Lock()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ran []string
	section := func(name string) func() {
		return func() {
			mu.Lock()
			ran = append(ran, name)
			mu.Unlock()
		}
	}
	waitPublished := func(n int) {
		deadline := time.Now().Add(5 * time.Second)
		for combineStackLen(m) < n {
			if time.Now().After(deadline) {
				t.Fatalf("combining stack never reached %d requests", n)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	wg.Add(2)
	go func() { defer wg.Done(); b.Do(section("B")) }()
	waitPublished(1)
	go func() { defer wg.Done(); c.Do(section("C")) }()
	waitPublished(2)
	a.Unlock() // drains the batch on the way out
	wg.Wait()

	got := normalize(rec.events())
	want := strings.Join([]string{
		"acquire A",
		"release A",
		"combine A",
		"acquire C",
		"release C",
		"acquire B",
		"release B",
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("event stream diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Exactly-once, in drain order.
	mu.Lock()
	if len(ran) != 2 || ran[0] != "C" || ran[1] != "B" {
		t.Fatalf("sections ran %v, want [C B]", ran)
	}
	mu.Unlock()

	// The same schedule must land in the counters: A executed two
	// sections for others, and each publisher owns exactly one
	// acquisition that a combiner ran on its behalf.
	s := m.Stats()
	if s.Combines[a.ID()] != 2 || s.Combined[a.ID()] != 0 {
		t.Fatalf("combiner A: combines %d / combined %d, want 2 / 0", s.Combines[a.ID()], s.Combined[a.ID()])
	}
	for _, h := range []*Handle{b, c} {
		if s.Combined[h.ID()] != 1 || s.Acquisitions[h.ID()] != 1 {
			t.Fatalf("publisher %s: combined %d / acquisitions %d, want 1 / 1",
				s.Names[h.ID()], s.Combined[h.ID()], s.Acquisitions[h.ID()])
		}
	}
}
