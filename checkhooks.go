package scl

import (
	"sync"
	"time"

	"scl/internal/check"
)

// This file is the locks' seam to the deterministic checker
// (internal/check). In normal operation every helper here degrades to
// the ordinary primitive at the cost of one atomic nil-check (the same
// always-compiled pattern as the Tracer hook — a build tag cannot gate
// these, because `go test ./internal/check` must explore the untagged
// build everyone actually runs). Under an installed check scheduler
// (tests only) the helpers reroute: internal mutexes become
// scheduler-managed resources, the slice/phase timers run on the
// virtual clock, and blocking waits become predicate parks the explorer
// can reorder.
//
// A lock instance must live entirely on one side of the seam: created
// and used under an installed scheduler, or created and used without
// one. Mixing (arming a real timer, then resetting it with virtual
// delays) is not supported and is prevented by construction in the
// checker's workloads, which build a fresh lock per explored schedule.
//
// Beyond the helpers below, the locks mark their lock-free races as
// named check.Point decision sites the explorer reorders. The RW-SCL's
// distributed read indicator adds two to the packed-word set:
//
//   - "rw.shard.rlock": between a fast reader publishing its shard +1
//     and revalidating the state word — the sweep-vs-incoming-reader
//     race. A sweep scheduled here sees the +1 of a reader that may yet
//     undo itself, and must only ever be delayed by it, never admit a
//     writer over it.
//   - "rw.shard.runlock": before a fast release picks the shard its -1
//     lands on.
//   - "rw.phaseflip.sweep": in grantLocked, before the write-phase
//     drain sums the shards to decide whether the writer may enter.
//
// Shard selection itself is schedule-stable under the checker: it keys
// off check.GID (the managed goroutine's spawn index), not runtime
// identity, so a replayed seed takes identical branches.
//
// The combining path (Handle.Do, combine.go) adds three decision sites
// around its lock-free stack:
//
//   - "mu.combine.publish": between a Do caller observing the lock held
//     and its push CAS landing — the publish-vs-release race. A release
//     scheduled here must either drain the request or leave the lock
//     idle and wake-walk it; the checker explores both.
//   - "mu.combine.drain": in takeCombineBatch, before the holder swaps
//     the stack empty — racing publishers land either in this batch or
//     the next.
//   - "mu.combine.handoff": after a drained batch's charges are booked,
//     before the publishers are released with the done-store — the
//     window where a publisher must not yet observe its own completion.
//
// The publisher's wait parks at "mu.combine.wait" (and
// "mu.combine.claimed" once a combiner owns the request); its predicate
// reads only the request state and the packed word, so the explorer can
// wake it against any interleaving of the drain.
//
// RWLock.Do mirrors the same three sites for the writer-side stack —
// "rw.combine.publish", "rw.combine.drain", "rw.combine.handoff" — with
// parks at "rw.combine.wait"/"rw.combine.claimed"; the publisher's
// predicate watches the writer-active bit instead of the held bit.
//
// The Manager threads its table-level decisions through the same seam:
// its stripe mutexes go through lockMutex/unlockMutex, and it marks
// "mgr.stripe" (stripe selected, before the table-level ban check),
// "mgr.materialize" (a key's lock is about to be created),
// "mgr.release" (between the key-lock release and the stripe booking —
// the window where a concurrent acquire can observe the key unlocked
// but the tenant not yet charged), "mgr.reap" (a stripe GC sweep) and
// "mgr.close" (tenant departure). Stripe selection hashes the key with
// a fixed FNV-1a, so it is schedule- and process-stable by
// construction.

// lockTimer abstracts the one-shot slice/phase timers so the checker
// can substitute virtual-clock timers for time.AfterFunc. Both
// *time.Timer and *check.Timer satisfy it.
type lockTimer interface {
	Reset(d time.Duration) bool
	Stop() bool
}

// startLockTimer arms a one-shot timer calling f after d: a virtual
// timer under an installed check scheduler, time.AfterFunc otherwise.
func startLockTimer(d time.Duration, f func()) lockTimer {
	if t, ok := check.AfterFunc(d, f); ok {
		return t
	}
	return time.AfterFunc(d, f)
}

// lockMutex acquires a lock-internal mutex through the checker hook:
// under an installed scheduler the scheduler itself provides exclusion
// (and models the acquisition as a schedule point); otherwise the real
// mutex is taken.
func lockMutex(mu *sync.Mutex) {
	if !check.LockMutex(mu) {
		mu.Lock()
	}
}

// unlockMutex releases what lockMutex acquired; the two always resolve
// to the same side of the seam within one critical section.
func unlockMutex(mu *sync.Mutex) {
	if !check.UnlockMutex(mu) {
		mu.Unlock()
	}
}

func (m *Mutex) lockMu()   { lockMutex(&m.mu) }
func (m *Mutex) unlockMu() { unlockMutex(&m.mu) }

func (l *RWLock) lockMu()   { lockMutex(&l.mu) }
func (l *RWLock) unlockMu() { unlockMutex(&l.mu) }
