package scl

import (
	"testing"
	"time"

	"scl/trace"
)

// The tracing-overhead contract: with Tracer nil the lock paths pay one
// nil check; with a ring attached, one Event fill and one ring store per
// hook. Compare:
//
//	go test -bench='MutexUncontended|MutexTraced' -count=5

func benchLockUnlock(b *testing.B, m *Mutex) {
	b.Helper()
	h := m.Register()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lock()
		h.Unlock()
	}
}

func BenchmarkMutexUncontended(b *testing.B) {
	benchLockUnlock(b, NewMutex(Options{Slice: time.Minute}))
}

func BenchmarkMutexTraced(b *testing.B) {
	ring := trace.NewRing(1 << 16)
	benchLockUnlock(b, NewMutex(Options{Slice: time.Minute, Tracer: ring}))
}

// The k-SCL configuration releases the slice on every unlock, the
// worst case for per-operation accounting and event volume.
func BenchmarkKSCLUncontended(b *testing.B) {
	benchLockUnlock(b, NewMutex(Options{Slice: -1}))
}

func BenchmarkKSCLTraced(b *testing.B) {
	ring := trace.NewRing(1 << 16)
	benchLockUnlock(b, NewMutex(Options{Slice: -1, Tracer: ring}))
}
