package scl

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// invariants fails the test on the first manager invariant violation.
func invariants(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestManagerBasic: two tenants over a handful of keys — grants count,
// holds accumulate, keys materialize once, and the books balance.
func TestManagerBasic(t *testing.T) {
	m := NewManager(ManagerOptions{Name: "basic", Lock: Options{Slice: time.Millisecond}})
	a := m.Tenant("a", NiceToWeight(0))
	b := m.Tenant("b", NiceToWeight(0))
	for i := 0; i < 3; i++ {
		for _, tn := range []*Tenant{a, b} {
			g := tn.Lock(fmt.Sprintf("k%d", i))
			g.Unlock()
		}
	}
	invariants(t, m)
	st := m.Stats()
	if st.Keys != 3 || st.Materialized != 3 {
		t.Fatalf("Keys = %d, Materialized = %d, want 3/3", st.Keys, st.Materialized)
	}
	if st.Grants != 6 {
		t.Fatalf("Grants = %d, want 6", st.Grants)
	}
	for _, id := range []int64{a.ID(), b.ID()} {
		ts, ok := st.Tenant(id)
		if !ok || ts.Grants != 3 {
			t.Fatalf("tenant %d: row %+v ok=%v, want 3 grants", id, ts, ok)
		}
	}
	if n := m.Keys(); n != 3 {
		t.Fatalf("Keys() = %d, want 3", n)
	}
	a.Close()
	b.Close()
	invariants(t, m)
	if st := m.Stats(); st.Identities != 0 {
		t.Fatalf("%d identities survive Close", st.Identities)
	}
}

// TestManagerModePanics: acquire mode must match the table kind, and
// closed tenants must refuse new work.
func TestManagerModePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mu := NewManager(ManagerOptions{})
	rw := NewManager(ManagerOptions{RW: true})
	expectPanic("RLock on mutex table", func() { mu.Tenant("x", 1).RLock("k") })
	expectPanic("Lock on RW table", func() { rw.Tenant("x", 1).Lock("k") })
	expectPanic("zero-weight tenant", func() { mu.Tenant("x", 0) })
	tn := mu.Tenant("x", 1)
	tn.Close()
	tn.Close() // idempotent
	expectPanic("Lock on closed tenant", func() { tn.Lock("k") })
	g := mu.Tenant("y", 1).Lock("k")
	g.Unlock()
	expectPanic("double Unlock", func() { g.Unlock() })
}

// TestManagerRW: RW tables grant concurrent readers and exclusive
// writers, with grants booked per tenant.
func TestManagerRW(t *testing.T) {
	m := NewManager(ManagerOptions{RW: true, ReadWeight: 1, WriteWeight: 1,
		Lock: Options{Slice: time.Millisecond}})
	r := m.Tenant("readers", NiceToWeight(0))
	w := m.Tenant("writer", NiceToWeight(0))

	g1 := r.RLock("k")
	g2 := r.RLock("k") // concurrent read grant must not deadlock
	g1.Unlock()
	g2.Unlock()
	gw := w.WLock("k")
	gw.Unlock()
	invariants(t, m)
	st := m.Stats()
	if st.Grants != 3 {
		t.Fatalf("Grants = %d, want 3", st.Grants)
	}
	if rs, _ := st.Tenant(r.ID()); rs.Grants != 2 {
		t.Fatalf("reader grants = %d, want 2", rs.Grants)
	}
}

// TestManagerContext: cancellation during the key-lock wait returns the
// error, leaves the key unheld and the in-flight accounting clean.
func TestManagerContext(t *testing.T) {
	m := NewManager(ManagerOptions{Lock: Options{Slice: 50 * time.Millisecond}})
	holder := m.Tenant("holder", NiceToWeight(0))
	waiter := m.Tenant("waiter", NiceToWeight(0))
	g := holder.Lock("k")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := waiter.LockContext(ctx, "k"); err == nil {
		t.Fatal("LockContext under a held key returned nil error")
	}
	invariants(t, m)
	g.Unlock()
	// The key must be immediately acquirable again.
	g2 := waiter.Lock("k")
	g2.Unlock()
	invariants(t, m)

	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := waiter.LockContext(cancelled, "free"); err == nil {
		t.Fatal("pre-cancelled ctx acquired the lock")
	}
	if m.Keys() != 1 {
		// A pre-cancelled ctx must return before touching the table, so
		// "free" never materializes and only "k" exists.
		t.Fatalf("Keys = %d after pre-cancelled acquire, want 1", m.Keys())
	}
}

// TestManagerLifecycle is the issue's deterministic lifecycle suite:
// lazily materialize a key, use it, let the lock GC reap it, then
// re-materialize — the per-key lock starts fresh while the stripe-level
// tenant books are identical across the reap (usage, weight, identity),
// under CheckInvariants at every step.
func TestManagerLifecycle(t *testing.T) {
	const idle = 10 * time.Millisecond
	m := NewManager(ManagerOptions{
		Lock: Options{Slice: time.Millisecond},
	}, WithStripes(1), WithLockGC(idle))
	tn := m.Tenant("t", NiceToWeight(0))
	other := m.Tenant("spin", NiceToWeight(0))

	g := tn.Lock("k")
	time.Sleep(time.Millisecond)
	g.Unlock()
	go2 := other.Lock("other") // both tenants on the books before the baseline
	go2.Unlock()
	invariants(t, m)
	st := m.Stats()
	if st.Keys != 2 || st.Materialized != 2 {
		t.Fatalf("after first use: Keys=%d Materialized=%d, want 2/2", st.Keys, st.Materialized)
	}
	s := m.stripeOf("k")
	usage := s.books.Usage(tn.id)
	weight := s.books.TotalWeight()
	if usage <= 0 {
		t.Fatal("no usage booked at stripe level")
	}

	// Idle past the threshold; releases on another key drive the reaper.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		g := other.Lock("other")
		g.Unlock()
		if m.Stats().LocksReaped >= 1 {
			break
		}
	}
	st = m.Stats()
	if st.LocksReaped < 1 {
		t.Fatalf("lock not reaped: %+v", st)
	}
	invariants(t, m)
	// Books survive the reap: same identity, same usage, same weight.
	if got := s.books.Usage(tn.id); got != usage {
		t.Fatalf("stripe usage changed across lock reap: %v -> %v", usage, got)
	}
	if got := s.books.TotalWeight(); got != weight {
		t.Fatalf("stripe weight changed across lock reap: %v -> %v", weight, got)
	}

	// Re-materialize: a fresh per-key lock, stripe books still continuous.
	g = tn.Lock("k")
	g.Unlock()
	invariants(t, m)
	st = m.Stats()
	if st.Materialized < 3 {
		t.Fatalf("key not re-materialized: %+v", st)
	}
	if got := s.books.Usage(tn.id); got < usage {
		t.Fatalf("stripe usage regressed across re-materialization: %v -> %v", usage, got)
	}
	tn.Close()
	other.Close()
	invariants(t, m)
}

// TestManagerTenantGC: idle tenant identities expire from the stripe
// books while active ones survive.
func TestManagerTenantGC(t *testing.T) {
	m := NewManager(ManagerOptions{
		Lock: Options{Slice: time.Millisecond},
	}, WithStripes(1), WithTenantGC(10*time.Millisecond))
	idler := m.Tenant("idler", NiceToWeight(0))
	active := m.Tenant("active", NiceToWeight(0))
	g := idler.Lock("k")
	g.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		g := active.Lock("k")
		g.Unlock()
		st := m.Stats()
		if _, ok := st.Tenant(idler.ID()); !ok {
			if st.TenantsReaped < 1 {
				t.Fatalf("idler row gone but TenantsReaped = %d", st.TenantsReaped)
			}
			invariants(t, m)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("idle tenant never reaped: %+v", m.Stats())
}

// TestManagerTableFairness: an aggressive tenant spraying long holds
// across many keys must not deny a light tenant its table-wide share —
// the stripe books ban the hog, and the light tenant's waits stay
// bounded. This is the paper's opportunity argument lifted to the
// table: per-key accounting alone could never catch a tenant that never
// reuses a key.
func TestManagerTableFairness(t *testing.T) {
	m := NewManager(ManagerOptions{
		Lock: Options{Slice: time.Millisecond, BanCap: 100 * time.Millisecond},
	}, WithStripes(1))
	hog := m.Tenant("hog", NiceToWeight(0))
	light := m.Tenant("light", NiceToWeight(0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			g := hog.Lock(fmt.Sprintf("hog-%d", i%64)) // fresh-ish keys: per-key books see no repeat offender
			busy := time.Now().Add(500 * time.Microsecond)
			for time.Now().Before(busy) {
			}
			g.Unlock()
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the hog build up usage
	for i := 0; i < 20; i++ {
		g := light.Lock("shared")
		g.Unlock()
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	st := m.Stats()
	hs, _ := st.Tenant(hog.ID())
	if hs.Bans == 0 {
		t.Fatalf("hog drew no table-level bans: %+v", hs)
	}
	invariants(t, m)
}

// TestManagerStressKeyChurn is the issue's churn soak: a stream of
// mostly-fresh keys (>=100k in the full run) with the lock GC on must
// keep the table bounded — the live-key count plateaus instead of
// growing monotonically with keys ever seen.
func TestManagerStressKeyChurn(t *testing.T) {
	keys := 100_000
	if testing.Short() {
		keys = 20_000
	}
	const idle = 5 * time.Millisecond
	m := NewManager(ManagerOptions{
		Lock: Options{Slice: -1}, // k-SCL per key: churn keys have no slices to keep hot
	}, WithStripes(8), WithLockGC(idle), WithTenantGC(50*time.Millisecond))

	workers := 4
	var wg sync.WaitGroup
	var peak int
	var peakMu sync.Mutex
	perWorker := keys / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tn := m.Tenant(fmt.Sprintf("w%d", w), NiceToWeight(0))
			defer tn.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				g := tn.Lock(fmt.Sprintf("w%d-k%d", w, i))
				g.Unlock()
				if rng.Intn(64) == 0 {
					n := m.Keys()
					peakMu.Lock()
					if n > peak {
						peak = n
					}
					peakMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	invariants(t, m)
	st := m.Stats()
	if st.Materialized < int64(keys)*9/10 {
		t.Fatalf("only %d keys materialized, want ~%d", st.Materialized, keys)
	}
	if st.LocksReaped == 0 {
		t.Fatal("GC never reaped a lock under churn")
	}
	// Bounded: the table must have stayed far below the keys-ever-seen
	// count at every sample, and settle low once the churn stops.
	if peak >= keys/2 {
		t.Fatalf("live keys peaked at %d of %d seen — table growth is monotone", peak, keys)
	}
	deadline := time.Now().Add(5 * time.Second)
	settle := m.Tenant("settle", NiceToWeight(0))
	defer settle.Close()
	final := m.Keys()
	for time.Now().Before(deadline) {
		for i := 0; i < 8; i++ { // touch every stripe so each reaper runs
			g := settle.Lock(fmt.Sprintf("settle-%d", i))
			g.Unlock()
		}
		time.Sleep(idle)
		m.Stats()
		if final = m.Keys(); final < 64 {
			break
		}
	}
	if final >= 64 {
		t.Fatalf("table failed to settle: %d live keys after churn", final)
	}
	t.Logf("seen %d keys, peak %d live, settled at %d, reaped %d locks / %d tenant identities",
		st.Materialized, peak, final, st.LocksReaped, st.TenantsReaped)
}
