package scl

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"scl/internal/check"
	"scl/internal/core"
	"scl/trace"
)

// RWLock is a Reader-Writer Scheduler-Cooperative Lock (the paper's
// RW-SCL). Threads are classified by the work they do — readers versus
// writers — and the two classes receive alternating lock slices whose
// lengths are proportional to the configured class weights. Unlike
// reader-preference or writer-preference locks, neither class can starve
// the other: a 9:1 configuration gives readers 90% of the lock opportunity
// and writers 10%, whatever the arrival pattern (paper §4.5, Figure 11).
//
// There is no per-thread accounting (and hence no Handle): the class is
// the schedulable entity, exactly as in the paper.
//
// # The in-slice fast path
//
// While a class is alone on the lock, acquires and releases bypass the
// internal mutex. Readers use a BRAVO-style distributed read indicator:
// the reader count lives in rwShards cache-line-padded signed counters,
// each fast RLock/RUnlock touching only the calling goroutine's shard,
// so concurrent readers in a read slice never contend on a shared word.
// The packed state word keeps only the coordination bits {writer-active,
// phase, waiters} plus a phase-flip epoch; whenever any bit is up the
// fast paths stand down and readers take the packed-word slow path under
// the mutex. Writers needing the lock sweep (sum) the shards at the
// phase flip and are admitted only when the sum reaches zero — with a
// blocking bit set before the sweep, the sum is exact or transiently
// inflated, never low (see DESIGN.md "Distributed read indicator").
//
// A lone writer in a write slice keeps a single-CAS fast path on the
// state word, guarded against phase ABA by the epoch bits.
//
// Fast reader operations in real time do not read the clock — that is
// where the win comes from — so usage integrals for fast regimes are
// charged at regime granularity by the next slow-path operation; under
// the deterministic checker the virtual clock is free and fast
// operations charge exactly. The slow path credits the slice-clock
// restarts a fast regime skipped, so the incumbent class keeps at most
// the remainder of one slice, exactly as if every operation had
// refreshed the clock. Installing a Tracer disables the fast path —
// traced operations take the slow path so the event stream is identical
// with and without tracing, and the shard sums are mutex-exact.
type RWLock struct {
	mu   sync.Mutex
	ctrl *core.RWController

	name   string
	tracer atomic.Pointer[Tracer]

	// word packs {writer-active, phase-write, waiters, phase epoch}; it
	// carries the coordination bits while the reader count lives in the
	// shards. The fast paths CAS it without mu; slow paths mutate it
	// under mu with CAS loops that tolerate concurrent fast-path CASes.
	word atomic.Uint64

	waitR []rwWaiter
	waitW []rwWaiter

	// inactive (WithInactiveGC) bounds how long empty waiter slabs retain
	// their grown capacity; emptySince is when both queues last drained
	// (-1: not currently empty, or already released).
	inactive   time.Duration
	emptySince time.Duration

	// One reusable timer drives phase-end re-evaluation; re-arming per
	// operation would spawn a goroutine per firing (time.AfterFunc), which
	// dominates runtime under load. Behind the lockTimer seam it is a
	// virtual-clock timer under the deterministic checker.
	timer      lockTimer
	timerAt    time.Duration // absolute arm target; avoids redundant resets
	phaseFresh bool          // no acquisition has landed yet in this slice

	// Usage integrals, Σ individual holds = ∫ holders(t) dt per class:
	// every slow-path operation charges the interval since the previous
	// one (lastAt) under the holder state it observed. Real-mode fast
	// reader operations skip the clock entirely, so a fast regime is
	// charged in one piece by the next slow operation.
	lastAt     atomic.Int64
	lastFast   atomic.Int64 // most recent fast-path op; drives slice-clock credit
	readerHold atomic.Int64
	writerHold atomic.Int64
	readerOps  atomic.Int64 // slow-path reader acquisitions; fast ones count in shards
	writerOps  atomic.Int64
	idleTotal  atomic.Int64
	createdAt  time.Duration

	// fastOpsSeen is the Σ shard ops total the slow path last observed;
	// a differing sum means fast reader activity happened since, and the
	// slice clock is credited through the moment of discovery. l.mu held.
	fastOpsSeen int64

	// cancelled acquisitions per class (RLockContext / WLockContext
	// returning ctx.Err()).
	readerCancels atomic.Int64
	writerCancels atomic.Int64

	// wcombine is the writer-side combining stack (RWLock.Do): a Treiber
	// LIFO of published critical sections the active writer drains on its
	// way out (rwcombine.go). Pushes are lock-free; pops happen under mu.
	wcombine atomic.Pointer[rwCombineReq]
	// writerCombines counts closures executed through the combining path
	// (they are also included in writerOps).
	writerCombines atomic.Int64

	// tracing state (slow path only — tracing disables the fast path):
	// start of the current reader busy interval / writer hold / slice
	// phase, for event details. l.mu held.
	rStart     time.Duration
	wStart     time.Duration
	phaseStart time.Duration

	// The distributed read indicator. Signed per-shard reader counters:
	// a lock's +1 and its unlock's -1 may land on different shards (the
	// goroutine's stack moved, or a granted waiter released slow), so
	// individual shards may go negative — only the sum is meaningful.
	// The leading pad keeps shard 0 off the hot accounting cache line.
	_      [rwCacheLine]byte
	shards [rwShards]rwShard
}

// State-word layout. The low bits carry the phase-flip epoch.
const (
	rwWActive    = 1 << 63 // a writer holds the lock
	rwPhaseWrite = 1 << 62 // the write slice is active (mirror of ctrl.Phase)
	rwWaiters    = 1 << 61 // a wait queue is non-empty; fast path stands down
	// rwEpoch advances at every phase flip. fastWLock's CAS covers the
	// epoch, so "readers drained" observed under one epoch cannot admit
	// a writer after an intervening flip let readers back in (the ABA a
	// bare bit-compare would allow).
	rwEpoch = 1<<61 - 1
	// rwFastBlock are the bits that shut the reader fast path off.
	rwFastBlock = rwWActive | rwPhaseWrite | rwWaiters
)

// Reader-shard geometry: 8 shards of one cache line each (~1KB per
// lock). Plenty on any realistic core count for the read-slice fan-in,
// while keeping the writer's phase-flip sweep a handful of loads.
const (
	rwShardBits = 3
	rwShards    = 1 << rwShardBits
	rwCacheLine = 128
	rwShardPad  = rwCacheLine - 16
)

// rwShard is one slot of the distributed read indicator.
type rwShard struct {
	count atomic.Int64 // signed reader presence; Σ over shards = active readers
	ops   atomic.Int64 // fast-path acquisitions through this shard
	_     [rwShardPad]byte
}

// rwShardIndex picks the calling goroutine's reader shard. Under the
// deterministic checker the scheduler's goroutine id keys the choice, so
// shard selection — and with it every schedule-visible branch — replays
// bit-identically from a seed. Otherwise a few bits of the goroutine's
// stack address do (distinct goroutines live on distinct stack blocks).
// A goroutine can land on a new shard if its stack is reallocated
// mid-hold; the signed counters make that harmless. Kept out of line so
// the probe address is taken at the same stack depth from every
// call site, keeping lock- and unlock-side indices aligned.
//
//go:noinline
func rwShardIndex() int {
	if id, ok := check.GID(); ok {
		return id & (rwShards - 1)
	}
	var probe byte
	h := uintptr(unsafe.Pointer(&probe)) >> 9
	return int((h ^ (h >> 6)) & (rwShards - 1))
}

// readerSum sums the read indicator. With a blocking bit up before the
// loads the result is exact or transiently inflated by +1s about to be
// undone; with no bit up it is a heuristic snapshot.
func (l *RWLock) readerSum() int64 {
	var s int64
	for i := range l.shards {
		s += l.shards[i].count.Load()
	}
	return s
}

// fastReaderOps sums the shards' acquisition counters.
func (l *RWLock) fastReaderOps() int64 {
	var s int64
	for i := range l.shards {
		s += l.shards[i].ops.Load()
	}
	return s
}

// decReaderLocked removes one reader from the indicator on behalf of a
// slow-path release: the caller's own shard when it is positive (the
// common case — the matching fast +1 landed there), else the most
// positive shard, keeping individual counters near zero. The caller has
// established Σ > 0, so a positive shard exists. l.mu held.
func (l *RWLock) decReaderLocked() {
	sh := &l.shards[rwShardIndex()]
	if sh.count.Load() > 0 {
		sh.count.Add(-1)
		return
	}
	best, bestC := sh, int64(0)
	for i := range l.shards {
		if c := l.shards[i].count.Load(); c > bestC {
			best, bestC = &l.shards[i], c
		}
	}
	best.count.Add(-1)
}

// rwWaiter is one queued RLock or WLock call.
type rwWaiter struct {
	ch    chan struct{}
	since time.Duration
	// shard is the read-indicator slot a granted reader is counted in —
	// recorded at enqueue on the waiter's own goroutine, so its later
	// fast RUnlock finds its own shard positive.
	shard int
}

// rwQueueKeep is the combined waiter-slab capacity an RWLock keeps even
// when WithInactiveGC releases idle queue memory: re-growing tiny slabs
// is cheaper than the churn of freeing them.
const rwQueueKeep = 16

// NewRWLock creates an RW-SCL with the given class weights (e.g. 9 and 1)
// and slice period (0 = the 2ms default, split between the classes in
// weight proportion). Options may set a name (WithName), a tracer, or
// idle-memory bounding (WithInactiveGC): an RW-SCL accounts per class
// rather than per entity, so there is no entity state to reap — the GC
// threshold instead bounds how long the waiter queues' grown backing
// arrays outlive the contention burst that grew them.
func NewRWLock(readWeight, writeWeight int64, period time.Duration, opts ...Option) *RWLock {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	now := monotime()
	l := &RWLock{
		ctrl: core.NewRWController(core.RWParams{
			Period:      period,
			ReadWeight:  readWeight,
			WriteWeight: writeWeight,
		}),
		name:       o.Name,
		inactive:   o.InactiveTimeout,
		emptySince: -1,
		createdAt:  now,
		phaseStart: now,
	}
	l.lastAt.Store(int64(now))
	if o.Tracer != nil {
		t := o.Tracer
		l.tracer.Store(&t)
	}
	return l
}

// SetName labels the lock in trace events and metrics export.
func (l *RWLock) SetName(name string) *RWLock {
	l.lockMu()
	l.name = name
	l.unlockMu()
	return l
}

// Name returns the lock's configured label ("" if unnamed).
func (l *RWLock) Name() string {
	l.lockMu()
	defer l.unlockMu()
	return l.name
}

// SetTracer installs (or, with nil, removes) a Tracer. The reader and
// writer classes appear as the pseudo-entities trace.EntityReaders and
// trace.EntityWriters — the class is the schedulable entity in an RW-SCL.
// Release events carry the writer's hold, or for readers the length of
// the just-ended busy interval (the union of overlapping reads) when the
// last reader leaves; slice-end events fire at phase switches with the
// outgoing phase's length. While a Tracer is installed the in-slice fast
// path is disabled, so every operation is traced.
func (l *RWLock) SetTracer(t Tracer) {
	l.lockMu()
	now := monotime()
	l.rStart = now
	l.wStart = now
	l.phaseStart = now
	if t == nil {
		l.tracer.Store(nil)
	} else {
		l.tracer.Store(&t)
	}
	l.unlockMu()
}

func (l *RWLock) loadTracer() Tracer {
	if p := l.tracer.Load(); p != nil {
		return *p
	}
	return nil
}

// event assembles a trace.Event for this lock. l.mu held.
func (l *RWLock) event(kind trace.Kind, now time.Duration, entity int64, detail time.Duration) trace.Event {
	return trace.Event{At: now, Kind: kind, Lock: l.name, Entity: entity, Detail: detail}
}

// charge advances the usage integrals: the interval since the previous
// charge is credited under the given holder state. Safe without mu —
// lastAt hands each interval to exactly one charger. Real-mode fast
// reader operations never call it, so during a pure fast regime the
// integrals pause and the next slow-path charge lands the whole regime
// under the state it observes — regime-granular rather than
// per-operation precision, which only the stats (not the scheduling,
// which runs off the slice clock) can see.
func (l *RWLock) charge(readers int64, wactive bool, now time.Duration) {
	dt := now - time.Duration(l.lastAt.Swap(int64(now)))
	if dt <= 0 {
		return
	}
	if readers > 0 {
		l.readerHold.Add(readers * int64(dt))
	}
	if wactive {
		l.writerHold.Add(int64(dt))
	} else if readers <= 0 {
		l.idleTotal.Add(int64(dt))
	}
}

// mutateWord applies f to the state word with a CAS loop that tolerates
// concurrent fast-path CASes. l.mu held. Returns the installed word.
func (l *RWLock) mutateWord(f func(uint64) uint64) uint64 {
	for {
		old := l.word.Load()
		new := f(old)
		// The load→CAS window where a concurrent fast-path CAS may land —
		// the interleaving the deterministic checker reorders.
		check.Point("rw.word.mutate")
		if old == new || l.word.CompareAndSwap(old, new) {
			return new
		}
	}
}

// fastRLock is the read-slice fast path: one Add on the caller's shard,
// no mutex, and — in real time — no clock read. Eligible only while the
// read slice is active with no writer holding and nobody queued, and no
// tracer installed. The protocol is publish-then-revalidate: the +1 is
// visible before the word is re-checked, so a phase-flip sweep that
// raised a blocking bit before summing either sees the +1 (and waits for
// the reader) or the reader's revalidation sees the bit (and undoes the
// +1 before queuing). No interleaving lets a writer in on top of an
// admitted fast reader.
func (l *RWLock) fastRLock() bool {
	if l.tracer.Load() != nil {
		return false
	}
	if l.word.Load()&rwFastBlock != 0 {
		return false
	}
	sh := &l.shards[rwShardIndex()]
	sh.count.Add(1)
	// The window between publishing the +1 and revalidating the word —
	// the sweep-vs-incoming-reader race the checker explores.
	check.Point("rw.shard.rlock")
	if l.word.Load()&rwFastBlock != 0 {
		// A writer arrived or the slice flipped after the first check.
		// Undo and queue; a concurrent sweep may have counted the
		// transient +1, which only delays the writer until this
		// reader's slow-path advance (or the phase timer) re-sweeps.
		sh.count.Add(-1)
		return false
	}
	sh.ops.Add(1)
	if check.Enabled() {
		// The virtual clock is free: charge exactly, as the slow path
		// would, so checker-run scenarios keep per-op accounting.
		now := monotime()
		l.charge(l.readerSum()-1, false, now)
		l.lastFast.Store(int64(now))
	}
	return true
}

// fastRUnlock mirrors fastRLock for release: allowed only while nobody
// is queued (a queued writer needs the slow path's drain-and-grant). The
// -1 lands on the first positive shard scanning from the caller's own —
// usually the very shard its +1 went to, but the scan also absorbs a
// stack move or an inlining-dependent frame layout shifting the
// caller's index between lock and unlock. A release that finds no
// positive shard at all falls back to the slow path, which re-sums
// exactly and still panics on a genuine unlock-without-lock.
func (l *RWLock) fastRUnlock() bool {
	if l.tracer.Load() != nil {
		return false
	}
	if l.word.Load()&rwWaiters != 0 {
		return false
	}
	idx := rwShardIndex()
	check.Point("rw.shard.runlock")
	for i := 0; i < rwShards; i++ {
		sh := &l.shards[(idx+i)&(rwShards-1)]
		if sh.count.Load() <= 0 {
			continue
		}
		sh.count.Add(-1)
		if check.Enabled() {
			now := monotime()
			l.charge(l.readerSum()+1, false, now)
			l.lastFast.Store(int64(now))
		}
		return true
	}
	return false
}

// fastWLock is the write-slice fast path for a lone writer: eligible
// only during a quiet write slice (no waiters, no holder). The shard sum
// is taken under the phase bit — which blocks new fast readers — and the
// CAS covers the epoch, so an intervening phase flip (which could have
// admitted readers and flipped back) fails the CAS instead of admitting
// a writer on top of them.
func (l *RWLock) fastWLock(now time.Duration) bool {
	for {
		w := l.word.Load()
		if w&(rwWActive|rwWaiters) != 0 || w&rwPhaseWrite == 0 || l.tracer.Load() != nil {
			return false
		}
		check.Point("rw.fast.wlock")
		if l.readerSum() != 0 {
			// Readers still draining from the previous read slice (or a
			// transient +1 being undone): take the queue.
			return false
		}
		if l.word.CompareAndSwap(w, w|rwWActive) {
			l.charge(0, false, now)
			l.lastFast.Store(int64(now))
			l.writerOps.Add(1)
			return true
		}
	}
}

// fastWUnlock mirrors fastWLock for release. A non-empty combining stack
// forces the slow path, whose release drains it; a publish that lands
// after the CAS is covered by the post-release wake-walk (the publisher
// observes the cleared writer-active bit and self-serves).
func (l *RWLock) fastWUnlock(now time.Duration) bool {
	for {
		w := l.word.Load()
		if w&(rwWActive|rwWaiters) != rwWActive || w&rwPhaseWrite == 0 || l.tracer.Load() != nil {
			return false
		}
		if l.wcombine.Load() != nil {
			return false
		}
		check.Point("rw.fast.wunlock")
		if l.word.CompareAndSwap(w, w&^rwWActive) {
			l.charge(0, true, now)
			l.lastFast.Store(int64(now))
			if l.wcombine.Load() != nil {
				l.wakeWCombiners()
			}
			return true
		}
	}
}

// RLock acquires the lock shared. During a write slice it blocks until
// the read slice begins and the writer drains.
func (l *RWLock) RLock() {
	if l.fastRLock() {
		return
	}
	if ch, _ := l.rlockSlow(); ch != nil {
		if !check.WaitChan("rw.rwait", ch) {
			<-ch // granted: the granter counted us in our shard
		}
	}
}

// RLockContext acquires the lock shared, like RLock, but gives up when
// ctx is cancelled: it returns ctx.Err() and the lock is NOT held. A
// waiter that abandons detaches from the queue; a grant that raced with
// the cancellation is released immediately, so class accounting stays
// consistent either way. An already-cancelled ctx returns without
// blocking.
func (l *RWLock) RLockContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l.fastRLock() {
		return nil
	}
	ch, since := l.rlockSlow()
	if ch == nil {
		return nil
	}
	if ok, handled := check.WaitChanOrDone("rw.rwait", ch, ctx.Done()); handled {
		if ok {
			return nil
		}
		l.abandonWaiter(&l.waitR, ch, trace.EntityReaders, since)
		return ctx.Err()
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		l.abandonWaiter(&l.waitR, ch, trace.EntityReaders, since)
		return ctx.Err()
	}
}

// rlockSlow runs the shared acquire under l.mu: either inline (nil
// channel) or queued (the grant channel, plus the enqueue time).
func (l *RWLock) rlockSlow() (chan struct{}, time.Duration) {
	check.Point("rw.rlock.slow")
	l.lockMu()
	now := monotime()
	l.advanceLocked(now)
	w := l.word.Load()
	if l.ctrl.Phase() == core.PhaseRead && w&rwWActive == 0 {
		l.classEntered(now)
		sum := l.readerSum()
		l.charge(sum, false, now)
		if sum == 0 {
			l.rStart = now
		}
		l.shards[rwShardIndex()].count.Add(1)
		l.readerOps.Add(1)
		if t := l.loadTracer(); t != nil {
			t.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityReaders, 0))
		}
		l.unlockMu()
		return nil, now
	}
	ch := make(chan struct{}, 1)
	l.waitR = append(l.waitR, rwWaiter{ch: ch, since: now, shard: rwShardIndex()})
	l.mutateWord(func(x uint64) uint64 { return x | rwWaiters })
	l.armPhaseTimer()
	l.unlockMu()
	return ch, now
}

// RUnlock releases a shared hold.
func (l *RWLock) RUnlock() {
	if l.fastRUnlock() {
		return
	}
	check.Point("rw.runlock.slow")
	l.lockMu()
	now := monotime()
	sum := l.quiescentSumLocked()
	if sum <= 0 {
		l.unlockMu()
		panic("scl: RUnlock without RLock")
	}
	w := l.word.Load()
	l.charge(sum, w&rwWActive != 0, now)
	l.decReaderLocked()
	if t := l.loadTracer(); t != nil {
		var busy time.Duration
		if sum == 1 {
			busy = now - l.rStart // the union of the overlapping reads
		}
		t.OnRelease(l.event(trace.KindRelease, now, trace.EntityReaders, busy))
	}
	l.advanceLocked(now)
	l.unlockMu()
}

// quiescentSumLocked returns the read-indicator sum, quiescing the fast
// path first if the plain sum comes up empty: with the waiters bit up,
// in-flight fast locks revalidate and undo, and fast unlocks stand
// down, so the recount cannot miss a settled reader. The bit is
// reconciled with the queues afterwards. l.mu held.
func (l *RWLock) quiescentSumLocked() int64 {
	sum := l.readerSum()
	if sum > 0 {
		return sum
	}
	l.mutateWord(func(x uint64) uint64 { return x | rwWaiters })
	sum = l.readerSum()
	l.syncWaitersBit()
	return sum
}

// WLock acquires the lock exclusive. During a read slice it blocks until
// the write slice begins and readers drain. Multiple writers contend
// within the write slice, so a second writer can use the slice while the
// first runs non-critical code (paper Figure 12b).
func (l *RWLock) WLock() {
	if l.fastWLock(monotime()) {
		return
	}
	if ch, _ := l.wlockSlow(); ch != nil {
		if !check.WaitChan("rw.wwait", ch) {
			<-ch // granted: writer-active already set by the granter
		}
	}
}

// WLockContext acquires the lock exclusive, like WLock, but gives up when
// ctx is cancelled: it returns ctx.Err() and the lock is NOT held. See
// RLockContext for the abandonment semantics.
func (l *RWLock) WLockContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l.fastWLock(monotime()) {
		return nil
	}
	ch, since := l.wlockSlow()
	if ch == nil {
		return nil
	}
	if ok, handled := check.WaitChanOrDone("rw.wwait", ch, ctx.Done()); handled {
		if ok {
			return nil
		}
		l.abandonWaiter(&l.waitW, ch, trace.EntityWriters, since)
		return ctx.Err()
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		l.abandonWaiter(&l.waitW, ch, trace.EntityWriters, since)
		return ctx.Err()
	}
}

// wlockSlow runs the exclusive acquire under l.mu: either inline (nil
// channel) or queued (the grant channel, plus the enqueue time).
func (l *RWLock) wlockSlow() (chan struct{}, time.Duration) {
	check.Point("rw.wlock.slow")
	l.lockMu()
	now := monotime()
	l.advanceLocked(now)
	w := l.word.Load()
	// During the write phase the phase bit blocks fast readers, so a
	// zero sweep is definitive: no reader holds and none can enter.
	if l.ctrl.Phase() == core.PhaseWrite && w&rwWActive == 0 && l.readerSum() == 0 {
		l.classEntered(now)
		l.charge(0, false, now)
		l.mutateWord(func(x uint64) uint64 { return x | rwWActive })
		l.writerOps.Add(1)
		l.wStart = now
		if t := l.loadTracer(); t != nil {
			t.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityWriters, 0))
		}
		l.unlockMu()
		return nil, now
	}
	ch := make(chan struct{}, 1)
	l.waitW = append(l.waitW, rwWaiter{ch: ch, since: now})
	l.mutateWord(func(x uint64) uint64 { return x | rwWaiters })
	l.armPhaseTimer()
	l.unlockMu()
	return ch, now
}

// abandonWaiter resolves a cancelled waiter under l.mu. If the waiter is
// still queued it simply detaches. If the grant raced the cancellation,
// the granter has already removed it from the queue and posted the token
// to its buffered channel (both under l.mu, so the two cases are mutually
// exclusive and stable here); the token is consumed and the just-granted
// hold released immediately, letting advanceLocked re-evaluate the phase
// and wake whoever is eligible — the grant is never lost.
func (l *RWLock) abandonWaiter(queue *[]rwWaiter, ch chan struct{}, entity int64, since time.Duration) {
	check.Point("rw.abandon")
	l.lockMu()
	defer l.unlockMu()
	now := monotime()
	for i, wt := range *queue {
		if wt.ch == ch {
			*queue = append((*queue)[:i], (*queue)[i+1:]...)
			l.syncWaitersBit()
			l.noteAbandonLocked(entity, now, now-since)
			return
		}
	}
	<-ch // guaranteed present: granted before we took l.mu
	if entity == trace.EntityReaders {
		sum := l.readerSum()
		l.charge(sum, false, now)
		l.decReaderLocked()
		if t := l.loadTracer(); t != nil {
			var busy time.Duration
			if sum == 1 {
				busy = now - l.rStart // the union of the overlapping reads
			}
			t.OnRelease(l.event(trace.KindRelease, now, entity, busy))
		}
	} else {
		l.charge(0, true, now)
		l.mutateWord(func(x uint64) uint64 { return x &^ rwWActive })
		if t := l.loadTracer(); t != nil {
			t.OnRelease(l.event(trace.KindRelease, now, entity, now-l.wStart))
		}
	}
	l.noteAbandonLocked(entity, now, now-since)
	l.advanceLocked(now)
	// The writer branch cleared writer-active without a drain; wake any
	// pending Do publishers so they withdraw to the classic path (no-op
	// unless the bit is actually clear — advance may have re-granted).
	l.wakeWCombiners()
}

// noteAbandonLocked lands a cancellation in the class counters and the
// event stream. l.mu held.
func (l *RWLock) noteAbandonLocked(entity int64, now, waited time.Duration) {
	if waited < 0 {
		waited = 0
	}
	if entity == trace.EntityReaders {
		l.readerCancels.Add(1)
	} else {
		l.writerCancels.Add(1)
	}
	if t := l.loadTracer(); t != nil {
		t.OnAbandon(l.event(trace.KindAbandon, now, entity, waited))
	}
}

// WUnlock releases the exclusive hold.
func (l *RWLock) WUnlock() {
	now := monotime()
	if l.fastWUnlock(now) {
		return
	}
	check.Point("rw.wunlock.slow")
	l.lockMu()
	now = monotime()
	w := l.word.Load()
	if w&rwWActive == 0 {
		l.unlockMu()
		panic("scl: WUnlock without WLock")
	}
	l.charge(0, true, now)
	if t := l.loadTracer(); t != nil {
		t.OnRelease(l.event(trace.KindRelease, now, trace.EntityWriters, now-l.wStart))
	}
	if l.wcombine.Load() != nil {
		// Drain published writer sections while the writer-active bit is
		// still ours: the closures run under full exclusion, and the
		// follow-up charge books the drain interval as writer hold.
		now = l.drainWCombine(now)
		l.charge(0, true, now)
	}
	l.mutateWord(func(x uint64) uint64 { return x &^ rwWActive })
	l.advanceLocked(now)
	l.unlockMu()
	l.wakeWCombiners()
}

// creditFastActivity replays the slice-clock restarts that fast-path
// operations skipped. On the slow path an operation finding its own
// class's slice expired with nobody opposite restarts the clock
// (RWController.MaybeSwitch); fast operations — which by construction run
// only while nobody is queued — never touch the controller, so before any
// phase decision the clock is advanced by whole slices up to the most
// recent fast operation. The incumbent class then keeps at most the
// remainder of one slice, the same protection the slow path gives.
//
// Fast writer operations stamp lastFast exactly (they read the clock
// anyway). Real-mode fast reader operations are clock-free, so their
// activity is detected by the shards' op-counter total moving and
// credited as of now — the moment of discovery. The rounding grants the
// incumbent at most the slice containing the discovery, the same
// one-slice bound the exact stamp gives. l.mu held.
func (l *RWLock) creditFastActivity(now time.Duration) {
	sl := l.ctrl.SliceLen(l.ctrl.Phase())
	if sl <= 0 {
		return
	}
	if ops := l.fastReaderOps(); ops != l.fastOpsSeen {
		l.fastOpsSeen = ops
		if !check.Enabled() {
			l.lastFast.Store(int64(now))
		}
	}
	end := l.ctrl.PhaseEnd()
	last := time.Duration(l.lastFast.Load())
	if last < end {
		return
	}
	n := (last-end)/sl + 1
	l.ctrl.RestartPhase(end - sl + n*sl)
}

// advanceLocked updates the slice phase and grants eligible waiters.
// l.mu held.
func (l *RWLock) advanceLocked(now time.Duration) {
	check.Point("rw.advance")
	l.creditFastActivity(now)
	w := l.word.Load()
	readers := l.readerSum()
	var curWants, otherWants bool
	if l.ctrl.Phase() == core.PhaseRead {
		curWants = readers > 0 || len(l.waitR) > 0
		otherWants = len(l.waitW) > 0 || w&rwWActive != 0
	} else {
		curWants = w&rwWActive != 0 || len(l.waitW) > 0
		otherWants = len(l.waitR) > 0 || readers > 0
	}
	before := l.ctrl.Phase()
	if l.ctrl.MaybeSwitch(now, curWants, otherWants) != before {
		l.phaseFresh = true
		if t := l.loadTracer(); t != nil {
			out := trace.EntityReaders
			if before == core.PhaseWrite {
				out = trace.EntityWriters
			}
			t.OnSliceEnd(l.event(trace.KindSliceEnd, now, out, now-l.phaseStart))
		}
		l.phaseStart = now
		l.mutateWord(func(x uint64) uint64 {
			x = x&^rwEpoch | (x+1)&rwEpoch // flip advances the epoch
			if l.ctrl.Phase() == core.PhaseWrite {
				return x | rwPhaseWrite
			}
			return x &^ rwPhaseWrite
		})
		if debugChecks {
			if err := l.checkFlipLocked(); err != nil {
				debugFail(err.Error())
			}
		}
	}
	l.grantLocked(now)
	l.armPhaseTimer()
	l.maybeReleaseQueues(now)
}

// maybeReleaseQueues bounds waiter-slab memory under WithInactiveGC: an
// RW-SCL has no per-entity state to reap (the class is the schedulable
// entity), so the GC analogue is returning the waiter queues' grown
// backing arrays to the allocator once both queues have sat empty past
// the threshold — a contention burst no longer pins its high-water-mark
// capacity forever. l.mu held.
func (l *RWLock) maybeReleaseQueues(now time.Duration) {
	if l.inactive <= 0 {
		return
	}
	if len(l.waitR) != 0 || len(l.waitW) != 0 {
		l.emptySince = -1
		return
	}
	if cap(l.waitR)+cap(l.waitW) <= rwQueueKeep {
		return
	}
	if l.emptySince < 0 {
		l.emptySince = now
		return
	}
	if now-l.emptySince >= l.inactive {
		l.waitR = nil
		l.waitW = nil
		l.emptySince = -1
	}
}

// classEntered restarts the slice clock on the first acquisition of a
// fresh slice, so drain time is not charged to the incoming class.
// l.mu held.
func (l *RWLock) classEntered(now time.Duration) {
	if l.phaseFresh {
		l.ctrl.RestartPhase(now)
		l.phaseFresh = false
	}
}

// grantLocked admits waiters permitted by the current phase, then
// reconciles the waiters bit. l.mu held.
func (l *RWLock) grantLocked(now time.Duration) {
	check.Point("rw.grant")
	defer l.syncWaitersBit()
	w := l.word.Load()
	if l.ctrl.Phase() == core.PhaseRead {
		if w&rwWActive != 0 || len(l.waitR) == 0 {
			return
		}
		l.classEntered(now)
		sum := l.readerSum()
		l.charge(sum, false, now)
		if sum == 0 {
			l.rStart = now
		}
		t := l.loadTracer()
		for _, wt := range l.waitR {
			l.shards[wt.shard].count.Add(1)
			l.readerOps.Add(1)
			if t != nil {
				t.OnHandoff(l.event(trace.KindHandoff, now, trace.EntityReaders, 0))
				t.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityReaders, now-wt.since))
			}
			wt.ch <- struct{}{}
		}
		l.waitR = l.waitR[:0]
		return
	}
	if w&rwWActive != 0 || len(l.waitW) == 0 {
		return
	}
	// The write-phase drain: sweep the read indicator under the phase
	// bit. A nonzero sum means readers are still draining (or a
	// transient fast +1 is mid-undo) — skip the grant; the drain's own
	// slow-path release, the undoing reader's advance, or the phase
	// timer re-sweeps.
	check.Point("rw.phaseflip.sweep")
	if l.readerSum() != 0 {
		return
	}
	l.classEntered(now)
	l.charge(0, false, now)
	wt := l.waitW[0]
	l.waitW = l.waitW[1:]
	l.mutateWord(func(x uint64) uint64 { return x | rwWActive })
	l.writerOps.Add(1)
	l.wStart = now
	if t := l.loadTracer(); t != nil {
		t.OnHandoff(l.event(trace.KindHandoff, now, trace.EntityWriters, 0))
		t.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityWriters, now-wt.since))
	}
	wt.ch <- struct{}{}
}

// syncWaitersBit reconciles the waiters bit with the queues. l.mu held.
func (l *RWLock) syncWaitersBit() {
	empty := len(l.waitR) == 0 && len(l.waitW) == 0
	l.mutateWord(func(x uint64) uint64 {
		if empty {
			return x &^ rwWaiters
		}
		return x | rwWaiters
	})
}

// armPhaseTimer schedules a phase re-evaluation at the current slice's end
// while the opposite class waits. The timer is a single reusable
// time.Timer armed at most once per slice end. l.mu held.
func (l *RWLock) armPhaseTimer() {
	var otherWaits bool
	if l.ctrl.Phase() == core.PhaseRead {
		otherWaits = len(l.waitW) > 0
	} else {
		otherWaits = len(l.waitR) > 0
	}
	if !otherWaits {
		return
	}
	end := l.ctrl.PhaseEnd()
	if l.timerAt == end {
		return // already armed for this slice end
	}
	l.timerAt = end
	delay := end - monotime()
	if delay < 0 {
		delay = 0
	}
	if l.timer == nil {
		l.timer = startLockTimer(delay, l.onPhaseTimer)
		return
	}
	l.timer.Reset(delay)
}

// onPhaseTimer re-evaluates the phase when a slice end passes without a
// lock operation to trigger it.
func (l *RWLock) onPhaseTimer() {
	check.Point("rw.phasetimer")
	l.lockMu()
	defer l.unlockMu()
	l.timerAt = -1 // consumed; the next armPhaseTimer must re-arm
	l.advanceLocked(monotime())
}

// RWStats is a point-in-time view of an RWLock's class usage.
type RWStats struct {
	// ReaderHold is Σ of individual reader hold times (overlapping reads
	// each count).
	ReaderHold time.Duration
	// WriterHold is total exclusive hold time.
	WriterHold time.Duration
	// ReaderOps and WriterOps count acquisitions per class.
	ReaderOps, WriterOps int64
	// ReaderCancels and WriterCancels count abandoned acquisitions per
	// class (RLockContext / WLockContext returning ctx.Err()).
	ReaderCancels, WriterCancels int64
	// WriterCombined counts writer critical sections executed through the
	// combining path (RWLock.Do sections another writer ran while
	// releasing). They are included in WriterOps and WriterHold too.
	WriterCombined int64
	// Idle is the time the lock was wholly unheld.
	Idle time.Duration
	// Elapsed is the time since the lock was created.
	Elapsed time.Duration
}

// CheckInvariants verifies the lock's internal consistency: readers and
// a writer never hold simultaneously, the read-indicator sum is never
// negative, the state word's waiters bit agrees with the wait queues,
// and the word's phase bit mirrors the controller's phase. It is meant
// for quiescent or serialized callers — the deterministic checker calls
// it between operations of every explored schedule, and the scenario
// wall substrate after its goroutines join — and reports the first
// violation found, or nil.
func (l *RWLock) CheckInvariants() error {
	l.lockMu()
	defer l.unlockMu()
	sum := l.readerSum()
	if w := l.word.Load(); w&rwWActive != 0 && sum > 0 {
		return fmt.Errorf("scl: writer active with %d readers holding", sum)
	}
	// The combining stack holds only unresolved requests: claimed ones
	// left it with the drained batch, and done is stored only after
	// removal, so either state reachable here means corrupted hand-off.
	for r := l.wcombine.Load(); r != nil; r = r.next.Load() {
		switch s := r.state.Load(); s {
		case combinePending, combineCancelled:
		default:
			return fmt.Errorf("scl: rw combine stack holds request in state %d", s)
		}
	}
	return l.checkFlipLocked()
}

// checkFlipLocked is the invariant subset safe to assert mid-flight in
// real concurrent runs (the scldebug build runs it at every phase flip):
// a writer-with-readers check would trip on a fast reader's transient
// +1 awaiting undo, but the sum going negative, the waiters bit
// disagreeing with the queues, or the phase bit disagreeing with the
// controller always means corrupted bookkeeping. l.mu held.
func (l *RWLock) checkFlipLocked() error {
	w := l.word.Load()
	if sum := l.readerSum(); sum < 0 {
		return fmt.Errorf("scl: read indicator sum %d < 0 (lost reader or double release)", sum)
	}
	queued := len(l.waitR) > 0 || len(l.waitW) > 0
	hasBit := w&rwWaiters != 0
	if queued != hasBit {
		return fmt.Errorf("scl: rw waiters bit %v but queues populated %v (waitR=%d waitW=%d)",
			hasBit, queued, len(l.waitR), len(l.waitW))
	}
	phaseWrite := l.ctrl.Phase() == core.PhaseWrite
	bitWrite := w&rwPhaseWrite != 0
	if phaseWrite != bitWrite {
		return fmt.Errorf("scl: phase bit says write=%v, controller says write=%v", bitWrite, phaseWrite)
	}
	return nil
}

// Stats returns a snapshot of class usage.
func (l *RWLock) Stats() RWStats {
	l.lockMu()
	defer l.unlockMu()
	now := monotime()
	w := l.word.Load()
	l.charge(l.readerSum(), w&rwWActive != 0, now)
	// Like Mutex.Stats, snapshots give the lazy idle-memory release a
	// chance to run even when the lock has gone quiet.
	l.maybeReleaseQueues(now)
	return RWStats{
		ReaderHold:     time.Duration(l.readerHold.Load()),
		WriterHold:     time.Duration(l.writerHold.Load()),
		ReaderOps:      l.readerOps.Load() + l.fastReaderOps(),
		WriterOps:      l.writerOps.Load(),
		ReaderCancels:  l.readerCancels.Load(),
		WriterCancels:  l.writerCancels.Load(),
		WriterCombined: l.writerCombines.Load(),
		Idle:           time.Duration(l.idleTotal.Load()),
		Elapsed:        now - l.createdAt,
	}
}
