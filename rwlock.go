package scl

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scl/internal/check"
	"scl/internal/core"
	"scl/trace"
)

// RWLock is a Reader-Writer Scheduler-Cooperative Lock (the paper's
// RW-SCL). Threads are classified by the work they do — readers versus
// writers — and the two classes receive alternating lock slices whose
// lengths are proportional to the configured class weights. Unlike
// reader-preference or writer-preference locks, neither class can starve
// the other: a 9:1 configuration gives readers 90% of the lock opportunity
// and writers 10%, whatever the arrival pattern (paper §4.5, Figure 11).
//
// There is no per-thread accounting (and hence no Handle): the class is
// the schedulable entity, exactly as in the paper.
//
// # The in-slice fast path
//
// While a class is alone on the lock — readers during a read slice with no
// writer queued, or a lone writer during a write slice — acquires and
// releases are a single compare-and-swap on a packed 64-bit state word
// {writer-active, phase, waiters, reader count}, without the internal
// mutex. Usage integrals are kept exact by an atomic charge of the
// interval since the previous operation under the state it observed. The
// moment the opposite class arrives it queues under the mutex and raises
// the waiters bit, shutting the fast path off; the slow path then credits
// the slice-clock restarts the fast regime skipped (whole slices up to the
// last fast operation) so the incumbent class keeps at most the remainder
// of one slice, exactly as if every operation had refreshed the clock.
// Installing a Tracer disables the fast path — traced operations take the
// slow path so the event stream is identical with and without tracing.
type RWLock struct {
	mu   sync.Mutex
	ctrl *core.RWController

	name   string
	tracer atomic.Pointer[Tracer]

	// word packs {writer-active, phase-write, waiters, reader count}; it is
	// the single source of truth for holder state. The fast path CASes it
	// without mu; slow paths mutate it under mu with CAS loops that
	// tolerate concurrent fast-path CASes.
	word atomic.Uint64

	waitR []rwWaiter
	waitW []rwWaiter

	// inactive (WithInactiveGC) bounds how long empty waiter slabs retain
	// their grown capacity; emptySince is when both queues last drained
	// (-1: not currently empty, or already released).
	inactive   time.Duration
	emptySince time.Duration

	// One reusable timer drives phase-end re-evaluation; re-arming per
	// operation would spawn a goroutine per firing (time.AfterFunc), which
	// dominates runtime under load. Behind the lockTimer seam it is a
	// virtual-clock timer under the deterministic checker.
	timer      lockTimer
	timerAt    time.Duration // absolute arm target; avoids redundant resets
	phaseFresh bool          // no acquisition has landed yet in this slice

	// Usage integrals, Σ individual holds = ∫ holders(t) dt per class:
	// every operation charges the interval since the previous one (lastAt)
	// under the holder state it observed. All atomic — the fast path
	// charges without mu.
	lastAt     atomic.Int64
	lastFast   atomic.Int64 // most recent fast-path op; drives slice-clock credit
	readerHold atomic.Int64
	writerHold atomic.Int64
	readerOps  atomic.Int64
	writerOps  atomic.Int64
	idleTotal  atomic.Int64
	createdAt  time.Duration

	// cancelled acquisitions per class (RLockContext / WLockContext
	// returning ctx.Err()).
	readerCancels atomic.Int64
	writerCancels atomic.Int64

	// tracing state (slow path only — tracing disables the fast path):
	// start of the current reader busy interval / writer hold / slice
	// phase, for event details. l.mu held.
	rStart     time.Duration
	wStart     time.Duration
	phaseStart time.Duration
}

// State-word layout. The low bits count active readers.
const (
	rwWActive    = 1 << 63 // a writer holds the lock
	rwPhaseWrite = 1 << 62 // the write slice is active (mirror of ctrl.Phase)
	rwWaiters    = 1 << 61 // a wait queue is non-empty; fast path stands down
	rwCount      = 1<<61 - 1
)

// rwWaiter is one queued RLock or WLock call.
type rwWaiter struct {
	ch    chan struct{}
	since time.Duration
}

// rwQueueKeep is the combined waiter-slab capacity an RWLock keeps even
// when WithInactiveGC releases idle queue memory: re-growing tiny slabs
// is cheaper than the churn of freeing them.
const rwQueueKeep = 16

// NewRWLock creates an RW-SCL with the given class weights (e.g. 9 and 1)
// and slice period (0 = the 2ms default, split between the classes in
// weight proportion). Options may set a name (WithName), a tracer, or
// idle-memory bounding (WithInactiveGC): an RW-SCL accounts per class
// rather than per entity, so there is no entity state to reap — the GC
// threshold instead bounds how long the waiter queues' grown backing
// arrays outlive the contention burst that grew them.
func NewRWLock(readWeight, writeWeight int64, period time.Duration, opts ...Option) *RWLock {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	now := monotime()
	l := &RWLock{
		ctrl: core.NewRWController(core.RWParams{
			Period:      period,
			ReadWeight:  readWeight,
			WriteWeight: writeWeight,
		}),
		name:       o.Name,
		inactive:   o.InactiveTimeout,
		emptySince: -1,
		createdAt:  now,
		phaseStart: now,
	}
	l.lastAt.Store(int64(now))
	if o.Tracer != nil {
		t := o.Tracer
		l.tracer.Store(&t)
	}
	return l
}

// SetName labels the lock in trace events and metrics export.
func (l *RWLock) SetName(name string) *RWLock {
	l.lockMu()
	l.name = name
	l.unlockMu()
	return l
}

// Name returns the lock's configured label ("" if unnamed).
func (l *RWLock) Name() string {
	l.lockMu()
	defer l.unlockMu()
	return l.name
}

// SetTracer installs (or, with nil, removes) a Tracer. The reader and
// writer classes appear as the pseudo-entities trace.EntityReaders and
// trace.EntityWriters — the class is the schedulable entity in an RW-SCL.
// Release events carry the writer's hold, or for readers the length of
// the just-ended busy interval (the union of overlapping reads) when the
// last reader leaves; slice-end events fire at phase switches with the
// outgoing phase's length. While a Tracer is installed the in-slice fast
// path is disabled, so every operation is traced.
func (l *RWLock) SetTracer(t Tracer) {
	l.lockMu()
	now := monotime()
	l.rStart = now
	l.wStart = now
	l.phaseStart = now
	if t == nil {
		l.tracer.Store(nil)
	} else {
		l.tracer.Store(&t)
	}
	l.unlockMu()
}

func (l *RWLock) loadTracer() Tracer {
	if p := l.tracer.Load(); p != nil {
		return *p
	}
	return nil
}

// event assembles a trace.Event for this lock. l.mu held.
func (l *RWLock) event(kind trace.Kind, now time.Duration, entity int64, detail time.Duration) trace.Event {
	return trace.Event{At: now, Kind: kind, Lock: l.name, Entity: entity, Detail: detail}
}

// charge advances the usage integrals: the interval since the previous
// operation is credited under the holder state w (the word observed by
// this operation). Safe without mu — lastAt hands each interval to exactly
// one charger.
func (l *RWLock) charge(w uint64, now time.Duration) {
	dt := now - time.Duration(l.lastAt.Swap(int64(now)))
	if dt <= 0 {
		return
	}
	if n := w & rwCount; n != 0 {
		l.readerHold.Add(int64(n) * int64(dt))
	}
	if w&rwWActive != 0 {
		l.writerHold.Add(int64(dt))
	} else if w&rwCount == 0 {
		l.idleTotal.Add(int64(dt))
	}
}

// mutateWord applies f to the state word with a CAS loop that tolerates
// concurrent fast-path CASes. l.mu held. Returns the installed word.
func (l *RWLock) mutateWord(f func(uint64) uint64) uint64 {
	for {
		old := l.word.Load()
		new := f(old)
		// The load→CAS window where a concurrent fast-path CAS may land —
		// the interleaving the deterministic checker reorders.
		check.Point("rw.word.mutate")
		if old == new || l.word.CompareAndSwap(old, new) {
			return new
		}
	}
}

// fastRLock is the read-slice fast path: one CAS bumping the reader count,
// no mutex. Eligible only while the read slice is active with no writer
// holding and nobody queued, and no tracer installed.
func (l *RWLock) fastRLock(now time.Duration) bool {
	for {
		w := l.word.Load()
		if w&(rwWActive|rwPhaseWrite|rwWaiters) != 0 || l.tracer.Load() != nil {
			return false
		}
		check.Point("rw.fast.rlock")
		if l.word.CompareAndSwap(w, w+1) {
			l.charge(w, now)
			l.lastFast.Store(int64(now))
			l.readerOps.Add(1)
			return true
		}
	}
}

// fastRUnlock mirrors fastRLock for release: allowed only while nobody is
// queued (a queued writer needs the slow path's drain-and-grant).
func (l *RWLock) fastRUnlock(now time.Duration) bool {
	for {
		w := l.word.Load()
		if w&rwWaiters != 0 || w&rwCount == 0 || l.tracer.Load() != nil {
			return false
		}
		check.Point("rw.fast.runlock")
		if l.word.CompareAndSwap(w, w-1) {
			l.charge(w, now)
			l.lastFast.Store(int64(now))
			return true
		}
	}
}

// fastWLock is the write-slice fast path for a lone writer: eligible only
// when the word shows exactly "write slice, idle, nobody queued".
func (l *RWLock) fastWLock(now time.Duration) bool {
	for {
		w := l.word.Load()
		if w != rwPhaseWrite || l.tracer.Load() != nil {
			return false
		}
		check.Point("rw.fast.wlock")
		if l.word.CompareAndSwap(w, w|rwWActive) {
			l.charge(w, now)
			l.lastFast.Store(int64(now))
			l.writerOps.Add(1)
			return true
		}
	}
}

// fastWUnlock mirrors fastWLock for release.
func (l *RWLock) fastWUnlock(now time.Duration) bool {
	for {
		w := l.word.Load()
		if w != rwPhaseWrite|rwWActive || l.tracer.Load() != nil {
			return false
		}
		check.Point("rw.fast.wunlock")
		if l.word.CompareAndSwap(w, rwPhaseWrite) {
			l.charge(w, now)
			l.lastFast.Store(int64(now))
			return true
		}
	}
}

// RLock acquires the lock shared. During a write slice it blocks until
// the read slice begins and the writer drains.
func (l *RWLock) RLock() {
	if l.fastRLock(monotime()) {
		return
	}
	if ch, _ := l.rlockSlow(); ch != nil {
		if !check.WaitChan("rw.rwait", ch) {
			<-ch // granted: reader count already bumped by the granter
		}
	}
}

// RLockContext acquires the lock shared, like RLock, but gives up when
// ctx is cancelled: it returns ctx.Err() and the lock is NOT held. A
// waiter that abandons detaches from the queue; a grant that raced with
// the cancellation is released immediately, so class accounting stays
// consistent either way. An already-cancelled ctx returns without
// blocking.
func (l *RWLock) RLockContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l.fastRLock(monotime()) {
		return nil
	}
	ch, since := l.rlockSlow()
	if ch == nil {
		return nil
	}
	if ok, handled := check.WaitChanOrDone("rw.rwait", ch, ctx.Done()); handled {
		if ok {
			return nil
		}
		l.abandonWaiter(&l.waitR, ch, trace.EntityReaders, since)
		return ctx.Err()
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		l.abandonWaiter(&l.waitR, ch, trace.EntityReaders, since)
		return ctx.Err()
	}
}

// rlockSlow runs the shared acquire under l.mu: either inline (nil
// channel) or queued (the grant channel, plus the enqueue time).
func (l *RWLock) rlockSlow() (chan struct{}, time.Duration) {
	check.Point("rw.rlock.slow")
	l.lockMu()
	now := monotime()
	l.advanceLocked(now)
	w := l.word.Load()
	if l.ctrl.Phase() == core.PhaseRead && w&rwWActive == 0 {
		l.classEntered(now)
		l.charge(w, now)
		if w&rwCount == 0 {
			l.rStart = now
		}
		l.mutateWord(func(x uint64) uint64 { return x + 1 })
		l.readerOps.Add(1)
		if t := l.loadTracer(); t != nil {
			t.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityReaders, 0))
		}
		l.unlockMu()
		return nil, now
	}
	ch := make(chan struct{}, 1)
	l.waitR = append(l.waitR, rwWaiter{ch: ch, since: now})
	l.mutateWord(func(x uint64) uint64 { return x | rwWaiters })
	l.armPhaseTimer()
	l.unlockMu()
	return ch, now
}

// RUnlock releases a shared hold.
func (l *RWLock) RUnlock() {
	now := monotime()
	if l.fastRUnlock(now) {
		return
	}
	check.Point("rw.runlock.slow")
	l.lockMu()
	now = monotime()
	w := l.word.Load()
	if w&rwCount == 0 {
		l.unlockMu()
		panic("scl: RUnlock without RLock")
	}
	l.charge(w, now)
	w = l.mutateWord(func(x uint64) uint64 { return x - 1 })
	if t := l.loadTracer(); t != nil {
		var busy time.Duration
		if w&rwCount == 0 {
			busy = now - l.rStart // the union of the overlapping reads
		}
		t.OnRelease(l.event(trace.KindRelease, now, trace.EntityReaders, busy))
	}
	l.advanceLocked(now)
	l.unlockMu()
}

// WLock acquires the lock exclusive. During a read slice it blocks until
// the write slice begins and readers drain. Multiple writers contend
// within the write slice, so a second writer can use the slice while the
// first runs non-critical code (paper Figure 12b).
func (l *RWLock) WLock() {
	if l.fastWLock(monotime()) {
		return
	}
	if ch, _ := l.wlockSlow(); ch != nil {
		if !check.WaitChan("rw.wwait", ch) {
			<-ch // granted: writer-active already set by the granter
		}
	}
}

// WLockContext acquires the lock exclusive, like WLock, but gives up when
// ctx is cancelled: it returns ctx.Err() and the lock is NOT held. See
// RLockContext for the abandonment semantics.
func (l *RWLock) WLockContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l.fastWLock(monotime()) {
		return nil
	}
	ch, since := l.wlockSlow()
	if ch == nil {
		return nil
	}
	if ok, handled := check.WaitChanOrDone("rw.wwait", ch, ctx.Done()); handled {
		if ok {
			return nil
		}
		l.abandonWaiter(&l.waitW, ch, trace.EntityWriters, since)
		return ctx.Err()
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		l.abandonWaiter(&l.waitW, ch, trace.EntityWriters, since)
		return ctx.Err()
	}
}

// wlockSlow runs the exclusive acquire under l.mu: either inline (nil
// channel) or queued (the grant channel, plus the enqueue time).
func (l *RWLock) wlockSlow() (chan struct{}, time.Duration) {
	check.Point("rw.wlock.slow")
	l.lockMu()
	now := monotime()
	l.advanceLocked(now)
	w := l.word.Load()
	if l.ctrl.Phase() == core.PhaseWrite && w&rwWActive == 0 && w&rwCount == 0 {
		l.classEntered(now)
		l.charge(w, now)
		l.mutateWord(func(x uint64) uint64 { return x | rwWActive })
		l.writerOps.Add(1)
		l.wStart = now
		if t := l.loadTracer(); t != nil {
			t.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityWriters, 0))
		}
		l.unlockMu()
		return nil, now
	}
	ch := make(chan struct{}, 1)
	l.waitW = append(l.waitW, rwWaiter{ch: ch, since: now})
	l.mutateWord(func(x uint64) uint64 { return x | rwWaiters })
	l.armPhaseTimer()
	l.unlockMu()
	return ch, now
}

// abandonWaiter resolves a cancelled waiter under l.mu. If the waiter is
// still queued it simply detaches. If the grant raced the cancellation,
// the granter has already removed it from the queue and posted the token
// to its buffered channel (both under l.mu, so the two cases are mutually
// exclusive and stable here); the token is consumed and the just-granted
// hold released immediately, letting advanceLocked re-evaluate the phase
// and wake whoever is eligible — the grant is never lost.
func (l *RWLock) abandonWaiter(queue *[]rwWaiter, ch chan struct{}, entity int64, since time.Duration) {
	check.Point("rw.abandon")
	l.lockMu()
	defer l.unlockMu()
	now := monotime()
	for i, wt := range *queue {
		if wt.ch == ch {
			*queue = append((*queue)[:i], (*queue)[i+1:]...)
			l.syncWaitersBit()
			l.noteAbandonLocked(entity, now, now-since)
			return
		}
	}
	<-ch // guaranteed present: granted before we took l.mu
	w := l.word.Load()
	l.charge(w, now)
	if entity == trace.EntityReaders {
		w = l.mutateWord(func(x uint64) uint64 { return x - 1 })
		if t := l.loadTracer(); t != nil {
			var busy time.Duration
			if w&rwCount == 0 {
				busy = now - l.rStart // the union of the overlapping reads
			}
			t.OnRelease(l.event(trace.KindRelease, now, entity, busy))
		}
	} else {
		l.mutateWord(func(x uint64) uint64 { return x &^ rwWActive })
		if t := l.loadTracer(); t != nil {
			t.OnRelease(l.event(trace.KindRelease, now, entity, now-l.wStart))
		}
	}
	l.noteAbandonLocked(entity, now, now-since)
	l.advanceLocked(now)
}

// noteAbandonLocked lands a cancellation in the class counters and the
// event stream. l.mu held.
func (l *RWLock) noteAbandonLocked(entity int64, now, waited time.Duration) {
	if waited < 0 {
		waited = 0
	}
	if entity == trace.EntityReaders {
		l.readerCancels.Add(1)
	} else {
		l.writerCancels.Add(1)
	}
	if t := l.loadTracer(); t != nil {
		t.OnAbandon(l.event(trace.KindAbandon, now, entity, waited))
	}
}

// WUnlock releases the exclusive hold.
func (l *RWLock) WUnlock() {
	now := monotime()
	if l.fastWUnlock(now) {
		return
	}
	check.Point("rw.wunlock.slow")
	l.lockMu()
	now = monotime()
	w := l.word.Load()
	if w&rwWActive == 0 {
		l.unlockMu()
		panic("scl: WUnlock without WLock")
	}
	l.charge(w, now)
	l.mutateWord(func(x uint64) uint64 { return x &^ rwWActive })
	if t := l.loadTracer(); t != nil {
		t.OnRelease(l.event(trace.KindRelease, now, trace.EntityWriters, now-l.wStart))
	}
	l.advanceLocked(now)
	l.unlockMu()
}

// creditFastActivity replays the slice-clock restarts that fast-path
// operations skipped. On the slow path an operation finding its own
// class's slice expired with nobody opposite restarts the clock
// (RWController.MaybeSwitch); fast operations — which by construction run
// only while nobody is queued — never touch the controller, so before any
// phase decision the clock is advanced by whole slices up to the most
// recent fast operation. The incumbent class then keeps at most the
// remainder of one slice, the same protection the slow path gives, and no
// more: slow-path activity under contention earns no credit, exactly as
// MaybeSwitch refuses a restart while the other class wants the lock.
// l.mu held.
func (l *RWLock) creditFastActivity() {
	sl := l.ctrl.SliceLen(l.ctrl.Phase())
	if sl <= 0 {
		return
	}
	end := l.ctrl.PhaseEnd()
	last := time.Duration(l.lastFast.Load())
	if last < end {
		return
	}
	n := (last-end)/sl + 1
	l.ctrl.RestartPhase(end - sl + n*sl)
}

// advanceLocked updates the slice phase and grants eligible waiters.
// l.mu held.
func (l *RWLock) advanceLocked(now time.Duration) {
	check.Point("rw.advance")
	l.creditFastActivity()
	w := l.word.Load()
	var curWants, otherWants bool
	if l.ctrl.Phase() == core.PhaseRead {
		curWants = w&rwCount != 0 || len(l.waitR) > 0
		otherWants = len(l.waitW) > 0 || w&rwWActive != 0
	} else {
		curWants = w&rwWActive != 0 || len(l.waitW) > 0
		otherWants = len(l.waitR) > 0 || w&rwCount != 0
	}
	before := l.ctrl.Phase()
	if l.ctrl.MaybeSwitch(now, curWants, otherWants) != before {
		l.phaseFresh = true
		if t := l.loadTracer(); t != nil {
			out := trace.EntityReaders
			if before == core.PhaseWrite {
				out = trace.EntityWriters
			}
			t.OnSliceEnd(l.event(trace.KindSliceEnd, now, out, now-l.phaseStart))
		}
		l.phaseStart = now
		l.mutateWord(func(x uint64) uint64 {
			if l.ctrl.Phase() == core.PhaseWrite {
				return x | rwPhaseWrite
			}
			return x &^ rwPhaseWrite
		})
	}
	l.grantLocked(now)
	l.armPhaseTimer()
	l.maybeReleaseQueues(now)
}

// maybeReleaseQueues bounds waiter-slab memory under WithInactiveGC: an
// RW-SCL has no per-entity state to reap (the class is the schedulable
// entity), so the GC analogue is returning the waiter queues' grown
// backing arrays to the allocator once both queues have sat empty past
// the threshold — a contention burst no longer pins its high-water-mark
// capacity forever. l.mu held.
func (l *RWLock) maybeReleaseQueues(now time.Duration) {
	if l.inactive <= 0 {
		return
	}
	if len(l.waitR) != 0 || len(l.waitW) != 0 {
		l.emptySince = -1
		return
	}
	if cap(l.waitR)+cap(l.waitW) <= rwQueueKeep {
		return
	}
	if l.emptySince < 0 {
		l.emptySince = now
		return
	}
	if now-l.emptySince >= l.inactive {
		l.waitR = nil
		l.waitW = nil
		l.emptySince = -1
	}
}

// classEntered restarts the slice clock on the first acquisition of a
// fresh slice, so drain time is not charged to the incoming class.
// l.mu held.
func (l *RWLock) classEntered(now time.Duration) {
	if l.phaseFresh {
		l.ctrl.RestartPhase(now)
		l.phaseFresh = false
	}
}

// grantLocked admits waiters permitted by the current phase, then
// reconciles the waiters bit. l.mu held.
func (l *RWLock) grantLocked(now time.Duration) {
	check.Point("rw.grant")
	defer l.syncWaitersBit()
	w := l.word.Load()
	if l.ctrl.Phase() == core.PhaseRead {
		if w&rwWActive != 0 || len(l.waitR) == 0 {
			return
		}
		l.classEntered(now)
		l.charge(w, now)
		if w&rwCount == 0 {
			l.rStart = now
		}
		t := l.loadTracer()
		for _, wt := range l.waitR {
			l.mutateWord(func(x uint64) uint64 { return x + 1 })
			l.readerOps.Add(1)
			if t != nil {
				t.OnHandoff(l.event(trace.KindHandoff, now, trace.EntityReaders, 0))
				t.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityReaders, now-wt.since))
			}
			wt.ch <- struct{}{}
		}
		l.waitR = l.waitR[:0]
		return
	}
	if w&rwCount != 0 || w&rwWActive != 0 || len(l.waitW) == 0 {
		return
	}
	l.classEntered(now)
	l.charge(w, now)
	wt := l.waitW[0]
	l.waitW = l.waitW[1:]
	l.mutateWord(func(x uint64) uint64 { return x | rwWActive })
	l.writerOps.Add(1)
	l.wStart = now
	if t := l.loadTracer(); t != nil {
		t.OnHandoff(l.event(trace.KindHandoff, now, trace.EntityWriters, 0))
		t.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityWriters, now-wt.since))
	}
	wt.ch <- struct{}{}
}

// syncWaitersBit reconciles the waiters bit with the queues. l.mu held.
func (l *RWLock) syncWaitersBit() {
	empty := len(l.waitR) == 0 && len(l.waitW) == 0
	l.mutateWord(func(x uint64) uint64 {
		if empty {
			return x &^ rwWaiters
		}
		return x | rwWaiters
	})
}

// armPhaseTimer schedules a phase re-evaluation at the current slice's end
// while the opposite class waits. The timer is a single reusable
// time.Timer armed at most once per slice end. l.mu held.
func (l *RWLock) armPhaseTimer() {
	var otherWaits bool
	if l.ctrl.Phase() == core.PhaseRead {
		otherWaits = len(l.waitW) > 0
	} else {
		otherWaits = len(l.waitR) > 0
	}
	if !otherWaits {
		return
	}
	end := l.ctrl.PhaseEnd()
	if l.timerAt == end {
		return // already armed for this slice end
	}
	l.timerAt = end
	delay := end - monotime()
	if delay < 0 {
		delay = 0
	}
	if l.timer == nil {
		l.timer = startLockTimer(delay, l.onPhaseTimer)
		return
	}
	l.timer.Reset(delay)
}

// onPhaseTimer re-evaluates the phase when a slice end passes without a
// lock operation to trigger it.
func (l *RWLock) onPhaseTimer() {
	check.Point("rw.phasetimer")
	l.lockMu()
	defer l.unlockMu()
	l.timerAt = -1 // consumed; the next armPhaseTimer must re-arm
	l.advanceLocked(monotime())
}

// RWStats is a point-in-time view of an RWLock's class usage.
type RWStats struct {
	// ReaderHold is Σ of individual reader hold times (overlapping reads
	// each count).
	ReaderHold time.Duration
	// WriterHold is total exclusive hold time.
	WriterHold time.Duration
	// ReaderOps and WriterOps count acquisitions per class.
	ReaderOps, WriterOps int64
	// ReaderCancels and WriterCancels count abandoned acquisitions per
	// class (RLockContext / WLockContext returning ctx.Err()).
	ReaderCancels, WriterCancels int64
	// Idle is the time the lock was wholly unheld.
	Idle time.Duration
	// Elapsed is the time since the lock was created.
	Elapsed time.Duration
}

// CheckInvariants verifies the lock's internal consistency: readers and
// a writer never hold simultaneously, the state word's waiters bit
// agrees with the wait queues, and the word's phase bit mirrors the
// controller's phase. It is meant for tests — the deterministic checker
// calls it between operations of every explored schedule — and reports
// the first violation found, or nil.
func (l *RWLock) CheckInvariants() error {
	l.lockMu()
	defer l.unlockMu()
	w := l.word.Load()
	if w&rwWActive != 0 && w&rwCount != 0 {
		return fmt.Errorf("scl: writer active with %d readers holding", w&rwCount)
	}
	queued := len(l.waitR) > 0 || len(l.waitW) > 0
	hasBit := w&rwWaiters != 0
	if queued != hasBit {
		return fmt.Errorf("scl: rw waiters bit %v but queues populated %v (waitR=%d waitW=%d)",
			hasBit, queued, len(l.waitR), len(l.waitW))
	}
	phaseWrite := l.ctrl.Phase() == core.PhaseWrite
	bitWrite := w&rwPhaseWrite != 0
	if phaseWrite != bitWrite {
		return fmt.Errorf("scl: phase bit says write=%v, controller says write=%v", bitWrite, phaseWrite)
	}
	return nil
}

// Stats returns a snapshot of class usage.
func (l *RWLock) Stats() RWStats {
	l.lockMu()
	defer l.unlockMu()
	now := monotime()
	l.charge(l.word.Load(), now)
	// Like Mutex.Stats, snapshots give the lazy idle-memory release a
	// chance to run even when the lock has gone quiet.
	l.maybeReleaseQueues(now)
	return RWStats{
		ReaderHold:    time.Duration(l.readerHold.Load()),
		WriterHold:    time.Duration(l.writerHold.Load()),
		ReaderOps:     l.readerOps.Load(),
		WriterOps:     l.writerOps.Load(),
		ReaderCancels: l.readerCancels.Load(),
		WriterCancels: l.writerCancels.Load(),
		Idle:          time.Duration(l.idleTotal.Load()),
		Elapsed:       now - l.createdAt,
	}
}
