package scl

import (
	"sync"
	"time"

	"scl/internal/core"
	"scl/trace"
)

// RWLock is a Reader-Writer Scheduler-Cooperative Lock (the paper's
// RW-SCL). Threads are classified by the work they do — readers versus
// writers — and the two classes receive alternating lock slices whose
// lengths are proportional to the configured class weights. Unlike
// reader-preference or writer-preference locks, neither class can starve
// the other: a 9:1 configuration gives readers 90% of the lock opportunity
// and writers 10%, whatever the arrival pattern (paper §4.5, Figure 11).
//
// There is no per-thread accounting (and hence no Handle): the class is
// the schedulable entity, exactly as in the paper.
type RWLock struct {
	mu   sync.Mutex
	ctrl *core.RWController

	name   string
	tracer Tracer

	readers      int
	writerActive bool

	waitR []rwWaiter
	waitW []rwWaiter

	// One reusable timer drives phase-end re-evaluation; re-arming per
	// operation would spawn a goroutine per firing (time.AfterFunc), which
	// dominates runtime under load.
	timer      *time.Timer
	timerAt    time.Duration // absolute arm target; avoids redundant resets
	phaseFresh bool          // no acquisition has landed yet in this slice

	// usage integrals: Σ individual holds = ∫ holders(t) dt per class.
	lastChange time.Duration
	readerHold time.Duration
	writerHold time.Duration
	readerOps  int64
	writerOps  int64
	idleTotal  time.Duration
	createdAt  time.Duration

	// tracing state: start of the current reader busy interval / writer
	// hold / slice phase, for event details.
	rStart     time.Duration
	wStart     time.Duration
	phaseStart time.Duration
}

// rwWaiter is one queued RLock or WLock call.
type rwWaiter struct {
	ch    chan struct{}
	since time.Duration
}

// NewRWLock creates an RW-SCL with the given class weights (e.g. 9 and 1)
// and slice period (0 = the 2ms default, split between the classes in
// weight proportion).
func NewRWLock(readWeight, writeWeight int64, period time.Duration) *RWLock {
	now := monotime()
	return &RWLock{
		ctrl: core.NewRWController(core.RWParams{
			Period:      period,
			ReadWeight:  readWeight,
			WriteWeight: writeWeight,
		}),
		lastChange: now,
		createdAt:  now,
		phaseStart: now,
	}
}

// SetName labels the lock in trace events and metrics export.
func (l *RWLock) SetName(name string) *RWLock {
	l.mu.Lock()
	l.name = name
	l.mu.Unlock()
	return l
}

// Name returns the lock's configured label ("" if unnamed).
func (l *RWLock) Name() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.name
}

// SetTracer installs (or, with nil, removes) a Tracer. The reader and
// writer classes appear as the pseudo-entities trace.EntityReaders and
// trace.EntityWriters — the class is the schedulable entity in an RW-SCL.
// Release events carry the writer's hold, or for readers the length of
// the just-ended busy interval (the union of overlapping reads) when the
// last reader leaves; slice-end events fire at phase switches with the
// outgoing phase's length.
func (l *RWLock) SetTracer(t Tracer) {
	l.mu.Lock()
	l.tracer = t
	l.mu.Unlock()
}

// event assembles a trace.Event for this lock. l.mu held.
func (l *RWLock) event(kind trace.Kind, now time.Duration, entity int64, detail time.Duration) trace.Event {
	return trace.Event{At: now, Kind: kind, Lock: l.name, Entity: entity, Detail: detail}
}

// settle advances the usage integrals to now. l.mu held.
func (l *RWLock) settle(now time.Duration) {
	dt := now - l.lastChange
	if dt > 0 {
		l.readerHold += time.Duration(l.readers) * dt
		if l.writerActive {
			l.writerHold += dt
		}
		if l.readers == 0 && !l.writerActive {
			l.idleTotal += dt
		}
	}
	l.lastChange = now
}

// RLock acquires the lock shared. During a write slice it blocks until
// the read slice begins and the writer drains.
func (l *RWLock) RLock() {
	l.mu.Lock()
	now := monotime()
	l.advanceLocked(now)
	if l.ctrl.Phase() == core.PhaseRead && !l.writerActive {
		l.classEntered(now)
		l.settle(now)
		if l.readers == 0 {
			l.rStart = now
		}
		l.readers++
		l.readerOps++
		if l.tracer != nil {
			l.tracer.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityReaders, 0))
		}
		l.mu.Unlock()
		return
	}
	ch := make(chan struct{}, 1)
	l.waitR = append(l.waitR, rwWaiter{ch: ch, since: now})
	l.armPhaseTimer()
	l.mu.Unlock()
	<-ch // granted: reader count already bumped by the granter
}

// RUnlock releases a shared hold.
func (l *RWLock) RUnlock() {
	l.mu.Lock()
	now := monotime()
	l.settle(now)
	l.readers--
	if l.readers < 0 {
		l.mu.Unlock()
		panic("scl: RUnlock without RLock")
	}
	if l.tracer != nil {
		var busy time.Duration
		if l.readers == 0 {
			busy = now - l.rStart // the union of the overlapping reads
		}
		l.tracer.OnRelease(l.event(trace.KindRelease, now, trace.EntityReaders, busy))
	}
	l.advanceLocked(now)
	l.mu.Unlock()
}

// WLock acquires the lock exclusive. During a read slice it blocks until
// the write slice begins and readers drain. Multiple writers contend
// within the write slice, so a second writer can use the slice while the
// first runs non-critical code (paper Figure 12b).
func (l *RWLock) WLock() {
	l.mu.Lock()
	now := monotime()
	l.advanceLocked(now)
	if l.ctrl.Phase() == core.PhaseWrite && !l.writerActive && l.readers == 0 {
		l.classEntered(now)
		l.settle(now)
		l.writerActive = true
		l.writerOps++
		l.wStart = now
		if l.tracer != nil {
			l.tracer.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityWriters, 0))
		}
		l.mu.Unlock()
		return
	}
	ch := make(chan struct{}, 1)
	l.waitW = append(l.waitW, rwWaiter{ch: ch, since: now})
	l.armPhaseTimer()
	l.mu.Unlock()
	<-ch // granted: writerActive already set by the granter
}

// WUnlock releases the exclusive hold.
func (l *RWLock) WUnlock() {
	l.mu.Lock()
	now := monotime()
	if !l.writerActive {
		l.mu.Unlock()
		panic("scl: WUnlock without WLock")
	}
	l.settle(now)
	l.writerActive = false
	if l.tracer != nil {
		l.tracer.OnRelease(l.event(trace.KindRelease, now, trace.EntityWriters, now-l.wStart))
	}
	l.advanceLocked(now)
	l.mu.Unlock()
}

// advanceLocked updates the slice phase and grants eligible waiters.
// l.mu held.
func (l *RWLock) advanceLocked(now time.Duration) {
	var curWants, otherWants bool
	if l.ctrl.Phase() == core.PhaseRead {
		curWants = l.readers > 0 || len(l.waitR) > 0
		otherWants = len(l.waitW) > 0 || l.writerActive
	} else {
		curWants = l.writerActive || len(l.waitW) > 0
		otherWants = len(l.waitR) > 0 || l.readers > 0
	}
	before := l.ctrl.Phase()
	if l.ctrl.MaybeSwitch(now, curWants, otherWants) != before {
		l.phaseFresh = true
		if l.tracer != nil {
			out := trace.EntityReaders
			if before == core.PhaseWrite {
				out = trace.EntityWriters
			}
			l.tracer.OnSliceEnd(l.event(trace.KindSliceEnd, now, out, now-l.phaseStart))
		}
		l.phaseStart = now
	}
	l.grantLocked(now)
	l.armPhaseTimer()
}

// classEntered restarts the slice clock on the first acquisition of a
// fresh slice, so drain time is not charged to the incoming class.
// l.mu held.
func (l *RWLock) classEntered(now time.Duration) {
	if l.phaseFresh {
		l.ctrl.RestartPhase(now)
		l.phaseFresh = false
	}
}

// grantLocked admits waiters permitted by the current phase. l.mu held.
func (l *RWLock) grantLocked(now time.Duration) {
	if l.ctrl.Phase() == core.PhaseRead {
		if l.writerActive || len(l.waitR) == 0 {
			return
		}
		l.classEntered(now)
		l.settle(now)
		if l.readers == 0 {
			l.rStart = now
		}
		for _, w := range l.waitR {
			l.readers++
			l.readerOps++
			if l.tracer != nil {
				l.tracer.OnHandoff(l.event(trace.KindHandoff, now, trace.EntityReaders, 0))
				l.tracer.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityReaders, now-w.since))
			}
			w.ch <- struct{}{}
		}
		l.waitR = l.waitR[:0]
		return
	}
	if l.readers > 0 || l.writerActive || len(l.waitW) == 0 {
		return
	}
	l.classEntered(now)
	l.settle(now)
	w := l.waitW[0]
	l.waitW = l.waitW[1:]
	l.writerActive = true
	l.writerOps++
	l.wStart = now
	if l.tracer != nil {
		l.tracer.OnHandoff(l.event(trace.KindHandoff, now, trace.EntityWriters, 0))
		l.tracer.OnAcquire(l.event(trace.KindAcquire, now, trace.EntityWriters, now-w.since))
	}
	w.ch <- struct{}{}
}

// armPhaseTimer schedules a phase re-evaluation at the current slice's end
// while the opposite class waits. The timer is a single reusable
// time.Timer armed at most once per slice end. l.mu held.
func (l *RWLock) armPhaseTimer() {
	var otherWaits bool
	if l.ctrl.Phase() == core.PhaseRead {
		otherWaits = len(l.waitW) > 0
	} else {
		otherWaits = len(l.waitR) > 0
	}
	if !otherWaits {
		return
	}
	end := l.ctrl.PhaseEnd()
	if l.timerAt == end {
		return // already armed for this slice end
	}
	l.timerAt = end
	delay := end - monotime()
	if delay < 0 {
		delay = 0
	}
	if l.timer == nil {
		l.timer = time.AfterFunc(delay, l.onPhaseTimer)
		return
	}
	l.timer.Reset(delay)
}

// onPhaseTimer re-evaluates the phase when a slice end passes without a
// lock operation to trigger it.
func (l *RWLock) onPhaseTimer() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.timerAt = -1 // consumed; the next armPhaseTimer must re-arm
	l.advanceLocked(monotime())
}

// RWStats is a point-in-time view of an RWLock's class usage.
type RWStats struct {
	// ReaderHold is Σ of individual reader hold times (overlapping reads
	// each count).
	ReaderHold time.Duration
	// WriterHold is total exclusive hold time.
	WriterHold time.Duration
	// ReaderOps and WriterOps count acquisitions per class.
	ReaderOps, WriterOps int64
	// Idle is the time the lock was wholly unheld.
	Idle time.Duration
	// Elapsed is the time since the lock was created.
	Elapsed time.Duration
}

// Stats returns a snapshot of class usage.
func (l *RWLock) Stats() RWStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := monotime()
	l.settle(now)
	return RWStats{
		ReaderHold: l.readerHold,
		WriterHold: l.writerHold,
		ReaderOps:  l.readerOps,
		WriterOps:  l.writerOps,
		Idle:       l.idleTotal,
		Elapsed:    now - l.createdAt,
	}
}
