// Package scl implements Scheduler-Cooperative Locks (SCLs) for Go,
// reproducing the locking primitives of "Avoiding Scheduler Subversion
// using Scheduler-Cooperative Locks" (Patel et al., EuroSys 2020).
//
// Classic locks let whoever holds the lock longest dominate the CPU: lock
// usage, not the scheduler, decides who runs (the paper's "scheduler
// subversion" problem). SCLs fix this by accounting lock usage per
// schedulable entity and giving every entity a proportional time window of
// lock opportunity:
//
//   - Mutex is a u-SCL: a mutual-exclusion lock with per-entity usage
//     accounting, lock slices (an owner may re-acquire freely within its
//     slice), and penalties that ban over-users until the other entities
//     have had their proportional opportunity.
//   - RWLock is an RW-SCL: a reader-writer lock whose read and write
//     slices alternate with lengths proportional to configured class
//     weights, so neither readers nor writers can starve the other side.
//   - TicketLock, SpinLock and BargingMutex are the traditional baselines
//     the paper compares against.
//
// Entities are explicit: each goroutine (or connection, tenant, work
// class — any schedulable entity) calls Register on a Mutex to obtain a
// Handle and locks through it. This mirrors the paper's per-thread state
// (allocated via pthread keys in the original C implementation); Go has no
// per-goroutine storage, so registration is explicit.
//
// Weights use the Linux CFS nice-to-weight table, so lock-opportunity
// shares line up with CPU shares under a proportional-share scheduler.
//
// # Observability
//
// Every lock can report and stream what it is doing:
//
//   - Mutex.Stats returns a StatsSnapshot: per-entity acquisitions, hold
//     time, lock opportunity time, bans, ban time, handoffs, and hold/wait
//     distributions, plus lock-level idle time, Jain fairness indices,
//     the registered-entity count and inactive-entity reap counters.
//   - The Tracer interface (Options.Tracer, Mutex.SetTracer,
//     RWLock.SetTracer) receives a structured trace.Event for every
//     acquisition, release, slice end, ban, handoff, abandonment and
//     inactive-entity reap. Package scl/trace provides a lock-free bounded
//     ring buffer that satisfies Tracer, plus JSONL serialization and
//     offline aggregation.
//   - Package scl/export turns any set of locks and rings into continuous
//     metrics: a Prometheus text-exposition endpoint, expvar publication,
//     and the JSON snapshot that cmd/scltop renders live.
//
// Tracing is strictly opt-in: with a nil Tracer the only cost on the lock
// paths is a nil check.
//
// # Cancellation
//
// Lock, RLock and WLock block until the lock is acquired, however long the
// current slice owner or a pending penalty makes that. Handle.LockContext,
// RWLock.RLockContext and RWLock.WLockContext bound the wait with a
// context: when ctx is cancelled the call returns ctx.Err() and the lock
// is NOT held. The guarantees:
//
//   - An already-cancelled ctx returns immediately, even when the lock is
//     free — the acquisition is never attempted.
//   - Cancellation interrupts both waiting phases: the ban sleep (the
//     paper's penalty, imposed at acquire) and the waiter queue.
//   - An abandoning waiter detaches cleanly. Its queue slot is removed; if
//     an ownership grant raced with the cancellation, the grant is
//     re-routed to the next eligible waiter rather than lost, so the lock
//     keeps making progress.
//   - Abandonment leaves the accounting books exactly as if the entity had
//     never queued: no usage is charged, no ban is drawn, slice ownership
//     and join credit are untouched. Bans the entity already owed remain
//     owed — walking away from the wait does not pay down the penalty.
//
// Every abandonment is observable: it increments the per-entity Cancels
// counter in StatsSnapshot (per-class ReaderCancels/WriterCancels in
// RWStats), emits a trace.KindAbandon event to the Tracer, and is exported
// by scl/export as scl_entity_cancels_total / scl_rwlock_cancels_total.
// See examples/deadline for per-request lock deadlines.
//
// # The slice-owner fast path
//
// The point of a lock slice (paper §4.2, Figure 3) is that re-acquisition
// by the owner is nearly free: in the paper's Figure 3, steps 4–6, the
// owner re-acquires with a single atomic instruction while everyone else
// waits for the slice boundary. This implementation realizes that with a
// packed 64-bit state word on Mutex:
//
//	bit 63  held      — the lock is held
//	bit 62  transfer  — an ownership grant to a waiter is in flight
//	bit 61  waiters   — the waiter queue is non-empty
//	bit 60  stale     — the slice expired; the fast path stands down
//	bits 0–59         — slice-owner entity id + 1 (0 = no owner)
//
// While the word names the caller's entity as the live slice owner, Lock
// and Unlock are one compare-and-swap each — no internal mutex, no clock
// read. Accounting is deferred, as in the paper: a per-slice operation
// counter plus the wall-clock window of the fast regime are folded into
// the accounting engine (core.Accountant.FoldSliceUsage) and the stats at
// slice boundaries, handoffs, and Stats snapshots. During its slice the
// owner is charged the slice's wall-clock window — the lock opportunity
// it denies everyone else. Slice expiry is enforced by the slice timer,
// which sets the stale bit so the owner's next operation takes the slow
// path and runs the boundary (transfer, penalty, events). Mapping to the
// paper's Figure 3:
//
//   - steps 1–3 (first acquisition, slice start) — Mutex.Lock slow path,
//     startSlice mirrors ownership into the state word;
//   - steps 4–6 (owner re-acquires within the slice) — fastLock and
//     fastUnlock, one CAS each;
//   - step 7 (slice expires) — onSliceTimer stale-marks the word, or the
//     overrunning release observes the expiry directly;
//   - steps 8–9 (transfer to the next waiter, penalty for the over-user) —
//     transferLocked and Accountant.OnRelease, unchanged slow path.
//
// RWLock packs the analogous coordination word — {writer-active, phase,
// waiters, flip epoch} — but keeps the reader count out of it: readers
// during an uncontested read slice publish on a BRAVO-style distributed
// read indicator (cache-line-padded per-shard counters, shard picked per
// goroutine) and revalidate the word, so the read fast path touches no
// shared cache line and reader throughput stays flat as readers are
// added. Writers sweep the shards at each phase flip and are admitted
// only on an exact-zero sum; the fast paths are clock-free, with usage
// charged regime-granularly by the next slow-path operation (DESIGN.md
// §3.6). A k-SCL (Slice ≤ 0) has no slices and therefore no fast path.
//
// # Paper-to-code map
//
// The SCL mechanism of paper §4 lives, clock-independent and shared with
// the simulator, in internal/core:
//
//   - §4.1 "Lock usage accounting" — core.Accountant. Register assigns the
//     per-entity weight; OnAcquire/OnRelease charge critical-section time
//     to the holder (Usage, GrandUsage); rescale keeps totals bounded.
//     The real-lock wall-clock bookkeeping around it (idle time, holder
//     overlap, distributions) is lockStats in stats.go.
//   - §4.2 "Lock slices" — Accountant.StartSlice, SliceOwner, SliceExpired,
//     SliceEnd. The owner's one-CAS re-acquisition inside its slice is
//     Mutex.fastLock/fastUnlock on the packed state word (see "The
//     slice-owner fast path" above), with deferred usage batched through
//     Accountant.FoldSliceUsage; the slice-expiry timer wakeup is
//     Mutex.onSliceTimer.
//   - §4.2 "Penalties" — Accountant.penalty computes the ban from the
//     entity's usage beyond its proportional share; OnRelease returns it in
//     Release.Penalty, BannedUntil/Banned enforce it, and Mutex.Lock sleeps
//     it out before queueing.
//   - §4.3 "Waiting and handoff" — the waiter queue, spin-then-park
//     (waiter.await), next-owner prefetch (Mutex.promoteHead) and slice
//     transfer (Mutex.transferLocked, Mutex.handoff) in mutex.go.
//   - §5 RW-SCL — core.RWController (internal/core/rw.go) owns the
//     read/write phase machine and weighted slice lengths; RWLock
//     (rwlock.go) adds the real waiters and class accounting.
//   - §6 "Schedulable entities beyond threads" — Handle.Sibling binds
//     several goroutines to one accounted entity; the group keeps its
//     slice busy via the intra-class handoff in Mutex.takeClassWaiter
//     (work conservation within an entity).
//
// The k-SCL variant used for kernel-style locks is a Mutex with
// Options{Slice: -1} (every release is a slice boundary) and an
// InactiveTimeout for entity garbage collection.
//
// # Entity lifecycle and the inactive-entity GC
//
// An entity's accounting state lives from Register to Handle.Close. For
// long-lived entities (worker pools, tenants) that is the whole story:
// Close settles the books and removes the entity's weight, so survivors'
// proportional shares grow immediately. Close during an operation in
// flight — the entity holding the lock, parked in the waiter queue, or
// inside a lock-free fast-path hold — defers the removal to the end of
// that operation, which converges to the same books (no stale weight, no
// lost grant; a departing slice owner's queued peers are granted the lock
// at once).
//
// Workloads that register an entity per short-lived actor — a goroutine
// per request, a connection per client — cannot rely on Close discipline
// alone: the paper's kernel k-SCL faces the same problem with threads
// that exit without unregistering, and reclaims per-thread state idle
// longer than one second (§4.4). WithInactiveGC is that mechanism with a
// configurable threshold: entities idle past it are reaped — removed
// from the accounting, their sibling refcount and per-entity stats
// dropped — so registered-entity count and memory stay proportional to
// the active set, not to every entity ever seen. Differences from the
// kernel, deliberate in a library:
//
//   - The reaper is lazy: it piggybacks on slice boundaries, the slice
//     timer and Stats snapshots, rate-limited to once per quarter
//     threshold. There is no background goroutine, and a lock whose
//     entities all close cleanly never scans at all.
//   - Holders, the live slice owner, queued waiters and banned entities
//     are never reaped — reaping a banned entity would launder its
//     penalty into a fresh registration.
//   - A reaped entity's Handle keeps working: the next acquisition
//     re-registers it through the join-credit floor (Options.JoinCredit),
//     exactly like a latecomer, so expiry cannot be farmed for an
//     accounting advantage.
//
// Each reap emits trace.KindReap to the Tracer (Tracer.OnReap), counts in
// StatsSnapshot.Reaped/ReapedHold and scl_entities_reaped_total, and the
// live count is StatsSnapshot.Registered, Mutex.Entities and
// scl_entities_registered. See examples/churn for the
// goroutine-per-request pattern.
//
// # Lock tables
//
// Manager scales the same discipline to a keyed namespace — a lock per
// key, lazily materialized in a striped table, with Tenant as the
// accounted identity instead of Handle. A tenant holds one accounting
// identity per stripe shared across every key it touches, so usage it
// sprays over many keys is booked together: per-key fairness comes from
// each key's own SCL, table-level fairness from per-stripe tenant books
// charged at Grant.Unlock, whose bans stack across concurrent holds and
// are slept out at the tenant's next acquire on that stripe.
//
// Key and tenant lifetimes follow the GC story above, at both levels:
//
//   - A key's lock lives from first use until reaped. ManagerOptions
//     .LockIdle (WithLockGC) dismantles key locks idle past the
//     threshold; the next use re-materializes the key with fresh
//     per-key accounting but unchanged stripe books — reaping a lock
//     never launders a tenant's table-level usage. Keys() and
//     ManagerStats track the live set, so the table's memory follows
//     the working set rather than the key universe.
//   - A tenant lives from Manager.Tenant to Tenant.Close. Close settles
//     the tenant's books on every stripe once in-flight grants unlock;
//     acquiring through a closed tenant panics, like a closed Handle.
//     For tenants that come and go without Close discipline,
//     TenantIdle (WithTenantGC) reaps idle identities — never ones
//     with grants in flight or unserved bans — and a returning tenant
//     re-registers through the join-credit floor.
//
// See examples/lockserver for the end-to-end pattern (an HTTP KV store
// keyed by request path, tenants from a header) and DESIGN.md §8 for
// the stripe layout and the paper mapping.
package scl
