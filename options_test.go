package scl

import (
	"testing"
	"time"
)

func TestOptionsSliceLen(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want time.Duration
	}{
		{0, DefaultSlice},                    // zero -> paper default 2ms
		{-1, 0},                              // negative -> zero slice (k-SCL)
		{time.Millisecond, time.Millisecond}, // explicit
	}
	for _, c := range cases {
		if got := (Options{Slice: c.in}).sliceLen(); got != c.want {
			t.Errorf("sliceLen(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDefaultSliceIsPapers(t *testing.T) {
	if DefaultSlice != 2*time.Millisecond {
		t.Fatalf("DefaultSlice = %v, want the paper's 2ms", DefaultSlice)
	}
}

func TestMonotimeMonotonic(t *testing.T) {
	a := monotime()
	time.Sleep(time.Millisecond)
	b := monotime()
	if b <= a {
		t.Fatalf("monotime went backwards: %v then %v", a, b)
	}
}

func TestKSCLConfiguration(t *testing.T) {
	// Slice < 0 (k-SCL): every release is a slice boundary, so with a
	// competitor present a hog is banned after every single hold.
	m := NewMutex(Options{Slice: -1, InactiveTimeout: time.Second})
	hog := m.Register()
	peer := m.Register()
	_ = peer // registered, never locks: still counts toward shares (paper §4.3 limitation)
	hog.Lock()
	time.Sleep(20 * time.Millisecond)
	hog.Unlock()
	start := time.Now()
	hog.Lock()
	hog.Unlock()
	if gap := time.Since(start); gap < 10*time.Millisecond {
		t.Fatalf("zero-slice hog re-entered after %v, want ~20ms ban", gap)
	}
}

func TestHandleNameRoundtrip(t *testing.T) {
	m := NewMutex(Options{})
	h := m.Register().SetName("tenant-a")
	if h.Name() != "tenant-a" {
		t.Fatalf("Name = %q", h.Name())
	}
	if h.ID() == 0 {
		t.Fatal("ID is zero")
	}
	if s := h.Sibling(); s.Name() != "tenant-a" || s.ID() != h.ID() {
		t.Fatal("sibling does not inherit identity")
	}
}

func TestFunctionalOptions(t *testing.T) {
	// Functional options compose with (and override) the Options struct.
	m := NewMutex(Options{Name: "struct"}, WithName("functional"), WithInactiveGC(time.Minute))
	if got := m.Name(); got != "functional" {
		t.Errorf("Name = %q, want the WithName override", got)
	}
	if got := m.opts.InactiveTimeout; got != time.Minute {
		t.Errorf("InactiveTimeout = %v, want 1m from WithInactiveGC", got)
	}
	rw := NewRWLock(1, 1, 0, WithName("rw"), WithInactiveGC(time.Second))
	if got := rw.Name(); got != "rw" {
		t.Errorf("RWLock Name = %q, want rw", got)
	}
	if got := rw.inactive; got != time.Second {
		t.Errorf("RWLock inactive = %v, want 1s from WithInactiveGC", got)
	}
}
