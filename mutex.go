package scl

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scl/internal/core"
	"scl/trace"
)

// Mutex is a Scheduler-Cooperative mutual-exclusion lock (the paper's
// u-SCL). Entities register to obtain Handles and lock through them; the
// lock tracks per-entity usage and guarantees each registered entity lock
// opportunity proportional to its weight, regardless of critical-section
// lengths.
//
// Internally it is a K42/MCS-style queue: the head waiter briefly spins
// (next-thread prefetch) while the rest sleep; ownership transfers at lock
// slice boundaries; over-users are banned for the penalty period computed
// by the accounting engine.
type Mutex struct {
	opts   Options
	name   string
	tracer Tracer

	mu       sync.Mutex // guards all fields below
	acct     *core.Accountant
	refs     map[core.ID]int // handles sharing each entity (Sibling)
	held     bool
	transfer bool // grant in flight to the head waiter
	next     *waiter
	parked   []*waiter
	// One reusable timer drives slice-end transfers (an owner that stops
	// acquiring must not strand its waiters); re-arming per operation
	// would spawn a goroutine per firing.
	timer   *time.Timer
	timerAt time.Duration // absolute arm target; avoids redundant resets

	stats lockStats
}

// waiter is one queued Lock call.
type waiter struct {
	h       *Handle
	granted atomic.Bool
	intra   bool          // intra-class handoff: the slice continues
	wake    chan struct{} // buffered(1): at most one pending signal
}

// NewMutex creates a Scheduler-Cooperative mutex.
func NewMutex(opts Options) *Mutex {
	m := &Mutex{
		opts:   opts,
		name:   opts.Name,
		tracer: opts.Tracer,
		refs:   make(map[core.ID]int),
		acct: core.NewAccountant(core.Params{
			Slice:           opts.sliceLen(),
			BanCap:          opts.BanCap,
			InactiveTimeout: opts.InactiveTimeout,
		}),
	}
	m.stats.init()
	return m
}

// Name returns the lock's configured label ("" if unnamed).
func (m *Mutex) Name() string { return m.name }

// SetTracer installs (or, with nil, removes) a Tracer at runtime, e.g. to
// attach a trace.Ring flight recorder to a live lock.
func (m *Mutex) SetTracer(t Tracer) {
	m.mu.Lock()
	m.tracer = t
	m.mu.Unlock()
}

// Handle is one schedulable entity's endpoint on a Mutex. A Handle must
// not be used concurrently with itself (it represents a single thread of
// control), but distinct Handles may be used concurrently. Handle
// implements sync.Locker.
type Handle struct {
	m      *Mutex
	id     core.ID
	weight int64
	name   string
}

var handleIDs atomic.Int64

// Register adds an entity with the reference (nice-0) weight.
func (m *Mutex) Register() *Handle { return m.RegisterWeight(core.ReferenceWeight) }

// RegisterNice adds an entity whose weight derives from a CFS nice value,
// matching the CPU share a proportional-share scheduler would give it.
func (m *Mutex) RegisterNice(nice int) *Handle {
	return m.RegisterWeight(core.NiceToWeight(nice))
}

// RegisterWeight adds an entity with an explicit weight.
func (m *Mutex) RegisterWeight(weight int64) *Handle {
	h := &Handle{m: m, id: core.ID(handleIDs.Add(1)), weight: weight}
	m.mu.Lock()
	m.acct.Register(h.id, weight, monotime())
	m.refs[h.id]++
	m.mu.Unlock()
	return h
}

// Sibling returns a new Handle bound to the same schedulable entity: the
// siblings share lock usage accounting, slices and bans, and so form a
// work-conserving group — while one sibling runs non-critical code,
// another may use the group's lock slice (the paper's §6 class
// generalization: a process, container or tenant with several threads is
// one entity). Each sibling is still a single thread of control.
func (h *Handle) Sibling() *Handle {
	s := &Handle{m: h.m, id: h.id, weight: h.weight, name: h.name}
	h.m.mu.Lock()
	h.m.refs[h.id]++
	h.m.mu.Unlock()
	return s
}

// Close releases the handle; the entity is unregistered when its last
// sibling closes. The Handle must not hold the lock.
func (h *Handle) Close() {
	h.m.mu.Lock()
	h.m.refs[h.id]--
	if h.m.refs[h.id] <= 0 {
		delete(h.m.refs, h.id)
		h.m.acct.Unregister(h.id)
	}
	h.m.mu.Unlock()
}

// SetName attaches a label (used by the stats helpers).
func (h *Handle) SetName(name string) *Handle { h.name = name; return h }

// Name returns the handle's label.
func (h *Handle) Name() string { return h.name }

// Lock acquires the mutex on behalf of the handle's entity. If the entity
// is banned for over-use, Lock first sleeps out the penalty (paper §4.2:
// the penalty is computed at release and imposed at acquire).
func (h *Handle) Lock() {
	m := h.m
	reqAt := time.Duration(-1) // first clock read inside the loop
	for {
		m.mu.Lock()
		now := monotime()
		if reqAt < 0 {
			reqAt = now
		}
		until := m.acct.BannedUntil(h.id)
		if until <= now {
			break // proceed, still holding m.mu
		}
		m.mu.Unlock()
		time.Sleep(until - now)
	}
	// Fast path: we own the live slice, or the lock is wholly free.
	now := monotime()
	if !m.held && !m.transfer && m.fastEligible(h, now) {
		m.acquireLocked(h, now, reqAt)
		m.mu.Unlock()
		return
	}
	// Slow path: queue.
	w := &waiter{h: h, wake: make(chan struct{}, 1)}
	head := m.next == nil
	if head {
		m.next = w
	} else {
		m.parked = append(m.parked, w)
	}
	if head {
		m.armSliceEnd()
	}
	m.mu.Unlock()
	w.await(head)
	// Granted: finalize ownership.
	m.mu.Lock()
	now = monotime()
	m.transfer = false
	if m.next == w {
		m.next = nil
	}
	if !w.intra {
		// A slice transfer; an intra-class handoff keeps the running slice.
		m.acct.StartSlice(h.id, now)
	}
	m.promoteHead()
	m.acquireLocked(h, now, reqAt)
	m.mu.Unlock()
}

// fastEligible reports whether h may take the free lock immediately.
// m.mu held.
func (m *Mutex) fastEligible(h *Handle, now time.Duration) bool {
	owner, ok := m.acct.SliceOwner()
	switch {
	case ok && owner == h.id && !m.acct.SliceExpired(now):
		return true
	case !ok && m.next == nil:
		m.acct.StartSlice(h.id, now)
		return true
	}
	return false
}

// acquireLocked marks h as holder. m.mu held.
func (m *Mutex) acquireLocked(h *Handle, now, reqAt time.Duration) {
	if !m.acct.Registered(h.id) {
		m.acct.Register(h.id, h.weight, now)
	}
	m.held = true
	wait := now - reqAt
	if wait < 0 {
		wait = 0
	}
	m.acct.OnAcquire(h.id, now)
	m.stats.onAcquire(int64(h.id), h.name, now, wait)
	if m.tracer != nil {
		m.tracer.OnAcquire(m.event(trace.KindAcquire, now, h.id, h.name, wait))
	}
}

// await blocks until the waiter is granted. The queue head spins briefly
// (next-thread prefetch) before sleeping; others sleep immediately.
func (w *waiter) await(head bool) {
	if head {
		for i := 0; i < 64; i++ {
			if w.granted.Load() {
				return
			}
			runtime.Gosched()
		}
	}
	for !w.granted.Load() {
		<-w.wake
	}
}

// grant hands ownership to the waiter. m.mu held.
func (w *waiter) grant() {
	w.granted.Store(true)
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// promoteHead moves the head of the parked queue into the next-thread
// slot and wakes it so it starts spinning (paper Figure 3 step 8).
// m.mu held.
func (m *Mutex) promoteHead() {
	if m.next != nil || len(m.parked) == 0 {
		return
	}
	w := m.parked[0]
	m.parked = m.parked[1:]
	m.next = w
	// Wake it out of its sleep so it can spin / observe grants promptly.
	select {
	case w.wake <- struct{}{}:
	default:
	}
	m.armSliceEnd()
}

// Unlock releases the mutex. If the lock slice has expired, ownership
// transfers to the head waiter and the accounting engine may ban this
// entity until others have had their proportional lock opportunity.
func (h *Handle) Unlock() {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.held {
		panic("scl: Unlock of unlocked Mutex")
	}
	now := monotime()
	rel := m.acct.OnRelease(h.id, now)
	m.held = false
	m.stats.onRelease(int64(h.id), now)
	if m.tracer != nil {
		m.tracer.OnRelease(m.event(trace.KindRelease, now, h.id, h.name, rel.Hold))
		if rel.SliceExpired {
			m.tracer.OnSliceEnd(m.event(trace.KindSliceEnd, now, h.id, h.name, rel.SliceUse))
		}
		if rel.Penalty > 0 {
			m.tracer.OnBan(m.event(trace.KindBan, now, h.id, h.name, rel.Penalty))
		}
	}
	if rel.Penalty > 0 {
		m.stats.onBan(int64(h.id), rel.Penalty)
	}
	if m.opts.InactiveTimeout > 0 {
		m.acct.Expire(now)
	}
	if !rel.SliceExpired {
		// Work-conserving groups (paper §6): a queued sibling of the
		// slice-owning entity may take the free lock for the rest of the
		// slice — jumping the queue, since the slice is its entity's to
		// use — instead of letting the lock idle through the releaser's
		// non-critical section.
		if owner, ok := m.acct.SliceOwner(); ok && !m.transfer {
			if w := m.takeClassWaiter(owner); w != nil {
				m.transfer = true
				w.intra = true
				m.handoff(w, now)
				w.grant()
				return
			}
		}
		m.armSliceEnd()
		return
	}
	m.transferLocked(now)
}

// handoff records an ownership grant to w. m.mu held.
func (m *Mutex) handoff(w *waiter, now time.Duration) {
	m.stats.onHandoff(int64(w.h.id))
	if m.tracer != nil {
		m.tracer.OnHandoff(m.event(trace.KindHandoff, now, w.h.id, w.h.name, 0))
	}
}

// takeClassWaiter finds a queued waiter of the given entity, detaching it
// from the parked queue (the next slot is cleared by the grantee).
// m.mu held.
func (m *Mutex) takeClassWaiter(owner core.ID) *waiter {
	if m.next != nil && m.next.h.id == owner {
		return m.next
	}
	for i, w := range m.parked {
		if w.h.id == owner {
			m.parked = append(m.parked[:i], m.parked[i+1:]...)
			return w
		}
	}
	return nil
}

// transferLocked hands the free, slice-expired lock to the head waiter or
// clears the slice. m.mu held.
func (m *Mutex) transferLocked(now time.Duration) {
	if m.transfer {
		return
	}
	if m.next == nil {
		m.acct.ClearSlice()
		return
	}
	m.transfer = true
	m.handoff(m.next, now)
	m.next.grant()
}

// armSliceEnd schedules a transfer for a slice that expires while the
// owner is outside the critical section, so waiters cannot stall behind
// an owner that stopped acquiring. One reusable timer, armed at most once
// per slice end. m.mu held.
func (m *Mutex) armSliceEnd() {
	_, ok := m.acct.SliceOwner()
	if !ok || m.next == nil || m.held || m.transfer {
		return
	}
	end := m.acct.SliceEnd()
	if m.timerAt == end {
		return // already armed for this slice end
	}
	m.timerAt = end
	delay := end - monotime()
	if delay < 0 {
		delay = 0
	}
	if m.timer == nil {
		m.timer = time.AfterFunc(delay, m.onSliceTimer)
		return
	}
	m.timer.Reset(delay)
}

// onSliceTimer transfers ownership when a slice end passes while the lock
// is free and waiters queue. The state checks make a stale firing a no-op.
func (m *Mutex) onSliceTimer() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.timerAt = -1 // consumed; the next armSliceEnd must re-arm
	if m.held || m.transfer || m.next == nil {
		return
	}
	now := monotime()
	owner, ok := m.acct.SliceOwner()
	if !ok || !m.acct.SliceExpired(now) {
		return
	}
	if m.tracer != nil {
		// The slice ran out while the owner sat outside the critical
		// section; no release will report it, so the timer does.
		m.tracer.OnSliceEnd(m.event(trace.KindSliceEnd, now, owner, "", 0))
	}
	m.transferLocked(now)
}

// Stats returns a snapshot of per-entity hold times and the lock's idle
// time, for fairness reporting.
func (m *Mutex) Stats() StatsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats.snapshot(monotime())
}

var _ sync.Locker = (*Handle)(nil)
