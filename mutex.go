package scl

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scl/internal/check"
	"scl/internal/core"
	"scl/trace"
)

// Mutex is a Scheduler-Cooperative mutual-exclusion lock (the paper's
// u-SCL). Entities register to obtain Handles and lock through them; the
// lock tracks per-entity usage and guarantees each registered entity lock
// opportunity proportional to its weight, regardless of critical-section
// lengths.
//
// Internally it is a K42/MCS-style queue: the head waiter briefly spins
// (next-thread prefetch) while the rest sleep; ownership transfers at lock
// slice boundaries; over-users are banned for the penalty period computed
// by the accounting engine.
//
// # The slice-owner fast path
//
// Re-acquisition by the live slice's owner — the hot path the lock slice
// exists for (paper §4.2, Figure 3) — is a single compare-and-swap on a
// packed 64-bit state word {held, transfer-pending, waiters, slice-stale,
// owner}, with no internal mutex and no clock read. Accounting for those
// operations is deferred: an atomic per-slice accumulator (operation
// count) plus the wall-clock fast window are folded into the accounting
// engine and the stats at slice boundaries, ownership handoffs, and
// Stats snapshots. During its slice the owner is charged the slice's
// wall-clock window — the lock opportunity it denies everyone else —
// rather than per-critical-section time, matching the paper's deferred
// slice accounting. Slice expiry is enforced by the slice timer, which
// marks the state word stale so the owner's next operation falls back to
// the slow path and runs the boundary (transfer, penalty, events).
type Mutex struct {
	opts   Options
	name   string
	fastOK bool // slices have nonzero length (k-SCL disables the fast path)

	// tracer is read lock-free on the fast path; SetTracer swaps it
	// atomically (a plain field would race once acquire/release no longer
	// hold mu).
	tracer atomic.Pointer[Tracer]

	// word is the packed fast-path state: {held, transfer, waiters, stale,
	// owner id}. The fast path CASes it without mu; the slow path mutates
	// it under mu with CAS loops that tolerate concurrent fast-path CASes.
	word atomic.Uint64
	// fastOps counts fast-path acquisitions since the last fold.
	fastOps atomic.Int64
	// combine is the lock-free combining stack (Handle.Do): contended Do
	// callers push their critical sections here instead of queueing, and
	// the releasing holder drains a bounded batch (combine.go). Pushes are
	// lock-free; pops happen only under mu.
	combine atomic.Pointer[combineReq]

	// csStart and fastHeld are owned by the current lock holder (ordered
	// across holders by the word CASes): whether the live hold was taken
	// on the fast path, and its traced start time (0 when untraced).
	csStart  time.Duration
	fastHeld bool

	mu        sync.Mutex // guards all fields below
	acct      *core.Accountant
	draining  []*combineReq   // batch a drain is executing outside mu
	refs      map[core.ID]int // handles sharing each entity (Sibling)
	nextReap  time.Duration   // earliest next inactive-entity sweep
	fastSince time.Duration   // start of the open fast window (-1: none)
	next      *waiter
	parked    []*waiter
	// One reusable timer drives slice-end processing (stale-marking a
	// fast-path owner, transferring to waiters, clearing an abandoned
	// slice); re-arming per operation would spawn a goroutine per firing.
	// Behind the lockTimer seam it is a virtual-clock timer under the
	// deterministic checker, a time.AfterFunc timer otherwise.
	timer   lockTimer
	timerAt time.Duration // absolute arm target; avoids redundant resets

	stats lockStats
}

// State-word layout. Owner occupies the low bits as id+1 (0 = no owner).
const (
	wordHeld     = 1 << 63 // the lock is held
	wordTransfer = 1 << 62 // a grant to the head waiter is in flight
	wordWaiters  = 1 << 61 // the waiter queue is non-empty
	wordStale    = 1 << 60 // the slice expired; fast path must stand down
	wordOwner    = 1<<60 - 1
)

func ownerBits(id core.ID) uint64 { return (uint64(id) + 1) & wordOwner }

// waiter is one queued Lock call.
type waiter struct {
	h       *Handle
	granted atomic.Bool
	intra   bool          // intra-class handoff: the slice continues
	wake    chan struct{} // buffered(1): at most one pending signal
}

// NewMutex creates a Scheduler-Cooperative mutex. Any extra Options
// (e.g. WithInactiveGC) are applied on top of opts.
func NewMutex(opts Options, extra ...Option) *Mutex {
	for _, fn := range extra {
		fn(&opts)
	}
	m := &Mutex{
		opts:   opts,
		name:   opts.Name,
		fastOK: opts.sliceLen() > 0,
		refs:   make(map[core.ID]int),
		acct: core.NewAccountant(core.Params{
			Slice:           opts.sliceLen(),
			BanCap:          opts.BanCap,
			InactiveTimeout: opts.InactiveTimeout,
		}),
	}
	m.fastSince = -1
	if opts.Tracer != nil {
		t := opts.Tracer
		m.tracer.Store(&t)
	}
	m.stats.init()
	return m
}

// Name returns the lock's configured label ("" if unnamed).
func (m *Mutex) Name() string { return m.name }

// SetTracer installs (or, with nil, removes) a Tracer at runtime, e.g. to
// attach a trace.Ring flight recorder to a live lock. The swap is atomic
// and safe against concurrent fast-path lock operations.
func (m *Mutex) SetTracer(t Tracer) {
	if t == nil {
		m.tracer.Store(nil)
		return
	}
	m.tracer.Store(&t)
}

func (m *Mutex) loadTracer() Tracer {
	if p := m.tracer.Load(); p != nil {
		return *p
	}
	return nil
}

// Handle is one schedulable entity's endpoint on a Mutex. A Handle must
// not be used concurrently with itself (it represents a single thread of
// control), but distinct Handles may be used concurrently. Handle
// implements sync.Locker.
type Handle struct {
	m      *Mutex
	id     core.ID
	weight int64
	name   string
}

var handleIDs atomic.Int64

// Register adds an entity with the reference (nice-0) weight.
func (m *Mutex) Register() *Handle { return m.RegisterWeight(core.ReferenceWeight) }

// RegisterNice adds an entity whose weight derives from a CFS nice value,
// matching the CPU share a proportional-share scheduler would give it.
func (m *Mutex) RegisterNice(nice int) *Handle {
	return m.RegisterWeight(core.NiceToWeight(nice))
}

// RegisterWeight adds an entity with an explicit weight.
func (m *Mutex) RegisterWeight(weight int64) *Handle {
	h := &Handle{m: m, id: core.ID(handleIDs.Add(1)), weight: weight}
	m.lockMu()
	m.acct.Register(h.id, weight, monotime())
	m.refs[h.id]++
	m.unlockMu()
	return h
}

// Sibling returns a new Handle bound to the same schedulable entity: the
// siblings share lock usage accounting, slices and bans, and so form a
// work-conserving group — while one sibling runs non-critical code,
// another may use the group's lock slice (the paper's §6 class
// generalization: a process, container or tenant with several threads is
// one entity). Each sibling is still a single thread of control.
func (h *Handle) Sibling() *Handle {
	s := &Handle{m: h.m, id: h.id, weight: h.weight, name: h.name}
	h.m.lockMu()
	h.m.refs[h.id]++
	h.m.unlockMu()
	return s
}

// Close releases the handle; the entity is unregistered when its last
// sibling closes. The Handle must not hold the lock. Closing while an
// operation of the entity is still in flight (a queued sibling, a hold
// that was not released) does not corrupt the books: the unregistration
// is deferred to the operation's completion, so no stale weight survives
// in the accounting. Handles that are never closed are reclaimed by the
// inactive-entity GC when WithInactiveGC is configured.
func (h *Handle) Close() {
	m := h.m
	check.Point("mu.close")
	m.lockMu()
	defer m.unlockMu()
	m.refs[h.id]--
	if m.refs[h.id] > 0 {
		return
	}
	delete(m.refs, h.id)
	now := monotime()
	m.fold(now)
	inFlight := m.acct.Holding(h.id) || m.entityQueued(h.id) || m.entityCombining(h.id)
	if w := m.word.Load(); !inFlight && w&wordHeld != 0 && w&wordOwner == ownerBits(h.id) {
		// A fast-path hold is in flight (deferred accounting, so the
		// accountant does not see it). Shut it out with the stale bit —
		// its release then takes the slow path and observes the closed
		// refcount — unless the release already landed.
		w = m.mutate(func(x uint64) uint64 { return x | wordStale })
		inFlight = w&wordHeld != 0
	}
	if inFlight {
		// Unregistering now would let the in-flight operation re-register
		// the entity with nobody left to remove it — a permanently stale
		// weight. The final release (or abandonment) runs dropGhostLocked
		// instead, converging to the same books.
		return
	}
	owner, owned := m.acct.SliceOwner()
	if owned && owner == h.id {
		m.fastSince = -1
		m.mutate(func(w uint64) uint64 { return w &^ (wordOwner | wordStale) })
	}
	m.acct.Unregister(h.id)
	m.debugCheckBooks()
	if owned && owner == h.id && m.next != nil &&
		m.word.Load()&(wordHeld|wordTransfer) == 0 {
		// The departing entity owned the slice with other entities'
		// waiters queued behind it (waiting out the slice, not the lock).
		// Its departure ends the slice; hand the free lock over now, or
		// nobody ever will — the slice-end timer bails when no owner is
		// left.
		m.transferLocked(now)
	}
}

// dropGhostLocked finishes an unregistration that Close deferred: once an
// entity with no open handles has no operation in flight (not holding the
// lock, not queued), its accounting state is removed so no stale weight
// survives in totalWeight or grandUsage. m.mu held.
func (m *Mutex) dropGhostLocked(id core.ID, now time.Duration) {
	check.Point("mu.dropghost")
	if _, open := m.refs[id]; open {
		return
	}
	if !m.acct.Registered(id) || m.acct.Holding(id) || m.entityQueued(id) ||
		m.entityCombining(id) {
		return
	}
	ownedSlice := false
	if w := m.word.Load(); w&wordHeld == 0 && w&wordOwner == ownerBits(id) {
		m.fold(now)
		m.fastSince = -1
		m.mutate(func(x uint64) uint64 { return x &^ (wordOwner | wordStale) })
		ownedSlice = true
	}
	m.acct.Unregister(id)
	m.debugCheckBooks()
	if ownedSlice && m.next != nil &&
		m.word.Load()&(wordHeld|wordTransfer) == 0 {
		// Same as Close: the ghost owned the slice with other entities
		// queued behind it; ending its slice must grant the lock onward.
		m.transferLocked(now)
	}
}

// entityQueued reports whether any waiter of entity id is queued. m.mu held.
func (m *Mutex) entityQueued(id core.ID) bool {
	if m.next != nil && m.next.h.id == id {
		return true
	}
	for _, w := range m.parked {
		if w.h.id == id {
			return true
		}
	}
	return false
}

// queuedIDs collects the entity IDs currently in the waiter queue (nil
// when the queue is empty). m.mu held.
func (m *Mutex) queuedIDs() map[core.ID]struct{} {
	if m.next == nil && len(m.parked) == 0 {
		return nil
	}
	q := make(map[core.ID]struct{}, len(m.parked)+1)
	if m.next != nil {
		q[m.next.h.id] = struct{}{}
	}
	for _, w := range m.parked {
		q[w.h.id] = struct{}{}
	}
	return q
}

// maybeReap runs the inactive-entity GC (WithInactiveGC; the paper's
// k-SCL reaps per-thread state idle longer than 1s, §4.4). It is lazy —
// piggybacked on slice boundaries and Stats snapshots, no background
// goroutine — and rate-limited to once per quarter threshold, so the
// amortized cost per lock operation is O(1). The accountant drops
// entities idle past the threshold (never holders, the slice owner,
// banned entities, or queued waiters); their sibling refcounts and
// per-entity stats go with them, so all three maps stay proportional to
// the active set. Residual stats of entities that departed via Close are
// swept on the same schedule (with GC off they are kept forever for
// post-run reporting). m.mu held.
func (m *Mutex) maybeReap(now time.Duration) {
	if m.opts.InactiveTimeout <= 0 || now < m.nextReap {
		return
	}
	m.nextReap = now + m.opts.InactiveTimeout/4
	queued := m.queuedIDs()
	reaped := m.acct.ExpireInactive(now, func(id core.ID) bool {
		if _, ok := queued[id]; ok {
			return true
		}
		// A published-but-unexecuted critical section (Handle.Do) is an
		// operation in flight: reaping its entity would strand the charge.
		return m.entityCombining(id)
	})
	t := m.loadTracer()
	for _, r := range reaped {
		delete(m.refs, r.ID)
		name := m.stats.onReap(int64(r.ID), now)
		if t != nil {
			t.OnReap(m.event(trace.KindReap, now, r.ID, name, r.Idle))
		}
	}
	for id, e := range m.stats.entities {
		cid := core.ID(id)
		if e.active != 0 || now-e.settledAt < m.opts.InactiveTimeout ||
			m.acct.Registered(cid) {
			continue
		}
		if _, ok := queued[cid]; ok {
			continue
		}
		idle := now - e.settledAt
		name := m.stats.onReap(id, now)
		if t != nil {
			t.OnReap(m.event(trace.KindReap, now, cid, name, idle))
		}
	}
	if len(reaped) > 0 {
		m.debugCheckBooks()
	}
}

// debugCheckBooks validates the accountant's bookkeeping invariants under
// the scldebug build tag (compiled out otherwise). Every unregistration
// path — Close, ghost drop, reap — must leave totalWeight and grandUsage
// equal to the sums over the remaining entities.
func (m *Mutex) debugCheckBooks() {
	if !debugChecks {
		return
	}
	if err := m.acct.CheckInvariants(); err != nil {
		debugFail(err.Error())
	}
}

// SetName attaches a label (used by the stats helpers).
func (h *Handle) SetName(name string) *Handle { h.name = name; return h }

// Name returns the handle's label.
func (h *Handle) Name() string { return h.name }

// mutate applies f to the state word with a CAS loop that tolerates
// concurrent fast-path CASes. m.mu held. Returns the installed word.
func (m *Mutex) mutate(f func(uint64) uint64) uint64 {
	for {
		old := m.word.Load()
		new := f(old)
		// The load→CAS window: a concurrent fast-path CAS may land here,
		// which is exactly the interleaving the checker reorders.
		check.Point("mu.word.mutate")
		if old == new || m.word.CompareAndSwap(old, new) {
			return new
		}
	}
}

// fastLock is the slice owner's lock-free acquire: one CAS on the state
// word, no clock read, deferred accounting. It succeeds only while the
// lock is free, no grant is in flight, and the word names h's entity as
// the live (non-stale) slice owner; queued waiters do not block it — the
// owner may use its slice ahead of them, exactly as in the slow path.
func (m *Mutex) fastLock(h *Handle) bool {
	w := m.word.Load()
	if w&^wordWaiters != ownerBits(h.id) {
		return false
	}
	check.Point("mu.fast.lock")
	if !m.word.CompareAndSwap(w, w|wordHeld) {
		return false
	}
	m.fastHeld = true
	m.fastOps.Add(1)
	if t := m.loadTracer(); t != nil {
		now := monotime()
		m.csStart = now
		t.OnAcquire(m.event(trace.KindAcquire, now, h.id, h.name, 0))
	} else {
		m.csStart = 0 // a stale start must not leak into a traced release
	}
	return true
}

// fastUnlock releases a fast-path hold: one CAS, provided no waiter
// queued meanwhile (waiters need the slow path's handoff logic) and the
// slice was not marked stale by the timer. All holder-owned bookkeeping
// (csStart, fastHeld) happens before the release CAS — after it the next
// holder owns those fields.
func (m *Mutex) fastUnlock(h *Handle) bool {
	if !m.fastHeld {
		return false
	}
	if m.combine.Load() != nil {
		// Published critical sections are waiting (Handle.Do): decline so
		// the slow release drains them while the held bit still provides
		// mutual exclusion.
		return false
	}
	t := m.loadTracer()
	var now, hold time.Duration
	if t != nil {
		now = monotime()
		if m.csStart > 0 {
			hold = now - m.csStart
		}
	}
	m.fastHeld = false
	check.Point("mu.fast.unlock")
	if !m.word.CompareAndSwap(wordHeld|ownerBits(h.id), ownerBits(h.id)) {
		m.fastHeld = true // slow path will finish this release
		return false
	}
	if t != nil {
		t.OnRelease(m.event(trace.KindRelease, now, h.id, h.name, hold))
	}
	// A publish that raced the release CAS would otherwise park with
	// nobody coming to drain it; wake-walk so it observes the free lock.
	if m.combine.Load() != nil {
		m.wakeCombiners()
	}
	return true
}

// Lock acquires the mutex on behalf of the handle's entity. If the entity
// is banned for over-use, Lock first sleeps out the penalty (paper §4.2:
// the penalty is computed at release and imposed at acquire).
func (h *Handle) Lock() {
	m := h.m
	if m.fastLock(h) {
		return
	}
	m.lockSlow(h, nil)
}

// LockContext acquires the mutex like Lock, but gives up when ctx is
// cancelled: it returns ctx.Err() and the lock is NOT held. Cancellation
// interrupts both phases of a blocked acquire — the ban sleep (the paper's
// penalty imposed at acquire) and the waiter queue. An abandoning waiter
// detaches cleanly: its queue slot is removed, an ownership grant that
// raced with the cancellation is re-routed to the next eligible waiter
// rather than lost, and the accounting books end up exactly as if the
// entity had never queued (no usage is charged, bans and slice ownership
// are untouched). A ctx that is already cancelled returns without
// blocking, even when the lock is free.
func (h *Handle) LockContext(ctx context.Context) error {
	m := h.m
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.fastLock(h) {
		return nil
	}
	return m.lockSlow(h, ctx)
}

// lockSlow is the shared slow path of Lock (ctx == nil: uncancellable)
// and LockContext.
func (m *Mutex) lockSlow(h *Handle, ctx context.Context) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	reqAt := time.Duration(-1) // first clock read inside the loop
	check.Point("mu.lockslow")
	for {
		m.lockMu()
		now := monotime()
		if reqAt < 0 {
			reqAt = now
		}
		until := m.acct.BannedUntil(h.id)
		if until <= now {
			break // proceed, still holding m.mu
		}
		m.unlockMu()
		if done == nil {
			if !check.Sleep(until - now) {
				time.Sleep(until - now)
			}
			continue
		}
		// A cancellable acquire must be able to walk away mid-penalty:
		// the ban only makes an uncancellable wait longer.
		if cancelled, handled := check.SleepOrDone(until-now, done); handled {
			if cancelled {
				m.noteAbandon(h, reqAt)
				return ctx.Err()
			}
			continue
		}
		t := time.NewTimer(until - now)
		select {
		case <-t.C:
		case <-done:
			t.Stop()
			m.noteAbandon(h, reqAt)
			return ctx.Err()
		}
	}
	// Uncontended path: we own the live slice, or the lock is wholly
	// free. setHeldLocked can lose only to a fast-path sibling; then we
	// queue like anyone else and its release hands the slice over.
	now := monotime()
	if m.word.Load()&(wordHeld|wordTransfer) == 0 && m.fastEligible(h, now) && m.setHeldLocked() {
		m.acquireLocked(h, now, reqAt)
		m.unlockMu()
		return nil
	}
	// Slow path: queue.
	w := &waiter{h: h, wake: make(chan struct{}, 1)}
	head := m.next == nil
	if head {
		m.next = w
	} else {
		m.parked = append(m.parked, w)
	}
	m.mutate(func(x uint64) uint64 { return x | wordWaiters })
	if head {
		m.armSliceEnd()
	}
	m.unlockMu()
	if !w.await(done, head) {
		m.abandon(w, reqAt)
		return ctx.Err()
	}
	// Granted: finalize ownership.
	check.Point("mu.granted")
	m.lockMu()
	now = monotime()
	if m.next == w {
		m.next = nil
	}
	if !w.intra {
		// A slice transfer; an intra-class handoff keeps the running slice.
		m.startSlice(h.id, now)
	}
	m.promoteHead()
	// Take the lock and retire the grant in one step: the transfer bit
	// must not clear before the held bit is up, or the previous owner's
	// fast path could still see a free word naming it.
	m.mutate(func(x uint64) uint64 { return (x | wordHeld) &^ wordTransfer })
	m.syncWaitersBit()
	m.armSliceEnd() // the transfer bit suppressed arming in startSlice
	m.acquireLocked(h, now, reqAt)
	m.unlockMu()
	return nil
}

// abandon resolves a cancelled waiter under m.mu. A grant that raced with
// the cancellation — the granter already set the transfer bit and marked w
// granted — is re-routed rather than lost: this is exactly the
// held-clear→transfer-set window where a dropped grant would wedge every
// remaining waiter. Either way the caller returns without the lock, and
// the accountant's books look as if w had never queued.
func (m *Mutex) abandon(w *waiter, reqAt time.Duration) {
	check.Point("mu.abandon")
	m.lockMu()
	defer m.unlockMu()
	// A regrant below can retire the transfer with nobody left to grant
	// to, leaving the word fully idle: publishers (Handle.Do) that parked
	// while the transfer bit was up must be woken to self-serve, exactly
	// as on the release paths. No-op unless the word actually went idle.
	defer m.wakeCombiners()
	now := monotime()
	granted := w.granted.Load() // stable under m.mu: grants happen under it
	if m.next == w {
		m.next = nil
		m.promoteHead()
	} else {
		for i, p := range m.parked {
			if p == w {
				m.parked = append(m.parked[:i], m.parked[i+1:]...)
				break
			}
		}
	}
	if granted {
		m.regrantLocked(w, now)
	}
	m.syncWaitersBit()
	m.noteAbandonLocked(w.h, now, reqAt)
	m.dropGhostLocked(w.h.id, now)
}

// regrantLocked re-routes an in-flight grant whose grantee w abandoned:
// the transfer bit is up, so no fast path can interfere until the grant is
// either passed on or retired. m.mu held; w is already detached from the
// queue.
func (m *Mutex) regrantLocked(w *waiter, now time.Duration) {
	check.Point("mu.regrant")
	if w.intra {
		// An intra-class handoff: the slice is live and belongs to w's
		// entity. Pass the grant to another queued waiter of the class, or
		// retire it the way Unlock leaves an idle live slice — fast window
		// open for the owner, slice-end timer armed for everyone else.
		if owner, ok := m.acct.SliceOwner(); ok {
			if w2 := m.takeClassWaiter(owner); w2 != nil {
				w2.intra = true
				m.handoff(w2, now)
				w2.grant()
				return
			}
		}
		m.mutate(func(x uint64) uint64 { return x &^ wordTransfer })
		if m.fastOK {
			m.fastSince = now
		}
		m.armSliceEnd()
		return
	}
	// A slice transfer: hand it to the new queue head, keeping the
	// transfer bit up throughout (dropping it first would momentarily
	// reopen the expired slice's fast path for the previous owner).
	if m.next != nil {
		m.handoff(m.next, now)
		m.next.grant()
		return
	}
	// Nobody left to grant to: retire the transfer and clear the expired
	// slice in one atomic step, as transferLocked does for an empty queue.
	m.acct.ClearSlice()
	m.mutate(func(x uint64) uint64 { return x &^ (wordTransfer | wordOwner | wordStale) })
}

// noteAbandon records a cancelled acquisition that never queued (a ban
// sleep walked out early).
func (m *Mutex) noteAbandon(h *Handle, reqAt time.Duration) {
	m.lockMu()
	defer m.unlockMu()
	m.noteAbandonLocked(h, monotime(), reqAt)
}

// noteAbandonLocked lands a cancellation in the stats and the event
// stream; the event's detail is the time spent waiting before giving up.
// m.mu held.
func (m *Mutex) noteAbandonLocked(h *Handle, now, reqAt time.Duration) {
	wait := now - reqAt
	if wait < 0 {
		wait = 0
	}
	m.stats.onAbandon(int64(h.id), h.name)
	if t := m.loadTracer(); t != nil {
		t.OnAbandon(m.event(trace.KindAbandon, now, h.id, h.name, wait))
	}
}

// TryLock attempts to acquire the mutex without blocking and reports
// whether it succeeded. It fails when the handle's entity is banned, the
// lock is held (or a grant is in flight), or other entities are queued —
// a waiter-respecting analogue of sync.Mutex.TryLock. Like Lock, the
// slice owner's re-acquisition is a single CAS.
func (h *Handle) TryLock() bool {
	m := h.m
	// Owner reacquire with nothing queued: pure fast path.
	if m.word.Load() == ownerBits(h.id) && m.fastLock(h) {
		return true
	}
	check.Point("mu.trylock")
	m.lockMu()
	defer m.unlockMu()
	now := monotime()
	if m.acct.BannedUntil(h.id) > now {
		return false
	}
	if m.word.Load()&(wordHeld|wordTransfer) != 0 || m.next != nil || len(m.parked) > 0 {
		return false
	}
	if owner, ok := m.acct.SliceOwner(); ok && owner != h.id && !m.acct.SliceExpired(now) {
		return false // someone else's live slice
	}
	if !m.fastEligible(h, now) {
		// An expired slice with no waiters: run the boundary inline (what
		// the slice timer would do) and take a fresh slice.
		if _, owned := m.acct.SliceOwner(); !owned || !m.acct.SliceExpired(now) {
			return false
		}
		if !m.endIdleSliceLocked(now) {
			return false // a fast-path holder slipped in
		}
		m.startSlice(h.id, now)
	}
	if !m.setHeldLocked() {
		return false // a fast-path sibling got there first
	}
	m.acquireLocked(h, now, now)
	return true
}

// fastEligible reports whether h may take the free lock immediately.
// m.mu held.
func (m *Mutex) fastEligible(h *Handle, now time.Duration) bool {
	owner, ok := m.acct.SliceOwner()
	switch {
	case ok && owner == h.id && !m.acct.SliceExpired(now):
		return true
	case !ok && m.next == nil:
		m.startSlice(h.id, now)
		return true
	}
	return false
}

// startSlice makes id the slice owner beginning at now, mirrors ownership
// into the fast-path state word, and schedules the slice-end timer that
// bounds the fast-path regime. m.mu held.
func (m *Mutex) startSlice(id core.ID, now time.Duration) {
	m.fold(now)
	m.acct.StartSlice(id, now)
	if m.fastOK {
		m.mutate(func(w uint64) uint64 {
			return (w &^ (wordOwner | wordStale)) | ownerBits(id)
		})
	}
	m.armSliceEnd()
}

// setHeldLocked closes an uncontended acquire: a CAS raises the held bit,
// failing if a fast-path acquire (a sibling handle of the slice-owning
// entity) got there first — the caller then queues or bails instead.
// m.mu held.
func (m *Mutex) setHeldLocked() bool {
	for {
		w := m.word.Load()
		if w&wordHeld != 0 {
			return false
		}
		check.Point("mu.setheld")
		if m.word.CompareAndSwap(w, w|wordHeld) {
			return true
		}
	}
}

// acquireLocked books h as holder; the held bit is already up (via
// setHeldLocked or the grant-retiring mutate). m.mu held.
func (m *Mutex) acquireLocked(h *Handle, now, reqAt time.Duration) {
	m.fold(now)
	m.fastSince = -1 // held: the fast window is closed
	m.fastHeld = false
	m.csStart = 0
	if !m.acct.Registered(h.id) {
		// A reaped (or never-registered) entity returning: re-register
		// through the join-credit floor — going idle does not launder
		// accumulated usage beyond JoinCredit. Restore the refcount entry
		// the reap dropped, so Close and the ghost-drop logic keep seeing
		// this entity as open.
		m.acct.Register(h.id, h.weight, now)
		if _, ok := m.refs[h.id]; !ok {
			m.refs[h.id] = 1
		}
	}
	wait := now - reqAt
	if wait < 0 {
		wait = 0
	}
	m.acct.OnAcquire(h.id, now)
	m.stats.onAcquire(int64(h.id), h.name, now, wait)
	if t := m.loadTracer(); t != nil {
		t.OnAcquire(m.event(trace.KindAcquire, now, h.id, h.name, wait))
	}
}

// fold settles the open fast window: the wall-clock span since the window
// opened is charged to the slice owner as deferred usage, and the batched
// fast-path acquisitions land in the stats. The window then restarts at
// now. m.mu held.
func (m *Mutex) fold(now time.Duration) {
	if m.fastSince < 0 {
		return
	}
	window := now - m.fastSince
	if window < 0 {
		window = 0
	}
	m.fastSince = now
	ops := m.fastOps.Swap(0)
	owner, ok := m.acct.SliceOwner()
	if !ok || (ops == 0 && window == 0) {
		return
	}
	m.acct.FoldSliceUsage(owner, window, now)
	m.stats.fold(int64(owner), window, ops, now)
}

// await blocks until the waiter is granted (true) or done fires first
// (false; done == nil never fires). The queue head spins briefly
// (next-thread prefetch) before sleeping; others sleep immediately. A
// false return does not mean the grant cannot still land — the caller must
// resolve the race under m.mu (see abandon).
func (w *waiter) await(done <-chan struct{}, head bool) bool {
	if ok, handled := check.WaitOrDone("mu.await", w.granted.Load, done); handled {
		// Deterministic checker: the scheduler wakes us on grant or
		// cancellation directly; the spin/futex machinery below is real-
		// runtime plumbing with no scheduling decisions of its own.
		return ok
	}
	if head {
		for i := 0; i < 64; i++ {
			if w.granted.Load() {
				return true
			}
			runtime.Gosched()
		}
	}
	for !w.granted.Load() {
		if done == nil {
			<-w.wake
			continue
		}
		select {
		case <-w.wake:
		case <-done:
			return false
		}
	}
	return true
}

// grant hands ownership to the waiter. m.mu held.
func (w *waiter) grant() {
	w.granted.Store(true)
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// promoteHead moves the head of the parked queue into the next-thread
// slot and wakes it so it starts spinning (paper Figure 3 step 8).
// m.mu held.
func (m *Mutex) promoteHead() {
	if m.next != nil || len(m.parked) == 0 {
		return
	}
	w := m.parked[0]
	m.parked = m.parked[1:]
	m.next = w
	// Wake it out of its sleep so it can spin / observe grants promptly.
	select {
	case w.wake <- struct{}{}:
	default:
	}
	m.armSliceEnd()
}

// syncWaitersBit reconciles the waiters bit with the queue. m.mu held.
func (m *Mutex) syncWaitersBit() {
	empty := m.next == nil && len(m.parked) == 0
	m.mutate(func(w uint64) uint64 {
		if empty {
			return w &^ wordWaiters
		}
		return w | wordWaiters
	})
}

// Unlock releases the mutex. If the lock slice has expired, ownership
// transfers to the head waiter and the accounting engine may ban this
// entity until others have had their proportional lock opportunity.
func (h *Handle) Unlock() {
	m := h.m
	if m.fastUnlock(h) {
		return
	}
	m.unlockSlow(h)
}

// unlockSlow is the full release: fold, the holder's accounting release,
// a drain of any published critical sections (Handle.Do) while the held
// bit still provides mutual exclusion, and the slice boundary.
func (m *Mutex) unlockSlow(h *Handle) {
	check.Point("mu.unlock.slow")
	m.lockMu()
	defer m.unlockMu()
	// Publishers still pending when the lock goes idle must be woken to
	// self-serve; runs before unlockMu (harmless — it only reads atomics
	// and sends non-blocking signals) on every exit path below.
	defer m.wakeCombiners()
	if m.word.Load()&wordHeld == 0 {
		panic("scl: Unlock of unlocked Mutex")
	}
	now := monotime()
	fastAcquired := m.fastHeld
	m.fold(now)
	var rel core.Release
	if fastAcquired {
		// The acquisition went through the fast path, so its usage is in
		// the fold above; run a zero-length release purely for the slice
		// boundary decision (expiry, penalty).
		m.fastHeld = false
		m.acct.OnAcquire(h.id, now)
		rel = m.acct.OnRelease(h.id, now)
		if m.csStart > 0 {
			rel.Hold = now - m.csStart
			m.csStart = 0
		}
	} else {
		rel = m.acct.OnRelease(h.id, now)
		m.stats.onRelease(int64(h.id), now)
	}
	if t := m.loadTracer(); t != nil {
		t.OnRelease(m.event(trace.KindRelease, now, h.id, h.name, rel.Hold))
	}
	if m.combine.Load() != nil {
		// Execute published critical sections before surrendering the held
		// bit: the holder's own hold (measured above) never includes the
		// drain, and each closure is charged to its publishing entity.
		now = m.drainCombine(h, now)
	}
	m.mutate(func(w uint64) uint64 { return w &^ wordHeld })
	if t := m.loadTracer(); t != nil {
		if rel.SliceExpired {
			t.OnSliceEnd(m.event(trace.KindSliceEnd, now, h.id, h.name, rel.SliceUse))
		}
		if rel.Penalty > 0 {
			t.OnBan(m.event(trace.KindBan, now, h.id, h.name, rel.Penalty))
		}
	}
	if rel.Penalty > 0 {
		m.stats.onBan(int64(h.id), rel.Penalty)
	}
	if _, open := m.refs[h.id]; !open && !m.entityQueued(h.id) {
		// Closed while this hold was in flight: finish the deferred
		// unregistration and run the boundary — there is no owner left to
		// keep the slice for.
		m.dropGhostLocked(h.id, now)
		m.transferLocked(now)
		return
	}
	if !rel.SliceExpired {
		// Work-conserving groups (paper §6): a queued sibling of the
		// slice-owning entity may take the free lock for the rest of the
		// slice — jumping the queue, since the slice is its entity's to
		// use — instead of letting the lock idle through the releaser's
		// non-critical section.
		if owner, ok := m.acct.SliceOwner(); ok && m.word.Load()&wordTransfer == 0 {
			if w := m.takeClassWaiter(owner); w != nil {
				m.fastSince = -1
				if w2 := m.mutate(func(x uint64) uint64 { return x | wordTransfer }); debugChecks && w2&wordHeld != 0 {
					debugFail("intra transfer set while a fast-path holder is active")
				}
				w.intra = true
				m.handoff(w, now)
				w.grant()
				return
			}
		}
		// The lock idles with a live slice: open a fast window for the
		// owner and keep the slice-end timer armed.
		if m.fastOK {
			m.fastSince = now
		}
		m.armSliceEnd()
		return
	}
	m.maybeReap(now)
	m.transferLocked(now)
}

// handoff records an ownership grant to w. m.mu held.
func (m *Mutex) handoff(w *waiter, now time.Duration) {
	m.stats.onHandoff(int64(w.h.id))
	if t := m.loadTracer(); t != nil {
		t.OnHandoff(m.event(trace.KindHandoff, now, w.h.id, w.h.name, 0))
	}
}

// takeClassWaiter finds a queued waiter of the given entity, detaching it
// from the parked queue (the next slot is cleared by the grantee).
// m.mu held.
func (m *Mutex) takeClassWaiter(owner core.ID) *waiter {
	if m.next != nil && m.next.h.id == owner {
		return m.next
	}
	for i, w := range m.parked {
		if w.h.id == owner {
			m.parked = append(m.parked[:i], m.parked[i+1:]...)
			return w
		}
	}
	return nil
}

// transferLocked hands the free, slice-expired lock to the head waiter or
// clears the slice. m.mu held.
func (m *Mutex) transferLocked(now time.Duration) {
	check.Point("mu.transfer")
	if m.word.Load()&wordTransfer != 0 {
		return
	}
	m.debugCheckCombineQuiet()
	m.fold(now)
	m.fastSince = -1
	if m.next == nil {
		owner, owned := m.acct.SliceOwner()
		m.acct.ClearSlice()
		m.mutate(func(w uint64) uint64 { return w &^ (wordOwner | wordStale) })
		if owned {
			m.dropGhostLocked(owner, now)
		}
		return
	}
	if w2 := m.mutate(func(w uint64) uint64 { return w | wordTransfer }); debugChecks && w2&wordHeld != 0 {
		debugFail("slice transfer set while a fast-path holder is active")
	}
	m.handoff(m.next, now)
	m.next.grant()
}

// endIdleSliceLocked folds and clears an expired slice whose owner sits
// outside the critical section with nobody queued. It stale-marks the
// state word first, so a concurrent fast-path acquire either is shut out
// or already holds the lock — the latter reported by a false return (that
// holder's release runs the boundary instead). m.mu held.
func (m *Mutex) endIdleSliceLocked(now time.Duration) bool {
	check.Point("mu.endidle")
	owner, ok := m.acct.SliceOwner()
	if !ok {
		return true
	}
	if m.fastOK {
		if w := m.mutate(func(x uint64) uint64 { return x | wordStale }); w&wordHeld != 0 {
			m.fold(now)
			return false
		}
	}
	m.fold(now)
	m.fastSince = -1
	if t := m.loadTracer(); t != nil {
		// No release will report this slice end; the boundary does.
		t.OnSliceEnd(m.event(trace.KindSliceEnd, now, owner, "", 0))
	}
	m.acct.ClearSlice()
	m.mutate(func(w uint64) uint64 { return w &^ (wordOwner | wordStale) })
	m.dropGhostLocked(owner, now)
	return true
}

// armSliceEnd schedules the slice-end timer. With the fast path enabled
// the timer is armed for every slice (it bounds the owner's lock-free
// regime); on a k-SCL it is armed only while waiters could stall behind
// an owner that stopped acquiring. One reusable timer, armed at most once
// per slice end. m.mu held.
func (m *Mutex) armSliceEnd() {
	_, ok := m.acct.SliceOwner()
	if !ok || m.word.Load()&wordTransfer != 0 {
		return
	}
	if !m.fastOK && m.next == nil {
		return
	}
	end := m.acct.SliceEnd()
	if m.timerAt == end {
		return // already armed for this slice end
	}
	m.timerAt = end
	delay := end - monotime()
	if delay < 0 {
		delay = 0
	}
	if m.timer == nil {
		m.timer = startLockTimer(delay, m.onSliceTimer)
		return
	}
	m.timer.Reset(delay)
}

// onSliceTimer runs the slice boundary when the slice end passes outside
// a slow-path operation: it stale-marks a fast-path owner (whose next
// operation then takes the slow path), transfers a free lock to waiters,
// or clears an abandoned slice. Stale firings are no-ops.
func (m *Mutex) onSliceTimer() {
	check.Point("mu.slicetimer")
	m.lockMu()
	defer m.unlockMu()
	m.timerAt = -1 // consumed; the next armSliceEnd must re-arm
	now := monotime()
	m.maybeReap(now)
	owner, ok := m.acct.SliceOwner()
	if !ok {
		// Backstop: an ownerless free lock with waiters is a stranded
		// transfer (the owner departed via Close or the GC between this
		// timer's arming and firing); grant it rather than strand them.
		if m.next != nil && m.word.Load()&(wordHeld|wordTransfer) == 0 {
			m.transferLocked(now)
		}
		return
	}
	if !m.acct.SliceExpired(now) {
		m.armSliceEnd() // the slice was restarted; track the new end
		return
	}
	w := m.word.Load()
	if w&wordTransfer != 0 {
		return
	}
	if m.fastOK {
		// Shut the fast path out of the expired slice before looking at
		// the held bit: after this mutate no fast acquire can land, so a
		// held bit in the result is a holder whose release will run the
		// boundary — fold what has accumulated and leave it to that.
		w = m.mutate(func(x uint64) uint64 { return x | wordStale })
	}
	if w&wordHeld != 0 {
		m.fold(now)
		return
	}
	if m.next == nil {
		m.endIdleSliceLocked(now)
		return
	}
	m.fold(now)
	if t := m.loadTracer(); t != nil {
		// The slice ran out while the owner sat outside the critical
		// section; no release will report it, so the timer does.
		t.OnSliceEnd(m.event(trace.KindSliceEnd, now, owner, "", 0))
	}
	m.transferLocked(now)
}

// Stats returns a snapshot of per-entity hold times and the lock's idle
// time, for fairness reporting. Pending fast-path accounting is folded in
// first, so snapshots are exact up to any operation in flight. With
// WithInactiveGC configured, taking a snapshot also gives the lazy
// inactive-entity GC a chance to run.
func (m *Mutex) Stats() StatsSnapshot {
	m.lockMu()
	defer m.unlockMu()
	now := monotime()
	m.fold(now)
	m.maybeReap(now)
	snap := m.stats.snapshot(now)
	snap.Registered = m.acct.Len()
	return snap
}

// Entities returns the number of entities currently registered in the
// lock's accounting. With WithInactiveGC this tracks the active set
// rather than every entity that ever registered.
func (m *Mutex) Entities() int {
	m.lockMu()
	defer m.unlockMu()
	return m.acct.Len()
}

// CheckInvariants verifies the lock's internal consistency: the
// accounting engine's conservation invariants (weight and usage totals
// match the per-entity sums, the slice owner is registered), agreement
// between the state word's waiters bit and the waiter queue, and the
// queue's structural invariant (a populated parked list implies a head
// waiter in the next slot). It is meant for tests — the deterministic
// checker calls it between operations of every explored schedule — and
// reports the first violation found, or nil.
func (m *Mutex) CheckInvariants() error {
	m.lockMu()
	defer m.unlockMu()
	if err := m.acct.CheckInvariants(); err != nil {
		return err
	}
	queued := m.next != nil || len(m.parked) > 0
	hasBit := m.word.Load()&wordWaiters != 0
	if queued != hasBit {
		return fmt.Errorf("scl: waiters bit %v but queue populated %v (next=%v parked=%d)",
			hasBit, queued, m.next != nil, len(m.parked))
	}
	if m.next == nil && len(m.parked) > 0 {
		return fmt.Errorf("scl: %d parked waiters with an empty next slot", len(m.parked))
	}
	for r := m.combine.Load(); r != nil; r = r.next.Load() {
		s := r.state.Load()
		if s < combinePending || s > combineDone {
			return fmt.Errorf("scl: combining request of entity %d in impossible state %d", r.h.id, s)
		}
		// A claimed request means a drain is executing it right now, which
		// can only happen while the combiner still owns the held bit.
		if s == combineClaimed && m.word.Load()&wordHeld == 0 {
			return fmt.Errorf("scl: claimed combining request of entity %d with the lock unheld", r.h.id)
		}
	}
	return nil
}

var _ sync.Locker = (*Handle)(nil)
