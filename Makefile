# Tier-1 gate: everything must build, vet clean, and pass tests with the
# race detector on. CI and pre-commit both run `make check`.

GO ?= go

.PHONY: check build vet test race bench bench-all

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Not part of the gate: the real-lock benchmarks (fast path, contention,
# sync-primitive baselines). Each run is appended to BENCH_scl.json by
# cmd/benchjson, growing a benchstat-compatible performance trajectory
# whose first entry is the pre-fast-path baseline.
bench:
	$(GO) test -run '^$$' -bench . -benchmem . | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_scl.json

# The full benchmark suite across every package (simulator experiments
# included); slow, and not recorded in the trajectory.
bench-all:
	$(GO) test -bench=. -benchmem ./...
