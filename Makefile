# Tier-1 gate: everything must build, vet clean, and pass tests with the
# race detector on. CI and pre-commit both run `make check`.

GO ?= go

.PHONY: check build vet test race bench

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Not part of the gate: the full benchmark suite (simulator experiments
# plus the real-lock fast paths).
bench:
	$(GO) test -bench=. -benchmem ./...
