# Tier-1 gate: everything must build, vet clean, pass tests with the race
# detector on (including the scldebug invariant-checked build of the lock
# package), and carry no review scaffolding in production code. CI and
# pre-commit both run `make check`.

GO ?= go

.PHONY: check build build-matrix vet test race race-debug review-gate docs-check check-explore oracle scenarios bench bench-all

check: build build-matrix vet race race-debug review-gate docs-check

build:
	$(GO) build ./...

# Both sides of the scldebug build matrix: the release build (invariant
# assertions compiled away, scldebug_off.go) and the debug build (live
# panics, scldebug_on.go) must always compile. Catches assertions that
# reference release-stripped symbols and vice versa.
build-matrix:
	$(GO) build ./...
	$(GO) build -tags scldebug ./...
	$(GO) vet -tags scldebug ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator's fairness acceptance tests (sim: TestRWSCLRatioNineToOne
# and friends) take ~13 minutes under the race detector on a loaded
# machine, past go test's default 10-minute per-package timeout — give
# every package generous headroom; a genuine hang still fails.
race:
	$(GO) test -race -timeout 30m ./...

# The lock package once more with the scldebug build tag: the internal
# invariant assertions (debugChecks in mutex.go) compile to live panics
# instead of no-ops, so the race suite also proves the invariants hold.
race-debug:
	$(GO) test -race -tags scldebug .

# Review scaffolding (REVIEW-marked probes, temporary assertions) may live
# in test files only; fail the gate if any marker leaks into production
# code, as the PR 2 Gosched loop in Unlock once did.
review-gate:
	@! grep -rn --include='*.go' --exclude='*_test.go' 'REVIEW' . \
		|| { echo 'review-gate: REVIEW marker in non-test Go file'; exit 1; }

# Documentation gate: every exported identifier in the public packages
# (scl, lockstat, trace, export) must carry a doc comment, and the
# top-level markdown files must not contain dead relative links.
docs-check:
	$(GO) run ./cmd/doclint

# The scenario corpus on both sides of the scldebug build matrix
# (short mode: deterministic substrates only), then the corpus-wide
# sim-vs-real differential oracle via cmd/sclscenario. Failures print
# the scenario seed; replay with
# `go run ./cmd/sclscenario -mode replay -scenario <name> -seed N`.
scenarios:
	$(GO) test -short -count=1 ./internal/scenario/...
	$(GO) test -short -count=1 -tags scldebug ./internal/scenario/...
	$(GO) run ./cmd/sclscenario -mode oracle

# Not part of the gate: the real-lock benchmarks (fast path, contention,
# sync-primitive baselines) plus the scenario-corpus benchmarks
# (BenchmarkScenario*, which carry grants/op and jain-hold metrics).
# Each run is appended to BENCH_scl.json by cmd/benchjson, growing a
# benchstat-compatible performance trajectory whose first entry is the
# pre-fast-path baseline. The corpus gate (`scenarios`) runs first so a
# broken scenario never records numbers.
# -count=5 with a short benchtime: benchjson records each benchmark's
# best sample, so a transient load spike (scheduler-latency noise on a
# shared box) has to hit all five short windows to pollute the record.
# The -volatile set is the handoff-bound ladders — every op includes a
# goroutine park/wake, whose cost is a per-process scheduler regime
# (bimodal at 2.3x for unchanged code on a 1-CPU box) — reported with
# deltas but not gated; judge them with benchstat across trajectory
# runs instead.
bench: scenarios
	$(GO) test -run '^$$' -bench . -benchmem -count=5 -benchtime=0.3s . | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_scl.json
	$(GO) run ./cmd/benchjson -compare BENCH_scl.json -volatile 'PingPong|Contended|DoMixed|KSCLTraced'

# Deterministic schedule exploration of the real locks (internal/check)
# on a CI-sized budget; `go test ./internal/check` without -short runs
# the full 10k+-schedule acceptance budget. Failures print a seed,
# replayable with `go run ./cmd/sclcheck -mode replay -seed N`.
check-explore:
	$(GO) test -short -count=1 ./internal/check/...

# The sim-vs-real differential oracle over the curated scripts.
oracle:
	$(GO) run ./cmd/sclcheck -mode oracle

# The full benchmark suite across every package (simulator experiments
# included); slow, and not recorded in the trajectory.
bench-all:
	$(GO) test -bench=. -benchmem ./...
