package scl

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scl/internal/check"
	"scl/internal/core"
	"scl/internal/metrics"
)

// Manager is a keyed lock table: it maps arbitrary string keys to
// lazily-materialized SCL locks (u-SCL by default, RW-SCL with
// ManagerOptions.RW) and extends the paper's per-lock opportunity
// guarantee to the whole table. The scheduler-subversion problem the
// paper solves for one lock reappears across a lock table — a tenant
// hammering a million cold keys, or many goroutines on a few hot ones,
// can monopolize the service even though no single lock is abused — so
// the Manager accounts at two levels:
//
//   - Per key, each materialized lock runs the full SCL machinery with
//     entity = tenant: a tenant's goroutines on one key share one
//     accounted entity (handles pooled as siblings), so on every hot key
//     lock opportunity is divided by tenant weight exactly as in §3.
//   - Per stripe, the Manager keeps tenant books — a core.Accountant
//     driven in k-SCL style (Accountant.ChargeWindow): every completed
//     grant books its wall-clock hold window against the tenant, every
//     release is a slice boundary, and the resulting penalty is slept
//     out at the tenant's next acquire on that stripe. One accountant
//     identity per tenant per stripe makes a tenant's opportunity
//     proportional table-wide, not merely per key.
//
// The table is striped: a key hashes (FNV-1a, deterministic across
// processes so checker replays are stable) to one of a power-of-two
// number of stripes, each with its own mutex, key map and tenant books,
// so key lookup itself never becomes the new subversion point — stripe
// critical sections are O(1) map operations, and blocking (ban sleeps,
// the key lock's queue) always happens outside the stripe mutex.
//
// Boundedness under millions of distinct keys reuses the §4.4
// inactive-GC machinery at both levels: idle key locks are reaped
// (ManagerOptions.LockIdle) and idle tenant identities expire from the
// stripe books (ManagerOptions.TenantIdle), both lazily, piggybacked on
// releases and rate-limited — no background goroutine. Stripe books
// survive a lock reap, so a reaped-and-rematerialized key sees
// unchanged tenant accounting.
type Manager struct {
	opts    ManagerOptions
	mask    uint64
	stripes []stripe
}

// ManagerOptions configure a Manager.
type ManagerOptions struct {
	// Stripes is the number of internal stripes (rounded up to a power of
	// two; zero means DefaultStripes). More stripes reduce contention on
	// the table itself; tenant fairness is enforced per stripe, so very
	// high stripe counts trade table-wide accounting precision for
	// lookup scalability.
	Stripes int
	// RW selects RW-SCL (reader-writer) locks for every key in the table;
	// acquire through Tenant.RLock/WLock. The default is u-SCL mutexes,
	// acquired through Tenant.Lock.
	RW bool
	// ReadWeight and WriteWeight are the RW-SCL class weights used when RW
	// is set (zero means 1:1).
	ReadWeight, WriteWeight int64
	// Lock configures each materialized per-key lock (slice length, ban
	// cap, per-key inactive-entity GC, tracer). Options.Name is ignored:
	// each lock is named after its key. For RW tables, Lock.Slice is the
	// phase period.
	Lock Options
	// LockIdle, when positive, reaps key locks idle (no grant in flight,
	// no acquisition) for at least this long, keeping the table bounded
	// under key churn. The reap is lazy and rate-limited; a reaped key is
	// re-materialized on next use with fresh per-key accounting but
	// unchanged stripe-level tenant books.
	LockIdle time.Duration
	// TenantIdle, when positive, expires tenant identities from a
	// stripe's books after this much inactivity on that stripe (the §4.4
	// GC applied to tenants). Tenants with grants in flight or unserved
	// bans are never expired; an expired tenant that returns re-registers
	// through the join-credit floor, so idling cannot launder a penalty.
	TenantIdle time.Duration
	// Name labels the manager in metrics export.
	Name string
}

// DefaultStripes is the default stripe count for a Manager.
const DefaultStripes = 32

// ManagerOption is a functional override applied on top of a
// ManagerOptions value, mirroring Option for single locks.
type ManagerOption func(*ManagerOptions)

// WithStripes overrides the stripe count (rounded up to a power of two).
func WithStripes(n int) ManagerOption {
	return func(o *ManagerOptions) { o.Stripes = n }
}

// WithLockGC enables key-lock reaping: locks idle for the threshold are
// dismantled and their keys forgotten until next use (ManagerOptions.
// LockIdle). A non-positive threshold disables it (the default).
func WithLockGC(threshold time.Duration) ManagerOption {
	return func(o *ManagerOptions) { o.LockIdle = threshold }
}

// WithTenantGC enables tenant-identity expiry in the stripe books
// (ManagerOptions.TenantIdle). A non-positive threshold disables it
// (the default).
func WithTenantGC(threshold time.Duration) ManagerOption {
	return func(o *ManagerOptions) { o.TenantIdle = threshold }
}

// stripe is one shard of the table: its own mutex, key map, tenant
// books and per-tenant stats. All fields are guarded by mu (taken
// through the checkhooks seam).
type stripe struct {
	mu       sync.Mutex
	books    *core.Accountant     // tenant-level accounting, k-SCL style
	keys     map[string]*managedLock
	inflight map[core.ID]int // grants in flight per tenant (reap veto)
	stats    map[core.ID]*tenantStat
	nextReap time.Duration

	materialized  int64
	locksReaped   int64
	tenantsReaped int64
}

// managedLock is one materialized key: the underlying SCL lock plus the
// per-tenant handle pools that bind each tenant's goroutines to one
// accounted entity on this key.
type managedLock struct {
	key      string
	mu       *Mutex  // u-SCL tables
	rw       *RWLock // RW-SCL tables
	pools    map[core.ID]*tenantPool
	inflight int           // grants in flight on this key
	lastUsed time.Duration // last grant or release touch
}

// tenantPool pools a tenant's sibling handles on one key lock. The seed
// handle is the canonical sibling source and is never handed out;
// checked-out handles return to free on release. All handles share one
// entity id, so concurrent goroutines of a tenant are one entity in the
// key lock's accounting (paper §6).
type tenantPool struct {
	seed *Handle
	free []*Handle
	out  int
}

// tenantStat accumulates per-tenant counters on one stripe.
type tenantStat struct {
	name    string
	weight  int64
	grants  int64
	hold    time.Duration
	bans    int64
	banTime time.Duration
	lastAt  time.Duration
}

// managerTenantIDs allocates tenant identities; one Tenant carries the
// same ID into every stripe's books.
var managerTenantIDs atomic.Int64

// NewManager builds a Manager from opts, with extra functional options
// applied on top.
func NewManager(opts ManagerOptions, extra ...ManagerOption) *Manager {
	for _, fn := range extra {
		fn(&opts)
	}
	n := opts.Stripes
	if n <= 0 {
		n = DefaultStripes
	}
	// Round up to a power of two so stripeOf is a mask, not a modulo.
	p := 1
	for p < n {
		p <<= 1
	}
	m := &Manager{opts: opts, mask: uint64(p - 1), stripes: make([]stripe, p)}
	bp := core.Params{
		BanCap:          opts.Lock.BanCap,
		InactiveTimeout: opts.TenantIdle,
	}
	for i := range m.stripes {
		s := &m.stripes[i]
		s.books = core.NewAccountant(bp)
		s.keys = make(map[string]*managedLock)
		s.inflight = make(map[core.ID]int)
		s.stats = make(map[core.ID]*tenantStat)
	}
	return m
}

// Name returns the manager's configured metrics label.
func (m *Manager) Name() string { return m.opts.Name }

// Stripes returns the effective (power-of-two) stripe count.
func (m *Manager) Stripes() int { return len(m.stripes) }

// fnv1a is the 64-bit FNV-1a hash: fixed and process-independent, so a
// replayed checker seed assigns every key to the same stripe.
func fnv1a(key string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

func (m *Manager) stripeOf(key string) *stripe {
	return &m.stripes[fnv1a(key)&m.mask]
}

// Tenant registers a schedulable entity with the table: every key the
// tenant touches accounts it under one identity, and the manager's
// stripe books give it table-wide lock opportunity proportional to
// weight. Call Close when the tenant departs so its weight leaves the
// books at once rather than waiting for the TenantIdle GC.
func (m *Manager) Tenant(name string, weight int64) *Tenant {
	if weight <= 0 {
		panic(fmt.Sprintf("scl: tenant %q registered with non-positive weight %d", name, weight))
	}
	return &Tenant{
		m:      m,
		id:     core.ID(managerTenantIDs.Add(1)),
		name:   name,
		weight: weight,
	}
}

// TenantNice is Tenant with the weight given as a CFS nice value
// (nice 0 → weight 1024), mirroring Mutex.RegisterNice.
func (m *Manager) TenantNice(name string, nice int) *Tenant {
	return m.Tenant(name, NiceToWeight(nice))
}

// Tenant is a registered table identity. All methods are safe for
// concurrent use by any number of the tenant's goroutines; they share
// one set of accounting books. Acquire with Lock (u-SCL tables) or
// RLock/WLock (RW tables) and release through the returned Grant.
type Tenant struct {
	m      *Manager
	id     core.ID
	name   string
	weight int64
	closed atomic.Bool
}

// ID returns the tenant's table-wide accounting identity.
func (t *Tenant) ID() int64 { return int64(t.id) }

// Name returns the tenant's label.
func (t *Tenant) Name() string { return t.name }

// Weight returns the tenant's scheduling weight.
func (t *Tenant) Weight() int64 { return t.weight }

// Grant is one held key lock. Unlock releases the key and books the
// hold window against the tenant's stripe accounts; a Grant must be
// released exactly once, by any goroutine.
type Grant struct {
	t     *Tenant
	s     *stripe
	ml    *managedLock
	h     *Handle // u-SCL grants; nil for RW grants
	mode  int
	start time.Duration
}

const (
	modeLock = iota
	modeRLock
	modeWLock
)

// Lock acquires the key's u-SCL mutex on behalf of the tenant, blocking
// through any table-level ban (the penalty for past over-use on this
// stripe) and then through the key lock's own SCL discipline. It panics
// on an RW table or a closed tenant.
func (t *Tenant) Lock(key string) *Grant {
	g, _ := t.acquire(nil, key, modeLock)
	return g
}

// LockContext is Lock bounded by a context: cancellation interrupts
// both the table-level ban sleep and the key lock's queue, and the key
// is not held on error.
func (t *Tenant) LockContext(ctx context.Context, key string) (*Grant, error) {
	return t.acquire(ctx, key, modeLock)
}

// RLock acquires the key's RW-SCL for reading (RW tables only).
func (t *Tenant) RLock(key string) *Grant {
	g, _ := t.acquire(nil, key, modeRLock)
	return g
}

// RLockContext is RLock bounded by a context.
func (t *Tenant) RLockContext(ctx context.Context, key string) (*Grant, error) {
	return t.acquire(ctx, key, modeRLock)
}

// WLock acquires the key's RW-SCL for writing (RW tables only).
func (t *Tenant) WLock(key string) *Grant {
	g, _ := t.acquire(nil, key, modeWLock)
	return g
}

// WLockContext is WLock bounded by a context.
func (t *Tenant) WLockContext(ctx context.Context, key string) (*Grant, error) {
	return t.acquire(ctx, key, modeWLock)
}

func (t *Tenant) acquire(ctx context.Context, key string, mode int) (*Grant, error) {
	m := t.m
	if t.closed.Load() {
		panic("scl: operation on closed Tenant")
	}
	if (mode == modeLock) == m.opts.RW {
		if m.opts.RW {
			panic("scl: Lock on an RW Manager (use RLock/WLock)")
		}
		panic("scl: RLock/WLock on a mutex Manager (use Lock)")
	}
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		done = ctx.Done()
	}
	s := m.stripeOf(key)
	check.Point("mgr.stripe")
	// Serve any outstanding table-level ban before touching the key: the
	// stripe books' penalty is imposed at acquire, exactly like the
	// single-lock rule (§4.2), and the sleep happens outside the stripe
	// mutex so banned tenants never block the table.
	for {
		lockMutex(&s.mu)
		now := monotime()
		s.ensureTenantLocked(t, now)
		until := s.books.BannedUntil(t.id)
		if until <= now {
			break // proceed, still holding s.mu
		}
		unlockMutex(&s.mu)
		if done == nil {
			if !check.Sleep(until - now) {
				time.Sleep(until - now)
			}
			continue
		}
		if cancelled, handled := check.SleepOrDone(until-now, done); handled {
			if cancelled {
				return nil, ctx.Err()
			}
			continue
		}
		tm := time.NewTimer(until - now)
		select {
		case <-tm.C:
		case <-done:
			tm.Stop()
			return nil, ctx.Err()
		}
	}
	now := monotime()
	ml := s.keys[key]
	if ml == nil {
		ml = s.materializeLocked(m, key, now)
	}
	ml.lastUsed = now
	ml.inflight++
	s.inflight[t.id]++
	var h *Handle
	if mode == modeLock {
		h = ml.takeHandleLocked(t)
	}
	unlockMutex(&s.mu)
	// Block on the key lock outside the stripe mutex: the key's queue and
	// slice discipline must never serialize unrelated keys of the stripe.
	var err error
	switch mode {
	case modeLock:
		if ctx == nil {
			h.Lock()
		} else {
			err = h.LockContext(ctx)
		}
	case modeRLock:
		if ctx == nil {
			ml.rw.RLock()
		} else {
			err = ml.rw.RLockContext(ctx)
		}
	case modeWLock:
		if ctx == nil {
			ml.rw.WLock()
		} else {
			err = ml.rw.WLockContext(ctx)
		}
	}
	if err != nil {
		lockMutex(&s.mu)
		if h != nil {
			ml.putHandleLocked(t, h)
		}
		ml.inflight--
		s.decInflightLocked(t.id)
		unlockMutex(&s.mu)
		return nil, err
	}
	return &Grant{t: t, s: s, ml: ml, h: h, mode: mode, start: monotime()}, nil
}

// Unlock releases the granted key lock and books the grant's wall-clock
// hold window against the tenant's stripe accounts (Accountant.
// ChargeWindow): if the window pushed the tenant past its table-wide
// share, the resulting ban is served at the tenant's next acquire on
// this stripe. Each concurrent grant books its own window — a tenant
// holding many keys at once pays for each of them.
func (g *Grant) Unlock() {
	if g.ml == nil {
		panic("scl: Unlock of a released Grant")
	}
	now := monotime()
	hold := now - g.start
	if hold < 0 {
		hold = 0
	}
	switch g.mode {
	case modeLock:
		g.h.Unlock()
	case modeRLock:
		g.ml.rw.RUnlock()
	case modeWLock:
		g.ml.rw.WUnlock()
	}
	check.Point("mgr.release")
	s, t := g.s, g.t
	lockMutex(&s.mu)
	if g.h != nil {
		g.ml.putHandleLocked(t, g.h)
	}
	g.ml.inflight--
	g.ml.lastUsed = now
	s.decInflightLocked(t.id)
	pen := s.books.ChargeWindow(t.id, hold, now)
	if st := s.stats[t.id]; st != nil {
		st.grants++
		st.hold += hold
		st.lastAt = now
		if pen > 0 {
			st.bans++
			st.banTime += pen
		}
	}
	s.maybeReapLocked(g.t.m, now)
	if t.closed.Load() && s.inflight[t.id] == 0 {
		s.dropTenantLocked(t.id)
	}
	unlockMutex(&s.mu)
	g.ml = nil
	g.h = nil
	g.s = nil
}

// Close unregisters the tenant from every stripe: pooled handles close,
// its weight leaves the books, and survivors' shares grow immediately.
// Grants still in flight complete normally — their release settles the
// last of the tenant's state — but new acquisitions panic. Close is
// idempotent and safe to call while the tenant's releases are racing.
func (t *Tenant) Close() {
	if t.closed.Swap(true) {
		return
	}
	check.Point("mgr.close")
	m := t.m
	for i := range m.stripes {
		s := &m.stripes[i]
		lockMutex(&s.mu)
		for _, ml := range s.keys {
			ml.closeTenantLocked(t.id)
		}
		if s.inflight[t.id] == 0 {
			s.dropTenantLocked(t.id)
		}
		unlockMutex(&s.mu)
	}
}

// ensureTenantLocked (re-)registers the tenant in the stripe books —
// cheap when already present (a weight refresh) — and keeps a stats
// entry alive for it.
func (s *stripe) ensureTenantLocked(t *Tenant, now time.Duration) {
	s.books.Register(t.id, t.weight, now)
	st := s.stats[t.id]
	if st == nil {
		st = &tenantStat{name: t.name, weight: t.weight}
		s.stats[t.id] = st
	}
	st.lastAt = now
}

func (s *stripe) decInflightLocked(id core.ID) {
	if v := s.inflight[id] - 1; v > 0 {
		s.inflight[id] = v
	} else {
		delete(s.inflight, id)
	}
}

// dropTenantLocked removes a closed tenant's stripe state once nothing
// is in flight. An unserved ban dies with the identity: the tenant is
// gone, and a successor registers under a fresh ID through the
// join-credit floor, so the departure cannot be farmed.
func (s *stripe) dropTenantLocked(id core.ID) {
	s.books.Unregister(id)
	delete(s.stats, id)
}

// materializeLocked creates the key's lock on first use. Per-key
// accounting starts fresh; the stripe-level tenant books are untouched,
// so materialization (like re-materialization after a reap) never
// changes anyone's table-wide standing.
func (s *stripe) materializeLocked(m *Manager, key string, now time.Duration) *managedLock {
	check.Point("mgr.materialize")
	ml := &managedLock{key: key, pools: make(map[core.ID]*tenantPool), lastUsed: now}
	lo := m.opts.Lock
	lo.Name = key
	if m.opts.RW {
		rweight, wweight := m.opts.ReadWeight, m.opts.WriteWeight
		if rweight <= 0 {
			rweight = 1
		}
		if wweight <= 0 {
			wweight = 1
		}
		var ro []Option
		if lo.InactiveTimeout > 0 {
			ro = append(ro, WithInactiveGC(lo.InactiveTimeout))
		}
		ml.rw = NewRWLock(rweight, wweight, lo.sliceLen(), append(ro, WithName(key))...)
		if lo.Tracer != nil {
			ml.rw.SetTracer(lo.Tracer)
		}
	} else {
		ml.mu = NewMutex(lo)
	}
	s.keys[key] = ml
	s.materialized++
	return ml
}

// takeHandleLocked checks a sibling handle out of the tenant's pool on
// this key, registering the tenant with the key lock on first touch.
func (ml *managedLock) takeHandleLocked(t *Tenant) *Handle {
	pool := ml.pools[t.id]
	if pool == nil {
		seed := ml.mu.RegisterWeight(t.weight)
		if t.name != "" {
			seed.SetName(t.name)
		}
		pool = &tenantPool{seed: seed}
		ml.pools[t.id] = pool
	}
	pool.out++
	if n := len(pool.free); n > 0 {
		h := pool.free[n-1]
		pool.free = pool.free[:n-1]
		return h
	}
	return pool.seed.Sibling()
}

// putHandleLocked returns a checked-out handle. For a closed tenant the
// handle (and, once nothing is out, the whole pool) is dismantled
// instead, finishing what Tenant.Close started.
func (ml *managedLock) putHandleLocked(t *Tenant, h *Handle) {
	pool := ml.pools[t.id]
	if pool == nil {
		h.Close() // pool dismantled mid-flight (tenant closed)
		return
	}
	pool.out--
	if t.closed.Load() {
		h.Close()
		if pool.out == 0 {
			pool.seed.Close()
			delete(ml.pools, t.id)
		}
		return
	}
	pool.free = append(pool.free, h)
}

// closeTenantLocked dismantles the tenant's pool on this key as far as
// in-flight grants allow; putHandleLocked finishes the rest.
func (ml *managedLock) closeTenantLocked(id core.ID) {
	pool := ml.pools[id]
	if pool == nil {
		return
	}
	for _, h := range pool.free {
		h.Close()
	}
	pool.free = nil
	if pool.out == 0 {
		pool.seed.Close()
		delete(ml.pools, id)
	}
}

// closeLocked dismantles an idle key lock (reap path: nothing in
// flight, so every pool's handles are home).
func (ml *managedLock) closeLocked() {
	for id, pool := range ml.pools {
		for _, h := range pool.free {
			h.Close()
		}
		pool.seed.Close()
		delete(ml.pools, id)
	}
}

// maybeReapLocked runs the lazy, rate-limited GC sweep of one stripe:
// idle key locks are dismantled (LockIdle) and idle tenant identities
// expire from the books (TenantIdle). Piggybacked on releases, like the
// single-lock reaper — a stripe nobody releases on never scans.
func (s *stripe) maybeReapLocked(m *Manager, now time.Duration) {
	lockIdle, tenantIdle := m.opts.LockIdle, m.opts.TenantIdle
	if lockIdle <= 0 && tenantIdle <= 0 {
		return
	}
	if now < s.nextReap {
		return
	}
	interval := lockIdle
	if interval <= 0 || (tenantIdle > 0 && tenantIdle < interval) {
		interval = tenantIdle
	}
	s.nextReap = now + interval/4
	check.Point("mgr.reap")
	if lockIdle > 0 {
		for key, ml := range s.keys {
			if ml.inflight != 0 || now-ml.lastUsed < lockIdle {
				continue
			}
			ml.closeLocked()
			delete(s.keys, key)
			s.locksReaped++
		}
	}
	if tenantIdle > 0 {
		reaped := s.books.ExpireInactive(now, func(id core.ID) bool {
			return s.inflight[id] > 0
		})
		for _, r := range reaped {
			delete(s.stats, r.ID)
			s.tenantsReaped++
		}
	}
}

// ManagerStats is a point-in-time snapshot of a Manager, aggregated
// across stripes. Per-tenant counters cover currently tracked tenants:
// identities expired by the TenantIdle GC (or closed) leave the
// per-tenant rows, exactly as reaped entities leave StatsSnapshot.
type ManagerStats struct {
	// Name is the manager's configured label; Stripes its stripe count.
	Name    string
	Stripes int
	// Keys is the number of currently materialized key locks;
	// Materialized and LocksReaped count materializations and lock reaps
	// since creation (Keys = Materialized − LocksReaped).
	Keys         int
	Materialized int64
	LocksReaped  int64
	// Identities is Σ over stripes of registered tenant identities (one
	// tenant counts once per stripe it is active on); TenantsReaped
	// counts identities expired by the TenantIdle GC.
	Identities    int
	TenantsReaped int64
	// Grants is the total number of completed grants.
	Grants int64
	// Tenants holds the per-tenant aggregates, sorted by descending hold.
	Tenants []ManagerTenantStats
}

// ManagerTenantStats aggregates one tenant's activity across all
// stripes of a Manager.
type ManagerTenantStats struct {
	// ID and Name identify the tenant; Weight is its scheduling weight.
	ID     int64
	Name   string
	Weight int64
	// Grants and Hold are completed grants and their summed hold windows.
	Grants int64
	Hold   time.Duration
	// Bans counts table-level penalties drawn; BanTime is their sum.
	Bans    int64
	BanTime time.Duration
	// Inflight is the tenant's grants currently in flight.
	Inflight int
	// HoldShare is this tenant's fraction of all tenants' hold time.
	HoldShare float64
}

// Stats snapshots the manager. It takes each stripe mutex in turn (not
// all at once), so the snapshot is internally consistent per stripe and
// approximately consistent table-wide.
func (m *Manager) Stats() ManagerStats {
	out := ManagerStats{Name: m.opts.Name, Stripes: len(m.stripes)}
	agg := make(map[core.ID]*ManagerTenantStats)
	for i := range m.stripes {
		s := &m.stripes[i]
		lockMutex(&s.mu)
		s.maybeReapLocked(m, monotime()) // snapshots drive the lazy GC, like Mutex.Stats
		out.Keys += len(s.keys)
		out.Materialized += s.materialized
		out.LocksReaped += s.locksReaped
		out.Identities += s.books.Len()
		out.TenantsReaped += s.tenantsReaped
		for id, st := range s.stats {
			a := agg[id]
			if a == nil {
				a = &ManagerTenantStats{ID: int64(id), Name: st.name, Weight: st.weight}
				agg[id] = a
			}
			a.Grants += st.grants
			a.Hold += st.hold
			a.Bans += st.bans
			a.BanTime += st.banTime
			a.Inflight += s.inflight[id]
			out.Grants += st.grants
		}
		unlockMutex(&s.mu)
	}
	var total time.Duration
	for _, a := range agg {
		total += a.Hold
	}
	for _, a := range agg {
		if total > 0 {
			a.HoldShare = float64(a.Hold) / float64(total)
		}
		out.Tenants = append(out.Tenants, *a)
	}
	sort.Slice(out.Tenants, func(i, j int) bool {
		if out.Tenants[i].Hold != out.Tenants[j].Hold {
			return out.Tenants[i].Hold > out.Tenants[j].Hold
		}
		return out.Tenants[i].ID < out.Tenants[j].ID
	})
	return out
}

// Tenant returns the row for one tenant ID (ok=false if not tracked).
func (s ManagerStats) Tenant(id int64) (ManagerTenantStats, bool) {
	for _, t := range s.Tenants {
		if t.ID == id {
			return t, true
		}
	}
	return ManagerTenantStats{}, false
}

// JainHold computes Jain's fairness index over the named tenants' hold
// times (all tracked tenants when no IDs are given).
func (s ManagerStats) JainHold(ids ...int64) float64 {
	var xs []float64
	if len(ids) == 0 {
		for _, t := range s.Tenants {
			xs = append(xs, float64(t.Hold))
		}
	} else {
		for _, id := range ids {
			t, _ := s.Tenant(id)
			xs = append(xs, float64(t.Hold))
		}
	}
	return metrics.Jain(xs)
}

// Keys returns the number of currently materialized key locks.
func (m *Manager) Keys() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		lockMutex(&s.mu)
		n += len(s.keys)
		unlockMutex(&s.mu)
	}
	return n
}

// CheckInvariants verifies the manager's cross-layer bookkeeping and
// returns the first violation: every stripe's books pass the accountant
// invariants, in-flight counts agree between the key and tenant views,
// handle pools are consistent, and every materialized lock passes its
// own invariant check. O(table); for tests and scldebug builds.
func (m *Manager) CheckInvariants() error {
	for i := range m.stripes {
		s := &m.stripes[i]
		lockMutex(&s.mu)
		err := s.checkLocked(i)
		unlockMutex(&s.mu)
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *stripe) checkLocked(i int) error {
	if err := s.books.CheckInvariants(); err != nil {
		return fmt.Errorf("scl: stripe %d books: %w", i, err)
	}
	keyFlight, tenFlight := 0, 0
	for key, ml := range s.keys {
		if ml.inflight < 0 {
			return fmt.Errorf("scl: stripe %d key %q inflight %d < 0", i, key, ml.inflight)
		}
		keyFlight += ml.inflight
		for id, pool := range ml.pools {
			if pool.out < 0 {
				return fmt.Errorf("scl: stripe %d key %q tenant %d pool out %d < 0", i, key, id, pool.out)
			}
		}
		var err error
		if ml.mu != nil {
			err = ml.mu.CheckInvariants()
		} else {
			err = ml.rw.CheckInvariants()
		}
		if err != nil {
			return fmt.Errorf("scl: stripe %d key %q: %w", i, key, err)
		}
	}
	for id, n := range s.inflight {
		if n <= 0 {
			return fmt.Errorf("scl: stripe %d tenant %d inflight %d <= 0", i, id, n)
		}
		tenFlight += n
	}
	if keyFlight != tenFlight {
		return fmt.Errorf("scl: stripe %d inflight mismatch: keys %d, tenants %d", i, keyFlight, tenFlight)
	}
	return nil
}
