package scl

import (
	"testing"
	"time"
)

// newTestStats returns a lockStats with a zeroed clock so tests can drive
// it with synthetic timestamps.
func newTestStats() *lockStats {
	s := &lockStats{}
	s.init()
	s.idleStart = 0
	s.started = 0
	return s
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// Idle accounting when multiple readers of distinct entities hold
// concurrently (the RW case): idle must accrue only while the holder
// count is zero, and each entity must be credited its own full hold.
func TestLockStatsIdleUnderReaderOverlap(t *testing.T) {
	s := newTestStats()
	// r1 holds [1,4), r2 holds [2,6): lock busy [1,6), idle [0,1) ∪ [6,8).
	s.onAcquire(1, "r1", ms(1), 0)
	s.onAcquire(2, "r2", ms(2), 0)
	s.onRelease(1, ms(4))
	s.onRelease(2, ms(6))
	snap := s.snapshot(ms(8))
	if snap.Idle != ms(3) {
		t.Fatalf("idle = %v, want 3ms (1ms before + 2ms after the overlap)", snap.Idle)
	}
	if snap.Hold[1] != ms(3) || snap.Hold[2] != ms(4) {
		t.Fatalf("holds = %v / %v, want 3ms / 4ms", snap.Hold[1], snap.Hold[2])
	}
	if snap.Elapsed != ms(8) {
		t.Fatalf("elapsed = %v", snap.Elapsed)
	}
}

// Regression: overlapping holds by the SAME entity (several readers of
// one class, or siblings of one group). The old map-of-start-times
// implementation overwrote the first hold's start and dropped the second
// release entirely, crediting 1ms of the true 4ms.
func TestLockStatsSameEntityOverlapHold(t *testing.T) {
	s := newTestStats()
	// Two holds of entity 1: [0,2) and [1,3). Σ individual holds = 4ms.
	s.onAcquire(1, "", ms(0), 0)
	s.onAcquire(1, "", ms(1), 0)
	s.onRelease(1, ms(2))
	s.onRelease(1, ms(3))
	snap := s.snapshot(ms(3))
	if snap.Hold[1] != ms(4) {
		t.Fatalf("hold = %v, want 4ms (Σ of overlapping holds)", snap.Hold[1])
	}
	if snap.Idle != 0 {
		t.Fatalf("idle = %v, want 0 while held", snap.Idle)
	}
	// The per-op sample is the union interval [0,3).
	if d := snap.HoldDist[1]; d.Count != 1 || d.Max != ms(3) {
		t.Fatalf("hold dist = %+v, want one 3ms union sample", d)
	}
}

// An in-flight hold at snapshot time is charged up to the snapshot.
func TestLockStatsInFlightHold(t *testing.T) {
	s := newTestStats()
	s.onAcquire(7, "held", ms(2), ms(1))
	snap := s.snapshot(ms(5))
	if snap.Hold[7] != ms(3) {
		t.Fatalf("in-flight hold = %v, want 3ms", snap.Hold[7])
	}
	if snap.Idle != ms(2) {
		t.Fatalf("idle = %v, want the 2ms before the acquire", snap.Idle)
	}
	if snap.Names[7] != "held" {
		t.Fatalf("names = %v", snap.Names)
	}
	if d := snap.WaitDist[7]; d.Count != 1 || d.Max != ms(1) {
		t.Fatalf("wait dist = %+v, want one 1ms sample", d)
	}
}

func TestLockStatsBanAndHandoffCounters(t *testing.T) {
	s := newTestStats()
	s.onBan(3, ms(10))
	s.onBan(3, ms(5))
	s.onHandoff(3)
	snap := s.snapshot(ms(1))
	if snap.Bans[3] != 2 || snap.BanTime[3] != ms(15) {
		t.Fatalf("bans = %d / %v, want 2 / 15ms", snap.Bans[3], snap.BanTime[3])
	}
	if snap.Handoffs[3] != 1 {
		t.Fatalf("handoffs = %d", snap.Handoffs[3])
	}
	if len(snap.IDs()) != 1 {
		t.Fatalf("IDs = %v", snap.IDs())
	}
}
