package export_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"

	"scl"
	"scl/export"
)

// Serve lock metrics in the Prometheus text exposition format. In a real
// program, mount the handler on your existing mux:
//
//	http.Handle("/metrics", registry.MetricsHandler())
func ExampleRegistry_MetricsHandler() {
	m := scl.NewMutex(scl.Options{Name: "db"})
	h := m.Register().SetName("worker")
	h.Lock()
	h.Unlock()

	reg := export.NewRegistry()
	reg.RegisterMutex("", m) // "" = use the lock's own name

	srv := httptest.NewServer(reg.MetricsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)

	// Entity IDs are assigned process-wide; redact for a stable example.
	id := regexp.MustCompile(`entity_id="\d+"`)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "scl_entity_acquisitions_total") {
			fmt.Println(id.ReplaceAllString(line, `entity_id="N"`))
		}
	}
	// Output:
	// scl_entity_acquisitions_total{entity="worker",entity_id="N",lock="db"} 1
}
