package export

import (
	"encoding/json"
	"expvar"
	"net/http"
)

// PublishExpvar publishes the registry under the given key in the
// process's expvar map, so the snapshot appears in /debug/vars next to
// the runtime's memstats. Like expvar.Publish, it panics if the key is
// already in use — call once per registry, at startup.
func (r *Registry) PublishExpvar(key string) {
	expvar.Publish(key, expvar.Func(func() any { return r.Snapshot() }))
}

// VarsHandler serves the Snapshot as a raw JSON document: the endpoint
// cmd/scltop polls for its live view. Mount it anywhere, e.g.
//
//	http.Handle("/debug/scl", registry.VarsHandler())
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
