// Package export turns the scl locks' usage accounting into continuously
// scrapeable metrics, using only the standard library: register locks
// (and trace rings) in a Registry, then expose them through
//
//   - MetricsHandler — Prometheus text exposition (per-lock and
//     per-entity counters, hold/wait quantiles, Jain fairness),
//   - VarsHandler / PublishExpvar — a JSON snapshot, also consumable by
//     cmd/scltop's live view,
//
// so a production service can watch lock opportunity, ban time and
// fairness per entity in real time — the paper's §2.3 measurements as
// live metrics rather than post-hoc reports.
package export

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scl"
	"scl/trace"
)

// Registry holds named metric sources. The zero value is unusable;
// create with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	mutexes  []namedSource[func() scl.StatsSnapshot]
	rwlocks  []namedSource[func() scl.RWStats]
	managers []namedSource[func() scl.ManagerStats]
	rings    []namedSource[*trace.Ring]
}

type namedSource[T any] struct {
	name string
	src  T
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func pick(name, fallback string, n int) string {
	if name != "" {
		return name
	}
	if fallback != "" {
		return fallback
	}
	return fmt.Sprintf("lock-%d", n)
}

// RegisterMutex adds a Mutex under the given name (falling back to the
// lock's Options.Name, then to a positional label).
func (r *Registry) RegisterMutex(name string, m *scl.Mutex) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mutexes = append(r.mutexes, namedSource[func() scl.StatsSnapshot]{
		name: pick(name, m.Name(), len(r.mutexes)), src: m.Stats})
}

// RegisterRWLock adds an RWLock under the given name.
func (r *Registry) RegisterRWLock(name string, l *scl.RWLock) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rwlocks = append(r.rwlocks, namedSource[func() scl.RWStats]{
		name: pick(name, l.Name(), len(r.rwlocks)), src: l.Stats})
}

// RegisterManager adds a lock Manager (a keyed lock table) under the
// given name; its table-level by-tenant aggregates are exported
// alongside the single-lock metrics.
func (r *Registry) RegisterManager(name string, m *scl.Manager) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.managers = append(r.managers, namedSource[func() scl.ManagerStats]{
		name: pick(name, m.Name(), len(r.managers)), src: m.Stats})
}

// RegisterRing adds a trace ring so its volume and drop counters are
// exported alongside the lock metrics.
func (r *Registry) RegisterRing(name string, ring *trace.Ring) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rings = append(r.rings, namedSource[*trace.Ring]{
		name: pick(name, "", len(r.rings)), src: ring})
}

// Snapshot is a point-in-time JSON-serializable view of every registered
// source: the wire format of VarsHandler and the input of cmd/scltop.
type Snapshot struct {
	Locks    []LockSnapshot    `json:"locks,omitempty"`
	RWLocks  []RWLockSnapshot  `json:"rwlocks,omitempty"`
	Managers []ManagerSnapshot `json:"managers,omitempty"`
	Rings    []RingSnapshot    `json:"rings,omitempty"`
}

// LockSnapshot is one Mutex's accounting.
type LockSnapshot struct {
	Name string `json:"name"`
	// Elapsed is time since lock creation; Idle the total unheld time.
	Elapsed time.Duration `json:"elapsed"`
	Idle    time.Duration `json:"idle"`
	// JainHold and JainLOT are Jain's fairness index over the entities'
	// hold times and lock opportunity times (paper §3.2).
	JainHold float64 `json:"jainHold"`
	JainLOT  float64 `json:"jainLOT"`
	// Registered is the number of entities currently registered in the
	// lock's accounting (the active set, when the inactive-entity GC is
	// on); Reaped counts entities the GC has removed since creation.
	Registered int   `json:"registered"`
	Reaped     int64 `json:"reaped,omitempty"`
	// Entities, sorted by descending hold time.
	Entities []EntitySnapshot `json:"entities,omitempty"`
}

// EntitySnapshot is one entity's accounting within a lock.
type EntitySnapshot struct {
	ID   int64  `json:"id"`
	Name string `json:"name,omitempty"`
	// Label is Name, or a stable synthetic label when unnamed.
	Label        string        `json:"label"`
	Acquisitions int64         `json:"acquisitions"`
	Hold         time.Duration `json:"hold"`
	// LOT is the lock opportunity time: own hold + lock idle (eq. 1).
	LOT      time.Duration `json:"lot"`
	Bans     int64         `json:"bans"`
	BanTime  time.Duration `json:"banTime"`
	Handoffs int64         `json:"handoffs"`
	// Cancels counts abandoned acquisitions: LockContext calls that
	// returned ctx.Err() from the ban sleep or the waiter queue.
	Cancels int64 `json:"cancels"`
	// Combines counts sections this entity executed for others while
	// releasing (Handle.Do batches it drained); Combined counts the
	// entity's own sections a combiner ran on its behalf. Combined
	// sections are already included in Acquisitions and Hold.
	Combines int64 `json:"combines,omitempty"`
	Combined int64 `json:"combined,omitempty"`
	// Per-operation hold and wait quantiles from reservoir samples.
	HoldP50 time.Duration `json:"holdP50"`
	HoldP99 time.Duration `json:"holdP99"`
	WaitP50 time.Duration `json:"waitP50"`
	WaitP99 time.Duration `json:"waitP99"`
}

// RWLockSnapshot is one RWLock's class accounting.
type RWLockSnapshot struct {
	Name       string        `json:"name"`
	Elapsed    time.Duration `json:"elapsed"`
	Idle       time.Duration `json:"idle"`
	ReaderHold time.Duration `json:"readerHold"`
	WriterHold time.Duration `json:"writerHold"`
	ReaderOps  int64         `json:"readerOps"`
	WriterOps  int64         `json:"writerOps"`
	// ReaderCancels and WriterCancels count abandoned acquisitions per
	// class (RLockContext / WLockContext returning ctx.Err()).
	ReaderCancels int64 `json:"readerCancels"`
	WriterCancels int64 `json:"writerCancels"`
	// WriterCombined counts writer sections executed by a releasing
	// writer on the publisher's behalf (RWLock.Do); they are already
	// included in WriterOps and WriterHold.
	WriterCombined int64 `json:"writerCombined,omitempty"`
}

// ManagerSnapshot is one lock Manager's table-level accounting: the
// table shape (stripes, live keys, GC counters) plus per-tenant
// aggregates across every key of the table.
type ManagerSnapshot struct {
	Name    string `json:"name"`
	Stripes int    `json:"stripes"`
	// Keys is the live materialized-lock count; Materialized and
	// LocksReaped count materializations and lock reaps since creation.
	Keys         int   `json:"keys"`
	Materialized int64 `json:"materialized"`
	LocksReaped  int64 `json:"locksReaped,omitempty"`
	// Identities is the registered tenant-identity count summed over
	// stripes; TenantsReaped counts identities expired by the tenant GC.
	Identities    int   `json:"identities"`
	TenantsReaped int64 `json:"tenantsReaped,omitempty"`
	// Grants is the total number of completed grants.
	Grants int64 `json:"grants"`
	// JainHold is Jain's fairness index over the tenants' hold times.
	JainHold float64 `json:"jainHold"`
	// Tenants, sorted by descending hold time.
	Tenants []TenantSnapshot `json:"tenants,omitempty"`
}

// TenantSnapshot is one tenant's table-wide accounting within a
// Manager.
type TenantSnapshot struct {
	ID   int64  `json:"id"`
	Name string `json:"name,omitempty"`
	// Label is Name, or a stable synthetic label when unnamed.
	Label  string `json:"label"`
	Weight int64  `json:"weight"`
	// Grants counts completed grants; Hold sums their hold windows.
	Grants int64         `json:"grants"`
	Hold   time.Duration `json:"hold"`
	// HoldShare is the tenant's fraction of all tenants' hold time.
	HoldShare float64 `json:"holdShare"`
	// Bans counts table-level penalties drawn; BanTime is their sum.
	Bans    int64         `json:"bans"`
	BanTime time.Duration `json:"banTime"`
	// Inflight is the tenant's grants currently in flight.
	Inflight int `json:"inflight,omitempty"`
}

// RingSnapshot is one trace ring's volume accounting.
type RingSnapshot struct {
	Name    string `json:"name"`
	Cap     int    `json:"cap"`
	Seen    uint64 `json:"seen"`
	Dropped uint64 `json:"dropped"`
}

// Snapshot collects a snapshot of every registered source.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	mutexes := append([]namedSource[func() scl.StatsSnapshot](nil), r.mutexes...)
	rwlocks := append([]namedSource[func() scl.RWStats](nil), r.rwlocks...)
	managers := append([]namedSource[func() scl.ManagerStats](nil), r.managers...)
	rings := append([]namedSource[*trace.Ring](nil), r.rings...)
	r.mu.Unlock()

	var snap Snapshot
	for _, m := range mutexes {
		snap.Locks = append(snap.Locks, lockSnapshot(m.name, m.src()))
	}
	for _, l := range rwlocks {
		s := l.src()
		snap.RWLocks = append(snap.RWLocks, RWLockSnapshot{
			Name:           l.name,
			Elapsed:        s.Elapsed,
			Idle:           s.Idle,
			ReaderHold:     s.ReaderHold,
			WriterHold:     s.WriterHold,
			ReaderOps:      s.ReaderOps,
			WriterOps:      s.WriterOps,
			ReaderCancels:  s.ReaderCancels,
			WriterCancels:  s.WriterCancels,
			WriterCombined: s.WriterCombined,
		})
	}
	for _, m := range managers {
		snap.Managers = append(snap.Managers, managerSnapshot(m.name, m.src()))
	}
	for _, g := range rings {
		snap.Rings = append(snap.Rings, RingSnapshot{
			Name:    g.name,
			Cap:     g.src.Cap(),
			Seen:    g.src.Seen(),
			Dropped: g.src.Dropped(),
		})
	}
	return snap
}

func managerSnapshot(name string, s scl.ManagerStats) ManagerSnapshot {
	ms := ManagerSnapshot{
		Name:          name,
		Stripes:       s.Stripes,
		Keys:          s.Keys,
		Materialized:  s.Materialized,
		LocksReaped:   s.LocksReaped,
		Identities:    s.Identities,
		TenantsReaped: s.TenantsReaped,
		Grants:        s.Grants,
		JainHold:      s.JainHold(),
	}
	for _, t := range s.Tenants {
		label := t.Name
		if label == "" {
			label = fmt.Sprintf("tenant-%d", t.ID)
		}
		ms.Tenants = append(ms.Tenants, TenantSnapshot{
			ID:        t.ID,
			Name:      t.Name,
			Label:     label,
			Weight:    t.Weight,
			Grants:    t.Grants,
			Hold:      t.Hold,
			HoldShare: t.HoldShare,
			Bans:      t.Bans,
			BanTime:   t.BanTime,
			Inflight:  t.Inflight,
		})
	}
	return ms
}

func lockSnapshot(name string, s scl.StatsSnapshot) LockSnapshot {
	ids := s.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ls := LockSnapshot{
		Name:       name,
		Elapsed:    s.Elapsed,
		Idle:       s.Idle,
		JainHold:   s.JainHold(ids...),
		JainLOT:    s.JainLOT(ids...),
		Registered: s.Registered,
		Reaped:     s.Reaped,
	}
	for _, id := range ids {
		label := s.Names[id]
		if label == "" {
			label = fmt.Sprintf("entity-%d", id)
		}
		ls.Entities = append(ls.Entities, EntitySnapshot{
			ID:           id,
			Name:         s.Names[id],
			Label:        label,
			Acquisitions: s.Acquisitions[id],
			Hold:         s.Hold[id],
			LOT:          s.LOT(id),
			Bans:         s.Bans[id],
			BanTime:      s.BanTime[id],
			Handoffs:     s.Handoffs[id],
			Cancels:      s.Cancels[id],
			Combines:     s.Combines[id],
			Combined:     s.Combined[id],
			HoldP50:      s.HoldDist[id].P50,
			HoldP99:      s.HoldDist[id].P99,
			WaitP50:      s.WaitDist[id].P50,
			WaitP99:      s.WaitDist[id].P99,
		})
	}
	sort.SliceStable(ls.Entities, func(i, j int) bool {
		return ls.Entities[i].Hold > ls.Entities[j].Hold
	})
	return ls
}
