package export

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"scl"
	"scl/trace"
)

// run2 drives a hog (long CS) and a light thread (short CS) through one
// traced mutex for the given wall time and returns everything the
// observability stack produced.
func run2(t *testing.T, dur time.Duration) (*Registry, *trace.Ring, *scl.Mutex) {
	t.Helper()
	ring := trace.NewRing(1 << 12)
	m := scl.NewMutex(scl.Options{Name: "db", Slice: time.Millisecond, Tracer: ring})
	hog := m.Register().SetName("hog")
	light := m.Register().SetName("light")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	work := func(h *scl.Handle, cs time.Duration) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Lock()
			busyFor(cs)
			h.Unlock()
		}
	}
	wg.Add(2)
	go work(hog, 1*time.Millisecond)
	go work(light, 100*time.Microsecond)
	time.Sleep(dur)
	close(stop)
	wg.Wait()

	r := NewRegistry()
	r.RegisterMutex("", m)
	r.RegisterRing("db-ring", ring)
	return r, ring, m
}

// busyFor spins (rather than sleeps) so critical-section length is not
// quantized by timer resolution.
func busyFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// The acceptance scenario: a 2-entity contended run must surface the
// paper's imbalance signal — per-operation hold times differing by the
// critical-section ratio — in the snapshot, in the ring events, and in
// the Prometheus exposition, while LOT stays balanced (the SCL at work).
func TestImbalanceSignalEndToEnd(t *testing.T) {
	r, ring, _ := run2(t, 150*time.Millisecond)

	snap := r.Snapshot()
	if len(snap.Locks) != 1 || len(snap.Locks[0].Entities) != 2 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	l := snap.Locks[0]
	if l.Name != "db" {
		t.Fatalf("lock name %q", l.Name)
	}
	var hog, light EntitySnapshot
	for _, e := range l.Entities {
		switch e.Name {
		case "hog":
			hog = e
		case "light":
			light = e
		}
	}
	if hog.Acquisitions == 0 || light.Acquisitions == 0 {
		t.Fatalf("both entities must run: hog %d, light %d", hog.Acquisitions, light.Acquisitions)
	}
	// Hold-time imbalance: the hog's critical sections are ~10× longer.
	if light.HoldP50 <= 0 || float64(hog.HoldP50)/float64(light.HoldP50) < 3 {
		t.Fatalf("per-op hold ratio %v / %v not clearly imbalanced", hog.HoldP50, light.HoldP50)
	}
	// Lock-opportunity balance: the SCL keeps LOT roughly proportional.
	if l.JainLOT < 0.8 {
		t.Errorf("Jain(LOT) = %.3f, want the SCL holding it near 1", l.JainLOT)
	}

	// The same signal from the ring events, through the replay path.
	locks := trace.Aggregate(ring.Events())
	if len(locks) != 1 {
		t.Fatalf("aggregated %d locks", len(locks))
	}
	agg := locks[0]
	var hogT, lightT *trace.EntityTotals
	for _, e := range agg.Entities {
		switch e.Label {
		case "hog":
			hogT = e
		case "light":
			lightT = e
		}
	}
	if hogT == nil || lightT == nil {
		t.Fatalf("aggregate entities: %+v", agg.Entities)
	}
	if len(hogT.Holds) == 0 || len(lightT.Holds) == 0 {
		t.Fatal("no per-op hold samples in the trace")
	}
	if hogT.Hold <= lightT.Hold/2 {
		t.Fatalf("trace hold totals hog %v light %v", hogT.Hold, lightT.Hold)
	}

	// And in the Prometheus exposition.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`scl_lock_jain_lot{lock="db"}`,
		`scl_entity_hold_seconds_total{entity="hog",entity_id=`,
		`scl_entity_hold_seconds{entity="hog",entity_id=`,
		`quantile="0.99"`,
		`scl_entity_lock_opportunity_seconds{entity="light"`,
		`scl_trace_events_total{ring="db-ring"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestPrometheusHandlerAndContentType(t *testing.T) {
	r, _, _ := run2(t, 20*time.Millisecond)
	srv := httptest.NewServer(r.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "# TYPE scl_lock_jain_hold gauge") {
		t.Fatalf("exposition:\n%s", body)
	}
}

func TestVarsHandlerRoundTrip(t *testing.T) {
	r, _, _ := run2(t, 20*time.Millisecond)
	srv := httptest.NewServer(r.VarsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Locks) != 1 || snap.Locks[0].Name != "db" {
		t.Fatalf("decoded snapshot: %+v", snap)
	}
	if len(snap.Rings) != 1 || snap.Rings[0].Seen == 0 {
		t.Fatalf("ring snapshot: %+v", snap.Rings)
	}
}

func TestRegisterRWLockAndExpvar(t *testing.T) {
	l := scl.NewRWLock(9, 1, 0).SetName("rw")
	l.RLock()
	l.RUnlock()
	l.WLock()
	l.WUnlock()
	r := NewRegistry()
	r.RegisterRWLock("", l)
	snap := r.Snapshot()
	if len(snap.RWLocks) != 1 || snap.RWLocks[0].Name != "rw" {
		t.Fatalf("rw snapshot: %+v", snap.RWLocks)
	}
	if snap.RWLocks[0].ReaderOps != 1 || snap.RWLocks[0].WriterOps != 1 {
		t.Fatalf("ops: %+v", snap.RWLocks[0])
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `scl_rwlock_hold_seconds_total{class="read",lock="rw"}`) {
		t.Fatalf("exposition:\n%s", b.String())
	}

	// Expvar publication: registered exactly once per process, so use a
	// test-unique key.
	r.PublishExpvar("scl-test")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate expvar key did not panic")
		}
	}()
	r.PublishExpvar("scl-test")
}

func TestLabelEscaping(t *testing.T) {
	lb := labels{"lock": `a"b\c` + "\n"}
	got := lb.String()
	want := `{lock="a\"b\\c\n"}`
	if got != want {
		t.Fatalf("escaped = %s, want %s", got, want)
	}
}

func TestUnnamedFallbacks(t *testing.T) {
	r := NewRegistry()
	r.RegisterMutex("", scl.NewMutex(scl.Options{})) // no name anywhere
	r.RegisterRing("", trace.NewRing(16))
	snap := r.Snapshot()
	if snap.Locks[0].Name != "lock-0" {
		t.Fatalf("fallback name %q", snap.Locks[0].Name)
	}
	if snap.Rings[0].Name != "lock-0" {
		t.Fatalf("ring fallback name %q", snap.Rings[0].Name)
	}
}

// TestRegisterManagerExport drives a small lock table and checks the
// by-tenant aggregates come through both the JSON snapshot and the
// Prometheus exposition.
func TestRegisterManagerExport(t *testing.T) {
	m := scl.NewManager(scl.ManagerOptions{Name: "table", Lock: scl.Options{Slice: time.Millisecond}})
	a := m.Tenant("acme", scl.NiceToWeight(0))
	b := m.Tenant("", scl.NiceToWeight(0)) // unnamed: synthetic label
	for i := 0; i < 4; i++ {
		g := a.Lock("hot")
		busyFor(50 * time.Microsecond)
		g.Unlock()
	}
	g := b.Lock("cold")
	g.Unlock()

	r := NewRegistry()
	r.RegisterManager("", m)
	snap := r.Snapshot()
	if len(snap.Managers) != 1 {
		t.Fatalf("%d manager snapshots, want 1", len(snap.Managers))
	}
	ms := snap.Managers[0]
	if ms.Name != "table" {
		t.Fatalf("manager name %q, want the lock's own label", ms.Name)
	}
	if ms.Keys != 2 || ms.Grants != 5 {
		t.Fatalf("Keys=%d Grants=%d, want 2/5", ms.Keys, ms.Grants)
	}
	if len(ms.Tenants) != 2 {
		t.Fatalf("%d tenant rows, want 2", len(ms.Tenants))
	}
	if ms.Tenants[0].Label != "acme" { // sorted by hold: acme did the busy work
		t.Fatalf("top tenant %q, want acme", ms.Tenants[0].Label)
	}
	if ms.Tenants[1].Label == "" || !strings.HasPrefix(ms.Tenants[1].Label, "tenant-") {
		t.Fatalf("unnamed tenant label %q, want tenant-<id>", ms.Tenants[1].Label)
	}
	var share float64
	for _, ten := range ms.Tenants {
		share += ten.HoldShare
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("hold shares sum to %v, want ~1", share)
	}

	// JSON round trip.
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Managers) != 1 || back.Managers[0].Grants != 5 {
		t.Fatalf("manager snapshot lost in JSON round trip: %+v", back.Managers)
	}

	// Prometheus exposition.
	srv := httptest.NewServer(r.MetricsHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	text := string(body)
	for _, want := range []string{
		`scl_manager_keys{manager="table"} 2`,
		`scl_manager_jain_hold{manager="table"}`,
		`scl_tenant_grants_total{manager="table",tenant="acme",tenant_id="`,
		`scl_tenant_hold_share{manager="table",tenant="acme"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
