package export

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// WritePrometheus writes every registered source in the Prometheus text
// exposition format (version 0.0.4), standard library only. Durations
// are exported in seconds, per Prometheus convention; per-entity hold
// and wait distributions become summary metrics with 0.5/0.99 quantiles.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	ew := &errWriter{w: w}

	ew.family("scl_lock_elapsed_seconds", "gauge", "Time since the lock was created.")
	for _, l := range snap.Locks {
		ew.metric("scl_lock_elapsed_seconds", labels{"lock": l.Name}, seconds(l.Elapsed))
	}
	ew.family("scl_lock_idle_seconds_total", "counter", "Total time the lock was unheld.")
	for _, l := range snap.Locks {
		ew.metric("scl_lock_idle_seconds_total", labels{"lock": l.Name}, seconds(l.Idle))
	}
	ew.family("scl_lock_jain_hold", "gauge", "Jain fairness index over per-entity hold times (1 = fair).")
	for _, l := range snap.Locks {
		ew.metric("scl_lock_jain_hold", labels{"lock": l.Name}, l.JainHold)
	}
	ew.family("scl_lock_jain_lot", "gauge", "Jain fairness index over per-entity lock opportunity times.")
	for _, l := range snap.Locks {
		ew.metric("scl_lock_jain_lot", labels{"lock": l.Name}, l.JainLOT)
	}
	ew.family("scl_entities_registered", "gauge", "Entities currently registered in the lock's accounting (the active set under the inactive-entity GC).")
	for _, l := range snap.Locks {
		ew.metric("scl_entities_registered", labels{"lock": l.Name}, float64(l.Registered))
	}
	ew.family("scl_entities_reaped_total", "counter", "Entities removed by the inactive-entity GC (scl.WithInactiveGC) since lock creation.")
	for _, l := range snap.Locks {
		ew.metric("scl_entities_reaped_total", labels{"lock": l.Name}, float64(l.Reaped))
	}

	ew.family("scl_entity_acquisitions_total", "counter", "Lock acquisitions per entity.")
	forEachEntity(snap, func(lock string, e EntitySnapshot, lb labels) {
		ew.metric("scl_entity_acquisitions_total", lb, float64(e.Acquisitions))
	})
	ew.family("scl_entity_hold_seconds_total", "counter", "Cumulative lock hold time per entity.")
	forEachEntity(snap, func(lock string, e EntitySnapshot, lb labels) {
		ew.metric("scl_entity_hold_seconds_total", lb, seconds(e.Hold))
	})
	ew.family("scl_entity_lock_opportunity_seconds", "gauge", "Lock opportunity time per entity: own hold plus lock idle (paper eq. 1).")
	forEachEntity(snap, func(lock string, e EntitySnapshot, lb labels) {
		ew.metric("scl_entity_lock_opportunity_seconds", lb, seconds(e.LOT))
	})
	ew.family("scl_entity_bans_total", "counter", "Penalties imposed on the entity for lock over-use.")
	forEachEntity(snap, func(lock string, e EntitySnapshot, lb labels) {
		ew.metric("scl_entity_bans_total", lb, float64(e.Bans))
	})
	ew.family("scl_entity_ban_seconds_total", "counter", "Total penalty time imposed on the entity.")
	forEachEntity(snap, func(lock string, e EntitySnapshot, lb labels) {
		ew.metric("scl_entity_ban_seconds_total", lb, seconds(e.BanTime))
	})
	ew.family("scl_entity_handoffs_total", "counter", "Lock ownership grants received by the entity.")
	forEachEntity(snap, func(lock string, e EntitySnapshot, lb labels) {
		ew.metric("scl_entity_handoffs_total", lb, float64(e.Handoffs))
	})
	ew.family("scl_entity_cancels_total", "counter", "Acquisitions the entity abandoned on context cancellation (LockContext returning ctx.Err()).")
	forEachEntity(snap, func(lock string, e EntitySnapshot, lb labels) {
		ew.metric("scl_entity_cancels_total", lb, float64(e.Cancels))
	})
	ew.family("scl_entity_combines_total", "counter", "Critical sections the entity executed for others while releasing (Handle.Do batches drained).")
	forEachEntity(snap, func(lock string, e EntitySnapshot, lb labels) {
		ew.metric("scl_entity_combines_total", lb, float64(e.Combines))
	})
	ew.family("scl_entity_combined_total", "counter", "The entity's own sections a combiner ran on its behalf (already counted in acquisitions).")
	forEachEntity(snap, func(lock string, e EntitySnapshot, lb labels) {
		ew.metric("scl_entity_combined_total", lb, float64(e.Combined))
	})

	ew.family("scl_entity_hold_seconds", "summary", "Per-operation critical-section length (reservoir sample).")
	forEachEntity(snap, func(lock string, e EntitySnapshot, lb labels) {
		ew.metric("scl_entity_hold_seconds", lb.with("quantile", "0.5"), seconds(e.HoldP50))
		ew.metric("scl_entity_hold_seconds", lb.with("quantile", "0.99"), seconds(e.HoldP99))
		ew.metric("scl_entity_hold_seconds_sum", lb, seconds(e.Hold))
		ew.metric("scl_entity_hold_seconds_count", lb, float64(e.Acquisitions))
	})
	ew.family("scl_entity_wait_seconds", "summary", "Per-operation wait (queueing plus bans slept out; reservoir sample).")
	forEachEntity(snap, func(lock string, e EntitySnapshot, lb labels) {
		ew.metric("scl_entity_wait_seconds", lb.with("quantile", "0.5"), seconds(e.WaitP50))
		ew.metric("scl_entity_wait_seconds", lb.with("quantile", "0.99"), seconds(e.WaitP99))
		ew.metric("scl_entity_wait_seconds_count", lb, float64(e.Acquisitions))
	})

	if len(snap.RWLocks) > 0 {
		ew.family("scl_rwlock_hold_seconds_total", "counter", "Cumulative hold time per RW-SCL class.")
		for _, l := range snap.RWLocks {
			ew.metric("scl_rwlock_hold_seconds_total", labels{"lock": l.Name, "class": "read"}, seconds(l.ReaderHold))
			ew.metric("scl_rwlock_hold_seconds_total", labels{"lock": l.Name, "class": "write"}, seconds(l.WriterHold))
		}
		ew.family("scl_rwlock_acquisitions_total", "counter", "Acquisitions per RW-SCL class.")
		for _, l := range snap.RWLocks {
			ew.metric("scl_rwlock_acquisitions_total", labels{"lock": l.Name, "class": "read"}, float64(l.ReaderOps))
			ew.metric("scl_rwlock_acquisitions_total", labels{"lock": l.Name, "class": "write"}, float64(l.WriterOps))
		}
		ew.family("scl_rwlock_cancels_total", "counter", "Acquisitions abandoned on context cancellation per RW-SCL class.")
		for _, l := range snap.RWLocks {
			ew.metric("scl_rwlock_cancels_total", labels{"lock": l.Name, "class": "read"}, float64(l.ReaderCancels))
			ew.metric("scl_rwlock_cancels_total", labels{"lock": l.Name, "class": "write"}, float64(l.WriterCancels))
		}
		ew.family("scl_rwlock_combined_total", "counter", "Writer sections a releasing writer ran on behalf of contended RWLock.Do callers (already counted in acquisitions).")
		for _, l := range snap.RWLocks {
			ew.metric("scl_rwlock_combined_total", labels{"lock": l.Name, "class": "write"}, float64(l.WriterCombined))
		}
		ew.family("scl_rwlock_idle_seconds_total", "counter", "Total time the RW lock was wholly unheld.")
		for _, l := range snap.RWLocks {
			ew.metric("scl_rwlock_idle_seconds_total", labels{"lock": l.Name}, seconds(l.Idle))
		}
		ew.family("scl_rwlock_elapsed_seconds", "gauge", "Time since the RW lock was created.")
		for _, l := range snap.RWLocks {
			ew.metric("scl_rwlock_elapsed_seconds", labels{"lock": l.Name}, seconds(l.Elapsed))
		}
	}

	if len(snap.Managers) > 0 {
		ew.family("scl_manager_keys", "gauge", "Key locks currently materialized in the lock table.")
		for _, m := range snap.Managers {
			ew.metric("scl_manager_keys", labels{"manager": m.Name}, float64(m.Keys))
		}
		ew.family("scl_manager_keys_materialized_total", "counter", "Key locks materialized since the table was created.")
		for _, m := range snap.Managers {
			ew.metric("scl_manager_keys_materialized_total", labels{"manager": m.Name}, float64(m.Materialized))
		}
		ew.family("scl_manager_keys_reaped_total", "counter", "Idle key locks dismantled by the lock GC (scl.WithLockGC).")
		for _, m := range snap.Managers {
			ew.metric("scl_manager_keys_reaped_total", labels{"manager": m.Name}, float64(m.LocksReaped))
		}
		ew.family("scl_manager_tenant_identities", "gauge", "Registered tenant identities summed over stripes.")
		for _, m := range snap.Managers {
			ew.metric("scl_manager_tenant_identities", labels{"manager": m.Name}, float64(m.Identities))
		}
		ew.family("scl_manager_tenants_reaped_total", "counter", "Tenant identities expired by the tenant GC (scl.WithTenantGC).")
		for _, m := range snap.Managers {
			ew.metric("scl_manager_tenants_reaped_total", labels{"manager": m.Name}, float64(m.TenantsReaped))
		}
		ew.family("scl_manager_jain_hold", "gauge", "Jain fairness index over per-tenant table-wide hold times (1 = fair).")
		for _, m := range snap.Managers {
			ew.metric("scl_manager_jain_hold", labels{"manager": m.Name}, m.JainHold)
		}

		ew.family("scl_tenant_grants_total", "counter", "Completed grants per tenant across every key of the table.")
		forEachTenant(snap, func(m string, t TenantSnapshot, lb labels) {
			ew.metric("scl_tenant_grants_total", lb, float64(t.Grants))
		})
		ew.family("scl_tenant_hold_seconds_total", "counter", "Cumulative hold time per tenant across the table.")
		forEachTenant(snap, func(m string, t TenantSnapshot, lb labels) {
			ew.metric("scl_tenant_hold_seconds_total", lb, seconds(t.Hold))
		})
		ew.family("scl_tenant_hold_share", "gauge", "Tenant's fraction of all tenants' hold time.")
		forEachTenant(snap, func(m string, t TenantSnapshot, lb labels) {
			ew.metric("scl_tenant_hold_share", lb, t.HoldShare)
		})
		ew.family("scl_tenant_bans_total", "counter", "Table-level penalties imposed on the tenant for over-use.")
		forEachTenant(snap, func(m string, t TenantSnapshot, lb labels) {
			ew.metric("scl_tenant_bans_total", lb, float64(t.Bans))
		})
		ew.family("scl_tenant_ban_seconds_total", "counter", "Total table-level penalty time imposed on the tenant.")
		forEachTenant(snap, func(m string, t TenantSnapshot, lb labels) {
			ew.metric("scl_tenant_ban_seconds_total", lb, seconds(t.BanTime))
		})
	}

	if len(snap.Rings) > 0 {
		ew.family("scl_trace_events_total", "counter", "Events recorded into the trace ring.")
		for _, g := range snap.Rings {
			ew.metric("scl_trace_events_total", labels{"ring": g.Name}, float64(g.Seen))
		}
		ew.family("scl_trace_dropped_total", "counter", "Events dropped from the trace ring by wrap-around.")
		for _, g := range snap.Rings {
			ew.metric("scl_trace_dropped_total", labels{"ring": g.Name}, float64(g.Dropped))
		}
	}
	return ew.err
}

// MetricsHandler serves WritePrometheus over HTTP — mount it wherever
// your Prometheus scraper looks, conventionally /metrics.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func forEachEntity(snap Snapshot, fn func(lock string, e EntitySnapshot, lb labels)) {
	for _, l := range snap.Locks {
		for _, e := range l.Entities {
			fn(l.Name, e, labels{
				"lock":      l.Name,
				"entity":    e.Label,
				"entity_id": fmt.Sprint(e.ID),
			})
		}
	}
}

func forEachTenant(snap Snapshot, fn func(manager string, t TenantSnapshot, lb labels)) {
	for _, m := range snap.Managers {
		for _, t := range m.Tenants {
			fn(m.Name, t, labels{
				"manager":   m.Name,
				"tenant":    t.Label,
				"tenant_id": fmt.Sprint(t.ID),
			})
		}
	}
}

func seconds(d time.Duration) float64 { return d.Seconds() }

// labels is a small label set rendered deterministically (sorted keys).
type labels map[string]string

func (lb labels) with(k, v string) labels {
	out := make(labels, len(lb)+1)
	for key, val := range lb {
		out[key] = val
	}
	out[k] = v
	return out
}

func (lb labels) String() string {
	if len(lb) == 0 {
		return ""
	}
	keys := make([]string, 0, len(lb))
	for k := range lb {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(lb[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// errWriter accumulates the first write error so the exposition code
// stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) family(name, typ, help string) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (ew *errWriter) metric(name string, lb labels, v float64) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, "%s%s %g\n", name, lb, v)
}
