package scl

import (
	"time"

	"scl/internal/core"
)

// DefaultSlice is the default lock slice (the paper's 2ms), which favours
// throughput; latency-sensitive applications should configure a slice no
// larger than their smallest critical section (paper §5.4).
const DefaultSlice = core.DefaultSlice

// Options configure a Mutex.
type Options struct {
	// Slice is the lock slice length. Zero means DefaultSlice; negative
	// means a zero-length slice (every release is a slice boundary, the
	// k-SCL configuration).
	Slice time.Duration
	// BanCap bounds a single penalty (zero = core default, 30s).
	BanCap time.Duration
	// InactiveTimeout, when positive, garbage-collects entities that have
	// not used the lock recently (k-SCL behaviour; the paper uses 1s).
	InactiveTimeout time.Duration
	// Name labels the lock in trace events and metrics export.
	Name string
	// Tracer, when non-nil, receives structured lock events (see the
	// Tracer interface and package scl/trace). Nil disables tracing at
	// the cost of a nil check per operation.
	Tracer Tracer
}

func (o Options) sliceLen() time.Duration {
	if o.Slice < 0 {
		return 0
	}
	if o.Slice == 0 {
		return DefaultSlice
	}
	return o.Slice
}

// NiceToWeight maps a CFS nice value (-20..19) to a scheduler weight,
// using the same table as the Linux scheduler (nice 0 → 1024).
func NiceToWeight(nice int) int64 { return core.NiceToWeight(nice) }

// monotime returns nanoseconds on a process-local monotonic clock.
var baseTime = time.Now()

func monotime() time.Duration { return time.Since(baseTime) }
