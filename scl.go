// Package scl implements Scheduler-Cooperative Locks (SCLs) for Go,
// reproducing the locking primitives of "Avoiding Scheduler Subversion
// using Scheduler-Cooperative Locks" (Patel et al., EuroSys 2020).
//
// Classic locks let whoever holds the lock longest dominate the CPU: lock
// usage, not the scheduler, decides who runs (the paper's "scheduler
// subversion" problem). SCLs fix this by accounting lock usage per
// schedulable entity and giving every entity a proportional time window of
// lock opportunity:
//
//   - Mutex is a u-SCL: a mutual-exclusion lock with per-entity usage
//     accounting, lock slices (an owner may re-acquire freely within its
//     slice), and penalties that ban over-users until the other entities
//     have had their proportional opportunity.
//   - RWLock is an RW-SCL: a reader-writer lock whose read and write
//     slices alternate with lengths proportional to configured class
//     weights, so neither readers nor writers can starve the other side.
//   - TicketLock, SpinLock and BargingMutex are the traditional baselines
//     the paper compares against.
//
// Entities are explicit: each goroutine (or connection, tenant, work
// class — any schedulable entity) calls Register on a Mutex to obtain a
// Handle and locks through it. This mirrors the paper's per-thread state
// (allocated via pthread keys in the original C implementation); Go has no
// per-goroutine storage, so registration is explicit.
//
// Weights use the Linux CFS nice-to-weight table, so lock-opportunity
// shares line up with CPU shares under a proportional-share scheduler.
package scl

import (
	"time"

	"scl/internal/core"
)

// DefaultSlice is the default lock slice (the paper's 2ms), which favours
// throughput; latency-sensitive applications should configure a slice no
// larger than their smallest critical section (paper §5.4).
const DefaultSlice = core.DefaultSlice

// Options configure a Mutex.
type Options struct {
	// Slice is the lock slice length. Zero means DefaultSlice; negative
	// means a zero-length slice (every release is a slice boundary, the
	// k-SCL configuration).
	Slice time.Duration
	// BanCap bounds a single penalty (zero = core default, 30s).
	BanCap time.Duration
	// InactiveTimeout, when positive, garbage-collects entities that have
	// not used the lock recently (k-SCL behaviour; the paper uses 1s).
	InactiveTimeout time.Duration
}

func (o Options) sliceLen() time.Duration {
	if o.Slice < 0 {
		return 0
	}
	if o.Slice == 0 {
		return DefaultSlice
	}
	return o.Slice
}

// NiceToWeight maps a CFS nice value (-20..19) to a scheduler weight,
// using the same table as the Linux scheduler (nice 0 → 1024).
func NiceToWeight(nice int) int64 { return core.NiceToWeight(nice) }

// monotime returns nanoseconds on a process-local monotonic clock.
var baseTime = time.Now()

func monotime() time.Duration { return time.Since(baseTime) }
