package scl

import (
	"time"

	"scl/internal/check"
	"scl/internal/core"
)

// DefaultSlice is the default lock slice (the paper's 2ms), which favours
// throughput; latency-sensitive applications should configure a slice no
// larger than their smallest critical section (paper §5.4).
const DefaultSlice = core.DefaultSlice

// Options configure a Mutex.
type Options struct {
	// Slice is the lock slice length. Zero means DefaultSlice; negative
	// means a zero-length slice (every release is a slice boundary, the
	// k-SCL configuration).
	Slice time.Duration
	// BanCap bounds a single penalty (zero = core default, 30s).
	BanCap time.Duration
	// InactiveTimeout, when positive, garbage-collects entities that have
	// not used the lock recently (k-SCL behaviour; the paper uses 1s).
	InactiveTimeout time.Duration
	// Name labels the lock in trace events and metrics export.
	Name string
	// Tracer, when non-nil, receives structured lock events (see the
	// Tracer interface and package scl/trace). Nil disables tracing at
	// the cost of a nil check per operation.
	Tracer Tracer
}

// Option is a functional override applied on top of an Options value
// (NewMutex) or the constructor defaults (NewRWLock).
type Option func(*Options)

// WithInactiveGC enables inactive-entity garbage collection with the
// given threshold (the paper's k-SCL reaps per-thread state idle longer
// than 1s, §4.4). On a Mutex, entities that have not touched the lock for
// the threshold are unregistered lazily — piggybacked on slice boundaries
// and Stats snapshots, no background goroutine — so the accountant, the
// sibling refcounts, and the per-entity stats stay proportional to the
// active set; a reaped entity that returns re-registers through the
// join-credit floor, so it cannot launder a ban by going idle (still-
// banned entities are never reaped). On an RWLock, which accounts per
// class rather than per entity, the threshold instead bounds how long
// empty waiter-queue slabs retain their grown capacity. A non-positive
// threshold disables the GC (the default).
func WithInactiveGC(threshold time.Duration) Option {
	return func(o *Options) { o.InactiveTimeout = threshold }
}

// WithName labels the lock in trace events and metrics export (the Option
// form of Options.Name, for constructors that take no Options struct).
func WithName(name string) Option {
	return func(o *Options) { o.Name = name }
}

func (o Options) sliceLen() time.Duration {
	if o.Slice < 0 {
		return 0
	}
	if o.Slice == 0 {
		return DefaultSlice
	}
	return o.Slice
}

// NiceToWeight maps a CFS nice value (-20..19) to a scheduler weight,
// using the same table as the Linux scheduler (nice 0 → 1024).
func NiceToWeight(nice int) int64 { return core.NiceToWeight(nice) }

// monotime returns nanoseconds on a process-local monotonic clock —
// or, when a deterministic check scheduler is installed (tests only),
// its virtual clock, so every explored schedule sees reproducible time.
var baseTime = time.Now()

func monotime() time.Duration {
	if now, ok := check.Now(); ok {
		return now
	}
	return time.Since(baseTime)
}
