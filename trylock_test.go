package scl

import (
	"sync"
	"testing"
	"time"
)

func TestTryLockFree(t *testing.T) {
	m := NewMutex(Options{Slice: time.Hour})
	h := m.Register()
	if !h.TryLock() {
		t.Fatal("TryLock on a free lock failed")
	}
	h.Unlock()
	// The slice is now h's: the retry goes through the fast path.
	if !h.TryLock() {
		t.Fatal("owner TryLock re-acquire failed")
	}
	h.Unlock()
	if s := m.Stats(); s.Acquisitions[h.ID()] != 2 {
		t.Fatalf("acquisitions = %d, want 2", s.Acquisitions[h.ID()])
	}
}

func TestTryLockHeld(t *testing.T) {
	m := NewMutex(Options{Slice: time.Hour})
	a := m.Register()
	b := m.Register()
	a.Lock()
	if a.Sibling().TryLock() {
		t.Fatal("TryLock succeeded while the lock was held (sibling)")
	}
	if b.TryLock() {
		t.Fatal("TryLock succeeded while the lock was held (other entity)")
	}
	a.Unlock()
}

func TestTryLockLiveSliceOfOther(t *testing.T) {
	m := NewMutex(Options{Slice: time.Hour})
	a := m.Register()
	b := m.Register()
	a.Lock()
	a.Unlock()
	// a owns the (hour-long) slice; the lock is free but b's TryLock must
	// not jump into a's slice.
	if b.TryLock() {
		t.Fatal("TryLock stole another entity's live slice")
	}
	if !a.TryLock() {
		t.Fatal("slice owner TryLock failed on its own live slice")
	}
	a.Unlock()
}

func TestTryLockExpiredSlice(t *testing.T) {
	m := NewMutex(Options{Slice: time.Millisecond})
	a := m.Register()
	b := m.Register()
	a.Lock()
	a.Unlock()
	time.Sleep(5 * time.Millisecond) // a's slice expires, nobody queued
	if !b.TryLock() {
		t.Fatal("TryLock failed on an expired, unqueued slice")
	}
	b.Unlock()
	if owner := func() bool {
		s := m.Stats()
		return s.Acquisitions[b.ID()] == 1
	}(); !owner {
		t.Fatal("b's TryLock acquisition missing from stats")
	}
}

func TestTryLockBanned(t *testing.T) {
	// a hogs through its whole slice against a registered peer: banned.
	_, a, b := banHog(t, Options{Slice: 10 * time.Millisecond, BanCap: time.Hour}, 15*time.Millisecond)
	if a.TryLock() {
		t.Fatal("TryLock succeeded while banned")
	}
	if !b.TryLock() {
		t.Fatal("unbanned entity's TryLock failed on a free, expired lock")
	}
	b.Unlock()
}

func TestTryLockQueueNonEmpty(t *testing.T) {
	m := NewMutex(Options{Slice: 5 * time.Millisecond})
	a := m.Register()
	b := m.Register()
	c := m.Register()

	a.Lock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.Lock() // queues behind a
		b.Unlock()
	}()
	// Wait until b is actually queued.
	for i := 0; i < 1000; i++ {
		if m.word.Load()&wordWaiters != 0 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if m.word.Load()&wordWaiters == 0 {
		t.Fatal("waiter never queued")
	}
	if c.TryLock() {
		t.Fatal("TryLock jumped a non-empty queue")
	}
	a.Unlock()
	wg.Wait()
}

// TestTryLockStress interleaves TryLock with blocking Lock under load;
// the guarded counter catches any exclusion violation between the two
// acquisition paths.
func TestTryLockStress(t *testing.T) {
	m := NewMutex(Options{Slice: 100 * time.Microsecond})
	var guarded int64
	var acquired int64
	var tally sync.Mutex
	deadline := time.Now().Add(200 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(try bool) {
			defer wg.Done()
			h := m.Register()
			defer h.Close()
			var local int64
			for time.Now().Before(deadline) {
				if try {
					if !h.TryLock() {
						continue
					}
				} else {
					h.Lock()
				}
				guarded++
				local++
				h.Unlock()
			}
			tally.Lock()
			acquired += local
			tally.Unlock()
		}(i%2 == 0)
	}
	wg.Wait()
	if guarded != acquired {
		t.Fatalf("guarded counter = %d, want %d", guarded, acquired)
	}
}
