package scl_test

import (
	"fmt"
	"time"

	"scl"
	"scl/trace"
)

// Attach the built-in ring-buffer recorder to a lock and inspect the
// structured event stream: every acquisition, release, slice end, ban and
// handoff, in order, with bounded memory.
func ExampleTracer() {
	ring := trace.NewRing(1 << 10)
	m := scl.NewMutex(scl.Options{
		Name:   "db",
		Slice:  -1, // k-SCL: every release ends the slice
		Tracer: ring,
	})
	h := m.Register().SetName("worker")

	h.Lock()
	time.Sleep(time.Millisecond)
	h.Unlock()

	for _, ev := range ring.Events() {
		fmt.Println(ev.Kind, ev.Lock, ev.Name)
	}
	// Output:
	// acquire db worker
	// release db worker
	// slice-end db worker
}

// Tracers attach and detach at runtime, so a lock can run untraced (the
// only cost is a nil check) until something looks wrong.
func ExampleMutex_SetTracer() {
	m := scl.NewMutex(scl.Options{Name: "cache", Slice: time.Minute})
	h := m.Register()

	h.Lock() // untraced
	h.Unlock()

	ring := trace.NewRing(64)
	m.SetTracer(ring) // start observing
	h.Lock()
	h.Unlock()
	m.SetTracer(nil) // stop

	fmt.Println("events while attached:", ring.Seen())
	// Output:
	// events while attached: 2
}
