package scl

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"scl/internal/check"
	"scl/internal/core"
	"scl/trace"
)

// Combining critical sections (DESIGN.md §9). Handle.Do lets a contended
// caller publish its critical section into a lock-free stack instead of
// queueing for a grant: the current holder, on its way out of the lock,
// drains a bounded batch and executes the closures itself while it still
// owns the held bit — one lock handoff amortized over the whole batch.
// SCL accounting makes this fair, not just fast: the combiner times each
// closure and FoldBatch charges every publishing entity its own measured
// critical-section time, with the same immediate penalty decision a
// zero-slice release would make, so usage shares and bans come out
// exactly as if each entity had acquired the lock itself.

// combineBatch bounds how many published critical sections one releasing
// holder executes before handing the lock on. The bound keeps any single
// release from turning into an unbounded servant loop (the combiner is a
// caller that wants to leave); overflow stays published for the next
// releasing holder.
const combineBatch = 16

// combineSpin is how many cooperative-yield rounds a publisher spins
// before parking on its wake channel. Spinning keeps the common
// publish→drain round trip futex-free; the bound keeps a crowd of
// publishers from burning CPU while a long critical section runs.
// Spinning only pays when another CPU can make progress in the
// meantime (the same rule sync.Mutex's active spin uses): on a
// single-CPU configuration every yield just rotates the run queue, so
// publishers park immediately instead.
const combineSpin = 96

// combineSpinBudget returns the publisher spin bound for the current
// processor configuration.
func combineSpinBudget() int {
	if runtime.NumCPU() > 1 && runtime.GOMAXPROCS(0) > 1 {
		return combineSpin
	}
	return 0
}

// States of a published critical section. Exactly-once execution hangs on
// the two CAS edges out of combinePending: a combiner claims
// pending→claimed and runs the closure, or the publisher withdraws
// pending→cancelled (the lock went idle under it) and runs the closure
// itself on the classic path. Exactly one of the two CASes can win.
const (
	combinePending   = int32(iota) // published, unclaimed
	combineClaimed                 // a combiner owns it and will execute it
	combineCancelled               // the publisher withdrew it (self-serve)
	combineRejected                // the combiner declined it (banned entity)
	combineDone                    // executed, charges booked
)

// combineReq is one published critical section on the combining stack.
type combineReq struct {
	next  atomic.Pointer[combineReq]
	h     *Handle
	fn    func()
	state atomic.Int32
	wake  chan struct{} // buffered(1): at most one pending signal
	reqAt time.Duration // publish time, for wait-time stats
	// start/end are written by the combiner before state→done (the
	// done-store publishes them to the waiting publisher).
	start, end time.Duration
}

// Do runs fn while holding the mutex, like Lock(); fn(); Unlock(), but
// under contention the critical section may be executed by the current
// lock holder on the caller's behalf (possibly on another goroutine)
// instead of waiting for an ownership grant. Either way fn runs exactly
// once, under mutual exclusion, and the handle's entity is charged the
// closure's measured run time — combined execution changes who runs the
// section, never who pays for it, so bans and fairness are identical to
// the classic path. A banned entity's Do first serves out its penalty.
//
// fn must not use this Mutex (or any of its Handles) and must not panic;
// it may run on the goroutine of an unrelated lock user. A panic that
// escapes fn anyway is re-raised, scl-identified, on whichever goroutine
// ran the closure; the lock itself stays usable.
func (h *Handle) Do(fn func()) {
	m := h.m
	if m.fastLock(h) {
		fn()
		if m.fastUnlock(h) {
			return
		}
		m.unlockSlow(h)
		return
	}
	m.doSlow(h, fn)
}

// doSlow is Do off the owner fast path: publish into the combining stack
// when someone holds the lock (they will execute fn on their way out),
// otherwise fall back to the classic acquire.
func (m *Mutex) doSlow(h *Handle, fn func()) {
	if m.word.Load()&(wordHeld|wordTransfer) == 0 {
		m.doClassic(h, fn)
		return
	}
	r := &combineReq{h: h, fn: fn, wake: make(chan struct{}, 1), reqAt: monotime()}
	for {
		old := m.combine.Load()
		r.next.Store(old)
		// The push races the holder's drain swap and other publishers —
		// the decision site the checker reorders.
		check.Point("mu.combine.publish")
		if m.combine.CompareAndSwap(old, r) {
			break
		}
	}
	if m.combineWait(r) {
		return // a combiner executed fn and booked the charge
	}
	// Withdrawn (the lock went idle under us) or rejected (banned; the
	// classic path serves the penalty out): run the section ourselves.
	m.doClassic(h, fn)
}

// doClassic is Do through the ordinary acquire path.
func (m *Mutex) doClassic(h *Handle, fn func()) {
	h.Lock()
	fn()
	h.Unlock()
}

// combineWait blocks until the published request is resolved: executed by
// a combiner (true), or bounced back to the caller (false) because the
// combiner rejected it or the lock went idle with the request still
// unclaimed. The liveness argument for parking: every transition the
// publisher must act on (done, rejected) sends on wake, and every release
// path that leaves the lock idle wake-walks the stack (wakeCombiners), so
// a parked publisher always has a signal coming. The withdraw CAS
// resolves the race between "lock went idle" and "a combiner claimed it"
// — exactly one side wins the pending state.
func (m *Mutex) combineWait(r *combineReq) bool {
	if _, handled := check.WaitOrDone("mu.combine.wait", func() bool {
		s := r.state.Load()
		return s != combinePending && s != combineClaimed ||
			s == combinePending && m.word.Load()&(wordHeld|wordTransfer) == 0
	}, nil); handled {
		// Deterministic checker: the predicate parked us until the request
		// resolved or the lock went idle under a still-pending request.
		for {
			switch r.state.Load() {
			case combineDone:
				return true
			case combineRejected:
				return false
			case combinePending:
				if r.state.CompareAndSwap(combinePending, combineCancelled) {
					return false
				}
			default: // claimed in the withdraw window: execution is imminent
				check.WaitOrDone("mu.combine.claimed", func() bool {
					return r.state.Load() >= combineCancelled
				}, nil)
			}
		}
	}
	budget := combineSpinBudget()
	for spins := 0; ; {
		switch r.state.Load() {
		case combineDone:
			return true
		case combineRejected:
			return false
		case combinePending:
			if m.word.Load()&(wordHeld|wordTransfer) == 0 {
				// The lock went idle with our request unclaimed: withdraw
				// and self-serve. A lost CAS means a combiner claimed it
				// in the window; loop and wait for the execution.
				if r.state.CompareAndSwap(combinePending, combineCancelled) {
					return false
				}
				continue
			}
		}
		if spins < budget {
			spins++
			runtime.Gosched()
			continue
		}
		<-r.wake
	}
}

// wakeCombiners wake-walks the combining stack after the lock went idle:
// still-pending publishers are signalled so they observe the free lock
// and withdraw to the classic path (nobody is coming to drain them).
// Safe without m.mu — it only reads the stack and sends non-blocking
// signals. The seq-cst ordering argument that no publisher is missed: a
// publisher pushes only after loading a held/transfer word, so if its
// push is not visible to this walk, the push (and the publisher's next
// predicate check) follows the release that made the lock idle — the
// publisher sees the free word itself and self-serves without a signal.
func (m *Mutex) wakeCombiners() {
	r := m.combine.Load()
	if r == nil || m.word.Load()&(wordHeld|wordTransfer) != 0 {
		return
	}
	for ; r != nil; r = r.next.Load() {
		if r.state.Load() == combinePending {
			select {
			case r.wake <- struct{}{}:
			default:
			}
		}
	}
}

// takeCombineBatch claims up to combineBatch pending requests off the
// combining stack (newest first — the stack is LIFO; per-entity fairness
// comes from the accounting, not grant order), rejects requests of
// banned entities (their classic fallback serves the ban out), drops
// withdrawn ones, and re-publishes the overflow for the next combiner.
// m.mu held; the caller owns the held bit.
func (m *Mutex) takeCombineBatch(now time.Duration) []*combineReq {
	check.Point("mu.combine.drain")
	head := m.combine.Swap(nil)
	if head == nil {
		return nil
	}
	var batch []*combineReq
	var overflow []*combineReq
	for r := head; r != nil; r = r.next.Load() {
		switch {
		case r.state.Load() != combinePending:
			// Withdrawn (cancelled) — the publisher self-serves; drop it.
		case m.acct.BannedUntil(r.h.id) > now:
			r.state.Store(combineRejected)
			select {
			case r.wake <- struct{}{}:
			default:
			}
		case len(batch) < combineBatch:
			if r.state.CompareAndSwap(combinePending, combineClaimed) {
				batch = append(batch, r)
			}
			// A lost CAS is a concurrent withdraw — drop it.
		default:
			overflow = append(overflow, r)
		}
	}
	// Re-publish the overflow, oldest first, so the stack order the next
	// combiner sees matches the original. New publishers may have pushed
	// since the swap; the CAS loop interleaves with them.
	for i := len(overflow) - 1; i >= 0; i-- {
		r := overflow[i]
		for {
			old := m.combine.Load()
			r.next.Store(old)
			if m.combine.CompareAndSwap(old, r) {
				break
			}
		}
	}
	return batch
}

// drainCombine executes a batch of published critical sections while the
// releasing holder still owns the held bit: the closures run outside m.mu
// (they are user code) with the held word providing mutual exclusion,
// then the measured times are folded into the accountant, stats and
// tracer in one re-locked step — per-entity acquire/release bookings at
// the closures' real timestamps, immediate ChargeWindow-style penalties,
// and one combine event identifying the combiner. Returns the post-drain
// clock for the caller's boundary logic. m.mu held on entry and exit.
func (m *Mutex) drainCombine(combiner *Handle, now time.Duration) time.Duration {
	batch := m.takeCombineBatch(now)
	if len(batch) == 0 {
		return now
	}
	// Claimed requests leave the stack; park them where Close and the GC
	// (entityCombining) still see them while m.mu is released below.
	m.draining = batch
	m.unlockMu()
	var total time.Duration
	ran := 0
	// Do closures are documented as must-not-panic, but an escaped panic
	// (or runtime.Goexit) in one would otherwise wedge the whole lock:
	// m.mu is released, m.draining is populated, the claimed publishers
	// are parked with no resolution coming, and the held bit stays up.
	// Fail loudly instead of wedging: resolve the batch, retire the held
	// word, and let the panic continue scl-identified. The failed batch's
	// charges are dropped — fairness bookkeeping is best-effort on a path
	// that is already a contract violation.
	defer func() {
		if ran == len(batch) {
			return // every closure completed; the booking below ran normally
		}
		pv := recover()
		m.lockMu()
		m.draining = nil
		for i, r := range batch {
			if i <= ran {
				// Executed (the ran'th closure is the one that blew up):
				// exactly-once forbids a classic-path re-run, so resolve it
				// as done, uncharged.
				r.state.Store(combineDone)
			} else {
				// Never started: bounce it to the classic path.
				r.state.Store(combineRejected)
			}
			select {
			case r.wake <- struct{}{}:
			default:
			}
		}
		// Retire the held bit and run the boundary so the lock outlives
		// the panic; unlockSlow's remaining release logic is skipped by the
		// unwind (its deferred wakeCombiners/unlockMu still run, balanced
		// by the lockMu above).
		m.mutate(func(w uint64) uint64 { return w &^ wordHeld })
		m.transferLocked(monotime())
		if pv != nil {
			panic(fmt.Sprintf("scl: Handle.Do critical section panicked: %v", pv))
		}
		// pv == nil means runtime.Goexit: the unwind continues on its own.
	}()
	at := monotime()
	for _, r := range batch {
		r.start = at
		r.fn()
		at = monotime()
		r.end = at
		total += r.end - r.start
		ran++
	}
	m.lockMu()
	m.draining = nil
	now = monotime()
	t := m.loadTracer()
	if t != nil {
		t.OnCombine(m.event(trace.KindCombine, now, combiner.id, combiner.name, total))
	}
	m.stats.onCombine(int64(combiner.id), int64(len(batch)))
	charges := make([]core.Charge, len(batch))
	for i, r := range batch {
		charges[i] = core.Charge{ID: r.h.id, Usage: r.end - r.start}
	}
	pens := m.acct.FoldBatch(charges, now)
	for i, r := range batch {
		id, name := r.h.id, r.h.name
		wait := r.start - r.reqAt
		if wait < 0 {
			wait = 0
		}
		m.stats.onCombinedOp(int64(id), name, r.start, r.end, wait)
		if t != nil {
			t.OnAcquire(m.event(trace.KindAcquire, r.start, id, name, wait))
			t.OnRelease(m.event(trace.KindRelease, r.end, id, name, r.end-r.start))
		}
		if pens[i] > 0 {
			m.stats.onBan(int64(id), pens[i])
			if t != nil {
				t.OnBan(m.event(trace.KindBan, r.end, id, name, pens[i]))
			}
		}
	}
	// Release the publishers only after their charges are booked, so a
	// publisher that immediately re-acquires observes its own usage (and
	// any fresh ban) on the books.
	check.Point("mu.combine.handoff")
	for _, r := range batch {
		r.state.Store(combineDone)
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
	// Entities whose last handle closed while their closure was in flight
	// deferred their unregistration to this completion.
	for _, r := range batch {
		m.dropGhostLocked(r.h.id, now)
	}
	return now
}

// entityCombining reports whether entity id has a published critical
// section still awaiting execution (pending or claimed). Close and the
// inactive-entity GC treat such an entity as in flight. m.mu held (the
// stack may gain nodes concurrently, but never lose them without m.mu).
func (m *Mutex) entityCombining(id core.ID) bool {
	for r := m.combine.Load(); r != nil; r = r.next.Load() {
		if r.h.id != id {
			continue
		}
		if s := r.state.Load(); s == combinePending || s == combineClaimed {
			return true
		}
	}
	for _, r := range m.draining {
		if r.h.id == id && r.state.Load() == combineClaimed {
			return true
		}
	}
	return false
}

// debugCheckCombineQuiet asserts (under scldebug) that no claimed request
// sits in the combining stack at a slice boundary: drains complete — every
// claimed closure executed and booked — before ownership transfers.
// m.mu held.
func (m *Mutex) debugCheckCombineQuiet() {
	if !debugChecks {
		return
	}
	for r := m.combine.Load(); r != nil; r = r.next.Load() {
		if r.state.Load() == combineClaimed {
			debugFail("combining queue has a claimed request at a slice boundary")
		}
	}
}
