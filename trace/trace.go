// Package trace defines the structured lock-event model for the real-time
// scl stack: the event types emitted through scl.Tracer hooks, a lock-free
// bounded ring recorder (Ring) suitable for always-on production tracing,
// a JSON-lines dump format for offline analysis, and an aggregator that
// reconstructs the paper's fairness measurements — per-entity hold time,
// lock opportunity and Jain's index — from an event stream.
//
// The package mirrors the simulator's tracing (sim.TraceEvent) for the
// real locks, so a dump captured from a production process and a dump
// captured from a simulation can be replayed through the same tooling
// (cmd/scltop).
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Kind classifies a lock event.
type Kind string

// Event kinds, one per scl.Tracer hook.
const (
	// KindAcquire: an entity acquired the lock. Detail is the time the
	// acquisition waited (queueing plus any ban slept out).
	KindAcquire Kind = "acquire"
	// KindRelease: an entity released the lock. Detail is the length of
	// the critical section that just ended.
	KindRelease Kind = "release"
	// KindSliceEnd: the releasing entity's lock slice expired; ownership
	// is up for transfer. Detail is the hold time accumulated within the
	// slice.
	KindSliceEnd Kind = "slice-end"
	// KindBan: a penalty was imposed on an over-using entity. Detail is
	// the ban length (paper §4.2: computed at release, imposed at the
	// entity's next acquire).
	KindBan Kind = "ban"
	// KindHandoff: lock ownership was granted to a waiting entity (a
	// slice transfer, or an intra-entity sibling handoff within a live
	// slice). Detail is zero.
	KindHandoff Kind = "handoff"
	// KindAbandon: a cancellable acquisition (LockContext, RLockContext,
	// WLockContext) gave up — the context was cancelled while the entity
	// slept out a ban or sat in the waiter queue. Detail is the time the
	// attempt had waited before abandoning. No usage is charged and no
	// matching release follows.
	KindAbandon Kind = "abandon"
	// KindReap: the inactive-entity GC (scl.WithInactiveGC; the paper's
	// k-SCL §4.4) removed the entity's accounting state after it went
	// idle longer than the configured threshold. Detail is how long the
	// entity had been idle when reaped. If the entity returns it
	// re-registers through the join-credit floor.
	KindReap Kind = "reap"
	// KindCombine: the releasing lock holder drained a batch of published
	// critical sections (Handle.Do / RWLock.Do) and executed them on the
	// publishers' behalf. Entity is the combiner; Detail is the summed
	// critical-section time of the batch. One acquire/release pair per
	// combined entity follows, so per-entity accounting in the stream is
	// unchanged — this event only identifies who did the work.
	KindCombine Kind = "combine"
)

// Event is one structured lock event. Events carry process-local
// monotonic timestamps (scl's internal clock); only differences between
// timestamps of one process are meaningful.
type Event struct {
	// At is the event time on the process-local monotonic clock.
	At time.Duration `json:"at"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Lock is the emitting lock's configured name ("" if unnamed).
	Lock string `json:"lock,omitempty"`
	// Entity is the schedulable entity's ID (Handle.ID for scl.Mutex;
	// the class pseudo-IDs EntityReaders/EntityWriters for scl.RWLock).
	Entity int64 `json:"entity"`
	// Name is the entity's label, when one was set.
	Name string `json:"name,omitempty"`
	// Detail is the kind-specific duration documented on each Kind.
	Detail time.Duration `json:"detail,omitempty"`
}

// Pseudo entity IDs used by class-based locks (scl.RWLock), which account
// per class rather than per registered entity.
const (
	EntityReaders int64 = -1
	EntityWriters int64 = -2
)

// Label returns the entity's display name: Name when set, otherwise a
// stable synthetic label from the ID.
func (ev Event) Label() string {
	if ev.Name != "" {
		return ev.Name
	}
	switch ev.Entity {
	case EntityReaders:
		return "readers"
	case EntityWriters:
		return "writers"
	}
	return fmt.Sprintf("entity-%d", ev.Entity)
}

// String renders the event as one human-readable log line.
func (ev Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12v  %-9s %s", ev.At, ev.Kind, ev.Label())
	if ev.Lock != "" {
		fmt.Fprintf(&b, " @%s", ev.Lock)
	}
	switch ev.Kind {
	case KindRelease:
		fmt.Fprintf(&b, "  held %v", ev.Detail)
	case KindBan:
		fmt.Fprintf(&b, "  banned %v", ev.Detail)
	case KindSliceEnd:
		fmt.Fprintf(&b, "  used %v", ev.Detail)
	case KindAbandon:
		fmt.Fprintf(&b, "  gave up after %v", ev.Detail)
	case KindReap:
		fmt.Fprintf(&b, "  reaped after %v idle", ev.Detail)
	case KindCombine:
		fmt.Fprintf(&b, "  combined %v", ev.Detail)
	case KindAcquire:
		if ev.Detail > 0 {
			fmt.Fprintf(&b, "  waited %v", ev.Detail)
		}
	}
	return b.String()
}

// Format renders events as a text log, one line per event.
func Format(evs []Event) string {
	var b strings.Builder
	for _, ev := range evs {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}
