package trace

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func ev(at time.Duration, kind Kind, entity int64, detail time.Duration) Event {
	return Event{At: at, Kind: kind, Entity: entity, Detail: detail}
}

func TestRingRecordsInOrder(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Record(ev(time.Duration(i), KindAcquire, int64(i), 0))
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Entity != int64(i) {
			t.Fatalf("event %d entity = %d", i, e.Entity)
		}
	}
	if r.Seen() != 5 || r.Dropped() != 0 {
		t.Fatalf("seen %d dropped %d", r.Seen(), r.Dropped())
	}
}

func TestRingWrapsAndCountsDrops(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for i := 0; i < 20; i++ {
		r.Record(ev(time.Duration(i), KindRelease, int64(i), 0))
	}
	if got, want := r.Dropped(), uint64(12); got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d, want 8", len(evs))
	}
	if evs[0].Entity != 12 || evs[7].Entity != 19 {
		t.Fatalf("retained window [%d..%d], want [12..19]", evs[0].Entity, evs[7].Entity)
	}
}

func TestRingCapRoundsUpAndDefaults(t *testing.T) {
	if got := NewRing(100).Cap(); got != 128 {
		t.Fatalf("cap(100) = %d, want 128", got)
	}
	if got := NewRing(0).Cap(); got != DefaultRingCap {
		t.Fatalf("cap(0) = %d, want %d", got, DefaultRingCap)
	}
}

// Concurrent writers and a racing reader: run under -race this verifies
// the lock-free claim; functionally it verifies no event is duplicated
// and snapshots only contain published events.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(1 << 10)
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // racing snapshot reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Events()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(ev(time.Duration(i), KindAcquire, int64(w), 0))
			}
		}(w)
	}
	for r.Seen() < writers*per {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if r.Seen() != writers*per {
		t.Fatalf("seen = %d, want %d", r.Seen(), writers*per)
	}
	// A full ring is the common case but not guaranteed: when two writers
	// hold tickets one lap apart for the same slot, their stores can land
	// out of ticket order, leaving the slot on the older generation, which
	// Events rightly skips. At most one slot per concurrent writer can end
	// up stale this way.
	evs := r.Events()
	if len(evs) < r.Cap()-writers || len(evs) > r.Cap() {
		t.Fatalf("retained %d, want within [%d, %d]", len(evs), r.Cap()-writers, r.Cap())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{At: time.Millisecond, Kind: KindAcquire, Lock: "db", Entity: 1, Name: "hog", Detail: 42},
		{At: 2 * time.Millisecond, Kind: KindBan, Entity: 2, Detail: 5 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d: %+v != %+v", i, in[i], out[i])
		}
	}
	if _, err := ReadJSONL(strings.NewReader("{bad json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestEventStringAndLabel(t *testing.T) {
	e := Event{At: time.Millisecond, Kind: KindRelease, Entity: 7, Detail: 3 * time.Microsecond}
	if got := e.Label(); got != "entity-7" {
		t.Fatalf("label = %q", got)
	}
	if s := e.String(); !strings.Contains(s, "release") || !strings.Contains(s, "held") {
		t.Fatalf("String() = %q", s)
	}
	if got := (Event{Entity: EntityReaders}).Label(); got != "readers" {
		t.Fatalf("readers label = %q", got)
	}
	if got := (Event{Entity: EntityWriters}).Label(); got != "writers" {
		t.Fatalf("writers label = %q", got)
	}
	if out := Format([]Event{e}); !strings.HasSuffix(out, "\n") {
		t.Fatalf("Format = %q", out)
	}
}

// Aggregate reconstructs the paper's measurements from a synthetic
// two-entity stream with a 3:1 hold imbalance and known idle time.
func TestAggregateImbalance(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	evs := []Event{
		// hog: holds [0,3) and [4,7); light: holds [3,4) and [8,9).
		{At: ms(0), Kind: KindAcquire, Lock: "db", Entity: 1, Name: "hog"},
		{At: ms(3), Kind: KindRelease, Lock: "db", Entity: 1, Name: "hog", Detail: ms(3)},
		{At: ms(3), Kind: KindAcquire, Lock: "db", Entity: 2, Name: "light"},
		{At: ms(4), Kind: KindRelease, Lock: "db", Entity: 2, Name: "light", Detail: ms(1)},
		{At: ms(4), Kind: KindAcquire, Lock: "db", Entity: 1, Name: "hog"},
		{At: ms(7), Kind: KindRelease, Lock: "db", Entity: 1, Name: "hog", Detail: ms(3)},
		{At: ms(7), Kind: KindBan, Lock: "db", Entity: 1, Name: "hog", Detail: ms(5)},
		{At: ms(7), Kind: KindSliceEnd, Lock: "db", Entity: 1, Name: "hog", Detail: ms(6)},
		{At: ms(8), Kind: KindAcquire, Lock: "db", Entity: 2, Name: "light", Detail: ms(1)},
		{At: ms(9), Kind: KindRelease, Lock: "db", Entity: 2, Name: "light", Detail: ms(1)},
	}
	locks := Aggregate(evs)
	if len(locks) != 1 {
		t.Fatalf("locks = %d", len(locks))
	}
	l := locks[0]
	if l.Lock != "db" || len(l.Entities) != 2 {
		t.Fatalf("lock %q entities %d", l.Lock, len(l.Entities))
	}
	hog, light := l.Entities[0], l.Entities[1]
	if hog.Label != "hog" { // sorted by hold desc
		t.Fatalf("dominant entity = %q", hog.Label)
	}
	if hog.Hold != ms(6) || light.Hold != ms(2) {
		t.Fatalf("holds %v / %v, want 6ms / 2ms", hog.Hold, light.Hold)
	}
	if hog.Bans != 1 || hog.BanTime != ms(5) || hog.SliceEnds != 1 {
		t.Fatalf("hog bans %d banTime %v sliceEnds %d", hog.Bans, hog.BanTime, hog.SliceEnds)
	}
	if l.Span != ms(9) || l.Busy != ms(8) || l.Idle != ms(1) {
		t.Fatalf("span %v busy %v idle %v", l.Span, l.Busy, l.Idle)
	}
	// LOT: hog 6+1=7, light 2+1=3.
	if got := l.LOT(light); got != ms(3) {
		t.Fatalf("light LOT = %v", got)
	}
	if j := l.JainHold(); j > 0.9 {
		t.Fatalf("Jain(hold) = %.3f, want imbalance visible (< 0.9)", j)
	}
	out := l.String()
	for _, want := range []string{"hog", "light", "Jain(hold)", "ban time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestAggregateUnterminatedHold(t *testing.T) {
	// Stream ends while held: busy extends to the last event, idle 0.
	evs := []Event{
		{At: 0, Kind: KindAcquire, Entity: 1},
		{At: time.Millisecond, Kind: KindHandoff, Entity: 2},
	}
	l := Aggregate(evs)[0]
	if l.Busy != time.Millisecond || l.Idle != 0 {
		t.Fatalf("busy %v idle %v", l.Busy, l.Idle)
	}
	var e2 *EntityTotals
	for _, e := range l.Entities {
		if e.Entity == 2 {
			e2 = e
		}
	}
	if e2 == nil || e2.Handoffs != 1 {
		t.Fatalf("handoff not counted: %+v", e2)
	}
}

func TestRingIsATracer(t *testing.T) {
	r := NewRing(16)
	var e Event
	r.OnAcquire(e)
	r.OnRelease(e)
	r.OnSliceEnd(e)
	r.OnBan(e)
	r.OnHandoff(e)
	if got := len(r.Events()); got != 5 {
		t.Fatalf("hooks recorded %d events, want 5", got)
	}
}

func TestAggregateKeysSimDumpsByName(t *testing.T) {
	// Simulator dumps carry names but zero entity IDs; entities must not
	// collapse into one.
	evs := []Event{
		{At: 0, Kind: KindAcquire, Name: "t0"},
		{At: 1, Kind: KindRelease, Name: "t0", Detail: 1},
		{At: 2, Kind: KindAcquire, Name: "t1"},
		{At: 3, Kind: KindRelease, Name: "t1", Detail: 1},
	}
	l := Aggregate(evs)[0]
	if len(l.Entities) != 2 {
		t.Fatalf("entities = %d, want 2", len(l.Entities))
	}
}

func BenchmarkRingRecord(b *testing.B) {
	r := NewRing(1 << 12)
	e := Event{At: 1, Kind: KindAcquire, Entity: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
	_ = fmt.Sprint(r.Seen())
}
