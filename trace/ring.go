package trace

import "sync/atomic"

// Ring is a lock-free bounded recorder of Events: writers never block and
// never take a lock, memory is fixed at construction, and when the buffer
// wraps the oldest events are dropped (and counted) rather than stalling
// the lock that is emitting. It is safe for any number of concurrent
// writers and readers, and it implements scl.Tracer, so it can be plugged
// directly into scl.Options.Tracer (or RWLock.SetTracer) as an always-on
// flight recorder.
//
// Each Record costs one atomic increment plus one small allocation; with
// tracing disabled (a nil Tracer) the locks pay only a nil check.
type Ring struct {
	mask  uint64
	slots []atomic.Pointer[record]
	head  atomic.Uint64 // next write index; head-1 is the newest event
}

// record tags the stored event with its write index so snapshot readers
// can detect a slot overwritten mid-scan.
type record struct {
	idx uint64
	ev  Event
}

// DefaultRingCap is the capacity used when NewRing is given a
// non-positive one: 64Ki events, a few MB of flight recorder.
const DefaultRingCap = 1 << 16

// NewRing returns a ring holding at most cap events (rounded up to a
// power of two; non-positive means DefaultRingCap).
func NewRing(cap int) *Ring {
	if cap <= 0 {
		cap = DefaultRingCap
	}
	n := 1
	for n < cap {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]atomic.Pointer[record], n)}
}

// Cap returns the ring's capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Record stores one event, overwriting the oldest if the ring is full.
func (r *Ring) Record(ev Event) {
	i := r.head.Add(1) - 1
	r.slots[i&r.mask].Store(&record{idx: i, ev: ev})
}

// Seen returns the total number of events recorded since construction,
// including those already overwritten.
func (r *Ring) Seen() uint64 { return r.head.Load() }

// Dropped returns how many events have been dropped (overwritten by
// wrap-around). Seen() − Dropped() events are retrievable via Events.
func (r *Ring) Dropped() uint64 {
	if h, c := r.head.Load(), uint64(len(r.slots)); h > c {
		return h - c
	}
	return 0
}

// Events returns a snapshot of the retained events, oldest first. Slots
// overwritten by writers racing the snapshot are skipped (they belong to
// a newer generation and will appear in the next snapshot).
func (r *Ring) Events() []Event {
	head := r.head.Load()
	n := uint64(len(r.slots))
	if head < n {
		n = head
	}
	out := make([]Event, 0, n)
	for i := head - n; i < head; i++ {
		rec := r.slots[i&r.mask].Load()
		if rec == nil || rec.idx != i {
			continue // not yet published, or lapped by a newer write
		}
		out = append(out, rec.ev)
	}
	return out
}

// The scl.Tracer hooks: a Ring records every kind.

// OnAcquire implements scl.Tracer.
func (r *Ring) OnAcquire(ev Event) { r.Record(ev) }

// OnRelease implements scl.Tracer.
func (r *Ring) OnRelease(ev Event) { r.Record(ev) }

// OnSliceEnd implements scl.Tracer.
func (r *Ring) OnSliceEnd(ev Event) { r.Record(ev) }

// OnBan implements scl.Tracer.
func (r *Ring) OnBan(ev Event) { r.Record(ev) }

// OnHandoff implements scl.Tracer.
func (r *Ring) OnHandoff(ev Event) { r.Record(ev) }

// OnAbandon implements scl.Tracer.
func (r *Ring) OnAbandon(ev Event) { r.Record(ev) }

// OnReap implements scl.Tracer.
func (r *Ring) OnReap(ev Event) { r.Record(ev) }

// OnCombine implements scl.Tracer.
func (r *Ring) OnCombine(ev Event) { r.Record(ev) }
