package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"scl/internal/metrics"
)

// EntityTotals accumulates one entity's usage from an event stream.
type EntityTotals struct {
	// Label identifies the entity (Event.Label of its events).
	Label string
	// Entity is the entity ID from the events.
	Entity int64
	// Acquires and Releases count the matching events.
	Acquires, Releases int64
	// Hold is cumulative critical-section time (Σ release details).
	Hold time.Duration
	// Holds and Waits are the per-operation samples, for distributions.
	Holds, Waits []time.Duration
	// Bans counts penalties imposed; BanTime is their total length.
	Bans    int64
	BanTime time.Duration
	// Handoffs counts ownership grants to this entity; SliceEnds counts
	// slice expirations charged to it.
	Handoffs, SliceEnds int64
	// Abandons counts cancelled acquisitions (LockContext and friends
	// giving up mid-ban or mid-queue); AbandonWait is the total time those
	// attempts had waited before abandoning.
	Abandons    int64
	AbandonWait time.Duration
	// Reaps counts inactive-entity GC removals of this entity
	// (scl.WithInactiveGC): distinct idle periods after which its
	// accounting state was dropped and later re-created on return.
	Reaps int64
}

// LockTotals aggregates one lock's event stream.
type LockTotals struct {
	// Lock is the lock's name ("" for events from an unnamed lock).
	Lock string
	// Span is the time between the first and last event.
	Span time.Duration
	// Busy is the union of held intervals; Idle is Span − Busy.
	Busy, Idle time.Duration
	// Entities, sorted by descending hold time.
	Entities []*EntityTotals
}

// LOT returns an entity's lock opportunity time (paper eq. 1): its own
// hold time plus the lock's idle time.
func (l *LockTotals) LOT(e *EntityTotals) time.Duration { return e.Hold + l.Idle }

// JainHold computes Jain's fairness index over the entities' hold times.
func (l *LockTotals) JainHold() float64 {
	xs := make([]float64, len(l.Entities))
	for i, e := range l.Entities {
		xs[i] = float64(e.Hold)
	}
	return metrics.Jain(xs)
}

// JainLOT computes Jain's fairness index over lock opportunity times.
func (l *LockTotals) JainLOT() float64 {
	xs := make([]float64, len(l.Entities))
	for i, e := range l.Entities {
		xs[i] = float64(l.LOT(e))
	}
	return metrics.Jain(xs)
}

// Aggregate reconstructs per-lock, per-entity usage accounting from an
// event stream: hold totals and distributions from release events, wait
// distributions from acquire events, ban totals, and the lock's busy/idle
// split (holder-count integral over acquire/release pairs). This is the
// replay path of cmd/scltop: the same fairness numbers the live Stats()
// snapshots report, recomputed from a ring-buffer dump.
//
// Locks are keyed by Event.Lock, entities by Event.Label, so dumps from
// the simulator (task names, no IDs) and from the real locks aggregate
// identically.
func Aggregate(evs []Event) []*LockTotals {
	type lockState struct {
		totals   *LockTotals
		entities map[string]*EntityTotals
		holders  int
		busyFrom time.Duration
		first    time.Duration
		last     time.Duration
		seen     bool
	}
	locks := make(map[string]*lockState)
	get := func(ev Event) *lockState {
		ls, ok := locks[ev.Lock]
		if !ok {
			ls = &lockState{
				totals:   &LockTotals{Lock: ev.Lock},
				entities: make(map[string]*EntityTotals),
			}
			locks[ev.Lock] = ls
		}
		if !ls.seen {
			ls.first, ls.seen = ev.At, true
		}
		ls.last = ev.At
		return ls
	}
	ent := func(ls *lockState, ev Event) *EntityTotals {
		label := ev.Label()
		e, ok := ls.entities[label]
		if !ok {
			e = &EntityTotals{Label: label, Entity: ev.Entity}
			ls.entities[label] = e
			ls.totals.Entities = append(ls.totals.Entities, e)
		}
		return e
	}
	for _, ev := range evs {
		ls := get(ev)
		e := ent(ls, ev)
		switch ev.Kind {
		case KindAcquire:
			e.Acquires++
			e.Waits = append(e.Waits, ev.Detail)
			if ls.holders == 0 {
				ls.busyFrom = ev.At
			}
			ls.holders++
		case KindRelease:
			e.Releases++
			e.Hold += ev.Detail
			e.Holds = append(e.Holds, ev.Detail)
			if ls.holders > 0 {
				ls.holders--
				if ls.holders == 0 {
					ls.totals.Busy += ev.At - ls.busyFrom
				}
			}
		case KindBan:
			e.Bans++
			e.BanTime += ev.Detail
		case KindHandoff:
			e.Handoffs++
		case KindSliceEnd:
			e.SliceEnds++
		case KindAbandon:
			e.Abandons++
			e.AbandonWait += ev.Detail
		case KindReap:
			e.Reaps++
		}
	}
	out := make([]*LockTotals, 0, len(locks))
	for _, ls := range locks {
		t := ls.totals
		if ls.holders > 0 { // stream ended mid-hold: busy through the last event
			t.Busy += ls.last - ls.busyFrom
		}
		t.Span = ls.last - ls.first
		if t.Span > t.Busy {
			t.Idle = t.Span - t.Busy
		}
		sort.Slice(t.Entities, func(i, j int) bool { return t.Entities[i].Hold > t.Entities[j].Hold })
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lock < out[j].Lock })
	return out
}

// String renders the aggregate as a table per lock: the replay analogue
// of a lockstat report (ops, hold, LOT, ban time, hold/wait quantiles).
func (l *LockTotals) String() string {
	name := l.Lock
	if name == "" {
		name = "(unnamed lock)"
	}
	var b strings.Builder
	t := metrics.NewTable(
		"lock "+name,
		"entity", "ops", "hold", "hold%", "LOT", "bans", "ban time", "cancels", "hold p50µs", "hold p99µs", "wait p99µs")
	for _, e := range l.Entities {
		holdPct := 0.0
		if l.Span > 0 {
			holdPct = 100 * float64(e.Hold) / float64(l.Span)
		}
		hd := metrics.Summarize(e.Holds)
		wd := metrics.Summarize(e.Waits)
		t.AddRow(e.Label, e.Acquires,
			e.Hold.Round(time.Microsecond).String(), holdPct,
			l.LOT(e).Round(time.Microsecond).String(),
			e.Bans, e.BanTime.Round(time.Microsecond).String(), e.Abandons,
			metrics.Micros(hd.P50), metrics.Micros(hd.P99), metrics.Micros(wd.P99))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "span %v  idle %v  Jain(hold) %.3f  Jain(LOT) %.3f\n",
		l.Span.Round(time.Microsecond), l.Idle.Round(time.Microsecond),
		l.JainHold(), l.JainLOT())
	return b.String()
}
