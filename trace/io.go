package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSONL writes events as JSON lines (one event object per line), the
// dump format cmd/scltop replays. Timestamps stay in the emitting
// process's monotonic nanoseconds.
func WriteJSONL(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSON-lines event dump written by WriteJSONL. Blank
// lines are skipped; a malformed line fails with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var evs []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}
