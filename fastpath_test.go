package scl

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"scl/trace"
)

// recTracer records every event in order (thread-safe: the fast path may
// invoke hooks without the lock's internal mutex).
type recTracer struct {
	mu  sync.Mutex
	evs []trace.Event
}

func (r *recTracer) add(ev trace.Event) {
	r.mu.Lock()
	r.evs = append(r.evs, ev)
	r.mu.Unlock()
}

func (r *recTracer) OnAcquire(ev trace.Event)  { r.add(ev) }
func (r *recTracer) OnRelease(ev trace.Event)  { r.add(ev) }
func (r *recTracer) OnSliceEnd(ev trace.Event) { r.add(ev) }
func (r *recTracer) OnBan(ev trace.Event)      { r.add(ev) }
func (r *recTracer) OnHandoff(ev trace.Event)  { r.add(ev) }
func (r *recTracer) OnAbandon(ev trace.Event)  { r.add(ev) }
func (r *recTracer) OnReap(ev trace.Event)     { r.add(ev) }
func (r *recTracer) OnCombine(ev trace.Event)  { r.add(ev) }

func (r *recTracer) events() []trace.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]trace.Event(nil), r.evs...)
}

// normalize renders the deterministic parts of an event stream: kind and
// entity name, one line per event. Timestamps and durations are wall-clock
// and excluded.
func normalize(evs []trace.Event) string {
	var b strings.Builder
	for _, ev := range evs {
		fmt.Fprintf(&b, "%s %s\n", ev.Kind, ev.Name)
	}
	return b.String()
}

// TestScriptedScheduleEventStream runs a fixed, sequential lock schedule
// and compares the tracer event stream against a golden transcript. The
// golden was recorded on the pre-fast-path implementation; the atomic
// slice-owner fast path must reproduce it byte-for-byte (acceptance
// criterion: identical event streams before/after the fast path).
func TestScriptedScheduleEventStream(t *testing.T) {
	rec := &recTracer{}
	m := NewMutex(Options{Slice: 40 * time.Millisecond, Name: "scripted", Tracer: rec})
	a := m.Register().SetName("A")
	b := m.Register().SetName("B")

	// Script: A takes the slice and re-acquires three times (fast-path
	// territory), holds through the slice end on the fourth, draws a ban
	// (it used 100% against a registered peer), then B runs a slice.
	for i := 0; i < 3; i++ {
		a.Lock()
		time.Sleep(time.Millisecond)
		a.Unlock()
	}
	a.Lock()
	time.Sleep(45 * time.Millisecond) // overruns the 40ms slice
	a.Unlock()                        // slice end + ban computed here
	b.Lock()                          // fresh slice for B (A's slice is over)
	time.Sleep(time.Millisecond)
	b.Unlock()

	got := normalize(rec.events())
	want := strings.Join([]string{
		"acquire A",
		"release A",
		"acquire A",
		"release A",
		"acquire A",
		"release A",
		"acquire A",
		"release A",
		"slice-end A",
		"ban A",
		"acquire B",
		"release B",
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("event stream diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The same schedule must land in the stats counters exactly.
	s := m.Stats()
	if s.Acquisitions[a.ID()] != 4 || s.Acquisitions[b.ID()] != 1 {
		t.Fatalf("acquisitions = %d/%d, want 4/1", s.Acquisitions[a.ID()], s.Acquisitions[b.ID()])
	}
	if s.Bans[a.ID()] != 1 || s.BanTime[a.ID()] == 0 {
		t.Fatalf("bans = %d (%v), want 1", s.Bans[a.ID()], s.BanTime[a.ID()])
	}
	if s.Hold[a.ID()] < 45*time.Millisecond {
		t.Fatalf("A hold = %v, want >= 45ms", s.Hold[a.ID()])
	}
	if s.Hold[b.ID()] < time.Millisecond {
		t.Fatalf("B hold = %v, want >= 1ms", s.Hold[b.ID()])
	}
}

// TestScriptedKSCLEventStream is the same idea on a k-SCL (zero slice):
// every release is a slice boundary, so the transcript interleaves
// slice-end events with each release and exercises ownership transfer.
func TestScriptedKSCLEventStream(t *testing.T) {
	rec := &recTracer{}
	m := NewMutex(Options{Slice: -1, Name: "kscl", Tracer: rec})
	a := m.Register().SetName("A")

	// A lone entity on a k-SCL: each release ends the slice, no bans.
	for i := 0; i < 3; i++ {
		a.Lock()
		a.Unlock()
	}
	got := normalize(rec.events())
	want := strings.Join([]string{
		"acquire A",
		"release A",
		"slice-end A",
		"acquire A",
		"release A",
		"slice-end A",
		"acquire A",
		"release A",
		"slice-end A",
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("event stream diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	s := m.Stats()
	if s.Acquisitions[a.ID()] != 3 {
		t.Fatalf("acquisitions = %d, want 3", s.Acquisitions[a.ID()])
	}
	if s.Bans[a.ID()] != 0 {
		t.Fatalf("lone entity banned %d times", s.Bans[a.ID()])
	}
}
