//go:build !scldebug

package scl

// debugChecks is false in release builds: invariant assertions in the
// lock hot paths compile away entirely. Build with -tags scldebug (as
// `make check` does for the race suite) to enable them.
const debugChecks = false

func debugFail(string) {}
