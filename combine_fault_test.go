package scl

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestAbandonGrantedWakesCombiners pins the liveness contract between the
// cancellation path and the combining stack: when a cancelled waiter's
// in-flight grant is retired with nobody left to grant to (abandon →
// regrantLocked), the word goes fully idle, and a Handle.Do publisher
// that parked while the transfer bit was up must be woken to self-serve
// — no release path is coming to drain it. The test manufactures the
// held-clear→transfer-set window directly (a grant to A in flight, A not
// yet resumed), parks a publisher against it, then abandons the grant.
func TestAbandonGrantedWakesCombiners(t *testing.T) {
	// Force a zero spin budget so the publisher parks on its wake channel
	// immediately — the parked case is the one the wake-walk exists for.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	m := NewMutex(Options{Slice: 10 * time.Millisecond})
	a := m.Register() // the granted-then-cancelled waiter's entity
	p := m.Register() // the publisher

	// A grant to A is in flight: transfer bit up, waiter marked granted,
	// A has not taken the lock yet. This is exactly the state after
	// transferLocked grants the head waiter, before the grantee resumes.
	w := &waiter{h: a, wake: make(chan struct{}, 1)}
	w.granted.Store(true)
	m.lockMu()
	m.next = w
	m.mutate(func(x uint64) uint64 { return x | wordTransfer })
	m.syncWaitersBit()
	m.unlockMu()

	var ran atomic.Bool
	done := make(chan struct{})
	go func() {
		p.Do(func() { ran.Store(true) })
		close(done)
	}()
	// Wait until the section is published; with a zero spin budget the
	// publisher then parks (the transfer bit keeps it from withdrawing).
	deadline := time.Now().Add(5 * time.Second)
	for m.combine.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("publisher never published")
		}
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(2 * time.Millisecond)

	// The grantee abandons. regrantLocked finds nobody else to grant to
	// and retires the transfer — the lock is now fully idle, and only the
	// abandon path's wake-walk can unpark the publisher.
	m.abandon(w, monotime())

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do publisher wedged after an abandoned grant left the lock idle (missing wakeCombiners)")
	}
	if !ran.Load() {
		t.Fatal("published section never ran")
	}
	// The lock is idle and consistent: plain acquires work for both.
	a.Lock()
	a.Unlock()
	p.Lock()
	p.Unlock()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after abandon: %v", err)
	}
}

// TestDoClosurePanicDoesNotWedge: a Do closure that panics (documented as
// forbidden) must fail loudly, not wedge the lock. The drain re-raises
// the panic scl-identified on the combiner's goroutine, resolves the
// panicking publisher as done, bounces unexecuted batch-mates back to
// the classic path (exactly-once preserved), and leaves the lock usable.
func TestDoClosurePanicDoesNotWedge(t *testing.T) {
	m := NewMutex(Options{Slice: 10 * time.Millisecond})
	holder := m.Register()
	innocent := m.Register()
	bomber := m.Register()

	holder.Lock()

	// Publish the innocent section first, the panicking one second: the
	// stack is LIFO, so the drain executes the bomber first and never
	// reaches the innocent closure.
	var innocentRuns atomic.Int32
	innocentDone := make(chan struct{})
	go func() {
		innocent.Do(func() { innocentRuns.Add(1) })
		close(innocentDone)
	}()
	waitPublished(t, m, 1)
	bomberDone := make(chan struct{})
	go func() {
		bomber.Do(func() { panic("boom") })
		close(bomberDone)
	}()
	waitPublished(t, m, 2)

	// The release drains the batch on this goroutine; the closure's panic
	// must surface here, identified as a Do contract violation.
	func() {
		defer func() {
			pv := recover()
			if pv == nil {
				t.Fatal("Unlock did not re-raise the Do closure panic")
			}
			msg, ok := pv.(string)
			if !ok || !strings.Contains(msg, "scl: Handle.Do critical section panicked") || !strings.Contains(msg, "boom") {
				t.Fatalf("panic value = %v, want an scl-identified wrap of the closure panic", pv)
			}
		}()
		holder.Unlock()
	}()

	// Both publishers must resolve: the bomber as executed, the innocent
	// via its classic-path fallback (running exactly once).
	for name, ch := range map[string]chan struct{}{"bomber": bomberDone, "innocent": innocentDone} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s publisher wedged after a batch-mate panicked", name)
		}
	}
	if n := innocentRuns.Load(); n != 1 {
		t.Fatalf("innocent section ran %d times, want exactly once", n)
	}
	// The held bit was retired and the boundary ran: the lock survives.
	for _, h := range []*Handle{holder, innocent, bomber} {
		h.Lock()
		h.Unlock()
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after closure panic: %v", err)
	}
}

// waitPublished polls until the combining stack holds n requests.
func waitPublished(t *testing.T, m *Mutex, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		count := 0
		for r := m.combine.Load(); r != nil; r = r.next.Load() {
			count++
		}
		if count >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("combining stack never reached %d published sections", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestRWDoClosurePanicDoesNotWedge is the writer-side analogue: a
// panicking RWLock.Do closure is re-raised scl-identified on the
// draining writer's goroutine, and the write phase closes out so both
// classes can still get in.
func TestRWDoClosurePanicDoesNotWedge(t *testing.T) {
	l := NewRWLock(1, 1, 10*time.Millisecond)

	l.WLock()
	done := make(chan struct{})
	go func() {
		l.Do(func() { panic("boom") })
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for l.wcombine.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("writer section never published")
		}
		time.Sleep(100 * time.Microsecond)
	}

	func() {
		defer func() {
			pv := recover()
			if pv == nil {
				t.Fatal("WUnlock did not re-raise the Do closure panic")
			}
			msg, ok := pv.(string)
			if !ok || !strings.Contains(msg, "scl: RWLock.Do critical section panicked") || !strings.Contains(msg, "boom") {
				t.Fatalf("panic value = %v, want an scl-identified wrap of the closure panic", pv)
			}
		}()
		l.WUnlock()
	}()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do publisher wedged after its closure panicked")
	}
	// The writer-active bit was retired: both classes still get in.
	l.WLock()
	l.WUnlock()
	l.RLock()
	l.RUnlock()
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants after closure panic: %v", err)
	}
}
