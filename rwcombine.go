package scl

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"scl/internal/check"
	"scl/trace"
)

// Writer-side combining for the RW-SCL (DESIGN.md §9). RWLock.Do is the
// class analogue of Handle.Do: a writer that finds another writer active
// publishes its critical section instead of queueing for the write
// phase, and the active writer executes a bounded batch on its way out,
// while the writer-active bit still excludes both classes. Charging is
// simpler than the mutex's: the class is the schedulable entity, so the
// interval accounting (charge) books the drain's wall-clock automatically
// as writer hold — there is no per-entity batch to fold.

// rwCombineReq is one published writer critical section.
type rwCombineReq struct {
	next  atomic.Pointer[rwCombineReq]
	fn    func()
	state atomic.Int32  // combinePending/Claimed/Cancelled/Done
	wake  chan struct{} // buffered(1)
	since time.Duration // publish time, for the acquire event's wait detail
}

// Do runs fn while holding the lock exclusive, like WLock(); fn();
// WUnlock(), but when another writer is active the critical section may
// be executed by that writer on the caller's behalf instead of waiting
// for the write phase's next grant. fn runs exactly once, under full
// mutual exclusion (no reader or writer concurrently), and its run time
// is charged to the writer class either way. fn must not use this RWLock
// and must not panic; it may run on another writer's goroutine. A panic
// that escapes fn anyway is re-raised, scl-identified, on whichever
// goroutine ran the closure; the lock itself stays usable.
func (l *RWLock) Do(fn func()) {
	now := monotime()
	if l.fastWLock(now) {
		fn()
		l.WUnlock()
		return
	}
	if l.word.Load()&rwWActive == 0 {
		l.doClassic(fn)
		return
	}
	r := &rwCombineReq{fn: fn, wake: make(chan struct{}, 1), since: now}
	for {
		old := l.wcombine.Load()
		r.next.Store(old)
		check.Point("rw.combine.publish")
		if l.wcombine.CompareAndSwap(old, r) {
			break
		}
	}
	if l.combineWait(r) {
		return
	}
	l.doClassic(fn)
}

// doClassic is Do through the ordinary write acquire.
func (l *RWLock) doClassic(fn func()) {
	l.WLock()
	fn()
	l.WUnlock()
}

// combineWait blocks until the request is executed (true) or must be
// self-served (false: the writer-active bit cleared with the request
// still unclaimed — nobody is coming to drain it — or the drain bounced
// it back because an earlier closure in the batch panicked). Same
// protocol as the mutex publisher's wait; see Mutex.combineWait.
func (l *RWLock) combineWait(r *rwCombineReq) bool {
	if _, handled := check.WaitOrDone("rw.combine.wait", func() bool {
		s := r.state.Load()
		return s != combinePending && s != combineClaimed ||
			s == combinePending && l.word.Load()&rwWActive == 0
	}, nil); handled {
		for {
			switch r.state.Load() {
			case combineDone:
				return true
			case combineRejected:
				return false
			case combinePending:
				if r.state.CompareAndSwap(combinePending, combineCancelled) {
					return false
				}
			default: // claimed: execution is imminent
				check.WaitOrDone("rw.combine.claimed", func() bool {
					return r.state.Load() >= combineCancelled
				}, nil)
			}
		}
	}
	budget := combineSpinBudget()
	for spins := 0; ; {
		switch r.state.Load() {
		case combineDone:
			return true
		case combineRejected:
			return false
		case combinePending:
			if l.word.Load()&rwWActive == 0 {
				if r.state.CompareAndSwap(combinePending, combineCancelled) {
					return false
				}
				continue
			}
		}
		if spins < budget {
			spins++
			runtime.Gosched()
			continue
		}
		<-r.wake
	}
}

// wakeWCombiners wake-walks the writer combining stack once no writer is
// active, so still-pending publishers observe the clear bit and withdraw
// to the classic path. Safe without l.mu (reads and non-blocking sends
// only); the ordering argument mirrors Mutex.wakeCombiners.
func (l *RWLock) wakeWCombiners() {
	r := l.wcombine.Load()
	if r == nil || l.word.Load()&rwWActive != 0 {
		return
	}
	for ; r != nil; r = r.next.Load() {
		if r.state.Load() == combinePending {
			select {
			case r.wake <- struct{}{}:
			default:
			}
		}
	}
}

// drainWCombine executes a batch of published writer sections while the
// caller still owns the writer-active bit, then books them: the interval
// accounting charges the drain as writer hold when the caller's release
// charge lands, so only the op count and events need explicit handling.
// l.mu held on entry and exit; returns the post-drain clock.
func (l *RWLock) drainWCombine(now time.Duration) time.Duration {
	check.Point("rw.combine.drain")
	head := l.wcombine.Swap(nil)
	if head == nil {
		return now
	}
	var batch []*rwCombineReq
	var overflow []*rwCombineReq
	for r := head; r != nil; r = r.next.Load() {
		switch {
		case r.state.Load() != combinePending:
			// Withdrawn — the publisher self-serves; drop it.
		case len(batch) < combineBatch:
			if r.state.CompareAndSwap(combinePending, combineClaimed) {
				batch = append(batch, r)
			}
		default:
			overflow = append(overflow, r)
		}
	}
	for i := len(overflow) - 1; i >= 0; i-- {
		r := overflow[i]
		for {
			old := l.wcombine.Load()
			r.next.Store(old)
			if l.wcombine.CompareAndSwap(old, r) {
				break
			}
		}
	}
	if len(batch) == 0 {
		return now
	}
	l.unlockMu()
	t := l.loadTracer()
	var total time.Duration
	type span struct{ start, end time.Duration }
	var spans []span
	if t != nil {
		spans = make([]span, len(batch))
	}
	ran := 0
	// Same contract-violation backstop as Mutex.drainCombine: a closure
	// that panics (or Goexits) would otherwise leave the writer-active
	// bit up and the claimed publishers parked forever, with the unwind
	// skipping WUnlock's remaining release logic. Resolve the batch,
	// close out the write phase, and let the panic continue
	// scl-identified.
	defer func() {
		if ran == len(batch) {
			return // every closure completed; the booking below ran normally
		}
		pv := recover()
		for i, r := range batch {
			if i <= ran {
				// Executed (including the closure that blew up): resolve as
				// done — exactly-once forbids a classic-path re-run.
				r.state.Store(combineDone)
			} else {
				// Never started: bounce it to the classic path.
				r.state.Store(combineRejected)
			}
			select {
			case r.wake <- struct{}{}:
			default:
			}
		}
		l.lockMu()
		now := monotime()
		l.charge(0, true, now) // the drain ran inside the writer-active window
		l.mutateWord(func(x uint64) uint64 { return x &^ rwWActive })
		l.advanceLocked(now)
		l.unlockMu()
		l.wakeWCombiners()
		if pv != nil {
			panic(fmt.Sprintf("scl: RWLock.Do critical section panicked: %v", pv))
		}
		// pv == nil means runtime.Goexit: the unwind continues on its own.
	}()
	at := monotime()
	for i, r := range batch {
		start := at
		r.fn()
		at = monotime()
		if t != nil {
			spans[i] = span{start, at}
		}
		total += at - start
		ran++
	}
	l.lockMu()
	now = monotime()
	// The closures ran inside the caller's writer-active window, so the
	// caller's next charge(0, true, ...) books the drain as writer hold;
	// only ops and events remain.
	l.writerOps.Add(int64(len(batch)))
	l.writerCombines.Add(int64(len(batch)))
	if t != nil {
		t.OnCombine(l.event(trace.KindCombine, now, trace.EntityWriters, total))
		for i, r := range batch {
			wait := spans[i].start - r.since
			if wait < 0 {
				wait = 0
			}
			t.OnAcquire(l.event(trace.KindAcquire, spans[i].start, trace.EntityWriters, wait))
			t.OnRelease(l.event(trace.KindRelease, spans[i].end, trace.EntityWriters, spans[i].end-spans[i].start))
		}
	}
	check.Point("rw.combine.handoff")
	for _, r := range batch {
		r.state.Store(combineDone)
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
	return now
}
