package scl

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scl/trace"
)

// waitEntities polls Stats (which drives the lazy GC) until the lock's
// registered-entity count drops to at most want, or two seconds pass.
func waitEntities(t *testing.T, m *Mutex, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for m.Entities() > want && time.Now().Before(deadline) {
		m.Stats()
		time.Sleep(2 * time.Millisecond)
	}
	if n := m.Entities(); n > want {
		t.Fatalf("%d entities registered, want <= %d", n, want)
	}
}

// TestInactiveGCReapsIdle is the deterministic core of the entity GC:
// entities that stop using the lock and idle past the threshold are
// removed from the accounting, their per-entity stats entries go with
// them, the reap counters record the departure, and a reap trace event
// fires per entity.
func TestInactiveGCReapsIdle(t *testing.T) {
	tr := &recTracer{}
	m := NewMutex(
		Options{Slice: time.Millisecond, Tracer: tr},
		WithInactiveGC(10*time.Millisecond),
	)
	const n = 8
	for i := 0; i < n; i++ {
		h := m.Register()
		h.Lock()
		h.Unlock()
	}
	waitEntities(t, m, 0)

	snap := m.Stats()
	if snap.Reaped != n {
		t.Errorf("Reaped = %d, want %d", snap.Reaped, n)
	}
	if got := len(snap.Hold); got != 0 {
		t.Errorf("%d per-entity stats entries survived the reap", got)
	}
	var reaps int
	for _, ev := range tr.events() {
		if ev.Kind == trace.KindReap {
			reaps++
			if ev.Detail < 10*time.Millisecond {
				t.Errorf("reap event idle %v below the 10ms threshold", ev.Detail)
			}
		}
	}
	if reaps != n {
		t.Errorf("%d reap events traced, want %d", reaps, n)
	}
}

// TestGCDisabledKeepsEntities is the control: without WithInactiveGC a
// departed-but-unclosed entity is kept forever.
func TestGCDisabledKeepsEntities(t *testing.T) {
	m := NewMutex(Options{Slice: time.Millisecond})
	h := m.Register()
	h.Lock()
	h.Unlock()
	time.Sleep(20 * time.Millisecond)
	if snap := m.Stats(); snap.Registered != 1 || snap.Reaped != 0 {
		t.Fatalf("Registered = %d, Reaped = %d without GC, want 1 and 0",
			snap.Registered, snap.Reaped)
	}
}

// TestReapedHandleReturns exercises the re-registration path: a handle
// whose entity was reaped must keep working — its next acquisition
// re-registers the entity through the join-credit floor, restores the
// sibling refcount, and a later Close still removes everything.
func TestReapedHandleReturns(t *testing.T) {
	m := NewMutex(Options{Slice: time.Millisecond}, WithInactiveGC(5*time.Millisecond))
	h := m.Register()
	h.Lock()
	h.Unlock()
	waitEntities(t, m, 0)

	// The handle outlived its accounting state; using it again must be
	// indistinguishable from a fresh registration.
	h.Lock()
	h.Unlock()
	if n := m.Entities(); n != 1 {
		t.Fatalf("%d entities after a reaped handle reacquired, want 1", n)
	}
	h.Close()
	if n := m.Entities(); n != 0 {
		t.Fatalf("%d entities after Close, want 0", n)
	}

	// Close on a handle that was reaped while idle must also be clean —
	// no negative refcount, no phantom re-registration.
	h2 := m.Register()
	h2.Lock()
	h2.Unlock()
	waitEntities(t, m, 0)
	h2.Close()
	if n := m.Entities(); n != 0 {
		t.Fatalf("%d entities after Close of a reaped handle, want 0", n)
	}
}

// TestCloseWhileHoldingConverges covers the deferred-unregistration
// bugfix: Close while the entity holds the lock (slow-path hold) must not
// strand weight in the accountant — the final Unlock finishes the
// unregistration with the same books an ordinary Close produces.
func TestCloseWhileHoldingConverges(t *testing.T) {
	m := NewMutex(Options{Slice: time.Millisecond})
	peer := m.Register()
	defer peer.Close()
	h := m.Register()

	h.Lock()
	h.Close()
	if n := m.Entities(); n != 2 {
		t.Fatalf("%d entities while closed holder is in flight, want 2 (deferred)", n)
	}
	h.Unlock()
	if n := m.Entities(); n != 1 {
		t.Fatalf("%d entities after the closed holder released, want 1", n)
	}
}

// TestCloseWhileFastPathHeldConverges is the same convergence through the
// lock-free fast path: the hold is invisible to the accountant (deferred
// accounting), so Close must shut the release out of its fast path with
// the stale bit; the slow-path release then observes the closed refcount.
func TestCloseWhileFastPathHeldConverges(t *testing.T) {
	m := NewMutex(Options{Slice: time.Hour})
	h := m.Register()
	h.Lock()
	h.Unlock() // h now owns the slice; the next acquire is lock-free
	h.Lock()
	h.Close()
	h.Unlock()
	if n := m.Entities(); n != 0 {
		t.Fatalf("%d entities after fast-path holder closed and released, want 0", n)
	}
}

// TestCloseWhileQueuedConverges: Close while a waiter of the entity is
// parked in the queue defers the unregistration to the waiter's own
// release (or abandonment), never dropping the grant.
func TestCloseWhileQueuedConverges(t *testing.T) {
	m := NewMutex(Options{Slice: time.Millisecond})
	a := m.Register()
	b := m.Register()
	defer a.Close()

	a.Lock()
	entered := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(entered)
		b.Lock() // parks behind a
		b.Unlock()
		close(done)
	}()
	<-entered
	time.Sleep(10 * time.Millisecond) // let b reach the waiter queue
	b.Close()                         // deferred: b is queued
	a.Unlock()
	<-done
	if n := m.Entities(); n != 1 {
		t.Fatalf("%d entities after the closed waiter finished, want 1 (a)", n)
	}
}

// TestCloseWhileBannedNoStaleWeight: Close during a ban must remove the
// entity's weight immediately. If stale weight survived, the remaining
// lone entity's share would stay at 1/2 and it would keep getting banned
// for using "more than its share" of a lock it no longer contends for.
func TestCloseWhileBannedNoStaleWeight(t *testing.T) {
	m := NewMutex(Options{Slice: time.Millisecond})
	hog := m.Register()
	peer := m.Register()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			peer.Lock()
			time.Sleep(time.Millisecond)
			peer.Unlock()
		}
	}()
	time.Sleep(5 * time.Millisecond)
	hog.Lock()
	time.Sleep(40 * time.Millisecond) // over-use against the peer → ban
	hog.Unlock()
	hog.Close() // banned, not holding, not queued: unregister now
	close(stop)
	wg.Wait()
	if n := m.Entities(); n != 1 {
		t.Fatalf("%d entities after banned hog closed, want 1", n)
	}

	// The peer is alone; quick reacquisitions must never be penalized.
	peer.Lock()
	peer.Unlock()
	start := time.Now()
	peer.Lock()
	peer.Unlock()
	if gap := time.Since(start); gap > 5*time.Millisecond {
		t.Fatalf("lone survivor delayed %v after hog closed — stale weight", gap)
	}
	peer.Close()
}

// TestRWLockQueueSlabRelease covers the RW-SCL analogue of the entity
// GC: a class-based lock has no entity state to reap, so WithInactiveGC
// instead bounds how long the waiter queues' grown backing arrays outlive
// the contention burst that grew them.
func TestRWLockQueueSlabRelease(t *testing.T) {
	l := NewRWLock(1, 1, time.Millisecond, WithInactiveGC(10*time.Millisecond))

	// A burst: hold the write lock so a crowd of readers piles into the
	// queue, growing the reader slab well past rwQueueKeep. While the
	// writer is active no reader can be granted (grantLocked's read
	// branch refuses under rwWActive) and the fast path is blocked, so
	// every reader deterministically lands in waitR — wait for the full
	// crowd before releasing, which guarantees the slab outgrew
	// rwQueueKeep rather than polling and skipping when it didn't.
	const crowd = rwQueueKeep * 4
	l.WLock()
	var wg sync.WaitGroup
	for i := 0; i < crowd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.RLock()
			l.RUnlock()
		}()
	}
	for deadline := time.Now().Add(10 * time.Second); ; {
		l.mu.Lock()
		queued := len(l.waitR)
		l.mu.Unlock()
		if queued == crowd {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d readers queued behind the held write lock", queued, crowd)
		}
		time.Sleep(time.Millisecond)
	}
	l.WUnlock()
	wg.Wait()

	// Idle past the threshold; snapshots drive the lazy release (the
	// first marks the queues empty, a later one frees the slabs).
	released := false
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		l.Stats()
		l.mu.Lock()
		released = cap(l.waitR)+cap(l.waitW) == 0
		l.mu.Unlock()
		if released {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !released {
		l.mu.Lock()
		got := cap(l.waitR) + cap(l.waitW)
		l.mu.Unlock()
		t.Fatalf("waiter slabs hold %d capacity after idling past the threshold, want released", got)
	}
}

// TestMutexStressChurn is the entity-churn soak (tentpole acceptance):
// waves of short-lived entities come and go without ever calling Close
// while two long-lived survivors keep working. The registered-entity
// count must stay proportional to the active set (never the cumulative
// churn), no grant may be lost, the books must stay consistent (checked
// live under -tags scldebug), and the survivors' mutual fairness must be
// unaffected by the churn. The default run churns tens of thousands of
// entities; a soak (`go test -race -run Churn -scl.stress 30s .`)
// crosses 10^5+.
func TestMutexStressChurn(t *testing.T) {
	const threshold = 2 * time.Millisecond
	m := NewMutex(Options{Slice: 50 * time.Microsecond}, WithInactiveGC(threshold))

	var guarded int64 // mutated only inside the critical section
	var inCS atomic.Int32
	var violations atomic.Int64
	cs := func(h *Handle) {
		h.Lock()
		if inCS.Add(1) != 1 {
			violations.Add(1)
		}
		guarded++
		inCS.Add(-1)
		h.Unlock()
	}

	// Survivor fairness is measured in completed operations, not snapshot
	// hold times: a survivor that the OS scheduler stalls past the reap
	// threshold may legitimately lose its stats entry to the GC (its
	// handle keeps working), so hold-based Jain would be measuring the
	// reap, not the lock.
	stop := make(chan struct{})
	var survivors sync.WaitGroup
	var survivorOps [2]atomic.Int64
	for i := 0; i < 2; i++ {
		h := m.Register()
		survivors.Add(1)
		go func(i int, h *Handle) {
			defer survivors.Done()
			defer h.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cs(h)
				survivorOps[i].Add(1)
				time.Sleep(100 * time.Microsecond)
			}
		}(i, h)
	}

	// Registered count may lag the active set by the reap threshold plus
	// the rate limiter (threshold/4), during which up to
	// churnWave goroutines per wave pile up un-reaped.
	const churnWave = 16
	wavesPerThreshold := int(threshold/(50*time.Microsecond)) + 1
	bound := 2 + churnWave*(wavesPerThreshold+2)

	var churned int64
	var maxSeen int
	deadline := time.Now().Add(stressDuration())
	for time.Now().Before(deadline) {
		var wave sync.WaitGroup
		for i := 0; i < churnWave; i++ {
			wave.Add(1)
			go func() {
				defer wave.Done()
				h := m.Register() // never closed: only the GC cleans up
				cs(h)
			}()
		}
		wave.Wait()
		churned += churnWave
		if n := m.Entities(); n > maxSeen {
			maxSeen = n
		}
	}
	close(stop)
	survivors.Wait()

	waitEntities(t, m, 0) // no accountant leak: everything reaps

	final := m.Stats()
	ops0, ops1 := survivorOps[0].Load(), survivorOps[1].Load()
	ratio := float64(min(ops0, ops1)) / float64(max(ops0, ops1))
	t.Logf("churned %d entities, max registered %d (bound %d), reaped %d, survivor ops %d/%d (ratio %.3f)",
		churned, maxSeen, bound, final.Reaped, ops0, ops1, ratio)
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
	if maxSeen > bound {
		t.Errorf("registered count peaked at %d, want <= active-set bound %d", maxSeen, bound)
	}
	if final.Reaped < churned/2 {
		t.Errorf("only %d of %d churned entities reaped", final.Reaped, churned)
	}
	if ratio < 0.5 {
		t.Errorf("survivor progress ratio %.3f (%d vs %d ops), want >= 0.5 — churn skewed fairness",
			ratio, ops0, ops1)
	}
}
