package scl_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each delegates to the corresponding runner in internal/experiments at a
// reduced scale (the full-scale tables are produced by cmd/sclbench) and
// reports the experiment's headline metrics through b.ReportMetric, so
// `go test -bench=.` regenerates the whole evaluation in miniature.

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scl"
	"scl/internal/experiments"
)

// benchScale keeps each benchmark iteration to roughly a second.
const benchScale = 0.05

func benchOptions(i int) experiments.Options {
	return experiments.Options{Seed: int64(i + 1), Scale: benchScale}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	var jain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		jain = res.Rows[len(res.Rows)-1].Jain // u-SCL row
	}
	b.ReportMetric(jain, "uscl-jain")
}

func benchFig5(b *testing.B, threads int) {
	var usclJain, mutexJain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchOptions(i), threads)
		if err != nil {
			b.Fatal(err)
		}
		mutexJain = res.Rows[0].JainHold
		usclJain = res.Rows[len(res.Rows)-1].JainHold
	}
	b.ReportMetric(usclJain, "uscl-jain")
	b.ReportMetric(mutexJain, "mutex-jain")
}

func BenchmarkFig5a(b *testing.B) { benchFig5(b, 2) }
func BenchmarkFig5c(b *testing.B) { benchFig5(b, 16) }

func BenchmarkFig6(b *testing.B) {
	var worst float64 = 1
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		worst = 1
		for _, row := range res.Rows {
			if row.Lock == "SCL" && row.Jain < worst {
				worst = row.Jain
			}
		}
	}
	b.ReportMetric(worst, "uscl-worst-weighted-jain")
}

func benchFig7(b *testing.B, variant string) {
	var usclTput float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchOptions(i), variant)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Lock == "SCL" && row.Threads == 2 {
				usclTput = row.Tput
			}
		}
	}
	b.ReportMetric(usclTput, "uscl-2thread-ops/sec")
}

func BenchmarkFig7a(b *testing.B) { benchFig7(b, "a") }
func BenchmarkFig7b(b *testing.B) { benchFig7(b, "b") }

func BenchmarkFig8a(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8a(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, row := range res.Tput {
			for _, v := range row {
				if v > best {
					best = v
				}
			}
		}
	}
	b.ReportMetric(best, "best-ops/sec")
}

func BenchmarkFig8b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8b(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	var p99 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Config == "u-SCL 10µs" {
				p99 = float64(row.Summary.P99.Microseconds())
			}
		}
	}
	b.ReportMetric(p99, "uscl-10us-p99-us")
}

func BenchmarkFig10(b *testing.B) {
	var usclJain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		usclJain = res.Runs[1].JainHold
	}
	b.ReportMetric(usclJain, "uscl-jain")
}

func BenchmarkFig11(b *testing.B) {
	var writerTput float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		writerTput = res.Rows[1].WriterTput
	}
	b.ReportMetric(writerTput, "rwscl-writer-ops/sec")
}

func benchFig12(b *testing.B, variant string) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(benchOptions(i), variant)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig12a(b *testing.B) { benchFig12(b, "a") }
func BenchmarkFig12b(b *testing.B) { benchFig12(b, "b") }

func BenchmarkFig13(b *testing.B) {
	var below float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Lock == "k-SCL" && row.Proc == "victim" {
				below = row.Below10us
			}
		}
	}
	b.ReportMetric(below*100, "kscl-victim-under-10us-%")
}

func BenchmarkAblation(b *testing.B) {
	var fullJain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		fullJain = res.Rows[0].JainHold
	}
	b.ReportMetric(fullJain, "full-uscl-jain")
}

func BenchmarkGroups(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Groups(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0].Tput > 0 {
			gain = res.Rows[1].Tput / res.Rows[0].Tput
		}
	}
	b.ReportMetric(gain, "grouped-tput-gain")
}

func BenchmarkChurn(b *testing.B) {
	var reaped int64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Churn(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		reaped = res.Runs[1].Reaped
	}
	b.ReportMetric(float64(reaped), "reaped-entities")
}

func BenchmarkSoak(b *testing.B) {
	var lightJain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Soak(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		lightJain = res.LightJain
	}
	b.ReportMetric(lightJain, "light-jain")
}

func BenchmarkULE(b *testing.B) {
	var usclP99 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ULE(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Sched == "ule" && row.Lock == "u-SCL 10µs" {
				usclP99 = float64(row.Summary.P99.Microseconds())
			}
		}
	}
	b.ReportMetric(usclP99, "ule-uscl-p99-us")
}

func BenchmarkPI(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.PI(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		if with := res.Rows[1].WaiterWait.P50; with > 0 {
			improvement = float64(res.Rows[0].WaiterWait.P50) / float64(with)
		}
	}
	b.ReportMetric(improvement, "pi-p50-wait-improvement")
}

func BenchmarkMultilock(b *testing.B) {
	var nestedJain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Multilock(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		nestedJain = res.Rows[1].L1Jain
	}
	b.ReportMetric(nestedJain, "nested-L1-jain")
}

func BenchmarkFig14(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(benchOptions(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0].VictimOps > 0 {
			improvement = float64(res.Rows[1].VictimOps) / float64(res.Rows[0].VictimOps)
		}
	}
	b.ReportMetric(improvement, "victim-ops-kscl/mutex")
}

// Sanity: every registered experiment has a benchmark above.
func TestEveryExperimentHasABenchmark(t *testing.T) {
	covered := map[string]bool{
		"table1": true, "table2": true, "fig5a": true, "fig5c": true,
		"fig6": true, "fig7a": true, "fig7b": true, "fig8a": true,
		"fig8b": true, "fig9": true, "fig10": true, "fig11": true,
		"fig12a": true, "fig12b": true, "fig13": true, "fig14": true,
		"ablation": true, "groups": true, "ule": true, "pi": true,
		"multilock": true, "churn": true, "soak": true,
	}
	for _, name := range experiments.Names() {
		if !covered[name] {
			t.Errorf("experiment %s has no benchmark", name)
		}
	}
	for name := range covered {
		if _, ok := experiments.Get(name); !ok {
			t.Errorf("benchmark covers unknown experiment %s", name)
		}
	}
}

// ---------------------------------------------------------------------------
// Real-lock fast-path benchmarks (not simulator experiments): the cost of
// the hot paths of scl.Mutex against sync.Mutex. `make bench` records these
// in BENCH_scl.json so each PR has a perf trajectory.
// ---------------------------------------------------------------------------

// BenchmarkMutexOwnerReacquire measures the paper's lock-slice fast path:
// one entity repeatedly re-acquiring a lock it owns the slice for. This is
// the number the atomic slice-owner fast path exists to improve.
func BenchmarkMutexOwnerReacquire(b *testing.B) {
	m := scl.NewMutex(scl.Options{Slice: time.Hour})
	h := m.Register()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lock()
		h.Unlock()
	}
}

// BenchmarkSyncMutexReacquire is the sync.Mutex reference for the same
// single-owner reacquire pattern.
func BenchmarkSyncMutexReacquire(b *testing.B) {
	var m sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lock()
		m.Unlock()
	}
}

// BenchmarkMutexFastPath is BenchmarkMutexOwnerReacquire with the
// inactive-entity GC armed: the lock-free owner-reacquire path with a
// live WithInactiveGC threshold. The reap scan is piggybacked on slice
// boundaries and rate-limited, so this must track OwnerReacquire — any
// gap is GC overhead leaking into the fast path.
func BenchmarkMutexFastPath(b *testing.B) {
	m := scl.NewMutex(scl.Options{Slice: time.Hour}, scl.WithInactiveGC(time.Hour))
	h := m.Register()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lock()
		h.Unlock()
	}
}

// BenchmarkMutexChurn measures the entity-lifecycle cost the GC bounds:
// each iteration registers a fresh entity, takes the lock once, and
// departs without Close, leaving cleanup to the inactive-entity GC (1ms
// threshold, so reaping runs continually within the benchmark). A k-SCL
// (zero slice) keeps successive entities from serializing on slice
// expiry; every release is a boundary the lazy reaper can piggyback on.
// This is the goroutine-per-request pattern from examples/churn.
func BenchmarkMutexChurn(b *testing.B) {
	m := scl.NewMutex(scl.Options{Slice: -1}, scl.WithInactiveGC(time.Millisecond))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := m.Register()
		h.Lock()
		h.Unlock()
	}
	b.StopTimer()
	if n := m.Entities(); n > 4096 {
		b.Fatalf("%d entities registered after churn, GC not keeping up", n)
	}
}

// BenchmarkMutexSlowRelease measures the slow-path release in isolation:
// a k-SCL (zero slice) disables the fast path, so every Unlock runs the
// full boundary — fold, accounting release, penalty decision — under the
// internal mutex. This is the path the PR 2 review scaffolding (a 50×
// Gosched loop inside Unlock) serialized; the benchmark pins its cost.
func BenchmarkMutexSlowRelease(b *testing.B) {
	m := scl.NewMutex(scl.Options{Slice: -1})
	h := m.Register()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lock()
		h.Unlock()
	}
}

// BenchmarkMutexPingPong measures cross-entity ownership transfer on a
// k-SCL (zero slice: every release is a slice boundary), the slow path the
// fast path must not regress.
func BenchmarkMutexPingPong(b *testing.B) {
	m := scl.NewMutex(scl.Options{Slice: -1})
	h1 := m.Register()
	h2 := m.Register()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h1.Lock()
		h1.Unlock()
		h2.Lock()
		h2.Unlock()
	}
}

// benchContended hammers one lock from n goroutines, each a distinct
// entity, measuring aggregate critical-section throughput under contention.
func benchContended(b *testing.B, n int, mk func() sync.Locker) {
	b.ReportAllocs()
	b.SetParallelism(1)
	var shared int64
	lockers := make([]sync.Locker, n)
	for i := range lockers {
		lockers[i] = mk()
	}
	var idx atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		lk := lockers[int(idx.Add(1)-1)%n]
		for pb.Next() {
			lk.Lock()
			shared++
			lk.Unlock()
		}
	})
	_ = shared
}

func benchMutexContended(b *testing.B, n int) {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	m := scl.NewMutex(scl.Options{Slice: 100 * time.Microsecond})
	benchContended(b, n, func() sync.Locker { return m.Register() })
}

func benchSyncContended(b *testing.B, n int) {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	var m sync.Mutex
	benchContended(b, n, func() sync.Locker { return &m })
}

func BenchmarkMutexContended2(b *testing.B)      { benchMutexContended(b, 2) }
func BenchmarkMutexContended8(b *testing.B)      { benchMutexContended(b, 8) }
func BenchmarkMutexContended32(b *testing.B)     { benchMutexContended(b, 32) }
func BenchmarkSyncMutexContended2(b *testing.B)  { benchSyncContended(b, 2) }
func BenchmarkSyncMutexContended8(b *testing.B)  { benchSyncContended(b, 8) }
func BenchmarkSyncMutexContended32(b *testing.B) { benchSyncContended(b, 32) }

// benchMutexContendedDo is benchMutexContended through the combining
// API: n goroutines, each a distinct entity, run the same tiny section
// via Handle.Do, so contended calls publish into the combining stack
// and the releasing holder executes them in batches. The comparison
// against BenchmarkSyncMutexContended{8,32} is the headline combining
// number: batching amortizes the ownership handoff that dominates the
// classic contended ladder.
func benchMutexContendedDo(b *testing.B, n int) {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	m := scl.NewMutex(scl.Options{Slice: 100 * time.Microsecond})
	b.ReportAllocs()
	b.SetParallelism(1)
	var shared int64
	handles := make([]*scl.Handle, n)
	for i := range handles {
		handles[i] = m.Register()
	}
	var idx atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		h := handles[int(idx.Add(1)-1)%n]
		section := func() { shared++ }
		for pb.Next() {
			h.Do(section)
		}
	})
	_ = shared
}

func BenchmarkMutexContendedDo2(b *testing.B)  { benchMutexContendedDo(b, 2) }
func BenchmarkMutexContendedDo8(b *testing.B)  { benchMutexContendedDo(b, 8) }
func BenchmarkMutexContendedDo32(b *testing.B) { benchMutexContendedDo(b, 32) }

// BenchmarkMutexDoMixed interleaves combining and classic users on one
// lock: half the goroutines run their sections through Handle.Do, half
// through Lock/Unlock. This is the realistic adoption shape (a hot
// path converted to Do while the rest of the codebase still takes the
// lock), and it keeps the drain/queue interaction — combined batches
// executing between a classic release and the next classic grant —
// honest under the same gate as the pure ladders.
func BenchmarkMutexDoMixed(b *testing.B) {
	const n = 8
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	m := scl.NewMutex(scl.Options{Slice: 100 * time.Microsecond})
	b.ReportAllocs()
	b.SetParallelism(1)
	var shared int64
	handles := make([]*scl.Handle, n)
	for i := range handles {
		handles[i] = m.Register()
	}
	var idx atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		me := int(idx.Add(1) - 1)
		h := handles[me%n]
		if me%2 == 0 {
			section := func() { shared++ }
			for pb.Next() {
				h.Do(section)
			}
			return
		}
		for pb.Next() {
			h.Lock()
			shared++
			h.Unlock()
		}
	})
	_ = shared
}

// BenchmarkRWLockReaderReacquire measures the RW-SCL read-phase fast path:
// repeated shared acquisitions inside one read slice.
func BenchmarkRWLockReaderReacquire(b *testing.B) {
	l := scl.NewRWLock(1, 1, time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.RLock()
		l.RUnlock()
	}
}

// BenchmarkRWMutexReaderReacquire is the sync.RWMutex reference.
func BenchmarkRWMutexReaderReacquire(b *testing.B) {
	var l sync.RWMutex
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.RLock()
		l.RUnlock()
	}
}

// benchRWReadScale measures the shared fast path with n concurrent
// reader goroutines inside one long read slice — the fan-in the
// distributed read indicator exists for. Near-flat ns/op as n grows is
// the target; a centralized reader count collapses here instead. The
// iteration budget is claimed in chunks so the harness's own counter
// does not become the centralized hot word the lock no longer has.
func benchRWReadScale(b *testing.B, readers int) {
	l := scl.NewRWLock(1, 1, time.Hour)
	b.ReportAllocs()
	const chunk = 512
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				base := next.Add(chunk) - chunk
				if base >= int64(b.N) {
					return
				}
				end := base + chunk
				if end > int64(b.N) {
					end = int64(b.N)
				}
				for i := base; i < end; i++ {
					l.RLock()
					l.RUnlock()
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkRWReadScale runs the reader-scaling ladder recorded in
// BENCH_scl.json; cmd/benchjson -compare gates regressions at every
// rung, so a reader-side scalability collapse fails `make bench`.
func BenchmarkRWReadScale(b *testing.B) {
	for _, n := range []int{2, 8, 32, 128} {
		b.Run(strconv.Itoa(n), func(b *testing.B) { benchRWReadScale(b, n) })
	}
}

// BenchmarkManagerHotKey measures the lock-table overhead on the
// single-key fast path: one tenant re-acquiring one hot key, so every
// iteration pays stripe lookup (FNV-1a + stripe mutex), handle-pool
// checkout, the key lock's own fast path, and the ChargeWindow booking
// at release. The gap to BenchmarkMutexFastPath is the price of the
// table.
func BenchmarkManagerHotKey(b *testing.B) {
	m := scl.NewManager(scl.ManagerOptions{Lock: scl.Options{Slice: time.Hour}})
	tn := m.Tenant("bench", 1)
	defer tn.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := tn.Lock("hot")
		g.Unlock()
	}
}

// BenchmarkManagerKeyChurn measures lazy materialization and lock reap
// under key churn: every iteration acquires a fresh key (k-SCL per-key
// locks, aggressive lock GC), so the table continually materializes,
// grants, and reaps. The final Keys() check asserts the reaper kept
// the table bounded at benchmark rates — the millions-of-keys story in
// miniature.
func BenchmarkManagerKeyChurn(b *testing.B) {
	m := scl.NewManager(scl.ManagerOptions{
		Lock: scl.Options{Slice: -1},
	}, scl.WithLockGC(time.Millisecond), scl.WithTenantGC(10*time.Millisecond))
	tn := m.Tenant("bench", 1)
	defer tn.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := tn.Lock("key-" + strconv.Itoa(i))
		g.Unlock()
	}
	b.StopTimer()
	if n := m.Keys(); n > 65536 {
		b.Fatalf("%d keys still materialized after churn, lock GC not keeping up", n)
	}
}
