package scl

import (
	"time"

	"scl/internal/core"
	"scl/trace"
)

// Tracer receives structured lock events from the real-time locks: one
// hook per event kind, mirroring the lifecycle of the paper's mechanism
// (acquire → release → slice end → ban → handoff). Install a Tracer via
// Options.Tracer (Mutex) or RWLock.SetTracer; a nil Tracer costs the
// locks only a nil check per operation.
//
// Hooks are invoked synchronously from lock operations. Slow-path events
// fire with the lock's internal mutex held; fast-path events (the slice
// owner's lock-free acquire/release) fire without it, so hooks from
// distinct handles may run concurrently — implementations must be
// concurrency-safe, fast, must not block, and must not call back into
// the lock. trace.Ring is the built-in implementation — a lock-free
// bounded flight recorder safe to leave enabled in production.
type Tracer interface {
	// OnAcquire fires when an entity acquires the lock. Detail is the
	// time the acquisition waited (queueing plus any ban slept out).
	OnAcquire(trace.Event)
	// OnRelease fires when an entity releases the lock. Detail is the
	// critical-section length.
	OnRelease(trace.Event)
	// OnSliceEnd fires when a lock slice expires (at the release that
	// overran it, or on the slice timer if the owner stopped acquiring).
	// Detail is the hold time the owner accumulated within the slice.
	OnSliceEnd(trace.Event)
	// OnBan fires when a penalty is imposed on an over-user (paper §4.2:
	// computed at release, imposed at its next acquire). Detail is the
	// ban length.
	OnBan(trace.Event)
	// OnHandoff fires when ownership is granted to a waiting entity —
	// a slice transfer, or an intra-entity sibling handoff (paper §6).
	OnHandoff(trace.Event)
	// OnAbandon fires when a cancellable acquisition (LockContext,
	// RLockContext, WLockContext) gives up because its context was
	// cancelled while it slept out a ban or sat in the waiter queue.
	// Detail is the time the attempt had waited. No usage was charged
	// and no matching release event follows.
	OnAbandon(trace.Event)
	// OnReap fires when the inactive-entity GC (WithInactiveGC; the
	// paper's k-SCL §4.4) removes an entity's accounting state after it
	// went idle longer than the configured threshold. Detail is how long
	// the entity had been idle. If the entity returns, it re-registers
	// through the join-credit floor (a fresh OnAcquire follows; no event
	// marks the re-registration itself).
	OnReap(trace.Event)
	// OnCombine fires when a releasing holder drains a batch of combined
	// critical sections (Handle.Do / RWLock.Do) and executes them on the
	// publishers' behalf. The event's entity is the combiner and Detail
	// is the batch's summed critical-section time; one OnAcquire/OnRelease
	// pair per combined entity follows under the publishing entity's own
	// ID, so per-entity views of the stream need no special handling.
	OnCombine(trace.Event)
}

// event assembles a trace.Event for this lock.
func (m *Mutex) event(kind trace.Kind, now time.Duration, id core.ID, name string, detail time.Duration) trace.Event {
	return trace.Event{
		At:     now,
		Kind:   kind,
		Lock:   m.name,
		Entity: int64(id),
		Name:   name,
		Detail: detail,
	}
}

var _ Tracer = (*trace.Ring)(nil)
