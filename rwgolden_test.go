package scl

import (
	"strings"
	"sync"
	"testing"
	"time"

	"scl/trace"
)

// normalizeRW renders the deterministic parts of an RW-SCL event stream:
// kind and class pseudo-entity, one line per event. Timestamps and
// durations are wall-clock and excluded.
func normalizeRW(evs []trace.Event) string {
	var b strings.Builder
	for _, ev := range evs {
		class := "readers"
		if ev.Entity == trace.EntityWriters {
			class = "writers"
		}
		b.WriteString(string(ev.Kind))
		b.WriteByte(' ')
		b.WriteString(class)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRWScriptedEventStream runs a fixed reader/writer schedule and
// compares the tracer event stream against a golden transcript recorded
// on the pre-sharding (single packed-word) read-indicator
// implementation. The distributed read indicator must reproduce it
// byte-for-byte: installing a Tracer disables the fast path, so the
// traced slow path — grant order, slice ends, handoffs — is the
// compatibility surface sharding must not move.
func TestRWScriptedEventStream(t *testing.T) {
	rec := &recTracer{}
	// 1:1 weights on a 300ms period: 150ms read slice, 150ms write
	// slice. The margins are deliberately huge so a loaded machine
	// cannot reorder the script's coarse beats.
	l := NewRWLock(1, 1, 300*time.Millisecond)
	l.SetTracer(rec)

	l.RLock() // read phase: inline acquire

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.WLock() // queues until the write slice begins and the reader drains
		time.Sleep(20 * time.Millisecond)
		l.WUnlock()
	}()

	// Wait until the writer is actually queued (the waiters bit is up),
	// then sleep past the read slice end: the phase timer fires at
	// 150ms, ending the read slice while the reader still holds.
	deadline := time.Now().Add(5 * time.Second)
	for l.word.Load()&rwWaiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(200 * time.Millisecond)

	l.RUnlock() // drains the read side; the queued writer is granted
	wg.Wait()

	// The write slice restarted when the writer entered (~200ms), so it
	// runs until ~350ms. This RLock queues during it and is granted by
	// the phase timer at the write slice end.
	l.RLock()
	l.RUnlock()

	got := normalizeRW(rec.events())
	want := strings.Join([]string{
		"acquire readers",
		"slice-end readers",
		"release readers",
		"handoff writers",
		"acquire writers",
		"release writers",
		"slice-end writers",
		"handoff readers",
		"acquire readers",
		"release readers",
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("event stream diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The same schedule must land in the class counters exactly.
	s := l.Stats()
	if s.ReaderOps != 2 || s.WriterOps != 1 {
		t.Fatalf("ops = %d readers / %d writers, want 2/1", s.ReaderOps, s.WriterOps)
	}
	if s.ReaderHold < 150*time.Millisecond {
		t.Fatalf("reader hold %v, want the ~200ms scripted hold", s.ReaderHold)
	}
	if s.WriterHold < 15*time.Millisecond {
		t.Fatalf("writer hold %v, want the ~20ms scripted hold", s.WriterHold)
	}
}
