package scl

import (
	"context"
	"errors"
	"testing"
	"time"

	"scl/trace"
)

// TestLockContextAlreadyCancelled: a ctx that is already cancelled returns
// immediately, even when the lock is free, and the lock is NOT held
// afterwards.
func TestLockContextAlreadyCancelled(t *testing.T) {
	m := NewMutex(Options{Slice: 10 * time.Millisecond})
	h := m.Register()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := h.LockContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("LockContext(cancelled) = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("LockContext(cancelled) blocked for %v", elapsed)
	}
	// The lock must be free: a plain acquire succeeds without contention.
	h.Lock()
	h.Unlock()
	if s := m.Stats(); s.Acquisitions[h.ID()] != 1 {
		t.Fatalf("acquisitions = %d, want 1 (the abandoned call must not count)", s.Acquisitions[h.ID()])
	}
}

// TestLockContextCancelWhileParked cancels a waiter parked behind a
// long-running holder: LockContext returns ctx.Err(), the cancel is
// counted in stats, an abandon event is traced, and the lock still works.
func TestLockContextCancelWhileParked(t *testing.T) {
	rec := &recTracer{}
	m := NewMutex(Options{Slice: 10 * time.Millisecond, Name: "parked", Tracer: rec})
	a := m.Register().SetName("A")
	b := m.Register().SetName("B")

	a.Lock()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- b.LockContext(ctx) }()

	// Wait until B is actually parked before cancelling.
	deadline := time.Now().Add(5 * time.Second)
	for m.word.Load()&wordWaiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("LockContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	a.Unlock()

	// The abandoned waiter must have left no trace in the queue: both
	// entities can still acquire.
	b.Lock()
	b.Unlock()
	a.Lock()
	a.Unlock()

	s := m.Stats()
	if s.Cancels[b.ID()] != 1 {
		t.Fatalf("cancels[B] = %d, want 1", s.Cancels[b.ID()])
	}
	if s.Acquisitions[b.ID()] != 1 {
		t.Fatalf("acquisitions[B] = %d, want 1 (only the post-cancel Lock)", s.Acquisitions[b.ID()])
	}
	var abandons int
	for _, ev := range rec.events() {
		if ev.Kind == trace.KindAbandon {
			abandons++
			if ev.Name != "B" {
				t.Fatalf("abandon traced for %q, want B", ev.Name)
			}
			if ev.Detail <= 0 {
				t.Fatalf("abandon Detail = %v, want the positive time waited", ev.Detail)
			}
		}
	}
	if abandons != 1 {
		t.Fatalf("traced %d abandon events, want 1", abandons)
	}
}

// banHog builds a fresh Mutex and has entity a hog the lock through its
// whole slice against a registered peer, so a's release draws a penalty.
// The penalty itself is deterministic in the accountant (100% usage over
// a 50% share always exceeds the slack), but whether the hog's release
// lands while its slice is still the expired one depends on real-clock
// timing, so on a loaded box a single attempt can miss the window. Tests
// that need a banned entity retry with a fresh lock until the ban lands
// instead of skipping — the banned paths must never go untested.
func banHog(t *testing.T, opts Options, hold time.Duration) (m *Mutex, a, b *Handle) {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		m = NewMutex(opts)
		a = m.Register()
		b = m.Register()
		a.Lock()
		time.Sleep(hold) // overrun the slice
		a.Unlock()       // slice end: ban computed here
		if m.Stats().Bans[a.ID()] == 1 {
			return m, a, b
		}
	}
	t.Fatal("hog setup never drew a ban in 20 attempts")
	return nil, nil, nil
}

// TestLockContextCancelDuringBan cancels an acquire that is sleeping out a
// penalty: the call returns promptly — well before the ban would have
// ended — and the cancel is counted.
func TestLockContextCancelDuringBan(t *testing.T) {
	m, a, _ := banHog(t, Options{Slice: 40 * time.Millisecond}, 50*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := a.LockContext(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("LockContext during ban = %v (after %v), want deadline exceeded", err, elapsed)
	}
	// The penalty is ~50ms (usage over a 50% share); returning in a small
	// fraction of that shows the ban sleep was interrupted, not slept out.
	if elapsed > 35*time.Millisecond {
		t.Fatalf("cancelled ban sleep took %v, want prompt return", elapsed)
	}
	if s := m.Stats(); s.Cancels[a.ID()] != 1 {
		t.Fatalf("cancels = %d, want 1", s.Cancels[a.ID()])
	}
}

// TestRWLockContextAlreadyCancelled mirrors the mutex guarantee for both
// RW classes: an already-cancelled ctx returns without blocking and
// without holding the lock.
func TestRWLockContextAlreadyCancelled(t *testing.T) {
	l := NewRWLock(1, 1, 10*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.RLockContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RLockContext(cancelled) = %v, want context.Canceled", err)
	}
	if err := l.WLockContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("WLockContext(cancelled) = %v, want context.Canceled", err)
	}
	// Both classes still acquire cleanly.
	l.RLock()
	l.RUnlock()
	l.WLock()
	l.WUnlock()
}

// TestRWLockContextCancelWhileBlocked cancels a reader blocked behind an
// active writer and a writer blocked behind an active reader, checking
// ctx.Err() comes back, the per-class cancel counters advance, and the
// lock keeps serving both classes.
func TestRWLockContextCancelWhileBlocked(t *testing.T) {
	l := NewRWLock(1, 1, 20*time.Millisecond)

	// Reader blocked behind a writer: a writer is active, so rlockSlow
	// queues regardless of phase.
	l.WLock()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	if err := l.RLockContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RLockContext behind writer = %v, want deadline exceeded", err)
	}
	cancel()
	l.WUnlock()

	// Writer blocked behind a reader: a reader is active, so the write
	// slice cannot start and wlockSlow queues.
	l.RLock()
	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Millisecond)
	if err := l.WLockContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WLockContext behind reader = %v, want deadline exceeded", err)
	}
	cancel()
	l.RUnlock()

	s := l.Stats()
	if s.ReaderCancels != 1 || s.WriterCancels != 1 {
		t.Fatalf("cancels = %d readers / %d writers, want 1/1", s.ReaderCancels, s.WriterCancels)
	}

	// Both classes still acquire cleanly after the abandons.
	l.RLock()
	l.RUnlock()
	l.WLock()
	l.WUnlock()
}

// TestLockContextGrantRace aims LockContext cancellations at the grant
// window itself: a holder releases (setting the transfer bit and marking
// the head waiter granted) at the same moment the waiter's ctx fires. The
// abandon path must detect the in-flight grant and re-route it, so a third
// party can always still acquire. Deterministic interleaving isn't
// reachable from the public API, so this iterates the race many times; the
// 30s -race stress (TestMutexStressCancel) covers the rest.
func TestLockContextGrantRace(t *testing.T) {
	m := NewMutex(Options{Slice: -1}) // k-SCL: every release transfers
	a := m.Register()
	b := m.Register()
	c := m.Register()

	for i := 0; i < 500; i++ {
		a.Lock()
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() { errc <- b.LockContext(ctx) }()
		for m.word.Load()&wordWaiters == 0 {
			time.Sleep(10 * time.Microsecond)
		}
		// Release and cancel concurrently: the grant to B races its abandon.
		go a.Unlock()
		cancel()
		if err := <-errc; err == nil {
			b.Unlock()
		}
		// Whatever happened, the lock must still be acquirable.
		lctx, lcancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := c.LockContext(lctx); err != nil {
			t.Fatalf("iteration %d: lock wedged after cancel/release race: %v", i, err)
		}
		c.Unlock()
		lcancel()
	}
}
