package scenario

import (
	"fmt"
	"strings"
)

// Format renders the scenario in canonical form: fixed field order,
// tab indentation, defaults omitted, comments dropped. Format is the
// parser's fixpoint — Parse(Format(s)) yields a scenario whose Format
// is byte-identical — which is what the fuzz target holds the grammar
// to.
func Format(s *Scenario) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s {\n", s.Name)
	if s.Lock == LockRW {
		rw, ww := s.ReadWeight, s.WriteWeight
		fmt.Fprintf(&b, "\tlock rw %d %d\n", rw, ww)
		if s.Period != 0 {
			fmt.Fprintf(&b, "\tperiod %s\n", s.Period)
		}
	} else {
		b.WriteString("\tlock mutex\n")
		if s.Slice != 0 {
			fmt.Fprintf(&b, "\tslice %s\n", s.Slice)
		}
		if s.Keys > 1 {
			fmt.Fprintf(&b, "\tkeys %d\n", s.Keys)
		}
	}
	if s.Seed != 0 {
		fmt.Fprintf(&b, "\tseed %d\n", s.Seed)
	}
	if s.Horizon != 0 {
		fmt.Fprintf(&b, "\thorizon %s\n", s.Horizon)
	}
	for i := range s.Groups {
		g := &s.Groups[i]
		fmt.Fprintf(&b, "\tgroup %s %d {\n", g.Name, g.Count)
		if s.Lock == LockRW {
			class := "reader"
			if g.Writer {
				class = "writer"
			}
			fmt.Fprintf(&b, "\t\tclass %s\n", class)
		}
		if g.Key != 0 {
			fmt.Fprintf(&b, "\t\tkey %d\n", g.Key)
		}
		if g.Start != 0 {
			fmt.Fprintf(&b, "\t\tstart %s\n", g.Start)
		}
		if g.Stagger != 0 {
			fmt.Fprintf(&b, "\t\tstagger %s\n", g.Stagger)
		}
		fmt.Fprintf(&b, "\t\tarrival %s\n", g.Arrival)
		if g.Arrival.Kind != ArrivalStepped {
			fmt.Fprintf(&b, "\t\tops %d\n", g.Ops)
		}
		fmt.Fprintf(&b, "\t\tcs %s\n", g.CS)
		if g.Arrival.Kind == ArrivalClosed {
			fmt.Fprintf(&b, "\t\tthink %s\n", g.Think)
		}
		if g.Timeout > 0 {
			fmt.Fprintf(&b, "\t\ttimeout %s\n", g.Timeout)
		}
		if g.CloseEvery > 0 {
			fmt.Fprintf(&b, "\t\tclose-every %d\n", g.CloseEvery)
		}
		if g.Do {
			b.WriteString("\t\tdo\n")
		}
		b.WriteString("\t}\n")
	}
	for _, a := range s.Asserts {
		fmt.Fprintf(&b, "\tassert %s\n", a)
	}
	for _, code := range s.Allow {
		fmt.Fprintf(&b, "\tallow %s\n", code)
	}
	b.WriteString("}\n")
	return b.String()
}
