package scenario

import (
	"math/rand"
	"testing"
	"time"
)

func us(n int64) time.Duration { return time.Duration(n) * time.Microsecond }

// TestSteppedTimes pins the exact dispatch schedule: step boundaries
// are exact multiples of the step length, requests are evenly spaced
// from each boundary, and zero-count steps are idle.
func TestSteppedTimes(t *testing.T) {
	cases := []struct {
		name   string
		step   time.Duration
		counts []int
		want   []time.Duration
	}{
		{
			name: "ramp", step: 10 * time.Millisecond, counts: []int{2, 4},
			want: []time.Duration{
				0, us(5000),
				us(10000), us(12500), us(15000), us(17500),
			},
		},
		{
			name: "one-step", step: time.Millisecond, counts: []int{3},
			want: []time.Duration{0, 333333 * time.Nanosecond, 666666 * time.Nanosecond},
		},
		{
			name: "zero-rate-middle", step: 2 * time.Millisecond, counts: []int{1, 0, 1},
			want: []time.Duration{0, us(4000)},
		},
		{
			name: "all-zero", step: time.Millisecond, counts: []int{0, 0},
			want: nil,
		},
		{
			name: "empty", step: time.Millisecond, counts: nil,
			want: nil,
		},
		{
			name: "single-request", step: 5 * time.Millisecond, counts: []int{1},
			want: []time.Duration{0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := SteppedTimes(tc.step, tc.counts)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("dispatch %d: got %v, want %v (full: %v)", i, got[i], tc.want[i], got)
				}
			}
		})
	}
}

// TestSteppedBoundariesExact: for every step with a non-zero count,
// the first dispatch of the step lands exactly on the step boundary
// tick — no drift accumulates across steps regardless of truncating
// intra-step spacing.
func TestSteppedBoundariesExact(t *testing.T) {
	step := 7 * time.Millisecond // deliberately indivisible spacings
	counts := []int{3, 7, 0, 11, 1}
	times := SteppedTimes(step, counts)
	i := 0
	for s, c := range counts {
		if c == 0 {
			continue
		}
		boundary := time.Duration(s) * step
		if times[i] != boundary {
			t.Fatalf("step %d: first dispatch at %v, want exact boundary %v", s, times[i], boundary)
		}
		// All of this step's dispatches stay inside the window.
		for j := 0; j < c; j++ {
			if times[i+j] < boundary || times[i+j] >= boundary+step {
				t.Fatalf("step %d dispatch %d at %v escapes [%v, %v)", s, j, times[i+j], boundary, boundary+step)
			}
		}
		i += c
	}
}

// TestSteppedGapperRoundRobin: a group of n entities partitions the
// schedule round-robin, and each entity's cumulative gaps reconstruct
// exactly its own dispatch times.
func TestSteppedGapperRoundRobin(t *testing.T) {
	a := Arrival{Kind: ArrivalStepped, Step: 10 * time.Millisecond, Counts: []int{2, 4}}
	all := SteppedTimes(a.Step, a.Counts)
	n := 3
	seen := make(map[time.Duration]int)
	for idx := 0; idx < n; idx++ {
		g := newSteppedGapper(a, idx, n)
		var at time.Duration
		for k := 0; ; k++ {
			gap, ok := g.NextGap()
			if !ok {
				break
			}
			at += gap
			want := all[idx+k*n]
			if at != want {
				t.Fatalf("entity %d dispatch %d reconstructs %v, want %v", idx, k, at, want)
			}
			seen[at]++
		}
	}
	if len(seen) != len(all) {
		t.Fatalf("round-robin covered %d dispatch times, schedule has %d", len(seen), len(all))
	}
}

// TestClosedGapperSeeded: same seed, same draws; the stream is
// exhausted after exactly ops draws, and every draw is a quantized
// sample of the think distribution.
func TestClosedGapperSeeded(t *testing.T) {
	mk := func() Gapper {
		g := &Group{Count: 1, Ops: 5, Arrival: Arrival{Kind: ArrivalClosed},
			Think: Dist{Kind: DistUniform, A: us(100), B: us(900)}}
		return g.newGapper(0, 1, rand.New(rand.NewSource(42)))
	}
	a, b := mk(), mk()
	for i := 0; i < 5; i++ {
		ga, oka := a.NextGap()
		gb, okb := b.NextGap()
		if !oka || !okb {
			t.Fatalf("draw %d: stream ended early", i)
		}
		if ga != gb {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, ga, gb)
		}
		if ga%Quantum != 0 || ga < Quantum {
			t.Fatalf("draw %d: %v off the quantum grid", i, ga)
		}
		if ga > us(900)+Quantum {
			t.Fatalf("draw %d: %v above the distribution's upper bound", i, ga)
		}
	}
	if _, ok := a.NextGap(); ok {
		t.Fatal("stream did not end after ops draws")
	}
}

// TestPoissonGapperSeeded: exponential gaps are seed-deterministic,
// quantized, and capped at 8x the mean.
func TestPoissonGapperSeeded(t *testing.T) {
	mean := us(500)
	mk := func(seed int64) []time.Duration {
		g := &Group{Count: 1, Ops: 64, Arrival: Arrival{Kind: ArrivalPoisson, Mean: mean}}
		gp := g.newGapper(0, 1, rand.New(rand.NewSource(seed)))
		var out []time.Duration
		for {
			gap, ok := gp.NextGap()
			if !ok {
				break
			}
			out = append(out, gap)
		}
		return out
	}
	a, b := mk(9), mk(9)
	if len(a) != 64 {
		t.Fatalf("got %d draws, want 64", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: same seed diverged", i)
		}
		if a[i]%Quantum != 0 {
			t.Fatalf("draw %d: %v off the quantum grid", i, a[i])
		}
		if a[i] > 8*mean+Quantum {
			t.Fatalf("draw %d: %v above the 8x-mean cap", i, a[i])
		}
	}
	c := mk(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draw sequences")
	}
}

// TestDistSampleEdges: degenerate distribution shapes keep sampling
// on-grid and positive.
func TestDistSampleEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []Dist{
		{Kind: DistFixed, A: us(1)},               // below one quantum
		{Kind: DistFixed, A: Quantum},             // exactly one quantum
		{Kind: DistUniform, A: us(100), B: us(100)}, // zero-width uniform
		{Kind: DistExp, A: us(10)},                // tiny mean
	}
	for _, d := range cases {
		for i := 0; i < 32; i++ {
			v := d.Sample(rng)
			if v < Quantum || v%Quantum != 0 {
				t.Fatalf("%v: sample %v not a positive quantum multiple", d, v)
			}
		}
	}
}

// TestEntitySeedDistinct: per-entity derived seeds are distinct across
// a realistic population so no two entities share an RNG stream.
func TestEntitySeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for g := 0; g < 8; g++ {
		for i := 0; i < 64; i++ {
			s := entitySeed(1, g, i)
			if seen[s] {
				t.Fatalf("duplicate entity seed for group %d entity %d", g, i)
			}
			seen[s] = true
		}
	}
}
