package scenario

import (
	"math"
	"math/rand"
	"time"
)

// Quantum is the virtual-time grid every random draw is rounded to.
// The differential oracle compares the sim and check substrates, and
// the simulator charges nanosecond-scale micro-architectural costs the
// checker's virtual clock does not; keeping all scenario-driven events
// on a coarse grid (three orders of magnitude above that jitter) means
// no discrete outcome rides on it.
const Quantum = 50 * time.Microsecond

// quantize rounds d up to the quantum grid, with a one-quantum floor
// so no draw degenerates to a zero-length event.
func quantize(d time.Duration) time.Duration {
	if d <= 0 {
		return Quantum
	}
	q := (d + Quantum - 1) / Quantum * Quantum
	if q < Quantum {
		return Quantum
	}
	return q
}

// Sample draws one quantized duration.
func (d Dist) Sample(rng *rand.Rand) time.Duration {
	switch d.Kind {
	case DistUniform:
		span := int64(d.B - d.A)
		if span <= 0 {
			return quantize(d.A)
		}
		return quantize(d.A + time.Duration(rng.Int63n(span+1)))
	case DistExp:
		// Exponential with mean A, capped at 8x so a single draw cannot
		// blow past a scenario's horizon.
		v := time.Duration(rng.ExpFloat64() * float64(d.A))
		if max := 8 * d.A; v > max {
			v = max
		}
		return quantize(v)
	default:
		return quantize(d.A)
	}
}

// Gapper produces the virtual-time gap to wait before each successive
// request, relative to the completion of the previous operation (the
// paced-closed-loop execution model shared by all substrates). ok
// reports false when the process is exhausted.
type Gapper interface {
	NextGap() (gap time.Duration, ok bool)
}

// closedGapper draws each gap from the think distribution.
type closedGapper struct {
	think Dist
	rng   *rand.Rand
	left  int
}

// NextGap draws the next think gap.
func (g *closedGapper) NextGap() (time.Duration, bool) {
	if g.left == 0 {
		return 0, false
	}
	g.left--
	return g.think.Sample(g.rng), true
}

// poissonGapper draws exponential inter-arrival gaps.
type poissonGapper struct {
	mean Dist
	rng  *rand.Rand
	left int
}

// NextGap draws the next exponential gap.
func (g *poissonGapper) NextGap() (time.Duration, bool) {
	if g.left == 0 {
		return 0, false
	}
	g.left--
	return g.mean.Sample(g.rng), true
}

// SteppedTimes expands a stepped-load schedule into the absolute
// dispatch times of every request: step i spans [i*step, (i+1)*step)
// and dispatches counts[i] requests evenly spaced from the exact step
// boundary. The boundaries are exact multiples of step by
// construction; within a step, request j fires at boundary +
// j*(step/counts[i]) (integer division, so spacing truncates toward
// the boundary rather than drifting past it). A zero count yields an
// idle step.
func SteppedTimes(step time.Duration, counts []int) []time.Duration {
	var out []time.Duration
	for i, c := range counts {
		boundary := time.Duration(i) * step
		if c <= 0 {
			continue
		}
		gap := step / time.Duration(c)
		for j := 0; j < c; j++ {
			out = append(out, boundary+time.Duration(j)*gap)
		}
	}
	return out
}

// steppedGapper round-robins a stepped schedule's dispatch times over
// a group of n entities and yields entity idx's share as successive
// gaps (diffs of its own subsequence, the first measured from the
// entity's start).
type steppedGapper struct {
	times []time.Duration
	prev  time.Duration
	pos   int
	n     int
}

// newSteppedGapper builds entity idx-of-n's gap stream from the
// schedule.
func newSteppedGapper(a Arrival, idx, n int) *steppedGapper {
	all := SteppedTimes(a.Step, a.Counts)
	var mine []time.Duration
	for k := idx; k < len(all); k += n {
		mine = append(mine, all[k])
	}
	return &steppedGapper{times: mine, n: n}
}

// NextGap returns the gap to the entity's next scheduled dispatch.
func (g *steppedGapper) NextGap() (time.Duration, bool) {
	if g.pos >= len(g.times) {
		return 0, false
	}
	t := g.times[g.pos]
	g.pos++
	gap := t - g.prev
	g.prev = t
	if gap < 0 {
		gap = 0
	}
	return gap, true
}

// newGapper builds entity idx-of-n's gap stream for the group's
// declared arrival process.
func (g *Group) newGapper(idx, n int, rng *rand.Rand) Gapper {
	switch g.Arrival.Kind {
	case ArrivalPoisson:
		return &poissonGapper{mean: Dist{Kind: DistExp, A: g.Arrival.Mean}, rng: rng, left: g.Ops}
	case ArrivalStepped:
		return newSteppedGapper(g.Arrival, idx, n)
	default:
		return &closedGapper{think: g.Think, rng: rng, left: g.Ops}
	}
}

// entitySeed derives one entity's RNG seed from the scenario seed
// (splitmix64 over (seed, group, index)), so adding a group or an
// entity never perturbs the draws of the others.
func entitySeed(seed int64, group, idx int) int64 {
	z := uint64(seed) ^ (0x9e3779b97f4a7c15 * (uint64(group)*1_000_003 + uint64(idx) + 1))
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = math.MaxUint64 / 7
	}
	return int64(z)
}
