package scenario

import (
	"strings"
	"testing"
	"time"

	"scl/sim"
)

// TestScenarioOracleCorpus is the corpus-wide differential oracle:
// every scenario in testdata/ runs on the simulator and on the real
// library under the deterministic checker, and the two executions
// must agree on grant order, timeout and ban counts, and hold shares
// — modulo each scenario's documented allow list (and, when
// grant-order is allowed, per-entity grant counts must still match).
// The scenario's declared assertions must hold on both sides.
func TestScenarioOracleCorpus(t *testing.T) {
	corpus, err := LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 6 {
		t.Fatalf("starter corpus shrank to %d scenarios (want >= 6)", len(corpus))
	}
	for _, s := range corpus {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			c, err := Compile(s)
			if err != nil {
				t.Fatal(err)
			}
			allowed, undocumented, err := Diff(c)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range undocumented {
				t.Errorf("undocumented divergence (replay: sclscenario -mode replay -scenario %s -seed %d): %v", s.Name, c.Seed, d)
			}
			for _, d := range allowed {
				t.Logf("documented divergence: %v", d)
			}
			simR := RunSim(c)
			for _, aerr := range EvalAsserts(s, simR, SubstrateSim) {
				t.Errorf("sim: %v", aerr)
			}
			checkR, err := RunCheck(c)
			if err != nil {
				t.Fatal(err)
			}
			for _, aerr := range EvalAsserts(s, checkR, SubstrateCheck) {
				t.Errorf("check: %v", aerr)
			}
		})
	}
}

// TestScenarioWall runs the whole corpus on the wall-clock substrate:
// real goroutines, real sleeps, the real lock. Only structural
// assertions gate here (grant floors, completion within the
// watchdog); the deterministic substrates own the timing-sensitive
// ones.
func TestScenarioWall(t *testing.T) {
	if testing.Short() {
		t.Skip("wall substrate sleeps real time")
	}
	corpus, err := LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range corpus {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			c, err := Compile(s)
			if err != nil {
				t.Fatal(err)
			}
			r, err := RunWall(c)
			if err != nil {
				t.Fatal(err)
			}
			for _, aerr := range EvalAsserts(s, r, SubstrateWall) {
				t.Errorf("wall: %v", aerr)
			}
			// Every scripted acquire either granted or (for cancellable
			// acquires) timed out — nothing silently vanished.
			total := 0
			for _, n := range r.Timeouts {
				total += n
			}
			if got := len(r.Grants) + total; got != c.TotalAcquires() {
				t.Errorf("grants %d + timeouts %d != scripted acquires %d", len(r.Grants), total, c.TotalAcquires())
			}
		})
	}
}

// TestEvalAsserts exercises the assertion evaluator's pass, fail, and
// wall-skip behaviour on a hand-built result.
func TestEvalAsserts(t *testing.T) {
	s := &Scenario{
		Name: "x",
		Asserts: []Assert{
			{Kind: AssertJainHold, Value: 0.99},
			{Kind: AssertMaxShare, Value: 0.5},
			{Kind: AssertGrants, N: 5},
			{Kind: AssertTimeouts, N: 0},
			{Kind: AssertNoLostGrant},
		},
	}
	// Skewed result: entity 0 hogged, one timeout, 4 grants.
	r := sim.ScriptResult{
		Grants:   []int{0, 0, 0, 1},
		Timeouts: []int{0, 1},
		Bans:     []int{0, 0},
		Hold:     []time.Duration{9 * time.Millisecond, 1 * time.Millisecond},
	}
	errs := EvalAsserts(s, r, SubstrateSim)
	if len(errs) != 4 { // jain, max-share, grants, timeouts all fail
		t.Fatalf("want 4 failures on sim, got %d: %v", len(errs), errs)
	}
	for _, want := range []string{"jain-hold", "max-share", "grants", "timeouts"} {
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no failure mentions %s: %v", want, errs)
		}
	}
	// On wall, only the structural grants floor applies.
	errs = EvalAsserts(s, r, SubstrateWall)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "grants") {
		t.Fatalf("want exactly the grants failure on wall, got %v", errs)
	}
	// A balanced result passes everything.
	ok := sim.ScriptResult{
		Grants:   []int{0, 1, 0, 1, 0, 1},
		Timeouts: []int{0, 0},
		Bans:     []int{0, 0},
		Hold:     []time.Duration{5 * time.Millisecond, 5 * time.Millisecond},
	}
	if errs := EvalAsserts(s, ok, SubstrateCheck); len(errs) != 0 {
		t.Fatalf("balanced result should pass: %v", errs)
	}
}

// TestSummaryShape sanity-checks the summary table against a tiny
// scenario without pinning bytes (the goldens do that).
func TestSummaryShape(t *testing.T) {
	s, err := Parse(minimal)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	out := Summary(c, SubstrateSim, RunSim(c))
	for _, want := range []string{"scenario t lock mutex", "substrate sim", "g0", "total grants 1", "order g0"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
