package scenario

import (
	"strings"
	"testing"
	"time"
)

// minimal is a smallest-valid mutex scenario used as an edit base.
const minimal = `scenario t {
	lock mutex
	group g 1 {
		arrival closed
		ops 1
		cs fixed 1ms
		think fixed 1ms
	}
}
`

func TestParseMinimal(t *testing.T) {
	s, err := Parse(minimal)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "t" || s.Lock != LockMutex || len(s.Groups) != 1 {
		t.Fatalf("unexpected scenario: %+v", s)
	}
	g := s.Groups[0]
	if g.Name != "g" || g.Count != 1 || g.Ops != 1 || g.CS.A != time.Millisecond {
		t.Fatalf("unexpected group: %+v", g)
	}
}

// TestParseFull exercises every field of the grammar on both lock
// kinds.
func TestParseFull(t *testing.T) {
	in := `# header comment
scenario full {
	lock rw 3 2
	period 4ms
	seed 42
	horizon 2s
	group readers 4 {
		class reader
		start 1ms     # inline comment
		stagger 100us
		arrival poisson 700us
		ops 9
		cs uniform 200us 500us
	}
	group writers 2 {
		class writer
		arrival stepped 10ms 3 0 5
		cs exp 300us
	}
	assert jain-hold >= 0.85
	assert max-share <= 0.6
	assert grants >= 10
	assert timeouts <= 3
	assert no-lost-grant
	allow hold-share
}
`
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lock != LockRW || s.ReadWeight != 3 || s.WriteWeight != 2 {
		t.Fatalf("rw weights: %+v", s)
	}
	if s.Period != 4*time.Millisecond || s.Seed != 42 || s.Horizon != 2*time.Second {
		t.Fatalf("scalars: %+v", s)
	}
	if len(s.Groups) != 2 || len(s.Asserts) != 5 || len(s.Allow) != 1 {
		t.Fatalf("shape: %+v", s)
	}
	r, w := s.Groups[0], s.Groups[1]
	if r.Writer || r.Arrival.Kind != ArrivalPoisson || r.Arrival.Mean != 700*time.Microsecond {
		t.Fatalf("readers group: %+v", r)
	}
	if !w.Writer || w.Arrival.Kind != ArrivalStepped || len(w.Arrival.Counts) != 3 || w.Arrival.Counts[1] != 0 {
		t.Fatalf("writers group: %+v", w)
	}
	if s.Asserts[0].Kind != AssertJainHold || s.Asserts[0].Value != 0.85 {
		t.Fatalf("assert 0: %+v", s.Asserts[0])
	}
	if s.Asserts[4].Kind != AssertNoLostGrant {
		t.Fatalf("assert 4: %+v", s.Asserts[4])
	}
}

// TestParseRoundTrip: Format is the parser's fixpoint on every corpus
// scenario and on the full-grammar example.
func TestParseRoundTrip(t *testing.T) {
	corpus, err := LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range corpus {
		f1 := Format(s)
		s2, err := Parse(f1)
		if err != nil {
			t.Fatalf("%s: reparse of formatted form: %v\n%s", s.Name, err, f1)
		}
		f2 := Format(s2)
		if f1 != f2 {
			t.Errorf("%s: format not a fixpoint\nfirst:\n%s\nsecond:\n%s", s.Name, f1, f2)
		}
	}
}

// TestParseErrors: malformed inputs produce errors (with the line
// number), never panics.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty", "", "unexpected end"},
		{"no-brace", "scenario x\n", "expected `scenario"},
		{"unclosed", "scenario x {\n\tlock mutex\n", "unexpected end"},
		{"trailing", minimal + "extra\n", "after the scenario block"},
		{"bad-field", "scenario x {\n\tbogus 1\n}\n", `unknown scenario field "bogus"`},
		{"bad-group-field", strings.Replace(minimal, "\t\tops 1\n", "\t\tnope 1\n", 1), `unknown group field "nope"`},
		{"bad-duration", strings.Replace(minimal, "cs fixed 1ms", "cs fixed xyz", 1), "duration"},
		{"neg-count", strings.Replace(minimal, "group g 1", "group g -2", 1), "count must be positive"},
		{"zero-ops", strings.Replace(minimal, "ops 1", "ops 0", 1), "ops must be positive"},
		{"writer-on-mutex", strings.Replace(minimal, "\t\tarrival closed\n", "\t\tclass writer\n\t\tarrival closed\n", 1), "rw-only"},
		{"think-on-poisson", strings.Replace(minimal, "arrival closed", "arrival poisson 1ms", 1), "closed-arrival-only"},
		{"ops-on-stepped", strings.Replace(minimal, "arrival closed", "arrival stepped 1ms 2", 1), "derived from stepped"},
		{"stepped-no-counts", strings.Replace(minimal, "arrival closed\n\t\tops 1", "arrival stepped 1ms", 1), "stepped"},
		{"bad-assert-op", strings.Replace(minimal, "}\n}", "}\n\tassert jain-hold <= 0.5\n}", 1), "jain-hold"},
		{"assert-range", strings.Replace(minimal, "}\n}", "}\n\tassert jain-hold >= 1.5\n}", 1), "[0, 1]"},
		{"bad-allow", strings.Replace(minimal, "}\n}", "}\n\tallow nonsense\n}", 1), "unknown allow code"},
		{"dup-group", minimal[:len(minimal)-2] + "\tgroup g 1 {\n\t\tarrival closed\n\t\tops 1\n\t\tcs fixed 1ms\n\t\tthink fixed 1ms\n\t}\n}\n", "duplicate group"},
		{"rw-timeout", "scenario x {\n\tlock rw 1 1\n\tgroup g 1 {\n\t\tarrival closed\n\t\tops 1\n\t\tcs fixed 1ms\n\t\tthink fixed 1ms\n\t\ttimeout 1ms\n\t}\n}\n", "mutex-only"},
		{"neg-weight", "scenario x {\n\tlock rw 0 1\n}\n", "weights must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.in)
			if err == nil {
				t.Fatalf("no error for %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseErrorLineNumbers: errors point at the offending line.
func TestParseErrorLineNumbers(t *testing.T) {
	in := "scenario x {\n\tlock mutex\n\tbroken\n}\n"
	_, err := Parse(in)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want a line-3 error, got %v", err)
	}
}

// TestCompileDeterministic: one (scenario, seed) pair compiles to the
// same script every time, and a different seed changes the draws.
func TestCompileDeterministic(t *testing.T) {
	s, err := LoadFile("testdata/herd.scn")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Mutex.Entities) != len(b.Mutex.Entities) {
		t.Fatal("entity count differs across compiles")
	}
	for i := range a.Mutex.Entities {
		ea, eb := a.Mutex.Entities[i], b.Mutex.Entities[i]
		if ea.Start != eb.Start || len(ea.Ops) != len(eb.Ops) {
			t.Fatalf("entity %d differs across compiles", i)
		}
		for j := range ea.Ops {
			if ea.Ops[j] != eb.Ops[j] {
				t.Fatalf("entity %d op %d differs: %+v vs %+v", i, j, ea.Ops[j], eb.Ops[j])
			}
		}
	}
	other, err := CompileSeed(s, s.Seed+1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Mutex.Entities {
		for j, op := range a.Mutex.Entities[i].Ops {
			if other.Mutex.Entities[i].Ops[j] != op {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seed produced identical draws")
	}
}

// TestCompileQuantized: every sampled duration lands on the Quantum
// grid (the oracle's separation discipline).
func TestCompileQuantized(t *testing.T) {
	corpus, err := LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range corpus {
		c, err := Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		// Stepped think gaps come from the exact tick schedule rather
		// than the sampler, so only sampled holds are grid-checked.
		ents := 0
		verify := func(name string, hold time.Duration) {
			if hold%Quantum != 0 {
				t.Errorf("%s/%s: hold %v off the %v grid", s.Name, name, hold, Quantum)
			}
		}
		switch {
		case c.Mutex != nil:
			for _, e := range c.Mutex.Entities {
				ents++
				for _, op := range e.Ops {
					verify(e.Name, op.Hold)
				}
			}
		case len(c.Keyed) > 0:
			for _, ks := range c.Keyed {
				for _, e := range ks.Entities {
					ents++
					for _, op := range e.Ops {
						verify(e.Name, op.Hold)
					}
				}
			}
		default:
			for _, e := range c.RW.Entities {
				ents++
				for _, op := range e.Ops {
					verify(e.Name, op.Hold)
				}
			}
		}
		if ents != s.Entities() {
			t.Errorf("%s: compiled %d entities, scenario declares %d", s.Name, ents, s.Entities())
		}
	}
}
