package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorpusExt is the scenario file extension.
const CorpusExt = ".scn"

// LoadFile parses one scenario file.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// LoadCorpus parses every *.scn file under dir (sorted by name, so
// corpus order is stable across platforms).
func LoadCorpus(dir string) ([]*Scenario, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), CorpusExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no %s files in %s", CorpusExt, dir)
	}
	out := make([]*Scenario, 0, len(names))
	for _, name := range names {
		s, err := LoadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
