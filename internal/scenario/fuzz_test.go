package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzScenarioParser holds the grammar to two properties on arbitrary
// input:
//
//  1. the parser never panics (malformed input is an error value), and
//  2. for input that parses, Format is a fixpoint: Format(Parse(in))
//     reparses, and formatting the reparse is byte-identical — the
//     canonical form is stable, so files rewritten by tooling never
//     churn.
//
// The seed corpus is the starter scenario corpus plus a handful of
// adversarial fragments.
func FuzzScenarioParser(f *testing.F) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), CorpusExt) {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("scenario x {}")
	f.Add("scenario x {\n\tlock rw 1 1\n}")
	f.Add("scenario x {\n\tgroup g 1 {\n\t\tarrival stepped 1ms 0\n\t}\n}")
	f.Add("scenario \x00 {\n}")
	f.Add(strings.Repeat("scenario x {\n", 100))
	f.Add("scenario x {\n\tassert jain-hold >= 1e309\n}")
	f.Add("scenario x {\n\tseed 99999999999999999999\n}")
	f.Add("scenario x {\n\tgroup g 1 {\n\t\tcs uniform 1ms 1ns\n\t}\n}")

	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(input)
		if err != nil {
			return // malformed input must only error, never panic
		}
		f1 := Format(s)
		s2, err := Parse(f1)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\ninput:\n%q\ncanonical:\n%q", err, input, f1)
		}
		f2 := Format(s2)
		if f1 != f2 {
			t.Fatalf("format not a fixpoint\nfirst:\n%q\nsecond:\n%q", f1, f2)
		}
	})
}
