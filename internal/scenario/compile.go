package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"scl/sim"
)

// Compiled is a scenario lowered to a deterministic operation script.
// Exactly one of Mutex/RW is non-nil, matching the scenario's lock
// kind. All randomness was consumed at compile time, so the same
// (scenario, seed) pair always yields a byte-identical script — the
// property the tri-substrate runner and the differential oracle rest
// on.
type Compiled struct {
	// Scenario is the source scenario.
	Scenario *Scenario
	// Seed is the seed actually used (the scenario's, unless
	// overridden at compile time).
	Seed int64
	// Mutex is the u-SCL script (single-key mutex scenarios).
	Mutex *sim.Script
	// RW is the RW-SCL script (rw scenarios).
	RW *sim.RWScript
	// Keyed are the per-key scripts of a multi-key scenario
	// (Scenario.Keys > 1), indexed by key; Mutex and RW are nil then.
	// Keys of a lock table are independent locks, so each key's script
	// runs on its own lock and the per-entity results merge by global
	// entity index (entities never span keys).
	Keyed []*sim.Script
	// Names are the entity names, indexed by global entity index.
	Names []string
	// GroupOf maps a global entity index to its scenario group index.
	GroupOf []int
	// KeyOf maps a global entity index to its key (all zero in
	// single-key scenarios).
	KeyOf []int
	// LocalOf maps a global entity index to its index inside its key's
	// script (the identity map in single-key scenarios).
	LocalOf []int
	// GlobalOf maps (key, local index) back to the global entity
	// index; GlobalOf[0] is the identity in single-key scenarios.
	GlobalOf [][]int
	// Acquires is the number of scripted acquire operations per
	// entity — the expected grant count when nothing times out.
	Acquires []int
}

// TotalAcquires returns the scripted acquire count across entities.
func (c *Compiled) TotalAcquires() int {
	n := 0
	for _, a := range c.Acquires {
		n += a
	}
	return n
}

// Compile lowers the scenario with its own seed.
func Compile(s *Scenario) (*Compiled, error) { return CompileSeed(s, s.Seed) }

// CompileSeed lowers the scenario with an explicit seed override,
// sampling every arrival gap and critical-section length up front.
func CompileSeed(s *Scenario, seed int64) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Scenario: s, Seed: seed}
	multi := s.Keys > 1
	if multi {
		c.Keyed = make([]*sim.Script, s.Keys)
		for k := range c.Keyed {
			c.Keyed[k] = &sim.Script{Slice: s.Slice, Horizon: s.Horizon}
		}
		c.GlobalOf = make([][]int, s.Keys)
	}
	for gi := range s.Groups {
		g := &s.Groups[gi]
		for i := 0; i < g.Count; i++ {
			rng := rand.New(rand.NewSource(entitySeed(seed, gi, i)))
			ops, acquires := compileEntity(g, i, rng)
			name := fmt.Sprintf("%s%d", g.Name, i)
			start := g.Start + time.Duration(i)*g.Stagger
			global := len(c.Names)
			c.Names = append(c.Names, name)
			c.GroupOf = append(c.GroupOf, gi)
			c.KeyOf = append(c.KeyOf, g.Key)
			c.Acquires = append(c.Acquires, acquires)
			ent := sim.ScriptEntity{Name: name, Start: start, Ops: ops}
			switch {
			case s.Lock == LockRW:
				if c.RW == nil {
					c.RW = &sim.RWScript{
						Period:      s.Period,
						ReadWeight:  s.ReadWeight,
						WriteWeight: s.WriteWeight,
						Horizon:     s.Horizon,
					}
				}
				c.LocalOf = append(c.LocalOf, global)
				c.RW.Entities = append(c.RW.Entities, sim.RWScriptEntity{
					Name: name, Writer: g.Writer, Start: start, Ops: ops,
				})
			case multi:
				ks := c.Keyed[g.Key]
				c.LocalOf = append(c.LocalOf, len(ks.Entities))
				c.GlobalOf[g.Key] = append(c.GlobalOf[g.Key], global)
				ks.Entities = append(ks.Entities, ent)
			default:
				if c.Mutex == nil {
					c.Mutex = &sim.Script{Slice: s.Slice, Horizon: s.Horizon}
				}
				c.LocalOf = append(c.LocalOf, global)
				c.Mutex.Entities = append(c.Mutex.Entities, ent)
			}
		}
	}
	if !multi {
		c.GlobalOf = [][]int{make([]int, len(c.Names))}
		for i := range c.Names {
			c.GlobalOf[0][i] = i
		}
	}
	return c, nil
}

// compileEntity samples one entity's operation list: for each arrival,
// a think op for the gap (when non-zero) followed by the acquire with
// a sampled critical section; `do` groups run the section through the
// combining API (OpDo), cancellable acquires carry the group timeout,
// and close-every inserts an OpClose after every n-th acquisition (the
// next acquire re-registers the entity).
func compileEntity(g *Group, idx int, rng *rand.Rand) ([]sim.ScriptOp, int) {
	gapper := g.newGapper(idx, g.Count, rng)
	var ops []sim.ScriptOp
	acquires := 0
	for {
		gap, ok := gapper.NextGap()
		if !ok {
			break
		}
		if gap > 0 {
			ops = append(ops, sim.ScriptOp{Kind: sim.OpThink, Think: gap})
		}
		cs := g.CS.Sample(rng)
		switch {
		case g.Do:
			ops = append(ops, sim.ScriptOp{Kind: sim.OpDo, Hold: cs})
		case g.Timeout > 0:
			ops = append(ops, sim.ScriptOp{Kind: sim.OpAcquireTimeout, Hold: cs, Timeout: g.Timeout})
		default:
			ops = append(ops, sim.ScriptOp{Kind: sim.OpAcquire, Hold: cs})
		}
		acquires++
		if g.CloseEvery > 0 && acquires%g.CloseEvery == 0 {
			ops = append(ops, sim.ScriptOp{Kind: sim.OpClose})
		}
	}
	return ops, acquires
}
