package scenario

import (
	"context"
	"fmt"

	"scl"
	"scl/internal/check"
	"scl/sim"
)

// Workload adapts a compiled scenario into an explorable
// internal/check workload: the real lock is driven by the scenario's
// scripted operations while the explorer perturbs the schedule at
// every instrumented decision site, asserting mutual exclusion after
// every grant, the lock invariants (accountant conservation) after
// every operation, and clean teardown. No lost grant is the
// scheduler's deadlock detector. This runs the corpus through
// schedules the deterministic substrates never produce — the same
// scenario files serve as differential-oracle inputs and as
// exploration seeds.
func Workload(c *Compiled) check.Workload {
	if c.RW != nil {
		return rwWorkload(c)
	}
	if len(c.Keyed) > 0 {
		return managerWorkload(c)
	}
	return mutexWorkload(c)
}

func mutexWorkload(c *Compiled) check.Workload {
	s := c.Scenario
	var m *scl.Mutex
	return check.Workload{
		Name: "scenario:" + s.Name,
		Setup: func(sched *check.Sched) {
			m = scl.NewMutex(scl.Options{Slice: s.Slice, Name: s.Name})
			held := new(int)
			for i, ent := range c.Mutex.Entities {
				ent := ent
				h := m.Register().SetName(ent.Name)
				sched.Go(fmt.Sprintf("e%d", i), func() {
					runMutexOps(sched, m, h, ent, held)
				})
			}
		},
		Validate: func() error {
			if err := m.CheckInvariants(); err != nil {
				return err
			}
			if n := m.Entities(); n != 0 {
				return fmt.Errorf("%d entities still registered after all handles closed", n)
			}
			return nil
		},
	}
}

// runMutexOps drives one entity's scripted ops under the explorer.
func runMutexOps(sched *check.Sched, m *scl.Mutex, h *scl.Handle, ent sim.ScriptEntity, held *int) {
	defer func() {
		if h != nil {
			h.Close()
		}
	}()
	enter := func() {
		*held++
		if *held != 1 {
			sched.Failf("mutual exclusion violated: %d holders", *held)
		}
	}
	check.Sleep(ent.Start)
	for i, op := range ent.Ops {
		switch op.Kind {
		case sim.OpThink:
			check.Sleep(op.Think)
		case sim.OpAcquire, sim.OpAcquireTimeout:
			if h == nil {
				h = m.Register().SetName(ent.Name)
			}
			if op.Kind == sim.OpAcquireTimeout {
				ctx, cancel := context.WithCancel(context.Background())
				op := op
				sched.Go("canceller", func() {
					check.Sleep(op.Timeout)
					cancel()
				})
				err := h.LockContext(ctx)
				cancel()
				if err != nil {
					break
				}
				enter()
				check.Sleep(op.Hold)
				*held--
				h.Unlock()
			} else {
				h.Lock()
				enter()
				check.Sleep(op.Hold)
				*held--
				h.Unlock()
			}
		case sim.OpDo:
			if h == nil {
				h = m.Register().SetName(ent.Name)
			}
			// The section may run on the current holder's goroutine; the
			// shared held counter still sees exactly one holder because
			// combined sections execute under the lock's exclusion.
			h.Do(func() {
				enter()
				check.Sleep(op.Hold)
				*held--
			})
		case sim.OpClose:
			h.Close()
			h = nil
		}
		if err := m.CheckInvariants(); err != nil {
			sched.Failf("invariants broken after op %d: %v", i, err)
		}
	}
}

// managerWorkload drives a multi-key scenario against a real
// scl.Manager under the explorer: one tenant per entity, one key per
// group's declared index, mutual exclusion asserted per key (keys are
// independent locks, so a cross-key hold is legal; two holders of the
// same key never are). OpClose closes the whole tenant and
// re-registers it, churning the stripe books and handle pools through
// every explored schedule. Teardown must leave the table with zero
// tenant identities.
func managerWorkload(c *Compiled) check.Workload {
	s := c.Scenario
	var m *scl.Manager
	return check.Workload{
		Name: "scenario:" + s.Name,
		Setup: func(sched *check.Sched) {
			m = scl.NewManager(scl.ManagerOptions{
				Lock: scl.Options{Slice: s.Slice},
				Name: s.Name,
			}, scl.WithStripes(2))
			held := make([]int, len(c.Keyed))
			for k := range c.Keyed {
				key := fmt.Sprintf("k%d", k)
				for local, ent := range c.Keyed[k].Entities {
					g, ent := c.GlobalOf[k][local], ent
					sched.Go(fmt.Sprintf("e%d", g), func() {
						runManagerOps(sched, m, key, ent, &held[c.KeyOf[g]])
					})
				}
			}
		},
		Validate: func() error {
			if err := m.CheckInvariants(); err != nil {
				return err
			}
			if n := m.Stats().Identities; n != 0 {
				return fmt.Errorf("%d tenant identities left after all tenants closed", n)
			}
			return nil
		},
	}
}

// runManagerOps drives one entity's scripted ops against the manager
// under the explorer.
func runManagerOps(sched *check.Sched, m *scl.Manager, key string, ent sim.ScriptEntity, held *int) {
	tn := m.Tenant(ent.Name, 1)
	defer func() { tn.Close() }()
	enter := func() {
		*held++
		if *held != 1 {
			sched.Failf("mutual exclusion violated on %s: %d holders", key, *held)
		}
	}
	check.Sleep(ent.Start)
	for i, op := range ent.Ops {
		switch op.Kind {
		case sim.OpThink:
			check.Sleep(op.Think)
		case sim.OpAcquire, sim.OpAcquireTimeout:
			var g *scl.Grant
			if op.Kind == sim.OpAcquireTimeout {
				ctx, cancel := context.WithCancel(context.Background())
				op := op
				sched.Go("canceller", func() {
					check.Sleep(op.Timeout)
					cancel()
				})
				var err error
				g, err = tn.LockContext(ctx, key)
				cancel()
				if err != nil {
					break
				}
			} else {
				g = tn.Lock(key)
			}
			enter()
			check.Sleep(op.Hold)
			*held--
			g.Unlock()
		case sim.OpClose:
			tn.Close()
			tn = m.Tenant(ent.Name, 1)
		}
		if err := m.CheckInvariants(); err != nil {
			sched.Failf("manager invariants broken after op %d: %v", i, err)
		}
	}
}

func rwWorkload(c *Compiled) check.Workload {
	s := c.Scenario
	rw, ww := s.ReadWeight, s.WriteWeight
	if rw == 0 {
		rw = 1
	}
	if ww == 0 {
		ww = 1
	}
	period := s.Period
	var l *scl.RWLock
	return check.Workload{
		Name: "scenario:" + s.Name,
		Setup: func(sched *check.Sched) {
			l = scl.NewRWLock(rw, ww, period)
			readers := new(int)
			writers := new(int)
			for i, ent := range c.RW.Entities {
				ent := ent
				sched.Go(fmt.Sprintf("e%d", i), func() {
					runRWOps(sched, l, ent, readers, writers)
				})
			}
		},
		Validate: func() error { return l.CheckInvariants() },
	}
}

// runRWOps drives one RW entity's scripted ops under the explorer.
func runRWOps(sched *check.Sched, l *scl.RWLock, ent sim.RWScriptEntity, readers, writers *int) {
	check.Sleep(ent.Start)
	for i, op := range ent.Ops {
		switch op.Kind {
		case sim.OpThink:
			check.Sleep(op.Think)
		case sim.OpAcquire:
			if ent.Writer {
				l.WLock()
				*writers++
			} else {
				l.RLock()
				*readers++
			}
			if *writers > 1 {
				sched.Failf("%d writers active", *writers)
			}
			if *writers == 1 && *readers > 0 {
				sched.Failf("writer active with %d readers", *readers)
			}
			check.Sleep(op.Hold)
			if ent.Writer {
				*writers--
				l.WUnlock()
			} else {
				*readers--
				l.RUnlock()
			}
		}
		if err := l.CheckInvariants(); err != nil {
			sched.Failf("invariants broken after op %d: %v", i, err)
		}
	}
}
