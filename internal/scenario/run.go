package scenario

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"scl"
	"scl/internal/check/oracle"
	"scl/internal/metrics"
	"scl/sim"
	"scl/trace"
)

// Substrate names accepted by Run and the sclscenario CLI.
const (
	// SubstrateSim is the discrete-event simulator.
	SubstrateSim = "sim"
	// SubstrateCheck is the real library under the deterministic
	// checker's virtual clock.
	SubstrateCheck = "check"
	// SubstrateWall is real goroutines on the real clock.
	SubstrateWall = "wall"
)

// Run executes the compiled scenario on the named substrate.
func Run(c *Compiled, substrate string) (sim.ScriptResult, error) {
	switch substrate {
	case SubstrateSim:
		return RunSim(c), nil
	case SubstrateCheck:
		return RunCheck(c)
	case SubstrateWall:
		return RunWall(c)
	}
	return sim.ScriptResult{}, fmt.Errorf("unknown substrate %q", substrate)
}

// RunSim executes the compiled scenario on the simulator. Multi-key
// scenarios run each key's script on its own simulated lock (keys of a
// table are independent locks) and merge the per-entity results.
func RunSim(c *Compiled) sim.ScriptResult {
	if c.RW != nil {
		return sim.RunRWScript(*c.RW)
	}
	if len(c.Keyed) > 0 {
		per := make([]sim.ScriptResult, len(c.Keyed))
		for k, s := range c.Keyed {
			per[k] = sim.RunScript(*s)
		}
		return mergeKeyed(c, per)
	}
	return sim.RunScript(*c.Mutex)
}

// RunCheck executes the compiled scenario against the real scl lock
// under the deterministic checker's virtual clock (the oracle's
// real-side driver). Multi-key scenarios run each key against its own
// real lock, exactly mirroring the simulator's decomposition.
func RunCheck(c *Compiled) (sim.ScriptResult, error) {
	if c.RW != nil {
		return oracle.RunRealRW(*c.RW)
	}
	if len(c.Keyed) > 0 {
		per, err := runCheckKeyed(c)
		if err != nil {
			return sim.ScriptResult{}, err
		}
		return mergeKeyed(c, per), nil
	}
	return oracle.RunReal(*c.Mutex)
}

// runCheckKeyed runs every key's script on the check substrate.
func runCheckKeyed(c *Compiled) ([]sim.ScriptResult, error) {
	per := make([]sim.ScriptResult, len(c.Keyed))
	for k, s := range c.Keyed {
		r, err := oracle.RunReal(*s)
		if err != nil {
			return nil, fmt.Errorf("key %d: %w", k, err)
		}
		per[k] = r
	}
	return per, nil
}

// mergeKeyed folds per-key results (local entity indices) into one
// result over global entity indices. Grants concatenate in key order,
// so filtering the merged order by KeyOf recovers each key's exact
// grant sequence; per-entity counters and holds remap one-to-one
// because entities never span keys.
func mergeKeyed(c *Compiled, per []sim.ScriptResult) sim.ScriptResult {
	n := len(c.Names)
	out := sim.ScriptResult{
		Timeouts: make([]int, n),
		Bans:     make([]int, n),
		Hold:     make([]time.Duration, n),
	}
	for k, r := range per {
		for _, local := range r.Grants {
			out.Grants = append(out.Grants, c.GlobalOf[k][local])
		}
		for local, g := range c.GlobalOf[k] {
			out.Timeouts[g] = r.Timeouts[local]
			out.Bans[g] = r.Bans[local]
			out.Hold[g] = r.Hold[local]
		}
	}
	return out
}

// RunWall executes the compiled scenario with real goroutines on the
// real clock. The script's virtual durations become real sleeps, so a
// scenario's wall cost is roughly its horizon. Grant order and hold
// times are as the OS scheduler produced them — meaningful for
// throughput and structural assertions, not for byte-exact
// comparison.
func RunWall(c *Compiled) (sim.ScriptResult, error) {
	if c.RW != nil {
		return runWallRW(c)
	}
	if len(c.Keyed) > 0 {
		return runWallManager(c)
	}
	return runWallMutex(c)
}

// wallWatchdog bounds a wall run far beyond any plausible completion
// so a lost grant shows up as an error, not a hung test.
func wallWatchdog(s *Scenario) time.Duration {
	h := s.Horizon
	if h == 0 {
		h = time.Second
	}
	return 10*h + 5*time.Second
}

func runWallMutex(c *Compiled) (sim.ScriptResult, error) {
	s := c.Scenario
	script := c.Mutex
	res := sim.ScriptResult{
		Timeouts: make([]int, len(script.Entities)),
		Bans:     make([]int, len(script.Entities)),
		Hold:     make([]time.Duration, len(script.Entities)),
	}
	ring := trace.NewRing(1 << 14)
	m := scl.NewMutex(scl.Options{Slice: s.Slice, Tracer: ring, Name: s.Name})
	var mu sync.Mutex // guards res and idToEnt
	idToEnt := make(map[int64]int)
	var wg sync.WaitGroup
	for i, ent := range script.Entities {
		i, ent := i, ent
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Register().SetName(ent.Name)
			mu.Lock()
			idToEnt[h.ID()] = i
			mu.Unlock()
			defer func() {
				if h != nil {
					h.Close()
				}
			}()
			time.Sleep(ent.Start)
			for _, op := range ent.Ops {
				switch op.Kind {
				case sim.OpThink:
					time.Sleep(op.Think)
				case sim.OpAcquire, sim.OpAcquireTimeout:
					if h == nil {
						h = m.Register().SetName(ent.Name)
						mu.Lock()
						idToEnt[h.ID()] = i
						mu.Unlock()
					}
					if op.Kind == sim.OpAcquireTimeout {
						ctx, cancel := context.WithTimeout(context.Background(), op.Timeout)
						err := h.LockContext(ctx)
						cancel()
						if err != nil {
							mu.Lock()
							res.Timeouts[i]++
							mu.Unlock()
							continue
						}
					} else {
						h.Lock()
					}
					at := time.Now()
					mu.Lock()
					res.Grants = append(res.Grants, i)
					mu.Unlock()
					time.Sleep(op.Hold)
					mu.Lock()
					res.Hold[i] += time.Since(at)
					mu.Unlock()
					h.Unlock()
				case sim.OpDo:
					if h == nil {
						h = m.Register().SetName(ent.Name)
						mu.Lock()
						idToEnt[h.ID()] = i
						mu.Unlock()
					}
					var span time.Duration
					h.Do(func() {
						at := time.Now()
						time.Sleep(op.Hold)
						span = time.Since(at)
					})
					// The grant lands when Do returns: the section may have
					// run on another entity's stack, but it ran exactly once
					// and was charged here.
					mu.Lock()
					res.Grants = append(res.Grants, i)
					res.Hold[i] += span
					mu.Unlock()
				case sim.OpClose:
					h.Close()
					h = nil
				}
			}
		}()
	}
	if err := waitWall(&wg, wallWatchdog(s)); err != nil {
		return res, err
	}
	if err := m.CheckInvariants(); err != nil {
		return res, fmt.Errorf("wall-side invariants: %w", err)
	}
	for _, ev := range ring.Events() {
		if ev.Kind == trace.KindBan {
			if i, ok := idToEnt[ev.Entity]; ok {
				res.Bans[i]++
			}
		}
	}
	return res, nil
}

// runWallManager executes a multi-key scenario against a real
// scl.Manager on the real clock: one tenant per entity, keys named
// k<i>. Where the deterministic substrates decompose a multi-key
// scenario into independent per-key locks, the wall substrate
// exercises the actual lock-table path — stripe lookup, lazy
// materialization, tenant-level books — so a manager regression shows
// up as a lost grant or invariant failure even though timing-level
// assertions stay sim/check-only.
func runWallManager(c *Compiled) (sim.ScriptResult, error) {
	s := c.Scenario
	res := sim.ScriptResult{
		Timeouts: make([]int, len(c.Names)),
		Bans:     make([]int, len(c.Names)),
		Hold:     make([]time.Duration, len(c.Names)),
	}
	m := scl.NewManager(scl.ManagerOptions{
		Lock: scl.Options{Slice: s.Slice},
		Name: s.Name,
	})
	var mu sync.Mutex // guards res
	var wg sync.WaitGroup
	for k := range c.Keyed {
		key := fmt.Sprintf("k%d", k)
		for local, ent := range c.Keyed[k].Entities {
			i, ent := c.GlobalOf[k][local], ent
			wg.Add(1)
			go func() {
				defer wg.Done()
				tn := m.Tenant(ent.Name, 1)
				defer func() { tn.Close() }()
				time.Sleep(ent.Start)
				for _, op := range ent.Ops {
					switch op.Kind {
					case sim.OpThink:
						time.Sleep(op.Think)
					case sim.OpAcquire, sim.OpAcquireTimeout:
						var g *scl.Grant
						if op.Kind == sim.OpAcquireTimeout {
							ctx, cancel := context.WithTimeout(context.Background(), op.Timeout)
							var err error
							g, err = tn.LockContext(ctx, key)
							cancel()
							if err != nil {
								mu.Lock()
								res.Timeouts[i]++
								mu.Unlock()
								continue
							}
						} else {
							g = tn.Lock(key)
						}
						at := time.Now()
						mu.Lock()
						res.Grants = append(res.Grants, i)
						mu.Unlock()
						time.Sleep(op.Hold)
						mu.Lock()
						res.Hold[i] += time.Since(at)
						mu.Unlock()
						g.Unlock()
					case sim.OpClose:
						// Close retires the whole tenant identity; the
						// next acquire runs under a fresh registration,
						// matching the single-lock close/re-register
						// lifecycle at table scope.
						tn.Close()
						tn = m.Tenant(ent.Name, 1)
					}
				}
			}()
		}
	}
	if err := waitWall(&wg, wallWatchdog(s)); err != nil {
		return res, err
	}
	if err := m.CheckInvariants(); err != nil {
		return res, fmt.Errorf("wall-side manager invariants: %w", err)
	}
	return res, nil
}

func runWallRW(c *Compiled) (sim.ScriptResult, error) {
	s := c.Scenario
	script := c.RW
	rw, ww := script.ReadWeight, script.WriteWeight
	if rw == 0 {
		rw = 1
	}
	if ww == 0 {
		ww = 1
	}
	period := script.Period
	if period == 0 {
		period = 2 * time.Millisecond
	}
	res := sim.ScriptResult{
		Timeouts: make([]int, len(script.Entities)),
		Bans:     make([]int, len(script.Entities)),
		Hold:     make([]time.Duration, len(script.Entities)),
	}
	l := scl.NewRWLock(rw, ww, period)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, ent := range script.Entities {
		i, ent := i, ent
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(ent.Start)
			for _, op := range ent.Ops {
				switch op.Kind {
				case sim.OpThink:
					time.Sleep(op.Think)
				case sim.OpAcquire:
					if ent.Writer {
						l.WLock()
					} else {
						l.RLock()
					}
					at := time.Now()
					mu.Lock()
					res.Grants = append(res.Grants, i)
					mu.Unlock()
					time.Sleep(op.Hold)
					mu.Lock()
					res.Hold[i] += time.Since(at)
					mu.Unlock()
					if ent.Writer {
						l.WUnlock()
					} else {
						l.RUnlock()
					}
				}
			}
		}()
	}
	if err := waitWall(&wg, wallWatchdog(s)); err != nil {
		return res, err
	}
	if err := l.CheckInvariants(); err != nil {
		return res, fmt.Errorf("wall-side RW invariants: %w", err)
	}
	return res, nil
}

// waitWall waits for the run's goroutines with a deadline; a timeout
// is reported as a lost grant (some entity never completed its
// script).
func waitWall(wg *sync.WaitGroup, d time.Duration) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(d):
		return fmt.Errorf("wall run stalled: entities still blocked after %v (lost grant?)", d)
	}
}

// JainHold computes Jain's fairness index over per-entity hold time.
func JainHold(r sim.ScriptResult) float64 {
	xs := make([]float64, len(r.Hold))
	for i, h := range r.Hold {
		xs[i] = float64(h)
	}
	return metrics.Jain(xs)
}

// EvalAsserts checks the scenario's declared assertions against one
// substrate's result. Timing-sensitive assertions (jain-hold,
// max-share, timeouts) are enforced on the deterministic substrates
// only: on wall the OS scheduler owns the timing, so they would
// flake. Completion (no-lost-grant) is enforced by the runners
// themselves; here it never fails.
func EvalAsserts(s *Scenario, r sim.ScriptResult, substrate string) []error {
	deterministic := substrate != SubstrateWall
	var errs []error
	for _, a := range s.Asserts {
		switch a.Kind {
		case AssertJainHold:
			if !deterministic {
				continue
			}
			if j := JainHold(r); j < a.Value {
				errs = append(errs, fmt.Errorf("assert jain-hold >= %g: got %.3f", a.Value, j))
			}
		case AssertMaxShare:
			if !deterministic {
				continue
			}
			for e := range r.Hold {
				if sh := r.HoldShare(e); sh > a.Value {
					errs = append(errs, fmt.Errorf("assert max-share <= %g: entity %d holds %.3f", a.Value, e, sh))
				}
			}
		case AssertGrants:
			if len(r.Grants) < a.N {
				errs = append(errs, fmt.Errorf("assert grants >= %d: got %d", a.N, len(r.Grants)))
			}
		case AssertTimeouts:
			if !deterministic {
				continue
			}
			total := 0
			for _, t := range r.Timeouts {
				total += t
			}
			if total > a.N {
				errs = append(errs, fmt.Errorf("assert timeouts <= %d: got %d", a.N, total))
			}
		case AssertNoLostGrant:
			// Completion is the runners' watchdog/deadlock detector.
		}
	}
	return errs
}

// DivGrantCount is the scenario oracle's own divergence code: emitted
// when a scenario allows grant-order (reader batches released in a
// different permutation) but the per-entity grant counts still
// disagree — a permutation excuses ordering, never volume. It can
// never be allowed.
const DivGrantCount = "grant-count"

// Diff runs the compiled scenario on the sim and check substrates and
// compares them with the differential oracle, splitting findings into
// divergences the scenario documents (its allow list) and undocumented
// ones. This is the corpus-wide generalization of the oracle's curated
// cases: any deterministic scenario is a differential test. When a
// scenario allows grant-order, the grant multiset is still enforced:
// each entity must be granted the same number of times on both sides.
// Multi-key scenarios compare key by key: each key is an independent
// lock on both substrates, so grant order is only defined within a
// key, and a divergence names the key it came from.
func Diff(c *Compiled) (allowed, undocumented []oracle.Divergence, err error) {
	if len(c.Keyed) > 0 {
		return diffKeyed(c)
	}
	simR := RunSim(c)
	realR, err := RunCheck(c)
	if err != nil {
		return nil, nil, err
	}
	return splitDivergences(c, oracle.Compare(simR, realR), simR, realR, -1)
}

// diffKeyed runs the per-key differential comparison of a multi-key
// scenario.
func diffKeyed(c *Compiled) (allowed, undocumented []oracle.Divergence, err error) {
	simPer := make([]sim.ScriptResult, len(c.Keyed))
	for k, s := range c.Keyed {
		simPer[k] = sim.RunScript(*s)
	}
	realPer, err := runCheckKeyed(c)
	if err != nil {
		return nil, nil, err
	}
	for k := range c.Keyed {
		a, u, err := splitDivergences(c, oracle.Compare(simPer[k], realPer[k]), simPer[k], realPer[k], k)
		if err != nil {
			return nil, nil, err
		}
		allowed = append(allowed, a...)
		undocumented = append(undocumented, u...)
	}
	return allowed, undocumented, nil
}

// splitDivergences sorts comparator findings into documented and
// undocumented per the scenario's allow list, applies the grant-count
// supplement when grant-order is allowed, and prefixes the key of a
// multi-key comparison (key >= 0) so a divergence names its lock.
func splitDivergences(c *Compiled, divs []oracle.Divergence, simR, realR sim.ScriptResult, key int) (allowed, undocumented []oracle.Divergence, err error) {
	tag := func(d oracle.Divergence) oracle.Divergence {
		if key >= 0 {
			d.Detail = fmt.Sprintf("key %d: %s", key, d.Detail)
		}
		return d
	}
	for _, d := range divs {
		if contains(c.Scenario.Allow, d.Code) {
			allowed = append(allowed, tag(d))
		} else {
			undocumented = append(undocumented, tag(d))
		}
	}
	if contains(c.Scenario.Allow, oracle.DivGrantOrder) {
		a, b := foldGrants(simR), foldGrants(realR)
		for e := range a {
			if a[e] != b[e] {
				undocumented = append(undocumented, tag(oracle.Divergence{
					Code:   DivGrantCount,
					Detail: fmt.Sprintf("entity %d: sim %d grants, real %d", e, a[e], b[e]),
				}))
			}
		}
	}
	return allowed, undocumented, nil
}

// foldGrants folds a grant order into per-entity counts (indexed by
// whatever entity space r uses — global for merged results, local for
// one key's).
func foldGrants(r sim.ScriptResult) []int {
	counts := make([]int, len(r.Hold))
	for _, e := range r.Grants {
		counts[e]++
	}
	return counts
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Summary renders one substrate run as a byte-exact table (the golden
// determinism tests pin it for the deterministic substrates).
func Summary(c *Compiled, substrate string, r sim.ScriptResult) string {
	s := c.Scenario
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s lock %s seed %d entities %d", s.Name, s.Lock, c.Seed, len(c.Names))
	if len(c.Keyed) > 0 {
		fmt.Fprintf(&b, " keys %d", len(c.Keyed))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "substrate %s\n", substrate)
	fmt.Fprintf(&b, "  %-14s %-10s %7s %9s %5s %12s %6s\n", "entity", "group", "grants", "timeouts", "bans", "hold", "share")
	grants := make([]int, len(c.Names))
	for _, e := range r.Grants {
		grants[e]++
	}
	for i, name := range c.Names {
		g := s.Groups[c.GroupOf[i]].Name
		fmt.Fprintf(&b, "  %-14s %-10s %7d %9d %5d %12s %6.3f\n",
			name, g, grants[i], r.Timeouts[i], r.Bans[i], r.Hold[i], r.HoldShare(i))
	}
	totalT, totalB := 0, 0
	for i := range c.Names {
		totalT += r.Timeouts[i]
		totalB += r.Bans[i]
	}
	fmt.Fprintf(&b, "  total grants %d timeouts %d bans %d jain-hold %.3f\n",
		len(r.Grants), totalT, totalB, JainHold(r))
	if len(c.Keyed) > 0 {
		// Grant order is only defined within a key: one line per key,
		// recovered from the merged order via each entity's key.
		for k := range c.Keyed {
			fmt.Fprintf(&b, "  order[k%d]", k)
			for _, e := range r.Grants {
				if c.KeyOf[e] == k {
					fmt.Fprintf(&b, " %s", c.Names[e])
				}
			}
			b.WriteString("\n")
		}
		return b.String()
	}
	fmt.Fprintf(&b, "  order")
	for _, e := range r.Grants {
		fmt.Fprintf(&b, " %s", c.Names[e])
	}
	b.WriteString("\n")
	return b.String()
}
