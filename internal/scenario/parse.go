package scenario

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse reads one scenario from its text form. The grammar is
// line-oriented and brace-blocked, in the spirit of tsload .rex files:
//
//	# comment
//	scenario <name> {
//		lock mutex | lock rw <readWeight> <writeWeight>
//		slice <dur>       (mutex)  |  period <dur>  (rw)
//		keys <n>          (mutex only; > 1 makes a multi-key scenario)
//		seed <int>
//		horizon <dur>
//		group <name> <count> {
//			class reader|writer            (rw only)
//			key <i>                        (multi-key only; default 0)
//			start <dur>
//			stagger <dur>
//			arrival closed | poisson <mean> | stepped <step> c1 c2 ...
//			ops <n>                        (closed/poisson)
//			cs fixed <d> | uniform <lo> <hi> | exp <mean>
//			think <dist>                   (closed only)
//			timeout <dur>                  (mutex only)
//			close-every <n>                (mutex only)
//			do                             (mutex only: combine via Handle.Do)
//		}
//		assert jain-hold >= <f> | max-share <= <f> |
//		       grants >= <n> | timeouts <= <n> | no-lost-grant
//		allow grant-order|timeouts|bans|hold-share
//	}
//
// Comments run from '#' to end of line. Durations use Go syntax
// (500us, 1.5ms). Parse errors carry the 1-based line number.
func Parse(input string) (*Scenario, error) {
	p := &parser{}
	sc := bufio.NewScanner(strings.NewReader(input))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		p.line++
		if err := p.consume(sc.Text()); err != nil {
			return nil, fmt.Errorf("line %d: %w", p.line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.state != stateDone {
		return nil, fmt.Errorf("line %d: unexpected end of input (unclosed block)", p.line)
	}
	if err := p.s.Validate(); err != nil {
		return nil, err
	}
	return p.s, nil
}

// parser states: before the scenario block, inside it, inside a group
// block, and after the closing brace.
type parseState int

const (
	stateTop parseState = iota
	stateScenario
	stateGroup
	stateDone
)

type parser struct {
	line  int
	state parseState
	s     *Scenario
	g     *Group
}

// consume processes one raw line.
func (p *parser) consume(raw string) error {
	line := raw
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	f := strings.Fields(line)
	if len(f) == 0 {
		return nil
	}
	switch p.state {
	case stateTop:
		if len(f) != 3 || f[0] != "scenario" || f[2] != "{" {
			return fmt.Errorf("expected `scenario <name> {`, got %q", strings.TrimSpace(line))
		}
		p.s = &Scenario{Name: f[1]}
		p.state = stateScenario
		return nil
	case stateScenario:
		return p.scenarioLine(f)
	case stateGroup:
		return p.groupLine(f)
	default:
		return fmt.Errorf("content after the scenario block: %q", strings.TrimSpace(line))
	}
}

func (p *parser) scenarioLine(f []string) error {
	switch f[0] {
	case "}":
		if len(f) != 1 {
			return fmt.Errorf("trailing tokens after }")
		}
		p.state = stateDone
		return nil
	case "lock":
		switch {
		case len(f) == 2 && f[1] == "mutex":
			p.s.Lock = LockMutex
		case len(f) == 4 && f[1] == "rw":
			p.s.Lock = LockRW
			var err error
			if p.s.ReadWeight, err = parseInt64(f[2]); err != nil {
				return fmt.Errorf("lock rw read weight: %w", err)
			}
			if p.s.WriteWeight, err = parseInt64(f[3]); err != nil {
				return fmt.Errorf("lock rw write weight: %w", err)
			}
			if p.s.ReadWeight <= 0 || p.s.WriteWeight <= 0 {
				return fmt.Errorf("lock rw weights must be positive")
			}
		default:
			return fmt.Errorf("expected `lock mutex` or `lock rw <rweight> <wweight>`")
		}
		return nil
	case "slice":
		return p.duration(f, &p.s.Slice)
	case "period":
		return p.duration(f, &p.s.Period)
	case "keys":
		if len(f) != 2 {
			return fmt.Errorf("expected `keys <n>`")
		}
		n, err := strconv.Atoi(f[1])
		if err != nil {
			return fmt.Errorf("keys: %w", err)
		}
		if n < 1 {
			return fmt.Errorf("keys: must be >= 1")
		}
		p.s.Keys = n
		return nil
	case "seed":
		if len(f) != 2 {
			return fmt.Errorf("expected `seed <int>`")
		}
		v, err := parseInt64(f[1])
		if err != nil {
			return fmt.Errorf("seed: %w", err)
		}
		p.s.Seed = v
		return nil
	case "horizon":
		return p.duration(f, &p.s.Horizon)
	case "group":
		if len(f) != 4 || f[3] != "{" {
			return fmt.Errorf("expected `group <name> <count> {`")
		}
		n, err := strconv.Atoi(f[2])
		if err != nil {
			return fmt.Errorf("group count: %w", err)
		}
		p.s.Groups = append(p.s.Groups, Group{Name: f[1], Count: n})
		p.g = &p.s.Groups[len(p.s.Groups)-1]
		p.state = stateGroup
		return nil
	case "assert":
		a, err := parseAssert(f[1:])
		if err != nil {
			return err
		}
		p.s.Asserts = append(p.s.Asserts, a)
		return nil
	case "allow":
		if len(f) != 2 {
			return fmt.Errorf("expected `allow <divergence-code>`")
		}
		p.s.Allow = append(p.s.Allow, f[1])
		return nil
	}
	return fmt.Errorf("unknown scenario field %q", f[0])
}

func (p *parser) groupLine(f []string) error {
	switch f[0] {
	case "}":
		if len(f) != 1 {
			return fmt.Errorf("trailing tokens after }")
		}
		p.g = nil
		p.state = stateScenario
		return nil
	case "class":
		if len(f) != 2 || (f[1] != "reader" && f[1] != "writer") {
			return fmt.Errorf("expected `class reader` or `class writer`")
		}
		p.g.Writer = f[1] == "writer"
		return nil
	case "key":
		if len(f) != 2 {
			return fmt.Errorf("expected `key <index>`")
		}
		n, err := strconv.Atoi(f[1])
		if err != nil {
			return fmt.Errorf("key: %w", err)
		}
		if n < 0 {
			return fmt.Errorf("key: must be >= 0")
		}
		p.g.Key = n
		return nil
	case "start":
		return p.duration(f, &p.g.Start)
	case "stagger":
		return p.duration(f, &p.g.Stagger)
	case "arrival":
		a, err := parseArrival(f[1:])
		if err != nil {
			return err
		}
		p.g.Arrival = a
		return nil
	case "ops":
		if len(f) != 2 {
			return fmt.Errorf("expected `ops <n>`")
		}
		n, err := strconv.Atoi(f[1])
		if err != nil {
			return fmt.Errorf("ops: %w", err)
		}
		p.g.Ops = n
		return nil
	case "cs":
		d, err := parseDist(f[1:])
		if err != nil {
			return fmt.Errorf("cs: %w", err)
		}
		p.g.CS = d
		return nil
	case "think":
		d, err := parseDist(f[1:])
		if err != nil {
			return fmt.Errorf("think: %w", err)
		}
		p.g.Think = d
		return nil
	case "timeout":
		return p.duration(f, &p.g.Timeout)
	case "close-every":
		if len(f) != 2 {
			return fmt.Errorf("expected `close-every <n>`")
		}
		n, err := strconv.Atoi(f[1])
		if err != nil {
			return fmt.Errorf("close-every: %w", err)
		}
		p.g.CloseEvery = n
		return nil
	case "do":
		if len(f) != 1 {
			return fmt.Errorf("`do` takes no arguments")
		}
		p.g.Do = true
		return nil
	}
	return fmt.Errorf("unknown group field %q", f[0])
}

// duration parses a single-argument duration field into dst.
func (p *parser) duration(f []string, dst *time.Duration) error {
	if len(f) != 2 {
		return fmt.Errorf("expected `%s <duration>`", f[0])
	}
	d, err := time.ParseDuration(f[1])
	if err != nil {
		return fmt.Errorf("%s: %w", f[0], err)
	}
	if d < 0 {
		return fmt.Errorf("%s: negative duration", f[0])
	}
	*dst = d
	return nil
}

// parseDist parses `fixed <d>`, `uniform <lo> <hi>`, or `exp <mean>`.
func parseDist(f []string) (Dist, error) {
	if len(f) == 0 {
		return Dist{}, fmt.Errorf("expected a distribution")
	}
	switch f[0] {
	case "fixed":
		if len(f) != 2 {
			return Dist{}, fmt.Errorf("expected `fixed <duration>`")
		}
		a, err := time.ParseDuration(f[1])
		if err != nil {
			return Dist{}, err
		}
		return Dist{Kind: DistFixed, A: a}, nil
	case "uniform":
		if len(f) != 3 {
			return Dist{}, fmt.Errorf("expected `uniform <lo> <hi>`")
		}
		a, err := time.ParseDuration(f[1])
		if err != nil {
			return Dist{}, err
		}
		b, err := time.ParseDuration(f[2])
		if err != nil {
			return Dist{}, err
		}
		return Dist{Kind: DistUniform, A: a, B: b}, nil
	case "exp":
		if len(f) != 2 {
			return Dist{}, fmt.Errorf("expected `exp <mean>`")
		}
		a, err := time.ParseDuration(f[1])
		if err != nil {
			return Dist{}, err
		}
		return Dist{Kind: DistExp, A: a}, nil
	}
	return Dist{}, fmt.Errorf("unknown distribution %q", f[0])
}

// parseArrival parses the tokens after `arrival`.
func parseArrival(f []string) (Arrival, error) {
	if len(f) == 0 {
		return Arrival{}, fmt.Errorf("expected an arrival process")
	}
	switch f[0] {
	case "closed":
		if len(f) != 1 {
			return Arrival{}, fmt.Errorf("`arrival closed` takes no arguments")
		}
		return Arrival{Kind: ArrivalClosed}, nil
	case "poisson":
		if len(f) != 2 {
			return Arrival{}, fmt.Errorf("expected `arrival poisson <mean-gap>`")
		}
		mean, err := time.ParseDuration(f[1])
		if err != nil {
			return Arrival{}, err
		}
		return Arrival{Kind: ArrivalPoisson, Mean: mean}, nil
	case "stepped":
		if len(f) < 3 {
			return Arrival{}, fmt.Errorf("expected `arrival stepped <step> c1 [c2 ...]`")
		}
		step, err := time.ParseDuration(f[1])
		if err != nil {
			return Arrival{}, err
		}
		counts := make([]int, 0, len(f)-2)
		for _, tok := range f[2:] {
			c, err := strconv.Atoi(tok)
			if err != nil {
				return Arrival{}, fmt.Errorf("step count %q: %w", tok, err)
			}
			counts = append(counts, c)
		}
		return Arrival{Kind: ArrivalStepped, Step: step, Counts: counts}, nil
	}
	return Arrival{}, fmt.Errorf("unknown arrival process %q", f[0])
}

// parseAssert parses the tokens after `assert`.
func parseAssert(f []string) (Assert, error) {
	if len(f) == 0 {
		return Assert{}, fmt.Errorf("expected an assertion")
	}
	switch f[0] {
	case "no-lost-grant":
		if len(f) != 1 {
			return Assert{}, fmt.Errorf("`assert no-lost-grant` takes no arguments")
		}
		return Assert{Kind: AssertNoLostGrant}, nil
	case "jain-hold", "max-share":
		op := ">="
		kind := AssertJainHold
		if f[0] == "max-share" {
			op, kind = "<=", AssertMaxShare
		}
		if len(f) != 3 || f[1] != op {
			return Assert{}, fmt.Errorf("expected `assert %s %s <float>`", f[0], op)
		}
		v, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return Assert{}, fmt.Errorf("%s: %w", f[0], err)
		}
		if v < 0 || v > 1 {
			return Assert{}, fmt.Errorf("%s: value must be in [0, 1]", f[0])
		}
		return Assert{Kind: kind, Value: v}, nil
	case "grants", "timeouts":
		op := ">="
		kind := AssertGrants
		if f[0] == "timeouts" {
			op, kind = "<=", AssertTimeouts
		}
		if len(f) != 3 || f[1] != op {
			return Assert{}, fmt.Errorf("expected `assert %s %s <int>`", f[0], op)
		}
		n, err := strconv.Atoi(f[2])
		if err != nil {
			return Assert{}, fmt.Errorf("%s: %w", f[0], err)
		}
		if n < 0 {
			return Assert{}, fmt.Errorf("%s: value must be >= 0", f[0])
		}
		return Assert{Kind: kind, N: n}, nil
	}
	return Assert{}, fmt.Errorf("unknown assertion %q", f[0])
}

func parseInt64(s string) (int64, error) {
	return strconv.ParseInt(s, 10, 64)
}
