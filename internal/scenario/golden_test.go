package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden summaries in testdata/golden/. Run
//
//	go test ./internal/scenario -run TestScenarioGolden -update
//
// after an intentional scenario or summary-format change, and commit
// the new files.
var update = flag.Bool("update", false, "rewrite the golden files")

// TestScenarioGolden pins the byte-exact summary table of every
// corpus scenario on both deterministic substrates (sim and check)
// at the scenario's own seed. Any drift is either an intentional
// change (re-golden with -update) or a determinism regression in the
// compiler, the simulator, or the checker-driven real lock.
func TestScenarioGolden(t *testing.T) {
	corpus, err := LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range corpus {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			c, err := Compile(s)
			if err != nil {
				t.Fatal(err)
			}
			render := func() string {
				var b strings.Builder
				b.WriteString(Summary(c, SubstrateSim, RunSim(c)))
				checkR, err := RunCheck(c)
				if err != nil {
					t.Fatalf("check substrate: %v", err)
				}
				b.WriteString(Summary(c, SubstrateCheck, checkR))
				return b.String()
			}
			got := render()
			if again := render(); got != again {
				t.Fatalf("%s is not run-to-run deterministic:\n%s\nvs\n%s", s.Name, got, again)
			}
			golden(t, s.Name+".golden", got)
		})
	}
}

// golden compares got against testdata/golden/<name>, rewriting the
// file under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update after an intentional change)\n got:\n%s\nwant:\n%s", path, got, want)
	}
}
