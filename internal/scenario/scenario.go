// Package scenario is the declarative workload language for the scl
// locks: a text format (in the spirit of tsload/.rex experiment files)
// declares entity populations, arrival processes, critical-section and
// think-time distributions, the lock under test, and per-scenario
// assertions; a compiler lowers every scenario to a deterministic
// operation script (sim.Script / sim.RWScript); and a runner executes
// the compiled script on three substrates:
//
//   - sim: the discrete-event simulator (sim.RunScript/RunRWScript),
//   - check: the real scl library under the deterministic checker's
//     virtual clock (internal/check/oracle), and
//   - wall: real goroutines on the real clock.
//
// A scenario normally targets one lock; `keys <n>` widens it to a
// keyed lock table (mutex only), with each group pinned to one key via
// `key <i>`. The deterministic substrates decompose a multi-key
// scenario into independent per-key scripts — keys of a table are
// independent locks, so sim and check compare key by key — while the
// wall substrate drives a real scl.Manager (one tenant per entity), so
// the table path itself runs under the real scheduler.
//
// Because compilation samples every random draw up front with the
// scenario's seed, the sim and check substrates see byte-identical
// workloads and the differential oracle (internal/check/oracle)
// generalizes from curated scripts to every scenario in the corpus:
// grant order, timeout and ban counts, and hold shares must agree
// modulo the oracle's documented divergences plus any per-scenario
// `allow` lines. The wall substrate shares the same script but runs
// under the real scheduler, so only structural assertions (completion,
// grant floors) are enforced there; timing-sensitive assertions (Jain
// floors, share bounds, timeout counts) gate the deterministic
// substrates only.
package scenario

import (
	"fmt"
	"time"
)

// LockKind selects the lock a scenario runs against.
type LockKind int

const (
	// LockMutex is the u-SCL mutual-exclusion lock.
	LockMutex LockKind = iota
	// LockRW is the RW-SCL reader/writer lock.
	LockRW
)

// String returns the keyword used in scenario files.
func (k LockKind) String() string {
	if k == LockRW {
		return "rw"
	}
	return "mutex"
}

// ArrivalKind enumerates the arrival processes a group can declare.
type ArrivalKind int

const (
	// ArrivalClosed is a closed loop: each entity re-requests after a
	// think-time draw from the group's think distribution.
	ArrivalClosed ArrivalKind = iota
	// ArrivalPoisson paces each entity by exponential inter-arrival
	// gaps with the declared mean (an open Poisson process, run in the
	// paced-closed-loop approximation: a gap is waited out after the
	// previous operation completes, so arrivals drift late when the
	// lock saturates — the standard load-generator compromise, and
	// identical on every substrate because gaps are pre-sampled).
	ArrivalPoisson
	// ArrivalStepped is tsload's stepped load: `steps <dur> c1 c2 ...`
	// dispatches c_i requests evenly spaced inside the i-th step
	// window, round-robined across the group's entities. Step
	// boundaries land on exact virtual-clock ticks.
	ArrivalStepped
)

// String returns the keyword used in scenario files.
func (k ArrivalKind) String() string {
	switch k {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalStepped:
		return "stepped"
	}
	return "closed"
}

// DistKind enumerates duration distributions.
type DistKind int

const (
	// DistFixed always draws A.
	DistFixed DistKind = iota
	// DistUniform draws uniformly from [A, B].
	DistUniform
	// DistExp draws exponentially with mean A, capped at 8x the mean
	// so one draw cannot blow past a scenario's horizon.
	DistExp
)

// Dist is a duration distribution; draws are quantized to Quantum so
// distinct virtual-time events stay separated by more than the
// simulator's cost-model jitter (see the oracle's documented
// divergences).
type Dist struct {
	Kind DistKind
	// A is the fixed value (fixed), lower bound (uniform), or mean
	// (exp).
	A time.Duration
	// B is the upper bound (uniform only).
	B time.Duration
}

// String renders the distribution in scenario-file syntax.
func (d Dist) String() string {
	switch d.Kind {
	case DistUniform:
		return fmt.Sprintf("uniform %s %s", d.A, d.B)
	case DistExp:
		return fmt.Sprintf("exp %s", d.A)
	default:
		return fmt.Sprintf("fixed %s", d.A)
	}
}

// Arrival is a group's declared arrival process.
type Arrival struct {
	Kind ArrivalKind
	// Mean is the Poisson mean inter-arrival gap (poisson only).
	Mean time.Duration
	// Step is the stepped-load window length (stepped only).
	Step time.Duration
	// Counts are the per-step request counts (stepped only).
	Counts []int
}

// String renders the arrival process in scenario-file syntax.
func (a Arrival) String() string {
	switch a.Kind {
	case ArrivalPoisson:
		return fmt.Sprintf("poisson %s", a.Mean)
	case ArrivalStepped:
		s := fmt.Sprintf("stepped %s", a.Step)
		for _, c := range a.Counts {
			s += fmt.Sprintf(" %d", c)
		}
		return s
	default:
		return "closed"
	}
}

// Group declares a population of identically-distributed entities.
type Group struct {
	// Name prefixes the entity names (entity i is Name<i>).
	Name string
	// Count is the population size.
	Count int
	// Key is the lock-table key index the group's entities run against
	// (multi-key scenarios; 0 in single-key scenarios). Entities never
	// span keys: a group is pinned to one key for its whole script.
	Key int
	// Writer marks an RW scenario's writer class (readers otherwise);
	// invalid in mutex scenarios.
	Writer bool
	// Start delays the whole group.
	Start time.Duration
	// Stagger additionally delays entity i by i*Stagger, keeping
	// same-group entities off each other's virtual-clock ticks.
	Stagger time.Duration
	// Arrival is the request arrival process.
	Arrival Arrival
	// Ops is the number of acquisitions per entity (closed/poisson;
	// stepped derives it from the step counts).
	Ops int
	// CS is the critical-section length distribution.
	CS Dist
	// Think is the think-time distribution (closed arrivals only).
	Think Dist
	// Timeout, when positive, makes every acquire cancellable with
	// this give-up deadline (mutex scenarios only).
	Timeout time.Duration
	// CloseEvery, when positive, closes and re-registers the entity
	// after every CloseEvery-th acquisition (mutex scenarios only).
	CloseEvery int
	// Do routes every critical section through the combining API
	// (scl.Handle.Do / sim USCL.Do) instead of Lock/Unlock: a
	// contended section may execute on the current holder's stack,
	// with usage charged to this entity either way. Single-key mutex
	// scenarios only (the lock table has no combining API), and
	// incompatible with timeout (Do has no cancellable variant).
	// Grants are recorded when the call returns, so combine
	// scenarios normally carry `allow grant-order`.
	Do bool
}

// AssertKind enumerates scenario assertions.
type AssertKind int

const (
	// AssertJainHold: Jain's fairness index over per-entity hold time
	// must be >= Value. Deterministic substrates only.
	AssertJainHold AssertKind = iota
	// AssertMaxShare: no entity's hold share may exceed Value — the
	// opportunity-imbalance bound in share form. Deterministic
	// substrates only.
	AssertMaxShare
	// AssertGrants: total successful acquisitions must be >= N. All
	// substrates.
	AssertGrants
	// AssertTimeouts: total timed-out acquires must be <= N.
	// Deterministic substrates only.
	AssertTimeouts
	// AssertNoLostGrant: the run must complete every scripted
	// operation (no deadlock, no waiter stranded past the watchdog).
	// All substrates; the runner enforces completion regardless, so
	// this assertion is declarative documentation that a scenario is
	// specifically a lost-grant hunt.
	AssertNoLostGrant
)

// Assert is one declared scenario assertion.
type Assert struct {
	Kind  AssertKind
	Value float64 // jain-hold / max-share
	N     int     // grants / timeouts
}

// String renders the assertion in scenario-file syntax.
func (a Assert) String() string {
	switch a.Kind {
	case AssertJainHold:
		return fmt.Sprintf("jain-hold >= %g", a.Value)
	case AssertMaxShare:
		return fmt.Sprintf("max-share <= %g", a.Value)
	case AssertGrants:
		return fmt.Sprintf("grants >= %d", a.N)
	case AssertTimeouts:
		return fmt.Sprintf("timeouts <= %d", a.N)
	default:
		return "no-lost-grant"
	}
}

// Scenario is one parsed scenario file.
type Scenario struct {
	// Name identifies the scenario in summaries, goldens, and the CLI.
	Name string
	// Lock selects the lock under test.
	Lock LockKind
	// Slice is the u-SCL slice (mutex; 0 = the lock's 2ms default).
	Slice time.Duration
	// Keys, when > 1, makes this a multi-key scenario: the workload is
	// a keyed lock table (keys k0..k<Keys-1>) instead of one lock, and
	// each group pins its entities to one key. The deterministic
	// substrates run each key's script independently (keys of a table
	// are independent locks) and merge the per-entity results; the wall
	// substrate drives a real scl.Manager with one tenant per entity.
	// Multi-key is mutex-only. 0 or 1 means the classic single-lock
	// form.
	Keys int
	// Period is the RW-SCL phase period (rw; 0 = 2ms).
	Period time.Duration
	// ReadWeight/WriteWeight are the RW class weights (0 = 1).
	ReadWeight, WriteWeight int64
	// Seed drives every random draw at compile time.
	Seed int64
	// Horizon bounds the virtual run (0 = 1s).
	Horizon time.Duration
	// Groups are the entity populations, in declaration order.
	Groups []Group
	// Asserts are the declared assertions, in declaration order.
	Asserts []Assert
	// Allow lists oracle divergence codes documented as acceptable for
	// this scenario (each needs a rationale in EXPERIMENTS.md).
	Allow []string
}

// Entities returns the total entity count across groups.
func (s *Scenario) Entities() int {
	n := 0
	for _, g := range s.Groups {
		n += g.Count
	}
	return n
}

// KeyCount returns the number of lock-table keys the scenario spans
// (1 for the classic single-lock form).
func (s *Scenario) KeyCount() int {
	if s.Keys > 1 {
		return s.Keys
	}
	return 1
}

// Validate checks cross-field consistency beyond what the parser can
// see line by line.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario has no name")
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("scenario %s: no entity groups", s.Name)
	}
	if s.Keys < 0 {
		return fmt.Errorf("scenario %s: keys must be >= 0", s.Name)
	}
	if s.Keys > 1 && s.Lock != LockMutex {
		return fmt.Errorf("scenario %s: multi-key (keys %d) is mutex-only", s.Name, s.Keys)
	}
	seen := map[string]bool{}
	for i := range s.Groups {
		g := &s.Groups[i]
		if g.Name == "" {
			return fmt.Errorf("scenario %s: group %d has no name", s.Name, i)
		}
		if seen[g.Name] {
			return fmt.Errorf("scenario %s: duplicate group %q", s.Name, g.Name)
		}
		seen[g.Name] = true
		if g.Count <= 0 {
			return fmt.Errorf("scenario %s: group %s: count must be positive", s.Name, g.Name)
		}
		if s.Lock == LockMutex && g.Writer {
			return fmt.Errorf("scenario %s: group %s: class writer is rw-only", s.Name, g.Name)
		}
		if g.Key < 0 || g.Key >= s.KeyCount() {
			return fmt.Errorf("scenario %s: group %s: key %d out of range [0, %d)", s.Name, g.Name, g.Key, s.KeyCount())
		}
		if s.Lock == LockRW && (g.Timeout > 0 || g.CloseEvery > 0) {
			return fmt.Errorf("scenario %s: group %s: timeout/close-every are mutex-only", s.Name, g.Name)
		}
		if g.Do {
			if s.Lock != LockMutex {
				return fmt.Errorf("scenario %s: group %s: do is mutex-only", s.Name, g.Name)
			}
			if s.Keys > 1 {
				return fmt.Errorf("scenario %s: group %s: do is single-key-only (the lock table has no combining API)", s.Name, g.Name)
			}
			if g.Timeout > 0 {
				return fmt.Errorf("scenario %s: group %s: do is incompatible with timeout (Do has no cancellable variant)", s.Name, g.Name)
			}
		}
		switch g.Arrival.Kind {
		case ArrivalStepped:
			if g.Ops > 0 {
				return fmt.Errorf("scenario %s: group %s: ops is derived from stepped counts", s.Name, g.Name)
			}
			if g.Arrival.Step <= 0 {
				return fmt.Errorf("scenario %s: group %s: stepped needs a positive step length", s.Name, g.Name)
			}
			if len(g.Arrival.Counts) == 0 {
				return fmt.Errorf("scenario %s: group %s: stepped needs at least one step count", s.Name, g.Name)
			}
			total := 0
			for _, c := range g.Arrival.Counts {
				if c < 0 {
					return fmt.Errorf("scenario %s: group %s: negative step count", s.Name, g.Name)
				}
				total += c
			}
			if total == 0 {
				return fmt.Errorf("scenario %s: group %s: stepped schedule dispatches no requests", s.Name, g.Name)
			}
		default:
			if g.Ops <= 0 {
				return fmt.Errorf("scenario %s: group %s: ops must be positive", s.Name, g.Name)
			}
		}
		if g.Arrival.Kind == ArrivalPoisson && g.Arrival.Mean <= 0 {
			return fmt.Errorf("scenario %s: group %s: poisson needs a positive mean gap", s.Name, g.Name)
		}
		if err := validDist("cs", g.CS); err != nil {
			return fmt.Errorf("scenario %s: group %s: %w", s.Name, g.Name, err)
		}
		if g.Arrival.Kind == ArrivalClosed {
			if err := validDist("think", g.Think); err != nil {
				return fmt.Errorf("scenario %s: group %s: %w", s.Name, g.Name, err)
			}
		} else if g.Think != (Dist{}) {
			return fmt.Errorf("scenario %s: group %s: think is closed-arrival-only", s.Name, g.Name)
		}
	}
	if s.Keys > 1 {
		used := make([]bool, s.Keys)
		for i := range s.Groups {
			used[s.Groups[i].Key] = true
		}
		for k, u := range used {
			if !u {
				return fmt.Errorf("scenario %s: key %d has no groups (declared keys %d)", s.Name, k, s.Keys)
			}
		}
	}
	for _, code := range s.Allow {
		switch code {
		case "grant-order", "timeouts", "bans", "hold-share":
		default:
			return fmt.Errorf("scenario %s: unknown allow code %q", s.Name, code)
		}
	}
	return nil
}

// validDist rejects degenerate distribution parameters.
func validDist(what string, d Dist) error {
	switch d.Kind {
	case DistFixed, DistExp:
		if d.A <= 0 {
			return fmt.Errorf("%s %s: needs a positive duration", what, d)
		}
	case DistUniform:
		if d.A <= 0 || d.B < d.A {
			return fmt.Errorf("%s %s: needs 0 < lo <= hi", what, d)
		}
	}
	return nil
}
