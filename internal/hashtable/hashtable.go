// Package hashtable implements a chained hash table with two usage modes
// that mirror the paper's Table 1 rows:
//
//   - a memcached-style cache (Get/Put of single values), where both
//     operations touch one bucket and have short, similar hold times; and
//   - a futex-style kernel table (InsertDup/DeleteAll) that tolerates
//     duplicate keys and whose delete walks the whole chain removing every
//     duplicate — making deletes much more expensive than inserts, the
//     asymmetry the paper measures on its Linux-hashtable row.
//
// The table is not goroutine-safe; callers wrap it in the lock under study.
package hashtable

// entry is a chained key/value pair.
type entry struct {
	key  string
	val  []byte
	next *entry
}

// Table is a fixed-bucket-count chained hash table.
type Table struct {
	buckets []*entry
	size    int
}

// New creates a table with the given number of buckets (rounded up to a
// power of two, minimum 16).
func New(buckets int) *Table {
	n := 16
	for n < buckets {
		n <<= 1
	}
	return &Table{buckets: make([]*entry, n)}
}

// Len returns the number of entries (counting duplicates).
func (t *Table) Len() int { return t.size }

// fnv1a hashes the key.
func fnv1a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (t *Table) bucket(key string) int {
	return int(fnv1a(key) & uint64(len(t.buckets)-1))
}

// Put stores val under key, replacing the first existing entry (memcached
// semantics). It reports whether the key was new.
func (t *Table) Put(key string, val []byte) bool {
	b := t.bucket(key)
	for e := t.buckets[b]; e != nil; e = e.next {
		if e.key == key {
			e.val = val
			return false
		}
	}
	t.buckets[b] = &entry{key: key, val: val, next: t.buckets[b]}
	t.size++
	return true
}

// Get returns the first value stored under key.
func (t *Table) Get(key string) ([]byte, bool) {
	for e := t.buckets[t.bucket(key)]; e != nil; e = e.next {
		if e.key == key {
			return e.val, true
		}
	}
	return nil, false
}

// Delete removes the first entry under key, reporting whether it existed.
func (t *Table) Delete(key string) bool {
	b := t.bucket(key)
	p := &t.buckets[b]
	for e := *p; e != nil; e = e.next {
		if e.key == key {
			*p = e.next
			t.size--
			return true
		}
		p = &e.next
	}
	return false
}

// InsertDup prepends an entry without checking for duplicates (the futex
// infrastructure allows duplicate entries, paper Table 1).
func (t *Table) InsertDup(key string, val []byte) {
	b := t.bucket(key)
	t.buckets[b] = &entry{key: key, val: val, next: t.buckets[b]}
	t.size++
}

// DeleteAll removes every duplicate stored under key and returns how many
// were removed. It walks the entire chain, which makes it substantially
// more expensive than InsertDup on long chains.
func (t *Table) DeleteAll(key string) int {
	b := t.bucket(key)
	removed := 0
	p := &t.buckets[b]
	for e := *p; e != nil; e = e.next {
		if e.key == key {
			*p = e.next
			removed++
			continue
		}
		p = &e.next
	}
	t.size -= removed
	return removed
}

// CountDup returns the number of duplicates stored under key.
func (t *Table) CountDup(key string) int {
	n := 0
	for e := t.buckets[t.bucket(key)]; e != nil; e = e.next {
		if e.key == key {
			n++
		}
	}
	return n
}
