package hashtable

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	h := New(64)
	if !h.Put("a", []byte("1")) {
		t.Fatal("first Put not new")
	}
	if h.Put("a", []byte("2")) {
		t.Fatal("overwrite reported new")
	}
	if v, ok := h.Get("a"); !ok || string(v) != "2" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if _, ok := h.Get("missing"); ok {
		t.Fatal("Get(missing) succeeded")
	}
	if h.Len() != 1 {
		t.Fatalf("len %d", h.Len())
	}
}

func TestDelete(t *testing.T) {
	h := New(16)
	h.Put("x", []byte("1"))
	if !h.Delete("x") {
		t.Fatal("Delete failed")
	}
	if h.Delete("x") {
		t.Fatal("double Delete succeeded")
	}
	if h.Len() != 0 {
		t.Fatalf("len %d", h.Len())
	}
}

func TestBucketRounding(t *testing.T) {
	h := New(100)
	if len(h.buckets) != 128 {
		t.Fatalf("buckets = %d, want 128", len(h.buckets))
	}
	if h2 := New(0); len(h2.buckets) != 16 {
		t.Fatalf("min buckets = %d, want 16", len(h2.buckets))
	}
}

func TestManyKeysAcrossBuckets(t *testing.T) {
	h := New(64)
	const n = 20000
	for i := 0; i < n; i++ {
		h.Put(fmt.Sprintf("key-%d", i), []byte{byte(i)})
	}
	if h.Len() != n {
		t.Fatalf("len %d, want %d", h.Len(), n)
	}
	for i := 0; i < n; i += 371 {
		k := fmt.Sprintf("key-%d", i)
		if v, ok := h.Get(k); !ok || v[0] != byte(i) {
			t.Fatalf("Get(%s) = %v %v", k, v, ok)
		}
	}
}

func TestDuplicates(t *testing.T) {
	h := New(16)
	for i := 0; i < 10; i++ {
		h.InsertDup("futex-addr", []byte{byte(i)})
	}
	h.InsertDup("other", []byte("x"))
	if got := h.CountDup("futex-addr"); got != 10 {
		t.Fatalf("CountDup = %d, want 10", got)
	}
	if removed := h.DeleteAll("futex-addr"); removed != 10 {
		t.Fatalf("DeleteAll removed %d, want 10", removed)
	}
	if got := h.CountDup("futex-addr"); got != 0 {
		t.Fatalf("CountDup after DeleteAll = %d", got)
	}
	if _, ok := h.Get("other"); !ok {
		t.Fatal("unrelated key removed by DeleteAll")
	}
	if h.Len() != 1 {
		t.Fatalf("len %d, want 1", h.Len())
	}
}

func TestDeleteAllEmpty(t *testing.T) {
	h := New(16)
	if n := h.DeleteAll("nothing"); n != 0 {
		t.Fatalf("DeleteAll on empty = %d", n)
	}
}

func TestMatchesReferenceModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(32)
		ref := map[string]string{}
		for op := 0; op < 2000; op++ {
			k := fmt.Sprintf("%d", rng.Intn(200))
			switch rng.Intn(3) {
			case 0:
				v := fmt.Sprintf("v%d", op)
				added := h.Put(k, []byte(v))
				if _, existed := ref[k]; added == existed {
					return false
				}
				ref[k] = v
			case 1:
				v, ok := h.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && string(v) != rv) {
					return false
				}
			case 2:
				ok := h.Delete(k)
				if _, rok := ref[k]; ok != rok {
					return false
				}
				delete(ref, k)
			}
		}
		return h.Len() == len(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
