package experiments

import (
	"fmt"
	"time"

	"scl/internal/apps/kyoto"
	"scl/internal/metrics"
)

// Fig11Result reproduces paper Figure 11: KyotoCabinet with 7 readers and
// 1 writer. The vanilla reader-preference rwlock starves the writer (the
// paper measures fewer than ten writes in 30 seconds); RW-SCL with a 9:1
// ratio restores the writer's 10% lock opportunity at a small cost in read
// throughput.
type Fig11Result struct {
	Horizon time.Duration
	Rows    []Fig11Row
}

// Fig11Row is one lock's outcome.
type Fig11Row struct {
	Lock       string
	ReaderTput float64
	WriterTput float64
	ReaderHold time.Duration
	WriterHold time.Duration
	WriterFrac float64 // writer hold as a fraction of the run (opportunity: 10%)
}

// String renders the comparison.
func (r *Fig11Result) String() string {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 11: KyotoCabinet 7 readers + 1 writer, 8 CPUs, %v run", r.Horizon),
		"lock", "read ops/sec", "write ops/sec", "reader hold", "writer hold", "writer hold / run")
	for _, row := range r.Rows {
		t.AddRow(row.Lock,
			fmt.Sprintf("%.0f", row.ReaderTput),
			fmt.Sprintf("%.0f", row.WriterTput),
			row.ReaderHold.Round(time.Millisecond).String(),
			row.WriterHold.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", row.WriterFrac*100))
	}
	return t.String()
}

// Fig11 runs the reader/writer starvation comparison.
func Fig11(o Options) (*Fig11Result, error) {
	horizon := o.scaled(time.Second)
	res := &Fig11Result{Horizon: horizon}
	for _, lock := range []string{"rwmutex", "rwscl"} {
		r := kyoto.RunSim(kyoto.SimConfig{
			Lock: lock, Readers: 7, Writers: 1,
			CPUs: 8, Horizon: horizon, Entries: 100_000,
			ReadWeight: 9, WriteWeight: 1, Seed: o.Seed + 1,
		})
		label := "pthread rwlock"
		if lock == "rwscl" {
			label = "RW-SCL 9:1"
		}
		frac := float64(r.WriterHold) / float64(horizon)
		res.Rows = append(res.Rows, Fig11Row{
			Lock:       label,
			ReaderTput: r.ReaderTput,
			WriterTput: r.WriterTput,
			ReaderHold: r.ReaderHold,
			WriterHold: r.WriterHold,
			WriterFrac: frac,
		})
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "fig11",
		Paper: "Figure 11: KyotoCabinet — reader-preference rwlock starves the writer; RW-SCL 9:1 restores its share",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig11(o) },
	})
}
