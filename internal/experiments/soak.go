package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"scl"
	"scl/internal/metrics"
)

// SoakResult is the multi-tenant lock-table soak: noisy tenants hammer
// the table with long critical sections in a tight loop while light
// tenants make short, paced requests over the same keys — the paper's
// §2 subversion setup lifted from one lock to a keyed table
// (scl.Manager). Because every tenant holds one accounting identity
// per stripe shared across all its keys, the table-level books ban the
// noisy tenants no matter how they spread their load, and the light
// tenants' acquire latency stays bounded: the noisy class cannot buy
// tail latency from the light class by being greedy.
type SoakResult struct {
	Horizon time.Duration
	Keys    int
	Rows    []SoakRow
	// LightJain is Jain's fairness index over the light tenants' hold
	// times — the "noisy tenants must not subvert light tenants"
	// acceptance bar (>= 0.9: no light tenant is singled out).
	LightJain float64
	// AllJain is Jain over every tenant's hold time; it stays well
	// below 1 by design (the classes do unequal work) — unequal usage
	// with equal opportunity is the SCL contract, not a bug.
	AllJain float64
	// Grants and Materialized summarize the table after the run.
	Grants       int64
	Materialized int64
}

// SoakRow is one tenant's outcome.
type SoakRow struct {
	Tenant    string
	Class     string // "noisy" or "light"
	Grants    int64
	Hold      time.Duration
	HoldShare float64
	Bans      int64
	BanTime   time.Duration
	// WaitP50/WaitP99 are acquire-latency percentiles (request to
	// grant), sampled per tenant.
	WaitP50, WaitP99 time.Duration
}

// String renders the per-tenant table and the fairness footer.
func (r *SoakResult) String() string {
	t := metrics.NewTable(
		fmt.Sprintf("multi-tenant soak: %d keys over %v (noisy = long CS, tight loop; light = short CS, paced)",
			r.Keys, r.Horizon.Round(time.Millisecond)),
		"tenant", "class", "grants", "hold", "hold%", "bans", "ban time", "wait p50", "wait p99")
	for _, row := range r.Rows {
		t.AddRow(row.Tenant, row.Class, row.Grants,
			row.Hold.Round(time.Millisecond).String(), 100*row.HoldShare,
			row.Bans, row.BanTime.Round(time.Millisecond).String(),
			row.WaitP50.Round(10*time.Microsecond).String(),
			row.WaitP99.Round(10*time.Microsecond).String())
	}
	return t.String() + fmt.Sprintf(
		"light Jain(hold): %.3f  all Jain(hold): %.3f  grants: %d  keys materialized: %d\n\n",
		r.LightJain, r.AllJain, r.Grants, r.Materialized)
}

// Soak population: a few noisy tenants against a larger light class,
// all over one shared key space.
const (
	soakNoisy = 2
	soakLight = 6
	soakKeys  = 24
)

// Soak runs the multi-tenant table soak on a real scl.Manager.
func Soak(o Options) (*SoakResult, error) {
	horizon := o.scaled(1 * time.Second)
	if horizon < 40*time.Millisecond {
		horizon = 40 * time.Millisecond
	}
	m := scl.NewManager(scl.ManagerOptions{
		Name:    "soak",
		Lock:    scl.Options{Slice: 500 * time.Microsecond},
		Stripes: 4,
	})
	res := &SoakResult{Horizon: horizon, Keys: soakKeys}

	type tenantRun struct {
		tn    *scl.Tenant
		class string
		waits *metrics.Reservoir
	}
	var runs []*tenantRun
	for i := 0; i < soakNoisy; i++ {
		runs = append(runs, &tenantRun{
			tn:    m.Tenant(fmt.Sprintf("noisy-%d", i), 1),
			class: "noisy",
			waits: metrics.NewReservoir(4096, o.Seed+int64(i)),
		})
	}
	for i := 0; i < soakLight; i++ {
		runs = append(runs, &tenantRun{
			tn:    m.Tenant(fmt.Sprintf("light-%d", i), 1),
			class: "light",
			waits: metrics.NewReservoir(4096, o.Seed+100+int64(i)),
		})
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, tr := range runs {
		i, tr := i, tr
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Key choice is seeded per tenant so the key-access pattern
			// is reproducible even though wall timing is not.
			rng := rand.New(rand.NewSource(o.Seed*31 + int64(i)))
			cs, think := 400*time.Microsecond, time.Duration(0)
			if tr.class == "light" {
				cs, think = 20*time.Microsecond, 200*time.Microsecond
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("key-%02d", rng.Intn(soakKeys))
				t0 := time.Now()
				g := tr.tn.Lock(key)
				tr.waits.Add(time.Since(t0))
				spin(cs)
				g.Unlock()
				if think > 0 {
					time.Sleep(think)
				}
			}
		}()
	}
	time.Sleep(horizon)
	close(stop)
	wg.Wait()

	stats := m.Stats()
	var lightIDs []int64
	for _, tr := range runs {
		ts, ok := stats.Tenant(tr.tn.ID())
		if !ok {
			return nil, fmt.Errorf("tenant %s missing from manager stats", tr.tn.Name())
		}
		sum := tr.waits.Summary()
		res.Rows = append(res.Rows, SoakRow{
			Tenant:    tr.tn.Name(),
			Class:     tr.class,
			Grants:    ts.Grants,
			Hold:      ts.Hold,
			HoldShare: ts.HoldShare,
			Bans:      ts.Bans,
			BanTime:   ts.BanTime,
			WaitP50:   sum.P50,
			WaitP99:   sum.P99,
		})
		if tr.class == "light" {
			lightIDs = append(lightIDs, tr.tn.ID())
		}
		tr.tn.Close()
	}
	res.LightJain = stats.JainHold(lightIDs...)
	res.AllJain = stats.JainHold()
	res.Grants = stats.Grants
	res.Materialized = stats.Materialized
	return res, nil
}

func init() {
	register(Runner{
		Name:  "soak",
		Paper: "§2 subversion at table scale: noisy tenants spraying long critical sections over a keyed lock table draw table-level bans; light tenants' hold-share fairness and acquire p99 stay bounded (scl.Manager)",
		Run:   func(o Options) (fmt.Stringer, error) { return Soak(o) },
	})
}
