package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/sim"
)

// GroupsResult demonstrates the paper's §6 proposal: grouping threads into
// one schedulable entity (class) makes a lock slice work-conserving —
// while one member executes non-critical code, another member uses the
// class's slice. Workload: two tenants, two threads each, 10µs critical
// and 10µs non-critical sections, 2 CPUs. Compared as four separate
// entities versus two two-member classes.
type GroupsResult struct {
	Horizon time.Duration
	Rows    []GroupsRow
}

// GroupsRow is one classification's outcome.
type GroupsRow struct {
	Config    string
	Ops       int64
	Tput      float64
	LockIdle  time.Duration
	TenantA   time.Duration // tenant A's aggregate hold
	TenantB   time.Duration
	ShareJain float64 // fairness between the two tenants
}

// String renders the comparison.
func (r *GroupsResult) String() string {
	t := metrics.NewTable(
		fmt.Sprintf("Groups (§6 extension): per-thread vs per-tenant classes (2 tenants × 2 threads, CS=NCS=10µs, %v run)", r.Horizon),
		"classification", "ops", "ops/sec", "lock idle", "tenant A hold", "tenant B hold", "Jain(A,B)")
	for _, row := range r.Rows {
		t.AddRow(row.Config, row.Ops,
			fmt.Sprintf("%.0fK", row.Tput/1e3),
			row.LockIdle.Round(time.Millisecond).String(),
			row.TenantA.Round(time.Millisecond).String(),
			row.TenantB.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3f", row.ShareJain))
	}
	return t.String()
}

// Groups runs the classification comparison.
func Groups(o Options) (*GroupsResult, error) {
	horizon := o.scaled(time.Second)
	res := &GroupsResult{Horizon: horizon}
	for _, grouped := range []bool{false, true} {
		e := sim.New(sim.Config{CPUs: 2, Horizon: horizon, Seed: o.Seed + 1})
		lk := sim.NewUSCL(e, 2*time.Millisecond)
		var ops int64
		for i := 0; i < 4; i++ {
			class := int64(0) // per-thread entities
			if grouped {
				class = -1 - int64(i/2) // tenants: threads {0,1} and {2,3}
			}
			e.Spawn(fmt.Sprintf("t%d", i), sim.TaskConfig{CPU: i % 2, Class: class}, func(t *sim.Task) {
				for t.Now() < e.Horizon() {
					lk.Lock(t)
					t.Compute(10 * time.Microsecond)
					lk.Unlock(t)
					t.Compute(10 * time.Microsecond)
					ops++
				}
			})
		}
		e.Run()
		s := lk.Stats()
		a := s.Hold(0) + s.Hold(1)
		b := s.Hold(2) + s.Hold(3)
		label := "per-thread (4 entities)"
		if grouped {
			label = "per-tenant (2 classes)"
		}
		res.Rows = append(res.Rows, GroupsRow{
			Config:    label,
			Ops:       ops,
			Tput:      float64(ops) / horizon.Seconds(),
			LockIdle:  s.Idle(),
			TenantA:   a,
			TenantB:   b,
			ShareJain: metrics.Jain([]float64{float64(a), float64(b)}),
		})
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "groups",
		Paper: "Groups (§6 extension, not a paper figure): work-conserving classes raise throughput while preserving inter-tenant fairness",
		Run:   func(o Options) (fmt.Stringer, error) { return Groups(o) },
	})
}
