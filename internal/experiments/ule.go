package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/internal/workload"
	"scl/sim"
)

// ULEResult checks the paper's §5.4 claim — "our initial results with the
// ULE scheduler are similar" — by running Figure 9's interactive-vs-batch
// workload under both the CFS-like and the ULE-like scheduler: one batch
// thread (CS 100µs) against three interactive threads (CS 10µs, 100µs
// sleep) on two CPUs. Whatever the scheduler does, the mutex subverts the
// interactive threads' latency, and a small-slice u-SCL restores it.
type ULEResult struct {
	Horizon time.Duration
	Rows    []ULERow
}

// ULERow is one (scheduler, lock) outcome.
type ULERow struct {
	Sched          string
	Lock           string
	Summary        metrics.Summary
	InteractiveOps int64
}

// String renders the comparison.
func (r *ULEResult) String() string {
	t := metrics.NewTable(
		"ULE (§5.4 check): interactive wait times under CFS-like vs ULE-like scheduling",
		"scheduler", "lock", "p50", "p99", "max", "interactive ops")
	for _, row := range r.Rows {
		t.AddRow(row.Sched, row.Lock,
			row.Summary.P50.String(),
			row.Summary.P99.String(),
			row.Summary.Max.String(),
			row.InteractiveOps)
	}
	return t.String()
}

// ULE runs the cross-scheduler comparison.
func ULE(o Options) (*ULEResult, error) {
	horizon := o.scaled(2 * time.Second)
	res := &ULEResult{Horizon: horizon}
	for _, sched := range []string{"cfs", "ule"} {
		for _, lock := range []struct {
			label string
			kind  string
			slice time.Duration
		}{
			{"mutex", "mutex", 0},
			{"u-SCL 10µs", "uscl", 10 * time.Microsecond},
		} {
			e := sim.New(sim.Config{
				CPUs: 2, Horizon: horizon, Seed: o.Seed + 1,
				Sched: sim.SchedParams{Policy: sched},
			})
			lk := workload.MakeLock(e, lock.kind, lock.slice)
			counters := workload.SpawnLoops(e, lk, []workload.Loop{
				{CS: 100 * time.Microsecond, CPU: 0, Name: "batch"},
				{CS: 10 * time.Microsecond, Sleep: 100 * time.Microsecond, CPU: 1, Name: "int-0"},
				{CS: 10 * time.Microsecond, Sleep: 100 * time.Microsecond, CPU: 0, Name: "int-1"},
				{CS: 10 * time.Microsecond, Sleep: 100 * time.Microsecond, CPU: 1, Name: "int-2"},
			})
			e.Run()
			var waits []time.Duration
			for i := 1; i <= 3; i++ {
				waits = append(waits, lk.Stats().WaitSamples(i)...)
			}
			res.Rows = append(res.Rows, ULERow{
				Sched:          sched,
				Lock:           lock.label,
				Summary:        metrics.Summarize(waits),
				InteractiveOps: counters.Ops[1] + counters.Ops[2] + counters.Ops[3],
			})
		}
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "ule",
		Paper: "ULE (§5.4 check, not a paper figure): the scheduler subversion and the u-SCL fix are scheduler-independent",
		Run:   func(o Options) (fmt.Stringer, error) { return ULE(o) },
	})
}
