package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/internal/workload"
	"scl/sim"
)

// Fig8aResult reproduces paper Figure 8a: u-SCL throughput as a function
// of lock slice size and critical section size (4 identical threads on 2
// CPUs). Larger slices amortize ownership transfers and raise throughput;
// slices at or below the critical-section length force a transfer per
// release and collapse it.
type Fig8aResult struct {
	Horizon time.Duration
	Slices  []time.Duration
	CSs     []time.Duration
	// Tput[i][j] is ops/sec with CS CSs[i] and slice Slices[j].
	Tput [][]float64
}

// String renders the heatmap as a table (rows: CS, columns: slice).
func (r *Fig8aResult) String() string {
	header := []string{"CS \\ slice"}
	for _, s := range r.Slices {
		header = append(header, s.String())
	}
	t := metrics.NewTable("Figure 8a: u-SCL throughput (ops/sec) vs slice size × critical section size", header...)
	for i, cs := range r.CSs {
		row := make([]any, 0, len(r.Slices)+1)
		row = append(row, cs.String())
		for j := range r.Slices {
			row = append(row, fmt.Sprintf("%.0fK", r.Tput[i][j]/1e3))
		}
		t.AddRow(row...)
	}
	return t.String()
}

var (
	fig8Slices = []time.Duration{time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond, 2 * time.Millisecond, 10 * time.Millisecond}
	fig8CSs    = []time.Duration{time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond}
)

// Fig8a runs the slice-size × CS-size throughput sweep.
func Fig8a(o Options) (*Fig8aResult, error) {
	horizon := o.scaled(time.Second)
	res := &Fig8aResult{Horizon: horizon, Slices: fig8Slices, CSs: fig8CSs}
	for _, cs := range fig8CSs {
		row := make([]float64, 0, len(fig8Slices))
		for _, slice := range fig8Slices {
			e := sim.New(sim.Config{CPUs: 2, Horizon: horizon, Seed: o.Seed + 1})
			lk := sim.NewUSCL(e, slice)
			specs := make([]workload.Loop, 4)
			for i := range specs {
				specs[i] = workload.Loop{CS: cs, CPU: i % 2}
			}
			counters := workload.SpawnLoops(e, lk, specs)
			e.Run()
			row = append(row, float64(counters.Total())/horizon.Seconds())
		}
		res.Tput = append(res.Tput, row)
	}
	return res, nil
}

// Fig8bResult reproduces paper Figure 8b: the distribution of u-SCL
// acquisition wait times as a function of slice size, for 10µs critical
// sections. Slices larger than the CS are bimodal (fast in-slice acquires
// plus slice-length waits); slices at or below the CS make every thread
// wait about one round of critical sections.
type Fig8bResult struct {
	Horizon time.Duration
	Rows    []Fig8bRow
}

// Fig8bRow is one slice size's wait-time distribution.
type Fig8bRow struct {
	Slice   time.Duration
	Summary metrics.Summary
	// Fast is the fraction of acquisitions waiting under 1µs.
	Fast float64
}

// String renders the distribution table.
func (r *Fig8bResult) String() string {
	t := metrics.NewTable(
		"Figure 8b: u-SCL wait-time distribution vs slice size (CS 10µs, 4 threads / 2 CPUs)",
		"slice", "<1µs", "p50", "p90", "p99", "max")
	for _, row := range r.Rows {
		t.AddRow(row.Slice.String(),
			fmt.Sprintf("%.0f%%", row.Fast*100),
			row.Summary.P50.String(),
			row.Summary.P90.String(),
			row.Summary.P99.String(),
			row.Summary.Max.String())
	}
	return t.String()
}

// Fig8b runs the wait-time distribution sweep.
func Fig8b(o Options) (*Fig8bResult, error) {
	horizon := o.scaled(time.Second)
	res := &Fig8bResult{Horizon: horizon}
	for _, slice := range []time.Duration{10 * time.Microsecond, 100 * time.Microsecond, 2 * time.Millisecond} {
		e := sim.New(sim.Config{CPUs: 2, Horizon: horizon, Seed: o.Seed + 1})
		lk := sim.NewUSCL(e, slice)
		specs := make([]workload.Loop, 4)
		for i := range specs {
			specs[i] = workload.Loop{CS: 10 * time.Microsecond, CPU: i % 2}
		}
		workload.SpawnLoops(e, lk, specs)
		e.Run()
		var all []time.Duration
		for i := 0; i < 4; i++ {
			all = append(all, lk.Stats().WaitSamples(i)...)
		}
		res.Rows = append(res.Rows, Fig8bRow{
			Slice:   slice,
			Summary: metrics.Summarize(all),
			Fast:    metrics.FractionBelow(all, time.Microsecond),
		})
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "fig8a",
		Paper: "Figure 8a: throughput heatmap over slice size × critical-section size",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig8a(o) },
	})
	register(Runner{
		Name:  "fig8b",
		Paper: "Figure 8b: wait-time distribution vs slice size (CS 10µs)",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig8b(o) },
	})
}
