package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/internal/workload"
	"scl/sim"
)

// Fig6Result reproduces paper Figure 6: four threads on two CPUs with CFS
// nice-derived weight ratios between the short-CS (1µs) and long-CS (3µs)
// thread groups. Only u-SCL tracks the configured ratio; for the
// traditional locks the critical-section lengths dictate the split.
type Fig6Result struct {
	Horizon time.Duration
	Rows    []Fig6Row
}

// Fig6Row is one (ratio, lock) outcome.
type Fig6Row struct {
	Ratio     string // desired shortGroup:longGroup allocation, e.g. "3:1"
	Lock      string
	HoldShort time.Duration
	HoldLong  time.Duration
	Achieved  float64 // measured hold ratio short/long
	Jain      float64 // weighted fairness versus the desired ratio
}

// String renders the figure's data.
func (r *Fig6Result) String() string {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 6: 4 threads on 2 CPUs, weight ratios vs hold-time split (%v run)", r.Horizon),
		"ratio", "lock", "hold short-CS", "hold long-CS", "achieved", "weighted Jain")
	for _, row := range r.Rows {
		t.AddRow(row.Ratio, row.Lock,
			row.HoldShort.Round(time.Millisecond).String(),
			row.HoldLong.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", row.Achieved),
			fmt.Sprintf("%.3f", row.Jain))
	}
	return t.String()
}

// fig6Ratios are the paper's x-axis groups: desired short:long CPU ratios
// and the nice values that produce them under CFS (each nice step ≈ 1.25x;
// three steps ≈ 2x, six ≈ 3.8x — we use the pairs the paper's ratios imply).
var fig6Ratios = []struct {
	label               string
	niceShort, niceLong int
	want                float64
}{
	{"3:1", -5, 0, 0},
	{"2:1", -3, 0, 0},
	{"1:1", 0, 0, 0},
	{"1:2", 0, -3, 0},
	{"1:3", 0, -5, 0},
}

// Fig6 runs the proportional-allocation comparison.
func Fig6(o Options) (*Fig6Result, error) {
	horizon := o.scaled(2 * time.Second)
	res := &Fig6Result{Horizon: horizon}
	for _, ratio := range fig6Ratios {
		for _, kind := range workload.LockKinds {
			e := sim.New(sim.Config{CPUs: 2, Horizon: horizon, Seed: o.Seed + 1})
			lk := workload.MakeLock(e, kind, 0)
			specs := []workload.Loop{
				{CS: time.Microsecond, Nice: ratio.niceShort, CPU: 0},
				{CS: time.Microsecond, Nice: ratio.niceShort, CPU: 1},
				{CS: 3 * time.Microsecond, Nice: ratio.niceLong, CPU: 0},
				{CS: 3 * time.Microsecond, Nice: ratio.niceLong, CPU: 1},
			}
			workload.SpawnLoops(e, lk, specs)
			e.Run()
			s := lk.Stats()
			short := s.Hold(0) + s.Hold(1)
			long := s.Hold(2) + s.Hold(3)
			achieved := 0.0
			if long > 0 {
				achieved = float64(short) / float64(long)
			}
			weights := []float64{
				float64(sim.TaskWeight(ratio.niceShort)), float64(sim.TaskWeight(ratio.niceShort)),
				float64(sim.TaskWeight(ratio.niceLong)), float64(sim.TaskWeight(ratio.niceLong)),
			}
			holds := []float64{float64(s.Hold(0)), float64(s.Hold(1)), float64(s.Hold(2)), float64(s.Hold(3))}
			res.Rows = append(res.Rows, Fig6Row{
				Ratio:     ratio.label,
				Lock:      workload.LockLabel(kind),
				HoldShort: short,
				HoldLong:  long,
				Achieved:  achieved,
				Jain:      metrics.WeightedJain(holds, weights),
			})
		}
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "fig6",
		Paper: "Figure 6: changing thread proportionality (nice ratios 3:1..1:3) — only u-SCL follows the scheduler's weights",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig6(o) },
	})
}
