package experiments

import (
	"strings"
	"testing"
	"time"
)

// tiny runs experiments fast enough for the unit-test suite.
var tiny = Options{Seed: 42, Scale: 0.01}

// TestEveryExperimentRuns smoke-tests every registered runner at a small
// scale: it must succeed and render a non-trivial table.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not -short")
	}
	for _, r := range All() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			res, err := r.Run(tiny)
			if err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			out := res.String()
			if len(out) < 40 || !strings.Contains(out, "\n") {
				t.Fatalf("%s rendered suspiciously small output:\n%s", r.Name, out)
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation", "churn", "groups", "multilock", "pi", "soak", "ule", "table1", "table2",
		"fig5a", "fig5c", "fig6", "fig7a", "fig7b", "fig8a", "fig8b",
		"fig9", "fig10", "fig11", "fig12a", "fig12b", "fig13", "fig14",
	}
	for _, name := range want {
		if _, ok := Get(name); !ok {
			t.Errorf("experiment %s not registered", name)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(Names()), len(want), Names())
	}
}

func TestScaledOptions(t *testing.T) {
	o := Options{Scale: 0.5}
	if got := o.scaled(2 * time.Second); got != time.Second {
		t.Fatalf("scaled = %v", got)
	}
	o = Options{}
	if got := o.scaled(2 * time.Second); got != 2*time.Second {
		t.Fatalf("unscaled = %v", got)
	}
}

// TestTable2MatchesPaperShape is the core acceptance test: the toy example
// must reproduce the paper's Table 2 shape at full scale.
func TestTable2MatchesPaperShape(t *testing.T) {
	res, err := Table2(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byLock := map[string]Table2Row{}
	for _, row := range res.Rows {
		byLock[row.Lock] = row
	}
	for _, lock := range []string{"Mtx", "Spn", "Tkt"} {
		if byLock[lock].Jain > 0.75 {
			t.Errorf("%s Jain = %.3f, want < 0.75 (unfair)", lock, byLock[lock].Jain)
		}
		if byLock[lock].LOT0 < 15*time.Second {
			t.Errorf("%s LOT T0 = %v, want domination", lock, byLock[lock].LOT0)
		}
	}
	scl := byLock["SCL"]
	if scl.Jain < 0.98 {
		t.Errorf("SCL Jain = %.3f, want ~1", scl.Jain)
	}
	if scl.LOT0 < 9*time.Second || scl.LOT1 < 9*time.Second {
		t.Errorf("SCL LOTs = %v, %v, want ~10s each", scl.LOT0, scl.LOT1)
	}
}

// TestSoakFairness is the lock-table acceptance test: under the
// multi-tenant soak, the noisy tenants must not subvert the light
// class — light hold-share fairness stays near 1 and light acquire
// p99 stays bounded (noisy greed converts to noisy bans, not light
// tail latency).
func TestSoakFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("soak sleeps real time")
	}
	res, err := Soak(Options{Seed: 7, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.LightJain < 0.9 {
		t.Errorf("light-tenant Jain(hold) = %.3f, want >= 0.9:\n%s", res.LightJain, res)
	}
	noisyBans := int64(0)
	for _, row := range res.Rows {
		switch row.Class {
		case "noisy":
			noisyBans += row.Bans
		case "light":
			// Generous wall-clock bound: a light request's tail wait
			// must stay in lock-arbitration territory (slices + a
			// noisy ban), nowhere near the noisy class's service time.
			if row.WaitP99 > 50*time.Millisecond {
				t.Errorf("%s wait p99 = %v, want bounded:\n%s", row.Tenant, row.WaitP99, res)
			}
		}
	}
	if noisyBans == 0 {
		t.Errorf("noisy tenants drew no table-level bans:\n%s", res)
	}
}

// TestDeterministicExperiments: equal seeds must render identical tables.
func TestDeterministicExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	for _, name := range []string{"fig5a", "fig6", "fig9"} {
		r, _ := Get(name)
		a, err := r.Run(Options{Seed: 9, Scale: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Run(Options{Seed: 9, Scale: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s not deterministic:\n%s\nvs\n%s", name, a, b)
		}
	}
}
