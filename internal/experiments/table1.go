package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"scl/internal/apps/kyoto"
	"scl/internal/apps/upscale"
	"scl/internal/hashtable"
	"scl/internal/journal"
	"scl/internal/lsm"
	"scl/internal/metrics"
	"scl/internal/vfs"
)

// Table1Result reproduces the paper's Table 1: the distribution of lock
// hold times (critical-section lengths) across operations of six
// application substrates. Unlike the simulator experiments, these are
// real wall-clock measurements of the real data structures; the paper's
// point — the same lock is held for wildly different durations depending
// on operation type and state size — must hold in the measured shapes.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one (application, operation) hold-time distribution.
type Table1Row struct {
	App     string
	Op      string
	Summary metrics.Summary
}

// String renders the paper's Table 1 (times in microseconds).
func (r *Table1Result) String() string {
	t := metrics.NewTable(
		"Table 1: lock hold time distributions (µs; real measurements on this repository's substrates)",
		"application", "operation", "min", "25%", "50%", "90%", "99%")
	for _, row := range r.Rows {
		t.AddRow(row.App, row.Op,
			metrics.Micros(row.Summary.Min),
			metrics.Micros(row.Summary.P25),
			metrics.Micros(row.Summary.P50),
			metrics.Micros(row.Summary.P90),
			metrics.Micros(row.Summary.P99))
	}
	return t.String()
}

// measure runs op n times and returns the per-call duration distribution.
func measure(n int, op func()) metrics.Summary {
	ds := make([]time.Duration, n)
	for i := range ds {
		start := time.Now()
		op()
		ds[i] = time.Since(start)
	}
	return metrics.Summarize(ds)
}

// Table1 measures every substrate. Counts scale with Options.Scale.
func Table1(o Options) (*Table1Result, error) {
	scale := o.Scale
	if scale <= 0 {
		scale = 1
	}
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 8 {
			v = 8
		}
		return v
	}
	res := &Table1Result{}
	add := func(app, op string, s metrics.Summary) {
		res.Rows = append(res.Rows, Table1Row{App: app, Op: op, Summary: s})
	}
	rng := rand.New(rand.NewSource(o.Seed + 1))

	// memcached-style hash table (1M entries; the paper uses 10M).
	{
		const entries = 1_000_000
		h := hashtable.New(entries)
		val := bytes.Repeat([]byte{1}, 64)
		for i := 0; i < entries; i++ {
			h.Put(fmt.Sprintf("key-%d", i), val)
		}
		add("memcached (hashtable)", "Get", measure(n(200_000), func() {
			h.Get(fmt.Sprintf("key-%d", rng.Intn(entries)))
		}))
		add("memcached (hashtable)", "Put", measure(n(200_000), func() {
			h.Put(fmt.Sprintf("key-%d", rng.Intn(entries)), val)
		}))
	}

	// leveldb-style LSM tree (empty database, as in the paper).
	{
		db := lsm.New(1 << 20)
		val := bytes.Repeat([]byte{2}, 100)
		i := 0
		add("leveldb (LSM tree)", "Get", measure(n(100_000), func() {
			db.Get(fmt.Sprintf("key-%08d", rng.Intn(1_000_000)))
		}))
		add("leveldb (LSM tree)", "Write", measure(n(200_000), func() {
			db.Put(fmt.Sprintf("key-%08d", i), val)
			i++
		}))
	}

	// UpScaleDB-style B+-tree store (empty database, as in the paper).
	{
		s := upscale.NewStore(0)
		add("UpScaleDB (B+ tree)", "Find", measure(n(100_000), func() { s.Find(rng) }))
		add("UpScaleDB (B+ tree)", "Insert", measure(n(100_000), func() { s.Insert(rng) }))
	}

	// MongoDB-style journal: write sizes 1K, 10K, 100K.
	for _, size := range []int{1 << 10, 10 << 10, 100 << 10} {
		j := journal.New(0)
		rec := bytes.Repeat([]byte{3}, size)
		add("MongoDB (journal)", fmt.Sprintf("Write-%dK", size>>10),
			measure(n(10_000), func() {
				j.Append(rec)
				j.Commit()
			}))
	}

	// Linux rename: empty directory vs 1M-entry directory.
	{
		fs := vfs.New()
		for _, d := range []string{"a", "b", "big"} {
			fs.Mkdir(d)
		}
		fs.Populate("big", "f-", 1_000_000)
		i := 0
		add("Linux kernel (rename)", "Rename-empty", measure(n(50_000), func() {
			name := fmt.Sprintf("r%d", i)
			i++
			fs.Create("a", name)
			fs.Rename("a", name, "b", name)
			fs.Unlink("b", name)
		}))
		i = 0
		add("Linux kernel (rename)", "Rename-1M", measure(n(60), func() {
			name := fmt.Sprintf("s%d", i)
			i++
			fs.Create("a", name)
			fs.Rename("a", name, "big", name)
			fs.Unlink("big", name)
		}))
	}

	// Futex-style kernel hash table: duplicate inserts, delete-all.
	{
		h := hashtable.New(1 << 12)
		val := []byte{4}
		// Pre-populate chains with duplicates across a small key space.
		for i := 0; i < 60_000; i++ {
			h.InsertDup(fmt.Sprintf("addr-%d", rng.Intn(512)), val)
		}
		add("Linux kernel (hashtable)", "Insert", measure(n(100_000), func() {
			h.InsertDup(fmt.Sprintf("addr-%d", rng.Intn(512)), val)
		}))
		add("Linux kernel (hashtable)", "Delete", measure(n(512), func() {
			h.DeleteAll(fmt.Sprintf("addr-%d", rng.Intn(512)))
		}))
	}

	// KyotoCabinet-style DB (used by Figures 11/12; not a paper Table 1
	// row, but recorded for calibration).
	{
		db := kyoto.NewDB(100_000)
		add("KyotoCabinet (hash DB)", "Read", measure(n(50_000), func() { db.Read(rng) }))
		add("KyotoCabinet (hash DB)", "Write", measure(n(50_000), func() { db.Write(rng) }))
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "table1",
		Paper: "Table 1: lock hold time distributions across six application substrates (real measurements)",
		Run:   func(o Options) (fmt.Stringer, error) { return Table1(o) },
	})
}
