package experiments

import (
	"fmt"
	"time"

	"scl/internal/apps/kyoto"
	"scl/internal/metrics"
)

// Fig12Result reproduces paper Figure 12: RW-SCL scaling at a fixed 9:1
// reader:writer ratio.
//
//   - fig12a (reader scaling): 1 writer, 1..15 readers — the 9:1 split
//     holds regardless of the reader population.
//   - fig12b (writer scaling): 1 reader, 1..4 writers — a single writer
//     cannot fill its write slice (the lock idles during its non-critical
//     sections); a second writer fills it; more writers add nothing.
type Fig12Result struct {
	Variant string
	Horizon time.Duration
	Rows    []Fig12Row
}

// Fig12Row is one population's outcome.
type Fig12Row struct {
	Readers, Writers       int
	ReaderTput, WriterTput float64
	WriterFrac             float64 // writer hold as a fraction of the run (opportunity: 10%)
	WriterHold             time.Duration
}

// String renders the scaling series.
func (r *Fig12Result) String() string {
	title := "Figure 12a: RW-SCL reader scaling (1 writer, 9:1 ratio)"
	if r.Variant == "b" {
		title = "Figure 12b: RW-SCL writer scaling (1 reader, 9:1 ratio)"
	}
	t := metrics.NewTable(title,
		"readers", "writers", "read ops/sec", "write ops/sec", "writer hold", "writer hold / run")
	for _, row := range r.Rows {
		t.AddRow(row.Readers, row.Writers,
			fmt.Sprintf("%.0f", row.ReaderTput),
			fmt.Sprintf("%.0f", row.WriterTput),
			row.WriterHold.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", row.WriterFrac*100))
	}
	return t.String()
}

// Fig12 runs the scaling experiment.
func Fig12(o Options, variant string) (*Fig12Result, error) {
	horizon := o.scaled(500 * time.Millisecond)
	res := &Fig12Result{Variant: variant, Horizon: horizon}
	var populations [][2]int // readers, writers
	if variant == "a" {
		for _, r := range []int{1, 3, 7, 11, 15} {
			populations = append(populations, [2]int{r, 1})
		}
	} else {
		for _, w := range []int{1, 2, 3, 4} {
			populations = append(populations, [2]int{1, w})
		}
	}
	for _, pop := range populations {
		readers, writers := pop[0], pop[1]
		cpus := readers + writers
		if cpus > 16 {
			cpus = 16
		}
		var writerNCS time.Duration
		if variant == "b" {
			// Writers with real non-critical work: one writer cannot fill
			// its write slice; a second one can (the paper's point).
			writerNCS = 5 * time.Microsecond
		}
		r := kyoto.RunSim(kyoto.SimConfig{
			Lock: "rwscl", Readers: readers, Writers: writers,
			CPUs: cpus, Horizon: horizon, Entries: 100_000,
			ReadWeight: 9, WriteWeight: 1, Seed: o.Seed + 1,
			WriterNCS: writerNCS,
		})
		frac := float64(r.WriterHold) / float64(horizon)
		res.Rows = append(res.Rows, Fig12Row{
			Readers: readers, Writers: writers,
			ReaderTput: r.ReaderTput, WriterTput: r.WriterTput,
			WriterFrac: frac, WriterHold: r.WriterHold,
		})
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "fig12a",
		Paper: "Figure 12a: RW-SCL reader scaling — the 9:1 ratio holds for any reader count",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig12(o, "a") },
	})
	register(Runner{
		Name:  "fig12b",
		Paper: "Figure 12b: RW-SCL writer scaling — two writers fill the write slice, more add nothing",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig12(o, "b") },
	})
}
