package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/internal/workload"
	"scl/sim"
)

// Fig7Result reproduces paper Figure 7, the lock overhead study:
//
//   - fig7a: threads == CPUs swept 2..32 with zero-length critical and
//     non-critical sections — pure lock-path overhead and its scaling.
//   - fig7b: 2 CPUs with the thread count swept 2..32 and 1µs critical
//     sections — oversubscription behaviour (spinners waste their CPU
//     timeslices; sleeping locks stay flat).
type Fig7Result struct {
	Variant string // "a" or "b"
	Horizon time.Duration
	Rows    []Fig7Row
}

// Fig7Row is one (threads, lock) outcome.
type Fig7Row struct {
	Threads int
	Lock    string
	Ops     int64
	Tput    float64 // ops/sec
}

// String renders the figure's series.
func (r *Fig7Result) String() string {
	title := "Figure 7a: threads = CPUs (2..32), CS = NCS = 0 — throughput"
	if r.Variant == "b" {
		title = "Figure 7b: 2 CPUs, threads 2..32, CS = 1µs — throughput"
	}
	t := metrics.NewTable(title, "threads", "lock", "ops", "ops/sec")
	for _, row := range r.Rows {
		t.AddRow(row.Threads, row.Lock, row.Ops, fmt.Sprintf("%.3fM", row.Tput/1e6))
	}
	return t.String()
}

var fig7Threads = []int{2, 4, 8, 16, 32}

// Fig7 runs the overhead study.
func Fig7(o Options, variant string) (*Fig7Result, error) {
	// Empty critical sections at up to 32 CPUs generate enormous event
	// counts; a short horizon is plenty since rates are time-invariant.
	horizon := o.scaled(200 * time.Millisecond)
	res := &Fig7Result{Variant: variant, Horizon: horizon}
	for _, n := range fig7Threads {
		for _, kind := range workload.LockKinds {
			cpus := n
			cs := time.Duration(0)
			if variant == "b" {
				cpus = 2
				cs = time.Microsecond
			}
			e := sim.New(sim.Config{CPUs: cpus, Horizon: horizon, Seed: o.Seed + 1})
			lk := workload.MakeLock(e, kind, 0)
			specs := make([]workload.Loop, n)
			for i := range specs {
				specs[i] = workload.Loop{CS: cs, CPU: i % cpus}
			}
			counters := workload.SpawnLoops(e, lk, specs)
			e.Run()
			res.Rows = append(res.Rows, Fig7Row{
				Threads: n,
				Lock:    workload.LockLabel(kind),
				Ops:     counters.Total(),
				Tput:    float64(counters.Total()) / horizon.Seconds(),
			})
		}
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "fig7a",
		Paper: "Figure 7a: lock overhead scaling with threads = CPUs 2..32, empty critical sections",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig7(o, "a") },
	})
	register(Runner{
		Name:  "fig7b",
		Paper: "Figure 7b: oversubscription — 2 CPUs, 2..32 threads, 1µs critical sections",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig7(o, "b") },
	})
}
