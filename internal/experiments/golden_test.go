package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// update regenerates the golden files in testdata/. Run with
//
//	go test ./internal/experiments -run Golden -update
//
// after an intentional output change, and commit the new files.
var update = flag.Bool("update", false, "rewrite the golden files")

// golden compares got against testdata/<name>, rewriting the file under
// -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update after an intentional change)\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestGoldenTable2Seed1 pins the byte-exact output of the table2
// experiment at seed 1: the simulator-backed experiments must be fully
// deterministic for a given seed, so any byte of drift is either an
// intentional output change (re-golden with -update) or a determinism
// regression.
func TestGoldenTable2Seed1(t *testing.T) {
	r, ok := Get("table2")
	if !ok {
		t.Fatal("table2 not registered")
	}
	run := func() string {
		res, err := r.Run(Options{Seed: 1})
		if err != nil {
			t.Fatalf("table2: %v", err)
		}
		return res.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("table2 -seed 1 is not deterministic:\n%s\nvs\n%s", a, b)
	}
	golden(t, "table2_seed1.golden", a)
}

// tableRow matches a table1 data row: a label column, an operation
// column, then numeric quantiles.
var tableRow = regexp.MustCompile(`^(.*?\S)\s{2,}(\S+)\s{2,}[0-9]`)

// TestGoldenTable1Skeleton pins the structure of `sclbench -exp table1
// -seed 1`: the substrate/operation rows, in order. The quantile values
// themselves are real wall-clock measurements (table1 times this
// repository's substrates, not the simulator), so they cannot be
// byte-golden; the skeleton catches lost substrates, renamed rows, and
// reordered output, which is what the table's consumers key on.
func TestGoldenTable1Skeleton(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 runs real substrate measurements")
	}
	r, ok := Get("table1")
	if !ok {
		t.Fatal("table1 not registered")
	}
	res, err := r.Run(Options{Seed: 1, Scale: 0.05})
	if err != nil {
		t.Fatalf("table1: %v", err)
	}
	var sk strings.Builder
	for _, line := range strings.Split(res.String(), "\n") {
		if m := tableRow.FindStringSubmatch(line); m != nil {
			sk.WriteString(m[1] + " | " + m[2] + "\n")
		}
	}
	if sk.Len() == 0 {
		t.Fatalf("no data rows recognized in table1 output:\n%s", res.String())
	}
	golden(t, "table1_skeleton.golden", sk.String())
}
