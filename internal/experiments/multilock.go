package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/sim"
)

// MultilockResult explores the paper's §4.3 open question: "we anticipate
// that multiple locks can interfere with the fairness goals of each
// individual lock". Workload on 3 CPUs: thread X uses only lock L1,
// thread Y uses only lock L2, and thread Z either nests them (L1 held
// across the L2 acquisition) or uses them disjointly.
//
// Finding: while Z waits for (or holds) L2 inside L1, the outer lock's
// accounting books that dwell as L1 usage. Because u-SCL admission is
// usage-capped, L1's hold split stays fair on paper (Jain 1.0) — but Z's
// booked L1 usage is mostly inner-lock dwell rather than useful critical
// section, and during those dwells L1 is held-but-idle from X's
// perspective. The paper's anticipated interference shows up as
// booked-versus-real usage skew, not as outright unfairness.
type MultilockResult struct {
	Horizon time.Duration
	Rows    []MultilockRow
}

// MultilockRow is one nesting configuration's outcome.
type MultilockRow struct {
	Config string
	// XHold/ZHold are the L1 hold times of the L1-only thread and the
	// nesting thread; fairness on L1 would make them equal.
	XHold, ZHold time.Duration
	// L1Jain is hold fairness between X and Z on L1.
	L1Jain float64
	// ZWaitP99 is Z's 99th percentile wait on L2 (the inner lock).
	ZWaitP99   time.Duration
	XOps, ZOps int64
}

// String renders the interference table.
func (r *MultilockResult) String() string {
	t := metrics.NewTable(
		fmt.Sprintf("Multi-lock interaction (§4.3 open question): nested u-SCLs, %v run", r.Horizon),
		"configuration", "X hold(L1)", "Z hold(L1)", "Jain(L1)", "Z wait p99 (L2)", "X ops", "Z ops")
	for _, row := range r.Rows {
		t.AddRow(row.Config,
			row.XHold.Round(time.Millisecond).String(),
			row.ZHold.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3f", row.L1Jain),
			row.ZWaitP99.String(),
			row.XOps, row.ZOps)
	}
	return t.String()
}

// Multilock runs the nesting interference experiment. The baseline keeps
// Z's lock uses disjoint (no nesting); the test case nests L2 inside L1.
func Multilock(o Options) (*MultilockResult, error) {
	horizon := o.scaled(time.Second)
	res := &MultilockResult{Horizon: horizon}
	for _, nested := range []bool{false, true} {
		e := sim.New(sim.Config{CPUs: 3, Horizon: horizon, Seed: o.Seed + 1})
		l1 := sim.NewUSCL(e, 0)
		l2 := sim.NewUSCL(e, 0)
		var xOps, zOps int64
		// X: L1 only.
		e.Spawn("X", sim.TaskConfig{CPU: 0}, func(t *sim.Task) {
			for t.Now() < e.Horizon() {
				l1.Lock(t)
				t.Compute(2 * time.Microsecond)
				l1.Unlock(t)
				xOps++
			}
		})
		// Y: L2 only, long critical sections so L2 is the slow lock.
		e.Spawn("Y", sim.TaskConfig{CPU: 1}, func(t *sim.Task) {
			for t.Now() < e.Horizon() {
				l2.Lock(t)
				t.Compute(20 * time.Microsecond)
				l2.Unlock(t)
			}
		})
		// Z: both locks — nested or sequentially, per the configuration.
		e.Spawn("Z", sim.TaskConfig{CPU: 2}, func(t *sim.Task) {
			for t.Now() < e.Horizon() {
				if nested {
					l1.Lock(t)
					l2.Lock(t)
					t.Compute(2 * time.Microsecond)
					l2.Unlock(t)
					l1.Unlock(t)
				} else {
					l1.Lock(t)
					t.Compute(2 * time.Microsecond)
					l1.Unlock(t)
					l2.Lock(t)
					t.Compute(2 * time.Microsecond)
					l2.Unlock(t)
				}
				zOps++
			}
		})
		e.Run()
		label := "disjoint (Z uses L1 then L2 separately)"
		if nested {
			label = "nested (Z holds L1 across its L2 wait)"
		}
		res.Rows = append(res.Rows, MultilockRow{
			Config:   label,
			XHold:    l1.Stats().Hold(0),
			ZHold:    l1.Stats().Hold(2),
			L1Jain:   l1.Stats().JainHold(0, 2),
			ZWaitP99: metrics.Summarize(l2.Stats().WaitSamples(2)).P99,
			XOps:     xOps, ZOps: zOps,
		})
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "multilock",
		Paper: "Multi-lock interaction (§4.3 open question, not a paper figure): nested SCLs interfere — waiting on an inner lock books as outer-lock usage",
		Run:   func(o Options) (fmt.Stringer, error) { return Multilock(o) },
	})
}
