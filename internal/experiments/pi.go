package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/sim"
)

// PIResult explores the paper's §7 suggestion that priority inheritance
// should be combined with SCLs. Scenario: a low-priority thread holds the
// lock while an unrelated high-priority CPU hog competes for its
// processor; a high-priority thread on another processor waits for the
// lock. Without inheritance the holder crawls through its critical
// section at its tiny CPU share and the waiter inherits the delay
// (priority inversion); with inheritance the holder temporarily runs at
// the waiter's weight.
type PIResult struct {
	Rows []PIRow
}

// PIRow is one configuration's outcome.
type PIRow struct {
	Config     string
	WaiterWait metrics.Summary
	WaiterOps  int64
}

// String renders the comparison.
func (r *PIResult) String() string {
	t := metrics.NewTable(
		"Priority inheritance (§7 exploration): high-priority waiter vs low-priority holder under CPU contention",
		"configuration", "wait p50", "wait p99", "wait max", "waiter ops")
	for _, row := range r.Rows {
		t.AddRow(row.Config,
			row.WaiterWait.P50.String(),
			row.WaiterWait.P99.String(),
			row.WaiterWait.Max.String(),
			row.WaiterOps)
	}
	return t.String()
}

// PI runs the inversion scenario with and without inheritance.
func PI(o Options) (*PIResult, error) {
	horizon := o.scaled(2 * time.Second)
	res := &PIResult{}
	for _, pi := range []bool{false, true} {
		e := sim.New(sim.Config{CPUs: 2, Horizon: horizon, Seed: o.Seed + 1})
		lk := sim.NewSCL(e, sim.USCLParams{
			Slice: 2 * time.Millisecond, Prefetch: true, PriorityInheritance: pi,
		})
		// Low-priority holder: repeated 5ms critical sections, CPU 0.
		e.Spawn("holder", sim.TaskConfig{CPU: 0, Nice: 5}, func(t *sim.Task) {
			for t.Now() < e.Horizon() {
				lk.Lock(t)
				t.Compute(5 * time.Millisecond)
				lk.Unlock(t)
				t.Compute(5 * time.Millisecond)
			}
		})
		// Unrelated high-priority CPU hog sharing CPU 0.
		e.Spawn("hog", sim.TaskConfig{CPU: 0, Nice: -5}, func(t *sim.Task) {
			for t.Now() < e.Horizon() {
				t.Compute(time.Millisecond)
			}
		})
		// High-priority waiter on CPU 1.
		var ops int64
		e.Spawn("waiter", sim.TaskConfig{CPU: 1, Nice: -5}, func(t *sim.Task) {
			for t.Now() < e.Horizon() {
				lk.Lock(t)
				t.Compute(100 * time.Microsecond)
				lk.Unlock(t)
				ops++
				t.Sleep(5 * time.Millisecond)
			}
		})
		e.Run()
		label := "u-SCL without inheritance"
		if pi {
			label = "u-SCL with priority inheritance"
		}
		res.Rows = append(res.Rows, PIRow{
			Config:     label,
			WaiterWait: metrics.Summarize(lk.Stats().WaitSamples(2)),
			WaiterOps:  ops,
		})
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "pi",
		Paper: "Priority inheritance (§7 exploration, not a paper figure): combining inheritance with u-SCL removes priority inversion",
		Run:   func(o Options) (fmt.Stringer, error) { return PI(o) },
	})
}
