package experiments

import (
	"fmt"
	"time"

	"scl/internal/apps/upscale"
	"scl/internal/metrics"
)

// Fig10Result reproduces paper Figures 1 and 10: the UpScaleDB workload
// (4 find + 4 insert threads on 4 CPUs, one global environment lock) under
// a pthread-style mutex and under u-SCL. With the mutex, insert threads'
// long critical sections dominate the lock and hence the CPU (scheduler
// subversion, Figure 1); u-SCL equalizes CPU and lock allocation and
// raises find throughput by orders of magnitude (Figure 10b).
type Fig10Result struct {
	Horizon time.Duration
	Runs    []Fig10Run
}

// Fig10Run is one lock's outcome.
type Fig10Run struct {
	Lock       string
	Threads    []upscale.ThreadResult
	FindTput   float64
	InsertTput float64
	JainHold   float64
	LockUtil   float64
}

// String renders both runs with per-thread CPU breakdowns.
func (r *Fig10Result) String() string {
	out := ""
	for _, run := range r.Runs {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 1/10 (%s): UpScaleDB 4 find + 4 insert threads, 4 CPUs, %v run", run.Lock, r.Horizon),
			"thread", "ops", "cpu total", "cpu hold", "cpu wait+other", "lock hold")
		for _, th := range run.Threads {
			t.AddRow(th.Name, th.Ops,
				th.CPUTime.Round(time.Millisecond).String(),
				th.CPUHold.Round(time.Millisecond).String(),
				(th.CPUTime - th.CPUHold).Round(time.Millisecond).String(),
				th.Hold.Round(time.Millisecond).String())
		}
		out += t.String()
		out += fmt.Sprintf("find: %.0f ops/sec  insert: %.0f ops/sec  Jain(hold): %.3f  lock util: %.0f%%\n\n",
			run.FindTput, run.InsertTput, run.JainHold, run.LockUtil*100)
	}
	return out
}

// Fig10 runs the UpScaleDB comparison.
func Fig10(o Options) (*Fig10Result, error) {
	horizon := o.scaled(2 * time.Second)
	res := &Fig10Result{Horizon: horizon}
	for _, lock := range []string{"mutex", "uscl"} {
		r := upscale.RunSim(upscale.SimConfig{
			Lock:        lock,
			FindThreads: 4, InsertThreads: 4,
			CPUs: 4, Horizon: horizon, Preload: 50_000, Seed: o.Seed + 1,
		})
		label := "pthread mutex"
		if lock == "uscl" {
			label = "u-SCL"
		}
		res.Runs = append(res.Runs, Fig10Run{
			Lock:       label,
			Threads:    r.Threads,
			FindTput:   r.FindTput,
			InsertTput: r.InsertTput,
			JainHold:   r.JainHold,
			LockUtil:   r.LockUtil,
		})
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "fig10",
		Paper: "Figures 1 and 10: UpScaleDB with mutex (scheduler subversion) vs u-SCL (fair allocation, higher throughput)",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig10(o) },
	})
}
