package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/internal/workload"
	"scl/sim"
)

// Fig9Result reproduces paper Figure 9 (interactivity vs batching): one
// batch thread with 100µs critical sections versus three interactive
// threads (10µs critical sections, then a 100µs sleep) on two CPUs. The
// table reports the interactive threads' acquisition wait-time
// distribution per lock; for u-SCL, per slice size — slices at or below
// the interactive CS bound interactive waits by one batch CS, while large
// slices trade tail latency for throughput.
type Fig9Result struct {
	Horizon time.Duration
	Rows    []Fig9Row
}

// Fig9Row is one lock configuration's interactive wait distribution.
type Fig9Row struct {
	Config  string
	Summary metrics.Summary
	// InteractiveOps counts completed interactive iterations.
	InteractiveOps int64
}

// String renders the distribution table.
func (r *Fig9Result) String() string {
	t := metrics.NewTable(
		"Figure 9: interactive-thread wait times (1 batch CS=100µs + 3 interactive CS=10µs/sleep=100µs, 2 CPUs)",
		"lock", "p50", "p90", "p99", "max", "interactive ops")
	for _, row := range r.Rows {
		t.AddRow(row.Config,
			row.Summary.P50.String(),
			row.Summary.P90.String(),
			row.Summary.P99.String(),
			row.Summary.Max.String(),
			row.InteractiveOps)
	}
	return t.String()
}

// Fig9 runs the interactivity experiment.
func Fig9(o Options) (*Fig9Result, error) {
	horizon := o.scaled(2 * time.Second)
	res := &Fig9Result{Horizon: horizon}
	type cfg struct {
		label string
		kind  string
		slice time.Duration
	}
	cfgs := []cfg{
		{"mutex", "mutex", 0},
		{"spinlock", "spin", 0},
		{"ticket", "ticket", 0},
		{"u-SCL 1µs", "uscl", time.Microsecond},
		{"u-SCL 10µs", "uscl", 10 * time.Microsecond},
		{"u-SCL 100µs", "uscl", 100 * time.Microsecond},
		{"u-SCL 2ms", "uscl", 2 * time.Millisecond},
	}
	for _, c := range cfgs {
		e := sim.New(sim.Config{CPUs: 2, Horizon: horizon, Seed: o.Seed + 1})
		lk := workload.MakeLock(e, c.kind, c.slice)
		specs := []workload.Loop{
			{CS: 100 * time.Microsecond, CPU: 0, Name: "batch"},
			{CS: 10 * time.Microsecond, Sleep: 100 * time.Microsecond, CPU: 1, Name: "int-0"},
			{CS: 10 * time.Microsecond, Sleep: 100 * time.Microsecond, CPU: 0, Name: "int-1"},
			{CS: 10 * time.Microsecond, Sleep: 100 * time.Microsecond, CPU: 1, Name: "int-2"},
		}
		counters := workload.SpawnLoops(e, lk, specs)
		e.Run()
		var waits []time.Duration
		for i := 1; i <= 3; i++ {
			waits = append(waits, lk.Stats().WaitSamples(i)...)
		}
		res.Rows = append(res.Rows, Fig9Row{
			Config:         c.label,
			Summary:        metrics.Summarize(waits),
			InteractiveOps: counters.Ops[1] + counters.Ops[2] + counters.Ops[3],
		})
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "fig9",
		Paper: "Figure 9: interactive vs batch thread wait-time CDF across locks and u-SCL slice sizes",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig9(o) },
	})
}
