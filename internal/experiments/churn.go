package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"scl"
	"scl/internal/metrics"
)

// ChurnResult reproduces the paper's §4.4 argument for k-SCL's
// inactive-entity GC on the real u-SCL: under a goroutine-per-request
// workload that never calls Handle.Close, per-entity accounting state
// grows without bound unless inactive entities are reaped. The experiment
// runs the same churn workload with the GC off and on
// (scl.WithInactiveGC) and samples the registered-entity count and the
// process heap over time; long-lived survivor entities run throughout so
// the run also checks that reaping bystanders leaves their fairness
// untouched.
type ChurnResult struct {
	Horizon   time.Duration
	Threshold time.Duration
	Runs      []ChurnRun
}

// ChurnRun is one GC configuration's outcome.
type ChurnRun struct {
	// GC reports whether WithInactiveGC was enabled.
	GC bool
	// Churned is the number of short-lived entities that registered, used
	// the lock, and departed without Close during the run.
	Churned int
	// Samples tracks registered entities and heap over the run.
	Samples []ChurnSample
	// FinalRegistered is the registered-entity count after the run
	// settled (one GC threshold past the last churn operation); Reaped is
	// the lock's cumulative reap counter.
	FinalRegistered int
	Reaped          int64
	// SurvivorJain is Jain's fairness index over the survivor entities'
	// hold times.
	SurvivorJain float64
}

// ChurnSample is one point of the entity-count / heap time series.
type ChurnSample struct {
	At         time.Duration
	Registered int
	HeapKB     uint64
}

// String renders both runs: the sampled series, then the bounded-versus-
// unbounded comparison the GC exists for.
func (r *ChurnResult) String() string {
	out := ""
	for _, run := range r.Runs {
		mode := "GC off"
		if run.GC {
			mode = fmt.Sprintf("GC on (threshold %v)", r.Threshold)
		}
		t := metrics.NewTable(
			fmt.Sprintf("entity churn (%s): %d short-lived entities over %v, no Close",
				mode, run.Churned, r.Horizon),
			"time", "registered", "heap KB")
		for _, s := range run.Samples {
			t.AddRow(s.At.Round(time.Millisecond).String(), s.Registered, s.HeapKB)
		}
		out += t.String()
		out += fmt.Sprintf("final registered: %d  reaped: %d  survivor Jain(hold): %.3f\n\n",
			run.FinalRegistered, run.Reaped, run.SurvivorJain)
	}
	return out
}

// churnSurvivors is the number of long-lived entities that keep using the
// lock across the whole run (the active set the GC must preserve).
const churnSurvivors = 4

// Churn runs the entity-churn comparison on the real scl.Mutex.
func Churn(o Options) (*ChurnResult, error) {
	horizon := o.scaled(1 * time.Second)
	if horizon < 20*time.Millisecond {
		horizon = 20 * time.Millisecond
	}
	// A threshold well under the horizon, so several reap sweeps happen
	// within the run; the paper's kernel uses 1s against much longer
	// process lifetimes.
	threshold := horizon / 8
	res := &ChurnResult{Horizon: horizon, Threshold: threshold}
	for _, gc := range []bool{false, true} {
		run, err := churnRun(gc, horizon, threshold)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, *run)
	}
	return res, nil
}

func churnRun(gc bool, horizon, threshold time.Duration) (*ChurnRun, error) {
	opts := scl.Options{Slice: 100 * time.Microsecond, Name: "churn"}
	var extra []scl.Option
	if gc {
		extra = append(extra, scl.WithInactiveGC(threshold))
	}
	m := scl.NewMutex(opts, extra...)
	run := &ChurnRun{GC: gc}

	// Survivors: long-lived entities locking throughout the run.
	var (
		wg          sync.WaitGroup
		stop        = make(chan struct{})
		survivorIDs []int64
	)
	for i := 0; i < churnSurvivors; i++ {
		h := m.Register().SetName(fmt.Sprintf("survivor-%d", i))
		survivorIDs = append(survivorIDs, h.ID())
		wg.Add(1)
		go func(h *scl.Handle) {
			defer wg.Done()
			defer h.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Lock()
				spin(2 * time.Microsecond)
				h.Unlock()
				time.Sleep(50 * time.Microsecond)
			}
		}(h)
	}

	// Churn: short-lived entities that lock a few times and depart
	// without Close — the goroutine-per-request server that forgets the
	// handle. Sampled at ten points across the horizon.
	start := time.Now()
	nextSample := horizon / 10
	for time.Since(start) < horizon {
		h := m.Register()
		for i := 0; i < 3; i++ {
			h.Lock()
			spin(time.Microsecond)
			h.Unlock()
		}
		run.Churned++
		if el := time.Since(start); el >= nextSample {
			run.Samples = append(run.Samples, sampleChurn(m, el))
			nextSample = el + horizon/10
		}
	}
	close(stop)
	wg.Wait()

	// Fairness among survivors, read before the settle below — after a
	// threshold of quiet the GC is entitled to reap the survivors' own
	// stats too.
	run.SurvivorJain = m.Stats().JainHold(survivorIDs...)

	// Settle: give the lazy GC a threshold (plus slack) of idle time,
	// then let a Stats snapshot trigger the sweep.
	time.Sleep(threshold + threshold/2)
	snap := m.Stats()
	run.Samples = append(run.Samples, sampleChurn(m, time.Since(start)))
	run.FinalRegistered = m.Entities()
	run.Reaped = snap.Reaped
	return run, nil
}

func sampleChurn(m *scl.Mutex, at time.Duration) ChurnSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ChurnSample{At: at, Registered: m.Entities(), HeapKB: ms.HeapAlloc / 1024}
}

// spin busy-waits (critical sections must consume lock time, not sleep).
func spin(d time.Duration) {
	for t0 := time.Now(); time.Since(t0) < d; {
	}
}

func init() {
	register(Runner{
		Name:  "churn",
		Paper: "§4.4 inactive-entity GC: registered entities and heap stay bounded under handle churn with WithInactiveGC, unbounded without; survivor fairness unaffected",
		Run:   func(o Options) (fmt.Stringer, error) { return Churn(o) },
	})
}
