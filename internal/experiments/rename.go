package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/internal/vfs"
	"scl/sim"
)

// renameRun executes the paper's §5.5.3 rename experiment on one lock: a
// bully process repeatedly renames into a million-entry directory
// (holding the global rename lock ~10ms per call on ext4 without
// dir_index), while a victim renames between empty directories (~µs).
// Each simulated process executes real namespace operations; their
// measured durations are charged to the simulated CPUs.
type renameRun struct {
	BullyOps, VictimOps   int64
	BullyHold, VictimHold time.Duration
	VictimLat, BullyLat   metrics.Summary
	VictimBelow10us       float64
	Jain                  float64
}

func runRename(o Options, lock string, dirEntries int) renameRun {
	horizon := o.scaled(2 * time.Second)
	e := sim.New(sim.Config{CPUs: 2, Horizon: horizon, Seed: o.Seed + 1})
	var lk sim.Locker
	if lock == "kscl" {
		lk = sim.NewKSCL(e)
	} else {
		lk = sim.NewMutex(e)
	}
	fs := vfs.New()
	for _, d := range []string{"bully-src", "bully-dst", "victim-src", "victim-dst"} {
		if err := fs.Mkdir(d); err != nil {
			panic(err)
		}
	}
	if err := fs.Populate("bully-dst", "f-", dirEntries); err != nil {
		panic(err)
	}
	var ops [2]int64
	var lats [2]*metrics.Reservoir
	lats[0] = metrics.NewReservoir(1<<15, o.Seed+11)
	lats[1] = metrics.NewReservoir(1<<15, o.Seed+12)

	// Each process: touch(src/file); rename(src/file, dst/file);
	// unlink(dst/file) — the paper's footnote-2 loop. Only the rename
	// takes the global lock; touch/unlink hold only directory locks.
	proc := func(idx int, src, dst string) func(*sim.Task) {
		return func(t *sim.Task) {
			name := fmt.Sprintf("p%d", idx)
			for t.Now() < e.Horizon() {
				start := time.Now()
				if err := fs.Create(src, name); err != nil {
					panic(err)
				}
				t.Compute(sinceAtLeast(start, 50*time.Nanosecond))

				renameStart := t.Now()
				lk.Lock(t)
				start = time.Now()
				if err := fs.Rename(src, name, dst, name); err != nil {
					panic(err)
				}
				t.Compute(sinceAtLeast(start, 50*time.Nanosecond))
				lk.Unlock(t)
				lats[idx].Add(t.Now() - renameStart)

				start = time.Now()
				if err := fs.Unlink(dst, name); err != nil {
					panic(err)
				}
				t.Compute(sinceAtLeast(start, 50*time.Nanosecond))
				ops[idx]++
			}
		}
	}
	e.Spawn("bully", sim.TaskConfig{CPU: 0}, proc(0, "bully-src", "bully-dst"))
	e.Spawn("victim", sim.TaskConfig{CPU: 1}, proc(1, "victim-src", "victim-dst"))
	e.Run()
	s := lk.Stats()
	return renameRun{
		BullyOps:        ops[0],
		VictimOps:       ops[1],
		BullyHold:       s.Hold(0),
		VictimHold:      s.Hold(1),
		BullyLat:        metrics.Summarize(lats[0].Samples()),
		VictimLat:       metrics.Summarize(lats[1].Samples()),
		VictimBelow10us: metrics.FractionBelow(lats[1].Samples(), 10*time.Microsecond),
		Jain:            s.JainLOT(0, 1),
	}
}

// sinceAtLeast floors at min (clock granularity) and caps at 100ms —
// bulk renames legitimately scan for ~10ms, so only extreme outliers
// (GC/OS preemption of the simulating process) are clipped.
func sinceAtLeast(start time.Time, min time.Duration) time.Duration {
	const cap = 100 * time.Millisecond
	d := time.Since(start)
	if d < min {
		return min
	}
	if d > cap {
		return cap
	}
	return d
}

// renameDirEntries is the bully directory's size. The paper uses one
// million empty files; the same size is used here (Populate bulk-creates
// it). Scale-sensitive benchmarks may lower it via Options.Scale < 1,
// which shortens the run, not the directory.
const renameDirEntries = 1_000_000

// Fig13Result reproduces paper Figure 13: rename latency distributions of
// the bully and the victim under the default mutex and under k-SCL.
type Fig13Result struct {
	Rows []Fig13Row
}

// Fig13Row is one (lock, process) latency distribution.
type Fig13Row struct {
	Lock, Proc string
	Summary    metrics.Summary
	Below10us  float64
}

// String renders the latency table.
func (r *Fig13Result) String() string {
	t := metrics.NewTable(
		"Figure 13: cross-directory rename latency (bully: 1M-entry dst, victim: empty dirs)",
		"lock", "process", "<10µs", "p50", "p90", "p99", "max")
	for _, row := range r.Rows {
		t.AddRow(row.Lock, row.Proc,
			fmt.Sprintf("%.0f%%", row.Below10us*100),
			row.Summary.P50.String(),
			row.Summary.P90.String(),
			row.Summary.P99.String(),
			row.Summary.Max.String())
	}
	return t.String()
}

// Fig13 runs the rename latency comparison.
func Fig13(o Options) (*Fig13Result, error) {
	res := &Fig13Result{}
	for _, lock := range []string{"mutex", "kscl"} {
		run := runRename(o, lock, renameDirEntries)
		label := "mutex"
		if lock == "kscl" {
			label = "k-SCL"
		}
		res.Rows = append(res.Rows,
			Fig13Row{Lock: label, Proc: "bully", Summary: run.BullyLat,
				Below10us: 0},
			Fig13Row{Lock: label, Proc: "victim", Summary: run.VictimLat,
				Below10us: run.VictimBelow10us})
	}
	return res, nil
}

// Fig14Result reproduces paper Figure 14: rename hold times, throughput
// and LOT fairness for the bully and victim under both locks.
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14Row is one lock's outcome.
type Fig14Row struct {
	Lock                  string
	BullyOps, VictimOps   int64
	BullyHold, VictimHold time.Duration
	Jain                  float64
}

// String renders the comparison.
func (r *Fig14Result) String() string {
	t := metrics.NewTable(
		"Figure 14: rename lock comparison (2 processes, 2 CPUs)",
		"lock", "bully renames", "victim renames", "bully hold", "victim hold", "Jain(LOT)")
	for _, row := range r.Rows {
		t.AddRow(row.Lock, row.BullyOps, row.VictimOps,
			row.BullyHold.Round(time.Millisecond).String(),
			row.VictimHold.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3f", row.Jain))
	}
	return t.String()
}

// Fig14 runs the rename fairness comparison.
func Fig14(o Options) (*Fig14Result, error) {
	res := &Fig14Result{}
	for _, lock := range []string{"mutex", "kscl"} {
		run := runRename(o, lock, renameDirEntries)
		label := "mutex"
		if lock == "kscl" {
			label = "k-SCL"
		}
		res.Rows = append(res.Rows, Fig14Row{
			Lock:      label,
			BullyOps:  run.BullyOps,
			VictimOps: run.VictimOps,
			BullyHold: run.BullyHold, VictimHold: run.VictimHold,
			Jain: run.Jain,
		})
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "fig13",
		Paper: "Figure 13: rename latency CDFs — k-SCL bounds the victim's latency by banning the bully",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig13(o) },
	})
	register(Runner{
		Name:  "fig14",
		Paper: "Figure 14: rename lock hold/throughput/fairness — victim throughput rises ~100x under k-SCL",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig14(o) },
	})
}
