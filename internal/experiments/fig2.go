package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/internal/workload"
	"scl/sim"
)

// Table2Result reproduces the paper's §3 toy example (Figure 2 / Table 2):
// two threads on two CPUs, 10s vs 1s critical sections, 20 second run.
// For each lock it reports both threads' lock opportunity time (eq. 1) and
// the Jain fairness index over LOT.
type Table2Result struct {
	Rows []Table2Row
}

// Table2Row is one lock's outcome.
type Table2Row struct {
	Lock       string
	LOT0, LOT1 time.Duration
	Hold0      time.Duration
	Hold1      time.Duration
	Jain       float64
}

// String renders the paper's Table 2.
func (r *Table2Result) String() string {
	t := metrics.NewTable(
		"Table 2: Lock opportunity and fairness (toy example: CS 10s vs 1s, 20s run)",
		"lock", "LOT T0 (s)", "LOT T1 (s)", "hold T0 (s)", "hold T1 (s)", "Jain")
	for _, row := range r.Rows {
		t.AddRow(row.Lock,
			fmt.Sprintf("%.2f", row.LOT0.Seconds()),
			fmt.Sprintf("%.2f", row.LOT1.Seconds()),
			fmt.Sprintf("%.2f", row.Hold0.Seconds()),
			fmt.Sprintf("%.2f", row.Hold1.Seconds()),
			fmt.Sprintf("%.2f", row.Jain))
	}
	return t.String()
}

// Table2 runs the toy example across the four locks.
func Table2(o Options) (*Table2Result, error) {
	horizon := o.scaled(20 * time.Second)
	res := &Table2Result{}
	for _, kind := range workload.LockKinds {
		e := sim.New(sim.Config{CPUs: 2, Horizon: horizon, Seed: o.Seed + 1})
		lk := workload.MakeLock(e, kind, 0)
		workload.SpawnLoops(e, lk, []workload.Loop{
			{CS: o.scaled(10 * time.Second), CPU: 0, Name: "T0"},
			{CS: o.scaled(1 * time.Second), CPU: 1, Name: "T1"},
		})
		e.Run()
		s := lk.Stats()
		res.Rows = append(res.Rows, Table2Row{
			Lock:  workload.LockLabel(kind),
			LOT0:  s.LOT(0),
			LOT1:  s.LOT(1),
			Hold0: s.Hold(0),
			Hold1: s.Hold(1),
			Jain:  s.JainLOT(0, 1),
		})
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "table2",
		Paper: "Table 2 / Figure 2: toy example LOT and Jain fairness for mutex, spinlock, ticket lock and the desired (u-SCL) behaviour",
		Run:   func(o Options) (fmt.Stringer, error) { return Table2(o) },
	})
}
