package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/internal/workload"
	"scl/sim"
)

// AblationResult quantifies the contribution of u-SCL's design choices
// (DESIGN.md §3, paper §4.3) on a standard contended workload (4 threads,
// 2 CPUs, mixed 1µs/3µs critical sections):
//
//   - next-thread prefetch: the spinning head waiter vs a fully parked
//     queue (wake round-trip on every slice transfer);
//   - the lock slice: the 2ms default vs no slice at all (k-SCL style
//     transfer on every release);
//   - the ban (penalty): disabled by an effectively zero cap vs enabled.
type AblationResult struct {
	Horizon time.Duration
	Rows    []AblationRow
}

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Config   string
	Ops      int64
	Tput     float64
	JainHold float64
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	t := metrics.NewTable(
		fmt.Sprintf("Ablation: u-SCL design choices (4 threads / 2 CPUs, CS 1µs+3µs, %v run)", r.Horizon),
		"configuration", "ops", "ops/sec", "Jain(hold)")
	for _, row := range r.Rows {
		t.AddRow(row.Config, row.Ops, fmt.Sprintf("%.3fM", row.Tput/1e6),
			fmt.Sprintf("%.3f", row.JainHold))
	}
	return t.String()
}

// Ablation runs the design-choice study.
func Ablation(o Options) (*AblationResult, error) {
	horizon := o.scaled(time.Second)
	res := &AblationResult{Horizon: horizon}
	configs := []struct {
		label string
		p     sim.USCLParams
	}{
		{"u-SCL (slice 2ms, prefetch, bans)", sim.USCLParams{Slice: 2 * time.Millisecond, Prefetch: true}},
		{"no next-thread prefetch", sim.USCLParams{Slice: 2 * time.Millisecond}},
		{"no slice (transfer every release)", sim.USCLParams{ZeroSlice: true, Prefetch: true}},
		{"no bans (penalty capped at 1ns)", sim.USCLParams{Slice: 2 * time.Millisecond, Prefetch: true, BanCap: time.Nanosecond}},
	}
	for _, c := range configs {
		e := sim.New(sim.Config{CPUs: 2, Horizon: horizon, Seed: o.Seed + 1})
		lk := sim.NewSCL(e, c.p)
		specs := []workload.Loop{
			{CS: time.Microsecond, CPU: 0},
			{CS: time.Microsecond, CPU: 1},
			{CS: 3 * time.Microsecond, CPU: 0},
			{CS: 3 * time.Microsecond, CPU: 1},
		}
		counters := workload.SpawnLoops(e, lk, specs)
		e.Run()
		s := lk.Stats()
		res.Rows = append(res.Rows, AblationRow{
			Config:   c.label,
			Ops:      counters.Total(),
			Tput:     float64(counters.Total()) / horizon.Seconds(),
			JainHold: s.JainHold(0, 1, 2, 3),
		})
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "ablation",
		Paper: "Ablation (not a paper figure): contribution of prefetch, slices and bans to u-SCL's throughput and fairness",
		Run:   func(o Options) (fmt.Stringer, error) { return Ablation(o) },
	})
}
