package experiments

import (
	"fmt"
	"time"

	"scl/internal/metrics"
	"scl/internal/workload"
	"scl/sim"
)

// Fig5Result reproduces paper Figure 5: thread groups with 1µs and 3µs
// critical sections on dedicated CPUs, comparing hold-time fairness,
// throughput and CPU utilization across the four locks. fig5a/b use 2
// threads on 2 CPUs; fig5c/d use 16 threads on 16 CPUs.
type Fig5Result struct {
	Threads int
	Horizon time.Duration
	Rows    []Fig5Row
}

// Fig5Row is one lock's outcome.
type Fig5Row struct {
	Lock      string
	HoldShort time.Duration // aggregate hold of the 1µs-CS group
	HoldLong  time.Duration // aggregate hold of the 3µs-CS group
	Ops       int64         // total iterations (throughput × horizon)
	JainHold  float64       // per-thread hold fairness (Figure 5b/5d)
	CPUUtil   float64       // Figure 5b/5d
}

// String renders the figure's data as a table.
func (r *Fig5Result) String() string {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 5: %d threads on %d CPUs, CS 1µs vs 3µs, %v run",
			r.Threads, r.Threads, r.Horizon),
		"lock", "hold 1µs-group", "hold 3µs-group", "ops", "ops/sec", "Jain(hold)", "CPU util")
	for _, row := range r.Rows {
		t.AddRow(row.Lock,
			row.HoldShort.Round(time.Millisecond).String(),
			row.HoldLong.Round(time.Millisecond).String(),
			row.Ops,
			fmt.Sprintf("%.2fM", float64(row.Ops)/r.Horizon.Seconds()/1e6),
			fmt.Sprintf("%.3f", row.JainHold),
			fmt.Sprintf("%.2f", row.CPUUtil))
	}
	return t.String()
}

// Fig5 runs the comparison with the given thread count (threads == CPUs;
// half the threads run 1µs critical sections, half 3µs).
func Fig5(o Options, threads int) (*Fig5Result, error) {
	horizon := o.scaled(2 * time.Second)
	res := &Fig5Result{Threads: threads, Horizon: horizon}
	for _, kind := range workload.LockKinds {
		e := sim.New(sim.Config{CPUs: threads, Horizon: horizon, Seed: o.Seed + 1})
		lk := workload.MakeLock(e, kind, 0)
		specs := make([]workload.Loop, threads)
		for i := range specs {
			cs := time.Microsecond
			if i >= threads/2 {
				cs = 3 * time.Microsecond
			}
			specs[i] = workload.Loop{CS: cs, CPU: i}
		}
		counters := workload.SpawnLoops(e, lk, specs)
		e.Run()
		s := lk.Stats()
		row := Fig5Row{Lock: workload.LockLabel(kind), CPUUtil: e.Utilization()}
		ids := make([]int, threads)
		for i := 0; i < threads; i++ {
			ids[i] = i
			if i < threads/2 {
				row.HoldShort += s.Hold(i)
			} else {
				row.HoldLong += s.Hold(i)
			}
		}
		row.Ops = counters.Total()
		row.JainHold = s.JainHold(ids...)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func init() {
	register(Runner{
		Name:  "fig5a",
		Paper: "Figure 5a/5b: 2 threads on 2 CPUs (CS 1µs vs 3µs) — hold times, throughput, fairness, CPU utilization",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig5(o, 2) },
	})
	register(Runner{
		Name:  "fig5c",
		Paper: "Figure 5c/5d: 16 threads on 16 CPUs (8×1µs + 8×3µs) — hold times, throughput, fairness, CPU utilization",
		Run:   func(o Options) (fmt.Stringer, error) { return Fig5(o, 16) },
	})
}
