// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §3, §5) on this repository's substrates. Each experiment
// is a named runner that returns a rendered table plus structured data;
// cmd/sclbench and the repository's bench_test.go drive the same runners.
//
// Durations default to a few virtual seconds rather than the paper's
// 30-120s wall-clock runs — rates are time-invariant in the simulator —
// and can be scaled with Options.Scale. EXPERIMENTS.md records
// paper-versus-measured values for every experiment.
package experiments

import (
	"fmt"
	"sort"
	"time"
)

// Options tune an experiment run.
type Options struct {
	// Seed seeds every simulation in the experiment. Runs with equal seeds
	// are identical.
	Seed int64
	// Scale multiplies the experiment's default duration (1.0 when zero).
	// Benchmarks use small scales for quick runs.
	Scale float64
}

func (o Options) scaled(d time.Duration) time.Duration {
	if o.Scale <= 0 {
		return d
	}
	return time.Duration(float64(d) * o.Scale)
}

// Runner executes one experiment and renders its result.
type Runner struct {
	// Name is the experiment id (e.g. "fig5a", "table1").
	Name string
	// Paper describes what the paper's table/figure shows.
	Paper string
	// Run executes the experiment.
	Run func(Options) (fmt.Stringer, error)
}

// registry of all experiments, populated by the per-figure files.
var registry = map[string]Runner{}

func register(r Runner) {
	if _, dup := registry[r.Name]; dup {
		panic("experiments: duplicate " + r.Name)
	}
	registry[r.Name] = r
}

// Get returns the named experiment.
func Get(name string) (Runner, bool) {
	r, ok := registry[name]
	return r, ok
}

// Names returns all experiment ids in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all runners in name order.
func All() []Runner {
	out := make([]Runner, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
