// Package workloads defines the explorable scenarios the deterministic
// checker (internal/check) runs against the real scl locks. Each
// workload builds a fresh lock per explored schedule, drives it from
// managed goroutines, and asserts the paper's guarantees on every
// schedule: mutual exclusion, no lost grants (via the scheduler's
// deadlock detector), accounting conservation (CheckInvariants after
// every operation), and the opportunity-imbalance bound. The package is
// shared by `go test ./internal/check` and the cmd/sclcheck CLI.
package workloads

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"scl"
	"scl/internal/check"
)

// opKind enumerates the scripted operations of the churn workloads.
type opKind int

const (
	opLock opKind = iota
	opTry
	opCancel // cancellable acquire whose context fires mid-flight
	opThink  // off-lock virtual time
	opClose  // close the handle mid-run and reopen a fresh one
)

type op struct {
	kind opKind
	hold time.Duration // critical-section length (lock ops)
	wait time.Duration // think time, or cancel delay
}

// MutexOpts configures the Mutex churn workload.
type MutexOpts struct {
	// Entities is the number of concurrent entities (default 3).
	Entities int
	// Ops is the number of scripted operations per entity (default 4).
	Ops int
	// Slice is the lock slice (default 2ms, the paper's).
	Slice time.Duration
	// Seed derives each entity's deterministic op script.
	Seed int64
	// Cancel mixes in cancellable acquires abandoned mid-flight.
	Cancel bool
	// CloseMid mixes in mid-run Close/reopen churn.
	CloseMid bool
	// GC enables the inactive-entity GC with a tight threshold, pulling
	// the reap paths into the explored schedules.
	GC bool
}

func (o *MutexOpts) defaults() {
	if o.Entities <= 0 {
		o.Entities = 3
	}
	if o.Ops <= 0 {
		o.Ops = 4
	}
	if o.Slice == 0 {
		o.Slice = 2 * time.Millisecond
	}
}

// script derives entity e's deterministic operation list.
func (o MutexOpts) script(e int) []op {
	rng := rand.New(rand.NewSource(o.Seed*1000003 + int64(e)))
	ops := make([]op, 0, o.Ops)
	for i := 0; i < o.Ops; i++ {
		hold := time.Duration(50+rng.Intn(1500)) * time.Microsecond
		wait := time.Duration(rng.Intn(2000)) * time.Microsecond
		k := opLock
		switch r := rng.Intn(10); {
		case r < 5:
			k = opLock
		case r < 6:
			k = opTry
		case r < 8 && o.Cancel:
			k = opCancel
		case r < 9 && o.CloseMid:
			k = opClose
		default:
			k = opThink
		}
		ops = append(ops, op{kind: k, hold: hold, wait: wait})
	}
	return ops
}

// MutexChurn is the 3-entity lock/cancel/close workload from the issue:
// entities run deterministic per-seed scripts of plain, try-, and
// cancellable acquires plus mid-run handle churn, asserting mutual
// exclusion and lock invariants after every operation, and full
// teardown (no registered entities, clean books) at the end.
func MutexChurn(o MutexOpts) check.Workload {
	o.defaults()
	var m *scl.Mutex
	return check.Workload{
		Name: "mutex-churn",
		Setup: func(s *check.Sched) {
			opts := scl.Options{Slice: o.Slice}
			if o.GC {
				opts.InactiveTimeout = 10 * time.Millisecond
			}
			m = scl.NewMutex(opts)
			held := new(int)
			for e := 0; e < o.Entities; e++ {
				e := e
				script := o.script(e)
				h := m.Register()
				s.Go(fmt.Sprintf("e%d", e), func() {
					runMutexScript(s, m, h, script, held)
				})
			}
		},
		Validate: func() error {
			if err := m.CheckInvariants(); err != nil {
				return err
			}
			if n := m.Entities(); n != 0 {
				return fmt.Errorf("%d entities still registered after all handles closed", n)
			}
			return nil
		},
	}
}

// runMutexScript executes one entity's scripted ops, asserting mutual
// exclusion via the shared holder counter and the lock's invariants
// after every operation.
func runMutexScript(s *check.Sched, m *scl.Mutex, h *scl.Handle, script []op, held *int) {
	enter := func() {
		*held++
		if *held != 1 {
			s.Failf("mutual exclusion violated: %d holders", *held)
		}
	}
	exit := func() {
		*held--
	}
	for i, o := range script {
		switch o.kind {
		case opLock:
			h.Lock()
			enter()
			check.Sleep(o.hold)
			exit()
			h.Unlock()
		case opTry:
			if h.TryLock() {
				enter()
				check.Sleep(o.hold)
				exit()
				h.Unlock()
			}
		case opCancel:
			ctx, cancel := context.WithCancel(context.Background())
			s.Go("canceller", func() {
				check.Sleep(o.wait)
				cancel()
			})
			if err := h.LockContext(ctx); err == nil {
				enter()
				check.Sleep(o.hold)
				exit()
				h.Unlock()
			}
			cancel()
		case opClose:
			h.Close()
			check.Sleep(o.wait)
			h = m.Register()
		case opThink:
			check.Sleep(o.wait)
		}
		if err := m.CheckInvariants(); err != nil {
			s.Failf("invariants broken after op %d: %v", i, err)
		}
	}
	h.Close()
	if err := m.CheckInvariants(); err != nil {
		s.Failf("invariants broken after close: %v", err)
	}
}

// ContendOpts configures the opportunity-imbalance workload.
type ContendOpts struct {
	Entities int
	Ops      int
	Slice    time.Duration
	Hold     time.Duration // fixed critical-section length
	Seed     int64
}

// MutexContend is the opportunity-imbalance workload: equal-weight
// entities contend with plain (uncancellable) acquires and a fixed
// hold, and every single acquisition asserts the paper's bound — with N
// equal entities, a waiter's delay is bounded by the others' slices,
// their slice-overrunning critical sections, and one ban penalty
// (penalty <= (N-1) x window at equal weights, paper §4.2). The factor
// below is deliberately generous (it must hold on EVERY schedule,
// including adversarial ones); it still catches unbounded starvation
// and lost wakeups, which show up as waits growing with the op count
// or as deadlocks.
func MutexContend(o ContendOpts) check.Workload {
	if o.Entities <= 0 {
		o.Entities = 3
	}
	if o.Ops <= 0 {
		o.Ops = 4
	}
	if o.Slice == 0 {
		o.Slice = 2 * time.Millisecond
	}
	if o.Hold == 0 {
		o.Hold = time.Millisecond
	}
	bound := time.Duration(6*o.Entities) * (o.Slice + o.Hold)
	var m *scl.Mutex
	return check.Workload{
		Name: "mutex-contend",
		Setup: func(s *check.Sched) {
			m = scl.NewMutex(scl.Options{Slice: o.Slice})
			held := new(int)
			for e := 0; e < o.Entities; e++ {
				h := m.Register()
				s.Go(fmt.Sprintf("e%d", e), func() {
					for i := 0; i < o.Ops; i++ {
						t0, _ := check.Now()
						h.Lock()
						t1, _ := check.Now()
						if wait := t1 - t0; wait > bound {
							s.Failf("opportunity-imbalance bound exceeded: op %d waited %v (bound %v)", i, wait, bound)
						}
						*held++
						if *held != 1 {
							s.Failf("mutual exclusion violated: %d holders", *held)
						}
						check.Sleep(o.Hold)
						*held--
						h.Unlock()
					}
					h.Close()
				})
			}
		},
		Validate: func() error { return m.CheckInvariants() },
	}
}

// CombineOpts configures the Handle.Do combining workload.
type CombineOpts struct {
	// Entities is the number of concurrent entities (default 3).
	Entities int
	// Ops is the number of scripted critical sections per entity
	// (default 3).
	Ops int
	// Slice is the lock slice (default 2ms).
	Slice time.Duration
	// Seed derives each entity's deterministic op script.
	Seed int64
}

// MutexCombine targets the combining protocol (Handle.Do, combine.go):
// entities run a deterministic mix of Do calls and plain acquires, so
// published critical sections race classic queueing, release-time
// drains, ban rejections and the idle wake-walk across every explored
// interleaving of the mu.combine.* decision sites. On every schedule it
// asserts:
//
//   - mutual exclusion: combined closures and plain critical sections
//     share one holder counter, so a drain overlapping any hold fails;
//   - exactly-once: each closure bumps its own (entity, op) cell,
//     caught double-executed (combiner AND self-serve) or dropped at
//     Validate;
//   - conservation: full lock + accountant invariants after every op
//     (combined usage must land on the publishing entity's books);
//   - the opportunity-imbalance bound on every Do's total latency, so
//     a lost wakeup that the deadlock detector cannot see (a publisher
//     parked while others make progress) still fails the schedule.
func MutexCombine(o CombineOpts) check.Workload {
	if o.Entities <= 0 {
		o.Entities = 3
	}
	if o.Ops <= 0 {
		o.Ops = 3
	}
	if o.Slice == 0 {
		o.Slice = 2 * time.Millisecond
	}
	// Holds reach past the slice so drains interleave with bans; the
	// latency bound mirrors MutexContend's, widened by the max hold.
	maxHold := 3 * time.Millisecond
	bound := time.Duration(6*o.Entities)*(o.Slice+maxHold) + maxHold
	var m *scl.Mutex
	executed := make([][]int, o.Entities)
	return check.Workload{
		Name: "mutex-combine",
		Setup: func(s *check.Sched) {
			m = scl.NewMutex(scl.Options{Slice: o.Slice})
			held := new(int)
			for e := 0; e < o.Entities; e++ {
				e := e
				executed[e] = make([]int, o.Ops)
				rng := rand.New(rand.NewSource(o.Seed*1000033 + int64(e)))
				h := m.Register()
				s.Go(fmt.Sprintf("e%d", e), func() {
					for i := 0; i < o.Ops; i++ {
						i := i
						hold := time.Duration(50+rng.Intn(int(maxHold/time.Microsecond)-50)) * time.Microsecond
						think := time.Duration(rng.Intn(1500)) * time.Microsecond
						section := func() {
							*held++
							if *held != 1 {
								s.Failf("mutual exclusion violated: %d holders", *held)
							}
							check.Sleep(hold)
							*held--
							executed[e][i]++
						}
						t0, _ := check.Now()
						if rng.Intn(3) == 0 {
							h.Lock()
							section()
							h.Unlock()
						} else {
							h.Do(section)
						}
						t1, _ := check.Now()
						if wait := t1 - t0; wait > bound {
							s.Failf("combine latency bound exceeded: op %d took %v (bound %v)", i, wait, bound)
						}
						if err := m.CheckInvariants(); err != nil {
							s.Failf("invariants broken after op %d: %v", i, err)
						}
						check.Sleep(think)
					}
					h.Close()
					if err := m.CheckInvariants(); err != nil {
						s.Failf("invariants broken after close: %v", err)
					}
				})
			}
		},
		Validate: func() error {
			if err := m.CheckInvariants(); err != nil {
				return err
			}
			for e, ops := range executed {
				for i, n := range ops {
					if n != 1 {
						return fmt.Errorf("entity %d op %d executed %d times (want exactly once)", e, i, n)
					}
				}
			}
			if n := m.Entities(); n != 0 {
				return fmt.Errorf("%d entities still registered after all handles closed", n)
			}
			return nil
		},
	}
}

// RWShardOpts configures the distributed-read-indicator sweep workload.
type RWShardOpts struct {
	Readers int
	Writers int
	Ops     int
	Period  time.Duration
	Seed    int64
}

// RWShardSweep targets the RW-SCL's sharded read indicator: readers
// hammer the fast RLock/RUnlock paths (each publish/revalidate and shard
// pick is a decision point the explorer reorders) while writers force
// phase flips whose write-phase drain sweeps the shards. The workload
// asserts, on every schedule, that no reader is lost or double-counted
// across a sweep:
//
//   - reader/writer exclusion via shared counters, as in RWChurn;
//   - conservation: Stats().ReaderOps (slow ops + fast shard ops) must
//     equal the readers' own acquisition tally, so a waiter granted
//     twice or a fast +1 dropped by the sweep is caught exactly;
//   - drain: after every scripted op completes, a final write acquire
//     must be granted. The drain sweep admits a writer only when the
//     shard sum is exactly zero, so a leaked +1 (double-counted reader)
//     parks this probe forever and surfaces as a checker deadlock, and
//     a lost reader (sum < 0) fails CheckInvariants.
func RWShardSweep(o RWShardOpts) check.Workload {
	if o.Readers <= 0 {
		o.Readers = 3
	}
	if o.Writers <= 0 {
		o.Writers = 1
	}
	if o.Ops <= 0 {
		o.Ops = 3
	}
	if o.Period == 0 {
		o.Period = 2 * time.Millisecond
	}
	var l *scl.RWLock
	acquiredR := new(int)
	acquiredW := new(int)
	return check.Workload{
		Name: "rw-shard",
		Setup: func(s *check.Sched) {
			l = scl.NewRWLock(1, 1, o.Period)
			*acquiredR, *acquiredW = 0, 0
			readers := new(int)
			writers := new(int)
			finished := new(int)
			total := o.Readers + o.Writers
			checkState := func() {
				if *writers > 1 {
					s.Failf("%d writers active", *writers)
				}
				if *writers == 1 && *readers > 0 {
					s.Failf("writer active with %d readers", *readers)
				}
			}
			spawn := func(name string, e int, write bool) {
				rng := rand.New(rand.NewSource(o.Seed*1000003 + int64(e)))
				s.Go(name, func() {
					for i := 0; i < o.Ops; i++ {
						hold := time.Duration(20+rng.Intn(400)) * time.Microsecond
						think := time.Duration(rng.Intn(800)) * time.Microsecond
						if write {
							l.WLock()
							*writers++
							*acquiredW++
						} else {
							l.RLock()
							*readers++
							*acquiredR++
						}
						checkState()
						check.Sleep(hold)
						if write {
							*writers--
							l.WUnlock()
						} else {
							*readers--
							l.RUnlock()
						}
						if err := l.CheckInvariants(); err != nil {
							s.Failf("invariants broken after op %d: %v", i, err)
						}
						check.Sleep(think)
					}
					*finished++
				})
			}
			for r := 0; r < o.Readers; r++ {
				spawn(fmt.Sprintf("r%d", r), r, false)
			}
			for w := 0; w < o.Writers; w++ {
				spawn(fmt.Sprintf("w%d", w), o.Readers+w, true)
			}
			s.Go("drain", func() {
				check.WaitOrDone("join", func() bool { return *finished == total }, nil)
				l.WLock()
				*writers++
				*acquiredW++
				checkState()
				*writers--
				l.WUnlock()
			})
		},
		Validate: func() error {
			if err := l.CheckInvariants(); err != nil {
				return err
			}
			s := l.Stats()
			if s.ReaderOps != int64(*acquiredR) {
				return fmt.Errorf("reader op conservation broken: lock counted %d, readers acquired %d",
					s.ReaderOps, *acquiredR)
			}
			if s.WriterOps != int64(*acquiredW) {
				return fmt.Errorf("writer op conservation broken: lock counted %d, writers acquired %d",
					s.WriterOps, *acquiredW)
			}
			return nil
		},
	}
}

// RWOpts configures the RWLock churn workload.
type RWOpts struct {
	Readers int
	Writers int
	Ops     int
	Period  time.Duration
	Seed    int64
	Cancel  bool
}

// RWChurn drives the RW-SCL: readers and writers run deterministic
// scripts of plain and cancellable acquires, asserting the
// reader/writer exclusion protocol and the lock's invariants after
// every operation.
func RWChurn(o RWOpts) check.Workload {
	if o.Readers <= 0 {
		o.Readers = 2
	}
	if o.Writers <= 0 {
		o.Writers = 1
	}
	if o.Ops <= 0 {
		o.Ops = 4
	}
	if o.Period == 0 {
		o.Period = 2 * time.Millisecond
	}
	var l *scl.RWLock
	return check.Workload{
		Name: "rw-churn",
		Setup: func(s *check.Sched) {
			l = scl.NewRWLock(1, 1, o.Period)
			readers := new(int)
			writers := new(int)
			checkState := func() {
				if *writers > 1 {
					s.Failf("%d writers active", *writers)
				}
				if *writers == 1 && *readers > 0 {
					s.Failf("writer active with %d readers", *readers)
				}
			}
			spawn := func(name string, e int, write bool) {
				rng := rand.New(rand.NewSource(o.Seed*999983 + int64(e)))
				s.Go(name, func() {
					for i := 0; i < o.Ops; i++ {
						hold := time.Duration(50+rng.Intn(1000)) * time.Microsecond
						think := time.Duration(rng.Intn(1500)) * time.Microsecond
						cancelAt := time.Duration(rng.Intn(1500)) * time.Microsecond
						useCancel := o.Cancel && rng.Intn(4) == 0
						acquired := true
						if useCancel {
							ctx, cancel := context.WithCancel(context.Background())
							s.Go("canceller", func() {
								check.Sleep(cancelAt)
								cancel()
							})
							var err error
							if write {
								err = l.WLockContext(ctx)
							} else {
								err = l.RLockContext(ctx)
							}
							acquired = err == nil
							cancel()
						} else if write {
							l.WLock()
						} else {
							l.RLock()
						}
						if acquired {
							if write {
								*writers++
							} else {
								*readers++
							}
							checkState()
							check.Sleep(hold)
							if write {
								*writers--
								l.WUnlock()
							} else {
								*readers--
								l.RUnlock()
							}
						}
						if err := l.CheckInvariants(); err != nil {
							s.Failf("invariants broken after op %d: %v", i, err)
						}
						check.Sleep(think)
					}
				})
			}
			for r := 0; r < o.Readers; r++ {
				spawn(fmt.Sprintf("r%d", r), r, false)
			}
			for w := 0; w < o.Writers; w++ {
				spawn(fmt.Sprintf("w%d", w), o.Readers+w, true)
			}
		},
		Validate: func() error { return l.CheckInvariants() },
	}
}

// ManagerOpts configures the lock-table churn workload.
type ManagerOpts struct {
	// Tenants is the number of concurrent tenants (default 3).
	Tenants int
	// Keys is the size of the key space tenants pick from (default 4,
	// spread over 2 stripes so stripe handoffs are explored).
	Keys int
	// Ops is the number of scripted operations per tenant (default 4).
	Ops int
	// Slice is the per-key lock slice (default 2ms).
	Slice time.Duration
	// Seed derives each tenant's deterministic op script.
	Seed int64
	// Cancel mixes in cancellable acquires abandoned mid-flight.
	Cancel bool
	// CloseMid mixes in mid-run tenant Close/re-register churn.
	CloseMid bool
	// GC enables both manager GCs with tight thresholds, pulling lock
	// reap and tenant expiry into the explored schedules.
	GC bool
}

func (o *ManagerOpts) defaults() {
	if o.Tenants <= 0 {
		o.Tenants = 3
	}
	if o.Keys <= 0 {
		o.Keys = 4
	}
	if o.Ops <= 0 {
		o.Ops = 4
	}
	if o.Slice == 0 {
		o.Slice = 2 * time.Millisecond
	}
}

// ManagerChurn drives a striped lock table through multi-key tenant
// churn: tenants run deterministic scripts of plain and cancellable
// acquires over a small key space (two stripes, so the explorer
// interleaves the stripe decision sites mgr.stripe/mgr.materialize/
// mgr.release/mgr.reap), optionally closing and re-registering mid-run.
// On every schedule it asserts per-key mutual exclusion via shared
// holder counters, full manager invariants after each operation
// (stripe books conservation, in-flight agreement between the key and
// tenant views), and clean teardown: once every tenant has closed, no
// identity survives in any stripe's books.
func ManagerChurn(o ManagerOpts) check.Workload {
	o.defaults()
	var m *scl.Manager
	return check.Workload{
		Name: "manager-churn",
		Setup: func(s *check.Sched) {
			mo := scl.ManagerOptions{Stripes: 2, Lock: scl.Options{Slice: o.Slice}}
			if o.GC {
				mo.LockIdle = 5 * time.Millisecond
				mo.TenantIdle = 10 * time.Millisecond
			}
			m = scl.NewManager(mo)
			held := make([]int, o.Keys)
			for e := 0; e < o.Tenants; e++ {
				e := e
				script := o.script(e) // reuse the mutex op mix
				rng := rand.New(rand.NewSource(o.Seed*7901 + int64(e)))
				keys := make([]int, len(script))
				for i := range keys {
					keys[i] = rng.Intn(o.Keys)
				}
				tn := m.Tenant(fmt.Sprintf("t%d", e), 1024)
				s.Go(fmt.Sprintf("t%d", e), func() {
					runManagerScript(s, m, &tn, script, keys, held)
				})
			}
		},
		Validate: func() error {
			if err := m.CheckInvariants(); err != nil {
				return err
			}
			if st := m.Stats(); st.Identities != 0 {
				return fmt.Errorf("%d tenant identities survive after every tenant closed", st.Identities)
			}
			return nil
		},
	}
}

// script reuses the MutexOpts op mix for a ManagerOpts (same kinds,
// same distribution — opTry maps to a plain acquire, the Manager has no
// TryLock).
func (o ManagerOpts) script(e int) []op {
	mo := MutexOpts{Ops: o.Ops, Seed: o.Seed, Cancel: o.Cancel, CloseMid: o.CloseMid}
	mo.defaults()
	return mo.script(e)
}

// runManagerScript executes one tenant's scripted multi-key ops.
func runManagerScript(s *check.Sched, m *scl.Manager, tn **scl.Tenant, script []op, keys []int, held []int) {
	for i, o := range script {
		key := fmt.Sprintf("k%d", keys[i])
		ki := keys[i]
		switch o.kind {
		case opLock, opTry:
			g := (*tn).Lock(key)
			held[ki]++
			if held[ki] != 1 {
				s.Failf("mutual exclusion violated on %s: %d holders", key, held[ki])
			}
			check.Sleep(o.hold)
			held[ki]--
			g.Unlock()
		case opCancel:
			ctx, cancel := context.WithCancel(context.Background())
			s.Go("canceller", func() {
				check.Sleep(o.wait)
				cancel()
			})
			if g, err := (*tn).LockContext(ctx, key); err == nil {
				held[ki]++
				if held[ki] != 1 {
					s.Failf("mutual exclusion violated on %s: %d holders", key, held[ki])
				}
				check.Sleep(o.hold)
				held[ki]--
				g.Unlock()
			}
			cancel()
		case opClose:
			name := (*tn).Name()
			(*tn).Close()
			check.Sleep(o.wait)
			*tn = m.Tenant(name, 1024)
		case opThink:
			check.Sleep(o.wait)
		}
		if err := m.CheckInvariants(); err != nil {
			s.Failf("invariants broken after op %d: %v", i, err)
		}
	}
	(*tn).Close()
	if err := m.CheckInvariants(); err != nil {
		s.Failf("invariants broken after close: %v", err)
	}
}
