package check

import "fmt"

// Workload is one explorable scenario: Setup registers the scenario's
// goroutines on a fresh scheduler (building a fresh lock each run), and
// Validate, if non-nil, runs after the schedule completes — still under
// the installed scheduler, so the lock's virtual clock is live — and
// returns an error to fail the run (end-state assertions: final stats,
// imbalance bounds).
type Workload struct {
	Name     string
	Setup    func(s *Sched)
	Validate func() error
}

// Opts configures randomized exploration.
type Opts struct {
	// Schedules is the number of runs to attempt.
	Schedules int
	// Seed is the base seed; each run derives its own seed from it, and
	// any failure reports the per-run seed for one-shot replay.
	Seed int64
	// Mode selects the chooser: "pct" (default) or "random".
	Mode string
	// Depth is the PCT change-point budget d (default 3).
	Depth int
	// Horizon is the PCT change-point spread (default 512 choice steps).
	Horizon int
	// MaxSteps bounds each run (default 100000).
	MaxSteps int
}

// Summary reports an exploration: runs executed, distinct schedule
// signatures seen, total steps, and the first failure (nil if all runs
// passed). Exploration stops at the first failure.
type Summary struct {
	Runs     int
	Distinct int
	Steps    int64
	Failure  *Failure
}

// Explore runs w under Opts.Schedules randomized schedules. It
// installs/uninstalls the process-global scheduler around every run, so
// callers (tests) must not run concurrently with other users of this
// package.
func Explore(o Opts, w Workload) Summary {
	applyDefaults(&o)
	sigs := make(map[uint64]struct{}, o.Schedules)
	var sum Summary
	for i := 0; i < o.Schedules; i++ {
		seed := RunSeed(o.Seed, i)
		res := runOne(o, w, seed)
		sum.Runs++
		sum.Steps += int64(res.Steps)
		sigs[res.Sig] = struct{}{}
		if res.Failure != nil {
			res.Failure.Seed = seed
			sum.Failure = res.Failure
			break
		}
	}
	sum.Distinct = len(sigs)
	return sum
}

// Replay runs w once under the exact schedule derived from seed (as
// printed in a Failure) and returns the failure it reproduces, or nil.
func Replay(o Opts, w Workload, seed int64) *Failure {
	applyDefaults(&o)
	res := runOne(o, w, seed)
	if res.Failure != nil {
		res.Failure.Seed = seed
	}
	return res.Failure
}

func applyDefaults(o *Opts) {
	if o.Depth <= 0 {
		o.Depth = 3
	}
	if o.Mode == "" {
		o.Mode = "pct"
	}
}

// RunSeed derives the i-th run's seed from a base seed (splitmix64),
// so one base seed names a whole exploration and any single run is
// reproducible from its derived seed alone.
func RunSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

func runOne(o Opts, w Workload, seed int64) Result {
	var ch Chooser
	switch o.Mode {
	case "random":
		ch = NewRandomChooser(seed)
	case "pct":
		ch = NewPCTChooser(seed, o.Depth, o.Horizon)
	default:
		panic(fmt.Sprintf("check: unknown exploration mode %q", o.Mode))
	}
	return runWith(ch, o.MaxSteps, w)
}

// runWith executes one schedule of w under ch with the scheduler
// installed for the duration (including Validate, which needs the
// virtual clock).
func runWith(ch Chooser, maxSteps int, w Workload) Result {
	s := NewSched(ch, maxSteps)
	Install(s)
	defer Uninstall(s)
	w.Setup(s)
	res := s.Run()
	if res.Failure == nil && w.Validate != nil {
		if err := w.Validate(); err != nil {
			res.Failure = &Failure{
				G:     "validate",
				Err:   err,
				Trace: append([]Step(nil), s.trace...),
			}
		}
	}
	return res
}

// DFSOpts configures bounded exhaustive exploration.
type DFSOpts struct {
	// Depth bounds the branching decisions enumerated exhaustively;
	// choices beyond it follow the first enabled goroutine.
	Depth int
	// MaxRuns caps the enumeration (<= 0: unlimited within Depth).
	MaxRuns int
	// MaxSteps bounds each run (default 100000).
	MaxSteps int
}

// ExploreDFS enumerates w's schedules exhaustively up to o.Depth
// branching decisions. Failures report Seed = -(run index) - 1; replay
// them with ReplayDFS using the same Depth.
func ExploreDFS(o DFSOpts, w Workload) Summary {
	if o.Depth <= 0 {
		o.Depth = 6
	}
	ch := newDFSChooser(o.Depth)
	sigs := make(map[uint64]struct{})
	var sum Summary
	for run := 0; ; run++ {
		if o.MaxRuns > 0 && run >= o.MaxRuns {
			break
		}
		res := runWith(ch, o.MaxSteps, w)
		sum.Runs++
		sum.Steps += int64(res.Steps)
		sigs[res.Sig] = struct{}{}
		if res.Failure != nil {
			res.Failure.Seed = int64(-run - 1)
			sum.Failure = res.Failure
			break
		}
		if !ch.advance() {
			break
		}
	}
	sum.Distinct = len(sigs)
	return sum
}

// ReplayDFS re-runs the run-index'th DFS schedule (from a Failure seed
// of -(index)-1) under the same Depth and returns the reproduced
// failure, or nil.
func ReplayDFS(o DFSOpts, w Workload, seed int64) *Failure {
	if seed >= 0 {
		return nil
	}
	target := int(-seed - 1)
	if o.Depth <= 0 {
		o.Depth = 6
	}
	ch := newDFSChooser(o.Depth)
	for run := 0; run <= target; run++ {
		res := runWith(ch, o.MaxSteps, w)
		if run == target {
			if res.Failure != nil {
				res.Failure.Seed = seed
			}
			return res.Failure
		}
		if !ch.advance() {
			return nil
		}
	}
	return nil
}
