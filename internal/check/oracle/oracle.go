// Package oracle is the differential checker: it executes the same
// deterministic script (sim.Script — lock, unlock, timeout/cancel,
// close, and think operations with explicit timings) through two
// independent implementations of the paper's policy and compares what
// they observed:
//
//   - the discrete-event simulator's u-SCL (sim.RunScript), and
//   - the real scl.Mutex, driven under the deterministic checker
//     scheduler (internal/check) with a FirstChooser schedule and the
//     virtual clock, so its timing is as exact as the simulator's.
//
// Both implementations share internal/core's accounting policy but
// nothing else — queueing, slices, handoff, cancellation, and GC are
// implemented twice. Agreement on grant order, timeout outcomes, ban
// counts, and usage shares is therefore real evidence that the library
// implements the policy the simulator (and the paper's experiments)
// predict; disagreement pinpoints which side deviates, on a script
// small enough to read.
//
// # Documented divergences
//
// The two sides are compared modulo the following structural,
// documented divergences; anything else the comparator reports is a
// finding:
//
//   - Cost-model jitter: the simulator charges nanosecond-scale
//     micro-architectural costs (CAS, park/wake, handoff) that the
//     checker's virtual clock does not. Scripts keep decisions
//     millisecond-separated so no discrete outcome (grant order, ban
//     incidence, timeout outcome) depends on them; the residual shows
//     up only in measured hold time, absorbed by ShareTolerance.
//   - Ban length, not count: penalties are computed from usage
//     integrals, which differ by the same nanosecond jitter, so ban
//     lengths differ in their low digits. The comparator checks ban
//     counts per entity, not lengths.
//   - Prefetch: the oracle's sim side runs the parked (no-prefetch)
//     lock variant, because a spinning head waiter could never abandon
//     on timeout while the real LockContext can abandon any queued
//     waiter until the grant lands. Prefetch changes handoff latency
//     (sub-microsecond), not grant order.
//
// A Case may additionally allowlist per-script divergence codes via
// Allowed; each must be justified where the case is defined. The
// curated Cases currently allow none.
package oracle

import (
	"context"
	"fmt"
	"slices"
	"time"

	"scl"
	"scl/internal/check"
	"scl/sim"
	"scl/trace"
)

// Divergence codes the comparator can emit.
const (
	// DivGrantOrder: the global grant orders differ.
	DivGrantOrder = "grant-order"
	// DivTimeouts: per-entity timed-out acquire counts differ.
	DivTimeouts = "timeouts"
	// DivBans: per-entity imposed-penalty counts differ.
	DivBans = "bans"
	// DivHoldShare: an entity's share of total hold time differs by
	// more than ShareTolerance.
	DivHoldShare = "hold-share"
)

// ShareTolerance bounds the acceptable per-entity hold-share gap; it
// absorbs the simulator's nanosecond-scale cost-model jitter on
// millisecond-scale scripts.
const ShareTolerance = 0.05

// Divergence is one comparator finding.
type Divergence struct {
	// Code is one of the Div* constants.
	Code string
	// Detail describes the mismatch with both sides' values.
	Detail string
}

// String renders the divergence.
func (d Divergence) String() string { return d.Code + ": " + d.Detail }

// Compare checks two executions of one script for policy equivalence
// and returns every divergence (empty = equivalent).
func Compare(simR, realR sim.ScriptResult) []Divergence {
	var out []Divergence
	if !slices.Equal(simR.Grants, realR.Grants) {
		out = append(out, Divergence{DivGrantOrder,
			fmt.Sprintf("sim %v, real %v", simR.Grants, realR.Grants)})
	}
	if !slices.Equal(simR.Timeouts, realR.Timeouts) {
		out = append(out, Divergence{DivTimeouts,
			fmt.Sprintf("sim %v, real %v", simR.Timeouts, realR.Timeouts)})
	}
	if !slices.Equal(simR.Bans, realR.Bans) {
		out = append(out, Divergence{DivBans,
			fmt.Sprintf("sim %v, real %v", simR.Bans, realR.Bans)})
	}
	for e := range simR.Hold {
		a, b := simR.HoldShare(e), realR.HoldShare(e)
		if d := a - b; d > ShareTolerance || d < -ShareTolerance {
			out = append(out, Divergence{DivHoldShare,
				fmt.Sprintf("entity %d: sim %.3f, real %.3f", e, a, b)})
		}
	}
	return out
}

// RunSim executes the script on the simulator side.
func RunSim(s sim.Script) sim.ScriptResult { return sim.RunScript(s) }

// RunReal executes the script against the real scl.Mutex under the
// deterministic checker: entities become managed goroutines on the
// virtual clock, scheduled by a FirstChooser (with millisecond-
// separated scripts at most one goroutine is enabled at a time, so the
// schedule is forced by the script's timings, as in the simulator). It
// returns an error if the run fails (deadlock, invariant violation).
func RunReal(s sim.Script) (sim.ScriptResult, error) {
	slice := s.Slice
	if slice == 0 {
		slice = 2 * time.Millisecond
	}
	res := sim.ScriptResult{
		Timeouts: make([]int, len(s.Entities)),
		Bans:     make([]int, len(s.Entities)),
		Hold:     make([]time.Duration, len(s.Entities)),
	}
	ring := trace.NewRing(1 << 14)
	var m *scl.Mutex
	// idToEnt maps live handle IDs to entity indices; written only from
	// managed goroutines (serial under the checker) and the pre-Run
	// setup below.
	idToEnt := make(map[int64]int)

	sched := check.NewSched(check.NewFirstChooser(), 0)
	check.Install(sched)
	defer check.Uninstall(sched)

	m = scl.NewMutex(scl.Options{Slice: slice, Tracer: ring, Name: "oracle"})
	for i, ent := range s.Entities {
		i, ent := i, ent
		h := m.Register()
		idToEnt[h.ID()] = i
		sched.Go(ent.Name, func() {
			defer func() {
				if h != nil {
					h.Close()
				}
			}()
			check.Sleep(ent.Start)
			for _, op := range ent.Ops {
				switch op.Kind {
				case sim.OpThink:
					check.Sleep(op.Think)
				case sim.OpAcquire, sim.OpAcquireTimeout:
					if h == nil {
						h = m.Register()
						idToEnt[h.ID()] = i
					}
					if op.Kind == sim.OpAcquireTimeout {
						ctx, cancel := context.WithCancel(context.Background())
						sched.Go(ent.Name+".cancel", func() {
							check.Sleep(op.Timeout)
							cancel()
						})
						err := h.LockContext(ctx)
						cancel()
						if err != nil {
							res.Timeouts[i]++
							continue
						}
					} else {
						h.Lock()
					}
					res.Grants = append(res.Grants, i)
					at, _ := check.Now()
					check.Sleep(op.Hold)
					now, _ := check.Now()
					res.Hold[i] += now - at
					h.Unlock()
				case sim.OpClose:
					h.Close()
					h = nil
				case sim.OpDo:
					if h == nil {
						h = m.Register()
						idToEnt[h.ID()] = i
					}
					var start, end time.Duration
					h.Do(func() {
						start, _ = check.Now()
						check.Sleep(op.Hold)
						end, _ = check.Now()
					})
					res.Grants = append(res.Grants, i)
					res.Hold[i] += end - start
				}
			}
		})
	}
	r := sched.Run()
	if r.Failure != nil {
		return res, fmt.Errorf("real-side run failed: %v", r.Failure)
	}
	if err := m.CheckInvariants(); err != nil {
		return res, fmt.Errorf("real-side invariants: %w", err)
	}
	for _, ev := range ring.Events() {
		if ev.Kind == trace.KindBan {
			if i, ok := idToEnt[ev.Entity]; ok {
				res.Bans[i]++
			}
		}
	}
	return res, nil
}

// RunRealRW executes an RW script against the real scl.RWLock under
// the deterministic checker, mirroring sim.RunRWScript.
func RunRealRW(s sim.RWScript) (sim.ScriptResult, error) {
	period := s.Period
	if period == 0 {
		period = 2 * time.Millisecond
	}
	rw, ww := s.ReadWeight, s.WriteWeight
	if rw == 0 {
		rw = 1
	}
	if ww == 0 {
		ww = 1
	}
	res := sim.ScriptResult{
		Timeouts: make([]int, len(s.Entities)),
		Bans:     make([]int, len(s.Entities)),
		Hold:     make([]time.Duration, len(s.Entities)),
	}
	sched := check.NewSched(check.NewFirstChooser(), 0)
	check.Install(sched)
	defer check.Uninstall(sched)

	l := scl.NewRWLock(rw, ww, period)
	for i, ent := range s.Entities {
		i, ent := i, ent
		sched.Go(ent.Name, func() {
			check.Sleep(ent.Start)
			for _, op := range ent.Ops {
				switch op.Kind {
				case sim.OpThink:
					check.Sleep(op.Think)
				case sim.OpAcquire:
					if ent.Writer {
						l.WLock()
					} else {
						l.RLock()
					}
					res.Grants = append(res.Grants, i)
					at, _ := check.Now()
					check.Sleep(op.Hold)
					now, _ := check.Now()
					res.Hold[i] += now - at
					if ent.Writer {
						l.WUnlock()
					} else {
						l.RUnlock()
					}
				}
			}
		})
	}
	r := sched.Run()
	if r.Failure != nil {
		return res, fmt.Errorf("real-side RW run failed: %v", r.Failure)
	}
	if err := l.CheckInvariants(); err != nil {
		return res, fmt.Errorf("real-side RW invariants: %w", err)
	}
	return res, nil
}

// RWCase is one curated RW-SCL oracle scenario.
type RWCase struct {
	// Name identifies the case in test output and the sclcheck CLI.
	Name string
	// Script is the shared reader/writer workload.
	Script sim.RWScript
	// Allowed lists per-script documented divergence codes.
	Allowed []string
}

// Run executes the RW case on both sides and splits the comparator's
// findings into allowed and undocumented divergences.
func (c RWCase) Run() (allowed, undocumented []Divergence, err error) {
	simR := sim.RunRWScript(c.Script)
	realR, err := RunRealRW(c.Script)
	if err != nil {
		return nil, nil, err
	}
	for _, d := range Compare(simR, realR) {
		if slices.Contains(c.Allowed, d.Code) {
			allowed = append(allowed, d)
		} else {
			undocumented = append(undocumented, d)
		}
	}
	return allowed, undocumented, nil
}

// Case is one curated oracle scenario.
type Case struct {
	// Name identifies the case in test output and the sclcheck CLI.
	Name string
	// Script is the shared workload.
	Script sim.Script
	// Allowed lists per-script documented divergence codes (see the
	// package comment); empty means the sides must agree exactly.
	Allowed []string
}

// Run executes the case on both sides and splits the comparator's
// findings into allowed (documented) and undocumented divergences.
func (c Case) Run() (allowed, undocumented []Divergence, err error) {
	simR := RunSim(c.Script)
	realR, err := RunReal(c.Script)
	if err != nil {
		return nil, nil, err
	}
	for _, d := range Compare(simR, realR) {
		if slices.Contains(c.Allowed, d.Code) {
			allowed = append(allowed, d)
		} else {
			undocumented = append(undocumented, d)
		}
	}
	return allowed, undocumented, nil
}

// Cases returns the curated differential scenarios. Timings are
// millisecond-scale and well separated (see the package comment).
func Cases() []Case {
	ms := time.Millisecond
	acq := func(hold time.Duration) sim.ScriptOp { return sim.ScriptOp{Kind: sim.OpAcquire, Hold: hold} }
	think := func(d time.Duration) sim.ScriptOp { return sim.ScriptOp{Kind: sim.OpThink, Think: d} }
	acqTO := func(hold, to time.Duration) sim.ScriptOp {
		return sim.ScriptOp{Kind: sim.OpAcquireTimeout, Hold: hold, Timeout: to}
	}
	closeOp := sim.ScriptOp{Kind: sim.OpClose}
	return []Case{
		{
			// One entity, no contention: grants and full ownership agree.
			Name: "uncontended",
			Script: sim.Script{Entities: []sim.ScriptEntity{
				{Name: "a", Ops: []sim.ScriptOp{acq(1 * ms), think(1 * ms), acq(1 * ms), think(1 * ms), acq(1 * ms)}},
			}},
		},
		{
			// Two equal entities alternate at slice granularity; the slice
			// policy, not arrival order, decides the grant sequence. Thinks
			// are 1.6ms so re-requests land 0.6ms past slice boundaries —
			// no decision is a timing tie.
			Name: "handoff",
			Script: sim.Script{Entities: []sim.ScriptEntity{
				{Name: "a", Ops: []sim.ScriptOp{acq(1 * ms), think(1600 * time.Microsecond), acq(1 * ms), think(1600 * time.Microsecond), acq(1 * ms), think(1600 * time.Microsecond), acq(1 * ms)}},
				{Name: "b", Start: 300 * time.Microsecond, Ops: []sim.ScriptOp{acq(1 * ms), think(1600 * time.Microsecond), acq(1 * ms), think(1600 * time.Microsecond), acq(1 * ms), think(1600 * time.Microsecond), acq(1 * ms)}},
			}},
		},
		{
			// An over-user (7ms holds against a 2ms slice) is banned on both
			// sides; the victim's share recovers identically.
			Name: "ban",
			Script: sim.Script{Entities: []sim.ScriptEntity{
				{Name: "hog", Ops: []sim.ScriptOp{acq(7 * ms), think(1 * ms), acq(7 * ms), think(1 * ms), acq(7 * ms)}},
				{Name: "victim", Start: 500 * time.Microsecond, Ops: []sim.ScriptOp{acq(1 * ms), think(500 * time.Microsecond), acq(1 * ms), think(500 * time.Microsecond), acq(1 * ms), think(500 * time.Microsecond), acq(1 * ms)}},
			}},
		},
		{
			// A cancellable acquire times out under a long hold on both
			// sides, then succeeds with a generous deadline.
			Name: "cancel",
			Script: sim.Script{Entities: []sim.ScriptEntity{
				{Name: "holder", Ops: []sim.ScriptOp{acq(10 * ms), think(5 * ms), acq(1 * ms)}},
				{Name: "waiter", Start: 1 * ms, Ops: []sim.ScriptOp{acqTO(1*ms, 3*ms), think(1 * ms), acqTO(1*ms, 50*ms)}},
			}},
		},
		{
			// Mid-script close: the entity's usage history leaves the books
			// and it re-registers fresh; the peer's grants are unaffected.
			Name: "close",
			Script: sim.Script{Entities: []sim.ScriptEntity{
				{Name: "churner", Ops: []sim.ScriptOp{acq(1 * ms), think(1200 * time.Microsecond), closeOp, think(2500 * time.Microsecond), acq(1 * ms)}},
				{Name: "steady", Start: 300 * time.Microsecond, Ops: []sim.ScriptOp{acq(1 * ms), think(1300 * time.Microsecond), acq(1 * ms), think(1300 * time.Microsecond), acq(1 * ms)}},
			}},
		},
	}
}

// RWCases returns the curated RW-SCL differential scenarios.
func RWCases() []RWCase {
	acq := func(hold time.Duration) sim.ScriptOp { return sim.ScriptOp{Kind: sim.OpAcquire, Hold: hold} }
	think := func(d time.Duration) sim.ScriptOp { return sim.ScriptOp{Kind: sim.OpThink, Think: d} }
	return []RWCase{
		{
			// One reader and one writer at equal weights: phase alternation
			// decides the grant order on both sides.
			Name: "rw-basic",
			Script: sim.RWScript{Entities: []sim.RWScriptEntity{
				{Name: "r", Start: 200 * time.Microsecond, Ops: []sim.ScriptOp{acq(500 * time.Microsecond), think(1700 * time.Microsecond), acq(500 * time.Microsecond), think(1700 * time.Microsecond), acq(500 * time.Microsecond)}},
				{Name: "w", Writer: true, Start: 500 * time.Microsecond, Ops: []sim.ScriptOp{acq(500 * time.Microsecond), think(1700 * time.Microsecond), acq(500 * time.Microsecond), think(1700 * time.Microsecond), acq(500 * time.Microsecond)}},
			}},
		},
		{
			// Two staggered readers share read phases while a writer takes
			// the write phases; reader grants within one phase stay in
			// arrival order.
			Name: "rw-shared",
			Script: sim.RWScript{Entities: []sim.RWScriptEntity{
				{Name: "r0", Start: 200 * time.Microsecond, Ops: []sim.ScriptOp{acq(400 * time.Microsecond), think(1600 * time.Microsecond), acq(400 * time.Microsecond), think(1600 * time.Microsecond), acq(400 * time.Microsecond)}},
				{Name: "r1", Start: 450 * time.Microsecond, Ops: []sim.ScriptOp{acq(400 * time.Microsecond), think(1600 * time.Microsecond), acq(400 * time.Microsecond), think(1600 * time.Microsecond), acq(400 * time.Microsecond)}},
				{Name: "w", Writer: true, Start: 700 * time.Microsecond, Ops: []sim.ScriptOp{acq(600 * time.Microsecond), think(1800 * time.Microsecond), acq(600 * time.Microsecond), think(1800 * time.Microsecond), acq(600 * time.Microsecond)}},
			}},
		},
	}
}
