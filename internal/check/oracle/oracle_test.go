package oracle

import (
	"testing"

	"scl/sim"
)

// TestOracleCases runs every curated script through the simulator and
// the real lock and requires zero undocumented divergences.
func TestOracleCases(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			allowed, undocumented, err := c.Run()
			if err != nil {
				t.Fatalf("oracle run: %v", err)
			}
			for _, d := range allowed {
				t.Logf("documented divergence: %v", d)
			}
			for _, d := range undocumented {
				t.Errorf("undocumented divergence: %v", d)
			}
		})
	}
}

// TestOracleRWCases runs the reader/writer scripts through the
// simulated and real RW-SCL and requires zero undocumented divergences.
func TestOracleRWCases(t *testing.T) {
	for _, c := range RWCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if r := sim.RunRWScript(c.Script); len(r.Grants) == 0 {
				t.Fatalf("RW script grants nothing; the comparison would be vacuous")
			}
			allowed, undocumented, err := c.Run()
			if err != nil {
				t.Fatalf("oracle run: %v", err)
			}
			for _, d := range allowed {
				t.Logf("documented divergence: %v", d)
			}
			for _, d := range undocumented {
				t.Errorf("undocumented divergence: %v", d)
			}
		})
	}
}

// TestOracleSidesObserve sanity-checks that the scripts exercise what
// they claim: the ban case bans, the cancel case times out.
func TestOracleSidesObserve(t *testing.T) {
	for _, c := range Cases() {
		switch c.Name {
		case "ban":
			r := RunSim(c.Script)
			if r.Bans[0] == 0 {
				t.Errorf("ban script imposed no bans on the hog: %v", r)
			}
		case "cancel":
			r := RunSim(c.Script)
			if r.Timeouts[1] != 1 {
				t.Errorf("cancel script: want exactly 1 timeout for the waiter, got %v", r)
			}
			if len(r.Grants) == 0 {
				t.Errorf("cancel script: second acquire should succeed: %v", r)
			}
		}
	}
}
