package check

import "math/rand"

// Choice describes one enabled goroutine offered to a Chooser: its
// stable id (registration order) and the schedule point it would run
// from.
type Choice struct {
	G     int
	Point string
}

// Chooser picks the next goroutine to run among the enabled set. Next
// is called only when more than one goroutine is enabled; step is the
// global step index. Implementations must be deterministic functions of
// their construction parameters and the call sequence, so a seed
// replays a schedule exactly.
type Chooser interface {
	Next(step int, cands []Choice) int
}

// randomChooser picks uniformly at random — the baseline explorer.
type randomChooser struct{ rng *rand.Rand }

// NewRandomChooser returns a uniform random chooser seeded with seed.
func NewRandomChooser(seed int64) Chooser {
	return &randomChooser{rng: rand.New(rand.NewSource(seed))}
}

func (c *randomChooser) Next(_ int, cands []Choice) int { return c.rng.Intn(len(cands)) }

// pctChooser implements PCT-style exploration (Burckhardt et al., "A
// Randomized Scheduler with Probabilistic Guarantees of Finding Bugs"):
// each goroutine gets a random priority, the highest-priority enabled
// goroutine always runs, and at d randomly chosen change points the
// running choice is demoted below everyone else. For a bug of depth d
// this finds it with probability >= 1/(n * k^(d-1)) per run, which in
// practice surfaces rare orderings far faster than uniform choice.
type pctChooser struct {
	rng     *rand.Rand
	prio    map[int]int
	low     int
	changes map[int]struct{}
	calls   int
}

// NewPCTChooser returns a PCT chooser with depth d change points spread
// over an assumed horizon of horizon choice steps (<= 0 selects 512).
func NewPCTChooser(seed int64, d, horizon int) Chooser {
	if horizon <= 0 {
		horizon = 512
	}
	rng := rand.New(rand.NewSource(seed))
	changes := make(map[int]struct{}, d)
	for i := 0; i < d; i++ {
		changes[rng.Intn(horizon)] = struct{}{}
	}
	return &pctChooser{
		rng:     rng,
		prio:    make(map[int]int),
		low:     -1,
		changes: changes,
	}
}

func (c *pctChooser) Next(_ int, cands []Choice) int {
	best := 0
	bestPrio := c.prioOf(cands[0].G)
	for i := 1; i < len(cands); i++ {
		if p := c.prioOf(cands[i].G); p > bestPrio {
			best, bestPrio = i, p
		}
	}
	if _, isChange := c.changes[c.calls]; isChange {
		// Demote the current winner below every priority ever issued and
		// re-pick, flipping the order at this point in the schedule.
		c.prio[cands[best].G] = c.low
		c.low--
		best = 0
		bestPrio = c.prioOf(cands[0].G)
		for i := 1; i < len(cands); i++ {
			if p := c.prioOf(cands[i].G); p > bestPrio {
				best, bestPrio = i, p
			}
		}
	}
	c.calls++
	return best
}

// prioOf lazily assigns a random positive priority the first time a
// goroutine appears (goroutines spawned mid-run — timers, helpers —
// are first seen in deterministic order, so assignment replays).
func (c *pctChooser) prioOf(g int) int {
	p, ok := c.prio[g]
	if !ok {
		p = 1 + c.rng.Intn(1<<20)
		c.prio[g] = p
	}
	return p
}

// dfsNode records one branching decision of the current DFS run.
type dfsNode struct {
	chosen int
	width  int
}

// dfsChooser enumerates schedules exhaustively up to a branching-depth
// bound: each run follows a forced prefix then takes the first enabled
// choice; after the run the deepest prefix node with an untried
// alternative advances. Complete for schedules whose branching decisions
// all fall within depth; beyond the bound the first choice is taken.
type dfsChooser struct {
	depth  int
	prefix []int
	path   []dfsNode
}

func newDFSChooser(depth int) *dfsChooser { return &dfsChooser{depth: depth} }

func (c *dfsChooser) Next(_ int, cands []Choice) int {
	i := len(c.path)
	pick := 0
	if i < len(c.prefix) {
		pick = c.prefix[i]
		if pick >= len(cands) {
			pick = len(cands) - 1
		}
	}
	c.path = append(c.path, dfsNode{chosen: pick, width: len(cands)})
	return pick
}

// advance moves to the next unexplored branch, returning false when the
// bounded space is exhausted. Call between runs.
func (c *dfsChooser) advance() bool {
	for i := len(c.path) - 1; i >= 0; i-- {
		if i >= c.depth {
			continue
		}
		n := c.path[i]
		if n.chosen+1 < n.width {
			prefix := make([]int, i+1)
			for j := 0; j < i; j++ {
				prefix[j] = c.path[j].chosen
			}
			prefix[i] = n.chosen + 1
			c.prefix = prefix
			c.path = c.path[:0]
			return true
		}
	}
	return false
}

// firstChooser always picks the first (lowest-id) enabled goroutine —
// the deterministic "FIFO" schedule the differential oracle runs under.
type firstChooser struct{}

// NewFirstChooser returns the deterministic first-enabled chooser.
func NewFirstChooser() Chooser { return firstChooser{} }

func (firstChooser) Next(_ int, _ []Choice) int { return 0 }
