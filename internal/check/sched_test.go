package check

import (
	"sync"
	"testing"
	"time"
)

// runUnder is a test helper: build a Sched with ch, install it,
// register via setup, run, uninstall.
func runUnder(t *testing.T, ch Chooser, setup func(s *Sched)) Result {
	t.Helper()
	s := NewSched(ch, 0)
	Install(s)
	defer Uninstall(s)
	setup(s)
	return s.Run()
}

// TestSerialExecution: two goroutines incrementing a plain (unsynchronized)
// counter through schedule points never race, because execution is serial.
func TestSerialExecution(t *testing.T) {
	counter := 0
	res := runUnder(t, NewRandomChooser(1), func(s *Sched) {
		for i := 0; i < 2; i++ {
			s.Go("inc", func() {
				for j := 0; j < 10; j++ {
					v := counter
					Point("between-load-and-store")
					counter = v + 1
				}
			})
		}
	})
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	// Lost updates are expected (that's the point of the race window);
	// the counter must be between 10 and 20.
	if counter < 10 || counter > 20 {
		t.Fatalf("counter = %d, want in [10, 20]", counter)
	}
}

// TestLostUpdateFound: the explorer must find the interleaving where the
// unsynchronized increment loses an update — proof it explores schedules
// that differ observably.
func TestLostUpdateFound(t *testing.T) {
	w := Workload{
		Name: "lost-update",
		Setup: func(s *Sched) {
			counter := new(int)
			done := new(int)
			for i := 0; i < 2; i++ {
				s.Go("inc", func() {
					v := *counter
					Point("gap")
					*counter = v + 1
					*done++
					if *done == 2 && *counter != 2 {
						s.Failf("lost update: counter = %d", *counter)
					}
				})
			}
		},
	}
	sum := Explore(Opts{Schedules: 200, Seed: 42}, w)
	if sum.Failure == nil {
		t.Fatalf("explorer missed the lost update in %d runs (%d distinct)", sum.Runs, sum.Distinct)
	}
	t.Logf("lost update found after %d runs, seed %d", sum.Runs, sum.Failure.Seed)
	// And the printed seed must replay it one-shot.
	if f := Replay(Opts{}, w, sum.Failure.Seed); f == nil {
		t.Fatalf("seed %d did not replay the failure", sum.Failure.Seed)
	}
}

// TestDFSFindsLostUpdate: the bounded exhaustive mode finds the same bug
// without randomness.
func TestDFSFindsLostUpdate(t *testing.T) {
	w := Workload{
		Setup: func(s *Sched) {
			counter := new(int)
			done := new(int)
			for i := 0; i < 2; i++ {
				s.Go("inc", func() {
					v := *counter
					Point("gap")
					*counter = v + 1
					*done++
					if *done == 2 && *counter != 2 {
						s.Failf("lost update: counter = %d", *counter)
					}
				})
			}
		},
	}
	sum := ExploreDFS(DFSOpts{Depth: 8}, w)
	if sum.Failure == nil {
		t.Fatalf("DFS missed the lost update in %d runs", sum.Runs)
	}
	if f := ReplayDFS(DFSOpts{Depth: 8}, w, sum.Failure.Seed); f == nil {
		t.Fatalf("DFS seed %d did not replay", sum.Failure.Seed)
	}
}

// TestDeterministicReplay: the same seed yields the same schedule
// signature; different seeds eventually yield different ones.
func TestDeterministicReplay(t *testing.T) {
	setup := func(s *Sched) {
		for i := 0; i < 3; i++ {
			s.Go("worker", func() {
				for j := 0; j < 5; j++ {
					Point("step")
				}
			})
		}
	}
	sig := func(seed int64) uint64 {
		return runUnder(t, NewRandomChooser(seed), setup).Sig
	}
	if a, b := sig(7), sig(7); a != b {
		t.Fatalf("same seed, different signatures: %x vs %x", a, b)
	}
	distinct := map[uint64]struct{}{}
	for seed := int64(0); seed < 20; seed++ {
		distinct[sig(seed)] = struct{}{}
	}
	if len(distinct) < 2 {
		t.Fatalf("20 seeds produced %d distinct schedules", len(distinct))
	}
}

// TestVirtualTime: sleeps advance the virtual clock instantly and in
// order, and Now reflects it.
func TestVirtualTime(t *testing.T) {
	var order []string
	res := runUnder(t, NewFirstChooser(), func(s *Sched) {
		s.Go("slow", func() {
			Sleep(100 * time.Millisecond)
			order = append(order, "slow")
		})
		s.Go("fast", func() {
			Sleep(10 * time.Millisecond)
			order = append(order, "fast")
		})
	})
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
	if len(order) != 2 || order[0] != "fast" || order[1] != "slow" {
		t.Fatalf("wake order = %v, want [fast slow]", order)
	}
	if res.Now != 100*time.Millisecond {
		t.Fatalf("final virtual clock = %v, want 100ms", res.Now)
	}
}

// TestTimers: AfterFunc fires at its virtual due time; Stop prevents
// firing; Reset re-arms.
func TestTimers(t *testing.T) {
	var fired []string
	res := runUnder(t, NewFirstChooser(), func(s *Sched) {
		s.Go("arm", func() {
			tm, ok := AfterFunc(50*time.Millisecond, func() {
				now, _ := Now()
				if now != 70*time.Millisecond {
					s.Failf("timer fired at %v, want 70ms", now)
				}
				fired = append(fired, "a")
			})
			if !ok {
				s.Failf("AfterFunc not handled under scheduler")
			}
			tm.Reset(70 * time.Millisecond) // supersede the 50ms firing
			stopped, ok2 := AfterFunc(10*time.Millisecond, func() {
				fired = append(fired, "never")
			})
			if !ok2 {
				s.Failf("AfterFunc not handled")
			}
			stopped.Stop()
		})
	})
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("fired = %v, want [a]", fired)
	}
}

// TestVirtualMutex: LockMutex provides exclusion across schedule points.
func TestVirtualMutex(t *testing.T) {
	var mu sync.Mutex
	inCS := 0
	res := runUnder(t, NewRandomChooser(3), func(s *Sched) {
		for i := 0; i < 3; i++ {
			s.Go("locker", func() {
				for j := 0; j < 4; j++ {
					if !LockMutex(&mu) {
						s.Failf("LockMutex not handled under scheduler")
					}
					inCS++
					if inCS != 1 {
						s.Failf("mutual exclusion violated: %d in critical section", inCS)
					}
					Point("in-cs")
					inCS--
					UnlockMutex(&mu)
				}
			})
		}
	})
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
}

// TestDeadlockDetected: a goroutine blocking on a predicate nobody
// satisfies is reported as a deadlock, not a hang.
func TestDeadlockDetected(t *testing.T) {
	res := runUnder(t, NewFirstChooser(), func(s *Sched) {
		s.Go("stuck", func() {
			WaitOrDone("never", func() bool { return false }, nil)
		})
	})
	if res.Failure == nil {
		t.Fatal("deadlock not detected")
	}
}

// TestSleepOrDone covers both outcomes: cancellation before the
// deadline, and deadline expiry.
func TestSleepOrDone(t *testing.T) {
	res := runUnder(t, NewFirstChooser(), func(s *Sched) {
		done := make(chan struct{})
		s.Go("sleeper", func() {
			cancelled, handled := SleepOrDone(time.Second, done)
			if !handled || !cancelled {
				s.Failf("want cancelled wake, got cancelled=%v handled=%v", cancelled, handled)
			}
			cancelled, _ = SleepOrDone(time.Millisecond, make(chan struct{}))
			if cancelled {
				s.Failf("deadline expiry misreported as cancellation")
			}
		})
		s.Go("canceller", func() {
			Sleep(10 * time.Millisecond)
			close(done)
		})
	})
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
}

// TestHooksInertWithoutScheduler: every hook must fall through when no
// scheduler is installed.
func TestHooksInertWithoutScheduler(t *testing.T) {
	if Enabled() {
		t.Fatal("scheduler unexpectedly installed")
	}
	Point("noop")
	if _, ok := Now(); ok {
		t.Fatal("Now handled without scheduler")
	}
	if Sleep(time.Hour) {
		t.Fatal("Sleep handled without scheduler")
	}
	if _, handled := SleepOrDone(time.Hour, nil); handled {
		t.Fatal("SleepOrDone handled without scheduler")
	}
	if _, handled := WaitOrDone("x", func() bool { return true }, nil); handled {
		t.Fatal("WaitOrDone handled without scheduler")
	}
	var mu sync.Mutex
	if LockMutex(&mu) || UnlockMutex(&mu) {
		t.Fatal("mutex hooks handled without scheduler")
	}
	if _, ok := AfterFunc(time.Hour, func() {}); ok {
		t.Fatal("AfterFunc handled without scheduler")
	}
}

// TestWaitChan: grant-token waits wake on a buffered send and consume
// the token; cancelled waits leave it.
func TestWaitChan(t *testing.T) {
	res := runUnder(t, NewFirstChooser(), func(s *Sched) {
		ch := make(chan struct{}, 1)
		done := make(chan struct{})
		s.Go("waiter", func() {
			if !WaitChan("grant", ch) {
				s.Failf("WaitChan not handled")
			}
			if len(ch) != 0 {
				s.Failf("token not consumed")
			}
			ok, _ := WaitChanOrDone("grant2", ch, done)
			if ok {
				s.Failf("want cancellation")
			}
			if len(ch) != 1 {
				s.Failf("cancelled wait must not consume the token")
			}
		})
		s.Go("granter", func() {
			Sleep(time.Millisecond)
			ch <- struct{}{}
			Sleep(time.Millisecond)
			// No schedule point between these two: the waiter wakes seeing
			// both a buffered grant and a closed done — the raced-grant
			// window, where cancellation must win and leave the token.
			ch <- struct{}{}
			close(done)
		})
	})
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
}
