package check

import (
	"container/heap"
	"time"
)

// Timer is a virtual-clock replacement for *time.AfterFunc timers. Its
// Reset and Stop signatures match time.Timer so lock code can hold
// either behind a two-method interface. When the timer fires, f runs as
// a new managed goroutine (the scheduler decides when it interleaves,
// exactly the slice-timer-vs-fast-path races the checker targets).
//
// All methods must be called with the execution token held (from a
// managed goroutine) or while the scheduler is quiescent; a generation
// counter resolves Reset/Stop races against an already-queued firing,
// mirroring time.Timer's contract for AfterFunc timers.
type Timer struct {
	s       *Sched
	f       func()
	name    string
	gen     uint64
	pending bool
}

// AfterFunc arms a virtual timer calling f after d on the virtual
// clock. handled=false (and a nil Timer) when the caller is unmanaged —
// the caller must fall back to time.AfterFunc.
func AfterFunc(d time.Duration, f func()) (*Timer, bool) {
	s, _ := cur()
	if s == nil {
		return nil, false
	}
	t := &Timer{s: s, f: f, name: "timer"}
	t.arm(d)
	return t, true
}

// Reset re-arms the timer for d from the current virtual time,
// reporting whether it had been pending (time.Timer semantics).
func (t *Timer) Reset(d time.Duration) bool {
	was := t.pending
	t.arm(d)
	return was
}

// Stop disarms the timer, reporting whether it had been pending. A
// firing already chosen by the scheduler cannot be stopped (it runs as
// its own goroutine), matching the real AfterFunc race.
func (t *Timer) Stop() bool {
	was := t.pending
	t.gen++
	t.pending = false
	return was
}

func (t *Timer) arm(d time.Duration) {
	t.gen++
	t.pending = true
	s := t.s
	s.timerSeq++
	heap.Push(&s.timers, timerEntry{
		at:  s.now + d,
		seq: s.timerSeq,
		t:   t,
		gen: t.gen,
	})
}

// fireTimers launches every due, still-valid timer callback as a
// managed goroutine. Stale heap entries (superseded by Reset/Stop) are
// discarded by the generation check.
func (s *Sched) fireTimers() {
	for {
		e, ok := s.timers.peek()
		if !ok || e.at > s.now {
			return
		}
		heap.Pop(&s.timers)
		if e.gen != e.t.gen || !e.t.pending {
			continue
		}
		e.t.pending = false
		s.Go(e.t.name, e.t.f)
	}
}

// timerEntry is one armed firing in the timer heap, ordered by (at,
// seq) for deterministic tie-breaks.
type timerEntry struct {
	at  time.Duration
	seq int
	t   *Timer
	gen uint64
}

type timerHeap []timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)        { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h timerHeap) peek() (timerEntry, bool) {
	if len(h) == 0 {
		return timerEntry{}, false
	}
	return h[0], true
}
