package check

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"
)

// gState tracks a managed goroutine through its cooperative lifecycle.
type gState int

const (
	gRunnable gState = iota // holds no token, eligible to run
	gRunning                // holds the execution token
	gBlocked                // waiting on a predicate and/or deadline
	gDone                   // function returned (or teardown unwound it)
)

// goroutine is the scheduler's record of one managed goroutine.
type goroutine struct {
	id     int
	name   string
	resume chan struct{}
	state  gState
	// point labels where the goroutine last yielded ("start" before its
	// first step); trace entries pair it with the goroutine name.
	point string
	// ready, when blocked, enables the goroutine once it reports true.
	// Evaluated only while no managed goroutine runs.
	ready func() bool
	// deadline, when blocked and >= 0, enables the goroutine once the
	// virtual clock reaches it (sleeps and timer-like waits).
	deadline time.Duration
}

// stopSched is the teardown panic sentinel: resumed goroutines unwind
// their stacks with it (running their defers) instead of continuing.
type stopSched struct{}

// schedFail carries a workload invariant failure out of a managed
// goroutine (raised by Sched.Failf, recovered by the wrapper).
type schedFail struct{ err error }

// Step is one entry of an executed schedule: which goroutine ran from
// which schedule point.
type Step struct {
	G     string
	Point string
}

// Failure describes one failed run: the offending goroutine, the error
// (invariant violation, deadlock, panic), and the executed schedule up
// to the failure. Seed is filled in by the explorer so the run can be
// replayed one-shot.
type Failure struct {
	Seed  int64
	G     string
	Err   error
	Stack []byte
	Trace []Step
}

// String renders the failure with its replay seed and the tail of the
// schedule that produced it.
func (f *Failure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule failure (replay seed %d) in %s: %v\n", f.Seed, f.G, f.Err)
	tail := f.Trace
	const keep = 40
	if len(tail) > keep {
		fmt.Fprintf(&b, "  ... %d earlier steps elided ...\n", len(tail)-keep)
		tail = tail[len(tail)-keep:]
	}
	for i, st := range tail {
		fmt.Fprintf(&b, "  %4d %s @ %s\n", len(f.Trace)-len(tail)+i, st.G, st.Point)
	}
	if len(f.Stack) > 0 {
		fmt.Fprintf(&b, "%s", f.Stack)
	}
	return b.String()
}

// Result summarizes one Sched.Run: steps executed, the schedule
// signature (hash of the executed (goroutine, point) sequence, used by
// the explorer to count distinct schedules), the final virtual clock,
// and the failure if any.
type Result struct {
	Steps   int
	Sig     uint64
	Now     time.Duration
	Failure *Failure
}

// Sched is a deterministic cooperative scheduler. Managed goroutines
// (registered with Go) run one at a time; at every schedule point the
// token returns here and the Chooser picks which enabled goroutine runs
// next. Blocking is by predicate and/or virtual deadline; when nothing
// is enabled the virtual clock jumps to the next deadline or timer.
// A Sched is single-use: construct, Install, Go, Run, Uninstall.
type Sched struct {
	chooser  Chooser
	maxSteps int

	gs      []*goroutine
	current *goroutine
	yield   chan struct{}

	now      time.Duration
	timers   timerHeap
	timerSeq int

	mutexes map[*sync.Mutex]*goroutine

	steps    int
	trace    []Step
	sig      uint64
	candBuf  []*goroutine // reusable enabled-set buffer
	choices  []Choice     // reusable chooser argument buffer
	failure  *Failure
	stopping bool
	started  bool
	finished bool
}

// NewSched returns a scheduler driven by ch. maxSteps bounds the run
// (a runaway/livelock backstop, reported as a failure); <= 0 selects
// the default of 100000.
func NewSched(ch Chooser, maxSteps int) *Sched {
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	return &Sched{
		chooser:  ch,
		maxSteps: maxSteps,
		yield:    make(chan struct{}),
		mutexes:  make(map[*sync.Mutex]*goroutine),
		sig:      fnvOffset,
	}
}

// Go registers fn as a managed goroutine. Valid before Run and from
// inside managed goroutines (workloads spawning helpers, timers firing);
// registration order is part of the deterministic schedule.
func (s *Sched) Go(name string, fn func()) {
	if s.finished {
		panic("check: Sched.Go after Run finished")
	}
	g := &goroutine{
		id:       len(s.gs),
		name:     name,
		resume:   make(chan struct{}),
		state:    gRunnable,
		point:    "start",
		deadline: -1,
	}
	s.gs = append(s.gs, g)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isStop := r.(stopSched); !isStop {
					s.noteFailure(g, r)
				}
			}
			g.state = gDone
			s.yield <- struct{}{}
		}()
		<-g.resume
		if s.stopping {
			return
		}
		g.state = gRunning
		fn()
	}()
}

// Failf aborts the run with a workload failure (mutual-exclusion
// violation, invariant breach, bound exceeded). Call only from a
// managed goroutine; it panics out to the goroutine wrapper, which
// records the failure with the schedule trace.
func (s *Sched) Failf(format string, args ...any) {
	panic(schedFail{fmt.Errorf(format, args...)})
}

// Now returns the current virtual clock.
func (s *Sched) Now() time.Duration { return s.now }

// Run drives the schedule to completion: it loops choosing among
// enabled goroutines, advancing the virtual clock when none are
// enabled, and stops on completion, failure, deadlock (the no-lost-
// grant detector), or the step budget. It must be called from the
// goroutine that constructed the Sched, and blocks until done.
func (s *Sched) Run() Result {
	if s.started {
		panic("check: Sched is single-use; construct a new one per run")
	}
	s.started = true
	for s.failure == nil {
		cands := s.enabledInto()
		if len(cands) == 0 {
			// Advance the clock before testing completion: timers armed by
			// finished goroutines (slice timers on a quiescent lock) still
			// fire, exercising the after-the-fact timer paths.
			if s.advanceClock() {
				continue
			}
			if s.allDone() {
				break
			}
			s.failure = &Failure{
				G:     "scheduler",
				Err:   fmt.Errorf("deadlock: %s", s.blockedSummary()),
				Trace: append([]Step(nil), s.trace...),
			}
			break
		}
		idx := 0
		if len(cands) > 1 {
			idx = s.chooser.Next(s.steps, s.choices[:len(cands)])
			if idx < 0 || idx >= len(cands) {
				idx = 0
			}
		}
		g := cands[idx]
		s.record(g)
		s.steps++
		if s.steps > s.maxSteps {
			s.failure = &Failure{
				G:     "scheduler",
				Err:   fmt.Errorf("step budget %d exceeded (livelock or unbounded schedule)", s.maxSteps),
				Trace: append([]Step(nil), s.trace...),
			}
			break
		}
		s.resume(g)
	}
	s.teardown()
	s.finished = true
	return Result{Steps: s.steps, Sig: s.sig, Now: s.now, Failure: s.failure}
}

// enabledInto collects the enabled goroutines in registration order and
// mirrors them into the reusable Choice buffer handed to the chooser.
func (s *Sched) enabledInto() []*goroutine {
	cands := s.candBuf[:0]
	for _, g := range s.gs {
		switch g.state {
		case gRunnable:
			cands = append(cands, g)
		case gBlocked:
			if g.ready != nil && g.ready() {
				cands = append(cands, g)
			} else if g.deadline >= 0 && g.deadline <= s.now {
				cands = append(cands, g)
			}
		}
	}
	s.candBuf = cands
	if cap(s.choices) < len(cands) {
		s.choices = make([]Choice, len(cands))
	}
	s.choices = s.choices[:len(cands)]
	for i, g := range cands {
		s.choices[i] = Choice{G: g.id, Point: g.point}
	}
	return cands
}

func (s *Sched) allDone() bool {
	for _, g := range s.gs {
		if g.state != gDone {
			return false
		}
	}
	return true
}

// advanceClock jumps the virtual clock to the next wake-up (blocked
// deadline or armed timer), firing due timers as new managed
// goroutines. Returns false when there is nothing to wait for.
func (s *Sched) advanceClock() bool {
	next := time.Duration(-1)
	consider := func(d time.Duration) {
		if next < 0 || d < next {
			next = d
		}
	}
	for _, g := range s.gs {
		if g.state == gBlocked && g.deadline >= 0 {
			consider(g.deadline)
		}
	}
	if t, ok := s.timers.peek(); ok {
		consider(t.at)
	}
	if next < 0 {
		return false
	}
	if next > s.now {
		s.now = next
	}
	s.fireTimers()
	return true
}

func (s *Sched) blockedSummary() string {
	var parts []string
	for _, g := range s.gs {
		if g.state == gBlocked {
			parts = append(parts, fmt.Sprintf("%s@%s", g.name, g.point))
		}
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "no goroutines blocked, none runnable, none done"
	}
	return "blocked: " + strings.Join(parts, ", ")
}

// record appends the step about to execute to the trace and folds it
// into the running FNV-1a schedule signature.
func (s *Sched) record(g *goroutine) {
	s.trace = append(s.trace, Step{G: g.name, Point: g.point})
	h := s.sig
	h = fnvStep(h, uint64(g.id))
	for i := 0; i < len(g.point); i++ {
		h = fnvStep(h, uint64(g.point[i]))
	}
	h = fnvStep(h, 0xff)
	s.sig = h
}

const fnvOffset = 14695981039346656037

func fnvStep(h, b uint64) uint64 {
	h ^= b
	h *= 1099511628211
	return h
}

// resume hands the execution token to g and waits for it back.
func (s *Sched) resume(g *goroutine) {
	s.current = g
	g.resume <- struct{}{}
	<-s.yield
	s.current = nil
}

// point yields the token from the current goroutine at a named
// schedule point, leaving it runnable.
func (s *Sched) point(name string) {
	g := s.current
	g.point = name
	g.state = gRunnable
	s.yield <- struct{}{}
	<-g.resume
	if s.stopping {
		panic(stopSched{})
	}
	g.state = gRunning
}

// park blocks the current goroutine until ready() (if non-nil) reports
// true or the virtual clock reaches deadline (if >= 0). With neither,
// the goroutine can only be unblocked by teardown — callers must pass
// at least one.
func (s *Sched) park(label string, ready func() bool, deadline time.Duration) {
	g := s.current
	g.point = label
	g.ready = ready
	g.deadline = deadline
	g.state = gBlocked
	s.yield <- struct{}{}
	<-g.resume
	if s.stopping {
		panic(stopSched{})
	}
	g.state = gRunning
	g.ready = nil
	g.deadline = -1
}

// noteFailure records the first failure; called from a managed
// goroutine's recover while it still holds the token. Panics raised
// while teardown unwinds stacks are discarded.
func (s *Sched) noteFailure(g *goroutine, r any) {
	if s.stopping {
		return
	}
	var err error
	var stack []byte
	if f, ok := r.(schedFail); ok {
		err = f.err
	} else {
		err = fmt.Errorf("panic: %v", r)
		stack = debug.Stack()
	}
	if s.failure == nil {
		s.failure = &Failure{
			G:     g.name,
			Err:   err,
			Stack: stack,
			Trace: append([]Step(nil), s.trace...),
		}
	}
}

// teardown unwinds every unfinished managed goroutine via the stopSched
// sentinel so their defers run and no goroutine leaks across runs.
func (s *Sched) teardown() {
	s.stopping = true
	for i := 0; i < len(s.gs); i++ {
		g := s.gs[i]
		if g.state == gDone {
			continue
		}
		s.current = g
		g.resume <- struct{}{}
		<-s.yield
		s.current = nil
	}
}
