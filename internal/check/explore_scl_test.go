// Exploration tests running the real scl locks under the deterministic
// scheduler. They live in package check_test (not check) because they
// import scl, which imports check.
//
// Replaying a failure: every failure prints a seed; reproduce it
// one-shot with
//
//	go test ./internal/check -run TestExplore -check.seed=<seed> -check.workload=<name>
package check_test

import (
	"flag"
	"path/filepath"
	"testing"

	"scl/internal/check"
	"scl/internal/check/workloads"
	"scl/internal/scenario"
)

var (
	seedFlag = flag.Int64("check.seed", 0,
		"replay this schedule seed against the selected workload instead of exploring")
	workloadFlag = flag.String("check.workload", "mutex-churn",
		"workload for -check.seed replay: mutex-churn, mutex-contend, mutex-combine, rw-churn, rw-shard, manager-churn, scenario")
	schedulesFlag = flag.Int("check.schedules", 0,
		"override the exploration budget (number of schedules)")
	scenarioFlag = flag.String("check.scenario", "",
		"scenario file for -check.workload=scenario (bare names resolve in ../scenario/testdata)")
)

// scenarioWorkload compiles a scenario file into an explorable
// workload (see scenario.Workload).
func scenarioWorkload(t *testing.T, path string) check.Workload {
	if filepath.Ext(path) == "" {
		path = filepath.Join("..", "scenario", "testdata", path+scenario.CorpusExt)
	}
	s, err := scenario.LoadFile(path)
	if err != nil {
		t.Fatalf("-check.scenario: %v", err)
	}
	c, err := scenario.Compile(s)
	if err != nil {
		t.Fatalf("-check.scenario: %v", err)
	}
	return scenario.Workload(c)
}

// namedWorkload returns the workload a -check.seed replay targets.
func namedWorkload(t *testing.T, name string) check.Workload {
	switch name {
	case "mutex-churn":
		return workloads.MutexChurn(workloads.MutexOpts{Seed: 1, Cancel: true, CloseMid: true})
	case "mutex-contend":
		return workloads.MutexContend(workloads.ContendOpts{Seed: 1})
	case "mutex-combine":
		return workloads.MutexCombine(workloads.CombineOpts{Seed: 1})
	case "rw-churn":
		return workloads.RWChurn(workloads.RWOpts{Seed: 1, Cancel: true})
	case "rw-shard":
		return workloads.RWShardSweep(workloads.RWShardOpts{Seed: 1})
	case "manager-churn":
		return workloads.ManagerChurn(workloads.ManagerOpts{Seed: 1, Cancel: true, CloseMid: true, GC: true})
	case "scenario":
		if *scenarioFlag == "" {
			t.Fatalf("-check.workload=scenario needs -check.scenario=<file>")
		}
		return scenarioWorkload(t, *scenarioFlag)
	default:
		t.Fatalf("unknown -check.workload %q", name)
		return check.Workload{}
	}
}

// replayIfRequested handles -check.seed: a single deterministic run of
// the requested schedule. Returns true if it ran (the test is done).
func replayIfRequested(t *testing.T) bool {
	if *seedFlag == 0 {
		return false
	}
	w := namedWorkload(t, *workloadFlag)
	if f := check.Replay(check.Opts{}, w, *seedFlag); f != nil {
		t.Fatalf("replayed failure:\n%v", f)
	}
	t.Logf("seed %d replayed clean against %s", *seedFlag, *workloadFlag)
	return true
}

// TestExploreMutexChurn is the issue's acceptance workload: 3 entities
// running a lock/cancel/close mix. The full run explores enough
// randomized schedules to clear 10k distinct signatures; -short (CI
// race builds) keeps a smaller budget.
func TestExploreMutexChurn(t *testing.T) {
	if replayIfRequested(t) {
		return
	}
	w := workloads.MutexChurn(workloads.MutexOpts{Seed: 1, Cancel: true, CloseMid: true})
	n := 11000
	want := 10000
	if testing.Short() {
		n, want = 1200, 600
	}
	if *schedulesFlag > 0 {
		n, want = *schedulesFlag, 0
	}
	sum := check.Explore(check.Opts{Schedules: n, Seed: 1, Mode: "random"}, w)
	if sum.Failure != nil {
		t.Fatalf("exploration failed:\n%v", sum.Failure)
	}
	t.Logf("%d runs, %d distinct schedules, %d total steps", sum.Runs, sum.Distinct, sum.Steps)
	if sum.Distinct < want {
		t.Fatalf("only %d distinct schedules in %d runs (want >= %d)", sum.Distinct, sum.Runs, want)
	}
}

// TestExploreMutexChurnPCT hunts bugs with PCT-style priority
// schedules, which concentrate probability on rare orderings (depth-3
// races) rather than maximizing schedule diversity.
func TestExploreMutexChurnPCT(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	w := workloads.MutexChurn(workloads.MutexOpts{Seed: 2, Cancel: true, CloseMid: true, GC: true})
	n := 2000
	if testing.Short() {
		n = 400
	}
	sum := check.Explore(check.Opts{Schedules: n, Seed: 2, Mode: "pct", Depth: 3}, w)
	if sum.Failure != nil {
		t.Fatalf("exploration failed:\n%v", sum.Failure)
	}
	t.Logf("%d runs, %d distinct schedules", sum.Runs, sum.Distinct)
}

// TestExploreMutexContend asserts the opportunity-imbalance bound on
// every explored schedule of an equal-weight contention workload.
func TestExploreMutexContend(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	w := workloads.MutexContend(workloads.ContendOpts{Seed: 3})
	n := 2000
	if testing.Short() {
		n = 400
	}
	sum := check.Explore(check.Opts{Schedules: n, Seed: 3, Mode: "pct", Depth: 3}, w)
	if sum.Failure != nil {
		t.Fatalf("exploration failed:\n%v", sum.Failure)
	}
	t.Logf("%d runs, %d distinct schedules", sum.Runs, sum.Distinct)
}

// TestExploreMutexCombine explores the combining protocol (Handle.Do)
// across 10k+ distinct schedules: Do publishers race plain acquires,
// release-time drains, ban rejections and the idle wake-walk through
// the mu.combine.* decision sites, with mutual exclusion, exactly-once
// execution, accounting conservation and a Do-latency bound asserted on
// every schedule.
func TestExploreMutexCombine(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	w := workloads.MutexCombine(workloads.CombineOpts{Seed: 11})
	n := 11000
	want := 10000
	if testing.Short() {
		n, want = 1200, 600
	}
	if *schedulesFlag > 0 {
		n, want = *schedulesFlag, 0
	}
	sum := check.Explore(check.Opts{Schedules: n, Seed: 11, Mode: "random"}, w)
	if sum.Failure != nil {
		t.Fatalf("exploration failed:\n%v", sum.Failure)
	}
	t.Logf("%d runs, %d distinct schedules, %d total steps", sum.Runs, sum.Distinct, sum.Steps)
	if sum.Distinct < want {
		t.Fatalf("only %d distinct schedules in %d runs (want >= %d)", sum.Distinct, sum.Runs, want)
	}
}

// TestExploreMutexCombinePCT hunts depth-3 races in the combining
// protocol (publish-vs-release, drain-vs-withdraw, handoff-vs-close)
// with PCT priority schedules.
func TestExploreMutexCombinePCT(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	w := workloads.MutexCombine(workloads.CombineOpts{Seed: 12})
	n := 2000
	if testing.Short() {
		n = 400
	}
	sum := check.Explore(check.Opts{Schedules: n, Seed: 12, Mode: "pct", Depth: 3}, w)
	if sum.Failure != nil {
		t.Fatalf("exploration failed:\n%v", sum.Failure)
	}
	t.Logf("%d runs, %d distinct schedules", sum.Runs, sum.Distinct)
}

// TestExploreMutexCombineDFS enumerates a minimal two-entity combining
// scenario exhaustively within a branching-depth bound.
func TestExploreMutexCombineDFS(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	w := workloads.MutexCombine(workloads.CombineOpts{Entities: 2, Ops: 2, Seed: 13})
	max := 1500
	if testing.Short() {
		max = 300
	}
	sum := check.ExploreDFS(check.DFSOpts{Depth: 10, MaxRuns: max}, w)
	if sum.Failure != nil {
		t.Fatalf("DFS exploration failed:\n%v", sum.Failure)
	}
	t.Logf("%d runs, %d distinct schedules", sum.Runs, sum.Distinct)
}

// TestExploreRWChurn drives the RW-SCL through reader/writer churn with
// cancellations.
func TestExploreRWChurn(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	w := workloads.RWChurn(workloads.RWOpts{Seed: 4, Cancel: true})
	n := 2000
	if testing.Short() {
		n = 400
	}
	sum := check.Explore(check.Opts{Schedules: n, Seed: 4, Mode: "pct", Depth: 3}, w)
	if sum.Failure != nil {
		t.Fatalf("exploration failed:\n%v", sum.Failure)
	}
	t.Logf("%d runs, %d distinct schedules", sum.Runs, sum.Distinct)
}

// TestExploreRWShardSweep hunts sweep-vs-incoming-reader races in the
// distributed read indicator with PCT schedules: the new decision points
// (rw.shard.rlock, rw.shard.runlock, rw.phaseflip.sweep) let the
// explorer interleave a write-phase shard sweep with fast readers
// mid-publish, and the workload asserts reader-op conservation plus a
// final write drain on every schedule.
func TestExploreRWShardSweep(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	w := workloads.RWShardSweep(workloads.RWShardOpts{Seed: 7})
	n := 2000
	if testing.Short() {
		n = 400
	}
	sum := check.Explore(check.Opts{Schedules: n, Seed: 7, Mode: "pct", Depth: 3}, w)
	if sum.Failure != nil {
		t.Fatalf("exploration failed:\n%v", sum.Failure)
	}
	t.Logf("%d runs, %d distinct schedules", sum.Runs, sum.Distinct)
}

// TestExploreRWShardDFS enumerates a minimal two-reader/one-writer
// shard-sweep scenario exhaustively within a branching-depth bound, the
// small-bounds counterpart to the PCT hunt above.
func TestExploreRWShardDFS(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	w := workloads.RWShardSweep(workloads.RWShardOpts{Readers: 2, Writers: 1, Ops: 2, Seed: 8})
	max := 1500
	if testing.Short() {
		max = 300
	}
	sum := check.ExploreDFS(check.DFSOpts{Depth: 10, MaxRuns: max}, w)
	if sum.Failure != nil {
		t.Fatalf("DFS exploration failed:\n%v", sum.Failure)
	}
	t.Logf("%d runs, %d distinct schedules", sum.Runs, sum.Distinct)
}

// TestExploreManagerChurn drives the lock-table Manager through
// multi-key tenant churn with cancellation, mid-run tenant close and
// both GCs armed, exploring the table's decision sites (mgr.stripe,
// mgr.materialize, mgr.release, mgr.reap, mgr.close, acct.charge)
// interleaved with the per-key locks' own sites. Every schedule asserts
// per-key mutual exclusion, cross-layer in-flight agreement and clean
// teardown of every stripe's books.
func TestExploreManagerChurn(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	w := workloads.ManagerChurn(workloads.ManagerOpts{Seed: 9, Cancel: true, CloseMid: true, GC: true})
	n := 2000
	if testing.Short() {
		n = 400
	}
	sum := check.Explore(check.Opts{Schedules: n, Seed: 9, Mode: "pct", Depth: 3}, w)
	if sum.Failure != nil {
		t.Fatalf("exploration failed:\n%v", sum.Failure)
	}
	t.Logf("%d runs, %d distinct schedules", sum.Runs, sum.Distinct)
}

// TestExploreScenarioCorpus runs PCT schedule exploration over every
// scenario in the starter corpus: each compiled scenario becomes an
// explorable workload (scenario.Workload) asserting mutual exclusion,
// accountant conservation, and full teardown on every schedule.
// Failures print a seed replayable with
//
//	go test ./internal/check -run TestExplore \
//	    -check.seed=<seed> -check.workload=scenario -check.scenario=<name>
func TestExploreScenarioCorpus(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	corpus, err := scenario.LoadCorpus(filepath.Join("..", "scenario", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	n := 150
	if testing.Short() {
		n = 30
	}
	if *schedulesFlag > 0 {
		n = *schedulesFlag
	}
	for _, s := range corpus {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			c, err := scenario.Compile(s)
			if err != nil {
				t.Fatal(err)
			}
			w := scenario.Workload(c)
			sum := check.Explore(check.Opts{Schedules: n, Seed: int64(s.Seed), Mode: "pct", Depth: 3}, w)
			if sum.Failure != nil {
				t.Fatalf("exploration failed (replay with -check.workload=scenario -check.scenario=%s):\n%v",
					s.Name, sum.Failure)
			}
			t.Logf("%d runs, %d distinct schedules, %d total steps", sum.Runs, sum.Distinct, sum.Steps)
		})
	}
}

// TestExploreMutexDFS enumerates a small two-entity scenario
// exhaustively within a branching-depth bound — the small-bounds
// counterpart to the randomized modes.
func TestExploreMutexDFS(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	w := workloads.MutexContend(workloads.ContendOpts{Entities: 2, Ops: 2, Seed: 5})
	max := 1500
	if testing.Short() {
		max = 300
	}
	sum := check.ExploreDFS(check.DFSOpts{Depth: 10, MaxRuns: max}, w)
	if sum.Failure != nil {
		t.Fatalf("DFS exploration failed:\n%v", sum.Failure)
	}
	t.Logf("%d runs, %d distinct schedules", sum.Runs, sum.Distinct)
}

// TestSchedDeterminism: one seed must produce bit-identical schedule
// signatures across repeated runs of the real-lock workload — the
// property seed replay rests on.
func TestSchedDeterminism(t *testing.T) {
	if *seedFlag != 0 {
		t.Skip("replay handled by TestExploreMutexChurn")
	}
	w := workloads.MutexChurn(workloads.MutexOpts{Seed: 6, Cancel: true, CloseMid: true})
	run := func() uint64 {
		s := check.NewSched(check.NewRandomChooser(99), 0)
		check.Install(s)
		defer check.Uninstall(s)
		w.Setup(s)
		res := s.Run()
		if res.Failure != nil {
			t.Fatalf("failure: %v", res.Failure)
		}
		return res.Sig
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different schedules: %x vs %x", a, b)
	}
}
