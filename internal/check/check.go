// Package check is a deterministic concurrency checker for the real scl
// locks. It supplies a cooperative user-level scheduler (Sched) that the
// lock implementation consults through the pluggable hooks in this file:
// when no scheduler is installed every hook is a single atomic load plus
// a branch and the locks run on the ordinary Go runtime; when a Sched is
// installed (tests only), lock goroutines become serial cooperative
// tasks, time.AfterFunc timers become virtual-clock events, and every
// instrumented decision site (check.Point) becomes a scheduling point
// the explorer can reorder.
//
// The package is a leaf: it imports only the standard library, so both
// the scl root package and internal/core may depend on it.
//
// # Hook contract
//
// Hooks are valid in three states:
//
//   - No scheduler installed: all hooks are inert. Blocking hooks
//     (Sleep, WaitOrDone, LockMutex, AfterFunc, ...) report
//     handled=false and the caller falls back to the real primitive.
//   - Scheduler installed, called from a managed goroutine (one started
//     via Sched.Go, including virtual-timer callbacks): hooks are live.
//     Exactly one managed goroutine runs at a time, handing the
//     execution token back to the scheduler at each Point or blocking
//     hook, so execution is serial and replayable.
//   - Scheduler installed, called from an unmanaged goroutine (the test
//     goroutine before or after Sched.Run): blocking hooks report
//     handled=false; Now still reports the virtual clock so the lock's
//     monotime stays consistent across a whole test.
//
// The done channels passed to the *OrDone hooks must be close-only
// channels (context.Done-style); the hooks poll them with a
// non-blocking receive and would consume a value from a sent-to
// channel.
package check

import (
	"sync"
	"sync/atomic"
	"time"
)

// active is the process-global installed scheduler. Install/Uninstall
// are test-only; production code never writes it, so every hook costs
// one atomic load on the nil fast path (the same pattern as the scl
// Tracer hook).
var active atomic.Pointer[Sched]

// Install makes s the process-global scheduler consulted by every hook.
// It panics if another scheduler is already installed: exploration runs
// are process-wide and must not overlap (tests using Install must not
// run in parallel).
func Install(s *Sched) {
	if !active.CompareAndSwap(nil, s) {
		panic("check: a scheduler is already installed")
	}
}

// Uninstall removes s as the process-global scheduler. It panics if s
// is not the installed scheduler.
func Uninstall(s *Sched) {
	if !active.CompareAndSwap(s, nil) {
		panic("check: Uninstall of a scheduler that is not installed")
	}
}

// Enabled reports whether a scheduler is installed. It exists for
// cheap guards around instrumentation that would otherwise compute
// arguments for dead hooks.
func Enabled() bool { return active.Load() != nil }

// cur returns the installed scheduler and the managed goroutine
// currently holding the execution token, or nil if hooks should fall
// through to the real primitives (no scheduler, or caller unmanaged).
func cur() (*Sched, *goroutine) {
	s := active.Load()
	if s == nil {
		return nil, nil
	}
	g := s.current
	if g == nil {
		return nil, nil
	}
	return s, g
}

// GID returns the installed scheduler's id for the calling managed
// goroutine (its spawn index) and true, or 0 and false when no
// scheduler is installed or the caller is unmanaged. Ids are assigned
// in spawn order, so they are identical across replays of a seed —
// callers use them for schedule-stable decisions that would otherwise
// depend on runtime identity (the RWLock derives its reader-shard
// choice from the id, keeping every schedule-visible branch
// deterministic).
func GID() (int, bool) {
	if _, g := cur(); g != nil {
		return g.id, true
	}
	return 0, false
}

// Point marks a schedule point: under an installed scheduler the
// calling managed goroutine yields and the explorer chooses what runs
// next. The name labels the decision site in traces ("mu.fast.lock",
// "rw.grant", ...). A no-op otherwise.
func Point(name string) {
	if s, _ := cur(); s != nil {
		s.point(name)
	}
}

// Now returns the virtual clock when a scheduler is installed. Unlike
// the blocking hooks it is live even from unmanaged goroutines, so a
// lock created before Sched.Run and inspected after it sees one
// monotonic virtual timeline.
func Now() (time.Duration, bool) {
	s := active.Load()
	if s == nil {
		return 0, false
	}
	return s.now, true
}

// Sleep blocks the calling managed goroutine until the virtual clock
// reaches now+d. It reports handled=false (without blocking) when the
// caller is unmanaged.
func Sleep(d time.Duration) bool {
	s, _ := cur()
	if s == nil {
		return false
	}
	s.park("sleep", nil, s.now+d)
	return true
}

// SleepOrDone blocks until the virtual clock reaches now+d or done is
// closed. It reports cancelled=true only when done closed before the
// deadline; a wake at the deadline reports cancelled=false even if done
// is also closed, so callers loop and observe the cancellation at their
// next blocking point (exercising the late-cancel paths).
func SleepOrDone(d time.Duration, done <-chan struct{}) (cancelled, handled bool) {
	s, _ := cur()
	if s == nil {
		return false, false
	}
	deadline := s.now + d
	s.park("sleep", func() bool { return chanClosed(done) }, deadline)
	if s.now >= deadline {
		return false, true
	}
	return chanClosed(done), true
}

// WaitOrDone blocks until ready() reports true or done is closed (done
// may be nil for an uncancellable wait). Cancellation wins ties: if
// both conditions hold at wake the caller is told cancelled (ok=false),
// which is exactly the raced-grant window the abandon/regrant protocol
// must handle. ready is evaluated by the scheduler while no managed
// goroutine runs, so it must be safe to call from outside the lock's
// critical sections (atomic loads, channel length probes).
func WaitOrDone(name string, ready func() bool, done <-chan struct{}) (ok, handled bool) {
	s, _ := cur()
	if s == nil {
		return false, false
	}
	pred := ready
	if done != nil {
		pred = func() bool { return ready() || chanClosed(done) }
	}
	s.park(name, pred, -1)
	if done != nil && chanClosed(done) {
		return false, true
	}
	return true, true
}

// WaitChan blocks until a grant token is buffered on ch, then consumes
// it. ch must be a buffered channel to which only the granter sends
// (the RWLock waiter-channel protocol).
func WaitChan(name string, ch <-chan struct{}) bool {
	s, _ := cur()
	if s == nil {
		return false
	}
	s.park(name, func() bool { return len(ch) > 0 }, -1)
	<-ch
	return true
}

// WaitChanOrDone blocks until a grant token is buffered on ch or done
// is closed. On cancellation the token is deliberately not consumed
// even if present — the lock's abandon path owns draining a raced
// grant, and leaving the token in place exercises it.
func WaitChanOrDone(name string, ch <-chan struct{}, done <-chan struct{}) (ok, handled bool) {
	s, _ := cur()
	if s == nil {
		return false, false
	}
	s.park(name, func() bool { return len(ch) > 0 || chanClosed(done) }, -1)
	if chanClosed(done) {
		return false, true
	}
	<-ch
	return true, true
}

// LockMutex acquires mu's virtual ownership under an installed
// scheduler, reporting handled=true; the real sync.Mutex is left
// untouched (serial execution plus the scheduler's channel handoffs
// provide both exclusion and happens-before, keeping the race detector
// sound). Acquisition is itself a schedule point. Reports handled=false
// for unmanaged callers, who must fall back to mu.Lock.
func LockMutex(mu *sync.Mutex) bool {
	s, g := cur()
	if s == nil {
		return false
	}
	s.point("mu.lock")
	for s.mutexes[mu] != nil {
		s.park("mu.lock", func() bool { return s.mutexes[mu] == nil }, -1)
	}
	s.mutexes[mu] = g
	return true
}

// UnlockMutex releases virtual ownership taken by LockMutex. It never
// blocks (releases stay non-yielding so panic-unwind defers are safe)
// and panics on unlock of a mutex the caller does not own, except
// during scheduler teardown where bookkeeping is being discarded.
func UnlockMutex(mu *sync.Mutex) bool {
	s, g := cur()
	if s == nil {
		return false
	}
	if s.mutexes[mu] != g {
		if s.stopping {
			return true
		}
		panic("check: UnlockMutex of a mutex not held by the calling goroutine")
	}
	delete(s.mutexes, mu)
	return true
}

// chanClosed reports whether a close-only channel has been closed.
func chanClosed(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}
