package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("empty len %d", tr.Len())
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("Get on empty tree succeeded")
	}
	if tr.Delete([]byte("x")) {
		t.Fatal("Delete on empty tree succeeded")
	}
}

func TestInsertGet(t *testing.T) {
	tr := New()
	if !tr.Insert([]byte("a"), []byte("1")) {
		t.Fatal("first insert not new")
	}
	if tr.Insert([]byte("a"), []byte("2")) {
		t.Fatal("overwrite reported as new")
	}
	v, ok := tr.Get([]byte("a"))
	if !ok || string(v) != "2" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("len %d, want 1", tr.Len())
	}
}

func TestManyInsertsSplits(t *testing.T) {
	tr := New()
	const n = 10000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%08d", i))
		tr.Insert(k, k)
	}
	if tr.Len() != n {
		t.Fatalf("len %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i += 97 {
		k := []byte(fmt.Sprintf("key-%08d", i))
		if v, ok := tr.Get(k); !ok || !bytes.Equal(v, k) {
			t.Fatalf("Get(%s) = %q, %v", k, v, ok)
		}
	}
}

func TestAscendSorted(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("%010d", rng.Intn(1_000_000)))
		tr.Insert(k, k)
	}
	var prev []byte
	count := 0
	tr.Ascend(func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if count != tr.Len() {
		t.Fatalf("iterated %d, len %d", count, tr.Len())
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("%03d", i))
		tr.Insert(k, k)
	}
	var got []string
	tr.AscendRange([]byte("010"), []byte("020"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 || got[0] != "010" || got[9] != "019" {
		t.Fatalf("range = %v", got)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("%03d", i))
		tr.Insert(k, k)
	}
	n := 0
	tr.Ascend(func(k, v []byte) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d, want 5", n)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("%06d", i))
		tr.Insert(k, k)
	}
	for i := 0; i < n; i += 2 {
		k := []byte(fmt.Sprintf("%06d", i))
		if !tr.Delete(k) {
			t.Fatalf("Delete(%s) failed", k)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("len %d, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("%06d", i))
		_, ok := tr.Get(k)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%s) = %v, want %v", k, ok, want)
		}
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("%04d", i))
		tr.Insert(k, k)
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("%04d", i))
		if !tr.Delete(k) {
			t.Fatalf("Delete(%s) failed", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len %d after deleting all", tr.Len())
	}
	tr.Insert([]byte("z"), []byte("z"))
	if v, ok := tr.Get([]byte("z")); !ok || string(v) != "z" {
		t.Fatal("tree unusable after full drain")
	}
}

// TestMatchesReferenceModel drives the tree and a map with the same random
// operations and checks observable equivalence.
func TestMatchesReferenceModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[string]string{}
		for op := 0; op < 3000; op++ {
			k := fmt.Sprintf("%04d", rng.Intn(500))
			switch rng.Intn(3) {
			case 0: // insert
				v := fmt.Sprintf("v%d", op)
				added := tr.Insert([]byte(k), []byte(v))
				_, existed := ref[k]
				if added == existed {
					t.Logf("insert added=%v existed=%v", added, existed)
					return false
				}
				ref[k] = v
			case 1: // get
				v, ok := tr.Get([]byte(k))
				rv, rok := ref[k]
				if ok != rok || (ok && string(v) != rv) {
					t.Logf("get mismatch for %s", k)
					return false
				}
			case 2: // delete
				ok := tr.Delete([]byte(k))
				_, rok := ref[k]
				if ok != rok {
					t.Logf("delete mismatch for %s", k)
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			t.Logf("len %d vs ref %d", tr.Len(), len(ref))
			return false
		}
		// Iteration yields exactly the reference keys in sorted order.
		want := make([]string, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		i := 0
		okOrder := true
		tr.Ascend(func(k, v []byte) bool {
			if i >= len(want) || string(k) != want[i] {
				okOrder = false
				return false
			}
			i++
			return true
		})
		return okOrder && i == len(want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyAliasing(t *testing.T) {
	// The tree must copy keys: mutating the caller's buffer afterwards
	// must not corrupt the index.
	tr := New()
	k := []byte("abc")
	tr.Insert(k, []byte("v"))
	k[0] = 'z'
	if _, ok := tr.Get([]byte("abc")); !ok {
		t.Fatal("key was aliased, lookup broken")
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("%012d", i))
		tr.Insert(k, k)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("%012d", i))
		tr.Insert(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("%012d", i%n))
		tr.Get(k)
	}
}
