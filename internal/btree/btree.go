// Package btree implements an in-memory B+-tree with byte-slice keys and
// values — the index structure behind this repository's UpScaleDB-analogue
// (paper §5.5.1). Inserts rebalance by splitting and are therefore more
// expensive than finds, which is exactly the asymmetric critical-section
// behaviour the paper's Table 1 measures.
//
// The tree itself is not goroutine-safe; the embedding store wraps it in a
// single global lock, as UpScaleDB wraps its environment.
package btree

import "bytes"

// order is the maximum number of children of an internal node.
const order = 64

// Tree is a B+-tree. The zero value is not usable; call New.
type Tree struct {
	root node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}}
}

// node is either an *inner or a *leaf.
type node interface {
	// insert adds k/v below this node; it returns a new right sibling and
	// its separator key when the node split, and whether the key was new.
	insert(k, v []byte) (sep []byte, right node, added bool)
	// get returns the value for k.
	get(k []byte) ([]byte, bool)
	// del removes k, reporting whether it was present. (Underflow is
	// tolerated: nodes may become sparse but never invalid; UpScaleDB-style
	// workloads are insert/find heavy.)
	del(k []byte) bool
	// first returns the leftmost leaf under this node.
	first() *leaf
}

type inner struct {
	keys     [][]byte // len(children)-1 separators
	children []node
}

type leaf struct {
	keys [][]byte
	vals [][]byte
	next *leaf
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored under k.
func (t *Tree) Get(k []byte) ([]byte, bool) { return t.root.get(k) }

// Insert stores v under k, replacing any existing value. It reports
// whether the key was newly added.
func (t *Tree) Insert(k, v []byte) bool {
	sep, right, added := t.root.insert(k, v)
	if right != nil {
		t.root = &inner{keys: [][]byte{sep}, children: []node{t.root, right}}
	}
	if added {
		t.size++
	}
	return added
}

// Delete removes k, reporting whether it was present.
func (t *Tree) Delete(k []byte) bool {
	ok := t.root.del(k)
	if ok {
		t.size--
	}
	// Collapse a root with a single child.
	for {
		in, isInner := t.root.(*inner)
		if !isInner || len(in.children) != 1 {
			break
		}
		t.root = in.children[0]
	}
	return ok
}

// Ascend calls fn for every key/value in order until fn returns false.
func (t *Tree) Ascend(fn func(k, v []byte) bool) {
	for l := t.root.first(); l != nil; l = l.next {
		for i := range l.keys {
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
	}
}

// AscendRange calls fn for keys in [lo, hi) in order until fn returns
// false.
func (t *Tree) AscendRange(lo, hi []byte, fn func(k, v []byte) bool) {
	t.Ascend(func(k, v []byte) bool {
		if lo != nil && bytes.Compare(k, lo) < 0 {
			return true
		}
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			return false
		}
		return fn(k, v)
	})
}

// --- leaf ---

// search returns the index of the first key >= k.
func search(keys [][]byte, k []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	exact := lo < len(keys) && bytes.Equal(keys[lo], k)
	return lo, exact
}

func (l *leaf) insert(k, v []byte) ([]byte, node, bool) {
	i, exact := search(l.keys, k)
	if exact {
		l.vals[i] = v
		return nil, nil, false
	}
	kc := append([]byte(nil), k...)
	vc := v
	l.keys = append(l.keys, nil)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = kc
	l.vals = append(l.vals, nil)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = vc
	if len(l.keys) < order {
		return nil, nil, true
	}
	// Split.
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([][]byte(nil), l.keys[mid:]...),
		vals: append([][]byte(nil), l.vals[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	l.next = right
	return right.keys[0], right, true
}

func (l *leaf) get(k []byte) ([]byte, bool) {
	i, exact := search(l.keys, k)
	if !exact {
		return nil, false
	}
	return l.vals[i], true
}

func (l *leaf) del(k []byte) bool {
	i, exact := search(l.keys, k)
	if !exact {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	return true
}

func (l *leaf) first() *leaf { return l }

// --- inner ---

// childIndex returns which child to descend into for key k.
func (in *inner) childIndex(k []byte) int {
	i, exact := search(in.keys, k)
	if exact {
		return i + 1
	}
	return i
}

func (in *inner) insert(k, v []byte) ([]byte, node, bool) {
	ci := in.childIndex(k)
	sep, right, added := in.children[ci].insert(k, v)
	if right == nil {
		return nil, nil, added
	}
	in.keys = append(in.keys, nil)
	copy(in.keys[ci+1:], in.keys[ci:])
	in.keys[ci] = sep
	in.children = append(in.children, nil)
	copy(in.children[ci+2:], in.children[ci+1:])
	in.children[ci+1] = right
	if len(in.children) <= order {
		return nil, nil, added
	}
	// Split this inner node.
	mid := len(in.keys) / 2
	upKey := in.keys[mid]
	rightNode := &inner{
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	return upKey, rightNode, added
}

func (in *inner) get(k []byte) ([]byte, bool) {
	return in.children[in.childIndex(k)].get(k)
}

func (in *inner) del(k []byte) bool {
	return in.children[in.childIndex(k)].del(k)
}

func (in *inner) first() *leaf { return in.children[0].first() }
