package journal

import (
	"bytes"
	"testing"
	"time"
)

func TestAppendCommit(t *testing.T) {
	j := New(0)
	j.Append([]byte("hello"))
	if j.Pending() != 5+8 {
		t.Fatalf("pending %d, want 13 (record + header)", j.Pending())
	}
	n := j.Commit()
	if n != 13 {
		t.Fatalf("commit size %d", n)
	}
	if j.Pending() != 0 {
		t.Fatalf("pending after commit %d", j.Pending())
	}
	if j.Committed() != 13 || j.Records() != 1 {
		t.Fatalf("committed=%d records=%d", j.Committed(), j.Records())
	}
	if j.LastChecksum() == 0 {
		t.Fatal("no checksum recorded")
	}
}

func TestCommitEmpty(t *testing.T) {
	j := New(0)
	if j.Commit() != 0 {
		t.Fatal("empty commit nonzero")
	}
}

func TestGroupCommit(t *testing.T) {
	j := New(0)
	for i := 0; i < 10; i++ {
		j.Append(bytes.Repeat([]byte{byte(i)}, 100))
	}
	if j.Commit() != 10*(100+8) {
		t.Fatal("group size wrong")
	}
	if j.Records() != 10 {
		t.Fatalf("records %d", j.Records())
	}
}

func TestCostGrowsWithSize(t *testing.T) {
	// The defining Table 1 property: a 100K write holds the journal lock
	// far longer than a 1K write. Each size takes the best of several
	// timings so transient scheduler load (e.g. sibling -race packages
	// running in parallel under go test ./...) cannot inflate the small
	// measurement and collapse the ratio.
	measure := func(size int) time.Duration {
		j := New(32)
		rec := bytes.Repeat([]byte{0xab}, size)
		best := time.Duration(0)
		for try := 0; try < 5; try++ {
			start := time.Now()
			for i := 0; i < 50; i++ {
				j.Append(rec)
				j.Commit()
			}
			if d := time.Since(start); try == 0 || d < best {
				best = d
			}
		}
		return best
	}
	small := measure(1 << 10)
	large := measure(100 << 10)
	if large < 10*small {
		t.Fatalf("100K commits (%v) not ≫ 1K commits (%v)", large, small)
	}
}
