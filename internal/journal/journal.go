// Package journal implements a group-commit write-ahead journal in the
// style of MongoDB's journaling subsystem (paper Table 1): writers append
// records under the journal lock, and a commit checksums and "writes out"
// the batch. The hold time of an append-plus-commit grows with the record
// size — the 1K/10K/100K asymmetry of the paper's MongoDB row.
//
// There is no real device here (the repository has no I/O dependencies);
// the device is modeled by a configurable number of checksum passes over
// the committed bytes, which makes the cost proportional to size the same
// way a journal flush is.
package journal

import "hash/crc32"

// Journal is a group-commit journal. Not goroutine-safe: the embedding
// application wraps it in the lock under study.
type Journal struct {
	buf          []byte
	devicePasses int
	committed    int64 // total bytes committed
	records      int64
	lastChecksum uint32
}

// New creates a journal. devicePasses scales the modeled device-write
// cost per commit (0 means a default of 8 passes).
func New(devicePasses int) *Journal {
	if devicePasses <= 0 {
		devicePasses = 8
	}
	return &Journal{devicePasses: devicePasses}
}

// Append buffers one record for the next commit.
func (j *Journal) Append(rec []byte) {
	var hdr [8]byte
	n := len(rec)
	for i := 0; i < 8; i++ {
		hdr[i] = byte(n >> (8 * i))
	}
	j.buf = append(j.buf, hdr[:]...)
	j.buf = append(j.buf, rec...)
	j.records++
}

// Pending returns the number of buffered (uncommitted) bytes.
func (j *Journal) Pending() int { return len(j.buf) }

// Commit checksums and retires the buffered batch, modeling the device
// write with repeated passes over the data. It returns the batch size.
func (j *Journal) Commit() int {
	n := len(j.buf)
	if n == 0 {
		return 0
	}
	var sum uint32
	for p := 0; p < j.devicePasses; p++ {
		sum = crc32.Update(sum, crc32.IEEETable, j.buf)
	}
	j.lastChecksum = sum
	j.committed += int64(n)
	j.buf = j.buf[:0]
	return n
}

// Committed returns total bytes committed over the journal's lifetime.
func (j *Journal) Committed() int64 { return j.committed }

// Records returns the number of records appended over the lifetime.
func (j *Journal) Records() int64 { return j.records }

// LastChecksum returns the checksum of the most recent commit (so the
// checksum work cannot be dead-code eliminated, and for test validation).
func (j *Journal) LastChecksum() uint32 { return j.lastChecksum }
