package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestJainEqual(t *testing.T) {
	if got := Jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Jain(equal) = %v, want 1", got)
	}
}

func TestJainDominated(t *testing.T) {
	// One of n entities gets everything -> 1/n.
	got := Jain([]float64{10, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Jain = %v, want 0.25", got)
	}
}

func TestJainToyExampleMutex(t *testing.T) {
	// Paper Table 2: LOT (20, 1) gives a fairness index of ~0.55.
	got := Jain([]float64{20, 1})
	if got < 0.5 || got > 0.6 {
		t.Fatalf("Jain(20,1) = %v, want ~0.55", got)
	}
}

func TestJainDegenerate(t *testing.T) {
	if Jain(nil) != 1 || Jain([]float64{0, 0}) != 1 {
		t.Fatalf("degenerate Jain not 1")
	}
}

func TestJainRange(t *testing.T) {
	f := func(xs []int32) bool {
		vals := make([]float64, len(xs))
		for i, x := range xs {
			vals[i] = math.Abs(float64(x)) // allocation-sized magnitudes
		}
		j := Jain(vals)
		return j > 0 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedJain(t *testing.T) {
	// Allocations exactly proportional to weights -> 1.
	got := WeightedJain([]float64{30, 10}, []float64{3, 1})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("WeightedJain = %v, want 1", got)
	}
	if got := WeightedJain([]float64{10, 10}, []float64{3, 1}); got >= 1 {
		t.Fatalf("disproportional allocation scored %v, want < 1", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v, want 5", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q.25 = %v, want 2", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i := range xs {
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		qa, qb := math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Microsecond
	}
	s := Summarize(ds)
	if s.Count != 100 || s.Min != time.Microsecond || s.Max != 100*time.Microsecond {
		t.Fatalf("bad summary bounds: %+v", s)
	}
	if s.P50 < 49*time.Microsecond || s.P50 > 52*time.Microsecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P99 < 98*time.Microsecond {
		t.Fatalf("P99 = %v", s.P99)
	}
	if s.Mean != 50500*time.Nanosecond {
		t.Fatalf("Mean = %v, want 50.5us", s.Mean)
	}
	if Summarize(nil).Count != 0 {
		t.Fatalf("empty summary has nonzero count")
	}
}

func TestMicros(t *testing.T) {
	if got := Micros(1500 * time.Nanosecond); got != "1.50" {
		t.Fatalf("Micros = %q, want 1.50", got)
	}
}

func TestCDF(t *testing.T) {
	ds := []time.Duration{4, 1, 3, 2}
	pts := CDF(ds, 4)
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[3].Value != 4 || pts[3].Fraction != 1 {
		t.Fatalf("last point %+v, want max with fraction 1", pts[3])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
			t.Fatalf("CDF not monotonic at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
	if CDF(nil, 10) != nil {
		t.Fatalf("empty CDF not nil")
	}
}

func TestCDFDownsamples(t *testing.T) {
	ds := make([]time.Duration, 1000)
	for i := range ds {
		ds[i] = time.Duration(i)
	}
	pts := CDF(ds, 10)
	if len(pts) != 10 {
		t.Fatalf("got %d points, want 10", len(pts))
	}
}

func TestFractionBelow(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4}
	if got := FractionBelow(ds, 3); got != 0.5 {
		t.Fatalf("FractionBelow = %v, want 0.5", got)
	}
	if got := FractionBelow(nil, 3); got != 0 {
		t.Fatalf("empty FractionBelow = %v", got)
	}
}

func TestReservoirSmall(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 5; i++ {
		r.Add(time.Duration(i))
	}
	if r.Seen() != 5 || len(r.Samples()) != 5 {
		t.Fatalf("seen %d len %d", r.Seen(), len(r.Samples()))
	}
}

func TestReservoirBoundedAndUniform(t *testing.T) {
	r := NewReservoir(1000, 42)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		r.Add(time.Duration(rng.Intn(1000)))
	}
	if len(r.Samples()) != 1000 {
		t.Fatalf("reservoir size %d, want 1000", len(r.Samples()))
	}
	// Uniform source: the retained median should be near 500.
	s := r.Summary()
	if s.P50 < 350 || s.P50 > 650 {
		t.Fatalf("retained median %v far from 500", s.P50)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	run := func() []time.Duration {
		r := NewReservoir(100, 99)
		for i := 0; i < 10000; i++ {
			r.Add(time.Duration(i))
		}
		out := make([]time.Duration, len(r.Samples()))
		copy(out, r.Samples())
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reservoir not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "lock", "tput", "fair")
	tb.AddRow("mutex", 123, 0.540)
	tb.AddRow("u-SCL", 456789, 1.0)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "u-SCL") {
		t.Fatalf("missing content:\n%s", out)
	}
	if !strings.Contains(out, "0.54") || strings.Contains(out, "0.540") {
		t.Fatalf("float trimming wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}
