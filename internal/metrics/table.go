package metrics

import (
	"fmt"
	"strings"
)

// Table renders fixed-width text tables for the experiment harness. The
// zero value is not usable; construct with NewTable.
type Table struct {
	header []string
	rows   [][]string
	title  string
}

// NewTable returns a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends one row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
