// Package metrics provides the measurement primitives used throughout the
// SCL reproduction: Jain's fairness index, lock-opportunity accounting,
// quantile summaries, CDFs and fixed-width table rendering for the
// experiment harness.
package metrics

// Jain computes Jain's fairness index over the given allocations:
//
//	J(x) = (Σ x_i)² / (n · Σ x_i²)
//
// The index is 1 when all allocations are equal and approaches 1/n as a
// single entity dominates. By convention Jain of an empty or all-zero
// vector is 1 (a degenerate, perfectly "fair" allocation of nothing).
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// WeightedJain computes Jain's index over allocations normalized by weight,
// i.e. Jain(x_i / w_i). It measures how closely allocations track the
// desired proportional shares: 1.0 means every entity received exactly its
// weighted share. Entries with non-positive weight are skipped.
func WeightedJain(xs, weights []float64) float64 {
	norm := make([]float64, 0, len(xs))
	for i, x := range xs {
		if i >= len(weights) || weights[i] <= 0 {
			continue
		}
		norm = append(norm, x/weights[i])
	}
	return Jain(norm)
}
