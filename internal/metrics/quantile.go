package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. It does not modify xs. Quantile of
// an empty slice is 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary is a five-number-plus summary of a sample of durations, matching
// the columns of the paper's Table 1 (min / 25% / 50% / 90% / 99%).
type Summary struct {
	Count int
	Min   time.Duration
	P25   time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
	Mean  time.Duration
}

// Summarize computes a Summary from a sample of durations.
func Summarize(ds []time.Duration) Summary {
	if len(ds) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(ds))
	var total float64
	for i, d := range ds {
		sorted[i] = float64(d)
		total += float64(d)
	}
	sort.Float64s(sorted)
	q := func(p float64) time.Duration { return time.Duration(quantileSorted(sorted, p)) }
	return Summary{
		Count: len(ds),
		Min:   time.Duration(sorted[0]),
		P25:   q(0.25),
		P50:   q(0.50),
		P90:   q(0.90),
		P99:   q(0.99),
		Max:   time.Duration(sorted[len(sorted)-1]),
		Mean:  time.Duration(total / float64(len(ds))),
	}
}

// Micros renders a duration as microseconds with two decimals, the unit
// used by the paper's Table 1.
func Micros(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Microsecond))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64 // fraction of samples ≤ Value
}

// CDF computes an empirical CDF of the sample, down-sampled to at most
// points entries (evenly spaced in rank). The last point always has
// Fraction 1 and carries the sample maximum.
func CDF(ds []time.Duration, points int) []CDFPoint {
	if len(ds) == 0 || points <= 0 {
		return nil
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if points > len(sorted) {
		points = len(sorted)
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		rank := i*len(sorted)/points - 1
		out = append(out, CDFPoint{
			Value:    sorted[rank],
			Fraction: float64(rank+1) / float64(len(sorted)),
		})
	}
	return out
}

// FractionBelow reports the fraction of samples strictly below limit.
func FractionBelow(ds []time.Duration, limit time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	n := 0
	for _, d := range ds {
		if d < limit {
			n++
		}
	}
	return float64(n) / float64(len(ds))
}
