package metrics

import (
	"math/rand"
	"time"
)

// Reservoir keeps a bounded uniform sample of an unbounded stream of
// durations (Vitter's algorithm R) so long simulations can record latency
// distributions without unbounded memory. The RNG is caller-seeded, keeping
// simulations deterministic.
type Reservoir struct {
	cap     int
	seen    int64
	samples []time.Duration
	rng     *rand.Rand
}

// NewReservoir returns a reservoir holding at most cap samples, drawing
// replacement decisions from the given seed.
func NewReservoir(cap int, seed int64) *Reservoir {
	if cap <= 0 {
		cap = 1
	}
	return &Reservoir{cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(d time.Duration) {
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, d)
		return
	}
	if i := r.rng.Int63n(r.seen); i < int64(r.cap) {
		r.samples[i] = d
	}
}

// Seen reports how many observations were offered in total.
func (r *Reservoir) Seen() int64 { return r.seen }

// Samples returns the retained sample. The returned slice is owned by the
// reservoir; callers must not modify it while still adding.
func (r *Reservoir) Samples() []time.Duration { return r.samples }

// Summary summarizes the retained sample.
func (r *Reservoir) Summary() Summary { return Summarize(r.samples) }
