package metrics

import (
	"math"
	"math/rand"
	"time"
)

// Reservoir keeps a bounded uniform sample of an unbounded stream of
// durations (Vitter's algorithm R) so long simulations can record latency
// distributions without unbounded memory. The RNG is caller-seeded, keeping
// simulations deterministic.
type Reservoir struct {
	cap     int
	seen    int64
	samples []time.Duration
	seed    int64
	rng     *rand.Rand
}

// NewReservoir returns a reservoir holding at most cap samples, drawing
// replacement decisions from the given seed. The RNG is materialized
// lazily, on the first observation past capacity: seeding a math/rand
// source costs microseconds and kilobytes, which dominates entity
// registration in churny workloads, and a stream that never overflows
// the reservoir never makes a replacement decision at all.
func NewReservoir(cap int, seed int64) *Reservoir {
	if cap <= 0 {
		cap = 1
	}
	return &Reservoir{cap: cap, seed: seed}
}

// rand returns the replacement RNG, seeding it on first use.
func (r *Reservoir) rand() *rand.Rand {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.seed))
	}
	return r.rng
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(d time.Duration) {
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, d)
		return
	}
	if i := r.rand().Int63n(r.seen); i < int64(r.cap) {
		r.samples[i] = d
	}
}

// AddN offers n identical observations in one step. It is equivalent in
// distribution to n sequential Add calls but costs O(cap) instead of O(n):
// because the values are identical, only the number of slots they end up
// occupying matters, and that count is drawn once from its expectation
// under algorithm R. Batch accounting paths (lock fast-path folds) use
// this to record thousands of uniform observations per fold cheaply.
func (r *Reservoir) AddN(d time.Duration, n int64) {
	for n > 0 && len(r.samples) < r.cap {
		r.samples = append(r.samples, d)
		r.seen++
		n--
	}
	if n <= 0 {
		return
	}
	before := r.seen
	r.seen += n
	// Expected replacements: Σ cap/i for i in (before, before+n], i.e.
	// cap·ln(after/before); round stochastically to stay unbiased.
	expected := float64(r.cap) * math.Log(float64(r.seen)/float64(before))
	k := int(expected)
	if r.rand().Float64() < expected-float64(k) {
		k++
	}
	if k > r.cap {
		k = r.cap
	}
	for i := 0; i < k; i++ {
		r.samples[r.rand().Intn(len(r.samples))] = d
	}
}

// Seen reports how many observations were offered in total.
func (r *Reservoir) Seen() int64 { return r.seen }

// Samples returns the retained sample. The returned slice is owned by the
// reservoir; callers must not modify it while still adding.
func (r *Reservoir) Samples() []time.Duration { return r.samples }

// Summary summarizes the retained sample.
func (r *Reservoir) Summary() Summary { return Summarize(r.samples) }
