// Package workload provides the synthetic critical-section loop generators
// used by the paper's microbenchmarks (§5): each simulated thread loops,
// spending a fixed time inside a shared lock (the critical section) and a
// fixed time outside it, optionally sleeping (interactive threads).
package workload

import (
	"fmt"
	"time"

	"scl/sim"
)

// Loop describes one synthetic thread.
type Loop struct {
	// CS is the critical-section length per iteration.
	CS time.Duration
	// NCS is the non-critical-section compute per iteration.
	NCS time.Duration
	// Sleep, when positive, is slept after releasing the lock (interactive
	// threads, paper §5.4).
	Sleep time.Duration
	// Nice sets the thread's scheduler weight (0 = default).
	Nice int
	// CPU pins the thread; -1 means round-robin assignment.
	CPU int
	// Name labels the thread (defaults to "w<i>").
	Name string
}

// Counters reports per-thread iteration counts after a run.
type Counters struct {
	Ops []int64
}

// Total sums all iteration counts.
func (c *Counters) Total() int64 {
	var t int64
	for _, n := range c.Ops {
		t += n
	}
	return t
}

// SpawnLoops creates one simulated thread per spec, all contending on lk,
// running until the engine horizon. Threads with CPU = -1 are pinned
// round-robin across the engine's CPUs in spec order.
func SpawnLoops(e *sim.Engine, lk sim.Locker, specs []Loop) *Counters {
	c := &Counters{Ops: make([]int64, len(specs))}
	ncpu := 0
	for i, spec := range specs {
		i, spec := i, spec
		cpu := spec.CPU
		if cpu < 0 {
			cpu = ncpu
			ncpu = (ncpu + 1) % e.CPUCount()
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("w%d", i)
		}
		e.Spawn(name, sim.TaskConfig{Nice: spec.Nice, CPU: cpu}, func(t *sim.Task) {
			for t.Now() < e.Horizon() {
				lk.Lock(t)
				t.Compute(spec.CS)
				lk.Unlock(t)
				t.Compute(spec.NCS)
				if spec.Sleep > 0 {
					t.Sleep(spec.Sleep)
				}
				c.Ops[i]++
			}
		})
	}
	return c
}

// MakeLock constructs one of the studied locks by name: "mutex" (pthread-
// style barging sleep lock), "spin" (test-and-set), "ticket" (FIFO
// spinning), "uscl" (u-SCL with the given slice; 0 = 2ms default) or
// "kscl" (zero slice, inactive GC, no prefetch).
func MakeLock(e *sim.Engine, kind string, slice time.Duration) sim.Locker {
	switch kind {
	case "mutex":
		return sim.NewMutex(e)
	case "spin":
		return sim.NewSpinLock(e)
	case "ticket":
		return sim.NewTicketLock(e)
	case "uscl":
		return sim.NewUSCL(e, slice)
	case "kscl":
		return sim.NewKSCL(e)
	default:
		panic("workload: unknown lock kind " + kind)
	}
}

// LockKinds is the canonical comparison order used in the paper's figures.
var LockKinds = []string{"mutex", "spin", "ticket", "uscl"}

// LockLabel maps a lock kind to the paper's display label.
func LockLabel(kind string) string {
	switch kind {
	case "mutex":
		return "Mtx"
	case "spin":
		return "Spn"
	case "ticket":
		return "Tkt"
	case "uscl":
		return "SCL"
	case "kscl":
		return "k-SCL"
	default:
		return kind
	}
}
