package workload

import (
	"testing"
	"time"

	"scl/sim"
)

func TestSpawnLoopsCountsIterations(t *testing.T) {
	e := sim.New(sim.Config{CPUs: 2, Horizon: 10 * time.Millisecond, Seed: 1})
	lk := MakeLock(e, "ticket", 0)
	c := SpawnLoops(e, lk, []Loop{
		{CS: 10 * time.Microsecond, CPU: 0},
		{CS: 10 * time.Microsecond, CPU: 1},
	})
	e.Run()
	if c.Total() == 0 {
		t.Fatal("no iterations")
	}
	if c.Ops[0] == 0 || c.Ops[1] == 0 {
		t.Fatalf("a thread starved: %v", c.Ops)
	}
}

func TestSpawnLoopsRoundRobinPinning(t *testing.T) {
	e := sim.New(sim.Config{CPUs: 2, Horizon: 5 * time.Millisecond, Seed: 1})
	lk := MakeLock(e, "uscl", 0)
	specs := make([]Loop, 4)
	for i := range specs {
		specs[i] = Loop{CS: time.Microsecond, CPU: -1}
	}
	c := SpawnLoops(e, lk, specs)
	e.Run()
	if c.Total() == 0 {
		t.Fatal("no iterations")
	}
}

func TestSpawnLoopsSleep(t *testing.T) {
	e := sim.New(sim.Config{CPUs: 1, Horizon: 10 * time.Millisecond, Seed: 1})
	lk := MakeLock(e, "mutex", 0)
	c := SpawnLoops(e, lk, []Loop{{CS: 10 * time.Microsecond, Sleep: time.Millisecond}})
	e.Run()
	// ~1ms sleep per loop: around 10 iterations, certainly < 100.
	if c.Ops[0] == 0 || c.Ops[0] > 100 {
		t.Fatalf("sleeping loop ran %d times", c.Ops[0])
	}
}

func TestMakeLockKinds(t *testing.T) {
	e := sim.New(sim.Config{CPUs: 1, Horizon: time.Millisecond, Seed: 1})
	for _, kind := range append(append([]string{}, LockKinds...), "kscl") {
		if MakeLock(e, kind, 0) == nil {
			t.Fatalf("MakeLock(%s) nil", kind)
		}
	}
}

func TestMakeLockUnknownPanics(t *testing.T) {
	e := sim.New(sim.Config{CPUs: 1, Horizon: time.Millisecond, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MakeLock(e, "bogus", 0)
}

func TestLockLabels(t *testing.T) {
	for _, kind := range LockKinds {
		if LockLabel(kind) == "" {
			t.Fatalf("no label for %s", kind)
		}
	}
	if LockLabel("custom") != "custom" {
		t.Fatal("unknown kinds should pass through")
	}
}
