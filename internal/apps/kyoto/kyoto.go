// Package kyoto implements a KyotoCabinet-analogue: an in-memory
// hash-based database guarded by a single reader-writer lock, the locking
// structure behind the paper's Figures 11 and 12. With a
// reader-preference rwlock a steady reader population starves writers
// (fewer than ten writes in an entire run); RW-SCL's class slices give
// writers their configured share back.
package kyoto

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scl"
	"scl/internal/hashtable"
	"scl/sim"
)

// valueSize matches KyotoCabinet-scale records; together with the
// checksum passes below it calibrates critical sections to the
// microseconds a loaded CacheDB operation costs (record copy, visitor
// dispatch, LRU bookkeeping), so the lock is held for realistic spans.
const (
	valueSize   = 512
	readPasses  = 12
	writePasses = 24
)

// DB is the shared hash database. Not goroutine-safe; callers hold the
// reader-writer lock under study.
type DB struct {
	table *hashtable.Table
	keys  int
	sum   atomic.Uint32 // checksum sink, keeps the record work alive
}

// NewDB creates a database preloaded with n entries (the paper uses ten
// million; the harness defaults scale this down — see DESIGN.md).
func NewDB(n int) *DB {
	db := &DB{table: hashtable.New(n * 2), keys: n}
	var val [valueSize]byte
	for i := 0; i < n; i++ {
		db.table.Put(key(i), val[:])
	}
	return db
}

func key(i int) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return string(b[:])
}

// Read performs one random lookup and validates the record (the per-op
// record processing a real CacheDB read does under the lock).
func (db *DB) Read(rng *rand.Rand) bool {
	v, ok := db.table.Get(key(rng.Intn(db.keys)))
	if ok {
		var sum uint32
		for p := 0; p < readPasses; p++ {
			sum = crc32.Update(sum, crc32.IEEETable, v)
		}
		// Atomic: concurrent readers share the sink under RLock.
		db.sum.Store(sum)
	}
	return ok
}

// Write performs one random overwrite, including record generation and
// checksumming under the lock.
func (db *DB) Write(rng *rand.Rand) {
	var val [valueSize]byte
	rng.Read(val[:])
	var sum uint32
	for p := 0; p < writePasses; p++ {
		sum = crc32.Update(sum, crc32.IEEETable, val[:])
	}
	db.sum.Store(sum)
	db.table.Put(key(rng.Intn(db.keys)), val[:])
}

// SimConfig configures the simulator twin of the KyotoCabinet experiment.
type SimConfig struct {
	Lock        string // "rwmutex" (reader preference) or "rwscl"
	Readers     int
	Writers     int
	CPUs        int
	Horizon     time.Duration
	Entries     int
	ReadWeight  int64
	WriteWeight int64
	Period      time.Duration
	Seed        int64
	// WriterNCS is the writers' per-iteration non-critical work (request
	// parsing, response marshalling). With one writer and a substantial
	// NCS the write slice goes partly unused; a second writer fills it
	// (paper Figure 12b).
	WriterNCS time.Duration
}

// SimResult is the outcome of one simulated run.
type SimResult struct {
	ReaderOps, WriterOps   int64
	ReaderHold, WriterHold time.Duration
	ReaderTput, WriterTput float64
	PerTaskHold            []time.Duration
	Horizon                time.Duration
}

// RunSim executes the simulated KyotoCabinet workload: Readers + Writers
// workers pinned round-robin, real hash-table operations with measured
// costs charged to simulated CPUs.
func RunSim(cfg SimConfig) SimResult {
	if cfg.CPUs == 0 {
		cfg.CPUs = 8
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = time.Second
	}
	if cfg.Entries == 0 {
		cfg.Entries = 100_000
	}
	if cfg.ReadWeight == 0 {
		cfg.ReadWeight = 9
	}
	if cfg.WriteWeight == 0 {
		cfg.WriteWeight = 1
	}
	runtime.GC() // measured-cost runs: don't carry GC debt across configs
	e := sim.New(sim.Config{CPUs: cfg.CPUs, Horizon: cfg.Horizon, Seed: cfg.Seed})
	var lk sim.RWLocker
	switch cfg.Lock {
	case "", "rwmutex":
		lk = sim.NewRWMutex(e)
	case "rwscl":
		lk = sim.NewRWSCL(e, cfg.Period, cfg.ReadWeight, cfg.WriteWeight)
	default:
		panic("kyoto: unknown lock " + cfg.Lock)
	}
	db := NewDB(cfg.Entries)
	total := cfg.Readers + cfg.Writers
	ops := make([]int64, total)
	for i := 0; i < total; i++ {
		i := i
		writer := i >= cfg.Readers
		name := fmt.Sprintf("reader-%d", i)
		if writer {
			name = fmt.Sprintf("writer-%d", i)
		}
		rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(i)))
		e.Spawn(name, sim.TaskConfig{CPU: i % cfg.CPUs}, func(t *sim.Task) {
			for t.Now() < cfg.Horizon {
				start := time.Now()
				if writer {
					lk.WLock(t)
					start = time.Now()
					db.Write(rng)
					t.Compute(sinceAtLeast(start, 50*time.Nanosecond))
					lk.WUnlock(t)
					t.Compute(cfg.WriterNCS)
				} else {
					lk.RLock(t)
					start = time.Now()
					db.Read(rng)
					t.Compute(sinceAtLeast(start, 50*time.Nanosecond))
					lk.RUnlock(t)
				}
				t.Compute(200 * time.Nanosecond)
				ops[i]++
			}
		})
	}
	e.Run()

	res := SimResult{Horizon: cfg.Horizon}
	s := lk.Stats()
	for i := 0; i < total; i++ {
		res.PerTaskHold = append(res.PerTaskHold, s.Hold(i))
		if i >= cfg.Readers {
			res.WriterOps += ops[i]
			res.WriterHold += s.Hold(i)
		} else {
			res.ReaderOps += ops[i]
			res.ReaderHold += s.Hold(i)
		}
	}
	secs := cfg.Horizon.Seconds()
	res.ReaderTput = float64(res.ReaderOps) / secs
	res.WriterTput = float64(res.WriterOps) / secs
	return res
}

// sinceAtLeast returns the elapsed real time since start, floored at min
// (clock granularity) and capped at 100µs: the substrate's operations are
// microsecond-scale by construction, so larger readings are measurement
// noise (a GC pause or OS preemption of the simulating process), not
// critical-section work.
func sinceAtLeast(start time.Time, min time.Duration) time.Duration {
	const cap = 100 * time.Microsecond
	d := time.Since(start)
	if d < min {
		return min
	}
	if d > cap {
		return cap
	}
	return d
}

// RealConfig configures a real-goroutine KyotoCabinet run.
type RealConfig struct {
	Lock        string // "rwscl" only (Go's sync.RWMutex is writer-preference, not the paper's baseline)
	Readers     int
	Writers     int
	Duration    time.Duration
	Entries     int
	ReadWeight  int64
	WriteWeight int64
	Period      time.Duration
	Seed        int64
}

// RealResult is the outcome of a real-goroutine run.
type RealResult struct {
	Stats                  scl.RWStats
	ReaderTput, WriterTput float64
}

// RunReal executes the workload on real goroutines with the real RW-SCL.
func RunReal(cfg RealConfig) RealResult {
	if cfg.Duration == 0 {
		cfg.Duration = time.Second
	}
	if cfg.Entries == 0 {
		cfg.Entries = 100_000
	}
	if cfg.ReadWeight == 0 {
		cfg.ReadWeight = 9
	}
	if cfg.WriteWeight == 0 {
		cfg.WriteWeight = 1
	}
	// The RW-SCL provides the needed exclusion: concurrent readers only
	// ever read the table; writers hold it exclusively.
	db := NewDB(cfg.Entries)
	lk := scl.NewRWLock(cfg.ReadWeight, cfg.WriteWeight, cfg.Period)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Readers; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				lk.RLock()
				db.Read(rng)
				lk.RUnlock()
			}
		}()
	}
	for i := 0; i < cfg.Writers; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed*2000 + int64(i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				lk.WLock()
				db.Write(rng)
				lk.WUnlock()
			}
		}()
	}
	wg.Wait()
	st := lk.Stats()
	secs := cfg.Duration.Seconds()
	return RealResult{
		Stats:      st,
		ReaderTput: float64(st.ReaderOps) / secs,
		WriterTput: float64(st.WriterOps) / secs,
	}
}
