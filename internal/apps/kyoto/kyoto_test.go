package kyoto

import (
	"math/rand"
	"testing"
	"time"
)

func TestDBBasics(t *testing.T) {
	db := NewDB(1000)
	rng := rand.New(rand.NewSource(1))
	if !db.Read(rng) {
		t.Fatal("read on preloaded db failed")
	}
	db.Write(rng) // overwrite must not grow the table
	if db.table.Len() != 1000 {
		t.Fatalf("len %d after overwrite", db.table.Len())
	}
}

func TestSimReaderPreferenceStarvesWriter(t *testing.T) {
	// Paper Figure 11 vanilla: the writer is starved by reader preference.
	res := RunSim(SimConfig{
		Lock: "rwmutex", Readers: 7, Writers: 1,
		CPUs: 8, Horizon: 200 * time.Millisecond, Entries: 20000, Seed: 1,
	})
	if res.WriterOps*50 > res.ReaderOps {
		t.Fatalf("writer not starved: %d writes vs %d reads", res.WriterOps, res.ReaderOps)
	}
}

func TestSimRWSCLGivesWriterShare(t *testing.T) {
	// Paper Figure 11 RW-SCL: the writer gets its 10% opportunity.
	vanilla := RunSim(SimConfig{
		Lock: "rwmutex", Readers: 7, Writers: 1,
		CPUs: 8, Horizon: 200 * time.Millisecond, Entries: 20000, Seed: 1,
	})
	rwscl := RunSim(SimConfig{
		Lock: "rwscl", Readers: 7, Writers: 1,
		CPUs: 8, Horizon: 200 * time.Millisecond, Entries: 20000, Seed: 1,
	})
	if rwscl.WriterOps < 20*vanilla.WriterOps {
		t.Fatalf("RW-SCL writer ops %d, vanilla %d: want large improvement",
			rwscl.WriterOps, vanilla.WriterOps)
	}
	if rwscl.ReaderOps == 0 {
		t.Fatal("readers starved under RW-SCL")
	}
	// Writer hold should be in the vicinity of its 10% share of held time.
	frac := float64(rwscl.WriterHold) / float64(rwscl.WriterHold+rwscl.ReaderHold)
	if frac < 0.01 || frac > 0.4 {
		t.Fatalf("writer hold fraction %.3f, want around 0.1", frac)
	}
}

func TestRunRealSmoke(t *testing.T) {
	res := RunReal(RealConfig{
		Readers: 2, Writers: 1, Duration: 150 * time.Millisecond,
		Entries: 10000, Seed: 1,
	})
	if res.Stats.ReaderOps == 0 || res.Stats.WriterOps == 0 {
		t.Fatalf("ops: readers %d writers %d", res.Stats.ReaderOps, res.Stats.WriterOps)
	}
}
