package upscale

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"scl"
	"scl/internal/metrics"
)

// RealConfig configures the real-goroutine UpScaleDB run (used by the
// examples and cmd tools; the simulator twin is the reproducible harness).
type RealConfig struct {
	Lock          string // "barging" (pthread-style) or "uscl"
	FindThreads   int
	InsertThreads int
	Duration      time.Duration
	Preload       int
	Slice         time.Duration
	Seed          int64
}

// RealResult is the outcome of a real-goroutine run.
type RealResult struct {
	Threads    []ThreadResult
	FindOps    int64
	InsertOps  int64
	JainHold   float64
	FindTput   float64
	InsertTput float64
}

// RunReal executes the workload on real goroutines. Go cannot pin
// goroutines or report per-goroutine CPU time, so the observable here is
// the paper's actual mechanism: per-thread lock hold time (measured inside
// the critical section) and throughput.
func RunReal(cfg RealConfig) RealResult {
	if cfg.Duration == 0 {
		cfg.Duration = time.Second
	}
	store := NewStore(cfg.Preload)
	total := cfg.FindThreads + cfg.InsertThreads

	var usclLock *scl.Mutex
	var barging sync.Locker
	switch cfg.Lock {
	case "", "barging":
		barging = &scl.BargingMutex{}
	case "uscl":
		usclLock = scl.NewMutex(scl.Options{Slice: cfg.Slice})
	default:
		panic("upscale: unknown lock " + cfg.Lock)
	}

	holds := make([]time.Duration, total)
	ops := make([]int64, total)
	kinds := make([]string, total)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		i := i
		insert := i >= cfg.FindThreads
		kinds[i] = "find"
		if insert {
			kinds[i] = "insert"
		}
		var lk sync.Locker
		if usclLock != nil {
			lk = usclLock.Register().SetName(fmt.Sprintf("%s-%d", kinds[i], i))
		} else {
			lk = barging
		}
		rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				lk.Lock()
				h0 := time.Now()
				if insert {
					store.Insert(rng)
				} else {
					store.Find(rng)
				}
				holds[i] += time.Since(h0)
				lk.Unlock()
				ops[i]++
			}
		}()
	}
	wg.Wait()

	res := RealResult{}
	xs := make([]float64, total)
	for i := 0; i < total; i++ {
		res.Threads = append(res.Threads, ThreadResult{
			Name: fmt.Sprintf("%s-%d", kinds[i], i),
			Kind: kinds[i],
			Ops:  ops[i],
			Hold: holds[i],
		})
		xs[i] = float64(holds[i])
		if kinds[i] == "find" {
			res.FindOps += ops[i]
		} else {
			res.InsertOps += ops[i]
		}
	}
	res.JainHold = metrics.Jain(xs)
	secs := cfg.Duration.Seconds()
	res.FindTput = float64(res.FindOps) / secs
	res.InsertTput = float64(res.InsertOps) / secs
	return res
}
