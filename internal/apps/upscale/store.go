// Package upscale implements an UpScaleDB-analogue: an embedded key-value
// store backed by a B+-tree and a write-ahead journal, protected by one
// global environment lock — the locking structure behind the paper's
// Figures 1 and 10. Find operations only search the tree; insert
// operations update the tree and append-commit to the journal, so insert
// critical sections are an order of magnitude longer than find critical
// sections (paper Table 1, UpScaleDB row).
//
// The store runs in two harnesses: a real-goroutine mode (cmd/lht,
// examples) and a simulator twin where each simulated thread executes the
// real data-structure operation, measures its actual duration, and charges
// it to the simulated CPU.
package upscale

import (
	"encoding/binary"
	"math/rand"

	"scl/internal/btree"
	"scl/internal/journal"
)

// Store is the shared state guarded by the global environment lock.
// Store methods are not goroutine-safe; callers hold the lock under study.
type Store struct {
	tree    *btree.Tree
	journal *journal.Journal
	nextKey uint64
}

// valueSize is the record payload size; with the journal's device passes
// it calibrates insert critical sections to the microseconds the paper
// measures for UpScaleDB (Table 1: insert p50 1.11µs vs find p50 0.03µs).
const valueSize = 256

// NewStore creates a store preloaded with preload sequential records.
func NewStore(preload int) *Store {
	s := &Store{tree: btree.New(), journal: journal.New(128)}
	var val [valueSize]byte
	for i := 0; i < preload; i++ {
		s.tree.Insert(s.keyBytes(uint64(i)), val[:])
	}
	s.nextKey = uint64(preload)
	return s
}

func (s *Store) keyBytes(k uint64) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], k)
	return b[:]
}

// Len returns the number of records.
func (s *Store) Len() int { return s.tree.Len() }

// Find performs one random lookup (the ups_bench find op). It returns
// whether the key was present.
func (s *Store) Find(rng *rand.Rand) bool {
	if s.nextKey == 0 {
		return false
	}
	k := uint64(rng.Int63n(int64(s.nextKey)))
	_, ok := s.tree.Get(s.keyBytes(k))
	return ok
}

// Insert performs one random-key insert plus a journal append and group
// commit (ups_bench with fsync-style journaling). The journal write
// dominates, making insert critical sections roughly an order of
// magnitude longer than finds, as in the paper's Table 1.
func (s *Store) Insert(rng *rand.Rand) {
	k := s.nextKey
	s.nextKey++
	var val [valueSize]byte
	rng.Read(val[:])
	key := s.keyBytes(k)
	s.tree.Insert(key, val[:])
	s.journal.Append(key)
	s.journal.Append(val[:])
	s.journal.Commit()
}
