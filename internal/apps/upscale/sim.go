package upscale

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"scl/sim"
)

// SimConfig configures the simulator twin of the UpScaleDB experiment
// (paper Figures 1 and 10): FindThreads + InsertThreads workers pinned
// round-robin over CPUs, all contending on the global environment lock.
type SimConfig struct {
	Lock          string // "mutex" (pthread-style) or "uscl"
	FindThreads   int
	InsertThreads int
	CPUs          int
	Horizon       time.Duration
	Preload       int
	Slice         time.Duration // u-SCL slice (0 = default 2ms)
	Seed          int64
}

// ThreadResult summarizes one worker.
type ThreadResult struct {
	Name    string
	Kind    string // "find" or "insert"
	Ops     int64
	CPUTime time.Duration // simulated CPU seconds allocated to the thread
	CPUHold time.Duration // CPU while holding the lock
	Hold    time.Duration // lock hold (wall) time
}

// SimResult is the outcome of one simulated run.
type SimResult struct {
	Threads    []ThreadResult
	FindOps    int64
	InsertOps  int64
	JainHold   float64
	LockUtil   float64 // fraction of the run the lock was held
	Horizon    time.Duration
	CPUUtil    float64
	FindTput   float64 // ops/sec
	InsertTput float64
}

// RunSim executes the simulated UpScaleDB workload. Each simulated thread
// executes real B+-tree/journal operations on the shared store, measures
// their actual duration, and charges that to the simulated CPU — so
// critical-section lengths have the store's authentic distribution while
// scheduling and locking are fully simulated.
func RunSim(cfg SimConfig) SimResult {
	if cfg.CPUs == 0 {
		cfg.CPUs = 4
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 2 * time.Second
	}
	runtime.GC() // measured-cost runs: don't carry GC debt across configs
	e := sim.New(sim.Config{CPUs: cfg.CPUs, Horizon: cfg.Horizon, Seed: cfg.Seed})
	var lk sim.Locker
	switch cfg.Lock {
	case "", "mutex":
		lk = sim.NewMutex(e)
	case "uscl":
		lk = sim.NewUSCL(e, cfg.Slice)
	default:
		panic("upscale: unknown lock " + cfg.Lock)
	}
	store := NewStore(cfg.Preload)
	total := cfg.FindThreads + cfg.InsertThreads
	ops := make([]int64, total)
	kinds := make([]string, total)
	for i := 0; i < total; i++ {
		i := i
		insert := i >= cfg.FindThreads
		kind := "find"
		if insert {
			kind = "insert"
		}
		kinds[i] = kind
		name := fmt.Sprintf("%s-%d", kind, i)
		rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(i)))
		e.Spawn(name, sim.TaskConfig{CPU: i % cfg.CPUs}, func(t *sim.Task) {
			for t.Now() < cfg.Horizon {
				lk.Lock(t)
				start := time.Now()
				if insert {
					store.Insert(rng)
				} else {
					store.Find(rng)
				}
				t.Compute(sinceAtLeast(start, 50*time.Nanosecond))
				lk.Unlock(t)
				// Client-side work between operations (key generation,
				// result handling).
				t.Compute(200 * time.Nanosecond)
				ops[i]++
			}
		})
	}
	e.Run()

	res := SimResult{Horizon: cfg.Horizon, CPUUtil: e.Utilization()}
	s := lk.Stats()
	ids := make([]int, total)
	for i := 0; i < total; i++ {
		ids[i] = i
		task := e.TaskByID(i)
		tr := ThreadResult{
			Name:    task.Name(),
			Kind:    kinds[i],
			Ops:     ops[i],
			CPUTime: task.CPUTime(),
			CPUHold: task.CPUHoldTime(),
			Hold:    s.Hold(i),
		}
		res.Threads = append(res.Threads, tr)
		if kinds[i] == "find" {
			res.FindOps += ops[i]
		} else {
			res.InsertOps += ops[i]
		}
	}
	res.JainHold = s.JainHold(ids...)
	res.LockUtil = float64(s.TotalHold()) / float64(cfg.Horizon)
	secs := cfg.Horizon.Seconds()
	res.FindTput = float64(res.FindOps) / secs
	res.InsertTput = float64(res.InsertOps) / secs
	return res
}

// sinceAtLeast returns the elapsed real time since start, floored at min
// (clock resolution can return 0 for very short operations) and capped at
// 100µs: the store's operations are microsecond-scale by construction, so
// larger readings are measurement noise (a GC pause or OS preemption of
// the simulating process), not critical-section work.
func sinceAtLeast(start time.Time, min time.Duration) time.Duration {
	const cap = 100 * time.Microsecond
	d := time.Since(start)
	if d < min {
		return min
	}
	if d > cap {
		return cap
	}
	return d
}
