package upscale

import (
	"math/rand"
	"testing"
	"time"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore(1000)
	if s.Len() != 1000 {
		t.Fatalf("preload len %d", s.Len())
	}
	rng := rand.New(rand.NewSource(1))
	if !s.Find(rng) {
		t.Fatal("find on preloaded store failed")
	}
	before := s.Len()
	s.Insert(rng)
	if s.Len() != before+1 {
		t.Fatalf("insert did not grow store: %d", s.Len())
	}
}

func TestFindOnEmptyStore(t *testing.T) {
	s := NewStore(0)
	if s.Find(rand.New(rand.NewSource(1))) {
		t.Fatal("find on empty store succeeded")
	}
}

func TestSimMutexSubvertsScheduler(t *testing.T) {
	// Paper Figure 1: with a pthread-style mutex, insert threads (long CS)
	// dominate the lock and hence the CPU.
	res := RunSim(SimConfig{
		Lock: "mutex", FindThreads: 2, InsertThreads: 2,
		CPUs: 2, Horizon: 300 * time.Millisecond, Preload: 20000, Seed: 1,
	})
	var findHold, insertHold time.Duration
	for _, th := range res.Threads {
		if th.Kind == "find" {
			findHold += th.Hold
		} else {
			insertHold += th.Hold
		}
	}
	if insertHold < 3*findHold {
		t.Fatalf("insert hold %v not ≫ find hold %v", insertHold, findHold)
	}
	if res.JainHold > 0.9 {
		t.Fatalf("mutex hold fairness %.3f, want clearly unfair", res.JainHold)
	}
}

func TestSimUSCLRestoresFairness(t *testing.T) {
	// Paper Figure 10b: with u-SCL, hold times equalize and find
	// throughput improves by orders of magnitude.
	mutex := RunSim(SimConfig{
		Lock: "mutex", FindThreads: 2, InsertThreads: 2,
		CPUs: 2, Horizon: 300 * time.Millisecond, Preload: 20000, Seed: 1,
	})
	uscl := RunSim(SimConfig{
		Lock: "uscl", FindThreads: 2, InsertThreads: 2,
		CPUs: 2, Horizon: 300 * time.Millisecond, Preload: 20000, Seed: 1,
	})
	if uscl.JainHold < 0.9 {
		t.Fatalf("u-SCL hold fairness %.3f, want ~1", uscl.JainHold)
	}
	if uscl.FindTput < 3*mutex.FindTput {
		t.Fatalf("u-SCL find tput %.0f not ≫ mutex %.0f", uscl.FindTput, mutex.FindTput)
	}
}

func TestRunRealSmoke(t *testing.T) {
	for _, lock := range []string{"barging", "uscl"} {
		res := RunReal(RealConfig{
			Lock: lock, FindThreads: 2, InsertThreads: 2,
			Duration: 150 * time.Millisecond, Preload: 5000, Seed: 1,
		})
		if res.FindOps == 0 && res.InsertOps == 0 {
			t.Fatalf("%s: no operations completed", lock)
		}
		if len(res.Threads) != 4 {
			t.Fatalf("%s: %d threads", lock, len(res.Threads))
		}
	}
}
