package core

import (
	"fmt"
	"time"

	"scl/internal/check"
)

// ID identifies a schedulable entity (a thread in the paper; a registered
// goroutine handle, process, connection or tenant here).
type ID int64

// Params configures an Accountant.
type Params struct {
	// Slice is the lock slice: the window during which a single owner may
	// acquire and release the lock as often as it likes with fast-path cost
	// and deferred accounting (paper §4.2). Slice 0 (k-SCL) makes every
	// release a slice boundary. The paper's default is 2ms.
	Slice time.Duration

	// SlackRatio is how far an entity's cumulative usage fraction may exceed
	// its share before a penalty is imposed. A small slack avoids penalty
	// flapping when an entity sits exactly at its share.
	SlackRatio float64

	// BanCap bounds a single penalty. Zero means DefaultBanCap. It protects
	// against one pathological critical section banning its thread for an
	// unbounded period.
	BanCap time.Duration

	// JoinCredit bounds how much cumulative usage deficit a newly registered
	// (or long-idle, re-registered) entity may carry: at registration its
	// usage is floored so its deficit is at most JoinCredit. Without the
	// floor a latecomer could monopolize the lock for as long as the
	// incumbents have been running. Zero means DefaultJoinCredit.
	JoinCredit time.Duration

	// InactiveTimeout, when positive, is how long an entity may go without
	// acquiring the lock before Expire removes it from the accounting
	// (k-SCL's inactive-thread GC, paper §4.4; the paper uses 1s).
	InactiveTimeout time.Duration
}

// Defaults mirroring the paper's configuration.
const (
	DefaultSlice      = 2 * time.Millisecond
	DefaultSlackRatio = 0.01
	DefaultBanCap     = 30 * time.Second
	DefaultJoinCredit = 100 * time.Millisecond
	// rescaleLimit keeps cumulative usage counters bounded; ratios are
	// preserved when all counters are halved.
	rescaleLimit = time.Duration(1) << 40 // ~18 minutes
)

func (p Params) withDefaults() Params {
	if p.SlackRatio == 0 {
		p.SlackRatio = DefaultSlackRatio
	}
	if p.BanCap == 0 {
		p.BanCap = DefaultBanCap
	}
	if p.JoinCredit == 0 {
		p.JoinCredit = DefaultJoinCredit
	}
	return p
}

type entity struct {
	id          ID
	weight      int64
	usage       time.Duration // cumulative lock hold time (rescaled)
	sliceUsage  time.Duration // hold time within the current slice ownership
	holdStart   time.Duration
	holding     bool
	bannedUntil time.Duration
	lastActive  time.Duration
	registered  bool
}

// Release is the decision returned when an entity releases the lock.
type Release struct {
	// SliceExpired reports that the owner's slice is over and lock ownership
	// must transfer to the next waiting entity.
	SliceExpired bool
	// Penalty is the ban to impose on this entity's next acquire attempt
	// (zero if the entity is at or below its allotted usage ratio).
	Penalty time.Duration
	// Hold is the duration of the critical section that just ended.
	Hold time.Duration
	// SliceUse is the hold time the owner accumulated within the slice
	// that just expired (set only when SliceExpired; used by tracing).
	SliceUse time.Duration
}

// Accountant tracks lock usage per entity and makes the SCL fairness
// decisions: when a slice expires, and how long an over-user must be banned
// so that every active entity receives lock opportunity proportional to its
// weight. All times are caller-provided nanosecond timestamps on a single
// monotonic clock.
type Accountant struct {
	params      Params
	entities    map[ID]*entity
	totalWeight int64
	grandUsage  time.Duration // Σ usage over registered entities

	sliceOwner ID
	sliceStart time.Duration
	hasOwner   bool
}

// NewAccountant returns an Accountant with the given parameters
// (zero-valued fields take the documented defaults).
func NewAccountant(p Params) *Accountant {
	return &Accountant{
		params:   p.withDefaults(),
		entities: make(map[ID]*entity),
	}
}

// Params returns the effective (defaulted) parameters.
func (a *Accountant) Params() Params { return a.params }

// Register adds an entity with the given weight to the accounting, or
// updates its weight if already present. A new or returning entity is
// granted at most JoinCredit of usage deficit so it cannot monopolize the
// lock to "catch up" on an arbitrarily long past.
func (a *Accountant) Register(id ID, weight int64, now time.Duration) {
	check.Point("acct.register")
	if weight <= 0 {
		panic(fmt.Sprintf("core: entity %d registered with non-positive weight %d", id, weight))
	}
	if e, ok := a.entities[id]; ok {
		a.totalWeight += weight - e.weight
		e.weight = weight
		e.lastActive = now
		return
	}
	e := &entity{id: id, weight: weight, lastActive: now, registered: true}
	a.entities[id] = e
	a.totalWeight += weight
	// Floor the newcomer's usage so its deficit versus its fair share of the
	// historical total is bounded by JoinCredit.
	if fair := a.fairUsage(e); fair > a.params.JoinCredit {
		e.usage = fair - a.params.JoinCredit
		a.grandUsage += e.usage
		// The floor can add up to the incumbent grand total; without a
		// rescale check here, a burst of high-weight registrations could
		// grow the counters without bound (found by FuzzAccountant).
		if a.grandUsage > rescaleLimit {
			a.rescale()
		}
	}
}

// Unregister removes an entity (thread exit). Its history leaves the
// books so remaining shares are computed over live entities only.
func (a *Accountant) Unregister(id ID) {
	e, ok := a.entities[id]
	if !ok {
		return
	}
	a.totalWeight -= e.weight
	a.grandUsage -= e.usage
	delete(a.entities, id)
	if a.hasOwner && a.sliceOwner == id {
		a.hasOwner = false
	}
}

// Registered reports whether id is currently tracked.
func (a *Accountant) Registered(id ID) bool {
	_, ok := a.entities[id]
	return ok
}

// Len returns the number of tracked entities.
func (a *Accountant) Len() int { return len(a.entities) }

// Share returns the entity's proportional share of lock opportunity,
// weight_i / Σ weight over registered entities.
func (a *Accountant) Share(id ID) float64 {
	e, ok := a.entities[id]
	if !ok || a.totalWeight == 0 {
		return 0
	}
	return float64(e.weight) / float64(a.totalWeight)
}

// fairUsage is the usage entity e would have if the historical total had
// been divided exactly by weight.
func (a *Accountant) fairUsage(e *entity) time.Duration {
	if a.totalWeight == 0 {
		return 0
	}
	return time.Duration(float64(a.grandUsage) * float64(e.weight) / float64(a.totalWeight))
}

// StartSlice makes id the slice owner beginning at now. The enclosing lock
// calls this when ownership transfers (or on first acquisition).
func (a *Accountant) StartSlice(id ID, now time.Duration) {
	a.sliceOwner = id
	a.sliceStart = now
	a.hasOwner = true
	if e, ok := a.entities[id]; ok {
		e.sliceUsage = 0
	}
}

// SliceOwner returns the current slice owner, if any.
func (a *Accountant) SliceOwner() (ID, bool) { return a.sliceOwner, a.hasOwner }

// ClearSlice removes slice ownership (the lock went wholly idle).
func (a *Accountant) ClearSlice() { a.hasOwner = false }

// SliceEnd returns when the current slice expires (start + slice length).
// Meaningless when there is no owner.
func (a *Accountant) SliceEnd() time.Duration { return a.sliceStart + a.params.Slice }

// SliceExpired reports whether the current slice has run past its length at
// time now. With no owner it reports true.
func (a *Accountant) SliceExpired(now time.Duration) bool {
	if !a.hasOwner {
		return true
	}
	return now-a.sliceStart >= a.params.Slice
}

// OnAcquire records that id acquired the lock at now. Entities acquiring a
// lock they never registered for are auto-registered at the reference
// weight (matching u-SCL's lazy per-thread allocation).
func (a *Accountant) OnAcquire(id ID, now time.Duration) {
	e, ok := a.entities[id]
	if !ok {
		a.Register(id, ReferenceWeight, now)
		e = a.entities[id]
	}
	e.holding = true
	e.holdStart = now
	e.lastActive = now
}

// OnRelease records that id released the lock at now and returns the SCL
// decision: whether the slice expired (ownership must transfer) and the
// penalty, if any, to impose on this entity's next acquire attempt.
//
// The penalty implements the paper's rule (§4.2): it is computed at
// release, imposed at next acquire, and only applied to entities whose
// cumulative usage fraction exceeds their allotted share. Its magnitude
// makes the just-ended ownership window average out to the entity's share:
// after using the lock for U, the entity stays away for U/share − U.
func (a *Accountant) OnRelease(id ID, now time.Duration) Release {
	check.Point("acct.release")
	e, ok := a.entities[id]
	if !ok || !e.holding {
		return Release{}
	}
	hold := now - e.holdStart
	if hold < 0 {
		hold = 0
	}
	e.holding = false
	e.lastActive = now
	e.usage += hold
	a.grandUsage += hold
	if a.hasOwner && a.sliceOwner == id {
		e.sliceUsage += hold
	}
	rel := Release{Hold: hold}
	if !a.SliceExpired(now) {
		return rel
	}
	rel.SliceExpired = true
	if a.hasOwner && a.sliceOwner == id {
		rel.SliceUse = e.sliceUsage
	}
	rel.Penalty = a.penalty(e)
	if rel.Penalty > 0 {
		e.bannedUntil = now + rel.Penalty
	}
	if a.grandUsage > rescaleLimit {
		a.rescale()
	}
	return rel
}

// FoldSliceUsage charges id a batch of deferred lock usage in one step:
// the wall-clock window during which its live slice kept the lock via the
// enclosing lock's atomic fast path (paper §4.2 — the slice owner
// re-acquires with a single atomic update and accounting is deferred to
// slice boundaries). The batch lands in the entity's cumulative usage, the
// grand total, and the running slice's usage (so the penalty decision at
// the coming slice end sees it), exactly as if it had been accumulated by
// per-operation OnAcquire/OnRelease pairs.
func (a *Accountant) FoldSliceUsage(id ID, usage time.Duration, now time.Duration) {
	check.Point("acct.fold")
	if usage <= 0 {
		return
	}
	e, ok := a.entities[id]
	if !ok {
		return
	}
	e.usage += usage
	a.grandUsage += usage
	e.lastActive = now
	if a.hasOwner && a.sliceOwner == id {
		e.sliceUsage += usage
	}
	if a.grandUsage > rescaleLimit {
		a.rescale()
	}
}

// penalty computes the ban for an entity whose slice just expired.
func (a *Accountant) penalty(e *entity) time.Duration {
	return a.windowPenalty(e, e.sliceUsage)
}

// windowPenalty is the paper's §4.2 penalty rule for an ownership window
// of the given length: an entity whose cumulative usage fraction exceeds
// its share stays away for window/share − window, so the window averages
// out to the share. Shared by the slice-boundary path (window = slice
// usage) and ChargeWindow (window = one externally measured hold).
func (a *Accountant) windowPenalty(e *entity, window time.Duration) time.Duration {
	if a.grandUsage <= 0 || a.totalWeight <= 0 {
		return 0
	}
	share := float64(e.weight) / float64(a.totalWeight)
	if share >= 1 {
		return 0 // lone entity: the lock is all theirs
	}
	ratio := float64(e.usage) / float64(a.grandUsage)
	if ratio <= share+a.params.SlackRatio {
		return 0 // at or under its allotment: no penalty (paper §4.2)
	}
	if window <= 0 {
		return 0
	}
	pen := time.Duration(float64(window)/share) - window
	if pen > a.params.BanCap {
		pen = a.params.BanCap
	}
	if pen < 0 {
		pen = 0
	}
	return pen
}

// ChargeWindow books one externally measured ownership window for id in
// k-SCL style: the window is accrued into the entity's cumulative usage
// and the grand total, and — every charge being a slice boundary, as in a
// zero-length-slice lock — the penalty decision is made immediately with
// the window itself as the slice usage. The returned penalty has already
// been imposed on the entity's books (BannedUntil); the caller enforces
// it on the entity's next acquire attempt, exactly like Release.Penalty.
//
// Unlike OnRelease, bans stack: an entity may own several windows
// concurrently (a tenant holding many locks of a table), so a fresh
// penalty extends an outstanding ban rather than resetting it — the
// stayaway owed for each window is served in full.
//
// Entities never registered (or already reaped) are ignored: the caller
// owns registration, and charging a ghost would corrupt the grand total.
func (a *Accountant) ChargeWindow(id ID, window, now time.Duration) time.Duration {
	check.Point("acct.charge")
	e, ok := a.entities[id]
	if !ok || window <= 0 {
		return 0
	}
	e.usage += window
	a.grandUsage += window
	e.lastActive = now
	pen := a.windowPenalty(e, window)
	if pen > 0 {
		base := now
		if e.bannedUntil > base {
			base = e.bannedUntil
		}
		e.bannedUntil = base + pen
	}
	if a.grandUsage > rescaleLimit {
		a.rescale()
	}
	return pen
}

// Charge is one entity's share of a combined batch: the critical-section
// time the combiner measured while executing the entity's closure.
type Charge struct {
	ID    ID
	Usage time.Duration
}

// FoldBatch books a batch of combiner-measured critical sections in one
// step: each charge lands in its entity's cumulative usage and the grand
// total exactly as if the entity had acquired and released itself, and —
// combining executions being ownership windows outside any slice the
// entity owns — the penalty decision for each is made immediately,
// ChargeWindow-style, with the measured window as the slice usage.
// Returned penalties align with charges and have already been imposed on
// the books (stacking, like ChargeWindow: combined windows of one entity
// may land in quick succession and each stayaway is served in full); the
// caller enforces them on the entity's next acquire attempt and reports
// them to tracing. Charges for entities never registered (or already
// reaped mid-wait) are skipped and return a zero penalty — the caller
// owns registration, and charging a ghost would corrupt the grand total.
func (a *Accountant) FoldBatch(charges []Charge, now time.Duration) []time.Duration {
	check.Point("acct.foldbatch")
	pens := make([]time.Duration, len(charges))
	for i, c := range charges {
		e, ok := a.entities[c.ID]
		if !ok || c.Usage <= 0 {
			continue
		}
		e.usage += c.Usage
		a.grandUsage += c.Usage
		e.lastActive = now
		pen := a.windowPenalty(e, c.Usage)
		if pen > 0 {
			base := now
			if e.bannedUntil > base {
				base = e.bannedUntil
			}
			e.bannedUntil = base + pen
		}
		pens[i] = pen
	}
	if a.grandUsage > rescaleLimit {
		a.rescale()
	}
	return pens
}

// BannedUntil returns the absolute time until which id is banned from
// acquiring (zero if not banned).
func (a *Accountant) BannedUntil(id ID) time.Duration {
	if e, ok := a.entities[id]; ok {
		return e.bannedUntil
	}
	return 0
}

// Banned reports whether id is banned at time now.
func (a *Accountant) Banned(id ID, now time.Duration) bool {
	return a.BannedUntil(id) > now
}

// Usage returns the entity's cumulative (rescaled) lock hold time.
func (a *Accountant) Usage(id ID) time.Duration {
	if e, ok := a.entities[id]; ok {
		return e.usage
	}
	return 0
}

// GrandUsage returns the cumulative (rescaled) hold time over all
// registered entities.
func (a *Accountant) GrandUsage() time.Duration { return a.grandUsage }

// Expired describes one entity removed by ExpireInactive: its ID and how
// long it had been idle when reaped.
type Expired struct {
	ID   ID
	Idle time.Duration
}

// Expire removes entities that have not touched the lock since
// now − InactiveTimeout (k-SCL's GC of stale per-thread state). It is a
// no-op when InactiveTimeout is zero or for entities currently holding,
// owning the slice, or still banned. It returns the IDs removed.
func (a *Accountant) Expire(now time.Duration) []ID {
	exp := a.ExpireInactive(now, nil)
	if exp == nil {
		return nil
	}
	gone := make([]ID, len(exp))
	for i, e := range exp {
		gone[i] = e.ID
	}
	return gone
}

// ExpireInactive is Expire with a caller veto: entities for which keep
// returns true survive the sweep even when stale (the enclosing lock uses
// this to protect entities that are sitting in its waiter queue, whose
// lastActive legitimately predates a long wait). A nil keep vetoes
// nothing. Entities currently holding, owning the slice, or still banned
// are always kept: reaping a banned entity would let it re-register
// through the join-credit floor and launder the remainder of its penalty.
func (a *Accountant) ExpireInactive(now time.Duration, keep func(ID) bool) []Expired {
	check.Point("acct.expire")
	if a.params.InactiveTimeout <= 0 {
		return nil
	}
	var gone []Expired
	for id, e := range a.entities {
		if e.holding || (a.hasOwner && a.sliceOwner == id) || e.bannedUntil > now {
			continue
		}
		idle := now - e.lastActive
		if idle < a.params.InactiveTimeout {
			continue
		}
		if keep != nil && keep(id) {
			continue
		}
		gone = append(gone, Expired{ID: id, Idle: idle})
	}
	for _, g := range gone {
		a.Unregister(g.ID)
	}
	return gone
}

// Holding reports whether id is currently inside a critical section
// according to the accounting (between OnAcquire and OnRelease).
func (a *Accountant) Holding(id ID) bool {
	e, ok := a.entities[id]
	return ok && e.holding
}

// TotalWeight returns Σ weight over registered entities.
func (a *Accountant) TotalWeight() int64 { return a.totalWeight }

// CheckInvariants verifies the accountant's internal bookkeeping and
// returns the first violation found, or nil. The invariants: totalWeight
// and grandUsage equal the sums over registered entities, no entity
// carries a non-positive weight or negative usage, and a live slice owner
// is a registered entity. It is O(n) and meant for debug builds (the
// scldebug checks in the real locks) and tests, at quiescent points —
// not mid-operation.
func (a *Accountant) CheckInvariants() error {
	var tw int64
	var gu time.Duration
	for id, e := range a.entities {
		if e.weight <= 0 {
			return fmt.Errorf("core: entity %d has non-positive weight %d", id, e.weight)
		}
		if e.usage < 0 {
			return fmt.Errorf("core: entity %d has negative usage %v", id, e.usage)
		}
		tw += e.weight
		gu += e.usage
	}
	if tw != a.totalWeight {
		return fmt.Errorf("core: totalWeight %d != Σ weights %d (stale weight)", a.totalWeight, tw)
	}
	if gu != a.grandUsage {
		return fmt.Errorf("core: grandUsage %v != Σ usage %v", a.grandUsage, gu)
	}
	if a.hasOwner {
		if _, ok := a.entities[a.sliceOwner]; !ok {
			return fmt.Errorf("core: slice owner %d is not registered", a.sliceOwner)
		}
	}
	return nil
}

// rescale halves every usage counter; fractions (and hence all future
// penalty decisions) are unchanged, but the counters stay bounded over
// arbitrarily long runs.
func (a *Accountant) rescale() {
	a.grandUsage = 0
	for _, e := range a.entities {
		e.usage /= 2
		a.grandUsage += e.usage
	}
}
