package core

import "testing"

func TestNiceToWeightReference(t *testing.T) {
	if got := NiceToWeight(0); got != 1024 {
		t.Errorf("NiceToWeight(0) = %d, want 1024", got)
	}
}

func TestNiceToWeightPaperExample(t *testing.T) {
	// Paper §4.3: "0 maps to 1024 and -3 maps to 1991".
	if got := NiceToWeight(-3); got != 1991 {
		t.Errorf("NiceToWeight(-3) = %d, want 1991", got)
	}
}

func TestNiceToWeightClamps(t *testing.T) {
	if got := NiceToWeight(-100); got != NiceToWeight(-20) {
		t.Errorf("NiceToWeight(-100) = %d, want %d", got, NiceToWeight(-20))
	}
	if got := NiceToWeight(100); got != NiceToWeight(19) {
		t.Errorf("NiceToWeight(100) = %d, want %d", got, NiceToWeight(19))
	}
}

func TestNiceToWeightMonotonic(t *testing.T) {
	for n := -19; n <= 19; n++ {
		if NiceToWeight(n) >= NiceToWeight(n-1) {
			t.Errorf("weight not strictly decreasing at nice %d: %d >= %d",
				n, NiceToWeight(n), NiceToWeight(n-1))
		}
	}
}

func TestNiceToWeightRatioStep(t *testing.T) {
	// Each nice step should change the share by roughly 1.25x.
	for n := -20; n < 19; n++ {
		ratio := float64(NiceToWeight(n)) / float64(NiceToWeight(n+1))
		if ratio < 1.15 || ratio > 1.35 {
			t.Errorf("nice %d -> %d weight ratio %.3f outside [1.15, 1.35]", n, n+1, ratio)
		}
	}
}
