package core

import "time"

// Phase identifies which class of an RW-SCL currently owns the lock slice.
type Phase int

const (
	// PhaseRead is the read slice: readers may acquire (shared), writers wait.
	PhaseRead Phase = iota
	// PhaseWrite is the write slice: writers may acquire (exclusive), readers wait.
	PhaseWrite
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	if p == PhaseRead {
		return "read"
	}
	return "write"
}

// Other returns the opposite phase.
func (p Phase) Other() Phase {
	if p == PhaseRead {
		return PhaseWrite
	}
	return PhaseRead
}

// RWParams configures an RWController.
type RWParams struct {
	// Period is the combined length of one read slice plus one write slice;
	// it is split between the classes in proportion to their weights. Zero
	// means DefaultSlice.
	Period time.Duration
	// ReadWeight and WriteWeight set the lock-opportunity ratio between the
	// reader class and the writer class (e.g. 9 and 1 for the paper's
	// KyotoCabinet experiments). Zero-valued weights default to 1.
	ReadWeight, WriteWeight int64
}

func (p RWParams) withDefaults() RWParams {
	if p.Period == 0 {
		p.Period = DefaultSlice
	}
	if p.ReadWeight <= 0 {
		p.ReadWeight = 1
	}
	if p.WriteWeight <= 0 {
		p.WriteWeight = 1
	}
	return p
}

// RWController decides, for an RW-SCL, which class's slice is active.
// RW-SCL classifies by work type rather than by thread (paper §4.5), so
// there is no per-entity accounting: read and write slices simply
// alternate, like a phase-fair lock, with lengths proportional to the
// configured class weights. The controller is pure state; the enclosing
// lock serializes access and implements draining.
type RWController struct {
	params     RWParams
	phase      Phase
	phaseStart time.Duration
}

// NewRWController returns a controller. The lock begins in a read slice,
// as in the paper's Figure 4.
func NewRWController(p RWParams) *RWController {
	return &RWController{params: p.withDefaults()}
}

// Params returns the effective (defaulted) parameters.
func (c *RWController) Params() RWParams { return c.params }

// Phase returns the currently active slice's class.
func (c *RWController) Phase() Phase { return c.phase }

// SliceLen returns the length of the given class's slice:
// Period × weight_class / (ReadWeight + WriteWeight).
func (c *RWController) SliceLen(p Phase) time.Duration {
	total := c.params.ReadWeight + c.params.WriteWeight
	w := c.params.ReadWeight
	if p == PhaseWrite {
		w = c.params.WriteWeight
	}
	return time.Duration(float64(c.params.Period) * float64(w) / float64(total))
}

// Expired reports whether the current slice has run past its length.
func (c *RWController) Expired(now time.Duration) bool {
	return now-c.phaseStart >= c.SliceLen(c.phase)
}

// PhaseEnd returns when the current slice expires.
func (c *RWController) PhaseEnd() time.Duration {
	return c.phaseStart + c.SliceLen(c.phase)
}

// MaybeSwitch advances to the other class's slice when the current slice
// has expired and the other class wants the lock. Slices strictly
// alternate (like a phase-fair lock, paper §7); a momentarily-idle class
// keeps the remainder of its slice, because instantaneous idleness — e.g.
// every reader being between two acquisitions — says nothing about the
// class's demand. It returns the phase in force after the call. curWants
// and otherWants report whether the phase's own class and the opposite
// class, respectively, currently hold or wait for the lock.
func (c *RWController) MaybeSwitch(now time.Duration, curWants, otherWants bool) Phase {
	_ = curWants
	if !c.Expired(now) {
		return c.phase
	}
	if !otherWants {
		// Nobody on the other side: restart our slice clock so a class that
		// arrives later gets a timely turn, and keep the phase.
		c.phaseStart = now
		return c.phase
	}
	c.phase = c.phase.Other()
	c.phaseStart = now
	return c.phase
}

// ForceSwitch unconditionally starts the other class's slice at now (used
// by tests and by drain timeouts).
func (c *RWController) ForceSwitch(now time.Duration) Phase {
	c.phase = c.phase.Other()
	c.phaseStart = now
	return c.phase
}

// RestartPhase restarts the current slice's clock at now. Locks call this
// when the first grant of a fresh slice lands, so time spent draining the
// previous class does not eat into the new class's slice — keeping the
// configured ratio stable whatever the drain takes (paper Figure 12a:
// "irrespective of the number of readers, RW-SCL sticks to the ratio").
func (c *RWController) RestartPhase(now time.Duration) { c.phaseStart = now }
