package core

import (
	"testing"
	"time"
)

func TestRWStartsInReadSlice(t *testing.T) {
	c := NewRWController(RWParams{})
	if c.Phase() != PhaseRead {
		t.Fatalf("initial phase = %v, want read (paper Fig. 4 step 1)", c.Phase())
	}
}

func TestRWSliceLengthsProportional(t *testing.T) {
	c := NewRWController(RWParams{Period: 2 * time.Millisecond, ReadWeight: 9, WriteWeight: 1})
	if got := c.SliceLen(PhaseRead); got != 1800*time.Microsecond {
		t.Errorf("read slice = %v, want 1.8ms", got)
	}
	if got := c.SliceLen(PhaseWrite); got != 200*time.Microsecond {
		t.Errorf("write slice = %v, want 0.2ms", got)
	}
}

func TestRWSwitchOnExpiryWithOtherWaiting(t *testing.T) {
	c := NewRWController(RWParams{Period: time.Millisecond, ReadWeight: 1, WriteWeight: 1})
	if got := c.MaybeSwitch(400*time.Microsecond, true, true); got != PhaseRead {
		t.Fatalf("switched before expiry: %v", got)
	}
	if got := c.MaybeSwitch(600*time.Microsecond, true, true); got != PhaseWrite {
		t.Fatalf("did not switch at expiry: %v", got)
	}
}

func TestRWNoSwitchWithoutOtherClass(t *testing.T) {
	c := NewRWController(RWParams{Period: time.Millisecond})
	if got := c.MaybeSwitch(10*time.Millisecond, true, false); got != PhaseRead {
		t.Fatalf("switched to write slice with no writers: %v", got)
	}
	// The slice clock restarts so a writer arriving now is not instantly due.
	if c.Expired(10*time.Millisecond + 100*time.Microsecond) {
		t.Fatalf("slice clock was not restarted")
	}
}

func TestRWNoEarlySwitchMidSlice(t *testing.T) {
	// Slices strictly alternate: a momentarily idle class keeps the rest of
	// its slice even while the other class waits (a reader between two
	// acquisitions must not forfeit the read slice).
	c := NewRWController(RWParams{Period: 10 * time.Millisecond})
	if got := c.MaybeSwitch(time.Microsecond, false, true); got != PhaseRead {
		t.Fatalf("switched away mid-slice: %v", got)
	}
	// But once expired, the waiting class gets its turn.
	if got := c.MaybeSwitch(6*time.Millisecond, false, true); got != PhaseWrite {
		t.Fatalf("no switch after expiry: %v", got)
	}
}

func TestRWForceSwitch(t *testing.T) {
	c := NewRWController(RWParams{})
	if got := c.ForceSwitch(time.Millisecond); got != PhaseWrite {
		t.Fatalf("ForceSwitch -> %v, want write", got)
	}
	if got := c.ForceSwitch(2 * time.Millisecond); got != PhaseRead {
		t.Fatalf("ForceSwitch -> %v, want read", got)
	}
}

func TestRWPhaseEnd(t *testing.T) {
	c := NewRWController(RWParams{Period: 2 * time.Millisecond, ReadWeight: 3, WriteWeight: 1})
	if got, want := c.PhaseEnd(), 1500*time.Microsecond; got != want {
		t.Fatalf("PhaseEnd = %v, want %v", got, want)
	}
	c.ForceSwitch(1500 * time.Microsecond)
	if got, want := c.PhaseEnd(), 2000*time.Microsecond; got != want {
		t.Fatalf("write PhaseEnd = %v, want %v", got, want)
	}
}

func TestPhaseStringAndOther(t *testing.T) {
	if PhaseRead.String() != "read" || PhaseWrite.String() != "write" {
		t.Fatalf("phase strings wrong: %q %q", PhaseRead, PhaseWrite)
	}
	if PhaseRead.Other() != PhaseWrite || PhaseWrite.Other() != PhaseRead {
		t.Fatalf("Other() broken")
	}
}
