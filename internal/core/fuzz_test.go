package core

import (
	"testing"
	"time"
)

// FuzzAccountant drives an Accountant through a random operation sequence
// decoded from the fuzz input and checks the bookkeeping invariants that
// every other component (the locks' deferred fast-path folds included)
// relies on:
//
//   - grandUsage == Σ usage over registered entities, always;
//   - every penalty satisfies 0 ≤ penalty ≤ BanCap;
//   - usage counters never go negative and stay below the rescale bound;
//   - the Σ-invariant spans rescales (op 7 forces them); ratio
//     preservation across rescale() has its own deterministic test below.
//
// Each input byte pair is one operation: the first byte selects the op
// and entity, the second scales its duration. Seed corpus entries replay
// the regression scenarios from accountant_test.go.
func FuzzAccountant(f *testing.F) {
	// Seeds from the unit-test regression cases: the Figure-2d toy
	// schedule shape, ban-cap pressure, join-credit latecomers, expiry
	// GC, and a rescale-crossing grind.
	f.Add([]byte{0x00, 10, 0x21, 20, 0x01, 30, 0x22, 5, 0x41, 1})           // register/acquire/release mix
	f.Add([]byte{0x00, 1, 0x01, 1, 0x20, 200, 0x21, 200, 0x22, 255})        // two entities, long holds → penalty
	f.Add([]byte{0x00, 1, 0x20, 255, 0x20, 255, 0x20, 255, 0x60, 50})       // lone entity + expire
	f.Add([]byte{0x00, 3, 0x01, 1, 0x02, 2, 0x80, 100, 0x81, 100, 0x82, 9}) // folds (fast-path batches)
	f.Add([]byte{0x00, 1, 0x01, 1, 0x40, 0, 0x20, 255, 0x80, 255, 0x22, 1}) // unregister under load

	f.Fuzz(func(t *testing.T, data []byte) {
		const banCap = 50 * time.Millisecond
		a := NewAccountant(Params{
			Slice:           time.Millisecond,
			BanCap:          banCap,
			InactiveTimeout: 40 * time.Millisecond,
		})
		now := time.Millisecond
		const nEntities = 4
		holding := make(map[ID]bool)

		checkSum := func(label string) {
			var sum time.Duration
			for id := ID(0); id < nEntities; id++ {
				if a.Registered(id) {
					u := a.Usage(id)
					if u < 0 {
						t.Fatalf("%s: usage[%d] = %v < 0", label, id, u)
					}
					sum += u
				}
			}
			if g := a.GrandUsage(); g != sum {
				t.Fatalf("%s: grandUsage = %v, Σ usage = %v", label, g, sum)
			}
		}

		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] >> 5
			id := ID(data[i] % nEntities)
			d := time.Duration(data[i+1]) * 100 * time.Microsecond
			now += d/4 + time.Microsecond
			switch op {
			case 0: // register (weight from the duration byte)
				w := int64(data[i+1]%8) + 1
				a.Register(id, w, now)
			case 1: // acquire (also claims the slice if free)
				if holding[id] || !a.Registered(id) {
					continue
				}
				if _, ok := a.SliceOwner(); !ok {
					a.StartSlice(id, now)
				}
				a.OnAcquire(id, now)
				holding[id] = true
			case 2: // release after d
				if !holding[id] {
					continue
				}
				now += d
				rel := a.OnRelease(id, now)
				holding[id] = false
				if rel.Penalty < 0 || rel.Penalty > banCap {
					t.Fatalf("penalty %v outside [0, %v]", rel.Penalty, banCap)
				}
				if rel.Hold < 0 {
					t.Fatalf("negative hold %v", rel.Hold)
				}
				if rel.SliceExpired {
					a.ClearSlice()
				}
			case 3: // unregister
				if holding[id] {
					continue // the locks never unregister a holder
				}
				a.Unregister(id)
			case 4: // fold a fast-path usage batch
				if !a.Registered(id) {
					continue
				}
				a.FoldSliceUsage(id, d, now)
			case 5: // expire inactive entities
				for _, gone := range a.Expire(now) {
					delete(holding, gone)
				}
			case 6: // slice handoff
				if a.SliceExpired(now) && a.Registered(id) {
					a.StartSlice(id, now)
				}
			case 7: // rescale pressure: a large fold forces a halving
				if !a.Registered(id) {
					continue
				}
				a.FoldSliceUsage(id, rescaleLimit/2+d, now)
			}
			checkSum("after op")
			if g := a.GrandUsage(); g > 2*rescaleLimit {
				t.Fatalf("grandUsage %v grew past the rescale bound", g)
			}
		}
	})
}

// TestRescaleRatioPreservation is the deterministic companion to the fuzz
// harness: two entities are brought to an exact 3:1 usage ratio just
// under the rescale limit via FoldSliceUsage (the fast-path batch entry
// point), then one more fold forces the halving — which must preserve the
// ratio at that instant.
func TestRescaleRatioPreservation(t *testing.T) {
	a := NewAccountant(Params{Slice: time.Millisecond})
	now := time.Millisecond
	a.Register(1, 1, now)
	a.Register(2, 1, now)
	a.FoldSliceUsage(1, 3*(rescaleLimit/4), now)
	a.FoldSliceUsage(2, rescaleLimit/4-time.Millisecond, now)
	before := float64(a.Usage(1)) / float64(a.Usage(2))
	a.FoldSliceUsage(1, 2*time.Millisecond, now) // tips grand past the limit
	if a.GrandUsage() > rescaleLimit {
		t.Fatalf("grand usage %v not rescaled below %v", a.GrandUsage(), rescaleLimit)
	}
	if a.Usage(1)+a.Usage(2) != a.GrandUsage() {
		t.Fatalf("Σ usage %v != grand %v after rescale",
			a.Usage(1)+a.Usage(2), a.GrandUsage())
	}
	after := float64(a.Usage(1)) / float64(a.Usage(2))
	if after < before*0.999 || after > before*1.001 {
		t.Fatalf("usage ratio %.4f -> %.4f across rescale, want preserved", before, after)
	}
}
