// Package core implements the clock-independent accounting engine behind
// Scheduler-Cooperative Locks (Patel et al., EuroSys 2020): nice-value to
// weight mapping (the CFS table), per-entity lock-usage tracking, the lock
// slice state machine, and the penalty (ban) computation that guarantees
// proportional lock opportunity.
//
// The engine is pure state + arithmetic: callers pass in the current time
// (virtual nanoseconds in the simulator, wall-clock nanoseconds in the real
// library), so every fairness decision is deterministic and unit-testable.
// An Accountant is not safe for concurrent use; the enclosing lock
// serializes access.
package core

// NiceWeights is the Linux CFS sched_prio_to_weight table, indexed by
// nice+20. Each step of nice changes the CPU (and here, lock-opportunity)
// share by ~1.25x; nice 0 maps to the reference weight 1024.
var NiceWeights = [40]int64{
	/* -20 */ 88761, 71755, 56483, 46273, 36291,
	/* -15 */ 29154, 23254, 18705, 14949, 11916,
	/* -10 */ 9548, 7620, 6100, 4904, 3906,
	/*  -5 */ 3121, 2501, 1991, 1586, 1277,
	/*   0 */ 1024, 820, 655, 526, 423,
	/*   5 */ 335, 272, 215, 172, 137,
	/*  10 */ 110, 87, 70, 56, 45,
	/*  15 */ 36, 29, 23, 18, 15,
}

// ReferenceWeight is the weight of a nice-0 entity.
const ReferenceWeight int64 = 1024

// NiceToWeight maps a nice value (clamped to [-20, 19]) to its CFS weight,
// using the same logic the CFS scheduler uses so that lock-opportunity
// shares line up exactly with CPU shares (paper §4.3).
func NiceToWeight(nice int) int64 {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	return NiceWeights[nice+20]
}
