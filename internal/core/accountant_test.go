package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

const sec = time.Second

// newTwoThreadAccountant registers two nice-0 entities at t=0.
func newTwoThreadAccountant(p Params) *Accountant {
	a := NewAccountant(p)
	a.Register(1, ReferenceWeight, 0)
	a.Register(2, ReferenceWeight, 0)
	return a
}

func TestToyExampleFigure2d(t *testing.T) {
	// Paper Figure 2d / Table 2: T0 holds for 10s; with equal shares it must
	// then be banned for 10s so T1 accumulates the same lock opportunity.
	a := newTwoThreadAccountant(Params{Slice: DefaultSlice, JoinCredit: time.Hour})
	a.StartSlice(1, 0)
	a.OnAcquire(1, 0)
	rel := a.OnRelease(1, 10*sec)
	if !rel.SliceExpired {
		t.Fatalf("10s hold with 2ms slice: slice must be expired")
	}
	if rel.Hold != 10*sec {
		t.Fatalf("hold = %v, want 10s", rel.Hold)
	}
	if rel.Penalty != 10*sec {
		t.Fatalf("penalty = %v, want 10s (U/share - U = 10/0.5 - 10)", rel.Penalty)
	}
	if got := a.BannedUntil(1); got != 20*sec {
		t.Fatalf("bannedUntil = %v, want 20s", got)
	}
	if a.Banned(2, 10*sec) {
		t.Fatalf("T1 must not be banned")
	}
}

func TestNoPenaltyUnderShare(t *testing.T) {
	a := newTwoThreadAccountant(Params{Slice: DefaultSlice, JoinCredit: time.Hour})
	// Entity 2 has used far more than entity 1; entity 1's short hold must
	// not be penalized even though its slice expired.
	a.StartSlice(2, 0)
	a.OnAcquire(2, 0)
	a.OnRelease(2, 9*sec)

	a.StartSlice(1, 9*sec)
	a.OnAcquire(1, 9*sec)
	rel := a.OnRelease(1, 10*sec)
	if !rel.SliceExpired {
		t.Fatalf("slice must be expired after 1s hold")
	}
	if rel.Penalty != 0 {
		t.Fatalf("penalty = %v for under-share entity, want 0", rel.Penalty)
	}
}

func TestLoneEntityNeverPenalized(t *testing.T) {
	a := NewAccountant(Params{Slice: DefaultSlice})
	a.Register(7, ReferenceWeight, 0)
	a.StartSlice(7, 0)
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		a.OnAcquire(7, at)
		rel := a.OnRelease(7, at+9*time.Millisecond)
		if rel.Penalty != 0 {
			t.Fatalf("iteration %d: lone entity penalized %v", i, rel.Penalty)
		}
	}
}

func TestSliceNotExpiredNoTransfer(t *testing.T) {
	a := newTwoThreadAccountant(Params{Slice: 2 * time.Millisecond})
	a.StartSlice(1, 0)
	a.OnAcquire(1, 0)
	rel := a.OnRelease(1, time.Millisecond)
	if rel.SliceExpired {
		t.Fatalf("1ms hold within 2ms slice must not expire the slice")
	}
	if rel.Penalty != 0 {
		t.Fatalf("no penalty within a live slice, got %v", rel.Penalty)
	}
}

func TestZeroSliceAlwaysExpires(t *testing.T) {
	// k-SCL: slice 0 means every release is a slice boundary.
	a := NewAccountant(Params{Slice: 0, JoinCredit: time.Hour, SlackRatio: 0.0001})
	a.Register(1, ReferenceWeight, 0)
	a.Register(2, ReferenceWeight, 0)
	a.StartSlice(1, 0)
	a.OnAcquire(1, 0)
	rel := a.OnRelease(1, 10*time.Millisecond)
	if !rel.SliceExpired {
		t.Fatalf("zero slice: release must expire the slice")
	}
	// The bully (only user so far) gets banned for ~hold/share - hold = 10ms.
	if rel.Penalty != 10*time.Millisecond {
		t.Fatalf("penalty = %v, want 10ms", rel.Penalty)
	}
}

func TestProportionalPenaltyTwoToOne(t *testing.T) {
	// Weights 2:1. The heavy entity may hold 2/3 of cumulative usage before
	// penalties; when over, penalty = U/share - U = U/2 for share 2/3.
	a := NewAccountant(Params{Slice: DefaultSlice, JoinCredit: time.Hour})
	a.Register(1, 2*ReferenceWeight, 0)
	a.Register(2, ReferenceWeight, 0)

	a.StartSlice(1, 0)
	a.OnAcquire(1, 0)
	rel := a.OnRelease(1, 6*sec)                            // ratio 1.0 > 2/3 -> penalized
	want := time.Duration(float64(6*sec)/(2.0/3.0)) - 6*sec // = 3s
	if rel.Penalty != want {
		t.Fatalf("penalty = %v, want %v", rel.Penalty, want)
	}
}

func TestBanCap(t *testing.T) {
	a := newTwoThreadAccountant(Params{Slice: 0, BanCap: sec, JoinCredit: time.Hour})
	a.StartSlice(1, 0)
	a.OnAcquire(1, 0)
	rel := a.OnRelease(1, 100*sec)
	if rel.Penalty != sec {
		t.Fatalf("penalty = %v, want capped at 1s", rel.Penalty)
	}
}

func TestJoinCreditBoundsLatecomerDeficit(t *testing.T) {
	a := NewAccountant(Params{Slice: DefaultSlice, JoinCredit: 100 * time.Millisecond})
	a.Register(1, ReferenceWeight, 0)
	a.StartSlice(1, 0)
	a.OnAcquire(1, 0)
	a.OnRelease(1, 60*sec)

	a.Register(2, ReferenceWeight, 60*sec)
	// Entity 2's fair share of the 60s history is 30s; with only 100ms of
	// credit its booked usage must be 29.9s, not 0.
	got := a.Usage(2)
	want := 30*sec - 100*time.Millisecond
	if got != want {
		t.Fatalf("latecomer usage = %v, want %v", got, want)
	}
}

func TestUnregisterUpdatesTotals(t *testing.T) {
	a := newTwoThreadAccountant(Params{Slice: DefaultSlice})
	a.OnAcquire(1, 0)
	a.OnRelease(1, sec)
	a.Unregister(1)
	if a.Registered(1) {
		t.Fatalf("entity 1 still registered")
	}
	if a.GrandUsage() != 0 {
		t.Fatalf("grand usage = %v after sole user left, want 0", a.GrandUsage())
	}
	if got := a.Share(2); got != 1 {
		t.Fatalf("share(2) = %v after peer left, want 1", got)
	}
}

func TestReRegisterUpdatesWeight(t *testing.T) {
	a := NewAccountant(Params{})
	a.Register(1, 1024, 0)
	a.Register(2, 1024, 0)
	a.Register(1, 3072, 0)
	if got := a.Share(1); got != 0.75 {
		t.Fatalf("share(1) = %v, want 0.75", got)
	}
}

func TestExpireGC(t *testing.T) {
	a := NewAccountant(Params{Slice: 0, InactiveTimeout: sec})
	a.Register(1, ReferenceWeight, 0)
	a.Register(2, ReferenceWeight, 0)
	a.OnAcquire(1, 0)
	a.OnRelease(1, time.Millisecond)
	// Entity 2 never acquires; at t=2s it is stale, entity 1 is too
	// (lastActive 1ms), so both would go -- but keep 1 alive with a touch.
	a.OnAcquire(1, 1900*time.Millisecond)
	a.OnRelease(1, 1901*time.Millisecond)
	gone := a.Expire(2 * sec)
	if len(gone) != 1 || gone[0] != 2 {
		t.Fatalf("Expire removed %v, want [2]", gone)
	}
	if got := a.Share(1); got != 1 {
		t.Fatalf("share(1) = %v after GC, want 1", got)
	}
}

func TestExpireSkipsHoldersAndBanned(t *testing.T) {
	a := NewAccountant(Params{Slice: 0, InactiveTimeout: sec, JoinCredit: time.Hour})
	a.Register(1, ReferenceWeight, 0)
	a.Register(2, ReferenceWeight, 0)
	a.StartSlice(1, 0)
	a.OnAcquire(1, 0)
	a.OnRelease(1, 5*sec) // banned until ~10s
	a.OnAcquire(2, 5*sec) // still holding at GC time
	gone := a.Expire(7 * sec)
	if len(gone) != 0 {
		t.Fatalf("Expire removed %v, want none (1 banned, 2 holding)", gone)
	}
}

func TestExpireDisabledByDefault(t *testing.T) {
	a := newTwoThreadAccountant(Params{})
	if gone := a.Expire(time.Hour); gone != nil {
		t.Fatalf("Expire with no timeout removed %v", gone)
	}
}

func TestRescalePreservesRatios(t *testing.T) {
	a := NewAccountant(Params{Slice: 0, BanCap: time.Hour, JoinCredit: 1 << 62})
	a.Register(1, ReferenceWeight, 0)
	a.Register(2, ReferenceWeight, 0)
	now := time.Duration(0)
	// Push grand usage past the rescale limit with a 3:1 usage pattern.
	for i := 0; i < 10; i++ {
		a.StartSlice(1, now)
		a.OnAcquire(1, now)
		now += 3 * (rescaleLimit / 20)
		a.OnRelease(1, now)
		a.StartSlice(2, now)
		a.OnAcquire(2, now)
		now += rescaleLimit / 20
		a.OnRelease(2, now)
	}
	if a.GrandUsage() > rescaleLimit {
		t.Fatalf("grand usage %v not rescaled below %v", a.GrandUsage(), rescaleLimit)
	}
	// Rescaling halves all counters at once, so it can only mildly decay
	// history; the 3:1 pattern must still be clearly visible.
	r := float64(a.Usage(1)) / float64(a.Usage(2))
	if r < 2.5 || r > 3.6 {
		t.Fatalf("usage ratio after rescale = %.3f, want ~3", r)
	}
	// A direct rescale preserves the instantaneous ratio exactly (modulo
	// 1ns truncation) and keeps grand = Σ usage.
	before := float64(a.Usage(1)) / float64(a.Usage(2))
	a.rescale()
	after := float64(a.Usage(1)) / float64(a.Usage(2))
	if d := after - before; d < -0.001 || d > 0.001 {
		t.Fatalf("rescale changed ratio: %.6f -> %.6f", before, after)
	}
	if a.Usage(1)+a.Usage(2) != a.GrandUsage() {
		t.Fatalf("grand usage inconsistent after rescale")
	}
}

func TestAutoRegisterOnAcquire(t *testing.T) {
	a := NewAccountant(Params{})
	a.OnAcquire(42, 0)
	if !a.Registered(42) {
		t.Fatalf("acquiring entity was not auto-registered")
	}
	rel := a.OnRelease(42, time.Millisecond)
	if rel.Hold != time.Millisecond {
		t.Fatalf("hold = %v, want 1ms", rel.Hold)
	}
}

func TestRegisterNonPositiveWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Register with weight 0 did not panic")
		}
	}()
	NewAccountant(Params{}).Register(1, 0, 0)
}

// TestPenaltyInvariants drives the accountant with random workloads and
// checks structural invariants: penalties are within [0, BanCap], grand
// usage equals the sum of per-entity usage, and an entity's booked usage
// never decreases from a release.
func TestPenaltyInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			Slice:      time.Duration(rng.Intn(3)) * time.Millisecond,
			BanCap:     time.Duration(1+rng.Intn(10)) * sec,
			JoinCredit: time.Duration(1+rng.Intn(1000)) * time.Millisecond,
		}
		a := NewAccountant(p)
		n := 2 + rng.Intn(6)
		now := time.Duration(0)
		for i := 0; i < n; i++ {
			a.Register(ID(i), NiceToWeight(rng.Intn(10)-5), now)
		}
		for step := 0; step < 200; step++ {
			id := ID(rng.Intn(n))
			if !a.Registered(id) {
				a.Register(id, ReferenceWeight, now)
			}
			if owner, ok := a.SliceOwner(); !ok || owner != id {
				if a.SliceExpired(now) {
					a.StartSlice(id, now)
				}
			}
			before := a.Usage(id)
			a.OnAcquire(id, now)
			now += time.Duration(rng.Intn(5_000_000)) // up to 5ms holds
			rel := a.OnRelease(id, now)
			if rel.Penalty < 0 || rel.Penalty > a.Params().BanCap {
				t.Logf("penalty %v outside [0, %v]", rel.Penalty, a.Params().BanCap)
				return false
			}
			if a.Usage(id) < before {
				t.Logf("usage of %d decreased: %v -> %v", id, before, a.Usage(id))
				return false
			}
			if rng.Intn(20) == 0 {
				a.Unregister(ID(rng.Intn(n)))
			}
			now += time.Duration(rng.Intn(1_000_000))
		}
		var sum time.Duration
		for i := 0; i < n; i++ {
			sum += a.Usage(ID(i))
		}
		if sum != a.GrandUsage() {
			t.Logf("grand usage %v != sum %v", a.GrandUsage(), sum)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConvergenceToShares simulates saturated alternation between two
// entities with a 3:1 weight ratio and verifies cumulative usage converges
// to the configured shares (the property behind paper Figure 6).
func TestConvergenceToShares(t *testing.T) {
	a := NewAccountant(Params{Slice: 2 * time.Millisecond, JoinCredit: time.Millisecond})
	a.Register(1, 3*ReferenceWeight, 0)
	a.Register(2, ReferenceWeight, 0)
	now := time.Duration(0)
	// Both entities always want the lock; the non-banned one with the lower
	// usage/share runs a full slice. This models two saturated threads.
	for i := 0; i < 4000; i++ {
		id := ID(1)
		if a.Banned(1, now) || (!a.Banned(2, now) &&
			float64(a.Usage(1))/3 > float64(a.Usage(2))) {
			id = 2
		}
		if a.Banned(id, now) {
			// Jump to the earliest unban.
			u1, u2 := a.BannedUntil(1), a.BannedUntil(2)
			next := u1
			if u2 > 0 && (next == 0 || u2 < next) {
				next = u2
			}
			if next > now {
				now = next
			}
			continue
		}
		a.StartSlice(id, now)
		a.OnAcquire(id, now)
		now += 2 * time.Millisecond
		a.OnRelease(id, now)
	}
	ratio := float64(a.Usage(1)) / float64(a.Usage(2))
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("usage ratio = %.3f, want ~3.0", ratio)
	}
}

func TestSliceEndAndClear(t *testing.T) {
	a := NewAccountant(Params{Slice: 2 * time.Millisecond})
	a.Register(1, ReferenceWeight, 0)
	a.StartSlice(1, 5*time.Millisecond)
	if got := a.SliceEnd(); got != 7*time.Millisecond {
		t.Fatalf("SliceEnd = %v, want 7ms", got)
	}
	if a.SliceExpired(6 * time.Millisecond) {
		t.Fatal("slice expired early")
	}
	if !a.SliceExpired(7 * time.Millisecond) {
		t.Fatal("slice not expired at its end")
	}
	a.ClearSlice()
	if _, ok := a.SliceOwner(); ok {
		t.Fatal("owner survives ClearSlice")
	}
	if !a.SliceExpired(0) {
		t.Fatal("no-owner slice must read as expired")
	}
}

func TestUnregisterSliceOwnerClearsSlice(t *testing.T) {
	a := NewAccountant(Params{Slice: time.Millisecond})
	a.Register(1, ReferenceWeight, 0)
	a.StartSlice(1, 0)
	a.Unregister(1)
	if _, ok := a.SliceOwner(); ok {
		t.Fatal("departed entity still owns the slice")
	}
}

func TestOnReleaseWithoutAcquireIsNoop(t *testing.T) {
	a := NewAccountant(Params{})
	a.Register(1, ReferenceWeight, 0)
	rel := a.OnRelease(1, time.Second)
	if rel.Hold != 0 || rel.SliceExpired || rel.Penalty != 0 {
		t.Fatalf("phantom release produced %+v", rel)
	}
}

// TestAbandonedWaiterLeavesNoTrace documents the invariant the lock's
// cancellation path (LockContext abandoning a queued waiter) relies on:
// queueing touches the accountant only at acquire, so an entity that
// registers, never acquires, and unregisters leaves the books — entity
// count, grand usage, slice state — exactly as if it had never appeared,
// even while other entities run slices around it.
func TestAbandonedWaiterLeavesNoTrace(t *testing.T) {
	a := NewAccountant(Params{Slice: 2 * time.Millisecond, JoinCredit: time.Hour})
	a.Register(1, ReferenceWeight, 0)
	baseLen := a.Len()
	baseGrand := a.GrandUsage()

	// Entity 2 "queues" (registers) but abandons before ever acquiring,
	// while entity 1 runs a full slice with usage charged.
	a.Register(2, ReferenceWeight, 0)
	a.StartSlice(1, 0)
	a.OnAcquire(1, 0)
	rel := a.OnRelease(1, 5*time.Millisecond)
	if rel.Hold != 5*time.Millisecond {
		t.Fatalf("hold = %v, want 5ms", rel.Hold)
	}
	if got := a.Usage(2); got != 0 {
		t.Fatalf("abandoned entity charged %v without acquiring", got)
	}
	if a.BannedUntil(2) != 0 {
		t.Fatal("abandoned entity banned without acquiring")
	}

	a.Unregister(2)
	if got := a.Len(); got != baseLen {
		t.Fatalf("Len = %d after abandon+unregister, want baseline %d", got, baseLen)
	}
	if got := a.GrandUsage() - a.Usage(1); got != baseGrand {
		t.Fatalf("grand usage beyond entity 1 = %v, want baseline %v", got, baseGrand)
	}
	if a.Registered(2) {
		t.Fatal("unregistered entity still tracked")
	}
}

func TestExpireInactiveReportsIdleAndHonorsKeep(t *testing.T) {
	a := NewAccountant(Params{Slice: 0, InactiveTimeout: sec})
	a.Register(1, ReferenceWeight, 0)
	a.Register(2, ReferenceWeight, 0)
	a.Register(3, ReferenceWeight, 0)
	a.OnAcquire(1, 0)
	a.OnRelease(1, time.Millisecond) // entity 1 last active at 1ms
	// Entities 2 and 3 never acquire: last active at registration (t=0).
	// At t=3s all three are past the 1s threshold; keep vetoes entity 2
	// (it stands in for "still queued at the lock layer").
	gone := a.ExpireInactive(3*sec, func(id ID) bool { return id == 2 })
	if len(gone) != 2 {
		t.Fatalf("ExpireInactive removed %v, want entities 1 and 3", gone)
	}
	idle := map[ID]time.Duration{}
	for _, e := range gone {
		idle[e.ID] = e.Idle
	}
	if got := idle[1]; got != 3*sec-time.Millisecond {
		t.Errorf("idle(1) = %v, want %v", got, 3*sec-time.Millisecond)
	}
	if got := idle[3]; got != 3*sec {
		t.Errorf("idle(3) = %v, want %v", got, 3*sec)
	}
	if !a.Registered(2) {
		t.Fatal("keep-vetoed entity was reaped")
	}
	if a.Registered(1) || a.Registered(3) {
		t.Fatal("reaped entity still registered")
	}
}

func TestExpireInactiveSkipsSliceOwner(t *testing.T) {
	a := NewAccountant(Params{Slice: time.Hour, InactiveTimeout: sec})
	a.Register(1, ReferenceWeight, 0)
	a.StartSlice(1, 0)
	// The slice owner has been idle forever, but reaping it would strand
	// the slice state; it must survive until the slice is cleared.
	if gone := a.ExpireInactive(time.Hour, nil); len(gone) != 0 {
		t.Fatalf("ExpireInactive reaped the slice owner: %v", gone)
	}
	a.ClearSlice()
	if gone := a.ExpireInactive(time.Hour, nil); len(gone) != 1 {
		t.Fatalf("ExpireInactive after ClearSlice removed %v, want entity 1", gone)
	}
}

func TestHoldingAndTotalWeight(t *testing.T) {
	a := NewAccountant(Params{})
	a.Register(1, ReferenceWeight, 0)
	a.Register(2, 2*ReferenceWeight, 0)
	if got := a.TotalWeight(); got != 3*ReferenceWeight {
		t.Fatalf("TotalWeight = %d, want %d", got, 3*ReferenceWeight)
	}
	if a.Holding(1) {
		t.Fatal("Holding(1) before acquire")
	}
	a.OnAcquire(1, 0)
	if !a.Holding(1) {
		t.Fatal("!Holding(1) while held")
	}
	a.OnRelease(1, time.Millisecond)
	if a.Holding(1) {
		t.Fatal("Holding(1) after release")
	}
	a.Unregister(2)
	if got := a.TotalWeight(); got != ReferenceWeight {
		t.Fatalf("TotalWeight = %d after unregister, want %d", got, ReferenceWeight)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	a := newTwoThreadAccountant(Params{Slice: 0})
	a.StartSlice(1, 0)
	a.OnAcquire(1, 0)
	a.OnRelease(1, time.Millisecond)
	if err := a.CheckInvariants(); err != nil {
		t.Fatalf("healthy accountant: %v", err)
	}

	// Each corruption must be caught, and restoring it must heal the check.
	a.totalWeight++
	if a.CheckInvariants() == nil {
		t.Error("stale totalWeight not detected")
	}
	a.totalWeight--

	a.grandUsage += time.Second
	if a.CheckInvariants() == nil {
		t.Error("stale grandUsage not detected")
	}
	a.grandUsage -= time.Second

	owner := a.sliceOwner
	a.sliceOwner = 999
	if a.CheckInvariants() == nil {
		t.Error("unregistered slice owner not detected")
	}
	a.sliceOwner = owner

	if err := a.CheckInvariants(); err != nil {
		t.Fatalf("healed accountant: %v", err)
	}
}

// TestChargeWindowPenalty: charging one entity's measured windows in
// k-SCL style must accrue usage, trip the penalty once the entity runs
// past its share, and leave the fair entity unbanned.
func TestChargeWindowPenalty(t *testing.T) {
	a := newTwoThreadAccountant(Params{JoinCredit: time.Nanosecond})
	// Entity 1 books 10ms; entity 2 books nothing. At 50% share, every
	// window of the over-user must draw a ban of window/share − window =
	// window.
	a.ChargeWindow(1, 10*time.Millisecond, 10*time.Millisecond)
	pen := a.ChargeWindow(1, 10*time.Millisecond, 20*time.Millisecond)
	if pen <= 0 {
		t.Fatalf("over-user's window drew no penalty")
	}
	want := 10 * time.Millisecond // window/share − window at share 0.5
	if pen < want-time.Millisecond || pen > want+time.Millisecond {
		t.Fatalf("penalty = %v, want ~%v", pen, want)
	}
	if !a.Banned(1, 20*time.Millisecond+pen-1) {
		t.Fatal("entity 1 not banned after penalty")
	}
	if a.Banned(2, 20*time.Millisecond) {
		t.Fatal("idle entity 2 banned")
	}
	if a.Usage(1) != 20*time.Millisecond {
		t.Fatalf("Usage(1) = %v, want 20ms", a.Usage(1))
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChargeWindowStacksBans: concurrent windows (a tenant holding many
// locks) must extend an outstanding ban, not reset it.
func TestChargeWindowStacksBans(t *testing.T) {
	a := newTwoThreadAccountant(Params{JoinCredit: time.Nanosecond})
	now := 10 * time.Millisecond
	p1 := a.ChargeWindow(1, 10*time.Millisecond, now)
	p2 := a.ChargeWindow(1, 10*time.Millisecond, now)
	if p1 <= 0 || p2 <= 0 {
		t.Fatalf("expected penalties for both windows, got %v and %v", p1, p2)
	}
	if got, want := a.BannedUntil(1), now+p1+p2; got != want {
		t.Fatalf("BannedUntil = %v, want stacked %v", got, want)
	}
}

// TestChargeWindowRespectsShare: once history has accumulated, an
// entity alternating windows at exactly its share draws no ban. (From a
// cold start the first windows can be penalized — the ratio is evaluated
// after accrual, as at a real slice boundary — so seed history first.)
func TestChargeWindowRespectsShare(t *testing.T) {
	a := newTwoThreadAccountant(Params{JoinCredit: time.Nanosecond})
	now := time.Duration(0)
	for i := 0; i < 100; i++ { // warm-up: build equal history, bans tolerated
		now += 2 * time.Millisecond
		a.ChargeWindow(1, time.Millisecond, now)
		a.ChargeWindow(2, time.Millisecond, now+time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		now += 2 * time.Millisecond
		if pen := a.ChargeWindow(1, time.Millisecond, now); pen != 0 {
			t.Fatalf("window %d: entity 1 penalized %v at its share", i, pen)
		}
		if pen := a.ChargeWindow(2, time.Millisecond, now+time.Millisecond); pen != 0 {
			t.Fatalf("window %d: entity 2 penalized %v at its share", i, pen)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChargeWindowIgnoresGhosts: charging an unregistered entity must
// not corrupt the grand total.
func TestChargeWindowIgnoresGhosts(t *testing.T) {
	a := newTwoThreadAccountant(Params{})
	if pen := a.ChargeWindow(99, time.Millisecond, 0); pen != 0 {
		t.Fatalf("ghost charge returned penalty %v", pen)
	}
	if a.GrandUsage() != 0 {
		t.Fatalf("ghost charge moved grandUsage to %v", a.GrandUsage())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChargeWindowRescales: long-run window charging must trip the
// rescale guard and keep counters bounded with ratios preserved.
func TestChargeWindowRescales(t *testing.T) {
	a := newTwoThreadAccountant(Params{BanCap: time.Second})
	big := rescaleLimit / 2
	a.ChargeWindow(1, big, 0)
	a.ChargeWindow(2, big, 0)
	a.ChargeWindow(1, big, 0) // pushes past rescaleLimit
	if a.GrandUsage() > rescaleLimit {
		t.Fatalf("grandUsage %v not rescaled below %v", a.GrandUsage(), rescaleLimit)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
