// Package lsm implements a small log-structured merge-tree storage engine
// in the style of LevelDB (paper Table 1): puts go to an in-memory
// memtable and are usually fast, but when the memtable fills, the writing
// thread flushes and merges it into the sorted run stack inline — which is
// why the paper measures LevelDB write hold times of microseconds at the
// median and tens of milliseconds at the 99th percentile.
//
// Not goroutine-safe; the embedding application wraps it in the lock under
// study.
package lsm

import "sort"

// DefaultMemtableLimit is the flush threshold in bytes.
const DefaultMemtableLimit = 1 << 20

// DB is the LSM engine.
type DB struct {
	mem      map[string][]byte
	memBytes int
	limit    int
	// runs is the stack of immutable sorted runs, newest first. Flushing
	// merges same-magnitude runs (size-tiered compaction), so occasionally
	// a flush cascades into a large merge — the heavy tail.
	runs    []run
	flushes int64
	merges  int64
}

// run is an immutable sorted string table.
type run struct {
	keys []string
	vals [][]byte
}

// New creates a DB with the given memtable flush threshold in bytes
// (0 = DefaultMemtableLimit).
func New(memtableLimit int) *DB {
	if memtableLimit <= 0 {
		memtableLimit = DefaultMemtableLimit
	}
	return &DB{mem: make(map[string][]byte), limit: memtableLimit}
}

// Put stores val under key. When the memtable exceeds its threshold the
// calling thread performs the flush (and any cascading merges) inline.
func (db *DB) Put(key string, val []byte) {
	old, existed := db.mem[key]
	db.mem[key] = val
	db.memBytes += len(key) + len(val)
	if existed {
		db.memBytes -= len(key) + len(old)
	}
	if db.memBytes >= db.limit {
		db.flush()
	}
}

// Delete stores a tombstone for key.
func (db *DB) Delete(key string) { db.Put(key, nil) }

// Get returns the newest value for key, checking the memtable and then
// each run from newest to oldest. A nil value (tombstone) reads as absent.
func (db *DB) Get(key string) ([]byte, bool) {
	if v, ok := db.mem[key]; ok {
		return v, v != nil
	}
	for _, r := range db.runs {
		i := sort.SearchStrings(r.keys, key)
		if i < len(r.keys) && r.keys[i] == key {
			v := r.vals[i]
			return v, v != nil
		}
	}
	return nil, false
}

// flush sorts the memtable into a new run and compacts same-magnitude
// runs (size-tiered): while the newest two runs are within 2x of each
// other, merge them. Most flushes stop immediately; occasionally a chain
// of merges makes one write very expensive.
func (db *DB) flush() {
	if len(db.mem) == 0 {
		return
	}
	keys := make([]string, 0, len(db.mem))
	for k := range db.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = db.mem[k]
	}
	db.mem = make(map[string][]byte)
	db.memBytes = 0
	db.runs = append([]run{{keys: keys, vals: vals}}, db.runs...)
	db.flushes++
	for len(db.runs) >= 2 && len(db.runs[0].keys)*2 >= len(db.runs[1].keys) {
		db.runs[1] = merge(db.runs[0], db.runs[1])
		db.runs = db.runs[1:]
		db.merges++
	}
}

// merge combines two runs; newer values win.
func merge(newer, older run) run {
	keys := make([]string, 0, len(newer.keys)+len(older.keys))
	vals := make([][]byte, 0, cap(keys))
	i, j := 0, 0
	for i < len(newer.keys) && j < len(older.keys) {
		switch {
		case newer.keys[i] < older.keys[j]:
			keys = append(keys, newer.keys[i])
			vals = append(vals, newer.vals[i])
			i++
		case newer.keys[i] > older.keys[j]:
			keys = append(keys, older.keys[j])
			vals = append(vals, older.vals[j])
			j++
		default:
			keys = append(keys, newer.keys[i])
			vals = append(vals, newer.vals[i])
			i++
			j++
		}
	}
	for ; i < len(newer.keys); i++ {
		keys = append(keys, newer.keys[i])
		vals = append(vals, newer.vals[i])
	}
	for ; j < len(older.keys); j++ {
		keys = append(keys, older.keys[j])
		vals = append(vals, older.vals[j])
	}
	return run{keys: keys, vals: vals}
}

// Flushes returns how many memtable flushes have occurred.
func (db *DB) Flushes() int64 { return db.flushes }

// Merges returns how many run merges have occurred.
func (db *DB) Merges() int64 { return db.merges }

// Runs returns the current number of immutable runs.
func (db *DB) Runs() int { return len(db.runs) }
