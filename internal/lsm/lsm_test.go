package lsm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPutGet(t *testing.T) {
	db := New(0)
	db.Put("a", []byte("1"))
	if v, ok := db.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	db.Put("a", []byte("2"))
	if v, _ := db.Get("a"); string(v) != "2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if _, ok := db.Get("missing"); ok {
		t.Fatal("Get(missing) succeeded")
	}
}

func TestDeleteTombstone(t *testing.T) {
	db := New(64) // tiny memtable: force flushes
	db.Put("k", []byte("v"))
	for i := 0; i < 100; i++ {
		db.Put(fmt.Sprintf("fill%d", i), []byte("xxxxxxxx"))
	}
	if _, ok := db.Get("k"); !ok {
		t.Fatal("k lost after flushes")
	}
	db.Delete("k")
	for i := 0; i < 100; i++ {
		db.Put(fmt.Sprintf("fill2-%d", i), []byte("xxxxxxxx"))
	}
	if _, ok := db.Get("k"); ok {
		t.Fatal("tombstone ignored after flush")
	}
}

func TestFlushesAndMergesHappen(t *testing.T) {
	db := New(1 << 10)
	for i := 0; i < 20000; i++ {
		db.Put(fmt.Sprintf("key-%06d", i), []byte("0123456789abcdef"))
	}
	if db.Flushes() == 0 {
		t.Fatal("no flushes")
	}
	if db.Merges() == 0 {
		t.Fatal("no merges")
	}
	// Size-tiered invariant: runs strictly grow down the stack.
	for i := 1; i < db.Runs(); i++ {
		if len(db.runs[i-1].keys)*2 >= len(db.runs[i].keys) {
			t.Fatalf("runs %d and %d not tiered: %d vs %d",
				i-1, i, len(db.runs[i-1].keys), len(db.runs[i].keys))
		}
	}
}

func TestNewestValueWinsAcrossRuns(t *testing.T) {
	db := New(256)
	for round := 0; round < 50; round++ {
		db.Put("hot", []byte(fmt.Sprintf("v%d", round)))
		for i := 0; i < 20; i++ {
			db.Put(fmt.Sprintf("fill-%d-%d", round, i), []byte("xxxxxxxxxxxxxxxx"))
		}
	}
	if v, ok := db.Get("hot"); !ok || string(v) != "v49" {
		t.Fatalf("Get(hot) = %q %v, want v49", v, ok)
	}
}

func TestMatchesReferenceModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := New(512)
		ref := map[string]string{}
		for op := 0; op < 3000; op++ {
			k := fmt.Sprintf("%d", rng.Intn(300))
			switch rng.Intn(3) {
			case 0:
				v := fmt.Sprintf("v%d", op)
				db.Put(k, []byte(v))
				ref[k] = v
			case 1:
				v, ok := db.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && string(v) != rv) {
					return false
				}
			case 2:
				db.Delete(k)
				delete(ref, k)
			}
		}
		for k, rv := range ref {
			v, ok := db.Get(k)
			if !ok || string(v) != rv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteLatencyHeavyTail(t *testing.T) {
	// The Table 1 LevelDB property: most writes are fast, but flush/merge
	// writes are orders of magnitude slower.
	db := New(1 << 14)
	var maxD, total time.Duration
	const n = 50000
	for i := 0; i < n; i++ {
		start := time.Now()
		db.Put(fmt.Sprintf("key-%08d", i), []byte("0123456789abcdef0123456789abcdef"))
		d := time.Since(start)
		total += d
		if d > maxD {
			maxD = d
		}
	}
	mean := total / n
	if maxD < 20*mean {
		t.Fatalf("max write %v not ≫ mean %v: no heavy tail", maxD, mean)
	}
}
