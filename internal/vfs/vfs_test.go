package vfs

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func newFS(t *testing.T, dirs ...string) *FS {
	t.Helper()
	fs := New()
	for _, d := range dirs {
		if err := fs.Mkdir(d); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func TestMkdirCreateUnlink(t *testing.T) {
	fs := newFS(t, "a")
	if err := fs.Mkdir("a"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Mkdir: %v", err)
	}
	if err := fs.Create("a", "f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("a", "f"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Create: %v", err)
	}
	if !fs.Exists("a", "f") {
		t.Fatal("f missing")
	}
	if err := fs.Unlink("a", "f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a", "f") {
		t.Fatal("f still present")
	}
	if err := fs.Unlink("a", "f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double unlink: %v", err)
	}
	if err := fs.Create("nodir", "f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("create in missing dir: %v", err)
	}
}

func TestRenameMovesFile(t *testing.T) {
	fs := newFS(t, "src", "dst")
	if err := fs.Create("src", "f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("src", "f", "dst", "g"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("src", "f") || !fs.Exists("dst", "g") {
		t.Fatal("rename did not move the file")
	}
}

func TestRenameReplacesDestination(t *testing.T) {
	fs := newFS(t, "src", "dst")
	fs.Create("src", "f")
	fs.Create("dst", "g")
	if err := fs.Rename("src", "f", "dst", "g"); err != nil {
		t.Fatal(err)
	}
	d, _ := fs.Dir("dst")
	if d.Len() != 1 || !fs.Exists("dst", "g") {
		t.Fatalf("dst has %d entries", d.Len())
	}
}

func TestRenameMissingSource(t *testing.T) {
	fs := newFS(t, "src", "dst")
	if err := fs.Rename("src", "nope", "dst", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rename missing: %v", err)
	}
}

func TestRenameSameDirectory(t *testing.T) {
	fs := newFS(t, "d")
	fs.Create("d", "a")
	fs.Create("d", "b")
	if err := fs.Rename("d", "a", "d", "c"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("d", "a") || !fs.Exists("d", "c") || !fs.Exists("d", "b") {
		t.Fatal("same-dir rename wrong")
	}
	// Rename onto itself is a no-op.
	if err := fs.Rename("d", "b", "d", "b"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("d", "b") {
		t.Fatal("self-rename removed the file")
	}
}

func TestPopulate(t *testing.T) {
	fs := newFS(t, "big")
	if err := fs.Populate("big", "file-", 10000); err != nil {
		t.Fatal(err)
	}
	d, _ := fs.Dir("big")
	if d.Len() != 10000 {
		t.Fatalf("len %d", d.Len())
	}
}

func TestRenameCostGrowsWithDirectorySize(t *testing.T) {
	// The defining property for the paper's Figure 13: renaming into a
	// large directory costs far more than into an empty one.
	fs := newFS(t, "src", "small", "big")
	if err := fs.Populate("big", "f-", 1_000_000); err != nil {
		t.Fatal(err)
	}
	measure := func(dst string) time.Duration {
		fs.Create("src", "probe")
		start := time.Now()
		if err := fs.Rename("src", "probe", dst, "probe"); err != nil {
			t.Fatal(err)
		}
		el := time.Since(start)
		fs.Unlink(dst, "probe")
		return el
	}
	small := measure("small")
	big := measure("big")
	if big < 50*small {
		t.Fatalf("big-dir rename %v not ≫ small-dir rename %v", big, small)
	}
}

func TestMatchesReferenceModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := New()
		fs.Mkdir("a")
		fs.Mkdir("b")
		type loc struct{ dir, name string }
		ref := map[loc]bool{}
		dirs := []string{"a", "b"}
		for op := 0; op < 1000; op++ {
			d := dirs[rng.Intn(2)]
			n := fmt.Sprintf("f%d", rng.Intn(30))
			switch rng.Intn(3) {
			case 0:
				err := fs.Create(d, n)
				if (err == nil) == ref[loc{d, n}] {
					return false
				}
				ref[loc{d, n}] = true
			case 1:
				err := fs.Unlink(d, n)
				if (err == nil) != ref[loc{d, n}] {
					return false
				}
				delete(ref, loc{d, n})
			case 2:
				d2 := dirs[rng.Intn(2)]
				n2 := fmt.Sprintf("f%d", rng.Intn(30))
				err := fs.Rename(d, n, d2, n2)
				if (err == nil) != ref[loc{d, n}] {
					return false
				}
				if err == nil {
					if !(d == d2 && n == n2) {
						delete(ref, loc{d, n})
					}
					ref[loc{d2, n2}] = true
				}
			}
		}
		for l, present := range ref {
			if present != fs.Exists(l.dir, l.name) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDentryCacheFastUnlink(t *testing.T) {
	// A just-created name in a huge directory unlinks in O(1) via the
	// dentry cache, while the rename *into* the directory still scans.
	fs := newFS(t, "big", "src")
	fs.Populate("big", "f-", 1_000_000)
	fs.Create("src", "probe")
	if err := fs.Rename("src", "probe", "big", "probe"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := fs.Unlink("big", "probe"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > time.Millisecond {
		t.Fatalf("cached unlink took %v, want O(1)", el)
	}
}

func TestDentryCacheStaysConsistentUnderChurn(t *testing.T) {
	// Swap-removal moves entries around; cached indices must follow.
	fs := newFS(t, "d")
	for i := 0; i < 100; i++ {
		fs.Create("d", fmt.Sprintf("f%d", i))
	}
	// Remove from the middle repeatedly; then verify all lookups.
	for i := 0; i < 50; i++ {
		if err := fs.Unlink("d", fmt.Sprintf("f%d", i*2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		want := i%2 == 1
		if got := fs.Exists("d", fmt.Sprintf("f%d", i)); got != want {
			t.Fatalf("Exists(f%d) = %v, want %v", i, got, want)
		}
	}
}

func TestDentryCacheEviction(t *testing.T) {
	// Overflowing the cache must not break correctness.
	fs := newFS(t, "d")
	n := 70_000 // > dcacheCap
	d, _ := fs.Dir("d")
	for i := 0; i < n; i++ {
		d.entries = append(d.entries, fmt.Sprintf("f%d", i))
		fs.cachePut(d, fmt.Sprintf("f%d", i), i)
	}
	if !fs.Exists("d", "f0") || !fs.Exists("d", fmt.Sprintf("f%d", n-1)) {
		t.Fatal("lookups broken after eviction")
	}
}
