// Package vfs implements a small in-memory filesystem namespace used to
// reproduce the paper's Linux rename-lock experiments (§5.5.3). Directory
// entries are stored as unsorted entry lists, like the directory blocks of
// ext4 with dir_index disabled:
//
//   - inserting a name (create, or the destination side of a rename)
//     always scans the whole directory — the duplicate check and
//     free-slot search of ext4_add_entry. This is what makes a
//     cross-directory rename into a million-entry directory hold the
//     global rename lock for milliseconds while a rename between empty
//     directories takes microseconds (paper Table 1: 2µs vs ~10ms).
//   - name lookups (unlink, exists, the source side of a rename) go
//     through a dentry cache, as in Linux: a recently created or renamed
//     name resolves in O(1) without rescanning the directory.
//
// The namespace itself is not goroutine-safe. Cross-directory renames in
// Linux serialize on the global s_vfs_rename_mutex; the embedding
// application supplies that lock, which is exactly the lock under study.
package vfs

import (
	"errors"
	"fmt"
)

// Errors returned by namespace operations.
var (
	ErrNotFound = errors.New("vfs: no such file or directory")
	ErrExists   = errors.New("vfs: file exists")
)

// dcacheCap bounds the dentry cache; when full it is dropped wholesale
// (a crude but deterministic stand-in for LRU eviction).
const dcacheCap = 1 << 16

// dckey identifies a cached directory entry.
type dckey struct{ dir, name string }

// FS is a flat namespace of directories containing files.
type FS struct {
	dirs   map[string]*Dir
	dcache map[dckey]int // (dir, name) -> index in Dir.entries
}

// Dir is one directory: an unsorted list of names, scanned linearly like
// an ext2/ext4-without-dir_index directory block list.
type Dir struct {
	name    string
	entries []string
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{dirs: make(map[string]*Dir), dcache: make(map[dckey]int)}
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(name string) error {
	if _, ok := fs.dirs[name]; ok {
		return fmt.Errorf("mkdir %s: %w", name, ErrExists)
	}
	fs.dirs[name] = &Dir{name: name}
	return nil
}

// Dir returns a directory by name.
func (fs *FS) Dir(name string) (*Dir, error) {
	d, ok := fs.dirs[name]
	if !ok {
		return nil, fmt.Errorf("dir %s: %w", name, ErrNotFound)
	}
	return d, nil
}

// Len returns the number of entries in the directory.
func (d *Dir) Len() int { return len(d.entries) }

// scan linearly searches the directory for name. Deliberately O(n): this
// is the directory-block walk.
func (d *Dir) scan(name string) int {
	for i, e := range d.entries {
		if e == name {
			return i
		}
	}
	return -1
}

// cachePut remembers a name's position, evicting everything when full.
func (fs *FS) cachePut(dir *Dir, name string, idx int) {
	if len(fs.dcache) >= dcacheCap {
		fs.dcache = make(map[dckey]int)
	}
	fs.dcache[dckey{dir.name, name}] = idx
}

// lookup finds name in dir, serving from the dentry cache when possible
// and caching the result of a successful scan.
func (fs *FS) lookup(dir *Dir, name string) int {
	key := dckey{dir.name, name}
	if idx, ok := fs.dcache[key]; ok {
		if idx < len(dir.entries) && dir.entries[idx] == name {
			return idx
		}
		delete(fs.dcache, key) // stale
	}
	idx := dir.scan(name)
	if idx >= 0 {
		fs.cachePut(dir, name, idx)
	}
	return idx
}

// insertScan performs the full duplicate-check/free-slot scan that
// inserting into an unindexed directory requires (ext4_add_entry). The
// dentry cache deliberately does not short-circuit it.
func (fs *FS) insertScan(dir *Dir, name string) int {
	return dir.scan(name)
}

// removeAt swap-removes the entry at idx, keeping the dentry cache's
// index for the moved entry consistent.
func (fs *FS) removeAt(dir *Dir, idx int) {
	name := dir.entries[idx]
	last := len(dir.entries) - 1
	moved := dir.entries[last]
	dir.entries[idx] = moved
	dir.entries = dir.entries[:last]
	delete(fs.dcache, dckey{dir.name, name})
	if idx != last {
		if _, ok := fs.dcache[dckey{dir.name, moved}]; ok {
			fs.dcache[dckey{dir.name, moved}] = idx
		}
	}
}

// append adds a name at the directory's end and caches its position.
func (fs *FS) append(dir *Dir, name string) {
	dir.entries = append(dir.entries, name)
	fs.cachePut(dir, name, len(dir.entries)-1)
}

// Create adds a file to the directory after a full duplicate scan.
func (fs *FS) Create(dir, name string) error {
	d, err := fs.Dir(dir)
	if err != nil {
		return err
	}
	if fs.insertScan(d, name) >= 0 {
		return fmt.Errorf("create %s/%s: %w", dir, name, ErrExists)
	}
	fs.append(d, name)
	return nil
}

// Unlink removes a file from the directory. A dentry-cache hit (the
// common case for recently created names) makes this O(1).
func (fs *FS) Unlink(dir, name string) error {
	d, err := fs.Dir(dir)
	if err != nil {
		return err
	}
	i := fs.lookup(d, name)
	if i < 0 {
		return fmt.Errorf("unlink %s/%s: %w", dir, name, ErrNotFound)
	}
	fs.removeAt(d, i)
	return nil
}

// Exists reports whether dir contains name (dentry cache first).
func (fs *FS) Exists(dir, name string) bool {
	d, err := fs.Dir(dir)
	if err != nil {
		return false
	}
	return fs.lookup(d, name) >= 0
}

// Rename moves src/srcName to dst/dstName. The source entry resolves via
// the dentry cache, but the destination side performs the full
// insert scan, so the cost is proportional to the destination directory's
// size. Callers performing cross-directory renames must hold the
// filesystem's global rename lock, as the Linux VFS does.
func (fs *FS) Rename(src, srcName, dst, dstName string) error {
	sd, err := fs.Dir(src)
	if err != nil {
		return err
	}
	dd, err := fs.Dir(dst)
	if err != nil {
		return err
	}
	si := fs.lookup(sd, srcName)
	if si < 0 {
		return fmt.Errorf("rename %s/%s: %w", src, srcName, ErrNotFound)
	}
	if di := fs.insertScan(dd, dstName); di >= 0 {
		// POSIX rename replaces an existing destination.
		if sd == dd && di == si {
			return nil
		}
		fs.removeAt(dd, di)
		// The source index may have moved if src == dst.
		si = fs.lookup(sd, srcName)
	}
	fs.removeAt(sd, si)
	fs.append(dd, dstName)
	return nil
}

// Populate bulk-creates n files named with the given prefix, bypassing the
// per-create duplicate scan (test and benchmark setup only — building a
// million-entry directory through Create would cost O(n²)). Populated
// entries are not cached, like a directory never read since mount.
func (fs *FS) Populate(dir, prefix string, n int) error {
	d, err := fs.Dir(dir)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		d.entries = append(d.entries, fmt.Sprintf("%s%028d", prefix, i))
	}
	return nil
}
