// Command doclint is the repository's documentation gate (make
// docs-check): it fails if any exported identifier in the public packages
// (scl, scl/lockstat, scl/trace, scl/export) lacks a doc comment, or if a
// relative link in the top-level markdown files points at a path that
// does not exist. It uses only go/ast and go/parser, so the gate needs no
// third-party linters.
//
//	doclint [-root dir]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// pkgDirs are the public packages whose exported API must be documented,
// relative to the repository root.
var pkgDirs = []string{".", "lockstat", "trace", "export"}

// mdFiles are the markdown files whose relative links must resolve.
var mdFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	var problems []string
	for _, dir := range pkgDirs {
		ps, err := lintPackage(filepath.Join(*root, dir))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(1)
		}
		problems = append(problems, ps...)
	}
	for _, md := range mdFiles {
		ps, err := lintLinks(*root, md)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(1)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintPackage reports exported identifiers without doc comments in the
// non-test Go files of dir. Grouped const/var declarations are satisfied
// by a doc comment on the block; methods need documenting only when their
// receiver's base type is itself exported.
func lintPackage(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc.Text() != "" {
						continue
					}
					if d.Recv != nil && !exportedReceiver(d.Recv) {
						continue
					}
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				case *ast.GenDecl:
					blockDoc := d.Doc.Text() != ""
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && !blockDoc && s.Doc.Text() == "" {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if blockDoc || s.Doc.Text() != "" {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									report(n.Pos(), declKind(d.Tok), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// exportedReceiver reports whether a method's receiver base type is an
// exported name (methods on unexported types are internal API).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// mdLink matches markdown links and images; the first group is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintLinks reports relative links in root/name that do not resolve to an
// existing file or directory. Absolute URLs and pure anchors are skipped
// (anchor validity within a file is out of scope).
func lintLinks(root, name string) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(root, name))
	if err != nil {
		return nil, err
	}
	var out []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, match := range mdLink.FindAllStringSubmatch(line, -1) {
			target := match[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(root, target)); err != nil {
				out = append(out, fmt.Sprintf("%s:%d: dead relative link %q", name, i+1, match[1]))
			}
		}
	}
	return out, nil
}
