// Command doclint is the repository's documentation gate (make
// docs-check): it fails if any exported identifier in the public packages
// (scl, scl/lockstat, scl/trace, scl/export) lacks a doc comment, or if a
// relative link in the top-level markdown files points at a path that
// does not exist, or if a `#fragment` in such a link (same-file or
// `file.md#fragment`) names a heading anchor that no heading in the
// target file generates under GitHub's slug rules. It uses only go/ast
// and go/parser, so the gate needs no third-party linters.
//
//	doclint [-root dir]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// pkgDirs are the public packages whose exported API must be documented,
// relative to the repository root.
var pkgDirs = []string{".", "lockstat", "trace", "export"}

// mdFiles are the markdown files whose relative links must resolve.
var mdFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	var problems []string
	for _, dir := range pkgDirs {
		ps, err := lintPackage(filepath.Join(*root, dir))
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(1)
		}
		problems = append(problems, ps...)
	}
	for _, md := range mdFiles {
		ps, err := lintLinks(*root, md)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(1)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintPackage reports exported identifiers without doc comments in the
// non-test Go files of dir. Grouped const/var declarations are satisfied
// by a doc comment on the block; methods need documenting only when their
// receiver's base type is itself exported.
func lintPackage(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc.Text() != "" {
						continue
					}
					if d.Recv != nil && !exportedReceiver(d.Recv) {
						continue
					}
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				case *ast.GenDecl:
					blockDoc := d.Doc.Text() != ""
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && !blockDoc && s.Doc.Text() == "" {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if blockDoc || s.Doc.Text() != "" {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									report(n.Pos(), declKind(d.Tok), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// exportedReceiver reports whether a method's receiver base type is an
// exported name (methods on unexported types are internal API).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// mdLink matches markdown links and images; the first group is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintLinks reports relative links in root/name that do not resolve to
// an existing file or directory, and `#fragment` links (same-file or
// into another markdown file) whose fragment matches no heading anchor
// in the target. Absolute URLs are skipped.
func lintLinks(root, name string) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(root, name))
	if err != nil {
		return nil, err
	}
	anchorCache := map[string]map[string]bool{}
	anchorsOf := func(md string) (map[string]bool, error) {
		if a, ok := anchorCache[md]; ok {
			return a, nil
		}
		body, err := os.ReadFile(filepath.Join(root, md))
		if err != nil {
			return nil, err
		}
		a := headingAnchors(string(body))
		anchorCache[md] = a
		return a, nil
	}
	var out []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, match := range mdLink.FindAllStringSubmatch(line, -1) {
			target := match[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			fragment := ""
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target, fragment = target[:idx], target[idx+1:]
			}
			if target != "" {
				if _, err := os.Stat(filepath.Join(root, target)); err != nil {
					out = append(out, fmt.Sprintf("%s:%d: dead relative link %q", name, i+1, match[1]))
					continue
				}
			}
			if fragment == "" {
				continue
			}
			// Anchors are only checkable against markdown targets
			// (same file when the path part is empty).
			md := target
			if md == "" {
				md = name
			}
			if !strings.HasSuffix(md, ".md") {
				continue
			}
			anchors, err := anchorsOf(md)
			if err != nil {
				return nil, err
			}
			if !anchors[fragment] {
				out = append(out, fmt.Sprintf("%s:%d: dead anchor %q (no heading in %s slugs to #%s)", name, i+1, match[1], md, fragment))
			}
		}
	}
	return out, nil
}

// atxHeading matches an ATX heading line outside code fences.
var atxHeading = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// slugDrop removes every rune GitHub's anchor slugger drops: anything
// that is not a letter, digit, space, hyphen, or underscore.
var slugDrop = regexp.MustCompile(`[^\p{L}\p{N} _-]`)

// headingAnchors collects the GitHub-style anchors a markdown file's
// headings generate: lowercase, punctuation dropped, spaces to
// hyphens, and `-N` suffixes for repeated headings. Fenced code blocks
// are skipped so commented-out `# shell` lines don't mint anchors.
func headingAnchors(body string) map[string]bool {
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := atxHeading.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		if !anchors[slug] {
			anchors[slug] = true
			continue
		}
		for n := 1; ; n++ {
			c := fmt.Sprintf("%s-%d", slug, n)
			if !anchors[c] {
				anchors[c] = true
				break
			}
		}
	}
	return anchors
}

// slugify lowers a heading's text to its GitHub anchor. Inline code
// backticks and emphasis markers contribute their text only.
func slugify(s string) string {
	s = strings.NewReplacer("`", "", "*", "").Replace(s)
	s = strings.ToLower(s)
	s = slugDrop.ReplaceAllString(s, "")
	return strings.ReplaceAll(s, " ", "-")
}
