// Command sclbench regenerates the tables and figures of "Avoiding
// Scheduler Subversion using Scheduler-Cooperative Locks" (EuroSys 2020)
// on this repository's simulator and substrates.
//
// Usage:
//
//	sclbench -list
//	sclbench -exp fig5a
//	sclbench -exp all -scale 0.5 -seed 7
//
// Scale multiplies each experiment's default duration (1.0 ≈ seconds per
// experiment); seed makes runs reproducible.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scl/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment to run (see -list), or \"all\"")
		list  = flag.Bool("list", false, "list available experiments")
		seed  = flag.Int64("seed", 1, "simulation seed")
		scale = flag.Float64("scale", 1.0, "duration scale factor")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, r := range experiments.All() {
			fmt.Printf("  %-8s %s\n", r.Name, r.Paper)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale}
	run := func(r experiments.Runner) {
		fmt.Printf("== %s: %s\n", r.Name, r.Paper)
		start := time.Now()
		res, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %v)\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, r := range experiments.All() {
			run(r)
		}
		return
	}
	r, ok := experiments.Get(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	run(r)
}
