// Command scltop renders a live, top-style view of scheduler-cooperative
// lock usage: per-entity lock opportunity, hold share, bans and fairness,
// refreshed every interval — the paper's Table 1 / §2.3 measurements as a
// monitor instead of a post-mortem.
//
// Live mode attaches to a running process that serves an
// export.Registry snapshot (see scl/export):
//
//	scltop -url http://localhost:6060/debug/scl
//	scltop -url http://localhost:6060/debug/vars -key scl
//
// Replay mode aggregates a trace dump (JSON lines of trace.Event, as
// written by trace.WriteJSONL or scltrace -json) and prints the same
// report once:
//
//	scltop -replay dump.jsonl
//
// Each frame shows, per lock and per entity: acquisitions (total and
// per-second over the last window), cumulative hold time and the hold
// share of the window, lock opportunity time (hold + idle, paper eq. 1)
// and its share, ban counts and total ban time, and wait p99; per lock,
// the idle share and Jain fairness over holds and LOTs. A hold% column
// far from the entity's share with Jain(LOT) near 1 is an SCL doing its
// job: unequal usage, equal opportunity. Jain(LOT) sliding toward 1/n is
// the paper's subversion signal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"scl/export"
	"scl/internal/metrics"
	"scl/trace"
)

func main() {
	var (
		url      = flag.String("url", "", "snapshot endpoint (export.Registry.VarsHandler)")
		key      = flag.String("key", "", "extract this key from an expvar /debug/vars document")
		interval = flag.Duration("interval", time.Second, "refresh interval (live mode)")
		frames   = flag.Int("n", 0, "number of frames to render (0 = until interrupted)")
		replay   = flag.String("replay", "", "replay a JSONL trace dump instead of attaching")
		noClear  = flag.Bool("no-clear", false, "do not clear the screen between frames")
	)
	flag.Parse()

	switch {
	case *replay != "":
		if err := replayDump(*replay); err != nil {
			fmt.Fprintln(os.Stderr, "scltop:", err)
			os.Exit(1)
		}
	case *url != "":
		if err := live(*url, *key, *interval, *frames, !*noClear); err != nil {
			fmt.Fprintln(os.Stderr, "scltop:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "scltop: need -url (live) or -replay (offline); see -h")
		os.Exit(2)
	}
}

// replayDump aggregates a trace dump and prints one report.
func replayDump(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	evs, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s: no events", path)
	}
	fmt.Printf("%d events\n\n", len(evs))
	for _, l := range trace.Aggregate(evs) {
		fmt.Println(l)
	}
	return nil
}

// live polls the snapshot endpoint and renders frames.
func live(url, key string, interval time.Duration, frames int, clear bool) error {
	var prev *export.Snapshot
	prevAt := time.Now()
	for i := 0; frames == 0 || i < frames; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		snap, err := fetch(url, key)
		if err != nil {
			return err
		}
		if len(snap.Locks)+len(snap.RWLocks)+len(snap.Managers)+len(snap.Rings) == 0 {
			return fmt.Errorf("%s: snapshot has no locks — is this an expvar endpoint? (use -key, e.g. -key scl)", url)
		}
		now := time.Now()
		if clear {
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Print(render(snap, prev, now.Sub(prevAt)))
		prev, prevAt = snap, now
	}
	return nil
}

// fetch retrieves a Snapshot: either raw (VarsHandler) or nested under
// key in an expvar /debug/vars document.
func fetch(url, key string) (*export.Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	if key == "" {
		var snap export.Snapshot
		if err := dec.Decode(&snap); err != nil {
			return nil, err
		}
		return &snap, nil
	}
	var doc map[string]json.RawMessage
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	raw, ok := doc[key]
	if !ok {
		return nil, fmt.Errorf("%s: no %q key (is the registry published under that name?)", url, key)
	}
	var snap export.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// render draws one frame. prev (the last frame's snapshot) supplies the
// windowed rates; nil means first frame, totals only.
func render(snap, prev *export.Snapshot, window time.Duration) string {
	out := fmt.Sprintf("scltop  %s  (window %v)\n\n",
		time.Now().Format("15:04:05"), window.Round(time.Millisecond))
	for _, l := range snap.Locks {
		out += renderLock(l, prevLock(prev, l.Name), window)
	}
	for _, l := range snap.RWLocks {
		out += renderRW(l)
	}
	for _, m := range snap.Managers {
		out += renderManager(m, prevManager(prev, m.Name), window)
	}
	for _, g := range snap.Rings {
		out += fmt.Sprintf("ring %s: %d events, %d dropped (cap %d)\n",
			g.Name, g.Seen, g.Dropped, g.Cap)
	}
	return out
}

func prevLock(prev *export.Snapshot, name string) *export.LockSnapshot {
	if prev == nil {
		return nil
	}
	for i := range prev.Locks {
		if prev.Locks[i].Name == name {
			return &prev.Locks[i]
		}
	}
	return nil
}

func renderLock(l export.LockSnapshot, prev *export.LockSnapshot, window time.Duration) string {
	var totalLOT time.Duration
	for _, e := range l.Entities {
		totalLOT += e.LOT
	}
	t := metrics.NewTable("lock "+l.Name,
		"entity", "acq", "acq/s", "hold", "hold%", "LOT", "LOT%", "bans", "ban time", "cancels", "wait p99µs")
	for _, e := range l.Entities {
		var acqRate, holdPct float64
		if p := prevEntity(prev, e.ID); p != nil && window > 0 {
			acqRate = float64(e.Acquisitions-p.Acquisitions) / window.Seconds()
			holdPct = 100 * float64(e.Hold-p.Hold) / float64(window)
		} else if l.Elapsed > 0 {
			// First frame: lifetime share instead of a window rate.
			acqRate = float64(e.Acquisitions) / l.Elapsed.Seconds()
			holdPct = 100 * float64(e.Hold) / float64(l.Elapsed)
		}
		lotPct := 0.0
		if totalLOT > 0 {
			lotPct = 100 * float64(e.LOT) / float64(totalLOT)
		}
		t.AddRow(e.Label, e.Acquisitions, acqRate,
			e.Hold.Round(time.Millisecond).String(), holdPct,
			e.LOT.Round(time.Millisecond).String(), lotPct,
			e.Bans, e.BanTime.Round(time.Millisecond).String(),
			e.Cancels, metrics.Micros(e.WaitP99))
	}
	idlePct := 0.0
	if l.Elapsed > 0 {
		idlePct = 100 * float64(l.Idle) / float64(l.Elapsed)
	}
	footer := fmt.Sprintf(
		"idle %.1f%%  Jain(hold) %.3f  Jain(LOT) %.3f  registered %d",
		idlePct, l.JainHold, l.JainLOT, l.Registered)
	if l.Reaped > 0 {
		footer += fmt.Sprintf("  reaped %d", l.Reaped)
	}
	return t.String() + footer + "\n\n"
}

func prevEntity(prev *export.LockSnapshot, id int64) *export.EntitySnapshot {
	if prev == nil {
		return nil
	}
	for i := range prev.Entities {
		if prev.Entities[i].ID == id {
			return &prev.Entities[i]
		}
	}
	return nil
}

// renderManager draws a lock table's by-tenant aggregation: each row is
// one tenant's activity summed across every key of the table, so a
// tenant spraying load over many keys is as visible as one hammering a
// single hot lock.
func renderManager(m export.ManagerSnapshot, prev *export.ManagerSnapshot, window time.Duration) string {
	t := metrics.NewTable(fmt.Sprintf("manager %s (%d keys)", m.Name, m.Keys),
		"tenant", "weight", "grants", "grant/s", "hold", "hold%", "bans", "ban time", "inflight")
	for _, ten := range m.Tenants {
		var rate float64
		holdPct := 100 * ten.HoldShare
		if p := prevTenant(prev, ten.ID); p != nil && window > 0 {
			rate = float64(ten.Grants-p.Grants) / window.Seconds()
			holdPct = 100 * float64(ten.Hold-p.Hold) / float64(window)
		}
		t.AddRow(ten.Label, ten.Weight, ten.Grants, rate,
			ten.Hold.Round(time.Millisecond).String(), holdPct,
			ten.Bans, ten.BanTime.Round(time.Millisecond).String(), ten.Inflight)
	}
	footer := fmt.Sprintf(
		"stripes %d  identities %d  Jain(hold) %.3f  materialized %d",
		m.Stripes, m.Identities, m.JainHold, m.Materialized)
	if m.LocksReaped > 0 {
		footer += fmt.Sprintf("  locks reaped %d", m.LocksReaped)
	}
	if m.TenantsReaped > 0 {
		footer += fmt.Sprintf("  tenants reaped %d", m.TenantsReaped)
	}
	return t.String() + footer + "\n\n"
}

func prevManager(prev *export.Snapshot, name string) *export.ManagerSnapshot {
	if prev == nil {
		return nil
	}
	for i := range prev.Managers {
		if prev.Managers[i].Name == name {
			return &prev.Managers[i]
		}
	}
	return nil
}

func prevTenant(prev *export.ManagerSnapshot, id int64) *export.TenantSnapshot {
	if prev == nil {
		return nil
	}
	for i := range prev.Tenants {
		if prev.Tenants[i].ID == id {
			return &prev.Tenants[i]
		}
	}
	return nil
}

func renderRW(l export.RWLockSnapshot) string {
	t := metrics.NewTable("rwlock "+l.Name, "class", "acq", "hold", "hold%", "cancels")
	pct := func(d time.Duration) float64 {
		if l.Elapsed <= 0 {
			return 0
		}
		return 100 * float64(d) / float64(l.Elapsed)
	}
	t.AddRow("read", l.ReaderOps, l.ReaderHold.Round(time.Millisecond).String(), pct(l.ReaderHold), l.ReaderCancels)
	t.AddRow("write", l.WriterOps, l.WriterHold.Round(time.Millisecond).String(), pct(l.WriterHold), l.WriterCancels)
	return t.String() + fmt.Sprintf("idle %.1f%%\n\n", pct(l.Idle))
}
