// Command lht measures lock hold time (critical-section) distributions on
// this repository's real application substrates — the reproduction of the
// paper's Table 1. All measurements are wall-clock timings of real data
// structure operations (B+-tree, LSM, hash tables, journal, VFS
// namespace); see DESIGN.md for the paper-to-substrate mapping.
//
// Usage:
//
//	lht [-scale 0.5] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"

	"scl/internal/experiments"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "workload seed")
		scale = flag.Float64("scale", 1.0, "sample count scale factor")
	)
	flag.Parse()
	res, err := experiments.Table1(experiments.Options{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(res.String())
}
