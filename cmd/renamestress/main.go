// Command renamestress reproduces the paper's §5.5.3 bully/victim rename
// experiment on the real VFS namespace with real goroutines: a bully
// repeatedly renames into a large directory (long scans under the global
// rename lock) while a victim renames between empty directories. Compare
// the victim's throughput and latency under a barging mutex versus a
// k-SCL-configured scheduler-cooperative mutex.
//
// Usage:
//
//	renamestress [-dir-entries 200000] [-duration 5s] [-lock kscl|barging]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"scl"
	"scl/internal/metrics"
	"scl/internal/vfs"
)

func main() {
	var (
		entries  = flag.Int("dir-entries", 200_000, "files in the bully's destination directory")
		duration = flag.Duration("duration", 5*time.Second, "run length")
		lockKind = flag.String("lock", "kscl", "rename lock: kscl or barging")
	)
	flag.Parse()

	fs := vfs.New()
	for _, d := range []string{"bully-src", "bully-dst", "victim-src", "victim-dst"} {
		if err := fs.Mkdir(d); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := fs.Populate("bully-dst", "f-", *entries); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The global rename lock (s_vfs_rename_mutex). Each process also needs
	// a per-directory lock for create/unlink; with only two processes in
	// disjoint directories a per-process mutex suffices and never contends.
	var bullyLock, victimLock sync.Locker
	var sclMutex *scl.Mutex
	switch *lockKind {
	case "kscl":
		sclMutex = scl.NewMutex(scl.Options{Slice: -1, InactiveTimeout: time.Second})
		bullyLock = sclMutex.Register().SetName("bully")
		victimLock = sclMutex.Register().SetName("victim")
	case "barging":
		m := &scl.BargingMutex{}
		bullyLock, victimLock = m, m
	default:
		fmt.Fprintf(os.Stderr, "unknown -lock %q\n", *lockKind)
		os.Exit(2)
	}

	deadline := time.Now().Add(*duration)
	run := func(lk sync.Locker, src, dst string, lats *[]time.Duration, ops *int64) func() {
		return func() {
			i := 0
			for time.Now().Before(deadline) {
				name := fmt.Sprintf("f%d", i)
				i++
				if err := fs.Create(src, name); err != nil {
					panic(err)
				}
				start := time.Now()
				lk.Lock()
				if err := fs.Rename(src, name, dst, name); err != nil {
					panic(err)
				}
				lk.Unlock()
				*lats = append(*lats, time.Since(start))
				if err := fs.Unlink(dst, name); err != nil {
					panic(err)
				}
				*ops++
			}
		}
	}

	var bullyLats, victimLats []time.Duration
	var bullyOps, victimOps int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); run(bullyLock, "bully-src", "bully-dst", &bullyLats, &bullyOps)() }()
	go func() { defer wg.Done(); run(victimLock, "victim-src", "victim-dst", &victimLats, &victimOps)() }()
	wg.Wait()

	t := metrics.NewTable(
		fmt.Sprintf("Rename stress (%s lock, %d-entry bully dir, %v)", *lockKind, *entries, *duration),
		"process", "renames", "p50", "p90", "p99", "max")
	for _, p := range []struct {
		name string
		ops  int64
		lats []time.Duration
	}{{"bully", bullyOps, bullyLats}, {"victim", victimOps, victimLats}} {
		s := metrics.Summarize(p.lats)
		t.AddRow(p.name, p.ops, s.P50.String(), s.P90.String(), s.P99.String(), s.Max.String())
	}
	fmt.Println(t.String())
	if sclMutex != nil {
		snap := sclMutex.Stats()
		fmt.Printf("lock idle: %v of %v\n", snap.Idle.Round(time.Millisecond), snap.Elapsed.Round(time.Millisecond))
	}
}
