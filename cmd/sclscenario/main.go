// Command sclscenario runs declarative workload scenarios
// (internal/scenario) against the scl locks from the command line.
//
// Modes:
//
//	sclscenario -mode list [-dir internal/scenario/testdata]
//	    list the corpus: name, lock, entities, scripted acquires.
//	sclscenario -mode run -scenario <file|name> [-substrate sim|check|wall|all]
//	    compile and execute one scenario; prints the seed, the
//	    per-substrate summary table, and any assertion failures.
//	sclscenario -mode oracle [-dir ...] [-scenario <file|name>]
//	    the corpus-wide differential oracle: every scenario runs on
//	    the sim and check substrates and the results are compared
//	    grant-by-grant (modulo each scenario's documented allow
//	    list).
//	sclscenario -mode replay -scenario <file|name> -seed <N>
//	    recompile with an explicit seed (as printed by run/oracle)
//	    and re-execute the deterministic substrates — byte-identical
//	    output, for reproducing a reported divergence.
//
// Exit status is non-zero on assertion failure, undocumented
// divergence, or error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scl/internal/scenario"
)

func main() {
	var (
		mode      = flag.String("mode", "run", "list, run, oracle, or replay")
		dir       = flag.String("dir", "internal/scenario/testdata", "scenario corpus directory")
		file      = flag.String("scenario", "", "scenario file path, or bare name resolved in -dir")
		substrate = flag.String("substrate", "all", "run mode: sim, check, wall, or all")
		seed      = flag.Int64("seed", 0, "seed override (replay mode; 0 = the scenario's own)")
	)
	flag.Parse()

	switch *mode {
	case "list":
		list(*dir)
	case "run":
		runOne(resolve(*dir, *file), *substrate, *seed)
	case "oracle":
		oracleMode(*dir, *file)
	case "replay":
		runOne(resolve(*dir, *file), "sim,check", *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q\n", *mode)
		os.Exit(2)
	}
}

// resolve turns a bare scenario name into a corpus path.
func resolve(dir, name string) string {
	if name == "" {
		fmt.Fprintln(os.Stderr, "missing -scenario")
		os.Exit(2)
	}
	if _, err := os.Stat(name); err == nil {
		return name
	}
	p := filepath.Join(dir, name)
	if !strings.HasSuffix(p, scenario.CorpusExt) {
		p += scenario.CorpusExt
	}
	return p
}

// list prints the corpus inventory.
func list(dir string) {
	corpus, err := scenario.LoadCorpus(dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-14s %-6s %4s %8s %9s %7s  %s\n", "scenario", "lock", "keys", "entities", "acquires", "seed", "allow")
	for _, s := range corpus {
		c, err := scenario.Compile(s)
		if err != nil {
			fatal(err)
		}
		allow := strings.Join(s.Allow, ",")
		if allow == "" {
			allow = "-"
		}
		fmt.Printf("%-14s %-6s %4d %8d %9d %7d  %s\n", s.Name, s.Lock, s.KeyCount(), s.Entities(), c.TotalAcquires(), s.Seed, allow)
	}
}

// runOne executes one scenario on the requested substrates.
func runOne(path, substrates string, seed int64) {
	s, err := scenario.LoadFile(path)
	if err != nil {
		fatal(err)
	}
	if seed == 0 {
		seed = s.Seed
	}
	c, err := scenario.CompileSeed(s, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("seed %d (replay: sclscenario -mode replay -scenario %s -seed %d)\n", seed, s.Name, seed)
	which := strings.Split(substrates, ",")
	if substrates == "all" {
		which = []string{scenario.SubstrateSim, scenario.SubstrateCheck, scenario.SubstrateWall}
	}
	bad := false
	for _, sub := range which {
		res, err := scenario.Run(c, sub)
		if err != nil {
			fmt.Printf("substrate %s ERROR %v\n", sub, err)
			bad = true
			continue
		}
		fmt.Print(scenario.Summary(c, sub, res))
		for _, aerr := range scenario.EvalAsserts(s, res, sub) {
			fmt.Printf("  ASSERT FAILED: %v\n", aerr)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

// oracleMode runs the corpus-wide (or single-scenario) differential
// oracle.
func oracleMode(dir, file string) {
	var corpus []*scenario.Scenario
	if file != "" {
		s, err := scenario.LoadFile(resolve(dir, file))
		if err != nil {
			fatal(err)
		}
		corpus = []*scenario.Scenario{s}
	} else {
		var err error
		corpus, err = scenario.LoadCorpus(dir)
		if err != nil {
			fatal(err)
		}
	}
	bad := false
	for _, s := range corpus {
		c, err := scenario.Compile(s)
		if err != nil {
			fatal(err)
		}
		allowed, undocumented, err := scenario.Diff(c)
		switch {
		case err != nil:
			fmt.Printf("%-14s ERROR %v\n", s.Name, err)
			bad = true
		case len(undocumented) > 0:
			fmt.Printf("%-14s DIVERGED (seed %d)\n", s.Name, c.Seed)
			for _, d := range undocumented {
				fmt.Printf("    %v\n", d)
			}
			bad = true
		default:
			fmt.Printf("%-14s ok (%d documented divergences)\n", s.Name, len(allowed))
		}
	}
	if bad {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sclscenario:", err)
	os.Exit(1)
}
