// Command benchjson records `go test -bench` output as a JSON trajectory.
//
// It reads benchmark output on stdin, parses the standard result lines,
// and appends one labeled run to a JSON file (default BENCH_scl.json).
// Repeated lines for one benchmark (`go test -count=N`, as `make bench`
// passes) are collapsed to the best sample — interference only ever
// adds time, so the minimum is the sample least disturbed by the rest
// of the machine. The raw benchmark lines are preserved verbatim inside
// each run, so the file stays benchstat-compatible — extract any two
// runs and diff them:
//
//	jq -r '.runs[0].raw[]' BENCH_scl.json > old.txt
//	jq -r '.runs[-1].raw[]' BENCH_scl.json > new.txt
//	benchstat old.txt new.txt
//
// The first run in the repository's checked-in file is the pre-fast-path
// baseline; `make bench` appends the current numbers, growing the
// performance trajectory over time.
//
// With -compare the command instead reads an existing trajectory and
// gates on it: the newest run is checked against the best ns/op each
// benchmark posted over the preceding -window runs (default 3), and
// the exit status is non-zero when any benchmark present on both sides
// regressed by more than -threshold percent (default 20). Gating on
// the recent best rather than the single previous run keeps one
// scheduler-latency spike (handoff-bound benchmarks on a loaded box
// routinely jump 2x for one run) from failing an unrelated change,
// while a real regression — worse than every recent run — still fails,
// and so does slow creep that compounds past the threshold across the
// window. Benchmarks whose baseline exceeds -macro-cutoff ns/op
// (simulator replays, whole-scenario runs) are report-only: they
// measure the box's scheduler and GC as much as this repo, and on a
// busy single-CPU machine they swing 40% between runs of unchanged
// code. `make bench` runs the gate right after appending:
//
//	benchjson -compare BENCH_scl.json
//
// When the recording machine itself changes in a way the automatic
// sync-baseline factor cannot see (scheduler latency rather than CPU
// speed), record the first run of the new epoch with -hop "<reason>":
// the declaration is stored in the trajectory and -compare never
// draws a baseline from across the most recent hop.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric pairs (for example the
	// scenario benchmarks' grants/op and jain-hold). They are recorded
	// and reported by -compare, but only ns/op gates the exit status —
	// fairness metrics have no universal better/worse direction.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labeled benchmark session.
type Run struct {
	Date  string `json:"date"`
	Label string `json:"label,omitempty"`
	// Hop, when non-empty, declares this run the start of a new machine
	// epoch (the text says what changed) — -compare never reaches
	// across the most recent hop for its baseline. The sync-baseline
	// machine factor detects CPU-speed hops automatically, but a
	// container can also change in ways the factor cannot see (a
	// noisier scheduler shifts park/wake-bound benchmarks while
	// CPU-bound baselines hold still); -hop is the explicit,
	// in-history declaration for those.
	Hop     string   `json:"hop,omitempty"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
	// Raw holds the benchmark lines verbatim (benchstat input format).
	Raw []string `json:"raw"`
}

// File is the trajectory: a sequence of runs, oldest first.
type File struct {
	Package string `json:"package"`
	Runs    []Run  `json:"runs"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_scl.json", "trajectory file to append to")
	label := flag.String("label", "", "label for this run")
	pkg := flag.String("pkg", "scl", "package name recorded in a fresh file")
	compare := flag.String("compare", "", "regression mode: compare the file's last run against the recent best instead of reading stdin")
	threshold := flag.Float64("threshold", 20, "ns/op regression percentage that fails -compare")
	window := flag.Int("window", 3, "how many prior runs the -compare baseline is drawn from")
	hop := flag.String("hop", "", "declare this run the start of a new machine epoch (why the machine changed); -compare will not reach across it")
	macroCutoff := flag.Float64("macro-cutoff", 10_000, "baseline ns/op above which a benchmark is report-only in -compare (0 disables the cutoff)")
	volatileRe := flag.String("volatile", "", "regexp of benchmark names that are report-only in -compare regardless of size")
	flag.Parse()

	if *compare != "" {
		if err := runCompare(*compare, *threshold, *window, *macroCutoff, *volatileRe); err != nil {
			fatal(err)
		}
		return
	}

	run := Run{Date: time.Now().UTC().Format(time.RFC3339), Label: *label, Hop: *hop}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			run.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		r.Metrics = parseMetrics(line[len(m[0]):], &r)
		run.Results = appendBest(run.Results, r)
		run.Raw = append(run.Raw, strings.TrimSpace(line))
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(run.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	var f File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *out, err))
		}
	} else {
		f.Package = *pkg
	}
	f.Runs = append(f.Runs, run)

	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d results to %s (%d runs)\n",
		len(run.Results), *out, len(f.Runs))
}

// appendBest folds a parsed result into the run, collapsing repeated
// names (`go test -count=N`) to the sample with the lowest ns/op. The
// minimum is the standard low-noise estimator for a benchmark's true
// cost — external interference only ever adds time, so the best of N
// short windows is the sample least disturbed by the rest of the
// machine. Raw lines still keep every sample for benchstat.
func appendBest(results []Result, r Result) []Result {
	for i := range results {
		if results[i].Name == r.Name {
			if r.NsPerOp < results[i].NsPerOp {
				results[i] = r
			}
			return results
		}
	}
	return append(results, r)
}

// parseMetrics reads the "value unit" pairs that follow ns/op on a
// benchmark line: custom b.ReportMetric output plus, when custom
// metrics push them off the main regex, the -benchmem B/op and
// allocs/op columns (those are routed back into the Result's
// dedicated fields rather than the map).
func parseMetrics(tail string, r *Result) map[string]float64 {
	fields := strings.Fields(tail)
	var metrics map[string]float64
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		switch unit := fields[i+1]; unit {
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if metrics == nil {
				metrics = make(map[string]float64)
			}
			metrics[unit] = v
		}
	}
	return metrics
}

// runCompare checks the trajectory's newest run against the preceding
// window runs and fails when any benchmark regressed its ns/op by more
// than threshold percent against the *best* (lowest, after machine
// normalization) value it posted in the window. One run's scheduler
// hiccup therefore never sets the bar — a regression must beat every
// recent run to fail — while monotone creep still trips the gate once
// it compounds past the threshold against the window's fastest sample.
// Benchmarks that appear only in the newest run (or only in history)
// are reported but never fail the gate (added or retired benchmarks
// are not regressions).
//
// Only stable micro benchmarks gate. A benchmark whose baseline ns/op
// exceeds macroCutoff — the simulator replays and scenario runs,
// milliseconds of goroutine scheduling and allocation per op —
// measures the machine's scheduler and GC at least as much as this
// repo's code, and on a busy single-CPU box such benchmarks swing 40%
// between runs of *unchanged* code. Benchmarks matching the volatile
// regexp (the caller names its handoff-bound ladders there: every op
// includes a goroutine park/wake, whose cost is a per-process kernel
// regime — measured bimodal at 2.3x for unchanged code on one CPU) are
// excluded the same way. Both classes are reported with their deltas
// (and counted in the summary, so the exclusion is visible) but never
// fail the gate; the single-goroutine lock-path benchmarks the gate
// exists for are held to the strict threshold.
//
// Raw ns/op is only comparable when two runs came from equally fast
// hardware, so each window run is normalized by its machine factor
// against the newest run: the median ns/op ratio across the
// sync-primitive baseline benchmarks (BenchmarkSync*,
// BenchmarkRWMutex*), which exercise the standard library only and
// cannot be slowed by changes to this repo. When the trajectory hops
// to a slower or faster machine the baselines shift with everything
// else and the factor absorbs the shift; a genuine regression moves an
// scl benchmark relative to the baselines and still fails.
func runCompare(path string, threshold float64, window int, macroCutoff float64, volatileRe string) error {
	var volatile *regexp.Regexp
	if volatileRe != "" {
		var err error
		if volatile, err = regexp.Compile(volatileRe); err != nil {
			return fmt.Errorf("-volatile: %w", err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if len(f.Runs) < 2 {
		fmt.Fprintf(os.Stderr, "benchjson: %s has %d run(s); nothing to compare\n", path, len(f.Runs))
		return nil
	}
	if window < 1 {
		window = 1
	}
	cur := f.Runs[len(f.Runs)-1]
	first := len(f.Runs) - 1 - window
	if first < 0 {
		first = 0
	}
	// A declared machine hop starts a fresh epoch: the baseline never
	// reaches across the most recent hop-marked run (which is itself
	// the first comparable run of its epoch).
	for i := len(f.Runs) - 1; i > first; i-- {
		if f.Runs[i].Hop != "" {
			first = i
			break
		}
	}
	if first == len(f.Runs)-1 {
		fmt.Fprintf(os.Stderr, "benchjson: machine hop declared (%s); no prior same-epoch run to compare against\n", cur.Hop)
		return nil
	}
	// Baseline per benchmark: the lowest ns/op over the window, in
	// current-machine units (each window run scaled by its own factor
	// against the newest run).
	base := make(map[string]float64)
	var factor float64 = 1 // nearest pair's factor, for the hop decision
	for i := first; i < len(f.Runs)-1; i++ {
		prev := make(map[string]Result, len(f.Runs[i].Results))
		for _, r := range f.Runs[i].Results {
			prev[r.Name] = r
		}
		fac := machineFactor(prev, cur.Results)
		if i == len(f.Runs)-2 {
			factor = fac
		}
		for name, r := range prev {
			if r.NsPerOp <= 0 {
				continue
			}
			norm := r.NsPerOp * fac
			if old, ok := base[name]; !ok || norm < old {
				base[name] = norm
			}
		}
	}
	if factor != 1 {
		fmt.Fprintf(os.Stderr, "benchjson: machine factor %.2fx (median sync-baseline ns/op ratio); comparing normalized ns/op\n", factor)
	}
	// A factor far from 1 means the newest run came from different
	// hardware than its predecessor. Scalar normalization is
	// approximate there (handoff-bound benchmarks scale with scheduler
	// latency, not CPU speed), so the cross-machine comparison is
	// report-only; the next run on the new machine compares
	// same-machine again and restores the strict gate.
	hop := factor > 1.25 || factor < 0.8
	prevRun := f.Runs[len(f.Runs)-2]
	prevMetrics := make(map[string]Result, len(prevRun.Results))
	for _, r := range prevRun.Results {
		prevMetrics[r.Name] = r
	}
	var regressions []string
	macroSkipped := 0
	for _, r := range cur.Results {
		old, ok := base[r.Name]
		if !ok {
			fmt.Printf("%-50s %12.1f ns/op  (new)\n", r.Name, r.NsPerOp)
			continue
		}
		delta := (r.NsPerOp - old) / old * 100
		reportOnly := ""
		switch {
		case macroCutoff > 0 && old > macroCutoff:
			reportOnly = "macro"
		case volatile != nil && volatile.MatchString(r.Name):
			reportOnly = "volatile"
		}
		note := ""
		if reportOnly != "" {
			note = "  (" + reportOnly + ": report-only)"
		}
		fmt.Printf("%-50s %12.1f -> %12.1f ns/op  %+6.1f%%%s\n", r.Name, old, r.NsPerOp, delta, note)
		if delta > threshold {
			if reportOnly != "" {
				macroSkipped++
			} else {
				regressions = append(regressions, fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%% > %.0f%% vs best of %d run(s))", r.Name, old, r.NsPerOp, delta, threshold, len(f.Runs)-1-first))
			}
		}
		prevR := prevMetrics[r.Name]
		// Custom metrics shared by both runs (scenario throughput and
		// fairness keys) are reported for the record but never gate:
		// a fairness number has no universal regression direction.
		units := make([]string, 0, len(r.Metrics))
		for unit := range r.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			if ov, ok := prevR.Metrics[unit]; ok && ov != r.Metrics[unit] {
				fmt.Printf("%-50s %12.3f -> %12.3f %s\n", "  "+r.Name, ov, r.Metrics[unit], unit)
			}
		}
	}
	if len(regressions) > 0 {
		if hop {
			fmt.Fprintf(os.Stderr, "benchjson: machine hop detected (factor %.2fx) — reporting %d benchmark(s) beyond %.0f%% without failing; the next same-machine run restores the gate:\n  %s\n",
				factor, len(regressions), threshold, strings.Join(regressions, "\n  "))
			return nil
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%:\n  %s",
			len(regressions), threshold, strings.Join(regressions, "\n  "))
	}
	if macroSkipped > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d report-only benchmark(s) beyond %.0f%% did not gate (macro baseline > %.0f ns/op, or -volatile match)\n", macroSkipped, threshold, macroCutoff)
	}
	fmt.Fprintf(os.Stderr, "benchjson: no regression beyond %.0f%% (%s vs best of %d prior run(s))\n", threshold, cur.Date, len(f.Runs)-1-first)
	return nil
}

// machineFactor estimates how much faster or slower the current run's
// machine is than the previous run's: the median cur/prev ns/op ratio
// over the sync-primitive baseline benchmarks present in both runs.
// Returns 1 when fewer than two baselines are shared (one outlier must
// not masquerade as a machine change).
func machineFactor(prev map[string]Result, cur []Result) float64 {
	var ratios []float64
	for _, r := range cur {
		if !strings.HasPrefix(r.Name, "BenchmarkSync") && !strings.HasPrefix(r.Name, "BenchmarkRWMutex") {
			continue
		}
		if p, ok := prev[r.Name]; ok && p.NsPerOp > 0 && r.NsPerOp > 0 {
			ratios = append(ratios, r.NsPerOp/p.NsPerOp)
		}
	}
	if len(ratios) < 2 {
		return 1
	}
	sort.Float64s(ratios)
	if n := len(ratios); n%2 == 1 {
		return ratios[n/2]
	} else {
		return (ratios[n/2-1] + ratios[n/2]) / 2
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
