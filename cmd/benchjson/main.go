// Command benchjson records `go test -bench` output as a JSON trajectory.
//
// It reads benchmark output on stdin, parses the standard result lines,
// and appends one labeled run to a JSON file (default BENCH_scl.json).
// The raw benchmark lines are preserved verbatim inside each run, so the
// file stays benchstat-compatible — extract any two runs and diff them:
//
//	jq -r '.runs[0].raw[]' BENCH_scl.json > old.txt
//	jq -r '.runs[-1].raw[]' BENCH_scl.json > new.txt
//	benchstat old.txt new.txt
//
// The first run in the repository's checked-in file is the pre-fast-path
// baseline; `make bench` appends the current numbers, growing the
// performance trajectory over time.
//
// With -compare the command instead reads an existing trajectory and
// gates on it: the newest run is checked against the one before it, and
// the exit status is non-zero when any benchmark present in both
// regressed its ns/op by more than -threshold percent (default 20).
// `make bench` runs the gate right after appending:
//
//	benchjson -compare BENCH_scl.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric pairs (for example the
	// scenario benchmarks' grants/op and jain-hold). They are recorded
	// and reported by -compare, but only ns/op gates the exit status —
	// fairness metrics have no universal better/worse direction.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labeled benchmark session.
type Run struct {
	Date    string   `json:"date"`
	Label   string   `json:"label,omitempty"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
	// Raw holds the benchmark lines verbatim (benchstat input format).
	Raw []string `json:"raw"`
}

// File is the trajectory: a sequence of runs, oldest first.
type File struct {
	Package string `json:"package"`
	Runs    []Run  `json:"runs"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_scl.json", "trajectory file to append to")
	label := flag.String("label", "", "label for this run")
	pkg := flag.String("pkg", "scl", "package name recorded in a fresh file")
	compare := flag.String("compare", "", "regression mode: compare the file's last run against the previous one instead of reading stdin")
	threshold := flag.Float64("threshold", 20, "ns/op regression percentage that fails -compare")
	flag.Parse()

	if *compare != "" {
		if err := runCompare(*compare, *threshold); err != nil {
			fatal(err)
		}
		return
	}

	run := Run{Date: time.Now().UTC().Format(time.RFC3339), Label: *label}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			run.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		r.Metrics = parseMetrics(line[len(m[0]):], &r)
		run.Results = append(run.Results, r)
		run.Raw = append(run.Raw, strings.TrimSpace(line))
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(run.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	var f File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *out, err))
		}
	} else {
		f.Package = *pkg
	}
	f.Runs = append(f.Runs, run)

	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended %d results to %s (%d runs)\n",
		len(run.Results), *out, len(f.Runs))
}

// parseMetrics reads the "value unit" pairs that follow ns/op on a
// benchmark line: custom b.ReportMetric output plus, when custom
// metrics push them off the main regex, the -benchmem B/op and
// allocs/op columns (those are routed back into the Result's
// dedicated fields rather than the map).
func parseMetrics(tail string, r *Result) map[string]float64 {
	fields := strings.Fields(tail)
	var metrics map[string]float64
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		switch unit := fields[i+1]; unit {
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if metrics == nil {
				metrics = make(map[string]float64)
			}
			metrics[unit] = v
		}
	}
	return metrics
}

// runCompare checks the trajectory's newest run against the run before
// it and fails when any benchmark present in both regressed its ns/op
// by more than threshold percent. Benchmarks that appear on only one
// side are reported but never fail the gate (added or retired
// benchmarks are not regressions).
//
// Raw ns/op is only comparable when both runs came from equally fast
// hardware, so the gate normalizes by the machine factor: the median
// ns/op ratio across the sync-primitive baseline benchmarks
// (BenchmarkSync*, BenchmarkRWMutex*), which exercise the standard
// library only and cannot be slowed by changes to this repo. When the
// trajectory hops to a slower or faster machine the baselines shift
// with everything else and the factor absorbs the shift; a genuine
// regression moves an scl benchmark relative to the baselines and
// still fails.
func runCompare(path string, threshold float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if len(f.Runs) < 2 {
		fmt.Fprintf(os.Stderr, "benchjson: %s has %d run(s); nothing to compare\n", path, len(f.Runs))
		return nil
	}
	prev, cur := f.Runs[len(f.Runs)-2], f.Runs[len(f.Runs)-1]
	base := make(map[string]Result, len(prev.Results))
	for _, r := range prev.Results {
		base[r.Name] = r
	}
	factor := machineFactor(base, cur.Results)
	if factor != 1 {
		fmt.Fprintf(os.Stderr, "benchjson: machine factor %.2fx (median sync-baseline ns/op ratio); comparing normalized ns/op\n", factor)
	}
	// A factor far from 1 means the two runs came from different
	// hardware. Scalar normalization is approximate there (handoff-bound
	// benchmarks scale with scheduler latency, not CPU speed), so the
	// cross-machine pair is report-only; the next run on the new machine
	// compares same-machine again and restores the strict gate.
	hop := factor > 1.25 || factor < 0.8
	var regressions []string
	for _, r := range cur.Results {
		prevR, ok := base[r.Name]
		if !ok {
			fmt.Printf("%-50s %12.1f ns/op  (new)\n", r.Name, r.NsPerOp)
			continue
		}
		old := prevR.NsPerOp
		delta := 0.0
		if old > 0 {
			delta = (r.NsPerOp/factor - old) / old * 100
		}
		fmt.Printf("%-50s %12.1f -> %12.1f ns/op  %+6.1f%%\n", r.Name, old, r.NsPerOp, delta)
		if delta > threshold {
			regressions = append(regressions, fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%% > %.0f%%)", r.Name, old, r.NsPerOp, delta, threshold))
		}
		// Custom metrics shared by both runs (scenario throughput and
		// fairness keys) are reported for the record but never gate:
		// a fairness number has no universal regression direction.
		units := make([]string, 0, len(r.Metrics))
		for unit := range r.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			if ov, ok := prevR.Metrics[unit]; ok && ov != r.Metrics[unit] {
				fmt.Printf("%-50s %12.3f -> %12.3f %s\n", "  "+r.Name, ov, r.Metrics[unit], unit)
			}
		}
	}
	if len(regressions) > 0 {
		if hop {
			fmt.Fprintf(os.Stderr, "benchjson: machine hop detected (factor %.2fx) — reporting %d benchmark(s) beyond %.0f%% without failing; the next same-machine run restores the gate:\n  %s\n",
				factor, len(regressions), threshold, strings.Join(regressions, "\n  "))
			return nil
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%:\n  %s",
			len(regressions), threshold, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: no regression beyond %.0f%% (%s vs %s)\n", threshold, cur.Date, prev.Date)
	return nil
}

// machineFactor estimates how much faster or slower the current run's
// machine is than the previous run's: the median cur/prev ns/op ratio
// over the sync-primitive baseline benchmarks present in both runs.
// Returns 1 when fewer than two baselines are shared (one outlier must
// not masquerade as a machine change).
func machineFactor(prev map[string]Result, cur []Result) float64 {
	var ratios []float64
	for _, r := range cur {
		if !strings.HasPrefix(r.Name, "BenchmarkSync") && !strings.HasPrefix(r.Name, "BenchmarkRWMutex") {
			continue
		}
		if p, ok := prev[r.Name]; ok && p.NsPerOp > 0 && r.NsPerOp > 0 {
			ratios = append(ratios, r.NsPerOp/p.NsPerOp)
		}
	}
	if len(ratios) < 2 {
		return 1
	}
	sort.Float64s(ratios)
	if n := len(ratios); n%2 == 1 {
		return ratios[n/2]
	} else {
		return (ratios[n/2-1] + ratios[n/2]) / 2
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
