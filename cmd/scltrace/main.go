// Command scltrace runs a small contended scenario on the simulator with
// lock-event tracing enabled and dumps the resulting timeline: every
// acquisition, release (with hold length), slice transfer and ban. Useful
// for seeing the SCL mechanism operate — slices of cheap re-acquisition,
// a transfer at each slice boundary, and bans following over-use.
//
// Usage:
//
//	scltrace [-lock uscl|kscl|mutex|spin|ticket] [-threads 3]
//	         [-cs 500µs] [-horizon 50ms] [-tail 40] [-seed 1] [-json]
//
// With -json the full trace is written to stdout as JSON lines of
// trace.Event — the dump format cmd/scltop replays:
//
//	scltrace -json > dump.jsonl && scltop -replay dump.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scl/internal/workload"
	"scl/sim"
	"scl/trace"
)

func main() {
	var (
		lockKind = flag.String("lock", "uscl", "lock under trace: uscl, kscl, mutex, spin, ticket")
		threads  = flag.Int("threads", 3, "contending threads")
		cs       = flag.Duration("cs", 500*time.Microsecond, "critical section length of thread 0; thread i runs (i+1)x this")
		horizon  = flag.Duration("horizon", 50*time.Millisecond, "virtual run length")
		tail     = flag.Int("tail", 40, "events to print (newest)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		jsonOut  = flag.Bool("json", false, "dump the full trace as trace.Event JSON lines (for scltop -replay)")
	)
	flag.Parse()

	cpus := *threads
	if cpus > 8 {
		cpus = 8
	}
	e := sim.New(sim.Config{CPUs: cpus, Horizon: *horizon, Seed: *seed})
	e.EnableTrace(1 << 16)
	lk := workload.MakeLock(e, *lockKind, 0)
	specs := make([]workload.Loop, *threads)
	for i := range specs {
		specs[i] = workload.Loop{
			CS:   time.Duration(i+1) * *cs,
			CPU:  i % cpus,
			Name: fmt.Sprintf("t%d", i),
		}
	}
	counters := workload.SpawnLoops(e, lk, specs)
	e.Run()

	if *jsonOut {
		if err := trace.WriteJSONL(os.Stdout, convert(e.TraceEvents(), *lockKind)); err != nil {
			fmt.Fprintln(os.Stderr, "scltrace:", err)
			os.Exit(1)
		}
		return
	}

	evs := e.TraceEvents()
	if len(evs) > *tail {
		fmt.Printf("... %d earlier events elided ...\n", len(evs)-*tail)
		evs = evs[len(evs)-*tail:]
	}
	fmt.Print(sim.FormatTrace(evs))

	s := lk.Stats()
	fmt.Printf("\n%d events total; per-thread holds over %v:\n", len(e.TraceEvents()), *horizon)
	for i := 0; i < *threads; i++ {
		fmt.Printf("  t%d: %8d ops, held %v\n", i, counters.Ops[i], s.Hold(i).Round(time.Microsecond))
	}
}

// convert maps simulator trace events onto the scl/trace schema so the
// same tooling (scltop -replay, trace.Aggregate) reads both real-lock
// ring dumps and simulator dumps. Simulator tasks have names but no
// entity IDs; trace.Aggregate keys by name in that case.
func convert(evs []sim.TraceEvent, lock string) []trace.Event {
	kinds := map[sim.TraceKind]trace.Kind{
		sim.TraceAcquire:  trace.KindAcquire,
		sim.TraceRelease:  trace.KindRelease,
		sim.TraceBan:      trace.KindBan,
		sim.TraceTransfer: trace.KindHandoff,
	}
	out := make([]trace.Event, 0, len(evs))
	for _, ev := range evs {
		k, ok := kinds[ev.Kind]
		if !ok {
			k = trace.Kind(ev.Kind)
		}
		out = append(out, trace.Event{
			At:     ev.At,
			Kind:   k,
			Lock:   lock,
			Name:   ev.Task,
			Detail: ev.Detail,
		})
	}
	return out
}
