// Command scltrace runs a small contended scenario on the simulator with
// lock-event tracing enabled and dumps the resulting timeline: every
// acquisition, release (with hold length), slice transfer and ban. Useful
// for seeing the SCL mechanism operate — slices of cheap re-acquisition,
// a transfer at each slice boundary, and bans following over-use.
//
// Usage:
//
//	scltrace [-lock uscl|kscl|mutex|spin|ticket] [-threads 3]
//	         [-cs 500µs] [-horizon 50ms] [-tail 40] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"time"

	"scl/internal/workload"
	"scl/sim"
)

func main() {
	var (
		lockKind = flag.String("lock", "uscl", "lock under trace: uscl, kscl, mutex, spin, ticket")
		threads  = flag.Int("threads", 3, "contending threads")
		cs       = flag.Duration("cs", 500*time.Microsecond, "critical section length of thread 0; thread i runs (i+1)x this")
		horizon  = flag.Duration("horizon", 50*time.Millisecond, "virtual run length")
		tail     = flag.Int("tail", 40, "events to print (newest)")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	cpus := *threads
	if cpus > 8 {
		cpus = 8
	}
	e := sim.New(sim.Config{CPUs: cpus, Horizon: *horizon, Seed: *seed})
	e.EnableTrace(1 << 16)
	lk := workload.MakeLock(e, *lockKind, 0)
	specs := make([]workload.Loop, *threads)
	for i := range specs {
		specs[i] = workload.Loop{
			CS:   time.Duration(i+1) * *cs,
			CPU:  i % cpus,
			Name: fmt.Sprintf("t%d", i),
		}
	}
	counters := workload.SpawnLoops(e, lk, specs)
	e.Run()

	evs := e.TraceEvents()
	if len(evs) > *tail {
		fmt.Printf("... %d earlier events elided ...\n", len(evs)-*tail)
		evs = evs[len(evs)-*tail:]
	}
	fmt.Print(sim.FormatTrace(evs))

	s := lk.Stats()
	fmt.Printf("\n%d events total; per-thread holds over %v:\n", len(e.TraceEvents()), *horizon)
	for i := 0; i < *threads; i++ {
		fmt.Printf("  t%d: %8d ops, held %v\n", i, counters.Ops[i], s.Hold(i).Round(time.Microsecond))
	}
}
