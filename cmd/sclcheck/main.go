// Command sclcheck runs the deterministic concurrency checker
// (internal/check) against the real scl locks from the command line —
// the offline, long-budget counterpart to `go test ./internal/check`.
//
// Modes:
//
//	sclcheck -mode explore -workload mutex-churn -schedules 100000 -seed 1
//	    randomized exploration (PCT or uniform) of a workload; prints a
//	    summary, and on failure the seed that reproduces it.
//	sclcheck -mode replay -workload mutex-churn -seed 123456789
//	    one deterministic run of a previously printed schedule seed.
//	sclcheck -mode dfs -workload mutex-contend -depth 8
//	    bounded exhaustive enumeration of a small scenario.
//	sclcheck -mode oracle
//	    the sim-vs-real differential oracle over the curated scripts.
//
// Exit status is non-zero when a failure or undocumented divergence is
// found.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scl/internal/check"
	"scl/internal/check/oracle"
	"scl/internal/check/workloads"
)

func main() {
	var (
		mode      = flag.String("mode", "explore", "explore, replay, dfs, or oracle")
		workload  = flag.String("workload", "mutex-churn", "mutex-churn, mutex-contend, mutex-combine, rw-churn, rw-shard, or manager-churn")
		schedules = flag.Int("schedules", 20000, "exploration budget (explore mode)")
		seed      = flag.Int64("seed", 1, "base seed (explore) or schedule seed (replay)")
		strategy  = flag.String("strategy", "pct", "schedule chooser for explore mode: pct or random")
		depth     = flag.Int("depth", 3, "PCT change points (explore) or branching depth (dfs)")
		maxRuns   = flag.Int("maxruns", 100000, "run cap for dfs mode")
	)
	flag.Parse()

	switch *mode {
	case "explore":
		w := pick(*workload)
		start := time.Now()
		sum := check.Explore(check.Opts{Schedules: *schedules, Seed: *seed, Mode: *strategy, Depth: *depth}, w)
		report(sum, time.Since(start))
	case "replay":
		w := pick(*workload)
		if f := check.Replay(check.Opts{}, w, *seed); f != nil {
			fmt.Printf("seed %d reproduces a failure:\n%v\n", *seed, f)
			os.Exit(1)
		}
		fmt.Printf("seed %d replayed clean against %s\n", *seed, *workload)
	case "dfs":
		w := pick(*workload)
		start := time.Now()
		sum := check.ExploreDFS(check.DFSOpts{Depth: *depth, MaxRuns: *maxRuns}, w)
		report(sum, time.Since(start))
	case "oracle":
		bad := false
		report := func(name string, allowed, undocumented []oracle.Divergence, err error) {
			switch {
			case err != nil:
				fmt.Printf("%-12s ERROR %v\n", name, err)
				bad = true
			case len(undocumented) > 0:
				fmt.Printf("%-12s DIVERGED\n", name)
				for _, d := range undocumented {
					fmt.Printf("    %v\n", d)
				}
				bad = true
			default:
				fmt.Printf("%-12s ok (%d documented divergences)\n", name, len(allowed))
			}
		}
		for _, c := range oracle.Cases() {
			allowed, undocumented, err := c.Run()
			report(c.Name, allowed, undocumented, err)
		}
		for _, c := range oracle.RWCases() {
			allowed, undocumented, err := c.Run()
			report(c.Name, allowed, undocumented, err)
		}
		if bad {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q\n", *mode)
		os.Exit(2)
	}
}

// pick maps a workload name to its default-configured instance.
func pick(name string) check.Workload {
	switch name {
	case "mutex-churn":
		return workloads.MutexChurn(workloads.MutexOpts{Seed: 1, Cancel: true, CloseMid: true})
	case "mutex-contend":
		return workloads.MutexContend(workloads.ContendOpts{Seed: 1})
	case "mutex-combine":
		return workloads.MutexCombine(workloads.CombineOpts{Seed: 1})
	case "rw-churn":
		return workloads.RWChurn(workloads.RWOpts{Seed: 1, Cancel: true})
	case "rw-shard":
		return workloads.RWShardSweep(workloads.RWShardOpts{Seed: 1})
	case "manager-churn":
		return workloads.ManagerChurn(workloads.ManagerOpts{Seed: 1, Cancel: true, CloseMid: true, GC: true})
	}
	fmt.Fprintf(os.Stderr, "unknown -workload %q\n", name)
	os.Exit(2)
	return check.Workload{}
}

// report prints an exploration summary and exits non-zero on failure.
func report(sum check.Summary, took time.Duration) {
	fmt.Printf("%d runs, %d distinct schedules, %d steps, %v\n", sum.Runs, sum.Distinct, sum.Steps, took.Round(time.Millisecond))
	if sum.Failure != nil {
		fmt.Printf("FAILURE (replay with -mode replay -seed %d):\n%v\n", sum.Failure.Seed, sum.Failure)
		os.Exit(1)
	}
}
