package scl

import (
	"sync"
	"testing"
	"time"
)

// Tests covering the less-travelled paths: panic branches of the baseline
// locks, contended waiter paths, and the remaining stats helpers.

func TestSpinLockUnlockUnlockedPanics(t *testing.T) {
	var l SpinLock
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.Unlock()
}

func TestBargingMutexUnlockUnlockedPanics(t *testing.T) {
	var l BargingMutex
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.Unlock()
}

func TestBargingMutexContendedSleepPath(t *testing.T) {
	// Force the slow path: hold the lock long enough that a second locker
	// exhausts its spin budget and parks, then gets woken.
	var l BargingMutex
	l.Lock()
	done := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // well past the spin budget
	l.Unlock()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parked waiter never woke")
	}
}

func TestRegisterNiceWeights(t *testing.T) {
	m := NewMutex(Options{})
	h := m.RegisterNice(-3)
	if h.weight != 1991 {
		t.Fatalf("nice -3 weight = %d, want 1991", h.weight)
	}
	h0 := m.RegisterNice(0)
	if h0.weight != 1024 {
		t.Fatalf("nice 0 weight = %d", h0.weight)
	}
}

func TestStatsJainLOT(t *testing.T) {
	m := NewMutex(Options{})
	a := m.Register()
	b := m.Register()
	a.Lock()
	time.Sleep(2 * time.Millisecond)
	a.Unlock()
	b.Lock()
	time.Sleep(2 * time.Millisecond)
	b.Unlock()
	s := m.Stats()
	if j := s.JainLOT(a.ID(), b.ID()); j < 0.9 {
		t.Fatalf("JainLOT = %.3f for symmetric usage", j)
	}
}

func TestRWLockWriterQueuedBehindWriter(t *testing.T) {
	// Two writers contending covers WLock's queued path.
	l := NewRWLock(1, 1, time.Millisecond)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	l.WLock()
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.WLock()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			time.Sleep(time.Millisecond)
			l.WUnlock()
		}()
	}
	time.Sleep(10 * time.Millisecond)
	l.WUnlock()
	wg.Wait()
	if len(order) != 2 {
		t.Fatalf("writers completed: %v", order)
	}
}

func TestTicketLockOrder(t *testing.T) {
	// Tickets are served in FIFO order: a holder plus two queued lockers
	// finish in the order they took tickets.
	var l TicketLock
	l.Lock()
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i == 2 {
				time.Sleep(5 * time.Millisecond) // take the later ticket
			}
			l.Lock()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Unlock()
		}()
	}
	time.Sleep(20 * time.Millisecond)
	l.Unlock()
	wg.Wait()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("ticket order %v, want [1 2]", order)
	}
}
