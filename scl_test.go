package scl

import (
	"sync"
	"testing"
	"time"
)

// exerciseMutualExclusion hammers a sync.Locker from several goroutines
// and verifies the protected counter is consistent (run with -race).
func exerciseMutualExclusion(t *testing.T, name string, mk func() sync.Locker) {
	t.Helper()
	const goroutines = 8
	const iters = 2000
	var counter int
	var wg sync.WaitGroup
	lockers := make([]sync.Locker, goroutines)
	for i := range lockers {
		lockers[i] = mk()
	}
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(lk sync.Locker) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				lk.Lock()
				counter++
				lk.Unlock()
			}
		}(lockers[i])
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("%s: counter = %d, want %d", name, counter, goroutines*iters)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	m := NewMutex(Options{Slice: 100 * time.Microsecond})
	exerciseMutualExclusion(t, "scl.Mutex", func() sync.Locker { return m.Register() })
}

func TestBargingMutexMutualExclusion(t *testing.T) {
	var m BargingMutex
	exerciseMutualExclusion(t, "BargingMutex", func() sync.Locker { return &m })
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var m SpinLock
	exerciseMutualExclusion(t, "SpinLock", func() sync.Locker { return &m })
}

func TestTicketLockMutualExclusion(t *testing.T) {
	var m TicketLock
	exerciseMutualExclusion(t, "TicketLock", func() sync.Locker { return &m })
}

func TestMutexUsageFairness(t *testing.T) {
	// A hog with 8ms critical sections and a light thread with 1ms critical
	// sections must end with roughly equal hold times under u-SCL.
	// Critical sections sleep while holding, so this works on one CPU.
	m := NewMutex(Options{Slice: time.Millisecond})
	hog := m.Register().SetName("hog")
	light := m.Register().SetName("light")
	deadline := time.Now().Add(600 * time.Millisecond)
	var wg sync.WaitGroup
	run := func(h *Handle, cs time.Duration) {
		defer wg.Done()
		for time.Now().Before(deadline) {
			h.Lock()
			time.Sleep(cs)
			h.Unlock()
		}
	}
	wg.Add(2)
	go run(hog, 8*time.Millisecond)
	go run(light, time.Millisecond)
	wg.Wait()
	s := m.Stats()
	hh, lh := s.Hold[hog.ID()], s.Hold[light.ID()]
	if lh == 0 {
		t.Fatalf("light thread starved entirely")
	}
	ratio := float64(hh) / float64(lh)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("hold ratio hog/light = %.2f (%v vs %v), want ~1", ratio, hh, lh)
	}
	if jain := s.JainHold(hog.ID(), light.ID()); jain < 0.85 {
		t.Fatalf("Jain hold fairness %.3f, want >= 0.85", jain)
	}
}

func TestMutexProportionalWeights(t *testing.T) {
	// 2:1 weights with identical critical sections: hold times should
	// approach 2:1.
	m := NewMutex(Options{Slice: time.Millisecond})
	heavy := m.RegisterWeight(2048)
	lightw := m.RegisterWeight(1024)
	deadline := time.Now().Add(600 * time.Millisecond)
	var wg sync.WaitGroup
	run := func(h *Handle) {
		defer wg.Done()
		for time.Now().Before(deadline) {
			h.Lock()
			time.Sleep(2 * time.Millisecond)
			h.Unlock()
		}
	}
	wg.Add(2)
	go run(heavy)
	go run(lightw)
	wg.Wait()
	s := m.Stats()
	ratio := float64(s.Hold[heavy.ID()]) / float64(s.Hold[lightw.ID()])
	if ratio < 1.3 || ratio > 3.0 {
		t.Fatalf("weighted hold ratio = %.2f, want ~2", ratio)
	}
}

func TestMutexBanImposed(t *testing.T) {
	// After hogging the lock for 60ms against a competing peer, the hog's
	// next acquisition must be delayed by roughly its over-use.
	m := NewMutex(Options{Slice: time.Millisecond})
	hog := m.Register()
	peer := m.Register()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			peer.Lock()
			time.Sleep(time.Millisecond)
			peer.Unlock()
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the peer become active
	hog.Lock()
	time.Sleep(60 * time.Millisecond)
	hog.Unlock()
	reacquireStart := time.Now()
	hog.Lock()
	gap := time.Since(reacquireStart)
	hog.Unlock()
	close(stop)
	wg.Wait()
	if gap < 25*time.Millisecond {
		t.Fatalf("hog reacquired after %v, want a substantial ban (>= 25ms)", gap)
	}
}

func TestMutexLoneThreadNoBan(t *testing.T) {
	// A lone registered entity must never be penalized: N quick
	// acquisitions should complete almost instantly.
	m := NewMutex(Options{})
	h := m.Register()
	start := time.Now()
	for i := 0; i < 10000; i++ {
		h.Lock()
		h.Unlock()
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("10k lone acquisitions took %v", el)
	}
}

func TestMutexUnlockUnlockedPanics(t *testing.T) {
	m := NewMutex(Options{})
	h := m.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	h.Unlock()
}

func TestHandleCloseUnregisters(t *testing.T) {
	m := NewMutex(Options{})
	a := m.Register()
	b := m.Register()
	b.Close()
	// With b gone, a is alone and must never be banned even after hogging.
	a.Lock()
	time.Sleep(10 * time.Millisecond)
	a.Unlock()
	start := time.Now()
	a.Lock()
	a.Unlock()
	if gap := time.Since(start); gap > 5*time.Millisecond {
		t.Fatalf("lone survivor banned for %v", gap)
	}
}

func TestRWLockExclusion(t *testing.T) {
	l := NewRWLock(1, 1, time.Millisecond)
	var readers, writers, violations int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	deadline := time.Now().Add(200 * time.Millisecond)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				l.RLock()
				mu.Lock()
				readers++
				if writers > 0 {
					violations++
				}
				mu.Unlock()
				time.Sleep(50 * time.Microsecond)
				mu.Lock()
				readers--
				mu.Unlock()
				l.RUnlock()
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				l.WLock()
				mu.Lock()
				writers++
				if writers > 1 || readers > 0 {
					violations++
				}
				mu.Unlock()
				time.Sleep(50 * time.Microsecond)
				mu.Lock()
				writers--
				mu.Unlock()
				l.WUnlock()
			}
		}()
	}
	wg.Wait()
	if violations > 0 {
		t.Fatalf("%d rw exclusion violations", violations)
	}
}

func TestRWLockRatio(t *testing.T) {
	// 9:1 read:write. With saturating readers and writers, writer hold
	// should be a modest slice (~10%) of total hold, never starved.
	l := NewRWLock(9, 1, 2*time.Millisecond)
	deadline := time.Now().Add(600 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				l.RLock()
				time.Sleep(200 * time.Microsecond)
				l.RUnlock()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			l.WLock()
			time.Sleep(200 * time.Microsecond)
			l.WUnlock()
		}
	}()
	wg.Wait()
	s := l.Stats()
	if s.WriterOps < 10 {
		t.Fatalf("writer starved: %d ops", s.WriterOps)
	}
	if s.ReaderOps < 10 {
		t.Fatalf("readers starved: %d ops", s.ReaderOps)
	}
	frac := float64(s.WriterHold) / float64(s.WriterHold+s.ReaderHold/2)
	if frac > 0.45 {
		t.Fatalf("writer fraction %.2f, want bounded near its 10%% share", frac)
	}
}

func TestRWLockUnlockPanics(t *testing.T) {
	l := NewRWLock(1, 1, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RUnlock without RLock did not panic")
			}
		}()
		l.RUnlock()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WUnlock without WLock did not panic")
			}
		}()
		l.WUnlock()
	}()
}

func TestStatsSnapshotLOT(t *testing.T) {
	m := NewMutex(Options{})
	h := m.Register()
	h.Lock()
	time.Sleep(5 * time.Millisecond)
	h.Unlock()
	time.Sleep(5 * time.Millisecond)
	s := m.Stats()
	if s.Hold[h.ID()] < 4*time.Millisecond {
		t.Fatalf("hold %v, want ~5ms", s.Hold[h.ID()])
	}
	if s.Idle < 4*time.Millisecond {
		t.Fatalf("idle %v, want ~5ms+", s.Idle)
	}
	if lot := s.LOT(h.ID()); lot < 9*time.Millisecond {
		t.Fatalf("LOT %v, want ~10ms", lot)
	}
}

func TestNiceToWeightExported(t *testing.T) {
	if NiceToWeight(0) != 1024 || NiceToWeight(-3) != 1991 {
		t.Fatal("NiceToWeight mapping wrong")
	}
}

func TestSiblingGroupSharesSlice(t *testing.T) {
	// Two siblings of one entity versus one competitor: the group gets
	// ~50% of lock hold (entity share), not ~67% (thread share), and the
	// siblings together keep their slice busy.
	m := NewMutex(Options{Slice: 2 * time.Millisecond})
	a1 := m.Register().SetName("groupA")
	a2 := a1.Sibling()
	b := m.Register().SetName("b")
	deadline := time.Now().Add(600 * time.Millisecond)
	var wg sync.WaitGroup
	run := func(h *Handle) {
		defer wg.Done()
		for time.Now().Before(deadline) {
			h.Lock()
			time.Sleep(500 * time.Microsecond)
			h.Unlock()
			time.Sleep(500 * time.Microsecond) // non-critical section
		}
	}
	wg.Add(3)
	go run(a1)
	go run(a2)
	go run(b)
	wg.Wait()
	s := m.Stats()
	groupHold := s.Hold[a1.ID()] // siblings share the ID
	bHold := s.Hold[b.ID()]
	if bHold == 0 {
		t.Fatal("competitor starved")
	}
	ratio := float64(groupHold) / float64(bHold)
	if ratio < 0.5 || ratio > 2.2 {
		t.Fatalf("group/competitor hold ratio %.2f (%v vs %v), want ~1 (entity fairness)",
			ratio, groupHold, bHold)
	}
}

func TestSiblingCloseRefcount(t *testing.T) {
	m := NewMutex(Options{})
	a := m.Register()
	b := a.Sibling()
	a.Close()
	// Entity must survive while b is open: locking through b still works
	// and does not re-register at zero weight.
	b.Lock()
	b.Unlock()
	b.Close()
	// Now a new lone entity is never banned even after hogging.
	c := m.Register()
	c.Lock()
	time.Sleep(5 * time.Millisecond)
	c.Unlock()
	start := time.Now()
	c.Lock()
	c.Unlock()
	if gap := time.Since(start); gap > 5*time.Millisecond {
		t.Fatalf("lone entity banned %v after siblings closed", gap)
	}
}

func TestSiblingsMutualExclusion(t *testing.T) {
	m := NewMutex(Options{Slice: 100 * time.Microsecond})
	base := m.Register()
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		h := base.Sibling()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				h.Lock()
				counter++
				h.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}
