// Entity churn with automatic GC: a goroutine-per-request server whose
// handlers register a fresh entity on a shared scl.Mutex, serve, and
// return — without ever calling Handle.Close. With WithInactiveGC the
// lock reaps the departed entities' accounting state once they have been
// idle past the threshold, so the registered-entity count tracks the
// in-flight request set instead of every request ever served; the
// long-lived "maintenance" entity keeps its history throughout. Compare
// examples/deadline (explicit Close, per-request deadlines).
package main

import (
	"fmt"
	"sync"
	"time"

	"scl"
)

// run serves requests batches of handler goroutines against one GC'd
// lock and returns it, so the test can assert the entity count stayed
// bounded.
func run(requests int, report func(string, ...any)) *scl.Mutex {
	m := scl.NewMutex(
		scl.Options{Slice: 100 * time.Microsecond, Name: "state"},
		scl.WithInactiveGC(20*time.Millisecond),
	)

	// A long-lived entity: never idle long enough to be reaped.
	maint := m.Register().SetName("maintenance")
	stop := make(chan struct{})
	var maintWG sync.WaitGroup
	maintWG.Add(1)
	go func() {
		defer maintWG.Done()
		defer maint.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			maint.Lock()
			maint.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	// Requests arrive in waves of concurrent handlers. Each handler is
	// its own schedulable entity; none closes its handle — the GC is the
	// only thing keeping the books bounded.
	const wave = 16
	var wg sync.WaitGroup
	for served := 0; served < requests; served += wave {
		for i := 0; i < wave; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := m.Register() // no matching Close
				h.Lock()
				// ... touch shared state ...
				h.Unlock()
			}()
		}
		wg.Wait()
		if served%(wave*64) == 0 {
			report("served %5d requests, %3d entities registered\n", served, m.Entities())
		}
	}

	// Idle past the threshold; the next snapshot triggers the sweep.
	time.Sleep(30 * time.Millisecond)
	snap := m.Stats()
	report("served %5d requests: %d entities registered, %d reaped\n",
		requests, snap.Registered, snap.Reaped)

	close(stop)
	maintWG.Wait()
	return m
}

func main() {
	run(4096, func(format string, args ...any) { fmt.Printf(format, args...) })
}
