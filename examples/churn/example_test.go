package main

import (
	"testing"
	"time"
)

// TestBoundedEntityCount runs the churny server and asserts the
// inactive-entity GC keeps the registered-entity count proportional to
// the in-flight request set — not the total number of requests served —
// and that the long-lived entity survives.
func TestBoundedEntityCount(t *testing.T) {
	requests := 4096
	if testing.Short() {
		requests = 512
	}
	m := run(requests, t.Logf)

	deadline := time.Now().Add(2 * time.Second)
	for m.Entities() > 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		m.Stats() // snapshots give the lazy GC a chance to run
	}

	// Everything idle past the threshold is reaped; at most the
	// maintenance entity's state may linger (it was active until the very
	// end, inside the last threshold window).
	if n := m.Entities(); n > 1 {
		t.Fatalf("%d entities registered after churn settled, want <= 1 (GC leak)", n)
	}
	snap := m.Stats()
	if snap.Reaped < int64(requests/2) {
		t.Errorf("only %d entities reaped after %d churned requests", snap.Reaped, requests)
	}
}
