// Command observe is a self-contained demo of the scl observability
// stack: it runs the paper's 2-entity imbalance scenario (one thread
// with long critical sections, one with short) on a traced SCL mutex
// plus a reader/writer pair on an RW-SCL, and serves the results over
// HTTP while they accumulate:
//
//	/metrics    Prometheus text exposition (export.MetricsHandler)
//	/debug/scl  JSON snapshot for cmd/scltop  (export.VarsHandler)
//	/debug/vars expvar, including the registry under the "scl" key
//	/dump       the trace ring as JSON lines (for scltop -replay)
//
// Run it, then in another terminal:
//
//	go run ./cmd/scltop -url http://localhost:6060/debug/scl
//
// and watch the SCL at work: the hog's critical sections are 10× the
// light thread's and its acquisition rate is ~10× lower, yet hold% and
// LOT% both settle near 50/50 — the lock slices and bans convert a
// wildly unequal workload into equal lock opportunity (Jain ≈ 1). On a
// plain mutex the same workload would give the hog ~90% of the hold
// time. The imbalance that remains visible is per-operation: compare
// the entities' hold p50 in /metrics, or the bans column.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"scl"
	"scl/export"
	"scl/trace"
)

func main() {
	addr := flag.String("addr", "localhost:6060", "HTTP listen address")
	slice := flag.Duration("slice", time.Millisecond, "lock slice length")
	flag.Parse()

	ring := trace.NewRing(trace.DefaultRingCap)
	m := scl.NewMutex(scl.Options{Name: "db", Slice: *slice, Tracer: ring})
	hog := m.Register().SetName("hog")
	light := m.Register().SetName("light")
	go loop(hog, 1*time.Millisecond)
	go loop(light, 100*time.Microsecond)

	rw := scl.NewRWLock(9, 1, 10**slice).SetName("cache")
	go func() {
		for {
			rw.RLock()
			busyFor(200 * time.Microsecond)
			rw.RUnlock()
		}
	}()
	go func() {
		for {
			rw.WLock()
			busyFor(500 * time.Microsecond)
			rw.WUnlock()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	reg := export.NewRegistry()
	reg.RegisterMutex("", m)
	reg.RegisterRWLock("", rw)
	reg.RegisterRing("db-ring", ring)
	reg.PublishExpvar("scl")

	http.Handle("/metrics", reg.MetricsHandler())
	http.Handle("/debug/scl", reg.VarsHandler())
	http.Handle("/debug/vars", expvar.Handler())
	http.HandleFunc("/dump", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = trace.WriteJSONL(w, ring.Events())
	})

	fmt.Printf("serving on http://%s — try:\n", *addr)
	fmt.Printf("  go run ./cmd/scltop -url http://%s/debug/scl\n", *addr)
	fmt.Printf("  curl http://%s/metrics\n", *addr)
	fmt.Printf("  curl -s http://%s/dump | go run ./cmd/scltop -replay /dev/stdin\n", *addr)
	if err := http.ListenAndServe(*addr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "observe:", err)
		os.Exit(1)
	}
}

// loop hammers the lock with fixed-length critical sections.
func loop(h *scl.Handle, cs time.Duration) {
	for {
		h.Lock()
		busyFor(cs)
		h.Unlock()
	}
}

// busyFor spins rather than sleeps, so the critical-section length is
// not quantized by timer resolution.
func busyFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
