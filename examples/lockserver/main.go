// Command lockserver is a tenant-fair HTTP key-value store built on
// scl.Manager — the lock-table answer to the paper's lock-server
// motivation (§1: a thread that grabs a popular lock "as often as
// possible" owns the service). Every request names its tenant in the
// X-Tenant header; the store's per-key locks live in one Manager, so
// each tenant gets one accounting identity per stripe shared across
// all keys it touches. A tenant that hammers one hot key or sprays
// thousands of cold keys draws table-level bans either way, and the
// light tenants' requests keep flowing.
//
//	GET    /kv/<key>           read a value (404 if absent)
//	PUT    /kv/<key>           write the request body
//	DELETE /kv/<key>           delete the key
//
// An optional ?hold=<dur> query simulates critical-section work while
// the key lock is held (the knob for demos: a hostile tenant is just
// `?hold=2ms` in a loop). Cancellation is wired through: if the client
// hangs up while queued, the acquire aborts and the key is untouched.
//
// Observability endpoints mirror examples/observe:
//
//	/metrics    Prometheus text (per-tenant grants, holds, bans)
//	/debug/scl  JSON snapshot for cmd/scltop (by-tenant manager table)
//	/debug/vars expvar with the registry under the "scl" key
//
// Run with -demo to start a built-in noisy tenant ("hog", long holds
// sprayed over many keys) and three light tenants, then watch the
// table balance them:
//
//	go run ./examples/lockserver -demo
//	go run ./cmd/scltop -url http://localhost:6061/debug/scl
//
// The hog's hold% stays pinned near its weight share while its ban
// column climbs; the light tenants' grant rate barely moves. Swap the
// Manager for a plain per-key sync.Mutex map and the hog owns the
// server.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"scl"
	"scl/export"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:6061", "HTTP listen address")
		slice   = flag.Duration("slice", time.Millisecond, "per-key lock slice length")
		stripes = flag.Int("stripes", 0, "manager stripes (0 = default)")
		lockGC  = flag.Duration("lock-gc", 30*time.Second, "reap key locks idle this long (0 = never)")
		weights = flag.String("weights", "", "tenant weights, e.g. hog=1,batch=2 (default 1)")
		demo    = flag.Bool("demo", false, "run built-in noisy + light tenants")
	)
	flag.Parse()

	s := &server{weights: parseWeights(*weights)}
	s.m = scl.NewManager(scl.ManagerOptions{
		Name:     "kv",
		Lock:     scl.Options{Slice: *slice},
		Stripes:  *stripes,
		LockIdle: *lockGC,
	})

	reg := export.NewRegistry()
	reg.RegisterManager("kv", s.m)
	reg.PublishExpvar("scl")

	http.HandleFunc("/kv/", s.handleKV)
	http.Handle("/metrics", reg.MetricsHandler())
	http.Handle("/debug/scl", reg.VarsHandler())
	http.Handle("/debug/vars", expvar.Handler())

	if *demo {
		go s.demoTenant("hog", 2*time.Millisecond, 16)
		go s.demoTenant("light-a", 100*time.Microsecond, 4)
		go s.demoTenant("light-b", 100*time.Microsecond, 4)
		go s.demoTenant("light-c", 100*time.Microsecond, 4)
	}

	fmt.Printf("serving on http://%s — try:\n", *addr)
	fmt.Printf("  curl -X PUT -d hello -H 'X-Tenant: alice' http://%s/kv/greeting\n", *addr)
	fmt.Printf("  curl -H 'X-Tenant: bob' http://%s/kv/greeting\n", *addr)
	fmt.Printf("  go run ./cmd/scltop -url http://%s/debug/scl\n", *addr)
	if err := http.ListenAndServe(*addr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "lockserver:", err)
		os.Exit(1)
	}
}

// server is the KV store: values in a sync.Map (structure-level
// safety), per-key mutual exclusion and tenant fairness from the
// Manager (policy-level safety — the part a plain map lock can't do).
type server struct {
	m       *scl.Manager
	weights map[string]int64
	tenants sync.Map // tenant name -> *scl.Tenant
	store   sync.Map // key -> string
}

// tenant returns the one Tenant handle for a name, creating it on
// first use. Tenants are concurrency-safe, so every request from the
// same X-Tenant shares one table-wide accounting identity — that
// sharing is what lifts the fairness guarantee from per-key to
// per-tenant.
func (s *server) tenant(name string) *scl.Tenant {
	if t, ok := s.tenants.Load(name); ok {
		return t.(*scl.Tenant)
	}
	w := s.weights[name]
	if w <= 0 {
		w = 1
	}
	fresh := s.m.Tenant(name, w)
	actual, loaded := s.tenants.LoadOrStore(name, fresh)
	if loaded {
		fresh.Close() // lost the race; the stored one wins
	}
	return actual.(*scl.Tenant)
}

// handleKV serves /kv/<key> under the key's managed lock.
func (s *server) handleKV(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/kv/")
	if key == "" || strings.Contains(key, "/") {
		http.Error(w, "usage: /kv/<key>", http.StatusBadRequest)
		return
	}
	name := r.Header.Get("X-Tenant")
	if name == "" {
		name = "anonymous"
	}
	var hold time.Duration
	if q := r.URL.Query().Get("hold"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d < 0 || d > time.Second {
			http.Error(w, "hold: want a duration in [0, 1s]", http.StatusBadRequest)
			return
		}
		hold = d
	}
	g, err := s.tenant(name).LockContext(r.Context(), key)
	if err != nil {
		// Client went away while queued; nothing was held.
		http.Error(w, "acquire canceled", http.StatusRequestTimeout)
		return
	}
	defer g.Unlock()
	if hold > 0 {
		busyFor(hold)
	}
	switch r.Method {
	case http.MethodGet:
		v, ok := s.store.Load(key)
		if !ok {
			http.Error(w, "no such key", http.StatusNotFound)
			return
		}
		fmt.Fprintln(w, v.(string))
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.store.Store(key, string(body))
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		s.store.Delete(key)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET, PUT, or DELETE", http.StatusMethodNotAllowed)
	}
}

// demoTenant drives the store in-process: each iteration writes one of
// keys round-robin, holding the key's lock for cs — a stand-in for a
// client fleet, so the fairness story is visible without load tooling.
func (s *server) demoTenant(name string, cs time.Duration, keys int) {
	tn := s.tenant(name)
	for i := 0; ; i++ {
		key := fmt.Sprintf("demo-%d", i%keys)
		g := tn.Lock(key)
		busyFor(cs)
		s.store.Store(key, name)
		g.Unlock()
		time.Sleep(200 * time.Microsecond)
	}
}

// parseWeights parses "name=w,name=w" into a weight map.
func parseWeights(s string) map[string]int64 {
	out := map[string]int64{}
	if s == "" {
		return out
	}
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "lockserver: bad -weights entry %q (want name=weight)\n", kv)
			os.Exit(2)
		}
		var w int64
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w <= 0 {
			fmt.Fprintf(os.Stderr, "lockserver: bad weight %q for %s\n", val, name)
			os.Exit(2)
		}
		out[name] = w
	}
	return out
}

// busyFor spins rather than sleeps, so held critical sections consume
// the lock the way real work would.
func busyFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
