// Proportional lock shares: a "premium" tenant and a "standard" tenant
// contend on one lock with a 2:1 weight ratio (the weights a CFS scheduler
// would assign to nice -3 vs nice 0). The SCL hands out lock opportunity
// in the same 2:1 proportion even though both tenants are identical
// otherwise — the scheduler's allocation policy is carried through the
// lock instead of being subverted by it.
package main

import (
	"fmt"
	"sync"
	"time"

	"scl"
)

func main() {
	m := scl.NewMutex(scl.Options{Slice: time.Millisecond})
	premium := m.RegisterNice(-3).SetName("premium")  // weight 1991
	standard := m.RegisterNice(0).SetName("standard") // weight 1024

	deadline := time.Now().Add(1500 * time.Millisecond)
	var wg sync.WaitGroup
	var premiumOps, standardOps int64
	work := func(h *scl.Handle, ops *int64) {
		defer wg.Done()
		for time.Now().Before(deadline) {
			h.Lock()
			time.Sleep(2 * time.Millisecond) // identical critical sections
			h.Unlock()
			*ops++
		}
	}
	wg.Add(2)
	go work(premium, &premiumOps)
	go work(standard, &standardOps)
	wg.Wait()

	s := m.Stats()
	ph, sh := s.Hold[premium.ID()], s.Hold[standard.ID()]
	fmt.Printf("premium  (nice -3): %5d ops, held %v\n", premiumOps, ph.Round(time.Millisecond))
	fmt.Printf("standard (nice  0): %5d ops, held %v\n", standardOps, sh.Round(time.Millisecond))
	fmt.Printf("hold ratio: %.2f (want ~%.2f — the CFS 1991:1024 weight ratio)\n",
		float64(ph)/float64(sh), 1991.0/1024.0)
}
